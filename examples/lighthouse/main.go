// Lighthouse: a visual run of §4's probabilistic locate. Two servers
// sweep random-direction beams across a small plane, trails expire, and
// a client searches with the binary-counter "ruler" schedule
// 1 2 1 3 1 2 1 4 … — printed as ASCII frames so the trails and the
// search are visible.
package main

import (
	"fmt"
	"log"
	"strings"

	"matchmake/internal/lighthouse"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 24
	plane, err := lighthouse.NewPlane(side, side, 2026)
	if err != nil {
		return err
	}
	servers := []lighthouse.Point{{X: 6, Y: 5}, {X: 18, Y: 17}}
	for _, pos := range servers {
		if _, err := plane.AddServer("time", pos, 10, 3, 9); err != nil {
			return err
		}
	}
	client := lighthouse.Point{X: 12, Y: 12}

	fmt.Println("ruler schedule multipliers for the first 16 trials:")
	for trial := 1; trial <= 16; trial++ {
		fmt.Printf("%d ", lighthouse.RulerValue(trial))
	}
	fmt.Print("\n\n")

	for frame := 0; frame < 3; frame++ {
		fmt.Printf("t = %d\n", plane.Now())
		fmt.Println(render(plane, side, servers, client))
		plane.TickN(4)
	}

	res := plane.Locate("time", client, lighthouse.RulerSchedule{L: 3, Gap: 1}, 500)
	if !res.Found {
		return fmt.Errorf("lighthouse locate failed after %d trials", res.Trials)
	}
	fmt.Printf("client at (%d,%d) found the server at (%d,%d): %d trials, %d cells probed, %d ticks\n",
		client.X, client.Y, res.Addr.X, res.Addr.Y, res.Trials, res.CellsProbed, res.Ticks)
	return nil
}

// render draws the plane: S = server, C = client, * = live trail cell.
func render(plane *lighthouse.Plane, side int, servers []lighthouse.Point, client lighthouse.Point) string {
	var b strings.Builder
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			cell := lighthouse.Point{X: x, Y: y}
			ch := byte('.')
			if _, lit := plane.Probe("time", cell); lit {
				ch = '*'
			}
			for _, s := range servers {
				if cell == s {
					ch = 'S'
				}
			}
			if cell == client {
				ch = 'C'
			}
			b.WriteByte(ch)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
