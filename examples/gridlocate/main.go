// Gridlocate: the §3.1 Manhattan network scenario. A print service on a
// 12×12 grid posts its (port, address) along its row; clients request
// along their columns; the crossing node makes the match in O(p+q)
// message passes. The example then walks the service across the grid
// (process migration) and shows stale addresses losing by timestamp.
package main

import (
	"fmt"
	"log"
	"math"

	"matchmake/internal/core"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const side = 12
	gr, err := topology.NewGrid(side, side)
	if err != nil {
		return err
	}
	net, err := sim.New(gr.G)
	if err != nil {
		return err
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strategy.Manhattan(gr), core.Options{})
	if err != nil {
		return err
	}

	// The print server lives at (3, 7); its availability travels its row.
	printServer, err := sys.RegisterServer("printer", gr.At(3, 7))
	if err != nil {
		return err
	}
	fmt.Printf("print server at (3,7); postings hold row 3 (%d nodes)\n", side)

	clients := [][2]int{{0, 0}, {11, 3}, {6, 10}}
	for _, rc := range clients {
		client := gr.At(rc[0], rc[1])
		net.ResetCounters()
		res, err := sys.Locate(client, "printer")
		if err != nil {
			return err
		}
		r, c := gr.RowCol(res.Addr)
		fmt.Printf("client (%2d,%2d): server at (%d,%d), rendezvous at crossing (3,%d); %2d hops (2√n = %.0f)\n",
			rc[0], rc[1], r, c, rc[1], net.Hops(), 2*math.Sqrt(float64(side*side)))
	}

	// The printer moves three times; every client keeps finding the
	// freshest address because stale row postings lose by timestamp.
	for _, move := range [][2]int{{9, 1}, {0, 11}, {5, 5}} {
		if err := printServer.Migrate(gr.At(move[0], move[1])); err != nil {
			return err
		}
		res, err := sys.Locate(gr.At(11, 3), "printer")
		if err != nil {
			return err
		}
		r, c := gr.RowCol(res.Addr)
		fmt.Printf("after move to (%d,%d): located at (%d,%d)\n", move[0], move[1], r, c)
	}

	// Cache accounting: every node stores at most O(√n) entries (§3.1
	// says caches of size O(q)).
	maxCache := 0
	for _, sz := range sys.CacheSizes() {
		if sz > maxCache {
			maxCache = sz
		}
	}
	fmt.Printf("largest cache after all traffic: %d entries (row length %d)\n", maxCache, side)
	return nil
}
