// Hierarchy: the Amoeba-style service model (§1.3 and §3.5) on a
// three-level gateway network. A command interpreter (the client) calls a
// query service, which itself calls a database service — "a dynamic
// network of servers executing each other's requests" — and the system
// recovers from a database crash by failing over to a standby replica,
// so the human client never sees the fault.
package main

import (
	"fmt"
	"log"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/service"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 4×4×4 hierarchy: 64 hosts in 16 local clusters, 4 campuses.
	h, err := topology.NewHierarchy(4, 4, 4)
	if err != nil {
		return err
	}
	net, err := sim.New(h.G)
	if err != nil {
		return err
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strategy.HierarchyGateways(h), core.Options{
		LocateTimeout: 500 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	reg, err := service.NewRegistry(sys)
	if err != nil {
		return err
	}
	reg.InvokeRetries = 3

	// Database service: a primary and a standby on different campuses.
	primary, err := reg.Serve("database", 40, func(method string, body any) (any, error) {
		return fmt.Sprintf("primary:%v", body), nil
	})
	if err != nil {
		return err
	}
	if _, err := reg.Serve("database", 57, func(method string, body any) (any, error) {
		return fmt.Sprintf("standby:%v", body), nil
	}); err != nil {
		return err
	}

	// Query service: a client of the database service.
	queryHost := graph.NodeID(10)
	if _, err := reg.Serve("query", queryHost, func(method string, body any) (any, error) {
		row, err := reg.Invoke(queryHost, "database", "get", body)
		if err != nil {
			return nil, fmt.Errorf("database unavailable: %w", err)
		}
		return fmt.Sprintf("rows[%v]", row), nil
	}); err != nil {
		return err
	}

	// The command interpreter at host 2 issues a query.
	out, err := reg.Invoke(2, "query", "select", "users")
	if err != nil {
		return err
	}
	fmt.Printf("query result: %v\n", out)

	// The primary database host crashes. The query server detects the
	// failure, re-locates the service and reaches the standby: the error
	// never reaches the human client.
	if err := net.Crash(primary.Node()); err != nil {
		return err
	}
	fmt.Printf("crashed database primary at node %d\n", primary.Node())
	out, err = reg.Invoke(2, "query", "select", "users")
	if err != nil {
		return err
	}
	fmt.Printf("query result after crash: %v\n", out)

	// Locality: pairs inside one cluster resolve at level 1; cross-campus
	// pairs climb to level 3 (§3.5's traffic statistics).
	for _, pair := range [][2]graph.NodeID{{0, 1}, {0, 5}, {0, 63}} {
		fmt.Printf("nodes %2d and %2d share their level-%d cluster\n",
			pair[0], pair[1], h.LCALevel(pair[0], pair[1]))
	}
	return nil
}
