// Faulttolerance: the §2.4 robustness criteria in action. A service is
// registered under the f+1-redundant checkerboard, rendezvous nodes are
// crashed one by one, and locates keep succeeding until the whole
// rendezvous set is gone — while unreplicated Hash Locate (§5) loses the
// service to a single well-placed crash, and recovers only by rehashing.
package main

import (
	"fmt"
	"log"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/hashlocate"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n = 64
		r = 3 // tolerate f = 2 crashed rendezvous nodes
	)
	strat := rendezvous.RedundantCheckerboard(n, r)
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		return err
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strat, core.Options{
		LocateTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	server := graph.NodeID(9)
	client := graph.NodeID(54)
	if _, err := sys.RegisterServer("ledger", server); err != nil {
		return err
	}
	meet := rendezvous.Intersect(strat.Post(server), strat.Query(client))
	fmt.Printf("redundant rendezvous set for (server %d, client %d): %v (r = %d)\n",
		server, client, meet, r)

	for i, victim := range meet {
		res, err := sys.Locate(client, "ledger")
		if err != nil {
			fmt.Printf("with %d/%d rendezvous crashed: locate FAILED (%v)\n", i, r, err)
			break
		}
		fmt.Printf("with %d/%d rendezvous crashed: located at node %d\n", i, r, res.Addr)
		if err := net.Crash(victim); err != nil {
			return err
		}
	}
	if _, err := sys.Locate(client, "ledger"); err != nil {
		fmt.Printf("all %d rendezvous crashed: locate fails, as §2.4 predicts\n", r)
	}

	// Hash Locate on a fresh network: one crash on the single rendezvous
	// node removes the service network-wide; a rehashing client/server
	// pair agrees on a backup address and recovers.
	net2, err := sim.New(topology.Complete(n))
	if err != nil {
		return err
	}
	defer net2.Close()
	hs, err := hashlocate.New(net2, hashlocate.Options{
		MaxRehash:   2,
		CallTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	primary := hs.Rendezvous("ledger", 0)
	srv := graph.NodeID(0)
	for srv == primary[0] {
		srv++
	}
	if _, err := hs.Post("ledger", srv); err != nil {
		return err
	}
	fmt.Printf("\nhash locate: rendezvous of %q is node %v\n", "ledger", primary)
	if err := net2.Crash(primary[0]); err != nil {
		return err
	}
	// The server polls its rendezvous, notices the crash, re-posts (the
	// post rehashes onto the backup address).
	if _, err := hs.Post("ledger", srv); err != nil {
		return err
	}
	res, err := hs.Locate(20, "ledger")
	if err != nil {
		return err
	}
	fmt.Printf("after crash + rehash: located at node %d (rehash attempts: %d)\n",
		res.Addr, res.Rehashes)
	return nil
}
