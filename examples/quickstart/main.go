// Quickstart: run a truly distributed name server (the paper's
// checkerboard construction) on a 64-node complete network, register a
// service, and locate it from a few clients — the minimal end-to-end use
// of the library.
package main

import (
	"fmt"
	"log"
	"math"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 64
	// 1. A network: 64 processors, fully connected (the paper's
	// topology-free setting).
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		return err
	}
	defer net.Close()

	// 2. A strategy: the truly distributed checkerboard — every node
	// serves as rendezvous for an equal share of (server, client) pairs
	// and a match costs about 2√n messages.
	strat := rendezvous.Checkerboard(n)
	sys, err := core.NewSystem(net, strat, core.Options{})
	if err != nil {
		return err
	}

	// 3. A server announces itself: (port, address) is posted at P(addr).
	server, err := sys.RegisterServer("catering", 17)
	if err != nil {
		return err
	}
	fmt.Printf("registered %q at node %d; posts went to %v\n",
		server.Port(), server.Node(), strat.Post(server.Node()))

	// 4. Clients locate the service by querying Q(client).
	for _, client := range []graph.NodeID{3, 30, 60} {
		net.ResetCounters()
		res, err := sys.Locate(client, "catering")
		if err != nil {
			return err
		}
		fmt.Printf("client %-2d found it at node %d  (queried %d nodes, %d hops; 2√n = %.0f)\n",
			client, res.Addr, res.QueriesSent, net.Hops(), 2*math.Sqrt(n))
	}

	// 5. The server migrates; fresh postings supersede the stale address
	// by timestamp.
	if err := server.Migrate(42); err != nil {
		return err
	}
	res, err := sys.Locate(3, "catering")
	if err != nil {
		return err
	}
	fmt.Printf("after migration, client 3 found it at node %d\n", res.Addr)
	return nil
}
