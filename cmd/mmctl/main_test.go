package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// TestMain re-execs the test binary as a node-server worker when
// spawnCluster launches it with MMCTL_NODE set — the same trick the
// mmctl binary itself uses, so the orchestration paths under test are
// the production ones.
func TestMain(m *testing.M) {
	if os.Getenv("MMCTL_NODE") != "" {
		if err := workerMain(); err != nil {
			fmt.Fprintln(os.Stderr, "mmctl worker:", err)
			os.Exit(2)
		}
		return
	}
	os.Exit(m.Run())
}

// TestSpawnKillDrain covers the orchestration lifecycle: spawn a
// 3-process loopback cluster, serve traffic over it, kill -9 one
// worker, drain another gracefully, tear the rest down.
func TestSpawnKillDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	ps, err := spawnCluster(24, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer teardown(ps, 5*time.Second)
	if len(ps) != 3 {
		t.Fatalf("spawned %d workers, want 3", len(ps))
	}
	for i, p := range ps {
		wantLo, wantHi := cluster.PartitionRange(24, 3, i)
		if p.Lo != wantLo || p.Hi != wantHi {
			t.Fatalf("worker %d owns [%d,%d), want [%d,%d)", i, p.Lo, p.Hi, wantLo, wantHi)
		}
		if p.Addr == "" || p.Pid == 0 {
			t.Fatalf("worker %d missing addr/pid: %+v", i, p)
		}
	}

	g := topology.Complete(24)
	tr, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(24), addrs(ps),
		cluster.NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Register("svc", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Locate(20, "svc"); err != nil {
		t.Fatal(err)
	}

	// kill -9 the last worker: it dies immediately and unclean.
	if err := ps[2].kill(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if err := ps[2].cmd.Wait(); err == nil {
		t.Fatal("SIGKILL'd worker reported a clean exit")
	}
	// The cluster still serves the surviving partitions.
	if _, err := tr.Locate(1, "svc"); err != nil {
		t.Fatalf("locate after kill -9: %v", err)
	}

	// drain the middle worker: SIGTERM, in-flight finished, exit 0.
	if err := ps[1].drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestScaleRepartitions covers the live process resize: boot a
// 2-process cluster, serve a posting through it, scale to 4 processes
// via cmdScale (state file rewritten, old workers drained), and verify
// a transport over the new layout still resolves the posting — the
// partition transfer carried it across.
func TestScaleRepartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	const n = 24
	ps, err := spawnCluster(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer teardown(ps, 5*time.Second)
	state := filepath.Join(t.TempDir(), "mm.json")
	if err := writeState(state, n, ps); err != nil {
		t.Fatal(err)
	}

	g := topology.Complete(n)
	tr, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(n), addrs(ps),
		cluster.NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Register("svc", 5)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()

	var out bytes.Buffer
	if err := cmdScale([]string{"-state", state, "-procs", "4", "-grace", "50ms"}, &out); err != nil {
		t.Fatalf("scale: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ADDRS ") {
		t.Fatalf("scale printed no ADDRS line:\n%s", out.String())
	}
	st, err := readState(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Procs) != 4 {
		t.Fatalf("state lists %d workers after scale, want 4", len(st.Procs))
	}
	defer func() {
		for _, p := range st.Procs {
			syscall.Kill(p.Pid, syscall.SIGKILL)
		}
	}()
	newAddrs := make([]string, len(st.Procs))
	for i, p := range st.Procs {
		newAddrs[i] = p.Addr
	}
	tr2, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(n), newAddrs,
		cluster.NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	e, err := tr2.Locate(20, "svc")
	if err != nil {
		t.Fatalf("locate over the rescaled cluster: %v", err)
	}
	if e.Addr != want.Node() {
		t.Fatalf("located %d, want %d", e.Addr, want.Node())
	}
}

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mm.json")
	ps := []*nodeProc{
		{Index: 0, Pid: 1234, Addr: "127.0.0.1:7001", Lo: 0, Hi: 12},
		{Index: 1, Pid: 1235, Addr: "127.0.0.1:7002", Lo: 12, Hi: 24},
	}
	if err := writeState(path, 24, ps); err != nil {
		t.Fatal(err)
	}
	st, err := readState(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 24 || len(st.Procs) != 2 {
		t.Fatalf("state = %+v", st)
	}
	for i := range ps {
		if st.Procs[i].Pid != ps[i].Pid || st.Procs[i].Addr != ps[i].Addr {
			t.Fatalf("proc %d = %+v, want %+v", i, st.Procs[i], *ps[i])
		}
	}
	if _, err := readState(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing state file")
	}
}

// TestVerifySmoke runs the CI divergence gate end to end on a small
// workload: identical answers and pass totals between net and mem.
func TestVerifySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	var out bytes.Buffer
	err := run([]string{"verify", "-nodes", "36", "-procs", "3", "-locates", "800"}, &out)
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("unexpected verify output:\n%s", out.String())
	}
}

// TestDemoSmoke runs the kill -9 demo end to end.
func TestDemoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	var out bytes.Buffer
	if err := run([]string{"demo"}, &out); err != nil {
		t.Fatalf("demo: %v\n%s", err, out.String())
	}
	for _, want := range []string{"kill -9 worker 1", "still resolves", "hint generation bumped"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("demo output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Fatal("want error for unknown subcommand")
	}
	if err := run(nil, &out); err == nil {
		t.Fatal("want usage error for no subcommand")
	}
}
