package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"matchmake/internal/sweep/procctl"
)

// TestMain re-execs the test binary as a node-server worker when
// procctl.Spawn launches it with MMCTL_NODE set — the same trick the
// mmctl binary itself uses, so the orchestration paths under test are
// the production ones. The spawn/kill/drain/scale lifecycle itself is
// covered in internal/sweep/procctl, where the state machine now
// lives.
func TestMain(m *testing.M) {
	procctl.MaybeWorker()
	os.Exit(m.Run())
}

// TestVerifySmoke runs the CI divergence gate end to end on a small
// workload: identical answers and pass totals between net and mem.
func TestVerifySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	var out bytes.Buffer
	err := run([]string{"verify", "-nodes", "36", "-procs", "3", "-locates", "800"}, &out)
	if err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "verify: OK") {
		t.Fatalf("unexpected verify output:\n%s", out.String())
	}
}

// TestDemoSmoke runs the kill -9 demo end to end.
func TestDemoSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	var out bytes.Buffer
	if err := run([]string{"demo"}, &out); err != nil {
		t.Fatalf("demo: %v\n%s", err, out.String())
	}
	for _, want := range []string{"kill -9 worker 1", "still resolves", "hint generation bumped"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("demo output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Fatal("want error for unknown subcommand")
	}
	if err := run(nil, &out); err == nil {
		t.Fatal("want usage error for no subcommand")
	}
}
