// Command mmctl spawns, partitions, verifies, kills and tears down
// local NetTransport clusters — the process-orchestration companion to
// cmd/mmnode for tests, demos and CI.
//
// Every worker it spawns is a re-exec of mmctl itself (selected by an
// environment variable), so a single binary carries the whole cluster;
// production deployments run cmd/mmnode per host instead, with the
// same wire protocol and partition layout (cluster.PartitionRange).
//
// Subcommands:
//
//	mmctl up -nodes 36 -procs 3 -state mm.json
//	    Spawn a cluster, print "ADDRS a,b,c" (feed it to `mmload
//	    -transport net -addrs ...`), persist pids/addresses to -state,
//	    then serve until SIGINT/SIGTERM and drain the workers.
//
//	mmctl verify -nodes 36 -procs 3 -locates 10000
//	    Spawn a cluster and drive the same seeded workload (batched
//	    registrations, locates, migrations, probes) through the socket
//	    transport and the in-process MemTransport side by side; exit 1
//	    on any answer or pass-count divergence. The CI net-smoke gate.
//
//	mmctl demo
//	    Spawn 3 processes, register services, locate them, kill -9 one
//	    process mid-run, and narrate the recovery (hint generations
//	    bump, surviving rendezvous nodes keep answering).
//
//	mmctl chaos -replicas 2 -duration 5s
//	    Spawn a cluster and a continuous locate load, then kill -9 one
//	    node process on a timer, respawning each victim on its old
//	    address — while the replicated transport's fallthrough bridges
//	    every outage and its repair loop re-posts after every recovery.
//	    Prints the measured availability and exits non-zero when
//	    -replicas ≥ 2 and any serviceable locate failed; with
//	    -replicas 1 the failures are the point (the fragility baseline)
//	    and only the report is produced. With -corrupt k, adversarial
//	    posting corruption (silent drops, orphaned duplicates, stale
//	    addresses, bit-flips with poisoned timestamps) additionally hits
//	    the live node shards k times per second while a background
//	    anti-entropy loop reconciles the damage; the run drains to
//	    quiescence afterwards and the gate becomes the storm bound
//	    (availability ≥ 0.999 at -replicas ≥ 2). With -lie, the
//	    Byzantine storm: -liars rendezvous nodes are armed to forge
//	    locate answers (re-armed with fresh seeds every -lie-every,
//	    reconciling between waves to rehabilitate quarantined nodes)
//	    while the cluster votes every locate across -vote-quorum
//	    replica families; kills default off so the gate isolates the
//	    defence, and at -replicas ≥ 3 the run fails if a single forged
//	    answer surfaced to a client or availability dropped below
//	    0.999.
//
//	mmctl scale -state mm.json -procs 8
//	    Live process resize: spawn a fresh worker set partitioning the
//	    same node space across -procs processes, copy every partition
//	    from the old workers (postings, liveness records, crash marks —
//	    the opSnapshot transfer), rewrite the state file, print the new
//	    "ADDRS ..." line, and after a grace period (for `mmload
//	    -watch-state` consumers to rescale) drain the old workers.
//	    Consumers that miss the handoff — or donors that died
//	    mid-transfer — are covered by the transport's repair loop and,
//	    at -replicas ≥ 2, by the replica fallthrough.
//
//	mmctl kill -state mm.json -index 1 [-9]
//	    Signal one worker of an `up` cluster (SIGTERM, or SIGKILL with
//	    -9) — fault injection against a live cluster.
//
//	mmctl down -state mm.json
//	    SIGTERM every worker recorded in the state file.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/sweep/procctl"
	"matchmake/internal/topology"
)

func main() {
	procctl.MaybeWorker()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mmctl up|verify|demo|chaos|kill|down [flags] (see `go doc ./cmd/mmctl`)")
	}
	switch args[0] {
	case "up":
		return cmdUp(args[1:], out)
	case "verify":
		return cmdVerify(args[1:], out)
	case "demo":
		return cmdDemo(args[1:], out)
	case "chaos":
		return cmdChaos(args[1:], out)
	case "scale":
		return cmdScale(args[1:], out)
	case "kill":
		return cmdKill(args[1:], out)
	case "down":
		return cmdDown(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want up, verify, demo, chaos, scale, kill or down)", args[0])
	}
}

// cmdScale is the live process resize: the whole state machine lives
// in procctl.Scale (shared with cmd/mmsweep); this wrapper only parses
// the flags.
func cmdScale(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmctl scale", flag.ContinueOnError)
	state := fs.String("state", "", "state file written by `mmctl up` (required; rewritten with the new layout)")
	procs := fs.Int("procs", 0, "new node-process count (required)")
	grace := fs.Duration("grace", 750*time.Millisecond, "delay between publishing the new layout and draining the old workers")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return procctl.Scale(*state, *procs, *grace, out)
}

func cmdUp(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmctl up", flag.ContinueOnError)
	nodes := fs.Int("nodes", 36, "cluster size n")
	procs := fs.Int("procs", 3, "node processes to spawn")
	state := fs.String("state", "", "write pids/addresses to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ps, err := procctl.Spawn(*nodes, *procs)
	if err != nil {
		return err
	}
	procctl.Banner(out, "mmctl:", ps)
	if *state != "" {
		if err := procctl.WriteState(*state, *nodes, ps); err != nil {
			procctl.Teardown(ps, 5*time.Second)
			return err
		}
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Fprintln(out, "mmctl: draining workers")
	return procctl.Teardown(ps, 10*time.Second)
}

func cmdKill(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmctl kill", flag.ContinueOnError)
	state := fs.String("state", "", "state file written by `mmctl up` (required)")
	index := fs.Int("index", -1, "worker index to signal (required)")
	nine := fs.Bool("9", false, "SIGKILL instead of SIGTERM")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := procctl.ReadState(*state)
	if err != nil {
		return err
	}
	if *index < 0 || *index >= len(st.Procs) {
		return fmt.Errorf("-index %d out of range (cluster has %d workers)", *index, len(st.Procs))
	}
	p := st.Procs[*index]
	sig := syscall.SIGTERM
	if *nine {
		sig = syscall.SIGKILL
	}
	if err := syscall.Kill(p.Pid, sig); err != nil {
		return fmt.Errorf("signal pid %d: %w", p.Pid, err)
	}
	fmt.Fprintf(out, "mmctl: sent %v to worker %d (pid %d, nodes [%d,%d))\n", sig, p.Index, p.Pid, p.Lo, p.Hi)
	return nil
}

func cmdDown(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmctl down", flag.ContinueOnError)
	state := fs.String("state", "", "state file written by `mmctl up` (required)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	st, err := procctl.ReadState(*state)
	if err != nil {
		return err
	}
	for _, p := range st.Procs {
		if err := syscall.Kill(p.Pid, syscall.SIGTERM); err == nil {
			fmt.Fprintf(out, "mmctl: SIGTERM worker %d (pid %d)\n", p.Index, p.Pid)
		}
	}
	// Wake the `up` coordinator so it reaps its workers and exits
	// instead of waiting on a signal that will never come.
	if st.CoordPid > 0 {
		if err := syscall.Kill(st.CoordPid, syscall.SIGTERM); err == nil {
			fmt.Fprintf(out, "mmctl: SIGTERM coordinator (pid %d)\n", st.CoordPid)
		}
	}
	return nil
}

// cmdVerify is the divergence gate: the same seeded workload through
// the socket cluster and the in-process fast path, with answers
// compared request by request and pass totals compared after every
// phase.
func cmdVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmctl verify", flag.ContinueOnError)
	nodes := fs.Int("nodes", 36, "cluster size n")
	procs := fs.Int("procs", 3, "node processes to spawn")
	locates := fs.Int("locates", 10000, "locates to compare")
	ports := fs.Int("ports", 8, "services to register")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ps, err := procctl.Spawn(*nodes, *procs)
	if err != nil {
		return err
	}
	defer procctl.Teardown(ps, 10*time.Second)

	g := topology.Complete(*nodes)
	strat := rendezvous.Checkerboard(*nodes)
	memT, err := cluster.NewMemTransport(g, strat, 0)
	if err != nil {
		return err
	}
	netT, err := cluster.NewNetTransport(g, strat, procctl.Addrs(ps), cluster.NetOptions{CallTimeout: 30 * time.Second})
	if err != nil {
		return err
	}
	defer netT.Close()

	// Registrations through the batched path on both.
	regs := make([]cluster.Registration, *ports)
	for p := 0; p < *ports; p++ {
		regs[p] = cluster.Registration{
			Port: core.Port(fmt.Sprintf("svc-%04d", p)),
			Node: graph.NodeID((p * 7919) % *nodes),
		}
	}
	memRefs, err := memT.PostBatch(regs)
	if err != nil {
		return err
	}
	netRefs, err := netT.PostBatch(regs)
	if err != nil {
		return err
	}
	if memT.Passes() != netT.Passes() {
		return fmt.Errorf("verify: PostBatch diverged: mem %d passes, net %d", memT.Passes(), netT.Passes())
	}

	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	var netOnly time.Duration
	for i := 0; i < *locates; i++ {
		client := graph.NodeID(rng.Intn(*nodes))
		port := regs[rng.Intn(len(regs))].Port
		e1, err1 := memT.Locate(client, port)
		t0 := time.Now()
		e2, err2 := netT.Locate(client, port)
		netOnly += time.Since(t0)
		if (err1 == nil) != (err2 == nil) {
			return fmt.Errorf("verify: locate %d (%q from %d): mem err=%v net err=%v", i, port, client, err1, err2)
		}
		if err1 == nil && (e1.Addr != e2.Addr || e1.ServerID != e2.ServerID) {
			return fmt.Errorf("verify: locate %d (%q from %d): mem %+v != net %+v", i, port, client, e1, e2)
		}
		if memT.Passes() != netT.Passes() {
			return fmt.Errorf("verify: locate %d (%q from %d): pass totals diverged: mem %d, net %d",
				i, port, client, memT.Passes(), netT.Passes())
		}
		// Sprinkle the lifecycle into the stream: occasional probes of
		// the fresh answer and occasional migrations.
		if err1 == nil && i%97 == 0 {
			_, merr := memT.Probe(client, e1)
			_, nerr := netT.Probe(client, e2)
			if (merr == nil) != (nerr == nil) || memT.Passes() != netT.Passes() {
				return fmt.Errorf("verify: probe at locate %d: mem err=%v net err=%v (passes %d vs %d)",
					i, merr, nerr, memT.Passes(), netT.Passes())
			}
		}
		if i%1009 == 1008 {
			s := rng.Intn(len(regs))
			to := graph.NodeID(rng.Intn(*nodes))
			merr := memRefs[s].Migrate(to)
			nerr := netRefs[s].Migrate(to)
			if (merr == nil) != (nerr == nil) || memT.Passes() != netT.Passes() {
				return fmt.Errorf("verify: migrate at locate %d: mem err=%v net err=%v (passes %d vs %d)",
					i, merr, nerr, memT.Passes(), netT.Passes())
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Fprintf(out, "verify: OK — %d locates over %d nodes / %d processes: answers and pass totals identical (mem=net=%d passes)\n",
		*locates, *nodes, *procs, netT.Passes())
	fmt.Fprintf(out, "verify: net locate throughput ~%.0f/s sequential (%.1fs wall total)\n",
		float64(*locates)/netOnly.Seconds(), elapsed.Seconds())
	return nil
}

// cmdChaos is the availability gate: a continuous locate load over a
// live cluster while node processes are kill -9'd on a timer and
// respawned on their old addresses. With -replicas ≥ 2 the replica
// fallthrough must bridge every outage — any serviceable locate
// failure exits non-zero; with -replicas 1 the report simply shows the
// fragility the paper warns about.
func cmdChaos(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmctl chaos", flag.ContinueOnError)
	nodes := fs.Int("nodes", 36, "cluster size n")
	procs := fs.Int("procs", 3, "node processes to spawn")
	replicas := fs.Int("replicas", 2, "replication factor r of the rendezvous strategy")
	ports := fs.Int("ports", 6, "services to register")
	duration := fs.Duration("duration", 5*time.Second, "chaos run length")
	killEvery := fs.Duration("kill-every", 900*time.Millisecond, "kill -9 one node process this often")
	respawnAfter := fs.Duration("respawn-after", 250*time.Millisecond, "outage length before the victim respawns")
	repair := fs.Duration("repair", 100*time.Millisecond, "transport repair-loop interval (re-posts after each recovery)")
	corrupt := fs.Float64("corrupt", 0, "inject adversarial posting corruption (drops, duplicates, stale and bit-flipped entries) at this rate per second on the live node shards (0 = off)")
	reconcile := fs.Duration("reconcile", 100*time.Millisecond, "anti-entropy reconcile interval while -corrupt runs")
	lie := fs.Bool("lie", false, "Byzantine mode: arm lying rendezvous nodes (forged answers, not corrupted state) and vote locate answers across replica families; the gate becomes zero forged answers surfaced at -replicas ≥ 3")
	liars := fs.Int("liars", 1, "lie mode: lying rendezvous nodes per wave (the f of r ≥ 2f+1)")
	lieEvery := fs.Duration("lie-every", time.Second, "lie mode: re-arm a fresh wave of liars this often, reconciling (and rehabilitating quarantined nodes) between waves")
	voteQuorum := fs.Int("vote-quorum", 0, "lie mode: replica families voted per locate (0 = full width -replicas when -lie is set)")
	concurrency := fs.Int("concurrency", 4, "loader goroutines")
	seed := fs.Int64("seed", 1, "workload RNG seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Lie mode measures the forgery storm, not the kill storm: unless
	// the caller combines them explicitly, process kills stay off so
	// the exit gate isolates the voting defence.
	if *lie {
		killSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "kill-every" {
				killSet = true
			}
		})
		if !killSet {
			*killEvery = 0
		}
	}
	if *corrupt < 0 {
		return fmt.Errorf("-corrupt must be ≥ 0, got %v", *corrupt)
	}
	if *replicas < 1 {
		return fmt.Errorf("-replicas must be ≥ 1, got %d", *replicas)
	}
	if *replicas > *procs {
		return fmt.Errorf("-replicas %d > -procs %d: a replica shift narrower than a node-shard range cannot escape a killed process", *replicas, *procs)
	}
	if *lie {
		if *liars < 1 {
			return fmt.Errorf("-liars must be ≥ 1, got %d", *liars)
		}
		if *voteQuorum == 0 {
			*voteQuorum = *replicas
		}
		if *voteQuorum >= 2 && *replicas < 2 {
			return fmt.Errorf("-vote-quorum %d needs -replicas ≥ 2", *voteQuorum)
		}
	}
	ps, err := procctl.Spawn(*nodes, *procs)
	if err != nil {
		return err
	}
	defer procctl.Teardown(ps, 10*time.Second)

	g := topology.Complete(*nodes)
	base := rendezvous.Checkerboard(*nodes)
	opts := cluster.NetOptions{CallTimeout: 30 * time.Second, RepairInterval: *repair}
	var tr cluster.Transport
	if *replicas > 1 {
		rp, err := strategy.NewReplicated(base, *replicas)
		if err != nil {
			return err
		}
		if tr, err = cluster.NewReplicatedNetTransport(g, rp, procctl.Addrs(ps), opts); err != nil {
			return err
		}
	} else if tr, err = cluster.NewNetTransport(g, base, procctl.Addrs(ps), opts); err != nil {
		return err
	}
	copts := cluster.Options{}
	if *lie {
		copts.VoteQuorum = *voteQuorum
	}
	c := cluster.New(tr, copts)
	defer c.Close()

	regs := make([]cluster.Registration, *ports)
	names := make([]core.Port, *ports)
	for p := 0; p < *ports; p++ {
		names[p] = core.Port(fmt.Sprintf("svc-%04d", p))
		regs[p] = cluster.Registration{Port: names[p], Node: graph.NodeID((p * 7919) % *nodes)}
	}
	if _, err := c.PostBatch(regs); err != nil {
		return err
	}
	c.ResetMetrics()

	deadline := time.Now().Add(*duration)
	var wg sync.WaitGroup
	// The corruption injector: opCorrupt frames mutate live node shards
	// while the background anti-entropy loop reconciles them back.
	var antiT cluster.AntiEntropyTransport
	if *corrupt > 0 {
		antiT = tr.(cluster.AntiEntropyTransport)
		antiT.StartReconcile(*reconcile)
		interval := time.Duration(float64(time.Second) / *corrupt)
		wg.Add(1)
		go func() {
			defer wg.Done()
			wave := int64(0)
			for time.Now().Before(deadline) {
				time.Sleep(interval)
				wave++
				_, _ = antiT.Corrupt(cluster.CorruptOptions{Seed: *seed*7907 + wave, Count: 1})
			}
		}()
	}
	// The Byzantine adversary: -lie arms -liars rendezvous nodes to
	// forge answers, re-armed with a fresh seed every -lie-every, with a
	// reconcile round between waves rehabilitating the nodes the votes
	// quarantined. The loaders judge every surfaced answer against the
	// registration ground truth (servers never move in this harness).
	var (
		byzT   cluster.ByzantineTransport
		forged atomic.Int64
	)
	homes := make(map[core.Port]graph.NodeID, *ports)
	for p := 0; p < *ports; p++ {
		homes[names[p]] = regs[p].Node
	}
	if *lie {
		byzT = tr.(cluster.ByzantineTransport)
		if _, err := byzT.Arm(cluster.ArmOptions{Seed: *seed * 6053, Liars: *liars}); err != nil {
			return fmt.Errorf("chaos: arm liars: %w", err)
		}
		fmt.Fprintf(out, "chaos: armed %d lying node(s): %v (wave 0)\n", *liars, byzT.ArmedNodes())
		wg.Add(1)
		go func() {
			defer wg.Done()
			wave := int64(0)
			for time.Now().Before(deadline) {
				time.Sleep(*lieEvery)
				_, _ = c.ReconcileRound()
				wave++
				_, _ = byzT.Arm(cluster.ArmOptions{Seed: *seed*6053 + wave, Liars: *liars})
			}
		}()
	}
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed*31 + int64(w)))
			for time.Now().Before(deadline) {
				client := graph.NodeID(rng.Intn(*nodes))
				port := names[rng.Intn(len(names))]
				e, err := c.Locate(client, port)
				if *lie && err == nil &&
					(e.Port != port || e.ServerID >= cluster.ForgedIDBase || e.Addr != homes[port]) {
					forged.Add(1)
				}
			}
		}(w)
	}

	kills := 0
	rng := rand.New(rand.NewSource(*seed * 97))
	for *killEvery > 0 && time.Now().Add(*killEvery).Before(deadline) {
		time.Sleep(*killEvery)
		victim := ps[rng.Intn(len(ps))]
		fmt.Fprintf(out, "chaos: kill -9 worker %d (pid %d, nodes [%d,%d))\n", victim.Index, victim.Pid, victim.Lo, victim.Hi)
		if err := victim.Kill(syscall.SIGKILL); err != nil {
			return err
		}
		victim.Wait()
		kills++
		time.Sleep(*respawnAfter)
		if err := procctl.Respawn(*nodes, victim); err != nil {
			return fmt.Errorf("respawn worker %d: %w", victim.Index, err)
		}
		fmt.Fprintf(out, "chaos: worker %d respawned (pid %d) at %s\n", victim.Index, victim.Pid, victim.Addr)
	}
	wg.Wait()

	// With corruption in play, drain to quiescence before judging: the
	// injector stopped with the load, so bounded explicit rounds must
	// find a converged cluster.
	if antiT != nil {
		t0 := time.Now()
		rounds := 0
		for rounds = 1; rounds <= 64; rounds++ {
			r, err := antiT.ReconcileRound()
			if err != nil {
				return fmt.Errorf("chaos: quiescence drain: %w", err)
			}
			if r == 0 {
				break
			}
		}
		if rounds > 64 {
			return fmt.Errorf("chaos: cluster did not reconcile to quiescence within 64 rounds")
		}
		rs := antiT.ReconcileStats()
		fmt.Fprintf(out, "chaos: corrupt=%.1f/s injected=%d repaired=%d reconcile-rounds=%d; quiescence in %v (%d rounds after load)\n",
			*corrupt, rs.Injected, rs.Repaired, rs.Rounds, time.Since(t0).Round(time.Microsecond), rounds)
	}

	m := c.Metrics()
	fmt.Fprintf(out, "chaos: r=%d kills=%d locates=%d failed=%d availability=%.4f fallthroughs=%d passes/locate=%.2f\n",
		*replicas, kills, m.Locates, m.NotFound, m.Availability, m.ReplicaFallthroughs, m.PassesPerLocate)
	if *lie {
		fmt.Fprintf(out, "chaos: byzantine liars=%d vote-quorum=%d voted=%d conflicts=%d suspected=%d forged=%d\n",
			*liars, *voteQuorum, m.VotedLocates, m.VoteConflicts, m.SuspectedNodes, forged.Load())
		// The Byzantine gate: with r ≥ 2f+1 families voting, zero forged
		// answers may reach a client — fail-closed splits are allowed
		// only within the availability storm bound. At r=2 a single liar
		// can force a 1-1 split, so the gate needs r ≥ 3.
		if *replicas >= 3 {
			if n := forged.Load(); n > 0 {
				return fmt.Errorf("chaos: %d forged answer(s) surfaced to clients despite voting at r=%d", n, *replicas)
			}
			if m.Availability < 0.999 {
				return fmt.Errorf("chaos: availability %.4f under Byzantine forging, want ≥ 0.999", m.Availability)
			}
		}
		return nil
	}
	if *replicas >= 2 {
		// Corruption windows may cost isolated locates before a
		// reconcile round lands, so the corrupt-mode gate is the storm
		// availability bound rather than the exact-zero kill gate.
		if antiT != nil && m.Availability < 0.999 {
			return fmt.Errorf("chaos: availability %.4f under corruption, want ≥ 0.999", m.Availability)
		}
		if antiT == nil && m.NotFound > 0 {
			return fmt.Errorf("chaos: %d serviceable locates failed despite r=%d", m.NotFound, *replicas)
		}
	}
	return nil
}

// cmdDemo narrates the socket cluster's crash story on a 3-process
// partition: register, locate, kill -9, recover.
func cmdDemo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmctl demo", flag.ContinueOnError)
	nodes := fs.Int("nodes", 36, "cluster size n")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ps, err := procctl.Spawn(*nodes, 3)
	if err != nil {
		return err
	}
	defer procctl.Teardown(ps, 10*time.Second)
	for _, p := range ps {
		fmt.Fprintf(out, "demo: worker %d (pid %d) serves nodes [%d,%d) at %s\n", p.Index, p.Pid, p.Lo, p.Hi, p.Addr)
	}
	g := topology.Complete(*nodes)
	tr, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(*nodes), procctl.Addrs(ps),
		cluster.NetOptions{CallTimeout: 30 * time.Second})
	if err != nil {
		return err
	}
	defer tr.Close()

	mid := graph.NodeID((ps[1].Lo + ps[1].Hi) / 2)
	if _, err := tr.Register("printer", mid); err != nil {
		return err
	}
	if _, err := tr.Register("mail", 3); err != nil {
		return err
	}
	e, err := tr.Locate(0, "printer")
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "demo: located \"printer\" at node %d (%d passes charged so far)\n", e.Addr, tr.Passes())

	gen := tr.Gen("mail")
	fmt.Fprintf(out, "demo: kill -9 worker 1 (pid %d) — nodes [%d,%d) go dark\n", ps[1].Pid, ps[1].Lo, ps[1].Hi)
	ps[1].Kill(syscall.SIGKILL)
	ps[1].Wait()
	if _, err := tr.Probe(0, e); err != nil {
		fmt.Fprintf(out, "demo: probe of the cached \"printer\" address fails without an answer: %v\n", err)
	}
	if tr.Gen("mail") != gen {
		fmt.Fprintln(out, "demo: every hint generation bumped — cached addresses will re-flood, not probe a black hole")
	}
	if e, err = tr.Locate(0, "mail"); err == nil {
		fmt.Fprintf(out, "demo: \"mail\" still resolves to node %d from the surviving rendezvous nodes\n", e.Addr)
	} else {
		return fmt.Errorf("demo: mail stopped resolving after the kill: %w", err)
	}
	if _, err := tr.Register("fresh", 30); err != nil {
		return err
	}
	if e, err = tr.Locate(4, "fresh"); err != nil {
		return fmt.Errorf("demo: fresh service did not resolve: %w", err)
	}
	fmt.Fprintf(out, "demo: new \"fresh\" service registers and resolves (node %d) on the degraded cluster\n", e.Addr)
	fmt.Fprintln(out, "demo: draining survivors")
	return nil
}
