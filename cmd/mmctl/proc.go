package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"time"

	"matchmake/internal/cluster"
)

// nodeProc is one spawned node-server process of a local cluster.
type nodeProc struct {
	Index int    `json:"index"`
	Pid   int    `json:"pid"`
	Addr  string `json:"addr"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`

	cmd *exec.Cmd // nil when loaded from a state file
}

// clusterState is what `mmctl up` persists so later `mmctl kill` and
// `mmctl down` invocations can address the running processes. CoordPid
// is the `mmctl up` process itself: `down` signals it too, so it reaps
// its workers and exits instead of blocking on a signal forever.
type clusterState struct {
	Nodes    int        `json:"nodes"`
	CoordPid int        `json:"coord_pid"`
	Procs    []nodeProc `json:"procs"`
}

// spawnCluster launches procs node-server worker processes (re-execs
// of this binary, selected by the MMCTL_NODE environment variable)
// partitioning nodes contiguous ranges, and collects the ephemeral
// address each worker prints. On any failure the already-started
// workers are killed.
func spawnCluster(nodes, procs int) ([]*nodeProc, error) {
	if nodes < 2 || procs < 1 || procs > nodes {
		return nil, fmt.Errorf("need 1 <= procs (%d) <= nodes (%d)", procs, nodes)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	ps := make([]*nodeProc, 0, procs)
	fail := func(err error) ([]*nodeProc, error) {
		for _, p := range ps {
			p.kill(syscall.SIGKILL)
			p.cmd.Wait()
		}
		return nil, err
	}
	for i := 0; i < procs; i++ {
		lo, hi := cluster.PartitionRange(nodes, procs, i)
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MMCTL_NODE=1",
			fmt.Sprintf("MMCTL_N=%d", nodes),
			fmt.Sprintf("MMCTL_LO=%d", lo),
			fmt.Sprintf("MMCTL_HI=%d", hi),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("spawn worker %d: %w", i, err))
		}
		p := &nodeProc{Index: i, Pid: cmd.Process.Pid, Lo: lo, Hi: hi, cmd: cmd}
		ps = append(ps, p)
		addr, err := readAddrLine(out)
		if err != nil {
			return fail(fmt.Errorf("worker %d: %w", i, err))
		}
		p.Addr = addr
	}
	return ps, nil
}

// respawn restarts a dead worker on its previous partition AND its
// previous address (via MMCTL_ADDR), so a transport holding the
// original address list redials it transparently. Binding can race the
// kernel releasing the old port, so the spawn retries briefly.
func respawn(nodes int, p *nodeProc) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MMCTL_NODE=1",
			fmt.Sprintf("MMCTL_N=%d", nodes),
			fmt.Sprintf("MMCTL_LO=%d", p.Lo),
			fmt.Sprintf("MMCTL_HI=%d", p.Hi),
			"MMCTL_ADDR="+p.Addr,
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		if addr, err := readAddrLine(out); err == nil {
			p.Addr = addr
			p.Pid = cmd.Process.Pid
			p.cmd = cmd
			return nil
		}
		cmd.Process.Kill()
		cmd.Wait()
		if time.Now().After(deadline) {
			return fmt.Errorf("worker %d would not rebind %s", p.Index, p.Addr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// readAddrLine consumes the worker's "ADDR host:port" banner and
// leaves a goroutine draining any further output.
func readAddrLine(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return "", fmt.Errorf("no ADDR line (%v)", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "ADDR ") {
		return "", fmt.Errorf("unexpected banner %q", line)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return strings.TrimPrefix(line, "ADDR "), nil
}

// addrs returns the processes' addresses in partition order.
func addrs(ps []*nodeProc) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Addr
	}
	return out
}

// kill delivers sig to the process. Loaded-from-state processes are
// signalled by pid.
func (p *nodeProc) kill(sig syscall.Signal) error {
	if p.cmd != nil && p.cmd.Process != nil {
		return p.cmd.Process.Signal(sig)
	}
	return syscall.Kill(p.Pid, sig)
}

// drain asks the process to shut down gracefully (SIGTERM → finish
// in-flight requests → exit 0) and waits up to timeout before
// escalating to SIGKILL. It reports whether the exit was clean.
func (p *nodeProc) drain(timeout time.Duration) error {
	if err := p.kill(syscall.SIGTERM); err != nil {
		if p.cmd != nil && errors.Is(err, os.ErrProcessDone) {
			p.cmd.Wait() // already exited (e.g. SIGTERM'd by `down`); reap it
			return nil
		}
		return err
	}
	if p.cmd == nil {
		return nil // not our child; we can signal but not wait
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		p.kill(syscall.SIGKILL)
		<-done
		return fmt.Errorf("worker %d did not drain within %v; killed", p.Index, timeout)
	}
}

// teardown drains every process, returning the first failure.
func teardown(ps []*nodeProc, timeout time.Duration) error {
	var first error
	for _, p := range ps {
		if err := p.drain(timeout); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeState persists the cluster layout for later mmctl invocations.
func writeState(path string, nodes int, ps []*nodeProc) error {
	st := clusterState{Nodes: nodes, CoordPid: os.Getpid(), Procs: make([]nodeProc, len(ps))}
	for i, p := range ps {
		st.Procs[i] = *p
		st.Procs[i].cmd = nil
	}
	return writeStateStruct(path, &st)
}

// writeStateStruct persists an already-assembled cluster state — the
// rewrite path of `mmctl scale`, which preserves the original
// coordinator pid while swapping the worker list.
func writeStateStruct(path string, st *clusterState) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// readState loads a cluster layout written by writeState.
func readState(path string) (*clusterState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st clusterState
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("state file %s: %w", path, err)
	}
	return &st, nil
}
