package main

import (
	"strings"
	"testing"
)

func TestRunStrategies(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"broadcast", []string{"-strategy", "broadcast", "-n", "4"}},
		{"sweep", []string{"-strategy", "sweep", "-n", "4"}},
		{"central", []string{"-strategy", "central", "-n", "5", "-node", "2"}},
		{"checkerboard", []string{"-strategy", "checkerboard", "-n", "9"}},
		{"redundant", []string{"-strategy", "redundant", "-n", "16", "-r", "2"}},
		{"hierarchy", []string{"-strategy", "hierarchy"}},
		{"cube", []string{"-strategy", "cube"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"unknown strategy", []string{"-strategy", "nope"}, "unknown strategy"},
		{"bad n", []string{"-n", "0"}, "need ≥ 1"},
		{"bad node", []string{"-strategy", "central", "-n", "3", "-node", "9"}, "out of"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tt.args, err, tt.want)
			}
		})
	}
}
