// Command mmmatrix prints rendezvous matrices in the paper's format
// (rows = servers, columns = clients, 1-based node numbers).
//
// Usage:
//
//	mmmatrix -strategy broadcast -n 9
//	mmmatrix -strategy checkerboard -n 16
//	mmmatrix -strategy cube            # the 3-cube Example 6
//	mmmatrix -strategy hierarchy       # Example 5 (LCA entries)
//	mmmatrix -strategy central -n 9 -node 3
//	mmmatrix -strategy redundant -n 16 -r 2
package main

import (
	"flag"
	"fmt"
	"os"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmmatrix:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mmmatrix", flag.ContinueOnError)
	var (
		name = fs.String("strategy", "checkerboard", "broadcast|sweep|central|checkerboard|redundant|hierarchy|cube")
		n    = fs.Int("n", 9, "universe size (where applicable)")
		node = fs.Int("node", 3, "central server node, 1-based (central only)")
		r    = fs.Int("r", 2, "redundancy (redundant only)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 1 {
		return fmt.Errorf("n = %d, need ≥ 1", *n)
	}

	var s rendezvous.Strategy
	switch *name {
	case "broadcast":
		s = rendezvous.Broadcast(*n)
	case "sweep":
		s = rendezvous.Sweep(*n)
	case "central":
		if *node < 1 || *node > *n {
			return fmt.Errorf("node %d out of 1..%d", *node, *n)
		}
		s = rendezvous.Central(*n, graph.NodeID(*node-1))
	case "checkerboard":
		s = rendezvous.Checkerboard(*n)
	case "redundant":
		s = rendezvous.RedundantCheckerboard(*n, *r)
	case "hierarchy":
		// Example 5 prints designated LCA rendezvous nodes.
		fmt.Println("hierarchy-example5 (n=9, entries are lowest common ancestors)")
		for i := 0; i < 9; i++ {
			for j := 0; j < 9; j++ {
				if j > 0 {
					fmt.Print(" ")
				}
				fmt.Print(int(rendezvous.HierarchyExampleLCA(graph.NodeID(i), graph.NodeID(j))) + 1)
			}
			fmt.Println()
		}
		return nil
	case "cube":
		s = rendezvous.CubeExample()
	default:
		return fmt.Errorf("unknown strategy %q", *name)
	}

	m, err := rendezvous.Build(s)
	if err != nil {
		return err
	}
	fmt.Print(m.String())
	k := m.Multiplicities()
	fmt.Printf("m(n) = %.2f  min/max cost = %d/%d  Prop2 bound = %.2f  optimal-singleton = %v\n",
		m.AvgCost(), m.MinCost(), m.MaxCost(), rendezvous.CostLowerBound(k), m.IsOptimalShotgun())
	return nil
}
