package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("run(-list): %v", err)
	}
}

func TestRunSingleExperiment(t *testing.T) {
	// E4 is pure computation and fast.
	if err := run([]string{"-run", "E4"}); err != nil {
		t.Fatalf("run(-run E4): %v", err)
	}
}

func TestUnknownExperiment(t *testing.T) {
	err := run([]string{"-run", "E99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestCSVFormat(t *testing.T) {
	if err := run([]string{"-run", "E4", "-format", "csv"}); err != nil {
		t.Fatalf("run(-format csv): %v", err)
	}
}

func TestUnknownFormat(t *testing.T) {
	err := run([]string{"-format", "xml"})
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Fatalf("err = %v, want unknown format", err)
	}
}
