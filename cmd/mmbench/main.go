// Command mmbench regenerates every table and figure of the paper
// (experiments E1–E18 from DESIGN.md) and prints them as aligned text or
// CSV.
//
// Usage:
//
//	mmbench                    # run everything
//	mmbench -run E6            # run one experiment
//	mmbench -run E4 -format csv
//	mmbench -list              # list experiment IDs and titles
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"time"

	"matchmake/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mmbench", flag.ContinueOnError)
	var (
		runID  = fs.String("run", "", "experiment ID to run (default: all)")
		list   = fs.Bool("list", false, "list experiments and exit")
		format = fs.String("format", "text", "output format: text|csv")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "csv" {
		return fmt.Errorf("unknown format %q (text|csv)", *format)
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return nil
	}
	selected := experiments.All()
	if *runID != "" {
		e, ok := experiments.ByID(*runID)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try -list)", *runID)
		}
		selected = []experiments.Experiment{e}
	}
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *format == "csv" {
			if err := writeCSV(tables); err != nil {
				return err
			}
			continue
		}
		fmt.Printf("#### %s — %s (%.1fs)\n\n", e.ID, e.Title, time.Since(start).Seconds())
		for _, t := range tables {
			fmt.Println(t.String())
		}
	}
	return nil
}

// writeCSV emits each table as CSV rows prefixed by the table ID, so
// several tables stay distinguishable in one stream.
func writeCSV(tables []experiments.Table) error {
	w := csv.NewWriter(os.Stdout)
	defer w.Flush()
	for _, t := range tables {
		header := append([]string{"table"}, t.Columns...)
		if err := w.Write(header); err != nil {
			return err
		}
		for _, row := range t.Rows {
			if err := w.Write(append([]string{t.ID}, row...)); err != nil {
				return err
			}
		}
	}
	return nil
}
