package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const benchOutput = `goos: linux
goarch: amd64
pkg: matchmake
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkClusterLocate/transport=mem/hints=off-8         	 2434659	      1098 ns/op	         8.862 passes/locate	     192 B/op	       2 allocs/op
BenchmarkClusterLocate/transport=mem/hints=on-8          	17528206	       143.0 ns/op	         1.969 passes/locate	       0 B/op	       0 allocs/op
BenchmarkClusterStore-8  	 9000000	       120.0 ns/op	      16 B/op	       1 allocs/op
BenchmarkE01Matrices-8   	     100	    10000 ns/op	         6.000 tables
PASS
ok  	matchmake	12.923s
`

func TestRunFiltersAndParses(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-match", "ClusterLocate"}, strings.NewReader(benchOutput), &sb); err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if doc.Goos != "linux" || doc.Pkg != "matchmake" {
		t.Fatalf("header not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2:\n%s", len(doc.Benchmarks), sb.String())
	}
	hit := doc.Benchmarks[1]
	if hit.Name != "BenchmarkClusterLocate/transport=mem/hints=on-8" {
		t.Fatalf("unexpected name %q", hit.Name)
	}
	if hit.NsPerOp != 143.0 || hit.AllocsOp != 0 || hit.Iterations != 17528206 {
		t.Fatalf("misparsed result: %+v", hit)
	}
	if hit.Metrics["passes/locate"] != 1.969 {
		t.Fatalf("custom metric lost: %+v", hit.Metrics)
	}
}

func TestRunNoFilterKeepsAll(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, strings.NewReader(benchOutput), &sb); err != nil {
		t.Fatal(err)
	}
	var doc Doc
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Benchmarks) != 4 {
		t.Fatalf("got %d benchmarks, want 4", len(doc.Benchmarks))
	}
	if doc.Benchmarks[3].Metrics["tables"] != 6 {
		t.Fatalf("tables metric lost: %+v", doc.Benchmarks[3])
	}
}
