// Command mmbenchjson converts `go test -bench` text output (read from
// stdin) into a stable JSON document, so CI can archive benchmark
// results — ns/op, allocs/op and custom metrics like passes/locate —
// and the perf trajectory of the serving path stays machine-readable
// across PRs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | mmbenchjson -match ClusterLocate > BENCH_cluster.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	HasAllocs  bool               `json:"-"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Doc is the emitted JSON document.
type Doc struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmbenchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("mmbenchjson", flag.ContinueOnError)
	match := fs.String("match", "", "only keep benchmarks whose name contains this substring")
	if err := fs.Parse(args); err != nil {
		return err
	}
	doc := Doc{Benchmarks: []Result{}}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			doc.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			doc.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			doc.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			doc.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, ok := parseLine(line)
			if !ok {
				continue
			}
			if *match != "" && !strings.Contains(r.Name, *match) {
				continue
			}
			doc.Benchmarks = append(doc.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8  100  123.4 ns/op  1.97 passes/locate  0 B/op  0 allocs/op
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsOp = v
			r.HasAllocs = true
		case "MB/s":
			// throughput; fold into metrics like any custom unit
			fallthrough
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
