package main

import (
	"bufio"
	"strings"
	"testing"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"

	"io"
)

func TestNodeRange(t *testing.T) {
	cases := []struct {
		nodes, procs, index, lo, hi int
		wantLo, wantHi              int
		wantErr                     bool
	}{
		{nodes: 36, procs: 3, index: 1, lo: -1, hi: -1, wantLo: 12, wantHi: 24},
		{nodes: 36, procs: 3, index: 0, lo: -1, hi: -1, wantLo: 0, wantHi: 12},
		{nodes: 10, procs: 3, index: 2, lo: -1, hi: -1, wantLo: 6, wantHi: 10},
		{nodes: 36, procs: 0, index: -1, lo: 5, hi: 9, wantLo: 5, wantHi: 9},
		{nodes: 36, procs: 0, index: -1, lo: -1, hi: -1, wantErr: true}, // no range given
		{nodes: 36, procs: 3, index: 1, lo: 0, hi: 12, wantErr: true},   // both forms
		{nodes: 36, procs: 3, index: 3, lo: -1, hi: -1, wantErr: true},  // slot out of range
		{nodes: 36, procs: 0, index: -1, lo: 9, hi: 5, wantErr: true},   // inverted
		{nodes: 0, procs: 3, index: 0, lo: -1, hi: -1, wantErr: true},   // missing n
		{nodes: 2, procs: 3, index: 0, lo: -1, hi: -1, wantErr: true},   // empty slot
	}
	for _, c := range cases {
		lo, hi, err := nodeRange(c.nodes, c.procs, c.index, c.lo, c.hi)
		if c.wantErr {
			if err == nil {
				t.Errorf("nodeRange(%+v): want error, got [%d,%d)", c, lo, hi)
			}
			continue
		}
		if err != nil || lo != c.wantLo || hi != c.wantHi {
			t.Errorf("nodeRange(%+v) = [%d,%d), %v; want [%d,%d)", c, lo, hi, err, c.wantLo, c.wantHi)
		}
	}
}

// TestServeRoundTrip boots run() in-process on an ephemeral port and
// does a full transport round trip against it (plus a second in-process
// worker for the other half of the partition).
func TestServeRoundTrip(t *testing.T) {
	pr1, w1 := io.Pipe()
	pr2, w2 := io.Pipe()
	for i, w := range []io.Writer{w1, w2} {
		go func(i int, w io.Writer) {
			err := run([]string{"-nodes", "16", "-procs", "2", "-index",
				[]string{"0", "1"}[i], "-listen", "127.0.0.1:0"}, w)
			if err != nil {
				t.Errorf("run worker %d: %v", i, err)
			}
		}(i, w)
	}
	readAddr := func(r io.Reader) string {
		sc := bufio.NewScanner(r)
		if !sc.Scan() {
			t.Fatalf("no ADDR line: %v", sc.Err())
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "ADDR ") {
			t.Fatalf("unexpected line %q", line)
		}
		go func() {
			for sc.Scan() {
			}
		}()
		return strings.TrimPrefix(line, "ADDR ")
	}
	addrs := []string{readAddr(pr1), readAddr(pr2)}

	g := topology.Complete(16)
	tr, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(16), addrs,
		cluster.NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Register("svc", 5); err != nil {
		t.Fatal(err)
	}
	e, err := tr.Locate(12, "svc")
	if err != nil {
		t.Fatal(err)
	}
	if e.Addr != 5 {
		t.Fatalf("located at %d, want 5", e.Addr)
	}
}
