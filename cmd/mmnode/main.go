// Command mmnode serves one node-shard of a NetTransport cluster: the
// rendezvous caches and live-server table for a contiguous range of
// graph nodes, spoken over the internal/netwire TCP protocol. Start
// one mmnode per process (or machine), hand the address list to
// cluster.NewNetTransport (or `mmload -transport net -addrs ...`), and
// the socket backend gives the same answers and the same message-pass
// accounting as the in-process transports.
//
// The node range is given either explicitly (-lo/-hi) or as a slot in
// the standard partition (-procs/-index, the layout cmd/mmctl spawns
// and cluster.PartitionRange defines). On startup the process prints
// one machine-readable line, "ADDR host:port", so orchestrators can
// collect addresses from ephemeral ports. SIGTERM (and SIGINT) drain
// gracefully: stop accepting, finish in-flight requests, exit 0.
//
// Usage:
//
//	mmnode -nodes 36 -procs 3 -index 1            # serve nodes [12,24)
//	mmnode -nodes 36 -lo 12 -hi 24 -listen :7701  # the same, pinned port
//	mmnode -nodes 36 -procs 3 -index 1 -metrics 127.0.0.1:0
//	                                              # + Prometheus /metrics
//	                                              # (prints "METRICS host:port")
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"matchmake/internal/cluster"
	"matchmake/internal/gate"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmnode:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmnode", flag.ContinueOnError)
	var (
		nodes   = fs.Int("nodes", 0, "cluster size n (required)")
		procs   = fs.Int("procs", 0, "total processes in the standard partition")
		index   = fs.Int("index", -1, "this process's slot in the standard partition")
		lo      = fs.Int("lo", -1, "first owned node (alternative to -procs/-index)")
		hi      = fs.Int("hi", -1, "one past the last owned node")
		listen  = fs.String("listen", "127.0.0.1:0", "TCP listen address")
		metrics = fs.String("metrics", "", "serve Prometheus /metrics for this node shard on this HTTP address (empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	l, h, err := nodeRange(*nodes, *procs, *index, *lo, *hi)
	if err != nil {
		return err
	}
	// The metrics endpoint mounts once the worker's listener is bound:
	// the ready hook hands over the live NodeServer, and a second line,
	// "METRICS host:port", follows the worker's "ADDR" line so scrapers
	// can be pointed at ephemeral ports too.
	var ms *http.Server
	ready := func(srv *cluster.NodeServer) {
		if *metrics == "" {
			return
		}
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintf(out, "mmnode: metrics listener: %v\n", err)
			return
		}
		fmt.Fprintf(out, "METRICS %s\n", ln.Addr())
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", gate.NodeMetricsHandler(srv))
		ms = &http.Server{Handler: mux}
		go func() { _ = ms.Serve(ln) }()
	}
	if err := cluster.RunNodeWorkerWithReady(*nodes, l, h, *listen, out, ready); err != nil {
		return err
	}
	if ms != nil {
		_ = ms.Close()
	}
	fmt.Fprintln(out, "mmnode: drained")
	return nil
}

// nodeRange resolves the owned range from either -lo/-hi or the
// standard -procs/-index partition.
func nodeRange(nodes, procs, index, lo, hi int) (int, int, error) {
	if nodes <= 0 {
		return 0, 0, fmt.Errorf("-nodes is required and must be positive")
	}
	explicit := lo >= 0 || hi >= 0
	slotted := procs > 0 || index >= 0
	switch {
	case explicit && slotted:
		return 0, 0, fmt.Errorf("use either -lo/-hi or -procs/-index, not both")
	case explicit:
		if lo < 0 || hi <= lo || hi > nodes {
			return 0, 0, fmt.Errorf("range [%d,%d) invalid for n=%d", lo, hi, nodes)
		}
		return lo, hi, nil
	case slotted:
		if procs <= 0 || index < 0 || index >= procs {
			return 0, 0, fmt.Errorf("need 0 <= -index (%d) < -procs (%d)", index, procs)
		}
		l, h := cluster.PartitionRange(nodes, procs, index)
		if h <= l {
			return 0, 0, fmt.Errorf("partition slot %d of %d over %d nodes is empty", index, procs, nodes)
		}
		return l, h, nil
	default:
		return 0, 0, fmt.Errorf("give a node range: -procs/-index or -lo/-hi")
	}
}
