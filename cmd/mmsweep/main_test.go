package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"matchmake/internal/sweep/procctl"
)

// TestMain lets procctl.Spawn re-exec this test binary as a node
// worker, exactly as the installed mmsweep binary would.
func TestMain(m *testing.M) {
	procctl.MaybeWorker()
	os.Exit(m.Run())
}

// TestRunAndTables drives the binary's whole loop: a small matrix
// (mem plus a real net scenario over spawned processes) with gates
// on, then table regeneration into a marker doc from the recorded
// results.
func TestRunAndTables(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	dir := t.TempDir()
	matrix := filepath.Join(dir, "matrix.json")
	if err := os.WriteFile(matrix, []byte(`{
		"defaults": {"nodes": 12, "ports": 4, "duration": "150ms", "seed": 7, "procs": 3},
		"dims": {
			"transport": ["mem", "net"],
			"replicas": [2],
			"kill_rate": [0, 10]
		}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	results := filepath.Join(dir, "results")
	var out bytes.Buffer
	if err := run([]string{"run", "-matrix", matrix, "-results", results, "-gate"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "4/4 scenarios passed") {
		t.Fatalf("summary missing:\n%s", out.String())
	}

	doc := filepath.Join(dir, "doc.md")
	if err := os.WriteFile(doc, []byte("# doc\n\n<!-- mmsweep:begin availability -->\nstale\n<!-- mmsweep:end availability -->\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"tables", "-results", results, "-doc", doc}, &out); err != nil {
		t.Fatalf("tables: %v\n%s", err, out.String())
	}
	b, err := os.ReadFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "| kill rate | r | availability |") {
		t.Fatalf("doc not regenerated:\n%s", b)
	}
	if strings.Contains(string(b), "stale") {
		t.Fatalf("stale table survived:\n%s", b)
	}
	// Regenerating again is a no-op.
	out.Reset()
	if err := run([]string{"tables", "-results", results, "-doc", doc}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "already up to date") {
		t.Fatalf("second regeneration not a fixed point:\n%s", out.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Fatal("want usage error")
	}
	if err := run([]string{"frobnicate"}, &out); err == nil {
		t.Fatal("want unknown-subcommand error")
	}
	if err := run([]string{"run"}, &out); err == nil {
		t.Fatal("want missing -matrix error")
	}
	if err := run([]string{"tables"}, &out); err == nil {
		t.Fatal("want missing -results error")
	}
}
