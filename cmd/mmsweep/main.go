// Command mmsweep expands a declarative scenario matrix into concrete
// load runs over real clusters and records machine-readable results.
//
//	mmsweep run -matrix sweeps/smoke.json -results results/ [-gate] [-addrs host:p1,host:p2] [-procs 3]
//	mmsweep tables -results results/ -doc EXPERIMENTS.md
//
// run expands the matrix (the cartesian product of its dimension
// lists plus any explicit scenarios), drives every scenario through
// the internal/sweep/loadrun engine — spawning a real node-process
// cluster per net scenario, or targeting an external cluster (compose,
// remote hosts) via -addrs — and writes one JSON record per run plus
// an index to -results. With -gate the per-scenario invariants
// (availability bounds, zero hard errors, zero forged answers at
// 2f+1, quiescence budget) are asserted and a failing run fails the
// command after the whole sweep has run.
//
// tables regenerates the measured tables in a document from a results
// directory: every block between <!-- mmsweep:begin NAME --> and
// <!-- mmsweep:end NAME --> markers is replaced with the table
// generated from the recorded runs, stamped with the recording
// toolchain.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"matchmake/internal/sweep"
	"matchmake/internal/sweep/procctl"
)

func main() {
	// Spawned node workers re-exec this binary; the env tells us apart.
	procctl.MaybeWorker()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmsweep:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: mmsweep <run|tables> [flags]")
	}
	switch args[0] {
	case "run":
		return cmdRun(args[1:], out)
	case "tables":
		return cmdTables(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run or tables)", args[0])
	}
}

func cmdRun(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmsweep run", flag.ContinueOnError)
	matrix := fs.String("matrix", "", "scenario matrix file (JSON)")
	results := fs.String("results", "", "directory for per-run JSON records and index.json")
	gate := fs.Bool("gate", false, "assert per-scenario invariants; fail if any run breaks one")
	addrs := fs.String("addrs", "", "comma-separated node addresses of an external cluster (skip spawning)")
	procs := fs.Int("procs", 3, "node-process count for spawned net clusters")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *matrix == "" {
		return fmt.Errorf("run: -matrix is required")
	}
	m, err := sweep.ReadMatrix(*matrix)
	if err != nil {
		return err
	}
	opts := sweep.Options{
		ResultsDir: *results,
		Gate:       *gate,
		Procs:      *procs,
		Env:        sweep.HostEnv("mmsweep run -matrix " + *matrix),
		Out:        out,
	}
	if *addrs != "" {
		opts.Addrs = strings.Split(*addrs, ",")
	}
	idx, err := sweep.Run(m, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mmsweep: %d/%d scenarios passed", idx.Passed, idx.Scenarios)
	if len(idx.Skipped) > 0 {
		fmt.Fprintf(out, " (%d combinations skipped)", len(idx.Skipped))
	}
	fmt.Fprintln(out)
	return nil
}

func cmdTables(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmsweep tables", flag.ContinueOnError)
	results := fs.String("results", "", "results directory from a prior mmsweep run")
	doc := fs.String("doc", "EXPERIMENTS.md", "document whose mmsweep marker blocks to regenerate")
	fs.SetOutput(out)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *results == "" {
		return fmt.Errorf("tables: -results is required")
	}
	recs, err := sweep.ReadRecords(*results)
	if err != nil {
		return err
	}
	env := sweep.HostEnv("")
	if idx, ierr := sweep.ReadIndex(*results); ierr == nil {
		env = idx.Env
	}
	tables := sweep.GenerateTables(recs, env)
	before, err := os.ReadFile(*doc)
	if err != nil {
		return err
	}
	after, err := sweep.UpdateDoc(before, tables)
	if err != nil {
		return err
	}
	if string(after) == string(before) {
		fmt.Fprintf(out, "mmsweep: %s already up to date\n", *doc)
		return nil
	}
	if err := os.WriteFile(*doc, after, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "mmsweep: regenerated %d table(s) in %s from %d runs\n", len(tables), *doc, len(recs))
	return nil
}
