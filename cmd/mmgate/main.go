// Command mmgate runs the multi-tenant service edge over a
// match-making cluster: one process that owns a cluster.Cluster (mem
// fast path, or net against a live mmnode cluster) and serves
// Register / Deregister / Locate / LocateBatch / Watch to arbitrary
// client processes on two listeners — an HTTP/JSON API and the gate
// binary protocol (internal/netwire framing; `mmload -transport gate`
// speaks it).
//
// Tenants come from a JSON table (-tenants, see docs/OPERATIONS.md) or
// a single implicit "dev" tenant authenticated by -dev-token. Each
// tenant is a disjoint port namespace with bearer-token auth and
// per-tenant rate/in-flight quotas; /metrics serves the cluster's
// counters plus per-tenant rollups in Prometheus text form.
//
// On startup the process prints machine-readable lines
//
//	HTTP host:port
//	WIRE host:port
//
// so orchestrators and scripts can collect the ephemeral addresses.
// SIGTERM (and SIGINT) drain gracefully.
//
// Usage:
//
//	mmgate                                        # 64-node mem cluster, dev tenant
//	mmgate -tenants tenants.json -http :8080      # pinned HTTP port, real tenants
//	mmgate -transport net -addrs a,b,c            # front a live mmnode cluster
//	curl -H "Authorization: Bearer dev" 'http://localhost:8080/v1/locate?port=printer&client=3'
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/gate"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "mmgate:", err)
		os.Exit(1)
	}
}

// run boots the gateway and blocks until a shutdown signal (or a stop
// signal on the test-injected stop channel).
func run(args []string, out io.Writer, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("mmgate", flag.ContinueOnError)
	var (
		transportF = fs.String("transport", "mem", "backing transport: mem (in-process) | net (socket cluster; needs -addrs)")
		addrsF     = fs.String("addrs", "", "net transport: comma-separated node-process addresses in partition order")
		netConns   = fs.Int("net-conns", 0, "net transport: connections per node process (0 = default)")
		topoF      = fs.String("topology", "complete", "topology: complete|grid|ring|hypercube")
		nodesF     = fs.Int("nodes", 64, "network size")
		stratF     = fs.String("strategy", "checkerboard", "strategy: checkerboard|random|broadcast|sweep")
		replicasF  = fs.Int("replicas", 1, "replication factor r of the rendezvous strategy (1 = unreplicated)")
		hintsF     = fs.Bool("hints", false, "enable the gateway-side address hint cache")
		seedF      = fs.Int64("seed", 1, "strategy RNG seed")
		tenantsF   = fs.String("tenants", "", "tenant table JSON file (see docs/OPERATIONS.md); empty = single dev tenant")
		devTokenF  = fs.String("dev-token", "dev", "bearer token of the implicit dev tenant when -tenants is empty")
		httpF      = fs.String("http", "127.0.0.1:0", "HTTP/JSON listen address")
		wireF      = fs.String("wire", "127.0.0.1:0", "binary (gate protocol) listen address; empty = disabled")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	tenants := gate.DevTenant(*devTokenF)
	if *tenantsF != "" {
		var err error
		if tenants, err = gate.LoadTenants(*tenantsF); err != nil {
			return err
		}
	}

	g, err := buildTopology(*topoF, *nodesF)
	if err != nil {
		return err
	}
	strat, err := buildStrategy(*stratF, g.N(), *seedF)
	if err != nil {
		return err
	}
	tr, err := buildTransport(*transportF, *addrsF, *netConns, *replicasF, g, strat)
	if err != nil {
		return err
	}

	hub := gate.NewHub(0)
	c := cluster.New(tr, cluster.Options{Hints: *hintsF, OnEvent: hub.Publish})
	defer c.Close()
	gw, err := gate.New(c, hub, tenants)
	if err != nil {
		return err
	}
	defer gw.Close()

	httpLn, err := net.Listen("tcp", *httpF)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "HTTP %s\n", httpLn.Addr())
	hs := &http.Server{Handler: gw.HTTPHandler()}
	httpErr := make(chan error, 1)
	go func() { httpErr <- hs.Serve(httpLn) }()

	var ws *netwire.Server
	wireErr := make(chan error, 1)
	if *wireF != "" {
		wireLn, err := net.Listen("tcp", *wireF)
		if err != nil {
			hs.Close()
			return err
		}
		fmt.Fprintf(out, "WIRE %s\n", wireLn.Addr())
		ws = netwire.NewServer(wireLn, gw.WireHandler())
		go func() { wireErr <- ws.Serve() }()
	}
	fmt.Fprintf(out, "mmgate: serving transport=%s nodes=%d strategy=%s tenants=%d\n",
		tr.Name(), g.N(), strat.Name(), len(tenants))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-stop:
	case err := <-httpErr:
		return fmt.Errorf("http server: %w", err)
	case err := <-wireErr:
		return fmt.Errorf("wire server: %w", err)
	}

	if ws != nil {
		ws.Drain()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = hs.Shutdown(ctx)
	fmt.Fprintln(out, "mmgate: drained")
	return nil
}

// buildTopology mirrors mmload's topology set so a gateway can be
// stood up over any graph the load driver understands.
func buildTopology(name string, n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("need at least 2 nodes")
	}
	switch name {
	case "complete":
		return topology.Complete(n), nil
	case "ring":
		return topology.Ring(n)
	case "grid":
		p := int(math.Sqrt(float64(n)))
		for p > 1 && n%p != 0 {
			p--
		}
		if p <= 1 {
			return nil, fmt.Errorf("grid needs a composite node count, got %d", n)
		}
		gr, err := topology.NewGrid(p, n/p)
		if err != nil {
			return nil, err
		}
		return gr.G, nil
	case "hypercube":
		d := 0
		for 1<<d < n {
			d++
		}
		if 1<<d != n {
			return nil, fmt.Errorf("hypercube needs a power-of-two node count, got %d", n)
		}
		h, err := topology.NewHypercube(d)
		if err != nil {
			return nil, err
		}
		return h.G, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

// buildStrategy mirrors mmload's strategy set.
func buildStrategy(name string, n int, seed int64) (rendezvous.Strategy, error) {
	switch name {
	case "checkerboard":
		return rendezvous.Checkerboard(n), nil
	case "random":
		k := int(math.Ceil(math.Sqrt(float64(n)))) * 2
		return rendezvous.Random(n, k, k, uint64(seed)), nil
	case "broadcast":
		return rendezvous.Broadcast(n), nil
	case "sweep":
		return rendezvous.Sweep(n), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

// buildTransport assembles the backing transport the gateway fronts.
func buildTransport(kind, addrs string, conns, replicas int, g *graph.Graph, strat rendezvous.Strategy) (cluster.Transport, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("-replicas must be ≥ 1, got %d", replicas)
	}
	var rp *strategy.Replicated
	if replicas > 1 {
		var err error
		if rp, err = strategy.NewReplicated(strat, replicas); err != nil {
			return nil, err
		}
	}
	switch kind {
	case "mem":
		if rp != nil {
			return cluster.NewReplicatedMemTransport(g, rp, 0)
		}
		return cluster.NewMemTransport(g, strat, 0)
	case "net":
		if addrs == "" {
			return nil, fmt.Errorf("-transport net needs -addrs (boot a cluster with `mmctl up` or mmnode)")
		}
		opts := cluster.NetOptions{ConnsPerProc: conns, CallTimeout: 30 * time.Second}
		if rp != nil {
			return cluster.NewReplicatedNetTransport(g, rp, strings.Split(addrs, ","), opts)
		}
		return cluster.NewNetTransport(g, strat, strings.Split(addrs, ","), opts)
	default:
		return nil, fmt.Errorf("unknown transport %q (mmgate fronts mem or net)", kind)
	}
}
