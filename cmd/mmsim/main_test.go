package main

import (
	"strings"
	"testing"
)

func TestRunTopologies(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"grid", []string{"-topology", "grid", "-side", "4", "-servers", "1", "-locates", "4"}},
		{"torus", []string{"-topology", "torus", "-side", "4", "-servers", "1", "-locates", "4"}},
		{"hypercube", []string{"-topology", "hypercube", "-dim", "4", "-servers", "1", "-locates", "4"}},
		{"ccc", []string{"-topology", "ccc", "-dim", "3", "-servers", "1", "-locates", "4"}},
		{"plane", []string{"-topology", "plane", "-order", "3", "-servers", "1", "-locates", "4"}},
		{"ring", []string{"-topology", "ring", "-n", "12", "-servers", "1", "-locates", "4"}},
		{"complete", []string{"-topology", "complete", "-n", "16", "-servers", "1", "-locates", "4"}},
		{"random", []string{"-topology", "random", "-n", "25", "-servers", "1", "-locates", "4"}},
		{"hierarchy", []string{"-topology", "hierarchy", "-servers", "1", "-locates", "4"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err != nil {
				t.Fatalf("run(%v): %v", tt.args, err)
			}
		})
	}
}

func TestRunWithCrash(t *testing.T) {
	args := []string{"-topology", "complete", "-n", "16", "-servers", "1", "-locates", "6", "-crash", "2"}
	if err := run(args); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
}

func TestRunUnknownTopology(t *testing.T) {
	err := run([]string{"-topology", "moebius"})
	if err == nil || !strings.Contains(err.Error(), "unknown topology") {
		t.Fatalf("err = %v, want unknown topology", err)
	}
}
