// Command mmsim runs one match-making simulation: build a topology,
// install its natural strategy, register servers, run client locates and
// report the message-pass accounting.
//
// Usage:
//
//	mmsim -topology grid -side 8 -servers 3 -locates 50
//	mmsim -topology hypercube -dim 6 -crash 2
//	mmsim -topology ring -n 64
//	mmsim -topology plane -order 7
//	mmsim -topology random -n 100
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand/v2"
	"os"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/stats"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("mmsim", flag.ContinueOnError)
	var (
		topo    = fs.String("topology", "grid", "grid|torus|hypercube|ccc|plane|ring|complete|random|hierarchy")
		side    = fs.Int("side", 8, "grid/torus side")
		dim     = fs.Int("dim", 6, "hypercube/ccc dimension")
		order   = fs.Int("order", 5, "projective plane order (prime)")
		n       = fs.Int("n", 64, "node count (ring/complete/random)")
		servers = fs.Int("servers", 3, "number of servers to register")
		locates = fs.Int("locates", 50, "number of client locates")
		crash   = fs.Int("crash", 0, "random nodes to crash before locating")
		seed    = fs.Uint64("seed", 1, "random seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, strat, err := buildTopology(*topo, *side, *dim, *order, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("network %s: %d nodes, %d edges; strategy %s\n",
		g.Name(), g.N(), g.M(), strat.Name())

	net, err := sim.New(g)
	if err != nil {
		return err
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strat, core.Options{LocateTimeout: 500 * time.Millisecond})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewPCG(*seed, *seed^0xa54ff53a5f1d36f1))
	for i := 0; i < *servers; i++ {
		node := graph.NodeID(rng.IntN(g.N()))
		port := core.Port(fmt.Sprintf("svc-%d", i))
		net.ResetCounters()
		if _, err := sys.RegisterServer(port, node); err != nil {
			return fmt.Errorf("register %s: %w", port, err)
		}
		fmt.Printf("  server %-7s at node %-4d post hops %d\n", port, node, net.Hops())
	}

	for c := 0; c < *crash; c++ {
		v := graph.NodeID(rng.IntN(g.N()))
		if err := net.Crash(v); err != nil {
			return err
		}
		fmt.Printf("  crashed node %d\n", v)
	}

	var hops []float64
	found := 0
	for i := 0; i < *locates; i++ {
		client := graph.NodeID(rng.IntN(g.N()))
		if net.Crashed(client) {
			continue
		}
		port := core.Port(fmt.Sprintf("svc-%d", rng.IntN(*servers)))
		net.ResetCounters()
		if _, err := sys.Locate(client, port); err == nil {
			found++
			hops = append(hops, float64(net.Hops()))
		}
	}
	sum := stats.Summarize(hops)
	fmt.Printf("locates: %d attempted, %d found\n", *locates, found)
	fmt.Printf("hops/locate: mean %.1f  p50 %.1f  p95 %.1f  max %.0f  (2√n = %.1f)\n",
		sum.Mean, sum.P50, sum.P95, sum.Max, 2*math.Sqrt(float64(g.N())))
	fmt.Printf("max cache: %d entries\n", stats.MaxInts(sys.CacheSizes()))
	return nil
}

func buildTopology(topo string, side, dim, order, n int, seed uint64) (*graph.Graph, rendezvous.Strategy, error) {
	switch topo {
	case "grid":
		gr, err := topology.NewGrid(side, side)
		if err != nil {
			return nil, nil, err
		}
		return gr.G, strategy.Manhattan(gr), nil
	case "torus":
		to, err := topology.NewTorus(side, side)
		if err != nil {
			return nil, nil, err
		}
		return to.G, strategy.Manhattan(to), nil
	case "hypercube":
		h, err := topology.NewHypercube(dim)
		if err != nil {
			return nil, nil, err
		}
		s, err := strategy.HalfCube(h)
		if err != nil {
			return nil, nil, err
		}
		return h.G, s, nil
	case "ccc":
		c, err := topology.NewCCC(dim)
		if err != nil {
			return nil, nil, err
		}
		return c.G, strategy.CCCSplit(c), nil
	case "plane":
		p, err := topology.NewPlane(order)
		if err != nil {
			return nil, nil, err
		}
		return p.G, strategy.PlaneLines(p), nil
	case "ring":
		g, err := topology.Ring(n)
		if err != nil {
			return nil, nil, err
		}
		return g, rendezvous.Broadcast(n), nil
	case "complete":
		g := topology.Complete(n)
		return g, rendezvous.Checkerboard(n), nil
	case "random":
		g, err := topology.RandomConnected(n, n/2, seed)
		if err != nil {
			return nil, nil, err
		}
		d, err := strategy.NewDecomposition(g)
		if err != nil {
			return nil, nil, err
		}
		return g, d.Strategy(), nil
	case "hierarchy":
		h, err := topology.NewHierarchy(4, 4, 4)
		if err != nil {
			return nil, nil, err
		}
		return h.G, strategy.HierarchyGateways(h), nil
	default:
		return nil, nil, fmt.Errorf("unknown topology %q", topo)
	}
}
