// Command mmload drives a synthetic match-making workload against an
// internal/cluster service and reports throughput, latency quantiles
// and the paper's cost measure (message passes per locate).
//
// One server is registered per port, then client goroutines issue
// locates with the chosen port-popularity distribution until the run
// duration expires. The load is closed-loop by default (-concurrency
// workers back to back); -rate switches to an open-loop arrival process
// feeding the cluster's shard worker pools, where overload is shed and
// reported rather than queued without bound.
//
// The engine itself lives in internal/sweep/loadrun — this binary is a
// flag wrapper over loadrun.Run, and cmd/mmsweep drives the same
// engine programmatically across whole scenario matrices.
//
// Usage:
//
//	mmload                                   # 64-node Zipfian fast-path run
//	mmload -transport sim -duration 5s       # same load over the simulator
//	mmload -transport net -addrs a,b,c       # real sockets: a node-process
//	                                         # cluster from `mmctl up` or mmnode
//	mmload -transport gate -gate-addr a:p    # through a running mmgate service
//	                                         # edge (binary gate protocol)
//	mmload -workload uniform -ports 64
//	mmload -workload zipf -zipf-s 1.4        # skew the port popularity
//	mmload -churn 50ms                       # crash/re-register churn
//	mmload -corrupt-rate 50 -replicas 2      # adversarial state corruption vs
//	                                         # the anti-entropy reconciler
//	mmload -rate 200000                      # open-loop at 200k locates/sec
//	mmload -hints                            # probe-validated address hint cache
//	mmload -batch 16                         # batched locates via LocateBatch
//	mmload -weighted -hot 2                  # frequency-weighted hot-port strategy
//
// Workload flags:
//
//	-workload uniform|zipf   port popularity: uniform, or Zipf-distributed
//	                         so a few hot services dominate (the realistic
//	                         regime for a name server)
//	-zipf-s, -zipf-v         Zipf skew (s > 1) and offset (v ≥ 1)
//	-churn d                 every d, one service is torn down: its server
//	                         deregisters, its node crashes (volatile cache
//	                         lost), a replacement registers at a new node,
//	                         and the crashed node is restored on the next
//	                         churn tick — §1.3's crash/re-register dynamics
//	                         as a sustained background process
//	-replicas r              r-fold replicated rendezvous (strategy
//	                         .Replicated): servers post to every replica
//	                         family, locates fall through the families when
//	                         rendezvous nodes are dead; the report gains
//	                         availability and replica-depth lines
//	-kill-rate k             crash k random rendezvous nodes per second
//	                         (caches lost, no re-registration), restoring
//	                         the previous victim so one node is down at a
//	                         time — the §2.4/§5 fault model that replication
//	                         is measured against; with r=1 affected pairs
//	                         fail, with r≥2 they fall through and succeed
//	-resize-interval d       elastic-membership churn: the transport is
//	                         built elastic (strategy.Epoch) and every d the
//	                         cluster either finishes the draining migration
//	                         or starts the next one, alternating the active
//	                         node count between -nodes and -resize-to —
//	                         live grow/shrink under load, with the epoch,
//	                         migrated-posting and dual-epoch counters in
//	                         the report; servers and clients stay inside
//	                         the smaller membership so every locate remains
//	                         serviceable at every epoch
//	-resize-to m             the smaller active node count the resize
//	                         churn shrinks to (default 3n/4)
//	-corrupt-rate k          inject k adversarial posting corruptions per
//	                         second (silent drops, orphaned duplicates,
//	                         stale addresses, bit-flips with poisoned
//	                         timestamps) while a background anti-entropy
//	                         loop reconciles the damage; after the load
//	                         stops, explicit rounds drain the cluster to
//	                         quiescence and the report shows the
//	                         time-to-quiescence plus the reconcile
//	                         counters (rounds, repairs, corruptions)
//	-reconcile-interval d    anti-entropy background round period
//	                         (defaults to 50ms when -corrupt-rate is set;
//	                         usable alone to measure a quiescent loop's
//	                         zero overhead)
//
// Net-transport cluster membership can also come from an mmctl state
// file instead of a literal address list: -state mm.json reads the
// current "ADDRS" from the file, and -watch-state d polls it so an
// `mmctl scale` run mid-load re-partitions this transport live
// (NetTransport.Rescale) without restarting the workload.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"matchmake/internal/sweep/loadrun"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmload:", err)
		os.Exit(1)
	}
}

// run parses the flag set into a loadrun.Config, runs the engine, and
// prints the summary — the whole binary, kept as a function so the
// tests can call it with a captured writer.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmload", flag.ContinueOnError)
	var cfg loadrun.Config
	fs.StringVar(&cfg.Transport, "transport", "mem", "transport: mem (in-process fast path) | sim (paper-exact simulator) | net (socket cluster; needs -addrs) | gate (mmgate service edge; needs -gate-addr)")
	fs.StringVar(&cfg.GateAddr, "gate-addr", "", "gate transport: mmgate wire address (the WIRE line mmgate prints)")
	fs.StringVar(&cfg.GateToken, "gate-token", "dev", "gate transport: bearer token (a tenant from the gateway's -tenants table)")
	fs.StringVar(&cfg.Addrs, "addrs", "", "net transport: comma-separated node-process addresses in partition order (from `mmctl up` or mmnode)")
	fs.StringVar(&cfg.StateFile, "state", "", "net transport: read the address list from this mmctl state file instead of -addrs")
	fs.DurationVar(&cfg.WatchState, "watch-state", 0, "net transport: poll the -state file this often and rescale onto layout changes (0 = off)")
	fs.IntVar(&cfg.NetConns, "net-conns", 0, "net transport: connections per node process (0 = default; superseded by -net-stripes)")
	fs.IntVar(&cfg.NetStripes, "net-stripes", 0, "net/gate transport: connection stripes per destination process (0 = max(2, GOMAXPROCS))")
	fs.DurationVar(&cfg.CoalesceWin, "coalesce-window", 0, "net transport: wire coalescer window — a promoted flood leader waits this long for more locates to queue (0 = flush immediately)")
	fs.BoolVar(&cfg.NetCoalesce, "net-coalesce", true, "net transport: coalesce concurrent locates into shared wire floods (-net-coalesce=false for one frame per locate)")
	fs.DurationVar(&cfg.ResizeEvery, "resize-interval", 0, "elastic membership churn: resize (or finish the draining resize) this often (0 = off)")
	fs.IntVar(&cfg.ResizeTo, "resize-to", 0, "resize churn: the smaller active node count to shrink to (0 = 3n/4)")
	fs.StringVar(&cfg.Topo, "topology", "complete", "topology: complete|grid|ring|hypercube")
	fs.IntVar(&cfg.Nodes, "nodes", 64, "network size (grid needs a rectangle, hypercube a power of two)")
	fs.StringVar(&cfg.Strategy, "strategy", "checkerboard", "strategy: checkerboard|random|broadcast|sweep")
	fs.IntVar(&cfg.Ports, "ports", 16, "number of services (one server each)")
	fs.StringVar(&cfg.Workload, "workload", "zipf", "port popularity: uniform|zipf")
	fs.Float64Var(&cfg.ZipfS, "zipf-s", 1.2, "Zipf skew exponent (> 1)")
	fs.Float64Var(&cfg.ZipfV, "zipf-v", 1, "Zipf value offset (≥ 1)")
	fs.DurationVar(&cfg.Churn, "churn", 0, "crash/re-register one service this often (0 = off)")
	fs.IntVar(&cfg.Replicas, "replicas", 1, "replication factor r of the rendezvous strategy (1 = unreplicated)")
	fs.Float64Var(&cfg.KillRate, "kill-rate", 0, "crash random non-server nodes at this rate per second (0 = off)")
	fs.Float64Var(&cfg.CorruptRate, "corrupt-rate", 0, "inject adversarial posting corruption (drops, duplicates, stale and bit-flipped entries) at this rate per second while anti-entropy reconciles in the background; the report gains a time-to-quiescence line (0 = off)")
	fs.DurationVar(&cfg.ReconEvery, "reconcile-interval", 0, "anti-entropy background round period (0 = off, or 50ms when -corrupt-rate is set)")
	fs.Float64Var(&cfg.ByzRate, "byzantine-rate", 0, "re-arm the answer-forging adversary (-liars lying rendezvous nodes, fresh seed per wave) at this rate per second; the report gains a forged-answers line (0 = off)")
	fs.IntVar(&cfg.Liars, "liars", 1, "byzantine: number of lying rendezvous nodes per wave (the f of r ≥ 2f+1)")
	fs.IntVar(&cfg.VoteQuorum, "vote-quorum", 0, "answer voting: flood this many replica families per locate and believe only a strict majority (needs -replicas ≥ 2; 0 = first-answer fallthrough)")
	fs.DurationVar(&cfg.Duration, "duration", 2*time.Second, "measurement duration")
	fs.IntVar(&cfg.Concurrency, "concurrency", 8, "closed-loop client goroutines")
	fs.IntVar(&cfg.Rate, "rate", 0, "open-loop arrival rate in locates/sec (0 = closed loop)")
	fs.IntVar(&cfg.Batch, "batch", 0, "closed loop: issue locates in batches of N via LocateBatch (0 = single locates)")
	fs.BoolVar(&cfg.Hints, "hints", false, "enable the per-client address hint cache (probe-validated, generation-invalidated)")
	fs.BoolVar(&cfg.Weighted, "weighted", false, "mem transport: frequency-weighted strategy (hot ports switch to a post-heavy split)")
	fs.IntVar(&cfg.HotPorts, "hot", 2, "weighted: number of ports to keep promoted")
	fs.DurationVar(&cfg.HotRefresh, "hot-refresh", 250*time.Millisecond, "weighted: reclassification period")
	fs.Float64Var(&cfg.HotAlpha, "hot-alpha", 16, "weighted: assumed locate:post frequency ratio (sets the hot query size √(n/α))")
	fs.IntVar(&cfg.Shards, "shards", 0, "cluster shards (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.Workers, "workers", 0, "workers per shard (0 = default)")
	fs.IntVar(&cfg.Queue, "queue", 0, "per-shard async queue depth (0 = default)")
	fs.BoolVar(&cfg.NoCoalesce, "no-coalesce", false, "disable locate coalescing")
	fs.Int64Var(&cfg.Seed, "seed", 1, "workload RNG seed")
	fs.DurationVar(&cfg.LocateTO, "locate-timeout", 250*time.Millisecond, "sim transport: locate timeout")
	fs.DurationVar(&cfg.CollectWin, "collect-window", time.Millisecond, "sim transport: reply collection window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := loadrun.Run(cfg, out)
	if err != nil {
		return err
	}
	res.Report(out)
	return nil
}
