// Command mmload drives a synthetic match-making workload against an
// internal/cluster service and reports throughput, latency quantiles
// and the paper's cost measure (message passes per locate).
//
// One server is registered per port, then client goroutines issue
// locates with the chosen port-popularity distribution until the run
// duration expires. The load is closed-loop by default (-concurrency
// workers back to back); -rate switches to an open-loop arrival process
// feeding the cluster's shard worker pools, where overload is shed and
// reported rather than queued without bound.
//
// Usage:
//
//	mmload                                   # 64-node Zipfian fast-path run
//	mmload -transport sim -duration 5s       # same load over the simulator
//	mmload -workload uniform -ports 64
//	mmload -workload zipf -zipf-s 1.4        # skew the port popularity
//	mmload -churn 50ms                       # crash/re-register churn
//	mmload -rate 200000                      # open-loop at 200k locates/sec
//
// Workload flags:
//
//	-workload uniform|zipf   port popularity: uniform, or Zipf-distributed
//	                         so a few hot services dominate (the realistic
//	                         regime for a name server)
//	-zipf-s, -zipf-v         Zipf skew (s > 1) and offset (v ≥ 1)
//	-churn d                 every d, one service is torn down: its server
//	                         deregisters, its node crashes (volatile cache
//	                         lost), a replacement registers at a new node,
//	                         and the crashed node is restored on the next
//	                         churn tick — §1.3's crash/re-register dynamics
//	                         as a sustained background process
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmload:", err)
		os.Exit(1)
	}
}

type config struct {
	transport   string
	topo        string
	nodes       int
	strategy    string
	ports       int
	workload    string
	zipfS       float64
	zipfV       float64
	churn       time.Duration
	duration    time.Duration
	concurrency int
	rate        int
	shards      int
	workers     int
	queue       int
	noCoalesce  bool
	seed        int64
	locateTO    time.Duration
	collectWin  time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmload", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.transport, "transport", "mem", "transport: mem (in-process fast path) | sim (paper-exact simulator)")
	fs.StringVar(&cfg.topo, "topology", "complete", "topology: complete|grid|ring|hypercube")
	fs.IntVar(&cfg.nodes, "nodes", 64, "network size (grid needs a rectangle, hypercube a power of two)")
	fs.StringVar(&cfg.strategy, "strategy", "checkerboard", "strategy: checkerboard|random|broadcast|sweep")
	fs.IntVar(&cfg.ports, "ports", 16, "number of services (one server each)")
	fs.StringVar(&cfg.workload, "workload", "zipf", "port popularity: uniform|zipf")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "Zipf skew exponent (> 1)")
	fs.Float64Var(&cfg.zipfV, "zipf-v", 1, "Zipf value offset (≥ 1)")
	fs.DurationVar(&cfg.churn, "churn", 0, "crash/re-register one service this often (0 = off)")
	fs.DurationVar(&cfg.duration, "duration", 2*time.Second, "measurement duration")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop client goroutines")
	fs.IntVar(&cfg.rate, "rate", 0, "open-loop arrival rate in locates/sec (0 = closed loop)")
	fs.IntVar(&cfg.shards, "shards", 0, "cluster shards (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.workers, "workers", 0, "workers per shard (0 = default)")
	fs.IntVar(&cfg.queue, "queue", 0, "per-shard async queue depth (0 = default)")
	fs.BoolVar(&cfg.noCoalesce, "no-coalesce", false, "disable locate coalescing")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	fs.DurationVar(&cfg.locateTO, "locate-timeout", 250*time.Millisecond, "sim transport: locate timeout")
	fs.DurationVar(&cfg.collectWin, "collect-window", time.Millisecond, "sim transport: reply collection window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.nodes < 2 {
		return fmt.Errorf("need at least 2 nodes")
	}
	if cfg.ports < 1 {
		return fmt.Errorf("need at least 1 port")
	}

	g, err := buildTopology(cfg.topo, cfg.nodes)
	if err != nil {
		return err
	}
	strat, err := buildStrategy(cfg.strategy, g.N(), cfg.seed)
	if err != nil {
		return err
	}
	tr, err := buildTransport(cfg, g, strat)
	if err != nil {
		return err
	}
	c := cluster.New(tr, cluster.Options{
		Shards:            cfg.shards,
		WorkersPerShard:   cfg.workers,
		QueueDepth:        cfg.queue,
		DisableCoalescing: cfg.noCoalesce,
	})
	defer c.Close()

	// One server per port, spread deterministically over the nodes.
	names := makePortNames(cfg.ports)
	reg := &registry{servers: make([]cluster.ServerRef, cfg.ports)}
	for p := 0; p < cfg.ports; p++ {
		node := graph.NodeID((p * 7919) % g.N())
		ref, err := c.Register(names[p], node)
		if err != nil {
			return fmt.Errorf("register %s at %d: %w", names[p], node, err)
		}
		reg.servers[p] = ref
	}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	if cfg.churn > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runChurn(c, reg, cfg, g.N(), stop)
		}()
	}

	c.ResetMetrics()
	if cfg.rate > 0 {
		err = openLoop(c, cfg, names, g.N())
	} else {
		err = closedLoop(c, cfg, names, g.N())
	}
	close(stop)
	churnWG.Wait()
	if err != nil {
		return err
	}

	m := c.Metrics()
	fmt.Fprintf(out, "mmload: transport=%s topology=%s nodes=%d strategy=%s ports=%d workload=%s%s\n",
		tr.Name(), cfg.topo, g.N(), strat.Name(), cfg.ports, cfg.workload, churnSuffix(cfg))
	fmt.Fprintln(out, m.String())
	return nil
}

func churnSuffix(cfg config) string {
	if cfg.churn <= 0 {
		return ""
	}
	return fmt.Sprintf(" churn=%v", cfg.churn)
}

func portName(p int) core.Port { return core.Port(fmt.Sprintf("svc-%04d", p)) }

// makePortNames materializes the port name table once; the measured
// loops index it rather than formatting a name per locate, which would
// bill the harness's own allocations to the serving path.
func makePortNames(ports int) []core.Port {
	names := make([]core.Port, ports)
	for p := range names {
		names[p] = portName(p)
	}
	return names
}

// registry guards the per-port server handles against the churn loop.
type registry struct {
	mu      sync.Mutex
	servers []cluster.ServerRef
}

func buildTopology(name string, n int) (*graph.Graph, error) {
	switch name {
	case "complete":
		return topology.Complete(n), nil
	case "ring":
		return topology.Ring(n)
	case "grid":
		p := int(math.Sqrt(float64(n)))
		for p > 1 && n%p != 0 {
			p--
		}
		if p <= 1 {
			return nil, fmt.Errorf("grid needs a composite node count, got %d", n)
		}
		gr, err := topology.NewGrid(p, n/p)
		if err != nil {
			return nil, err
		}
		return gr.G, nil
	case "hypercube":
		d := 0
		for 1<<d < n {
			d++
		}
		if 1<<d != n {
			return nil, fmt.Errorf("hypercube needs a power-of-two node count, got %d", n)
		}
		h, err := topology.NewHypercube(d)
		if err != nil {
			return nil, err
		}
		return h.G, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func buildStrategy(name string, n int, seed int64) (rendezvous.Strategy, error) {
	switch name {
	case "checkerboard":
		return rendezvous.Checkerboard(n), nil
	case "random":
		k := int(math.Ceil(math.Sqrt(float64(n)))) * 2
		return rendezvous.Random(n, k, k, uint64(seed)), nil
	case "broadcast":
		return rendezvous.Broadcast(n), nil
	case "sweep":
		return rendezvous.Sweep(n), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

func buildTransport(cfg config, g *graph.Graph, strat rendezvous.Strategy) (cluster.Transport, error) {
	switch cfg.transport {
	case "mem":
		return cluster.NewMemTransport(g, strat, 0)
	case "sim":
		return cluster.NewSimTransport(g, strat, core.Options{
			LocateTimeout: cfg.locateTO,
			CollectWindow: cfg.collectWin,
		})
	default:
		return nil, fmt.Errorf("unknown transport %q", cfg.transport)
	}
}

// portPicker returns a per-goroutine port-popularity sampler over the
// precomputed name table. Zipf makes a handful of ports hot — exactly
// the regime coalescing targets.
func portPicker(cfg config, names []core.Port, workerSeed int64) (func() core.Port, error) {
	rng := rand.New(rand.NewSource(cfg.seed*1_000_003 + workerSeed))
	switch cfg.workload {
	case "uniform":
		return func() core.Port { return names[rng.Intn(len(names))] }, nil
	case "zipf":
		if cfg.zipfS <= 1 {
			return nil, fmt.Errorf("zipf-s must be > 1, got %v", cfg.zipfS)
		}
		if cfg.zipfV < 1 {
			return nil, fmt.Errorf("zipf-v must be ≥ 1, got %v", cfg.zipfV)
		}
		z := rand.NewZipf(rng, cfg.zipfS, cfg.zipfV, uint64(len(names)-1))
		return func() core.Port { return names[z.Uint64()] }, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.workload)
	}
}

// closedLoop hammers the cluster from cfg.concurrency goroutines until
// the deadline; each failed locate is already counted by the metrics.
func closedLoop(c *cluster.Cluster, cfg config, names []core.Port, n int) error {
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	errs := make([]error, cfg.concurrency)
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick, err := portPicker(cfg, names, int64(w))
			if err != nil {
				errs[w] = err
				return
			}
			rng := rand.New(rand.NewSource(cfg.seed*31 + int64(w)))
			for time.Now().Before(deadline) {
				// Batch the deadline check amortization: 64 locates per
				// clock read keeps the loop out of time.Now.
				for i := 0; i < 64; i++ {
					client := graph.NodeID(rng.Intn(n))
					_, _ = c.Locate(client, pick())
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// openLoop submits arrivals at cfg.rate locates/sec onto the cluster's
// shard worker pools, shedding (not queueing) when the pools fall
// behind — the throughput-under-offered-load view.
func openLoop(c *cluster.Cluster, cfg config, names []core.Port, n int) error {
	pick, err := portPicker(cfg, names, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed * 17))
	var pending sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.duration)
	issued := 0
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for now := start; now.Before(deadline); now = <-tick.C {
		due := int(float64(cfg.rate) * now.Sub(start).Seconds())
		for ; issued < due; issued++ {
			client := graph.NodeID(rng.Intn(n))
			pending.Add(1)
			if err := c.Submit(client, pick(), func(core.Entry, error) { pending.Done() }); err != nil {
				pending.Done() // shed; already counted in metrics
			}
		}
	}
	pending.Wait()
	return nil
}

// runChurn tears one service down per tick: deregister, crash the old
// node, re-register at a fresh node, and restore the previous crash
// victim — so at any moment at most one node is down and every service
// keeps moving.
func runChurn(c *cluster.Cluster, reg *registry, cfg config, n int, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(cfg.seed * 101))
	tr := c.Transport()
	lastCrashed := graph.NodeID(-1)
	tick := time.NewTicker(cfg.churn)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			if lastCrashed >= 0 {
				_ = tr.Restore(lastCrashed)
			}
			return
		case <-tick.C:
		}
		p := rng.Intn(len(reg.servers))
		reg.mu.Lock()
		ref := reg.servers[p]
		oldNode := ref.Node()
		_ = ref.Deregister()
		if lastCrashed >= 0 {
			_ = tr.Restore(lastCrashed)
		}
		_ = tr.Crash(oldNode)
		lastCrashed = oldNode
		newNode := graph.NodeID(rng.Intn(n))
		for newNode == oldNode {
			newNode = graph.NodeID(rng.Intn(n))
		}
		if newRef, err := c.Register(ref.Port(), newNode); err == nil {
			reg.servers[p] = newRef
		}
		reg.mu.Unlock()
	}
}
