// Command mmload drives a synthetic match-making workload against an
// internal/cluster service and reports throughput, latency quantiles
// and the paper's cost measure (message passes per locate).
//
// One server is registered per port, then client goroutines issue
// locates with the chosen port-popularity distribution until the run
// duration expires. The load is closed-loop by default (-concurrency
// workers back to back); -rate switches to an open-loop arrival process
// feeding the cluster's shard worker pools, where overload is shed and
// reported rather than queued without bound.
//
// Usage:
//
//	mmload                                   # 64-node Zipfian fast-path run
//	mmload -transport sim -duration 5s       # same load over the simulator
//	mmload -transport net -addrs a,b,c       # real sockets: a node-process
//	                                         # cluster from `mmctl up` or mmnode
//	mmload -transport gate -gate-addr a:p    # through a running mmgate service
//	                                         # edge (binary gate protocol)
//	mmload -workload uniform -ports 64
//	mmload -workload zipf -zipf-s 1.4        # skew the port popularity
//	mmload -churn 50ms                       # crash/re-register churn
//	mmload -corrupt-rate 50 -replicas 2      # adversarial state corruption vs
//	                                         # the anti-entropy reconciler
//	mmload -rate 200000                      # open-loop at 200k locates/sec
//	mmload -hints                            # probe-validated address hint cache
//	mmload -batch 16                         # batched locates via LocateBatch
//	mmload -weighted -hot 2                  # frequency-weighted hot-port strategy
//
// Workload flags:
//
//	-workload uniform|zipf   port popularity: uniform, or Zipf-distributed
//	                         so a few hot services dominate (the realistic
//	                         regime for a name server)
//	-zipf-s, -zipf-v         Zipf skew (s > 1) and offset (v ≥ 1)
//	-churn d                 every d, one service is torn down: its server
//	                         deregisters, its node crashes (volatile cache
//	                         lost), a replacement registers at a new node,
//	                         and the crashed node is restored on the next
//	                         churn tick — §1.3's crash/re-register dynamics
//	                         as a sustained background process
//	-replicas r              r-fold replicated rendezvous (strategy
//	                         .Replicated): servers post to every replica
//	                         family, locates fall through the families when
//	                         rendezvous nodes are dead; the report gains
//	                         availability and replica-depth lines
//	-kill-rate k             crash k random rendezvous nodes per second
//	                         (caches lost, no re-registration), restoring
//	                         the previous victim so one node is down at a
//	                         time — the §2.4/§5 fault model that replication
//	                         is measured against; with r=1 affected pairs
//	                         fail, with r≥2 they fall through and succeed
//	-resize-interval d       elastic-membership churn: the transport is
//	                         built elastic (strategy.Epoch) and every d the
//	                         cluster either finishes the draining migration
//	                         or starts the next one, alternating the active
//	                         node count between -nodes and -resize-to —
//	                         live grow/shrink under load, with the epoch,
//	                         migrated-posting and dual-epoch counters in
//	                         the report; servers and clients stay inside
//	                         the smaller membership so every locate remains
//	                         serviceable at every epoch
//	-resize-to m             the smaller active node count the resize
//	                         churn shrinks to (default 3n/4)
//	-corrupt-rate k          inject k adversarial posting corruptions per
//	                         second (silent drops, orphaned duplicates,
//	                         stale addresses, bit-flips with poisoned
//	                         timestamps) while a background anti-entropy
//	                         loop reconciles the damage; after the load
//	                         stops, explicit rounds drain the cluster to
//	                         quiescence and the report shows the
//	                         time-to-quiescence plus the reconcile
//	                         counters (rounds, repairs, corruptions)
//	-reconcile-interval d    anti-entropy background round period
//	                         (defaults to 50ms when -corrupt-rate is set;
//	                         usable alone to measure a quiescent loop's
//	                         zero overhead)
//
// Net-transport cluster membership can also come from an mmctl state
// file instead of a literal address list: -state mm.json reads the
// current "ADDRS" from the file, and -watch-state d polls it so an
// `mmctl scale` run mid-load re-partitions this transport live
// (NetTransport.Rescale) without restarting the workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"runtime"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/gate"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mmload:", err)
		os.Exit(1)
	}
}

type config struct {
	transport   string
	gateAddr    string
	gateToken   string
	addrs       string
	stateFile   string
	watchState  time.Duration
	netConns    int
	netStripes  int
	coalesceWin time.Duration
	netCoalesce bool
	resizeEvery time.Duration
	resizeTo    int
	topo        string
	nodes       int
	strategy    string
	ports       int
	workload    string
	zipfS       float64
	zipfV       float64
	churn       time.Duration
	replicas    int
	killRate    float64
	corruptRate float64
	reconEvery  time.Duration
	byzRate     float64
	liars       int
	voteQuorum  int
	duration    time.Duration
	concurrency int
	rate        int
	batch       int
	hints       bool
	weighted    bool
	hotPorts    int
	hotRefresh  time.Duration
	hotAlpha    float64
	shards      int
	workers     int
	queue       int
	noCoalesce  bool
	seed        int64
	locateTO    time.Duration
	collectWin  time.Duration
}

// stripes resolves the connection-stripe count for the net and gate
// transports: -net-stripes wins, the older -net-conns spelling still
// works, and zero defers to netwire.NewPool's max(2, GOMAXPROCS)
// default.
func (cfg config) stripes() int {
	if cfg.netStripes != 0 {
		return cfg.netStripes
	}
	return cfg.netConns
}

// netOptions assembles the NetOptions shared by the static and
// elastic net transport builders from the wire-tuning flags.
func (cfg config) netOptions() cluster.NetOptions {
	return cluster.NetOptions{
		ConnsPerProc:      cfg.stripes(),
		CallTimeout:       30 * time.Second,
		CoalesceWindow:    cfg.coalesceWin,
		DisableCoalescing: !cfg.netCoalesce,
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mmload", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.transport, "transport", "mem", "transport: mem (in-process fast path) | sim (paper-exact simulator) | net (socket cluster; needs -addrs) | gate (mmgate service edge; needs -gate-addr)")
	fs.StringVar(&cfg.gateAddr, "gate-addr", "", "gate transport: mmgate wire address (the WIRE line mmgate prints)")
	fs.StringVar(&cfg.gateToken, "gate-token", "dev", "gate transport: bearer token (a tenant from the gateway's -tenants table)")
	fs.StringVar(&cfg.addrs, "addrs", "", "net transport: comma-separated node-process addresses in partition order (from `mmctl up` or mmnode)")
	fs.StringVar(&cfg.stateFile, "state", "", "net transport: read the address list from this mmctl state file instead of -addrs")
	fs.DurationVar(&cfg.watchState, "watch-state", 0, "net transport: poll the -state file this often and rescale onto layout changes (0 = off)")
	fs.IntVar(&cfg.netConns, "net-conns", 0, "net transport: connections per node process (0 = default; superseded by -net-stripes)")
	fs.IntVar(&cfg.netStripes, "net-stripes", 0, "net/gate transport: connection stripes per destination process (0 = max(2, GOMAXPROCS))")
	fs.DurationVar(&cfg.coalesceWin, "coalesce-window", 0, "net transport: wire coalescer window — a promoted flood leader waits this long for more locates to queue (0 = flush immediately)")
	fs.BoolVar(&cfg.netCoalesce, "net-coalesce", true, "net transport: coalesce concurrent locates into shared wire floods (-net-coalesce=false for one frame per locate)")
	fs.DurationVar(&cfg.resizeEvery, "resize-interval", 0, "elastic membership churn: resize (or finish the draining resize) this often (0 = off)")
	fs.IntVar(&cfg.resizeTo, "resize-to", 0, "resize churn: the smaller active node count to shrink to (0 = 3n/4)")
	fs.StringVar(&cfg.topo, "topology", "complete", "topology: complete|grid|ring|hypercube")
	fs.IntVar(&cfg.nodes, "nodes", 64, "network size (grid needs a rectangle, hypercube a power of two)")
	fs.StringVar(&cfg.strategy, "strategy", "checkerboard", "strategy: checkerboard|random|broadcast|sweep")
	fs.IntVar(&cfg.ports, "ports", 16, "number of services (one server each)")
	fs.StringVar(&cfg.workload, "workload", "zipf", "port popularity: uniform|zipf")
	fs.Float64Var(&cfg.zipfS, "zipf-s", 1.2, "Zipf skew exponent (> 1)")
	fs.Float64Var(&cfg.zipfV, "zipf-v", 1, "Zipf value offset (≥ 1)")
	fs.DurationVar(&cfg.churn, "churn", 0, "crash/re-register one service this often (0 = off)")
	fs.IntVar(&cfg.replicas, "replicas", 1, "replication factor r of the rendezvous strategy (1 = unreplicated)")
	fs.Float64Var(&cfg.killRate, "kill-rate", 0, "crash random non-server nodes at this rate per second (0 = off)")
	fs.Float64Var(&cfg.corruptRate, "corrupt-rate", 0, "inject adversarial posting corruption (drops, duplicates, stale and bit-flipped entries) at this rate per second while anti-entropy reconciles in the background; the report gains a time-to-quiescence line (0 = off)")
	fs.DurationVar(&cfg.reconEvery, "reconcile-interval", 0, "anti-entropy background round period (0 = off, or 50ms when -corrupt-rate is set)")
	fs.Float64Var(&cfg.byzRate, "byzantine-rate", 0, "re-arm the answer-forging adversary (-liars lying rendezvous nodes, fresh seed per wave) at this rate per second; the report gains a forged-answers line (0 = off)")
	fs.IntVar(&cfg.liars, "liars", 1, "byzantine: number of lying rendezvous nodes per wave (the f of r ≥ 2f+1)")
	fs.IntVar(&cfg.voteQuorum, "vote-quorum", 0, "answer voting: flood this many replica families per locate and believe only a strict majority (needs -replicas ≥ 2; 0 = first-answer fallthrough)")
	fs.DurationVar(&cfg.duration, "duration", 2*time.Second, "measurement duration")
	fs.IntVar(&cfg.concurrency, "concurrency", 8, "closed-loop client goroutines")
	fs.IntVar(&cfg.rate, "rate", 0, "open-loop arrival rate in locates/sec (0 = closed loop)")
	fs.IntVar(&cfg.batch, "batch", 0, "closed loop: issue locates in batches of N via LocateBatch (0 = single locates)")
	fs.BoolVar(&cfg.hints, "hints", false, "enable the per-client address hint cache (probe-validated, generation-invalidated)")
	fs.BoolVar(&cfg.weighted, "weighted", false, "mem transport: frequency-weighted strategy (hot ports switch to a post-heavy split)")
	fs.IntVar(&cfg.hotPorts, "hot", 2, "weighted: number of ports to keep promoted")
	fs.DurationVar(&cfg.hotRefresh, "hot-refresh", 250*time.Millisecond, "weighted: reclassification period")
	fs.Float64Var(&cfg.hotAlpha, "hot-alpha", 16, "weighted: assumed locate:post frequency ratio (sets the hot query size √(n/α))")
	fs.IntVar(&cfg.shards, "shards", 0, "cluster shards (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.workers, "workers", 0, "workers per shard (0 = default)")
	fs.IntVar(&cfg.queue, "queue", 0, "per-shard async queue depth (0 = default)")
	fs.BoolVar(&cfg.noCoalesce, "no-coalesce", false, "disable locate coalescing")
	fs.Int64Var(&cfg.seed, "seed", 1, "workload RNG seed")
	fs.DurationVar(&cfg.locateTO, "locate-timeout", 250*time.Millisecond, "sim transport: locate timeout")
	fs.DurationVar(&cfg.collectWin, "collect-window", time.Millisecond, "sim transport: reply collection window")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if cfg.nodes < 2 {
		return fmt.Errorf("need at least 2 nodes")
	}
	if cfg.ports < 1 {
		return fmt.Errorf("need at least 1 port")
	}
	if cfg.rate > 0 && cfg.batch > 0 {
		return fmt.Errorf("-batch applies to the closed loop only; drop -rate to measure LocateBatch")
	}
	if cfg.replicas < 1 {
		return fmt.Errorf("-replicas must be ≥ 1, got %d", cfg.replicas)
	}
	if cfg.replicas > 1 && cfg.weighted {
		return fmt.Errorf("-replicas and -weighted are mutually exclusive")
	}
	if cfg.killRate < 0 {
		return fmt.Errorf("-kill-rate must be ≥ 0, got %v", cfg.killRate)
	}
	if cfg.corruptRate < 0 {
		return fmt.Errorf("-corrupt-rate must be ≥ 0, got %v", cfg.corruptRate)
	}
	if cfg.corruptRate > 0 && cfg.reconEvery == 0 {
		cfg.reconEvery = 50 * time.Millisecond
	}
	if cfg.byzRate < 0 {
		return fmt.Errorf("-byzantine-rate must be ≥ 0, got %v", cfg.byzRate)
	}
	if cfg.byzRate > 0 && cfg.liars < 1 {
		return fmt.Errorf("-liars must be ≥ 1, got %d", cfg.liars)
	}
	if cfg.voteQuorum < 0 {
		return fmt.Errorf("-vote-quorum must be ≥ 0, got %d", cfg.voteQuorum)
	}
	if cfg.voteQuorum >= 2 && cfg.replicas < 2 {
		return fmt.Errorf("-vote-quorum %d needs -replicas ≥ 2 (voting is across replica families)", cfg.voteQuorum)
	}
	if (cfg.byzRate > 0 || cfg.voteQuorum > 0) && cfg.resizeEvery > 0 {
		return fmt.Errorf("-byzantine-rate/-vote-quorum and -resize-interval are mutually exclusive")
	}

	// The transport, node count and the topology/strategy names for the
	// report. With -transport gate the rendezvous machinery lives behind
	// the service edge: the gateway picked topology and strategy, mmload
	// learns the node count from the hello and reports the rest as
	// "remote".
	var (
		tr        cluster.Transport
		n         int
		topoName  string
		stratName string
	)
	if cfg.transport == "gate" {
		if err := validateGateFlags(cfg); err != nil {
			return err
		}
		gt, err := gate.DialTransport(cfg.gateAddr, cfg.gateToken, cfg.stripes())
		if err != nil {
			return err
		}
		tr, n = gt, gt.N()
		topoName, stratName = "remote", "remote"
	} else {
		g, err := buildTopology(cfg.topo, cfg.nodes)
		if err != nil {
			return err
		}
		if cfg.resizeTo == 0 {
			cfg.resizeTo = g.N() * 3 / 4
		}
		if cfg.resizeEvery > 0 {
			if cfg.weighted {
				return fmt.Errorf("-resize-interval and -weighted are mutually exclusive")
			}
			if cfg.resizeTo < 2 || cfg.resizeTo > g.N() {
				return fmt.Errorf("-resize-to %d out of [2,%d]", cfg.resizeTo, g.N())
			}
			if cfg.replicas > cfg.resizeTo {
				return fmt.Errorf("-replicas %d > -resize-to %d", cfg.replicas, cfg.resizeTo)
			}
		}
		if cfg.watchState > 0 {
			if cfg.transport != "net" {
				return fmt.Errorf("-watch-state needs -transport net")
			}
			if cfg.stateFile == "" {
				return fmt.Errorf("-watch-state needs -state")
			}
		}
		if cfg.transport == "net" && cfg.addrs == "" && cfg.stateFile != "" {
			stateAddrs, err := readStateAddrs(cfg.stateFile)
			if err != nil {
				return fmt.Errorf("-state %s: %w", cfg.stateFile, err)
			}
			cfg.addrs = strings.Join(stateAddrs, ",")
		}
		strat, err := buildStrategy(cfg.strategy, g.N(), cfg.seed)
		if err != nil {
			return err
		}
		if tr, err = buildTransport(cfg, g, strat); err != nil {
			return err
		}
		n, topoName, stratName = g.N(), cfg.topo, strat.Name()
	}
	// When membership churns, servers and clients stay inside the
	// smaller epoch's range so every locate remains serviceable.
	activeFloor := n
	if cfg.resizeEvery > 0 && cfg.resizeTo < activeFloor {
		activeFloor = cfg.resizeTo
	}
	copts := cluster.Options{
		Shards:            cfg.shards,
		WorkersPerShard:   cfg.workers,
		QueueDepth:        cfg.queue,
		DisableCoalescing: cfg.noCoalesce,
		Hints:             cfg.hints,
		VoteQuorum:        cfg.voteQuorum,
	}
	if cfg.weighted {
		copts.HotPorts = cfg.hotPorts
		copts.HotRefresh = cfg.hotRefresh
	}
	c := cluster.New(tr, copts)
	defer c.Close()

	// The self-stabilization layer: a background anti-entropy loop (and,
	// with -corrupt-rate, the adversarial injector racing it).
	var antiT cluster.AntiEntropyTransport
	if cfg.corruptRate > 0 || cfg.reconEvery > 0 {
		var ok bool
		if antiT, ok = tr.(cluster.AntiEntropyTransport); !ok {
			return fmt.Errorf("-corrupt-rate/-reconcile-interval need an anti-entropy transport (mem, sim or net), got %s", tr.Name())
		}
		antiT.StartReconcile(cfg.reconEvery)
	}

	// The Byzantine adversary: -byzantine-rate arms -liars rendezvous
	// nodes to forge locate answers, re-armed with a fresh seed per wave.
	var byzT cluster.ByzantineTransport
	if cfg.byzRate > 0 || cfg.voteQuorum >= 2 {
		var ok bool
		if byzT, ok = tr.(cluster.ByzantineTransport); !ok {
			return fmt.Errorf("-byzantine-rate/-vote-quorum need a byzantine-capable transport (mem, sim or net), got %s", tr.Name())
		}
	}

	// One server per port, spread deterministically over the nodes and
	// announced through the batched posting path (one shard lock per
	// store shard, bulk pass accounting).
	names := makePortNames(cfg.ports)
	regs := make([]cluster.Registration, cfg.ports)
	for p := 0; p < cfg.ports; p++ {
		regs[p] = cluster.Registration{Port: names[p], Node: graph.NodeID((p * 7919) % activeFloor)}
	}
	refs, err := c.PostBatch(regs)
	if err != nil {
		return fmt.Errorf("register services: %w", err)
	}
	reg := &registry{servers: refs}

	stop := make(chan struct{})
	var churnWG sync.WaitGroup
	if cfg.churn > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runChurn(c, reg, cfg, activeFloor, stop)
		}()
	}
	var kills int64
	if cfg.killRate > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			kills = runKiller(c, reg, cfg, activeFloor, stop)
		}()
	}
	if cfg.corruptRate > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runCorruptor(antiT, cfg, stop)
		}()
	}
	var det *forgeDetector
	if byzT != nil {
		det = newForgeDetector(cfg, reg, names)
	}
	var armed int64
	if cfg.byzRate > 0 {
		// Arm the first wave before measurement starts so the adversary
		// is live for the whole window.
		n0, aerr := byzT.Arm(cluster.ArmOptions{Seed: cfg.seed * 6053, Liars: cfg.liars})
		if aerr != nil {
			return fmt.Errorf("arm byzantine adversary: %w", aerr)
		}
		armed = int64(n0)
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			runArmer(byzT, cfg, stop)
		}()
	}
	var resizes int64
	var resizeErr error
	if cfg.resizeEvery > 0 {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			resizes, resizeErr = runResizer(c, cfg, n, stop)
		}()
	}
	if cfg.watchState > 0 {
		// Validated up front: -transport net always builds a *NetTransport.
		netT := tr.(*cluster.NetTransport)
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			watchState(netT, cfg.stateFile, cfg.watchState, stop, out)
		}()
	}

	c.ResetMetrics()
	// Snapshot wire-level counters (net and gate transports) so the
	// report can charge frames and bytes to the measurement window only.
	wireT, _ := tr.(interface{ WireStats() netwire.Stats })
	var wireBefore netwire.Stats
	if wireT != nil {
		wireBefore = wireT.WireStats()
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	if cfg.rate > 0 {
		err = openLoop(c, cfg, names, activeFloor, det)
	} else {
		err = closedLoop(c, cfg, names, activeFloor, det)
	}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	close(stop)
	churnWG.Wait()
	if err != nil {
		return err
	}

	// Time-to-quiescence: with the injector stopped, drive explicit
	// rounds until one finds nothing to repair. The drain happens before
	// the snapshot so its rounds and repairs land in the report window.
	var (
		quiesceRounds int
		quiesceIn     time.Duration
	)
	if antiT != nil && cfg.corruptRate > 0 {
		t0 := time.Now()
		for quiesceRounds = 1; quiesceRounds <= 64; quiesceRounds++ {
			r, rerr := antiT.ReconcileRound()
			if rerr != nil {
				return fmt.Errorf("quiescence drain: %w", rerr)
			}
			if r == 0 {
				break
			}
		}
		quiesceIn = time.Since(t0)
	}

	m := c.Metrics()
	fmt.Fprintf(out, "mmload: transport=%s topology=%s nodes=%d strategy=%s ports=%d workload=%s%s\n",
		tr.Name(), topoName, n, stratName, cfg.ports, cfg.workload, churnSuffix(cfg))
	if cfg.killRate > 0 {
		fmt.Fprintf(out, "mmload: kills=%d (rate %.2f/s, one node down at a time, caches lost)\n", kills, cfg.killRate)
	}
	if cfg.corruptRate > 0 {
		fmt.Fprintf(out, "mmload: chaos corrupt-rate=%.2f/s reconcile-interval=%v: time-to-quiescence=%v (%d rounds after load stop)\n",
			cfg.corruptRate, cfg.reconEvery, quiesceIn.Round(time.Microsecond), quiesceRounds)
	}
	if cfg.resizeEvery > 0 {
		fmt.Fprintf(out, "mmload: resizes=%d (every %v, active %d↔%d)\n", resizes, cfg.resizeEvery, n, cfg.resizeTo)
		if resizeErr != nil {
			fmt.Fprintf(out, "mmload: resize: last error: %v\n", resizeErr)
		}
	}
	if det != nil {
		fmt.Fprintf(out, "mmload: byzantine rate=%.2f/s liars=%d armed-lies=%d vote-quorum=%d forged=%d\n",
			cfg.byzRate, cfg.liars, armed, cfg.voteQuorum, det.forged.Load())
	}
	fmt.Fprintln(out, m.String())
	if m.Locates > 0 {
		// Process-wide allocation count over the window divided by
		// locates: includes the harness's own allocations, so it is an
		// upper bound on the serving path's allocs/op.
		allocs := float64(memAfter.Mallocs-memBefore.Mallocs) / float64(m.Locates)
		fmt.Fprintf(out, "allocs/locate≈%.2f (process-wide upper bound)\n", allocs)
	}
	if wireT != nil && m.Locates > 0 {
		d := wireT.WireStats().Sub(wireBefore)
		fmt.Fprintf(out, "wire: frames/locate=%.2f bytes/locate=%.0f (tx+rx, all ops in window)\n",
			float64(d.FramesSent+d.FramesRecv)/float64(m.Locates),
			float64(d.BytesSent+d.BytesRecv)/float64(m.Locates))
		if ct, ok := tr.(interface{ CoalesceStats() (int64, int64) }); ok {
			if co, fl := ct.CoalesceStats(); fl > 0 {
				fmt.Fprintf(out, "wire: coalesced=%d locates into %d shared floods (%.2f locates/flood)\n",
					co, fl, float64(co)/float64(fl))
			}
		}
	}
	return nil
}

// validateGateFlags rejects flags that configure machinery living on
// the gateway's side of the wire: with -transport gate the rendezvous
// strategy, hint cache, fault injection and membership churn all
// belong to the mmgate process, not the load driver.
func validateGateFlags(cfg config) error {
	if cfg.gateAddr == "" {
		return fmt.Errorf("-transport gate needs -gate-addr (the WIRE line mmgate prints)")
	}
	switch {
	case cfg.addrs != "" || cfg.stateFile != "":
		return fmt.Errorf("-addrs/-state belong to -transport net; the gateway owns its own cluster")
	case cfg.hints:
		return fmt.Errorf("-hints is gateway-side: start mmgate with -hints instead")
	case cfg.weighted:
		return fmt.Errorf("-weighted is gateway-side; not available over -transport gate")
	case cfg.replicas > 1:
		return fmt.Errorf("-replicas is gateway-side: start mmgate with -replicas instead")
	case cfg.churn > 0 || cfg.killRate > 0:
		return fmt.Errorf("-churn/-kill-rate need direct transport access; not available over -transport gate")
	case cfg.resizeEvery > 0 || cfg.watchState > 0:
		return fmt.Errorf("membership churn (-resize-interval/-watch-state) is not available over -transport gate")
	case cfg.corruptRate > 0 || cfg.reconEvery > 0:
		return fmt.Errorf("-corrupt-rate/-reconcile-interval need direct transport access; not available over -transport gate")
	case cfg.byzRate > 0 || cfg.voteQuorum > 0:
		return fmt.Errorf("-byzantine-rate/-vote-quorum need direct transport access; not available over -transport gate")
	}
	return nil
}

func churnSuffix(cfg config) string {
	if cfg.churn <= 0 {
		return ""
	}
	return fmt.Sprintf(" churn=%v", cfg.churn)
}

func portName(p int) core.Port { return core.Port(fmt.Sprintf("svc-%04d", p)) }

// makePortNames materializes the port name table once; the measured
// loops index it rather than formatting a name per locate, which would
// bill the harness's own allocations to the serving path.
func makePortNames(ports int) []core.Port {
	names := make([]core.Port, ports)
	for p := range names {
		names[p] = portName(p)
	}
	return names
}

// registry guards the per-port server handles against the churn loop.
type registry struct {
	mu      sync.Mutex
	servers []cluster.ServerRef
}

func buildTopology(name string, n int) (*graph.Graph, error) {
	switch name {
	case "complete":
		return topology.Complete(n), nil
	case "ring":
		return topology.Ring(n)
	case "grid":
		p := int(math.Sqrt(float64(n)))
		for p > 1 && n%p != 0 {
			p--
		}
		if p <= 1 {
			return nil, fmt.Errorf("grid needs a composite node count, got %d", n)
		}
		gr, err := topology.NewGrid(p, n/p)
		if err != nil {
			return nil, err
		}
		return gr.G, nil
	case "hypercube":
		d := 0
		for 1<<d < n {
			d++
		}
		if 1<<d != n {
			return nil, fmt.Errorf("hypercube needs a power-of-two node count, got %d", n)
		}
		h, err := topology.NewHypercube(d)
		if err != nil {
			return nil, err
		}
		return h.G, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

func buildStrategy(name string, n int, seed int64) (rendezvous.Strategy, error) {
	switch name {
	case "checkerboard":
		return rendezvous.Checkerboard(n), nil
	case "random":
		k := int(math.Ceil(math.Sqrt(float64(n)))) * 2
		return rendezvous.Random(n, k, k, uint64(seed)), nil
	case "broadcast":
		return rendezvous.Broadcast(n), nil
	case "sweep":
		return rendezvous.Sweep(n), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

func buildTransport(cfg config, g *graph.Graph, strat rendezvous.Strategy) (cluster.Transport, error) {
	if cfg.resizeEvery > 0 {
		return buildElasticTransport(cfg, g, strat)
	}
	var rp *strategy.Replicated
	if cfg.replicas > 1 {
		var err error
		if rp, err = strategy.NewReplicated(strat, cfg.replicas); err != nil {
			return nil, err
		}
	}
	switch cfg.transport {
	case "mem":
		if cfg.weighted {
			w, err := buildWeighted(g.N(), strat, cfg.hotAlpha)
			if err != nil {
				return nil, err
			}
			return cluster.NewWeightedMemTransport(g, w, 0)
		}
		if rp != nil {
			return cluster.NewReplicatedMemTransport(g, rp, 0)
		}
		return cluster.NewMemTransport(g, strat, 0)
	case "sim":
		if cfg.weighted {
			return nil, fmt.Errorf("-weighted needs -transport mem or net (the sim path runs the base strategy only)")
		}
		opts := core.Options{LocateTimeout: cfg.locateTO, CollectWindow: cfg.collectWin}
		if rp != nil {
			return cluster.NewReplicatedSimTransport(g, rp, opts)
		}
		return cluster.NewSimTransport(g, strat, opts)
	case "net":
		if cfg.addrs == "" {
			return nil, fmt.Errorf("-transport net needs -addrs (boot a cluster with `mmctl up` or mmnode)")
		}
		addrs := strings.Split(cfg.addrs, ",")
		opts := cfg.netOptions()
		if cfg.weighted {
			w, err := buildWeighted(g.N(), strat, cfg.hotAlpha)
			if err != nil {
				return nil, err
			}
			return cluster.NewWeightedNetTransport(g, w, addrs, opts)
		}
		if rp != nil {
			return cluster.NewReplicatedNetTransport(g, rp, addrs, opts)
		}
		return cluster.NewNetTransport(g, strat, addrs, opts)
	default:
		return nil, fmt.Errorf("unknown transport %q", cfg.transport)
	}
}

// buildElasticTransport assembles the epoch-versioned elastic
// transport for the resize-churn scenario: epoch 1 serves the full
// node set (replicated per -replicas); runResizer then alternates the
// membership live.
func buildElasticTransport(cfg config, g *graph.Graph, strat rendezvous.Strategy) (cluster.Transport, error) {
	ep, err := strategy.NewEpoch(1, g.N(), strat, cfg.replicas)
	if err != nil {
		return nil, err
	}
	switch cfg.transport {
	case "mem":
		return cluster.NewElasticMemTransport(g, ep, 0)
	case "sim":
		opts := core.Options{LocateTimeout: cfg.locateTO, CollectWindow: cfg.collectWin}
		return cluster.NewElasticSimTransport(g, ep, opts)
	case "net":
		if cfg.addrs == "" {
			return nil, fmt.Errorf("-transport net needs -addrs or -state (boot a cluster with `mmctl up` or mmnode)")
		}
		return cluster.NewElasticNetTransport(g, ep, strings.Split(cfg.addrs, ","), cfg.netOptions())
	default:
		return nil, fmt.Errorf("unknown transport %q", cfg.transport)
	}
}

// runResizer is the membership-churn loop: every tick it either
// finishes the draining migration (retiring the old epoch) or starts
// the next transition, alternating the active node count between the
// full universe and -resize-to under a fresh epoch of the configured
// strategy family. It returns the number of transitions begun and the
// last error seen.
func runResizer(c *cluster.Cluster, cfg config, n int, stop <-chan struct{}) (int64, error) {
	var (
		resizes int64
		lastErr error
	)
	seq := uint64(1)
	toSmall := true
	tick := time.NewTicker(cfg.resizeEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return resizes, lastErr
		case <-tick.C:
		}
		et, ok := c.Transport().(cluster.ElasticTransport)
		if !ok || !et.Elastic() {
			return resizes, fmt.Errorf("transport %s is not elastic", c.Transport().Name())
		}
		if et.Resizing() {
			if err := c.FinishResize(); err != nil {
				lastErr = err
			}
			continue
		}
		active := n
		if toSmall {
			active = cfg.resizeTo
		}
		strat, err := buildStrategy(cfg.strategy, active, cfg.seed)
		if err != nil {
			return resizes, err
		}
		seq++
		ep, err := strategy.NewEpoch(seq, n, strat, cfg.replicas)
		if err != nil {
			return resizes, err
		}
		if _, err := c.Resize(ep); err != nil {
			lastErr = err
			continue
		}
		resizes++
		toSmall = !toSmall
	}
}

// readStateAddrs extracts the worker address list from an mmctl state
// file, in partition order.
func readStateAddrs(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st struct {
		Procs []struct {
			Addr string `json:"addr"`
		} `json:"procs"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	if len(st.Procs) == 0 {
		return nil, fmt.Errorf("state file lists no workers")
	}
	addrs := make([]string, len(st.Procs))
	for i, p := range st.Procs {
		addrs[i] = p.Addr
	}
	return addrs, nil
}

// watchState polls the mmctl state file and rescales the socket
// transport onto every new layout it publishes — the consumer side of
// `mmctl scale`.
func watchState(tr *cluster.NetTransport, path string, interval time.Duration, stop <-chan struct{}, out io.Writer) {
	last := strings.Join(tr.Addrs(), ",")
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		addrs, err := readStateAddrs(path)
		if err != nil {
			continue // mid-rewrite or gone; retry next tick
		}
		j := strings.Join(addrs, ",")
		if j == last {
			continue
		}
		if err := tr.Rescale(addrs); err != nil {
			fmt.Fprintf(out, "mmload: rescale onto %s failed: %v\n", j, err)
			continue
		}
		last = j
		fmt.Fprintf(out, "mmload: rescaled onto %d node processes\n", len(addrs))
	}
}

// buildWeighted assembles the frequency-weighted strategy pair: the
// base strategy plus the (M3′) post-heavy hot split sized for an
// assumed locate:post ratio of alpha.
func buildWeighted(n int, base rendezvous.Strategy, alpha float64) (*strategy.Weighted, error) {
	hot, err := strategy.PostHeavy(n, strategy.AlphaQuerySize(n, alpha))
	if err != nil {
		return nil, err
	}
	return strategy.NewWeighted(base, hot)
}

// portPicker returns a per-goroutine port-popularity sampler over the
// precomputed name table. Zipf makes a handful of ports hot — exactly
// the regime coalescing targets.
func portPicker(cfg config, names []core.Port, workerSeed int64) (func() core.Port, error) {
	rng := rand.New(rand.NewSource(cfg.seed*1_000_003 + workerSeed))
	switch cfg.workload {
	case "uniform":
		return func() core.Port { return names[rng.Intn(len(names))] }, nil
	case "zipf":
		if cfg.zipfS <= 1 {
			return nil, fmt.Errorf("zipf-s must be > 1, got %v", cfg.zipfS)
		}
		if cfg.zipfV < 1 {
			return nil, fmt.Errorf("zipf-v must be ≥ 1, got %v", cfg.zipfV)
		}
		z := rand.NewZipf(rng, cfg.zipfS, cfg.zipfV, uint64(len(names)-1))
		return func() core.Port { return names[z.Uint64()] }, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.workload)
	}
}

// closedLoop hammers the cluster from cfg.concurrency goroutines until
// the deadline; each failed locate is already counted by the metrics.
// With -batch N each worker issues its locates through LocateBatch in
// groups of N (reused request/result slices, shard-grouped store
// access).
func closedLoop(c *cluster.Cluster, cfg config, names []core.Port, n int, det *forgeDetector) error {
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	errs := make([]error, cfg.concurrency)
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick, err := portPicker(cfg, names, int64(w))
			if err != nil {
				errs[w] = err
				return
			}
			rng := rand.New(rand.NewSource(cfg.seed*31 + int64(w)))
			if cfg.batch > 0 {
				reqs := make([]cluster.LocateReq, cfg.batch)
				res := make([]cluster.LocateRes, cfg.batch)
				for time.Now().Before(deadline) {
					for i := range reqs {
						reqs[i] = cluster.LocateReq{Client: graph.NodeID(rng.Intn(n)), Port: pick()}
					}
					if err := c.LocateBatch(reqs, res); err != nil {
						errs[w] = err
						return
					}
					if det != nil {
						for i := range res {
							det.check(reqs[i].Port, res[i].Entry, res[i].Err)
						}
					}
				}
				return
			}
			for time.Now().Before(deadline) {
				// Batch the deadline check amortization: 64 locates per
				// clock read keeps the loop out of time.Now.
				for i := 0; i < 64; i++ {
					client := graph.NodeID(rng.Intn(n))
					port := pick()
					e, err := c.Locate(client, port)
					if det != nil {
						det.check(port, e, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// openLoop submits arrivals at cfg.rate locates/sec onto the cluster's
// shard worker pools, shedding (not queueing) when the pools fall
// behind — the throughput-under-offered-load view.
//
// Pacing is by absolute deadline: the k-th arrival is due at
// start + k/rate, and the loop sleeps until the next arrival's absolute
// due time rather than a fixed relative interval. Relative ticks
// accumulate scheduler drift and drop the final partial interval, which
// undershoots the offered rate (and flatters the shedding stats) once
// the rate climbs past ~100k/s; the absolute schedule self-corrects
// after every oversleep and always issues exactly rate×duration
// arrivals.
func openLoop(c *cluster.Cluster, cfg config, names []core.Port, n int, det *forgeDetector) error {
	pick, err := portPicker(cfg, names, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.seed * 17))
	var pending sync.WaitGroup
	start := time.Now()
	total := int(float64(cfg.rate) * cfg.duration.Seconds())
	perArrival := float64(time.Second) / float64(cfg.rate)
	issued := 0
	for issued < total {
		due := int(float64(cfg.rate) * time.Since(start).Seconds())
		if due > total {
			due = total
		}
		for ; issued < due; issued++ {
			client := graph.NodeID(rng.Intn(n))
			port := pick()
			pending.Add(1)
			if err := c.Submit(client, port, func(e core.Entry, err error) {
				if det != nil {
					det.check(port, e, err)
				}
				pending.Done()
			}); err != nil {
				pending.Done() // shed; already counted in metrics
			}
		}
		if issued >= total {
			break
		}
		next := start.Add(time.Duration(float64(issued+1) * perArrival))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	pending.Wait()
	return nil
}

// runKiller crashes random rendezvous nodes at cfg.killRate per
// second, restoring the previous victim before each new kill so one
// node is down at any moment. A restored node comes back with its
// volatile cache lost, so the killer performs the paper's §5 repair
// duty — every server reposts — before the next kill; what remains
// unrepairable is the live outage window, which is exactly what
// replication is measured against: with r=1 the pairs meeting at the
// dead node fail until it returns, with r≥2 they fall through to the
// next family and succeed. Nodes currently hosting a server are spared
// so every failure observed is a rendezvous failure, not a dead
// service. It returns the number of kills issued.
func runKiller(c *cluster.Cluster, reg *registry, cfg config, n int, stop <-chan struct{}) int64 {
	rng := rand.New(rand.NewSource(cfg.seed * 7919))
	tr := c.Transport()
	var (
		kills int64
		dead  []graph.NodeID
	)
	tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.killRate))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			for _, v := range dead {
				_ = tr.Restore(v)
			}
			return kills
		case <-tick.C:
		}
		reg.mu.Lock()
		homes := make(map[graph.NodeID]bool, len(reg.servers))
		for _, ref := range reg.servers {
			homes[ref.Node()] = true
		}
		reg.mu.Unlock()
		victim := graph.NodeID(-1)
		for tries := 0; tries < 64; tries++ {
			v := graph.NodeID(rng.Intn(n))
			if homes[v] || slices.Contains(dead, v) {
				continue
			}
			victim = v
			break
		}
		if victim < 0 {
			continue
		}
		restored := false
		for len(dead) > 0 {
			_ = tr.Restore(dead[0])
			dead = dead[1:]
			restored = true
		}
		if restored {
			// Refill the restored node's wiped cache: the repair duty
			// the net transport's repair loop automates.
			reg.mu.Lock()
			for _, ref := range reg.servers {
				_ = ref.Repost()
			}
			reg.mu.Unlock()
		}
		if err := tr.Crash(victim); err == nil {
			dead = append(dead, victim)
			kills++
		}
	}
}

// runCorruptor is the adversarial half of the -corrupt-rate chaos mode:
// at the configured rate it injects one corruption operation — a
// dropped posting, an orphaned duplicate, a stale-epoch address or a
// bit-flipped entry with a poisoned timestamp — through the transport's
// deterministic corruption planner, while the background anti-entropy
// loop races it back to the registration ground truth. Each tick draws
// a fresh plan seed so waves differ but any run is reproducible from
// -seed.
func runCorruptor(antiT cluster.AntiEntropyTransport, cfg config, stop <-chan struct{}) {
	wave := int64(0)
	tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.corruptRate))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		wave++
		_, _ = antiT.Corrupt(cluster.CorruptOptions{Seed: cfg.seed*7907 + wave, Count: 1})
	}
}

// runArmer re-arms the answer-forging adversary at cfg.byzRate waves
// per second, each wave drawing fresh liars and fresh lies from a
// fresh seed — like runCorruptor, reproducible from -seed. The plan
// replaces the previous wave's wholesale, so the number of
// concurrently lying nodes stays at cfg.liars.
func runArmer(byzT cluster.ByzantineTransport, cfg config, stop <-chan struct{}) {
	wave := int64(0)
	tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.byzRate))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		wave++
		_, _ = byzT.Arm(cluster.ArmOptions{Seed: cfg.seed*6053 + wave, Liars: cfg.liars})
	}
}

// forgeDetector judges surfaced locate answers against registration
// ground truth, counting the lies that reached a client: a port other
// than the one queried, a fabricated instance id (≥ ForgedIDBase), or —
// when no churn moves the servers mid-run — an address that is not the
// port's registered home. With voting on, this count is the harness's
// exit criterion: zero forged answers may surface.
type forgeDetector struct {
	reg    *registry
	idx    map[core.Port]int
	addrOK bool // address ground truth stable (no churn/resize)
	forged atomic.Int64
}

func newForgeDetector(cfg config, reg *registry, names []core.Port) *forgeDetector {
	idx := make(map[core.Port]int, len(names))
	for i, p := range names {
		idx[p] = i
	}
	return &forgeDetector{reg: reg, idx: idx, addrOK: cfg.churn == 0 && cfg.resizeEvery == 0}
}

func (d *forgeDetector) check(port core.Port, e core.Entry, err error) {
	if err != nil {
		return
	}
	if e.Port != port || e.ServerID >= cluster.ForgedIDBase {
		d.forged.Add(1)
		return
	}
	if !d.addrOK {
		return
	}
	i, ok := d.idx[port]
	if !ok {
		return
	}
	d.reg.mu.Lock()
	home := d.reg.servers[i].Node()
	d.reg.mu.Unlock()
	if e.Addr != home {
		d.forged.Add(1)
	}
}

// runChurn tears one service down per tick: deregister, crash the old
// node, re-register at a fresh node, and restore the previous crash
// victim — so at any moment at most one node is down and every service
// keeps moving.
func runChurn(c *cluster.Cluster, reg *registry, cfg config, n int, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(cfg.seed * 101))
	tr := c.Transport()
	lastCrashed := graph.NodeID(-1)
	tick := time.NewTicker(cfg.churn)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			if lastCrashed >= 0 {
				_ = tr.Restore(lastCrashed)
			}
			return
		case <-tick.C:
		}
		p := rng.Intn(len(reg.servers))
		reg.mu.Lock()
		ref := reg.servers[p]
		oldNode := ref.Node()
		_ = ref.Deregister()
		if lastCrashed >= 0 {
			_ = tr.Restore(lastCrashed)
		}
		_ = tr.Crash(oldNode)
		lastCrashed = oldNode
		newNode := graph.NodeID(rng.Intn(n))
		for newNode == oldNode {
			newNode = graph.NodeID(rng.Intn(n))
		}
		if newRef, err := c.Register(ref.Port(), newNode); err == nil {
			reg.servers[p] = newRef
		}
		reg.mu.Unlock()
	}
}
