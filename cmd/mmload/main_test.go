package main

import (
	"net"
	"strings"
	"testing"

	"matchmake/internal/cluster"
)

func runLoad(t *testing.T, args ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return sb.String()
}

func TestRunMemZipf(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "64", "-workload", "zipf",
		"-duration", "100ms", "-concurrency", "4")
	for _, want := range []string{"transport=mem", "workload=zipf", "locates/sec", "per locate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "locates=0 ") {
		t.Fatalf("no locates completed:\n%s", out)
	}
}

func TestRunSimUniform(t *testing.T) {
	out := runLoad(t,
		"-transport", "sim", "-nodes", "16", "-workload", "uniform",
		"-ports", "4", "-duration", "100ms", "-concurrency", "4")
	if !strings.Contains(out, "transport=sim") {
		t.Fatalf("output missing transport=sim:\n%s", out)
	}
	if strings.Contains(out, "errors=0") == false {
		t.Fatalf("sim run reported errors:\n%s", out)
	}
}

func TestRunOpenLoopWithChurn(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "36", "-workload", "zipf",
		"-rate", "5000", "-duration", "200ms", "-churn", "50ms")
	if !strings.Contains(out, "churn=50ms") {
		t.Fatalf("output missing churn marker:\n%s", out)
	}
}

func TestRunResizeChurnMem(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "64", "-workload", "zipf",
		"-duration", "500ms", "-concurrency", "4", "-resize-interval", "60ms")
	for _, want := range []string{"transport=mem-elastic", "resizes=", "epoch=", "migrated-posts="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "(not-found=0)") {
		t.Fatalf("resize churn failed locates:\n%s", out)
	}
	if strings.Contains(out, "resizes=0 ") {
		t.Fatalf("no resize happened over the run:\n%s", out)
	}
}

func TestRunResizeChurnReplicatedMem(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "36", "-replicas", "2",
		"-duration", "400ms", "-concurrency", "4", "-resize-interval", "80ms", "-resize-to", "30")
	if !strings.Contains(out, "(not-found=0)") {
		t.Fatalf("replicated resize churn failed locates:\n%s", out)
	}
	if !strings.Contains(out, "epoch=") {
		t.Fatalf("missing epoch metrics line:\n%s", out)
	}
}

func TestRunRejectsResizeWithWeighted(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-transport", "mem", "-weighted", "-resize-interval", "50ms", "-duration", "50ms"}, &sb); err == nil {
		t.Fatal("-resize-interval with -weighted accepted")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-transport", "carrier-pigeon"},
		{"-topology", "torus"},
		{"-workload", "bursty"},
		{"-workload", "zipf", "-zipf-s", "0.5"},
		{"-topology", "hypercube", "-nodes", "63"},
		{"-transport", "sim", "-weighted"},
		{"-rate", "1000", "-batch", "8"},
	} {
		var sb strings.Builder
		if err := run(append(args, "-duration", "10ms"), &sb); err == nil {
			t.Fatalf("run(%v) accepted bad flags", args)
		}
	}
}

func TestRunWithHints(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "64", "-workload", "zipf",
		"-duration", "150ms", "-concurrency", "4", "-hints")
	if !strings.Contains(out, "hints: hits=") {
		t.Fatalf("output missing hint stats:\n%s", out)
	}
	if !strings.Contains(out, "allocs/locate") {
		t.Fatalf("output missing allocs report:\n%s", out)
	}
}

func TestRunWithBatch(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "64", "-workload", "uniform",
		"-duration", "150ms", "-concurrency", "4", "-batch", "16")
	if strings.Contains(out, "locates=0 ") {
		t.Fatalf("no locates completed:\n%s", out)
	}
}

func TestRunWeighted(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "64", "-workload", "zipf",
		"-duration", "300ms", "-concurrency", "4",
		"-weighted", "-hot", "2", "-hot-refresh", "50ms")
	if !strings.Contains(out, "transport=mem-weighted") {
		t.Fatalf("output missing weighted transport marker:\n%s", out)
	}
	if strings.Contains(out, "locates=0 ") {
		t.Fatalf("no locates completed:\n%s", out)
	}
}

func TestRunHintsWithChurn(t *testing.T) {
	out := runLoad(t,
		"-transport", "mem", "-nodes", "36", "-workload", "zipf",
		"-duration", "300ms", "-concurrency", "4", "-hints", "-churn", "50ms")
	if !strings.Contains(out, "hints: hits=") {
		t.Fatalf("output missing hint stats:\n%s", out)
	}
}

// startNodeServers boots an in-process pair of NodeServers on real TCP
// listeners, covering nodes [0,n) in two halves, and returns their
// addresses — the lightest way to exercise -transport net end to end.
func startNodeServers(t *testing.T, n int) string {
	t.Helper()
	var addrs []string
	for i := 0; i < 2; i++ {
		lo, hi := cluster.PartitionRange(n, 2, i)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := cluster.NewNodeServer(n, lo, hi, ln)
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve()
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, ln.Addr().String())
	}
	return strings.Join(addrs, ",")
}

func TestRunNet(t *testing.T) {
	addrs := startNodeServers(t, 36)
	out := runLoad(t,
		"-transport", "net", "-addrs", addrs, "-nodes", "36",
		"-workload", "zipf", "-duration", "150ms", "-concurrency", "4")
	for _, want := range []string{"transport=net", "locates/sec", "per locate"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "locates=0 ") {
		t.Fatalf("no locates completed:\n%s", out)
	}
}

func TestRunNetWithHintsAndChurn(t *testing.T) {
	addrs := startNodeServers(t, 36)
	out := runLoad(t,
		"-transport", "net", "-addrs", addrs, "-nodes", "36",
		"-workload", "zipf", "-duration", "300ms", "-concurrency", "4",
		"-hints", "-churn", "100ms")
	if !strings.Contains(out, "hints: hits=") {
		t.Fatalf("output missing hint stats:\n%s", out)
	}
}

func TestRunNetRejectsMissingAddrs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-transport", "net", "-duration", "10ms"}, &sb); err == nil {
		t.Fatal("run accepted -transport net without -addrs")
	}
}
