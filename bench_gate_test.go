package matchmake

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// benchBaseline mirrors the document cmd/mmbenchjson emits; only the
// fields the gate compares are decoded.
type benchBaseline struct {
	Benchmarks []struct {
		Name    string  `json:"name"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
}

// benchGateTolerance is the allowed ns/op growth over the committed
// baseline before the gate fails: >30% is a regression per the perf
// contract in BENCH_cluster.json's PR.
const benchGateTolerance = 1.30

var benchProcSuffix = regexp.MustCompile(`-\d+$`)

// TestBenchRegressionGate re-runs the serving-path benchmarks and fails
// if any ns/op regressed more than 30% against the committed
// BENCH_cluster.json baseline. It is opt-in (set MM_BENCH_GATE=1)
// because benchmark wall-time doesn't belong in every `go test ./...`,
// and because the comparison is only meaningful on hardware comparable
// to the baseline's. Refresh the baseline after intentional perf
// changes with:
//
//	go test -run '^$' -bench Cluster -benchmem . | go run ./cmd/mmbenchjson -match Cluster > BENCH_cluster.json
func TestBenchRegressionGate(t *testing.T) {
	if os.Getenv("MM_BENCH_GATE") == "" {
		t.Skip("set MM_BENCH_GATE=1 to run the benchmark regression gate")
	}
	raw, err := os.ReadFile("BENCH_cluster.json")
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if len(base.Benchmarks) == 0 {
		t.Fatal("baseline has no benchmarks")
	}

	// Re-exec this test binary as a benchmark run so the gate needs no
	// go toolchain at check time.
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run", "^$", "-test.bench", "Cluster", "-test.benchtime", "0.5s")
	cmd.Env = append(os.Environ(), "MM_BENCH_GATE=") // don't recurse
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("bench run: %v\n%s", err, out)
	}
	current := parseBenchNs(t, out)

	for _, b := range base.Benchmarks {
		name := benchProcSuffix.ReplaceAllString(b.Name, "")
		cur, ok := current[name]
		if !ok {
			t.Errorf("%s: in baseline but not produced by the current bench run", name)
			continue
		}
		ratio := cur / b.NsPerOp
		t.Logf("%-55s %10.1f -> %10.1f ns/op (%.2fx)", name, b.NsPerOp, cur, ratio)
		if ratio > benchGateTolerance {
			t.Errorf("%s regressed: %.1f -> %.1f ns/op (%.0f%% > %.0f%% budget)",
				name, b.NsPerOp, cur, (ratio-1)*100, (benchGateTolerance-1)*100)
		}
	}
}

// parseBenchNs extracts ns/op per benchmark (proc-count suffix
// stripped) from `go test -bench` text output.
func parseBenchNs(t *testing.T, out []byte) map[string]float64 {
	t.Helper()
	res := make(map[string]float64)
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		for i := 2; i+1 < len(fields); i += 2 {
			if fields[i+1] != "ns/op" {
				continue
			}
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				t.Fatalf("bad ns/op in %q: %v", sc.Text(), err)
			}
			res[benchProcSuffix.ReplaceAllString(fields[0], "")] = v
		}
	}
	if len(res) == 0 {
		t.Fatalf("bench run produced no results:\n%s", out)
	}
	return res
}
