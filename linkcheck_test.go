package matchmake

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkcheckFiles are the markdown documents whose relative links (and
// intra-repo anchors) must resolve; CI runs this test as the docs
// link-checker.
func linkcheckFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"}
	docs, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, docs...)
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestMarkdownLinks fails for every relative markdown link whose target
// file does not exist, and for every anchored link whose target file
// has no heading slugging to the anchor. External (http/https/mailto)
// links are not fetched.
func TestMarkdownLinks(t *testing.T) {
	for _, file := range linkcheckFiles(t) {
		body, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		for _, target := range extractLinks(string(body)) {
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, anchor, _ := strings.Cut(target, "#")
			resolved := file
			if path != "" {
				resolved = filepath.Join(filepath.Dir(file), path)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s: broken link %q: %v", file, target, err)
					continue
				}
			}
			if anchor != "" && strings.HasSuffix(resolved, ".md") {
				if !anchorExists(t, resolved, anchor) {
					t.Errorf("%s: link %q: no heading slugs to #%s in %s", file, target, anchor, resolved)
				}
			}
		}
	}
}

// extractLinks returns every markdown link target outside fenced code
// blocks.
func extractLinks(body string) []string {
	var out []string
	inFence := false
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
			out = append(out, m[1])
		}
	}
	return out
}

// anchorExists reports whether any heading of the markdown file slugs
// to anchor under GitHub's rules (lowercase, punctuation stripped,
// spaces to hyphens).
func anchorExists(t *testing.T, file, anchor string) bool {
	t.Helper()
	body, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	inFence := false
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence || !strings.HasPrefix(line, "#") {
			continue
		}
		heading := strings.TrimLeft(line, "#")
		if slugify(heading) == anchor {
			return true
		}
	}
	return false
}

// slugify approximates GitHub's heading-anchor slugging.
func slugify(heading string) string {
	s := strings.TrimSpace(strings.ToLower(heading))
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteByte('-')
		case r > 127: // keep non-ASCII letters (GitHub does)
			b.WriteRune(r)
		}
	}
	return b.String()
}
