// Package matchmake reproduces Mullender & Vitányi, "Distributed
// Match-Making for Processes in Computer Networks" (PODC 1985): the
// rendezvous-matrix theory of distributed name servers, its lower bounds
// and matching constructions, the per-topology locate strategies, and the
// Shotgun / Hash / Lighthouse Locate engines, all running over a
// goroutine-based store-and-forward network simulator — plus a concurrent
// serving layer (internal/cluster) that scales the same machinery to
// high-throughput workloads without losing the paper's message-pass
// accounting.
//
// The implementation lives in internal packages; see README.md for the
// quickstart and architecture tour, docs/PAPER_MAP.md for the
// paper-to-code concordance (every definition, proposition and method
// mapped to the symbol that implements it and the test that pins it),
// DESIGN.md for the system inventory, EXPERIMENTS.md for
// paper-vs-measured results, and examples/ for runnable entry points:
//
//   - internal/graph, internal/topology, internal/sim — substrates
//   - internal/rendezvous — §2 theory (strategies, matrix, bounds)
//   - internal/strategy — §3 topology-aware P/Q functions
//   - internal/core — Shotgun Locate (the paper's main contribution)
//   - internal/hashlocate, internal/lighthouse — §5 and §4 variants
//   - internal/service — the Amoeba-style service model of §1.3
//   - internal/cluster — sharded match-making service layer: a Transport
//     seam with three backends (the paper-exact simulator, a lock-free
//     in-process fast path, and a real-socket multi-process cluster of
//     NodeServer processes), probe-validated address hints with a
//     generation-based invalidation protocol, batched locate/post
//     operations, a frequency-weighted hot-port strategy (E16/M3′
//     live), r-fold replicated rendezvous with crash-tolerant replica
//     fallthrough and a background re-post repair loop, epoch-versioned
//     elastic membership (grow or shrink the active node set at runtime
//     behind a dual-epoch locate, with minimal-movement posting
//     migration and, on the socket backend, live re-partitioning of the
//     node space across a different process count), locate coalescing,
//     per-shard worker pools and live metrics (including availability,
//     replica-depth and epoch-migration counters)
//   - internal/netwire — the socket transport's wire layer: varint
//     framing, pooled buffers, pipelined connections
//   - internal/experiments — every table and figure, as code
//
// The benchmarks in this package (bench_test.go) regenerate each
// experiment and track the serving layer (BenchmarkClusterLocate reports
// ns/op and message passes per locate for both transports); `go run
// ./cmd/mmbench` prints all experiments.
//
// `go run ./cmd/mmload` load-tests a cluster: pick a transport
// (-transport mem|sim|net, the net backend taking -addrs from a
// cluster booted by cmd/mmctl or cmd/mmnode), a port-popularity
// workload (-workload uniform,
// or -workload zipf with -zipf-s/-zipf-v for skew), optional
// crash/re-register churn (-churn 50ms) and crash injection
// (-replicas r, -kill-rate k — replicated rendezvous measured against
// node kills), elastic-membership churn (-resize-interval d,
// -resize-to m — live epoch transitions under load; -state/-watch-state
// follow an `mmctl scale` re-partition of a socket cluster), the
// hot-path accelerators (-hints, -batch N,
// -weighted), and closed-loop (-concurrency) or open-loop (-rate,
// absolute-deadline paced) driving; it reports throughput, p50/p99
// latency, hint hit-rate, availability, allocs/locate and message
// passes per locate. DESIGN.md documents every flag, and
// cmd/mmbenchjson turns bench output into the BENCH_cluster.json CI
// artifact.
//
// `go run ./cmd/mmctl demo` spawns a real 3-process socket cluster,
// kills one process with SIGKILL mid-run and narrates the recovery;
// `mmctl up` boots a cluster for mmload, `mmctl verify` is the CI
// gate that pins the socket backend's answers and pass counts to the
// in-process transport's, and `mmctl chaos` is the availability gate:
// kill -9 node processes on a timer under continuous load and demand
// zero failed locates at replication factor ≥ 2.
package matchmake
