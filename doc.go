// Package matchmake reproduces Mullender & Vitányi, "Distributed
// Match-Making for Processes in Computer Networks" (PODC 1985): the
// rendezvous-matrix theory of distributed name servers, its lower bounds
// and matching constructions, the per-topology locate strategies, and the
// Shotgun / Hash / Lighthouse Locate engines, all running over a
// goroutine-based store-and-forward network simulator.
//
// The implementation lives in internal packages; see DESIGN.md for the
// system inventory, EXPERIMENTS.md for paper-vs-measured results, and
// examples/ for runnable entry points:
//
//   - internal/graph, internal/topology, internal/sim — substrates
//   - internal/rendezvous — §2 theory (strategies, matrix, bounds)
//   - internal/strategy — §3 topology-aware P/Q functions
//   - internal/core — Shotgun Locate (the paper's main contribution)
//   - internal/hashlocate, internal/lighthouse — §5 and §4 variants
//   - internal/service — the Amoeba-style service model of §1.3
//   - internal/experiments — every table and figure, as code
//
// The benchmarks in this package (bench_test.go) regenerate each
// experiment; `go run ./cmd/mmbench` prints all of them.
package matchmake
