module matchmake

go 1.24
