package matchmake

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// doclintPackages are the packages whose exported API must be fully
// documented: the serving layer and its strategy/metrics dependencies,
// where each doc comment is expected to state the symbol's
// pass-accounting contract where it has one. CI runs this test as the
// missing-doc-comment lint.
var doclintPackages = []string{
	"internal/cluster",
	"internal/gate",
	"internal/strategy",
	"internal/stats",
	"internal/rendezvous",
	"internal/netwire",
	"internal/topology",
	"internal/graph",
	"internal/sweep",
	"internal/sweep/loadrun",
	"internal/sweep/procctl",
}

// TestExportedSymbolsDocumented fails for every exported top-level
// declaration (type, func, method, const, var) in doclintPackages that
// lacks a doc comment.
func TestExportedSymbolsDocumented(t *testing.T) {
	for _, dir := range doclintPackages {
		t.Run(strings.ReplaceAll(dir, "/", "_"), func(t *testing.T) {
			fset := token.NewFileSet()
			pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
				return !strings.HasSuffix(fi.Name(), "_test.go")
			}, parser.ParseComments)
			if err != nil {
				t.Fatal(err)
			}
			for _, pkg := range pkgs {
				for _, file := range pkg.Files {
					for _, decl := range file.Decls {
						for _, miss := range undocumented(decl) {
							pos := fset.Position(miss.pos)
							t.Errorf("%s:%d: exported %s %s has no doc comment", pos.Filename, pos.Line, miss.kind, miss.name)
						}
					}
				}
			}
		})
	}
}

type docMiss struct {
	kind string
	name string
	pos  token.Pos
}

// undocumented returns the exported, comment-less declarations in decl.
func undocumented(decl ast.Decl) []docMiss {
	var out []docMiss
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		if d.Recv != nil && len(d.Recv.List) == 1 && !exportedRecv(d.Recv.List[0].Type) {
			return nil // method on an unexported type
		}
		kind := "function"
		if d.Recv != nil {
			kind = "method"
		}
		out = append(out, docMiss{kind: kind, name: d.Name.Name, pos: d.Pos()})
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, docMiss{kind: "type", name: s.Name.Name, pos: s.Pos()})
				}
			case *ast.ValueSpec:
				// A group doc comment, a per-spec doc comment or a trailing
				// line comment all count for consts and vars.
				if d.Doc != nil || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						out = append(out, docMiss{kind: fmt.Sprintf("%v", d.Tok), name: name.Name, pos: name.Pos()})
					}
				}
			}
		}
	}
	return out
}

// exportedRecv reports whether a method receiver names an exported
// type.
func exportedRecv(expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.StarExpr:
		return exportedRecv(e.X)
	case *ast.IndexExpr: // generic receiver
		return exportedRecv(e.X)
	case *ast.Ident:
		return e.IsExported()
	default:
		return true // be conservative: flag unusual shapes
	}
}
