package matchmake

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"matchmake/internal/cluster"
)

// TestMain re-execs the test binary as a node-shard worker when
// MM_NET_NODE is set, mirroring internal/cluster's harness: that is
// how the transport=net benchmarks run against real node processes
// behind loopback sockets without shipping a separate binary. The
// worker prints "ADDR host:port" on stdout, then serves until killed.
func TestMain(m *testing.M) {
	if os.Getenv("MM_NET_NODE") != "" {
		atoi := func(k string) int {
			v, err := strconv.Atoi(os.Getenv(k))
			if err != nil {
				fmt.Fprintf(os.Stderr, "worker: bad %s: %v\n", k, err)
				os.Exit(2)
			}
			return v
		}
		n, lo, hi := atoi("MM_NET_N"), atoi("MM_NET_LO"), atoi("MM_NET_HI")
		if err := cluster.RunNodeWorker(n, lo, hi, "127.0.0.1:0", os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(2)
		}
		return
	}
	os.Exit(m.Run())
}

// spawnBenchNetCluster boots a procs-process loopback node-shard
// cluster partitioning n graph nodes and returns the worker addresses.
// Workers are killed at benchmark cleanup.
func spawnBenchNetCluster(tb testing.TB, n, procs int) []string {
	tb.Helper()
	exe, err := os.Executable()
	if err != nil {
		tb.Fatal(err)
	}
	addrs := make([]string, procs)
	for i := 0; i < procs; i++ {
		lo, hi := cluster.PartitionRange(n, procs, i)
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MM_NET_NODE=1",
			fmt.Sprintf("MM_NET_N=%d", n),
			fmt.Sprintf("MM_NET_LO=%d", lo),
			fmt.Sprintf("MM_NET_HI=%d", hi),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			tb.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			tb.Fatal(err)
		}
		tb.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		sc := bufio.NewScanner(out)
		if !sc.Scan() {
			tb.Fatalf("worker %d: no ADDR line (err=%v)", i, sc.Err())
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "ADDR ") {
			tb.Fatalf("worker %d: unexpected line %q", i, line)
		}
		addrs[i] = strings.TrimPrefix(line, "ADDR ")
		go func() { // drain further output so the child never blocks
			for sc.Scan() {
			}
		}()
	}
	return addrs
}
