package matchmake

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixedPortListen matches a listener bound to a literal non-zero port
// ("127.0.0.1:7001", "localhost:8080", ":9090") in a Listen call.
// Tests binding fixed ports collide when suites run in parallel or
// twice (-count=2), so every test listener must bind :0 and read the
// assigned address back; spawned node workers inherit this via
// procctl's -addr default.
var fixedPortListen = regexp.MustCompile(`Listen\w*\(\s*"[^"]*"\s*,\s*"(?:127\.0\.0\.1|localhost|\[::1\]|)?:[1-9][0-9]*"`)

// TestNoFixedPortsInTests is the port-hygiene lint: no _test.go file
// may bind a hard-coded port. Fixed-port strings in non-binding
// fixtures (pinned banner output, dial targets that must fail) are
// fine — only Listen calls are flagged.
func TestNoFixedPortsInTests(t *testing.T) {
	err := filepath.WalkDir(".", func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, "_test.go") {
			return nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(b), "\n") {
			if fixedPortListen.MatchString(line) {
				t.Errorf("%s:%d: test binds a fixed port — use :0 and read the address back:\n\t%s",
					path, i+1, strings.TrimSpace(line))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
