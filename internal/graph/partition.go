package graph

import (
	"fmt"
	"sort"
)

// Partition is a division of a connected graph into disjoint connected
// parts, following the construction of Erdős, Gerencsér and Máté that §3 of
// the paper uses: divide every connected graph into O(√n) connected
// subgraphs of ≈√n nodes each, number the nodes in each subgraph 1..√n,
// and divide excess numbers over the nodes.
type Partition struct {
	parts  [][]NodeID // each part sorted by NodeID
	member []int      // member[v] = index of the part containing v
	label  []int      // label[v] = 1-based label of v inside its part
	target int        // requested part size
}

// PartitionConnected divides a connected graph into disjoint connected
// parts of at most 2·target−1 nodes each, aiming for ≥ target nodes per
// part. Graphs that cannot avoid small parts (a star, say, where every
// multi-node connected subgraph must contain the hub) yield additional
// undersized parts; match-making correctness does not depend on part sizes,
// only on every part carrying every label (see Labelled).
//
// The construction carves a BFS spanning tree leaf-ward: when a node's
// remaining subtree first reaches target nodes, the node plus just enough
// of its (individually undersized) child subtrees are emitted as one part.
func PartitionConnected(g *Graph, target int) (*Partition, error) {
	n := g.N()
	if n == 0 {
		return &Partition{target: target}, nil
	}
	if target < 1 {
		return nil, fmt.Errorf("partition: target %d < 1", target)
	}
	if !g.Connected() {
		return nil, fmt.Errorf("partition: %w", ErrDisconnected)
	}
	t, err := SpanningTree(g, 0)
	if err != nil {
		return nil, err
	}

	var (
		remSize  = make([]int, n)      // size of v's still-uncarved subtree
		remKids  = make([][]NodeID, n) // still-uncarved children
		assigned = make([]int, n)      // part index, -1 while uncarved
		parts    [][]NodeID
	)
	for v := range assigned {
		assigned[v] = -1
		remSize[v] = 1
	}

	// collect gathers the uncarved subtree rooted at v into part p.
	var collect func(v NodeID, p int) []NodeID
	collect = func(v NodeID, p int) []NodeID {
		out := []NodeID{v}
		assigned[v] = p
		for _, c := range remKids[v] {
			out = append(out, collect(c, p)...)
		}
		remKids[v] = nil
		return out
	}

	// Deepest-first order guarantees each uncarved child subtree has size
	// < target when its parent is considered.
	order := nodesByDepthDesc(t)
	for _, v := range order {
		for _, c := range t.Children(v) {
			if assigned[c] == -1 {
				remKids[v] = append(remKids[v], c)
				remSize[v] += remSize[c]
			}
		}
		if remSize[v] < target {
			continue
		}
		// Emit v plus whole child subtrees until the part reaches target.
		part := []NodeID{v}
		assigned[v] = len(parts)
		kids := remKids[v]
		remKids[v] = nil
		for _, c := range kids {
			if len(part) >= target {
				// Leftover child subtrees detach; they are carved later as
				// their own (possibly undersized) parts.
				continue
			}
			part = append(part, collect(c, len(parts))...)
		}
		// Re-attach unpicked children as independent roots by marking them
		// for the final sweep (they stay uncarved with no parent path).
		for _, c := range kids {
			if assigned[c] == -1 {
				detachFromParent(t, c)
			}
		}
		sortNodes(part)
		parts = append(parts, part)
		remSize[v] = 0
	}
	// Final sweep: any uncarved nodes form parts per remaining connected
	// subtree (each rooted at an uncarved node whose parent is carved or
	// absent).
	for _, v := range order {
		if assigned[v] != -1 {
			continue
		}
		p := t.Parent(v)
		if p != -1 && assigned[p] == -1 {
			continue // will be collected via its uncarved ancestor
		}
		part := collect(v, len(parts))
		sortNodes(part)
		parts = append(parts, part)
	}

	pa := &Partition{
		parts:  parts,
		member: assigned,
		label:  make([]int, n),
		target: target,
	}
	for _, part := range parts {
		for i, v := range part {
			pa.label[v] = i + 1
		}
	}
	return pa, nil
}

// detachFromParent removes c from its parent's child list in the tree so
// the final sweep treats c as the root of an independent remaining subtree.
func detachFromParent(t *Tree, c NodeID) {
	p := t.parent[c]
	if p == -1 {
		return
	}
	t.children[p] = deleteOne(t.children[p], c)
	t.parent[c] = -1
}

func nodesByDepthDesc(t *Tree) []NodeID {
	order := make([]NodeID, 0, t.Size())
	for v := 0; v < len(t.depth); v++ {
		if t.depth[v] >= 0 {
			order = append(order, NodeID(v))
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		return t.depth[order[i]] > t.depth[order[j]]
	})
	return order
}

func sortNodes(s []NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// Parts returns the parts; each is sorted and the slices are shared, not
// copied (treat as read-only).
func (p *Partition) Parts() [][]NodeID { return p.parts }

// NumParts returns the number of parts.
func (p *Partition) NumParts() int { return len(p.parts) }

// PartOf returns the index of the part containing v, or -1.
func (p *Partition) PartOf(v NodeID) int {
	if v < 0 || int(v) >= len(p.member) {
		return -1
	}
	return p.member[v]
}

// Label returns the 1-based label of v inside its part, or 0.
func (p *Partition) Label(v NodeID) int {
	if v < 0 || int(v) >= len(p.label) {
		return 0
	}
	return p.label[v]
}

// Labelled returns, for every part, the node carrying label ℓ. Labels run
// 1..target; parts smaller than target divide the excess labels over their
// nodes by wrapping (label ℓ falls on node (ℓ−1) mod |part|), exactly the
// paper's "if necessary, divide the excess numbers over the nodes".
func (p *Partition) Labelled(part, l int) (NodeID, error) {
	if part < 0 || part >= len(p.parts) {
		return -1, fmt.Errorf("partition: part %d out of range", part)
	}
	if l < 1 {
		return -1, fmt.Errorf("partition: label %d < 1", l)
	}
	nodes := p.parts[part]
	return nodes[(l-1)%len(nodes)], nil
}

// MaxPartSize returns the size of the largest part.
func (p *Partition) MaxPartSize() int {
	maxSize := 0
	for _, part := range p.parts {
		if len(part) > maxSize {
			maxSize = len(part)
		}
	}
	return maxSize
}
