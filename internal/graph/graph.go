// Package graph provides the undirected-graph substrate used by every other
// package in this repository: adjacency storage, breadth-first search,
// all-pairs next-hop routing tables, spanning trees, and the connected
// √n-partition of Erdős, Gerencsér and Máté that Section 3 of the paper
// relies on for match-making in arbitrary connected networks.
//
// Graphs model the paper's point-to-point store-and-forward communication
// networks G = (U, E): nodes are processors, edges are bidirectional
// non-interfering channels, and one message pass moves a message across a
// single edge.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node of a Graph. Node identifiers are dense integers
// in [0, N).
type NodeID int

// Errors returned by graph operations.
var (
	// ErrNodeRange reports a node identifier outside [0, N).
	ErrNodeRange = errors.New("graph: node out of range")
	// ErrSelfLoop reports an attempt to add an edge from a node to itself.
	ErrSelfLoop = errors.New("graph: self loop")
	// ErrDisconnected reports an operation that requires a connected graph.
	ErrDisconnected = errors.New("graph: not connected")
)

// Graph is a simple undirected graph over nodes 0..n-1.
//
// The zero value is an empty graph with no nodes; use New to create a graph
// with a fixed node count. Graph is not safe for concurrent mutation, but
// all read-only methods may be used concurrently once construction is done.
type Graph struct {
	adj   [][]NodeID
	edges int
	name  string
}

// New returns a graph with n isolated nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{adj: make([][]NodeID, n)}
}

// Name returns the descriptive name attached with SetName, or "".
func (g *Graph) Name() string { return g.name }

// SetName attaches a descriptive name (e.g. "grid 8x8") used in reports.
func (g *Graph) SetName(name string) { g.name = name }

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return g.edges }

// Valid reports whether v is a node of g.
func (g *Graph) Valid(v NodeID) bool { return v >= 0 && int(v) < len(g.adj) }

// AddEdge inserts the undirected edge {u, v}. Inserting an edge that is
// already present is a no-op. Self loops are rejected.
func (g *Graph) AddEdge(u, v NodeID) error {
	if !g.Valid(u) || !g.Valid(v) {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrNodeRange)
	}
	if u == v {
		return fmt.Errorf("add edge {%d,%d}: %w", u, v, ErrSelfLoop)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge for construction code with statically valid
// endpoints; it panics on error. Topology generators use it internally.
func (g *Graph) MustAddEdge(u, v NodeID) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v NodeID) bool {
	if !g.Valid(u) || !g.Valid(v) {
		return false
	}
	// Scan the smaller adjacency list.
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, w := range g.adj[a] {
		if w == b {
			return true
		}
	}
	return false
}

// Degree returns the degree of v, or 0 if v is out of range.
func (g *Graph) Degree(v NodeID) int {
	if !g.Valid(v) {
		return 0
	}
	return len(g.adj[v])
}

// Neighbors returns a copy of the adjacency list of v in insertion order.
func (g *Graph) Neighbors(v NodeID) []NodeID {
	if !g.Valid(v) || len(g.adj[v]) == 0 {
		return nil
	}
	out := make([]NodeID, len(g.adj[v]))
	copy(out, g.adj[v])
	return out
}

// Nodes returns all node identifiers 0..n-1.
func (g *Graph) Nodes() []NodeID {
	out := make([]NodeID, g.N())
	for i := range out {
		out[i] = NodeID(i)
	}
	return out
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree. Section 3.6 of the paper tabulates exactly this for UUCPnet.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for v := range g.adj {
		h[len(g.adj[v])]++
	}
	return h
}

// BFS runs a breadth-first search from src and returns, for every node,
// its hop distance from src (-1 if unreachable) and its BFS-tree parent
// (-1 for src and unreachable nodes).
func (g *Graph) BFS(src NodeID) (dist []int, parent []NodeID, err error) {
	if !g.Valid(src) {
		return nil, nil, fmt.Errorf("bfs from %d: %w", src, ErrNodeRange)
	}
	n := g.N()
	dist = make([]int, n)
	parent = make([]NodeID, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	queue := make([]NodeID, 0, n)
	queue = append(queue, src)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[v] {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				parent[w] = v
				queue = append(queue, w)
			}
		}
	}
	return dist, parent, nil
}

// Connected reports whether the graph is connected. The empty graph and
// single-node graph are connected.
func (g *Graph) Connected() bool {
	if g.N() <= 1 {
		return true
	}
	dist, _, err := g.BFS(0)
	if err != nil {
		return false
	}
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components, each as a sorted node list,
// ordered by their smallest member.
func (g *Graph) Components() [][]NodeID {
	n := g.N()
	seen := make([]bool, n)
	var comps [][]NodeID
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		dist, _, _ := g.BFS(NodeID(s))
		var comp []NodeID
		for v, d := range dist {
			if d >= 0 && !seen[v] {
				seen[v] = true
				comp = append(comp, NodeID(v))
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	return comps
}

// ShortestPath returns one shortest path from u to v inclusive of both
// endpoints, or an error if v is unreachable from u.
func (g *Graph) ShortestPath(u, v NodeID) ([]NodeID, error) {
	dist, parent, err := g.BFS(u)
	if err != nil {
		return nil, err
	}
	if !g.Valid(v) {
		return nil, fmt.Errorf("path to %d: %w", v, ErrNodeRange)
	}
	if dist[v] < 0 {
		return nil, fmt.Errorf("path %d->%d: %w", u, v, ErrDisconnected)
	}
	path := make([]NodeID, 0, dist[v]+1)
	for at := v; at != -1; at = parent[at] {
		path = append(path, at)
	}
	// Reverse in place so the path runs u..v.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Eccentricity returns the maximum hop distance from v to any node, or an
// error if the graph is disconnected.
func (g *Graph) Eccentricity(v NodeID) (int, error) {
	dist, _, err := g.BFS(v)
	if err != nil {
		return 0, err
	}
	ecc := 0
	for _, d := range dist {
		if d < 0 {
			return 0, ErrDisconnected
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, nil
}

// Diameter returns the largest hop distance between any pair of nodes.
// It runs a BFS from every node (O(n·m)); intended for simulation-scale
// graphs.
func (g *Graph) Diameter() (int, error) {
	if g.N() == 0 {
		return 0, nil
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		ecc, err := g.Eccentricity(NodeID(v))
		if err != nil {
			return 0, err
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam, nil
}

// InducedSubgraph returns the subgraph induced by nodes, together with the
// mapping from new node identifiers (0..len(nodes)-1) back to the original
// identifiers. Duplicate entries are rejected.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID, error) {
	index := make(map[NodeID]NodeID, len(nodes))
	orig := make([]NodeID, len(nodes))
	for i, v := range nodes {
		if !g.Valid(v) {
			return nil, nil, fmt.Errorf("induced subgraph node %d: %w", v, ErrNodeRange)
		}
		if _, dup := index[v]; dup {
			return nil, nil, fmt.Errorf("induced subgraph: duplicate node %d", v)
		}
		index[v] = NodeID(i)
		orig[i] = v
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, w := range g.adj[v] {
			j, ok := index[w]
			if ok && NodeID(i) < j {
				sub.MustAddEdge(NodeID(i), j)
			}
		}
	}
	return sub, orig, nil
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.N())
	c.name = g.name
	c.edges = g.edges
	for v := range g.adj {
		if len(g.adj[v]) == 0 {
			continue
		}
		c.adj[v] = make([]NodeID, len(g.adj[v]))
		copy(c.adj[v], g.adj[v])
	}
	return c
}

// RemoveNode deletes all edges incident to v, isolating it. This models a
// node crash in the surviving-subnetwork analyses of §2.4. The node
// identifier itself remains valid (a crashed processor still occupies its
// slot; it just no longer communicates).
func (g *Graph) RemoveNode(v NodeID) error {
	if !g.Valid(v) {
		return fmt.Errorf("remove node %d: %w", v, ErrNodeRange)
	}
	for _, w := range g.adj[v] {
		g.adj[w] = deleteOne(g.adj[w], v)
		g.edges--
	}
	g.adj[v] = nil
	return nil
}

func deleteOne(s []NodeID, v NodeID) []NodeID {
	for i, x := range s {
		if x == v {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}
