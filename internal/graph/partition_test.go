package graph

import (
	"math"
	"testing"
	"testing/quick"
)

func checkPartition(t *testing.T, g *Graph, p *Partition, target int) {
	t.Helper()
	seen := make(map[NodeID]bool)
	for pi, part := range p.Parts() {
		if len(part) == 0 {
			t.Fatalf("part %d is empty", pi)
		}
		if len(part) > 2*target-1 {
			t.Fatalf("part %d has %d nodes, exceeds 2·target−1 = %d",
				pi, len(part), 2*target-1)
		}
		sub, _, err := g.InducedSubgraph(part)
		if err != nil {
			t.Fatalf("induced subgraph: %v", err)
		}
		if !sub.Connected() {
			t.Fatalf("part %d (%v) is not connected", pi, part)
		}
		for _, v := range part {
			if seen[v] {
				t.Fatalf("node %d appears in two parts", v)
			}
			seen[v] = true
			if p.PartOf(v) != pi {
				t.Fatalf("PartOf(%d) = %d, want %d", v, p.PartOf(v), pi)
			}
		}
	}
	if len(seen) != g.N() {
		t.Fatalf("partition covers %d of %d nodes", len(seen), g.N())
	}
}

func TestPartitionPath(t *testing.T) {
	g := path(t, 16)
	p, err := PartitionConnected(g, 4)
	if err != nil {
		t.Fatalf("PartitionConnected: %v", err)
	}
	checkPartition(t, g, p, 4)
	if p.NumParts() != 4 {
		t.Fatalf("parts = %d, want 4 on a 16-path with target 4", p.NumParts())
	}
}

func TestPartitionGridLike(t *testing.T) {
	// 6x6 grid built by hand.
	const w = 6
	g := New(w * w)
	for r := 0; r < w; r++ {
		for c := 0; c < w; c++ {
			v := NodeID(r*w + c)
			if c+1 < w {
				g.MustAddEdge(v, v+1)
			}
			if r+1 < w {
				g.MustAddEdge(v, v+NodeID(w))
			}
		}
	}
	target := int(math.Ceil(math.Sqrt(float64(g.N()))))
	p, err := PartitionConnected(g, target)
	if err != nil {
		t.Fatalf("PartitionConnected: %v", err)
	}
	checkPartition(t, g, p, target)
	// A grid partitions well: the number of parts should be O(√n).
	if p.NumParts() > 2*target {
		t.Fatalf("parts = %d, want ≤ %d on a grid", p.NumParts(), 2*target)
	}
}

func TestPartitionStar(t *testing.T) {
	// A star cannot avoid undersized parts (every multi-node connected
	// subgraph contains the hub); it must still be a valid partition.
	g := star(t, 20)
	p, err := PartitionConnected(g, 4)
	if err != nil {
		t.Fatalf("PartitionConnected: %v", err)
	}
	checkPartition(t, g, p, 4)
}

func TestPartitionSingleNode(t *testing.T) {
	g := New(1)
	p, err := PartitionConnected(g, 3)
	if err != nil {
		t.Fatalf("PartitionConnected: %v", err)
	}
	if p.NumParts() != 1 || len(p.Parts()[0]) != 1 {
		t.Fatalf("parts = %v", p.Parts())
	}
}

func TestPartitionErrors(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	if _, err := PartitionConnected(g, 2); err == nil {
		t.Fatal("disconnected graph should be rejected")
	}
	if _, err := PartitionConnected(path(t, 4), 0); err == nil {
		t.Fatal("target 0 should be rejected")
	}
}

func TestPartitionLabels(t *testing.T) {
	g := path(t, 9)
	p, err := PartitionConnected(g, 3)
	if err != nil {
		t.Fatalf("PartitionConnected: %v", err)
	}
	for _, part := range p.Parts() {
		labels := make(map[int]bool)
		for _, v := range part {
			l := p.Label(v)
			if l < 1 || l > len(part) {
				t.Fatalf("label of %d = %d, out of 1..%d", v, l, len(part))
			}
			if labels[l] {
				t.Fatalf("duplicate label %d in part %v", l, part)
			}
			labels[l] = true
		}
	}
}

func TestPartitionLabelledWraps(t *testing.T) {
	// A part smaller than target must still answer every label 1..target by
	// wrapping ("divide the excess numbers over the nodes").
	g := star(t, 10)
	target := 4
	p, err := PartitionConnected(g, target)
	if err != nil {
		t.Fatalf("PartitionConnected: %v", err)
	}
	for pi := 0; pi < p.NumParts(); pi++ {
		for l := 1; l <= target; l++ {
			v, err := p.Labelled(pi, l)
			if err != nil {
				t.Fatalf("Labelled(%d,%d): %v", pi, l, err)
			}
			if p.PartOf(v) != pi {
				t.Fatalf("Labelled(%d,%d) = %d lies in part %d", pi, l, v, p.PartOf(v))
			}
		}
	}
	if _, err := p.Labelled(-1, 1); err == nil {
		t.Fatal("negative part should error")
	}
	if _, err := p.Labelled(0, 0); err == nil {
		t.Fatal("label 0 should error")
	}
}

func TestPartitionPropertyRandomGraphs(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(50, 25, seed)
		target := 7
		p, err := PartitionConnected(g, target)
		if err != nil {
			return false
		}
		// Valid: disjoint cover, connected parts, bounded size.
		seen := make(map[NodeID]bool)
		for _, part := range p.Parts() {
			if len(part) == 0 || len(part) > 2*target-1 {
				return false
			}
			sub, _, err := g.InducedSubgraph(part)
			if err != nil || !sub.Connected() {
				return false
			}
			for _, v := range part {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return len(seen) == g.N()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
