package graph

import "fmt"

// Routing holds all-pairs next-hop routing tables for a graph, the "table
// containing the names of all other nodes together with the minimum cost to
// reach them and the neighbor at which the minimum cost path starts" that
// Section 3 of the paper assumes every node keeps.
//
// Tables are built with one BFS per node, O(n·m) time and O(n²) space;
// adequate for simulation-scale networks.
type Routing struct {
	next [][]NodeID // next[u][v] = first hop on a shortest u→v path, -1 if none
	dist [][]int    // dist[u][v] = hop distance, -1 if unreachable
}

// NewRouting computes routing tables for g.
func NewRouting(g *Graph) (*Routing, error) {
	n := g.N()
	r := &Routing{
		next: make([][]NodeID, n),
		dist: make([][]int, n),
	}
	for u := 0; u < n; u++ {
		dist, parent, err := g.BFS(NodeID(u))
		if err != nil {
			return nil, fmt.Errorf("routing: %w", err)
		}
		r.dist[u] = dist
		nh := make([]NodeID, n)
		for v := 0; v < n; v++ {
			nh[v] = firstHop(NodeID(u), NodeID(v), parent)
		}
		r.next[u] = nh
	}
	return r, nil
}

// firstHop walks the BFS parent chain from v back toward u and returns the
// neighbor of u on that path.
func firstHop(u, v NodeID, parent []NodeID) NodeID {
	if u == v {
		return u
	}
	if parent[v] == -1 {
		return -1
	}
	at := v
	for parent[at] != u {
		at = parent[at]
		if at == -1 {
			return -1
		}
	}
	return at
}

// N returns the number of nodes covered by the tables.
func (r *Routing) N() int { return len(r.next) }

// NextHop returns the neighbor of from on a shortest path to to, from
// itself if from == to, and -1 if to is unreachable.
func (r *Routing) NextHop(from, to NodeID) NodeID {
	if int(from) >= len(r.next) || int(to) >= len(r.next) || from < 0 || to < 0 {
		return -1
	}
	return r.next[from][to]
}

// Dist returns the hop distance from from to to, or -1 if unreachable.
func (r *Routing) Dist(from, to NodeID) int {
	if int(from) >= len(r.dist) || int(to) >= len(r.dist) || from < 0 || to < 0 {
		return -1
	}
	return r.dist[from][to]
}

// Path materializes the shortest path from from to to, inclusive, by
// following next hops. It returns nil if to is unreachable.
func (r *Routing) Path(from, to NodeID) []NodeID {
	d := r.Dist(from, to)
	if d < 0 {
		return nil
	}
	path := make([]NodeID, 0, d+1)
	at := from
	path = append(path, at)
	for at != to {
		at = r.NextHop(at, to)
		if at == -1 {
			return nil
		}
		path = append(path, at)
	}
	return path
}

// PredecessorNeighbors returns the neighbors w of node at whose routing
// tables send origin-bound traffic through at, i.e. dist(w, origin) >
// dist(at, origin). This is the routing table used "back-to-front" from §4:
// a beam leaving origin is forwarded from at to any such w, extending a
// simulated straight line away from its source.
func (r *Routing) PredecessorNeighbors(g *Graph, at, origin NodeID) []NodeID {
	var out []NodeID
	dAt := r.Dist(at, origin)
	if dAt < 0 {
		return nil
	}
	for _, w := range g.Neighbors(at) {
		if r.Dist(w, origin) > dAt {
			out = append(out, w)
		}
	}
	return out
}

// MulticastCost returns the number of message passes needed to deliver one
// message from src to every node in targets, when the message is flooded
// along the shortest-path (BFS) tree of src pruned to the targets: every
// edge of the pruned tree carries the message exactly once, so the cost is
// the number of edges in the Steiner approximation. This is the
// "broadcast over spanning trees in these subgraphs" accounting of §2.3.5.
func (r *Routing) MulticastCost(src NodeID, targets []NodeID) (int, error) {
	if int(src) >= r.N() || src < 0 {
		return 0, fmt.Errorf("multicast from %d: %w", src, ErrNodeRange)
	}
	// Union of shortest paths from src to each target, counted as edges of
	// the shortest-path tree: mark every node that lies on a path, then the
	// cost is (#marked nodes) - 1 when following tree edges toward src.
	onTree := make(map[NodeID]bool)
	onTree[src] = true
	for _, t := range targets {
		if r.Dist(src, t) < 0 {
			return 0, fmt.Errorf("multicast %d->%d: %w", src, t, ErrDisconnected)
		}
		// Walk from src toward t; all intermediate nodes join the tree.
		at := src
		for at != t {
			at = r.NextHop(at, t)
			onTree[at] = true
		}
	}
	return len(onTree) - 1, nil
}

// UnicastCost returns the total number of message passes needed to send one
// point-to-point message from src to each target individually (no tree
// sharing): the sum of hop distances.
func (r *Routing) UnicastCost(src NodeID, targets []NodeID) (int, error) {
	total := 0
	for _, t := range targets {
		d := r.Dist(src, t)
		if d < 0 {
			return 0, fmt.Errorf("unicast %d->%d: %w", src, t, ErrDisconnected)
		}
		total += d
	}
	return total, nil
}
