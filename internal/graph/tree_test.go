package graph

import (
	"testing"
	"testing/quick"
)

func TestSpanningTreePath(t *testing.T) {
	g := path(t, 5)
	tr, err := SpanningTree(g, 0)
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	if tr.Root() != 0 || tr.Size() != 5 || tr.Height() != 4 {
		t.Fatalf("root=%d size=%d height=%d", tr.Root(), tr.Size(), tr.Height())
	}
	for v := 1; v < 5; v++ {
		if tr.Parent(NodeID(v)) != NodeID(v-1) {
			t.Fatalf("parent[%d] = %d, want %d", v, tr.Parent(NodeID(v)), v-1)
		}
	}
	if tr.Parent(0) != -1 {
		t.Fatalf("root parent = %d, want -1", tr.Parent(0))
	}
}

func TestSpanningTreeCoversComponentOnly(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	tr, err := SpanningTree(g, 0)
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	if tr.Size() != 2 {
		t.Fatalf("size = %d, want 2", tr.Size())
	}
	if tr.Contains(2) || tr.Contains(3) {
		t.Fatal("tree should not contain the other component")
	}
	if tr.Depth(3) != -1 {
		t.Fatalf("depth of non-member = %d, want -1", tr.Depth(3))
	}
}

func TestPathToRoot(t *testing.T) {
	g := star(t, 5)
	tr, err := SpanningTree(g, 0)
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	p := tr.PathToRoot(3)
	if len(p) != 2 || p[0] != 3 || p[1] != 0 {
		t.Fatalf("PathToRoot(3) = %v, want [3 0]", p)
	}
	if p := tr.PathToRoot(0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("PathToRoot(root) = %v, want [0]", p)
	}
}

func TestSubtreeSizes(t *testing.T) {
	// Balanced binary tree on 7 nodes: 0 root; 1,2 children; 3,4,5,6 leaves.
	g := New(7)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 2)
	g.MustAddEdge(1, 3)
	g.MustAddEdge(1, 4)
	g.MustAddEdge(2, 5)
	g.MustAddEdge(2, 6)
	tr, err := SpanningTree(g, 0)
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	sizes := tr.SubtreeSizes()
	want := []int{7, 3, 3, 1, 1, 1, 1}
	for v, w := range want {
		if sizes[v] != w {
			t.Fatalf("subtree size[%d] = %d, want %d", v, sizes[v], w)
		}
	}
}

func TestBroadcastCost(t *testing.T) {
	g := cycle(t, 8)
	tr, err := SpanningTree(g, 0)
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	if got := tr.BroadcastCost(); got != 7 {
		t.Fatalf("BroadcastCost = %d, want 7 (n-1 tree edges)", got)
	}
}

func TestChildrenCopied(t *testing.T) {
	g := star(t, 4)
	tr, err := SpanningTree(g, 0)
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	kids := tr.Children(0)
	if len(kids) != 3 {
		t.Fatalf("children = %v, want 3 leaves", kids)
	}
	kids[0] = 99
	if tr.Children(0)[0] == 99 {
		t.Fatal("Children must return a copy")
	}
}

func TestTreePropertyDepthConsistent(t *testing.T) {
	// On random connected graphs: depth(v) == depth(parent(v)) + 1 and the
	// sum of all subtree sizes equals the sum of (depth+1).
	f := func(seed uint64) bool {
		g := randomConnected(30, 10, seed)
		tr, err := SpanningTree(g, 0)
		if err != nil {
			return false
		}
		sizes := tr.SubtreeSizes()
		sumSizes, sumDepth := 0, 0
		for v := 0; v < g.N(); v++ {
			id := NodeID(v)
			if p := tr.Parent(id); p != -1 && tr.Depth(id) != tr.Depth(p)+1 {
				return false
			}
			sumSizes += sizes[v]
			sumDepth += tr.Depth(id) + 1
		}
		return sumSizes == sumDepth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
