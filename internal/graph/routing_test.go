package graph

import (
	"testing"
	"testing/quick"
)

func mustRouting(t *testing.T, g *Graph) *Routing {
	t.Helper()
	r, err := NewRouting(g)
	if err != nil {
		t.Fatalf("NewRouting: %v", err)
	}
	return r
}

func TestRoutingDistMatchesBFS(t *testing.T) {
	g := randomConnected(30, 15, 7)
	r := mustRouting(t, g)
	for u := 0; u < g.N(); u++ {
		dist, _, err := g.BFS(NodeID(u))
		if err != nil {
			t.Fatalf("BFS: %v", err)
		}
		for v := 0; v < g.N(); v++ {
			if r.Dist(NodeID(u), NodeID(v)) != dist[v] {
				t.Fatalf("Dist(%d,%d) = %d, want %d", u, v, r.Dist(NodeID(u), NodeID(v)), dist[v])
			}
		}
	}
}

func TestRoutingNextHopAdvances(t *testing.T) {
	g := randomConnected(25, 10, 3)
	r := mustRouting(t, g)
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				if r.NextHop(NodeID(u), NodeID(v)) != NodeID(u) {
					t.Fatalf("NextHop(%d,%d) should be self", u, v)
				}
				continue
			}
			h := r.NextHop(NodeID(u), NodeID(v))
			if !g.HasEdge(NodeID(u), h) {
				t.Fatalf("NextHop(%d,%d) = %d is not a neighbor", u, v, h)
			}
			if r.Dist(h, NodeID(v)) != r.Dist(NodeID(u), NodeID(v))-1 {
				t.Fatalf("NextHop(%d,%d) does not reduce distance", u, v)
			}
		}
	}
}

func TestRoutingPath(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 4)
	r := mustRouting(t, g)
	p := r.Path(0, 4)
	want := []NodeID{0, 1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v, want %v", p, want)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("path = %v, want %v", p, want)
		}
	}
	if p = r.Path(0, 0); len(p) != 1 || p[0] != 0 {
		t.Fatalf("self path = %v, want [0]", p)
	}
}

func TestRoutingUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	r := mustRouting(t, g)
	if d := r.Dist(0, 2); d != -1 {
		t.Fatalf("Dist to unreachable = %d, want -1", d)
	}
	if h := r.NextHop(0, 2); h != -1 {
		t.Fatalf("NextHop to unreachable = %d, want -1", h)
	}
	if p := r.Path(0, 2); p != nil {
		t.Fatalf("Path to unreachable = %v, want nil", p)
	}
}

func TestRoutingOutOfRange(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	r := mustRouting(t, g)
	if r.Dist(0, 9) != -1 || r.NextHop(9, 0) != -1 {
		t.Fatal("out-of-range queries should return -1")
	}
}

func TestMulticastCostLine(t *testing.T) {
	// On a path 0-1-2-3-4, delivering from 0 to {2,4} floods edges
	// 0-1,1-2,2-3,3-4 exactly once: 4 passes.
	g := path(t, 5)
	r := mustRouting(t, g)
	got, err := r.MulticastCost(0, []NodeID{2, 4})
	if err != nil {
		t.Fatalf("MulticastCost: %v", err)
	}
	if got != 4 {
		t.Fatalf("MulticastCost = %d, want 4", got)
	}
}

func TestMulticastCostSharedPrefix(t *testing.T) {
	// Star with hub 0: delivering to 3 leaves costs 3 (one edge each),
	// while unicast also costs 3; delivering to leaves via a shared path
	// is cheaper than unicast when paths overlap.
	g := path(t, 6)
	r := mustRouting(t, g)
	multi, err := r.MulticastCost(0, []NodeID{3, 4, 5})
	if err != nil {
		t.Fatalf("MulticastCost: %v", err)
	}
	uni, err := r.UnicastCost(0, []NodeID{3, 4, 5})
	if err != nil {
		t.Fatalf("UnicastCost: %v", err)
	}
	if multi != 5 {
		t.Fatalf("MulticastCost = %d, want 5", multi)
	}
	if uni != 12 {
		t.Fatalf("UnicastCost = %d, want 12", uni)
	}
	if multi >= uni {
		t.Fatal("multicast should beat unicast on overlapping paths")
	}
}

func TestMulticastCostEmptyTargets(t *testing.T) {
	g := path(t, 3)
	r := mustRouting(t, g)
	got, err := r.MulticastCost(1, nil)
	if err != nil {
		t.Fatalf("MulticastCost: %v", err)
	}
	if got != 0 {
		t.Fatalf("MulticastCost(no targets) = %d, want 0", got)
	}
}

func TestMulticastDisconnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	r := mustRouting(t, g)
	if _, err := r.MulticastCost(0, []NodeID{2}); err == nil {
		t.Fatal("expected error for unreachable target")
	}
	if _, err := r.UnicastCost(0, []NodeID{2}); err == nil {
		t.Fatal("expected error for unreachable target")
	}
}

func TestPredecessorNeighbors(t *testing.T) {
	// Path 0-1-2-3: from node 1, origin 0, the away-from-origin neighbors
	// are exactly {2}.
	g := path(t, 4)
	r := mustRouting(t, g)
	got := r.PredecessorNeighbors(g, 1, 0)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("PredecessorNeighbors = %v, want [2]", got)
	}
	// From the far end there is nowhere further to go.
	if got := r.PredecessorNeighbors(g, 3, 0); len(got) != 0 {
		t.Fatalf("PredecessorNeighbors at end = %v, want empty", got)
	}
}

func TestMulticastCostNeverExceedsUnicast(t *testing.T) {
	f := func(seed uint64) bool {
		g := randomConnected(24, 12, seed)
		r, err := NewRouting(g)
		if err != nil {
			return false
		}
		targets := []NodeID{3, 9, 17, 23}
		multi, err1 := r.MulticastCost(0, targets)
		uni, err2 := r.UnicastCost(0, targets)
		return err1 == nil && err2 == nil && multi <= uni && multi >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
