package graph

import "fmt"

// Tree is a rooted spanning tree of (a connected subgraph of) a Graph,
// used for tree-structured match-making strategies (§3.6) and for
// spanning-tree broadcast accounting.
type Tree struct {
	root     NodeID
	parent   []NodeID   // parent[v] = parent of v, -1 for root and non-members
	children [][]NodeID // children in BFS discovery order
	depth    []int      // depth[v] = hops from root, -1 for non-members
	size     int        // number of member nodes
}

// SpanningTree returns the BFS spanning tree of g rooted at root, covering
// the connected component of root.
func SpanningTree(g *Graph, root NodeID) (*Tree, error) {
	dist, parent, err := g.BFS(root)
	if err != nil {
		return nil, fmt.Errorf("spanning tree: %w", err)
	}
	n := g.N()
	t := &Tree{
		root:     root,
		parent:   parent,
		children: make([][]NodeID, n),
		depth:    dist,
	}
	for v := 0; v < n; v++ {
		if dist[v] >= 0 {
			t.size++
			if p := parent[v]; p != -1 {
				t.children[p] = append(t.children[p], NodeID(v))
			}
		}
	}
	return t, nil
}

// Root returns the tree root.
func (t *Tree) Root() NodeID { return t.root }

// N returns the number of nodes of the underlying graph (members and
// non-members alike).
func (t *Tree) N() int { return len(t.depth) }

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int { return t.size }

// Contains reports whether v is a member of the tree.
func (t *Tree) Contains(v NodeID) bool {
	return v >= 0 && int(v) < len(t.depth) && t.depth[v] >= 0
}

// Parent returns the parent of v (-1 for the root or non-members).
func (t *Tree) Parent(v NodeID) NodeID {
	if !t.Contains(v) {
		return -1
	}
	return t.parent[v]
}

// Children returns a copy of v's children.
func (t *Tree) Children(v NodeID) []NodeID {
	if !t.Contains(v) || len(t.children[v]) == 0 {
		return nil
	}
	out := make([]NodeID, len(t.children[v]))
	copy(out, t.children[v])
	return out
}

// Depth returns the hop distance of v from the root, or -1 for non-members.
func (t *Tree) Depth(v NodeID) int {
	if !t.Contains(v) {
		return -1
	}
	return t.depth[v]
}

// Height returns the maximum depth over all members.
func (t *Tree) Height() int {
	h := 0
	for _, d := range t.depth {
		if d > h {
			h = d
		}
	}
	return h
}

// PathToRoot returns the node sequence v, parent(v), ..., root. Tree-based
// match-making (§3.6) posts and queries along exactly this path.
func (t *Tree) PathToRoot(v NodeID) []NodeID {
	if !t.Contains(v) {
		return nil
	}
	path := make([]NodeID, 0, t.depth[v]+1)
	for at := v; at != -1; at = t.parent[at] {
		path = append(path, at)
	}
	return path
}

// SubtreeSizes returns, for every member v, the number of nodes in the
// subtree rooted at v (0 for non-members). The cache a tree rendezvous node
// needs is proportional to its subtree size (§3.6).
func (t *Tree) SubtreeSizes() []int {
	n := len(t.depth)
	sizes := make([]int, n)
	// Process nodes in decreasing depth so children are done before parents.
	order := make([]NodeID, 0, t.size)
	for v := 0; v < n; v++ {
		if t.depth[v] >= 0 {
			order = append(order, NodeID(v))
		}
	}
	// Counting sort by depth, deepest first.
	maxd := t.Height()
	buckets := make([][]NodeID, maxd+1)
	for _, v := range order {
		buckets[t.depth[v]] = append(buckets[t.depth[v]], v)
	}
	for d := maxd; d >= 0; d-- {
		for _, v := range buckets[d] {
			sizes[v]++ // itself
			if p := t.parent[v]; p != -1 {
				sizes[p] += sizes[v]
			}
		}
	}
	return sizes
}

// BroadcastCost returns the number of message passes used to flood one
// message from the root to all tree members: one pass per tree edge.
func (t *Tree) BroadcastCost() int {
	if t.size == 0 {
		return 0
	}
	return t.size - 1
}
