package graph

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func path(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 0; i < n-1; i++ {
		if err := g.AddEdge(NodeID(i), NodeID(i+1)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func cycle(t *testing.T, n int) *Graph {
	t.Helper()
	g := path(t, n)
	if n > 2 {
		if err := g.AddEdge(0, NodeID(n-1)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func star(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for i := 1; i < n; i++ {
		if err := g.AddEdge(0, NodeID(i)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

// randomConnected builds a random connected graph: a random spanning tree
// plus extra random edges.
func randomConnected(n, extra int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	g := New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(NodeID(i), NodeID(rng.IntN(i)))
	}
	for k := 0; k < extra; k++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			g.MustAddEdge(NodeID(u), NodeID(v))
		}
	}
	return g
}

func TestNewEmpty(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty graph: N=%d M=%d", g.N(), g.M())
	}
	if !g.Connected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestNewNegative(t *testing.T) {
	if g := New(-3); g.N() != 0 {
		t.Fatalf("New(-3).N() = %d, want 0", g.N())
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name    string
		u, v    NodeID
		wantErr error
	}{
		{"self loop", 1, 1, ErrSelfLoop},
		{"u out of range", -1, 0, ErrNodeRange},
		{"v out of range", 0, 3, ErrNodeRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v); !errors.Is(err, tt.wantErr) {
				t.Fatalf("AddEdge(%d,%d) = %v, want %v", tt.u, tt.v, err, tt.wantErr)
			}
		})
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(2)
	for i := 0; i < 3; i++ {
		if err := g.AddEdge(0, 1); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("degrees = %d,%d, want 1,1", g.Degree(0), g.Degree(1))
	}
}

func TestHasEdge(t *testing.T) {
	g := path(t, 4)
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("edge {1,2} should exist in both directions")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("edge {0,2} should not exist")
	}
	if g.HasEdge(0, 99) {
		t.Fatal("out-of-range HasEdge should be false")
	}
}

func TestNeighborsCopied(t *testing.T) {
	g := path(t, 3)
	nb := g.Neighbors(1)
	nb[0] = 99
	if got := g.Neighbors(1); got[0] == 99 {
		t.Fatal("Neighbors must return a copy")
	}
}

func TestBFSDistances(t *testing.T) {
	g := path(t, 5)
	dist, parent, err := g.BFS(0)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	for i, d := range dist {
		if d != i {
			t.Errorf("dist[%d] = %d, want %d", i, d, i)
		}
	}
	if parent[0] != -1 {
		t.Errorf("parent[src] = %d, want -1", parent[0])
	}
	for i := 1; i < 5; i++ {
		if parent[i] != NodeID(i-1) {
			t.Errorf("parent[%d] = %d, want %d", i, parent[i], i-1)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)
	dist, _, err := g.BFS(0)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if dist[2] != -1 || dist[3] != -1 {
		t.Fatalf("unreachable distances = %d,%d, want -1,-1", dist[2], dist[3])
	}
}

func TestBFSBadSource(t *testing.T) {
	g := New(2)
	if _, _, err := g.BFS(5); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("BFS(5) err = %v, want ErrNodeRange", err)
	}
}

func TestConnected(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want bool
	}{
		{"path", path(t, 6), true},
		{"cycle", cycle(t, 6), true},
		{"star", star(t, 6), true},
		{"two islands", func() *Graph { g := New(4); g.MustAddEdge(0, 1); g.MustAddEdge(2, 3); return g }(), false},
		{"isolated node", func() *Graph { g := New(3); g.MustAddEdge(0, 1); return g }(), false},
		{"single node", New(1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Connected(); got != tt.want {
				t.Fatalf("Connected() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Fatalf("component sizes = %d,%d,%d, want 3,2,1",
			len(comps[0]), len(comps[1]), len(comps[2]))
	}
}

func TestShortestPath(t *testing.T) {
	g := cycle(t, 6)
	p, err := g.ShortestPath(0, 3)
	if err != nil {
		t.Fatalf("ShortestPath: %v", err)
	}
	if len(p) != 4 {
		t.Fatalf("path length = %d nodes, want 4", len(p))
	}
	if p[0] != 0 || p[len(p)-1] != 3 {
		t.Fatalf("path endpoints = %d,%d, want 0,3", p[0], p[len(p)-1])
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("path step %d->%d is not an edge", p[i], p[i+1])
		}
	}
}

func TestShortestPathDisconnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	if _, err := g.ShortestPath(0, 2); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", path(t, 5), 4},
		{"cycle6", cycle(t, 6), 3},
		{"star9", star(t, 9), 2},
		{"single", New(1), 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.g.Diameter()
			if err != nil {
				t.Fatalf("Diameter: %v", err)
			}
			if got != tt.want {
				t.Fatalf("Diameter = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestDiameterDisconnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	if _, err := g.Diameter(); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("err = %v, want ErrDisconnected", err)
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := star(t, 5) // hub degree 4, four leaves degree 1
	h := g.DegreeHistogram()
	if h[4] != 1 || h[1] != 4 {
		t.Fatalf("histogram = %v, want {4:1, 1:4}", h)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := cycle(t, 6)
	sub, orig, err := g.InducedSubgraph([]NodeID{1, 2, 3})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.N() != 3 || sub.M() != 2 {
		t.Fatalf("sub N=%d M=%d, want 3,2", sub.N(), sub.M())
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig = %v", orig)
	}
}

func TestInducedSubgraphDuplicate(t *testing.T) {
	g := path(t, 3)
	if _, _, err := g.InducedSubgraph([]NodeID{0, 0}); err == nil {
		t.Fatal("duplicate nodes should be rejected")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := path(t, 4)
	c := g.Clone()
	c.MustAddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("mutating clone affected original")
	}
	if c.M() != g.M()+1 {
		t.Fatalf("clone M=%d, original M=%d", c.M(), g.M())
	}
}

func TestRemoveNode(t *testing.T) {
	g := star(t, 5)
	if err := g.RemoveNode(0); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if g.M() != 0 {
		t.Fatalf("M = %d after removing hub, want 0", g.M())
	}
	if g.Degree(1) != 0 {
		t.Fatalf("leaf degree = %d, want 0", g.Degree(1))
	}
	if err := g.RemoveNode(77); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("RemoveNode(77) err = %v, want ErrNodeRange", err)
	}
}

func TestBFSPropertyTriangleInequality(t *testing.T) {
	// On random connected graphs, BFS distances obey d(u,w) ≤ d(u,v)+1 for
	// every edge {v,w}.
	f := func(seed uint64) bool {
		g := randomConnected(40, 20, seed)
		dist, _, err := g.BFS(0)
		if err != nil {
			return false
		}
		for v := 0; v < g.N(); v++ {
			for _, w := range g.Neighbors(NodeID(v)) {
				if dist[w] > dist[v]+1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
