// Package netwire is the compact binary wire layer under the cluster's
// socket transport: length-prefixed frames, a varint codec, pooled
// buffers, and a request-pipelining client/server pair over TCP.
//
// A frame is a uvarint payload length followed by the payload. Request
// payloads are [reqID uvarint][op byte][body]; response payloads are
// [reqID uvarint][status byte][body]. Responses are matched to requests
// by reqID, so many calls can be in flight on one connection at once
// and the server may answer them out of order.
//
// The package knows nothing about match-making: opcodes, statuses and
// body layouts are the caller's (internal/cluster defines the node
// protocol). It charges no message passes — the paper's cost accounting
// lives entirely in the transport above it.
package netwire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// MaxFrame bounds a single frame's payload so a corrupt or hostile
// length prefix cannot make a reader allocate without bound.
const MaxFrame = 64 << 20

// ErrFrameTooBig reports a frame whose length prefix exceeds MaxFrame.
var ErrFrameTooBig = errors.New("netwire: frame exceeds MaxFrame")

// bufPool recycles payload buffers across calls and handler
// invocations; steady-state request traffic allocates no new backing
// arrays once buffers have grown to the working-set frame size.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 512); return &b }}

// GetBuf returns a pooled byte buffer with zero length. Callers append
// into it and hand it back with PutBuf when done.
func GetBuf() *[]byte {
	b := bufPool.Get().(*[]byte)
	*b = (*b)[:0]
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b *[]byte) { bufPool.Put(b) }

// AppendUvarint appends v to b in unsigned varint encoding.
func AppendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }

// AppendBytes appends p length-prefixed (uvarint length, then raw
// bytes) to b.
func AppendBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// AppendString appends s length-prefixed to b.
func AppendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// Dec is a consuming decoder over one payload. Decoding errors are
// sticky: after the first short read every accessor returns a zero
// value and Err reports the failure, so call sites can decode a whole
// body and check once.
type Dec struct {
	b   []byte
	err error
}

// NewDec returns a decoder consuming b.
func NewDec(b []byte) Dec { return Dec{b: b} }

// Err returns the first decoding error, or nil.
func (d *Dec) Err() error { return d.err }

// Len returns the number of undecoded bytes remaining.
func (d *Dec) Len() int { return len(d.b) }

func (d *Dec) fail() {
	if d.err == nil {
		d.err = io.ErrUnexpectedEOF
	}
}

// Uvarint consumes one unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.b = d.b[n:]
	return v
}

// Byte consumes one byte.
func (d *Dec) Byte() byte {
	if d.err != nil || len(d.b) == 0 {
		d.fail()
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

// Bytes consumes one length-prefixed byte string. The returned slice
// aliases the decoder's buffer and is only valid until the buffer is
// reused.
func (d *Dec) Bytes() []byte {
	n := d.Uvarint()
	if d.err != nil || uint64(len(d.b)) < n {
		d.fail()
		return nil
	}
	v := d.b[:n]
	d.b = d.b[n:]
	return v
}

// String consumes one length-prefixed string, copying it out of the
// decoder's buffer.
func (d *Dec) String() string { return string(d.Bytes()) }

// writeUvarint emits x byte-by-byte through WriteByte: unlike handing
// a stack array to Write — whose slice can leak into the underlying
// io.Writer interface and so forces a heap allocation per frame — this
// keeps the length prefix allocation-free on the hot path.
func writeUvarint(w *bufio.Writer, x uint64) error {
	for x >= 0x80 {
		if err := w.WriteByte(byte(x) | 0x80); err != nil {
			return err
		}
		x >>= 7
	}
	return w.WriteByte(byte(x))
}

// WriteFrame writes payload as one frame (uvarint length + payload) to
// w. The caller flushes.
func WriteFrame(w *bufio.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	if err := writeUvarint(w, uint64(len(payload))); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// WriteFrame2 writes one frame whose payload is the concatenation of
// hdr and body, without copying them into a single buffer first — the
// client's request path writes its tiny [id][op] header and the
// caller's body as two writes under one length prefix.
func WriteFrame2(w *bufio.Writer, hdr, body []byte) error {
	if len(hdr)+len(body) > MaxFrame {
		return ErrFrameTooBig
	}
	if err := writeUvarint(w, uint64(len(hdr)+len(body))); err != nil {
		return err
	}
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// ReadFrame reads one frame from r into buf (growing it as needed) and
// returns the payload.
func ReadFrame(r *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("netwire: short frame: %w", err)
	}
	return buf, nil
}
