package netwire

import (
	"bufio"
	"errors"
	"net"
	"sync"
	"sync/atomic"
)

// Handler serves one decoded request. op and req come off the wire
// (req aliases a per-request buffer, valid for the handler's duration);
// the handler appends its response body to resp and returns the status
// byte plus the (possibly regrown) body. Handlers run concurrently —
// one goroutine per in-flight request — and must be safe for that.
type Handler func(op byte, req []byte, resp []byte) (byte, []byte)

// Server accepts pipelined connections and dispatches every request
// frame to its Handler. Responses are written as handlers finish, in
// completion order — the reqID matching on the client side restores
// pairing.
type Server struct {
	ln      net.Listener
	handler Handler
	inline  bool

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	inflight sync.WaitGroup // accepted requests not yet responded to
	draining atomic.Bool
	closed   atomic.Bool
}

// NewServer wraps an open listener; Serve starts accepting.
func NewServer(ln net.Listener, h Handler) *Server {
	return &Server{ln: ln, handler: h, conns: make(map[net.Conn]struct{})}
}

// InlineHandlers switches the server to run handlers on each
// connection's read goroutine instead of one goroutine per request,
// flushing only when the read buffer holds no further pipelined
// request — so a burst of queued requests pays one response syscall,
// and the per-request spawn/schedule cost disappears. Only handlers
// that never block on I/O of their own may run inline: an inline
// handler that waited on network traffic would stall every request
// queued behind it on the connection. Call before Serve.
func (s *Server) InlineHandlers() { s.inline = true }

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts connections until the listener closes (via Drain or
// Close). It returns nil on a clean shutdown.
func (s *Server) Serve() error {
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() || s.draining.Load() {
				return nil
			}
			return err
		}
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.SetNoDelay(true)
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[nc] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(nc)
	}
}

// serveConn reads request frames and spawns a handler per request; a
// shared locked writer interleaves the response frames. When the
// server is draining, the read loop stops *without* closing the
// connection — handlers admitted earlier may still be writing their
// responses on it, and Drain closes every connection only after the
// in-flight count reaches zero.
func (s *Server) serveConn(nc net.Conn) {
	closeOnExit := true
	defer func() {
		if closeOnExit {
			nc.Close()
			s.mu.Lock()
			delete(s.conns, nc)
			s.mu.Unlock()
		}
	}()
	br := bufio.NewReaderSize(nc, connBufSize)
	bw := bufio.NewWriterSize(nc, connBufSize)
	var wmu sync.Mutex
	var writers atomic.Int32 // responders queued for wmu; the last one flushes
	for {
		if s.draining.Load() && !s.closed.Load() {
			closeOnExit = false // Drain closes after in-flight finishes
			return
		}
		if s.closed.Load() {
			return
		}
		buf := GetBuf()
		payload, err := ReadFrame(br, (*buf)[:0])
		if err != nil {
			PutBuf(buf)
			return
		}
		*buf = payload
		d := NewDec(payload)
		id := d.Uvarint()
		op := d.Byte()
		if d.Err() != nil {
			PutBuf(buf)
			return // protocol garbage: drop the connection
		}
		// Admission is linearized against Drain under mu: either this
		// request is counted before Drain reads the waitgroup, or the
		// drain flag is already visible and the request is dropped.
		s.mu.Lock()
		if s.draining.Load() || s.closed.Load() {
			draining := s.draining.Load() && !s.closed.Load()
			s.mu.Unlock()
			PutBuf(buf)
			closeOnExit = !draining
			return
		}
		s.inflight.Add(1)
		s.mu.Unlock()
		if s.inline {
			out := GetBuf()
			resp := AppendUvarint(*out, id)
			resp = append(resp, 0) // status, patched below
			statusPos := len(resp) - 1
			n := len(resp)
			status, body := s.handler(op, d.b, resp[n:])
			if len(body) > 0 && cap(resp) > n && &body[0] == &resp[n : n+1][0] {
				resp = resp[:n+len(body)]
			} else {
				resp = append(resp[:n], body...)
			}
			resp[statusPos] = status
			werr := WriteFrame(bw, resp)
			// Flush elision: more request frames already buffered means
			// the client is pipelining — keep accumulating responses
			// and pay one syscall when the burst is consumed.
			if werr == nil && br.Buffered() == 0 {
				werr = bw.Flush()
			}
			*out = resp
			PutBuf(out)
			PutBuf(buf)
			s.inflight.Done()
			if werr != nil {
				nc.Close()
				return
			}
			continue
		}
		go func() {
			defer s.inflight.Done()
			defer PutBuf(buf)
			out := GetBuf()
			resp := AppendUvarint(*out, id)
			resp = append(resp, 0) // status, patched below
			statusPos := len(resp) - 1
			n := len(resp)
			status, body := s.handler(op, d.b, resp[n:])
			if len(body) > 0 && cap(resp) > n && &body[0] == &resp[n : n+1][0] {
				// The handler appended in place; extend rather than copy.
				resp = resp[:n+len(body)]
			} else {
				resp = append(resp[:n], body...)
			}
			resp[statusPos] = status
			// Writev-style aggregation (see Conn.send): only the last
			// queued responder flushes, batching concurrently finishing
			// handlers' response frames into one syscall.
			writers.Add(1)
			wmu.Lock()
			werr := WriteFrame(bw, resp)
			if writers.Add(-1) == 0 && werr == nil {
				werr = bw.Flush()
			}
			wmu.Unlock()
			*out = resp
			PutBuf(out)
			if werr != nil {
				nc.Close()
			}
		}()
	}
}

// Drain performs a graceful shutdown: stop accepting connections and
// new requests, wait for in-flight handlers to finish and their
// responses to be written, then close every connection.
func (s *Server) Drain() {
	s.mu.Lock()
	already := s.draining.Swap(true)
	s.mu.Unlock()
	if already {
		return
	}
	s.ln.Close()
	s.inflight.Wait()
	s.closeConns()
}

// Close shuts down immediately: in-flight requests are abandoned.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.ln.Close()
	s.closeConns()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

func (s *Server) closeConns() {
	s.mu.Lock()
	for nc := range s.conns {
		nc.Close()
	}
	s.mu.Unlock()
}
