package netwire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzWireDecode throws corrupted bytes at the two decoding surfaces a
// hostile peer can reach — the frame reader and the payload decoder —
// and demands they fail closed: an error (or a clean sticky zero-value
// state), never a panic and never an allocation beyond MaxFrame.
func FuzzWireDecode(f *testing.F) {
	// A well-formed frame holding a well-formed payload.
	payload := AppendUvarint(nil, 42)
	payload = AppendString(payload, "alpha")
	payload = append(payload, 7)
	payload = AppendBytes(payload, []byte{1, 2, 3})
	var good bytes.Buffer
	w := bufio.NewWriter(&good)
	if err := WriteFrame(w, payload); err != nil {
		f.Fatal(err)
	}
	w.Flush()
	f.Add(good.Bytes())
	// A truncated frame: length prefix promises more than follows.
	f.Add(good.Bytes()[:len(good.Bytes())-2])
	// A length prefix beyond MaxFrame: must error before allocating.
	f.Add(binary.AppendUvarint(nil, MaxFrame+1))
	// A non-minimal / overlong uvarint (11 continuation bytes).
	f.Add(bytes.Repeat([]byte{0xff}, 11))
	// A string length prefix pointing past the buffer.
	f.Add(append(binary.AppendUvarint(nil, 3), binary.AppendUvarint(nil, 1<<40)...))
	f.Add([]byte{})
	f.Add([]byte{0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Frame layer: ReadFrame either errors or returns a payload no
		// larger than MaxFrame, and a returned payload must survive a
		// write/read round trip unchanged.
		r := bufio.NewReader(bytes.NewReader(data))
		frame, err := ReadFrame(r, nil)
		if err == nil {
			if len(frame) > MaxFrame {
				t.Fatalf("ReadFrame returned %d bytes, above MaxFrame", len(frame))
			}
			var rt bytes.Buffer
			w := bufio.NewWriter(&rt)
			if err := WriteFrame(w, frame); err != nil {
				t.Fatalf("re-encode of accepted frame failed: %v", err)
			}
			w.Flush()
			back, err := ReadFrame(bufio.NewReader(&rt), nil)
			if err != nil || !bytes.Equal(back, frame) {
				t.Fatalf("frame round trip: err=%v got %d bytes want %d", err, len(back), len(frame))
			}
		}

		// Payload layer: walk the decoder over the raw bytes with every
		// read primitive. The walk must terminate (each step consumes
		// input or trips the sticky error) and never panic.
		d := NewDec(data)
		for i := 0; d.Err() == nil && d.Len() > 0; i++ {
			switch i % 4 {
			case 0:
				d.Uvarint()
			case 1:
				d.Byte()
			case 2:
				if b := d.Bytes(); len(b) > len(data) {
					t.Fatalf("Bytes returned %d bytes from a %d-byte input", len(b), len(data))
				}
			case 3:
				if s := d.String(); len(s) > len(data) {
					t.Fatalf("String returned %d bytes from a %d-byte input", len(s), len(data))
				}
			}
		}
		// After a decode error the state is sticky and fails closed:
		// every further read is a zero value, not garbage.
		if d.Err() != nil {
			if v := d.Uvarint(); v != 0 {
				t.Fatalf("Uvarint after error = %d, want 0", v)
			}
			if b := d.Byte(); b != 0 {
				t.Fatalf("Byte after error = %d, want 0", b)
			}
			if b := d.Bytes(); len(b) != 0 {
				t.Fatalf("Bytes after error returned %d bytes", len(b))
			}
		}
	})
}
