package netwire

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestStartWaitPipelines(t *testing.T) {
	_, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) {
		d := NewDec(req)
		return 0, AppendUvarint(resp, d.Uvarint()+1)
	})
	p := NewPool(addr, 1)
	defer p.Close()

	const n = 32
	pend := make([]*Pending, n)
	for i := range pend {
		var err error
		pend[i], err = p.Start(1, AppendUvarint(nil, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, pd := range pend {
		_, body, err := pd.Wait(nil, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDec(body)
		if got := d.Uvarint(); got != uint64(i+1) {
			t.Fatalf("pending %d: got %d, want %d", i, got, i+1)
		}
	}
}

func TestStripedPoolConcurrency(t *testing.T) {
	_, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) {
		return 0, append(resp, req...)
	})
	p := NewPool(addr, 4)
	defer p.Close()
	var wg sync.WaitGroup
	errs := make([]error, 128)
	for i := 0; i < len(errs); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := AppendUvarint(nil, uint64(i))
			_, body, err := p.Call(1, req, nil)
			if err != nil {
				errs[i] = err
				return
			}
			d := NewDec(body)
			if got := d.Uvarint(); got != uint64(i) {
				errs[i] = fmt.Errorf("call %d: echoed %d", i, got)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolDefaultStripes(t *testing.T) {
	p := NewPool("127.0.0.1:1", 0)
	defer p.Close()
	if p.Stripes() < 2 {
		t.Fatalf("default stripes = %d, want >= 2", p.Stripes())
	}
}

func TestCountersTallyTraffic(t *testing.T) {
	_, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) {
		return 0, append(resp, req...)
	})
	var ctr Counters
	p := NewPool(addr, 2)
	p.UseCounters(&ctr)
	defer p.Close()

	const n = 10
	for i := 0; i < n; i++ {
		if _, _, err := p.Call(1, []byte("ping-pong"), nil); err != nil {
			t.Fatal(err)
		}
	}
	s := ctr.Snapshot()
	if s.FramesSent != n || s.FramesRecv != n {
		t.Fatalf("frames sent/recv = %d/%d, want %d/%d", s.FramesSent, s.FramesRecv, n, n)
	}
	if s.BytesSent <= int64(n)*9 || s.BytesRecv <= int64(n)*9 {
		t.Fatalf("byte totals %d/%d too small for %d 9-byte payload round trips", s.BytesSent, s.BytesRecv, n)
	}
	d := s.Sub(Stats{FramesSent: n})
	if d.FramesSent != 0 || d.FramesRecv != n {
		t.Fatalf("Sub: got %+v", d)
	}
}

func TestDialBackoffSingleFlightPerSlot(t *testing.T) {
	// Grab a port with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	p := NewPool(addr, 4)
	defer p.Close()

	// A burst of concurrent callers against the dead peer: everyone
	// must come back with an error, and once the first dial failure
	// lands, subsequent callers fast-fail through the backoff window
	// rather than each paying a dial.
	var wg sync.WaitGroup
	errs := make([]error, 32)
	start := time.Now()
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = p.Call(1, nil, nil)
		}(i)
	}
	wg.Wait()
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("burst against dead peer took %v", d)
	}
	for i, err := range errs {
		if err == nil {
			t.Fatalf("call %d to dead address succeeded", i)
		}
	}
	// The window is armed now: an immediate retry fast-fails.
	if _, _, err := p.Call(1, nil, nil); err == nil || !strings.Contains(err.Error(), "cooling down") {
		t.Fatalf("retry did not fast-fail via backoff: %v", err)
	}
}
