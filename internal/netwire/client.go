package netwire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed reports a call on a closed Pool.
var ErrClientClosed = errors.New("netwire: client closed")

// call is one in-flight request awaiting its response. done is a
// buffered signal channel so the reader goroutine never blocks handing
// a result over; calls (and their response buffers) are pooled so a
// steady request stream allocates no bookkeeping. resp belongs to the
// call, not the caller — an abandoned (timed-out) call can then receive
// its late response without scribbling on a buffer the caller has
// already reused.
type call struct {
	done   chan struct{}
	resp   []byte
	status byte
	err    error
}

var callPool = sync.Pool{New: func() any { return &call{done: make(chan struct{}, 1)} }}

// Conn is one TCP connection with request pipelining: any number of
// calls may be outstanding at once, matched to responses by request id.
// A broken connection fails every pending call; the owning Pool redials
// on the next use.
type Conn struct {
	nc net.Conn

	wmu sync.Mutex
	bw  *bufio.Writer

	mu      sync.Mutex
	pending map[uint64]*call
	dead    bool
	err     error

	nextID atomic.Uint64
}

// NewConn wraps an established connection and starts its reader.
func NewConn(nc net.Conn) *Conn {
	c := &Conn{
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		pending: make(map[uint64]*call, 16),
	}
	go c.readLoop()
	return c
}

// readLoop dispatches response frames to their pending calls until the
// connection breaks, then fails everything still outstanding.
func (c *Conn) readLoop() {
	br := bufio.NewReader(c.nc)
	var buf []byte
	for {
		payload, err := ReadFrame(br, buf)
		if err != nil {
			c.fail(fmt.Errorf("netwire: read: %w", err))
			return
		}
		buf = payload
		d := NewDec(payload)
		id := d.Uvarint()
		status := d.Byte()
		if d.Err() != nil {
			c.fail(fmt.Errorf("netwire: bad response frame: %w", d.Err()))
			return
		}
		c.mu.Lock()
		cl := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if cl == nil {
			continue // cancelled (timed out); drop the late response
		}
		cl.status = status
		cl.resp = append(cl.resp[:0], d.b...)
		cl.done <- struct{}{}
	}
}

// fail marks the connection dead and fails every pending call with err.
func (c *Conn) fail(err error) {
	c.nc.Close()
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, cl := range pending {
		cl.err = err
		cl.done <- struct{}{}
	}
}

// Dead reports whether the connection has failed.
func (c *Conn) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Close tears the connection down, failing any pending calls.
func (c *Conn) Close() error {
	c.fail(ErrClientClosed)
	return nil
}

// Call sends one request and blocks for its response. req is the body
// (without id/op); the response body is appended to resp's backing
// array when it fits, so hot callers can pass a pooled buffer and see
// no allocation. timeout 0 waits for the connection to deliver or
// break.
func (c *Conn) Call(op byte, req []byte, resp []byte, timeout time.Duration) (byte, []byte, error) {
	cl := callPool.Get().(*call)
	cl.err = nil

	id := c.nextID.Add(1)
	c.mu.Lock()
	if c.dead {
		err := c.err
		c.mu.Unlock()
		callPool.Put(cl)
		return 0, nil, err
	}
	c.pending[id] = cl
	c.mu.Unlock()

	hdr := GetBuf()
	head := AppendUvarint(*hdr, id)
	head = append(head, op)
	c.wmu.Lock()
	err := WriteFrame2(c.bw, head, req)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	*hdr = head
	PutBuf(hdr)
	if err != nil {
		c.fail(fmt.Errorf("netwire: write: %w", err))
		<-cl.done // fail delivered the error
		err = cl.err
		callPool.Put(cl)
		return 0, nil, err
	}

	if timeout > 0 {
		t := time.NewTimer(timeout)
		select {
		case <-cl.done:
			t.Stop()
		case <-t.C:
			// Abandon the call: the reader drops the late response on the
			// floor, and the pooled call is not reused (its done signal
			// may still arrive).
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			select {
			case <-cl.done:
				// The response raced the timeout; use it.
			default:
				return 0, nil, fmt.Errorf("netwire: call op=%d: timeout after %v", op, timeout)
			}
		}
	} else {
		<-cl.done
	}
	status, err := cl.status, cl.err
	body := append(resp[:0], cl.resp...)
	callPool.Put(cl)
	return status, body, err
}

// Pool is a small fixed-size pool of pipelined connections to one
// address. Calls spread round-robin over the connections; a dead
// connection is redialed on next use, so a restarted peer heals
// without intervention.
type Pool struct {
	addr  string
	conns []atomic.Pointer[Conn]
	next  atomic.Uint64

	// DialTimeout bounds connection establishment (default 2s);
	// CallTimeout bounds each call (0 = none). DialCooldown is the
	// fast-fail window after a failed dial (default 1s): while it
	// lasts, calls needing a new connection fail immediately instead
	// of each paying DialTimeout against a black-holing peer — at most
	// one dial attempt per cooldown keeps the pool self-healing.
	DialTimeout  time.Duration
	CallTimeout  time.Duration
	DialCooldown time.Duration

	failUntil atomic.Int64 // unix nanos; fast-fail until then

	mu     sync.Mutex // serializes redials per slot
	closed atomic.Bool
}

// NewPool builds a pool of size connections to addr (dialed lazily).
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = 1
	}
	return &Pool{
		addr:         addr,
		conns:        make([]atomic.Pointer[Conn], size),
		DialTimeout:  2 * time.Second,
		DialCooldown: time.Second,
	}
}

// Addr returns the pool's target address.
func (p *Pool) Addr() string { return p.addr }

// conn returns a live connection for slot i, dialing if needed. After
// a failed dial the pool fast-fails for DialCooldown, so callers fan
// out to a dead peer pay one dial timeout per window, not one each.
func (p *Pool) conn(i int) (*Conn, error) {
	if c := p.conns[i].Load(); c != nil && !c.Dead() {
		return c, nil
	}
	if time.Now().UnixNano() < p.failUntil.Load() {
		return nil, fmt.Errorf("netwire: dial %s: recently failed (cooling down)", p.addr)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return nil, ErrClientClosed
	}
	if c := p.conns[i].Load(); c != nil && !c.Dead() {
		return c, nil
	}
	// Re-check under the lock: callers queued behind a failing dial
	// should drain through the cooldown, not dial again themselves.
	if time.Now().UnixNano() < p.failUntil.Load() {
		return nil, fmt.Errorf("netwire: dial %s: recently failed (cooling down)", p.addr)
	}
	nc, err := net.DialTimeout("tcp", p.addr, p.DialTimeout)
	if err != nil {
		if p.DialCooldown > 0 {
			p.failUntil.Store(time.Now().Add(p.DialCooldown).UnixNano())
		}
		return nil, fmt.Errorf("netwire: dial %s: %w", p.addr, err)
	}
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := NewConn(nc)
	p.conns[i].Store(c)
	return c, nil
}

// Call issues one request on the next connection in round-robin order.
// The response body lands in resp's backing array when it fits.
func (p *Pool) Call(op byte, req []byte, resp []byte) (byte, []byte, error) {
	if p.closed.Load() {
		return 0, nil, ErrClientClosed
	}
	i := int(p.next.Add(1)) % len(p.conns)
	c, err := p.conn(i)
	if err != nil {
		return 0, nil, err
	}
	return c.Call(op, req, resp, p.CallTimeout)
}

// Close closes every connection; later calls fail with ErrClientClosed.
func (p *Pool) Close() error {
	p.closed.Store(true)
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.conns {
		if c := p.conns[i].Swap(nil); c != nil {
			c.Close()
		}
	}
	return nil
}
