package netwire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrClientClosed reports a call on a closed Pool.
var ErrClientClosed = errors.New("netwire: client closed")

// connBufSize sizes a connection's buffered reader and writer: large
// enough that a burst of pipelined frames aggregates into one syscall
// per direction instead of one per frame.
const connBufSize = 64 << 10

// Counters aggregates wire-level traffic totals across every
// connection dialed with them: a transport hands one Counters to all
// its pools and reads frames/bytes per logical operation off snapshot
// deltas. A nil *Counters disables counting.
type Counters struct {
	framesSent atomic.Int64
	bytesSent  atomic.Int64
	framesRecv atomic.Int64
	bytesRecv  atomic.Int64
}

// Stats is one Counters snapshot. Byte totals count on-the-wire frame
// bytes (length prefix included).
type Stats struct {
	FramesSent, BytesSent int64
	FramesRecv, BytesRecv int64
}

// Snapshot returns the current totals; a nil receiver reads as zero so
// transports can expose stats unconditionally.
func (c *Counters) Snapshot() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		FramesSent: c.framesSent.Load(),
		BytesSent:  c.bytesSent.Load(),
		FramesRecv: c.framesRecv.Load(),
		BytesRecv:  c.bytesRecv.Load(),
	}
}

// Sub returns s - o, the traffic between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		FramesSent: s.FramesSent - o.FramesSent,
		BytesSent:  s.BytesSent - o.BytesSent,
		FramesRecv: s.FramesRecv - o.FramesRecv,
		BytesRecv:  s.BytesRecv - o.BytesRecv,
	}
}

// frameWireLen is the on-the-wire size of a frame with an n-byte
// payload: the uvarint length prefix plus the payload.
func frameWireLen(n int) int64 {
	pre := 1
	for v := uint64(n); v >= 0x80; v >>= 7 {
		pre++
	}
	return int64(pre) + int64(n)
}

// Pending is one in-flight request started with Conn.Start (or
// Pool.Start), awaiting its response. done is a buffered signal channel
// so the reader goroutine never blocks handing a result over; handles
// (and their response buffers) are pooled, so a steady request stream
// allocates no bookkeeping. resp belongs to the handle, not the caller
// — an abandoned (timed-out) handle can then receive its late response
// without scribbling on a buffer the caller has already reused.
//
// Exactly one Wait must follow every successful Start: Wait consumes
// the handle and returns it to the pool.
type Pending struct {
	c      *Conn
	id     uint64
	done   chan struct{}
	resp   []byte
	status byte
	err    error
}

var pendingPool = sync.Pool{New: func() any { return &Pending{done: make(chan struct{}, 1)} }}

// timerPool recycles timeout timers across calls (Go 1.23+ timer
// semantics — no stale sends after Stop/Reset — make reuse safe), so a
// timeout-bounded call costs no timer allocation.
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		t := v.(*time.Timer)
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func putTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// Conn is one TCP connection with request pipelining: any number of
// calls may be outstanding at once, matched to responses by request id.
// A broken connection fails every pending call; the owning Pool redials
// on the next use.
type Conn struct {
	nc  net.Conn
	ctr *Counters

	wmu     sync.Mutex
	bw      *bufio.Writer
	writers atomic.Int32 // senders announced but not yet done writing

	mu      sync.Mutex
	pending map[uint64]*Pending
	dead    bool
	err     error

	nextID atomic.Uint64
}

// NewConn wraps an established connection and starts its reader. Wire
// traffic is tallied into ctr when non-nil; hand the same Counters to
// every connection whose totals should aggregate.
func NewConn(nc net.Conn, ctr *Counters) *Conn {
	c := &Conn{
		nc:      nc,
		ctr:     ctr,
		bw:      bufio.NewWriterSize(nc, connBufSize),
		pending: make(map[uint64]*Pending, 16),
	}
	go c.readLoop()
	return c
}

// readLoop dispatches response frames to their pending calls until the
// connection breaks, then fails everything still outstanding.
func (c *Conn) readLoop() {
	br := bufio.NewReaderSize(c.nc, connBufSize)
	var buf []byte
	for {
		payload, err := ReadFrame(br, buf)
		if err != nil {
			c.fail(fmt.Errorf("netwire: read: %w", err))
			return
		}
		buf = payload
		if c.ctr != nil {
			c.ctr.framesRecv.Add(1)
			c.ctr.bytesRecv.Add(frameWireLen(len(payload)))
		}
		d := NewDec(payload)
		id := d.Uvarint()
		status := d.Byte()
		if d.Err() != nil {
			c.fail(fmt.Errorf("netwire: bad response frame: %w", d.Err()))
			return
		}
		c.mu.Lock()
		cl := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if cl == nil {
			continue // cancelled (timed out); drop the late response
		}
		cl.status = status
		cl.resp = append(cl.resp[:0], d.b...)
		cl.done <- struct{}{}
	}
}

// fail marks the connection dead and fails every pending call with err.
func (c *Conn) fail(err error) {
	c.nc.Close()
	c.mu.Lock()
	if c.dead {
		c.mu.Unlock()
		return
	}
	c.dead = true
	c.err = err
	pending := c.pending
	c.pending = nil
	c.mu.Unlock()
	for _, cl := range pending {
		cl.err = err
		cl.done <- struct{}{}
	}
}

// Dead reports whether the connection has failed.
func (c *Conn) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Close tears the connection down, failing any pending calls.
func (c *Conn) Close() error {
	c.fail(ErrClientClosed)
	return nil
}

// send writes one frame under the write lock and flushes with
// writev-style aggregation: a sender only flushes when no other sender
// is queued behind it, so under concurrency the last writer pushes
// everybody's frames to the kernel in one syscall. bufio spills
// oversized bursts on its own, so skipping the flush never strands a
// frame — some later queued writer always reaches the flush decision.
func (c *Conn) send(head, body []byte) error {
	c.writers.Add(1)
	c.wmu.Lock()
	err := WriteFrame2(c.bw, head, body)
	if c.writers.Add(-1) == 0 && err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err == nil && c.ctr != nil {
		c.ctr.framesSent.Add(1)
		c.ctr.bytesSent.Add(frameWireLen(len(head) + len(body)))
	}
	return err
}

// Start sends one request and returns its in-flight handle without
// waiting for the response; the caller collects it with Wait. Starting
// every request of a fan-out before waiting on any pipelines the round
// trips, so total latency is the slowest peer's, not the sum. req is
// the body (without id/op) and may be reused as soon as Start returns.
func (c *Conn) Start(op byte, req []byte) (*Pending, error) {
	cl := pendingPool.Get().(*Pending)
	cl.err = nil
	cl.c = c

	id := c.nextID.Add(1)
	cl.id = id
	c.mu.Lock()
	if c.dead {
		err := c.err
		c.mu.Unlock()
		pendingPool.Put(cl)
		return nil, err
	}
	c.pending[id] = cl
	c.mu.Unlock()

	hdr := GetBuf()
	head := AppendUvarint(*hdr, id)
	head = append(head, op)
	err := c.send(head, req)
	*hdr = head
	PutBuf(hdr)
	if err != nil {
		c.fail(fmt.Errorf("netwire: write: %w", err))
		<-cl.done // fail delivered the error
		err = cl.err
		pendingPool.Put(cl)
		return nil, err
	}
	return cl, nil
}

// Wait blocks for the response of a Start-ed request. The response
// body is appended to resp's backing array when it fits, so hot
// callers can pass a pooled buffer and see no allocation. timeout 0
// waits for the connection to deliver or break. Wait consumes the
// handle; it must not be used afterwards.
func (p *Pending) Wait(resp []byte, timeout time.Duration) (byte, []byte, error) {
	select {
	case <-p.done:
		// Already delivered — the common case on a pipelined burst —
		// so skip the timer machinery entirely.
	default:
		if timeout > 0 {
			t := getTimer(timeout)
			select {
			case <-p.done:
				putTimer(t)
			case <-t.C:
				putTimer(t)
				// Abandon the call: the reader drops the late response on
				// the floor, and the handle is not reused (its done signal
				// may still arrive).
				p.c.mu.Lock()
				delete(p.c.pending, p.id)
				p.c.mu.Unlock()
				select {
				case <-p.done:
					// The response raced the timeout; use it.
				default:
					return 0, nil, fmt.Errorf("netwire: call: timeout after %v", timeout)
				}
			}
		} else {
			<-p.done
		}
	}
	status, err := p.status, p.err
	body := append(resp[:0], p.resp...)
	pendingPool.Put(p)
	return status, body, err
}

// Call sends one request and blocks for its response: Start followed
// by Wait.
func (c *Conn) Call(op byte, req []byte, resp []byte, timeout time.Duration) (byte, []byte, error) {
	p, err := c.Start(op, req)
	if err != nil {
		return 0, nil, err
	}
	return p.Wait(resp, timeout)
}

// connSlot is one stripe of a Pool: the connection pointer plus the
// mutex that makes its redial single-flight.
type connSlot struct {
	conn atomic.Pointer[Conn]
	mu   sync.Mutex
}

// Pool is a striped set of pipelined connections to one address. Calls
// pick a stripe per call with a cheap thread-local random draw — no
// shared round-robin cache line — so hot destinations don't serialize
// behind a single connection's write path. A dead stripe is redialed
// single-flight on next use (with pool-wide jittered backoff while the
// peer stays down), so a restarted peer heals without intervention.
type Pool struct {
	addr  string
	conns []connSlot
	ctr   *Counters

	// DialTimeout bounds connection establishment (default 2s);
	// CallTimeout bounds each call (0 = none). DialCooldown caps the
	// fast-fail backoff after failed dials (default 1s): consecutive
	// failures grow a jittered exponential window (from ~DialCooldown/16
	// up to DialCooldown) during which calls needing a new connection
	// fail immediately instead of each paying DialTimeout against a
	// black-holing peer — a down shard costs one dial per window, not a
	// tight redial loop per caller.
	DialTimeout  time.Duration
	CallTimeout  time.Duration
	DialCooldown time.Duration

	failUntil atomic.Int64 // unix nanos; fast-fail until then
	dialFails atomic.Int64 // consecutive dial failures (backoff exponent)
	closed    atomic.Bool
}

// NewPool builds a pool of size connection stripes to addr (dialed
// lazily). size <= 0 picks the default: max(2, GOMAXPROCS).
func NewPool(addr string, size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
		if size < 2 {
			size = 2
		}
	}
	return &Pool{
		addr:         addr,
		conns:        make([]connSlot, size),
		DialTimeout:  2 * time.Second,
		DialCooldown: time.Second,
	}
}

// Addr returns the pool's target address.
func (p *Pool) Addr() string { return p.addr }

// Stripes returns the number of connection stripes.
func (p *Pool) Stripes() int { return len(p.conns) }

// UseCounters directs the pool's wire traffic totals into ctr. Set it
// before the first call — connections capture the counters when dialed.
func (p *Pool) UseCounters(ctr *Counters) { p.ctr = ctr }

// conn returns a live connection for stripe i, dialing if needed.
// Redials are single-flight per stripe; a failed dial arms the
// pool-wide backoff window, during which every caller fast-fails.
func (p *Pool) conn(i int) (*Conn, error) {
	sl := &p.conns[i]
	if c := sl.conn.Load(); c != nil && !c.Dead() {
		return c, nil
	}
	if time.Now().UnixNano() < p.failUntil.Load() {
		return nil, fmt.Errorf("netwire: dial %s: recently failed (cooling down)", p.addr)
	}
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if p.closed.Load() {
		return nil, ErrClientClosed
	}
	if c := sl.conn.Load(); c != nil && !c.Dead() {
		return c, nil
	}
	// Re-check under the lock: callers queued behind a failing dial
	// should drain through the backoff, not dial again themselves.
	if time.Now().UnixNano() < p.failUntil.Load() {
		return nil, fmt.Errorf("netwire: dial %s: recently failed (cooling down)", p.addr)
	}
	nc, err := net.DialTimeout("tcp", p.addr, p.DialTimeout)
	if err != nil {
		p.backoff()
		return nil, fmt.Errorf("netwire: dial %s: %w", p.addr, err)
	}
	p.dialFails.Store(0)
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	c := NewConn(nc, p.ctr)
	sl.conn.Store(c)
	return c, nil
}

// backoff arms the pool-wide fast-fail window after a failed dial:
// exponential in the consecutive-failure count, capped at DialCooldown,
// and jittered ±50% so a fleet of callers redialing one recovered peer
// doesn't herd at it on a synchronized schedule.
func (p *Pool) backoff() {
	if p.DialCooldown <= 0 {
		return
	}
	fails := p.dialFails.Add(1)
	d := p.DialCooldown
	if s := 5 - int(fails); s > 0 {
		d >>= s // DialCooldown/16 on the first failure, doubling to the cap
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	d = d/2 + rand.N(d) // jitter over [d/2, 3d/2)
	p.failUntil.Store(time.Now().Add(d).UnixNano())
}

// Start begins one request on a randomly chosen stripe and returns the
// in-flight handle for Wait (the pool's CallTimeout is the caller's to
// apply there).
func (p *Pool) Start(op byte, req []byte) (*Pending, error) {
	if p.closed.Load() {
		return nil, ErrClientClosed
	}
	i := 0
	if n := len(p.conns); n > 1 {
		i = rand.IntN(n)
	}
	c, err := p.conn(i)
	if err != nil {
		return nil, err
	}
	return c.Start(op, req)
}

// Call issues one request on a randomly chosen stripe and blocks for
// its response. The response body lands in resp's backing array when
// it fits.
func (p *Pool) Call(op byte, req []byte, resp []byte) (byte, []byte, error) {
	pd, err := p.Start(op, req)
	if err != nil {
		return 0, nil, err
	}
	return pd.Wait(resp, p.CallTimeout)
}

// Close closes every connection; later calls fail with ErrClientClosed.
func (p *Pool) Close() error {
	p.closed.Store(true)
	for i := range p.conns {
		sl := &p.conns[i]
		sl.mu.Lock()
		if c := sl.conn.Swap(nil); c != nil {
			c.Close()
		}
		sl.mu.Unlock()
	}
	return nil
}
