package netwire

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer starts a server whose handler echoes the request body,
// optionally transformed, and returns its pool-ready address.
func echoServer(t *testing.T, h Handler) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(ln, h)
	go s.Serve()
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func TestRoundTrip(t *testing.T) {
	_, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) {
		resp = append(resp, op)
		resp = append(resp, req...)
		return 7, resp
	})
	p := NewPool(addr, 2)
	defer p.Close()
	for i := 0; i < 100; i++ {
		req := []byte(fmt.Sprintf("payload-%d", i))
		status, body, err := p.Call(3, req, nil)
		if err != nil {
			t.Fatal(err)
		}
		if status != 7 {
			t.Fatalf("status = %d, want 7", status)
		}
		want := append([]byte{3}, req...)
		if !bytes.Equal(body, want) {
			t.Fatalf("body = %q, want %q", body, want)
		}
	}
}

func TestPipelinedConcurrentCalls(t *testing.T) {
	_, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) {
		d := NewDec(req)
		v := d.Uvarint()
		if v%3 == 0 {
			time.Sleep(time.Millisecond) // force out-of-order completion
		}
		return 0, AppendUvarint(resp, v*2)
	})
	p := NewPool(addr, 1) // one conn: everything pipelines on it
	defer p.Close()
	var wg sync.WaitGroup
	errs := make([]error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := AppendUvarint(nil, uint64(i))
			_, body, err := p.Call(1, req, nil)
			if err != nil {
				errs[i] = err
				return
			}
			d := NewDec(body)
			if got := d.Uvarint(); got != uint64(i*2) {
				errs[i] = fmt.Errorf("call %d: got %d, want %d", i, got, i*2)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40)
	b = AppendString(b, "svc-0001")
	b = AppendBytes(b, []byte{1, 2, 3})
	d := NewDec(b)
	if v := d.Uvarint(); v != 0 {
		t.Fatalf("uvarint = %d", v)
	}
	if v := d.Uvarint(); v != 1<<40 {
		t.Fatalf("uvarint = %d", v)
	}
	if s := d.String(); s != "svc-0001" {
		t.Fatalf("string = %q", s)
	}
	if p := d.Bytes(); !bytes.Equal(p, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", p)
	}
	if d.Err() != nil || d.Len() != 0 {
		t.Fatalf("err=%v len=%d", d.Err(), d.Len())
	}
	// Truncated input turns sticky.
	d = NewDec(b[:3])
	d.Uvarint()
	d.Uvarint()
	_ = d.String()
	if d.Err() == nil {
		t.Fatal("want sticky decode error on truncated input")
	}
}

func TestDeadPeerFailsCalls(t *testing.T) {
	s, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) { return 0, resp })
	p := NewPool(addr, 1)
	defer p.Close()
	if _, _, err := p.Call(1, nil, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, _, err := p.Call(1, nil, nil); err != nil {
			break // the dead peer surfaced as an error
		}
		if time.Now().After(deadline) {
			t.Fatal("calls kept succeeding after server close")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDrainFinishesInFlight(t *testing.T) {
	release := make(chan struct{})
	s, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) {
		<-release
		return 9, append(resp, 'k')
	})
	p := NewPool(addr, 1)
	defer p.Close()

	type res struct {
		status byte
		err    error
	}
	got := make(chan res, 1)
	go func() {
		status, _, err := p.Call(1, nil, nil)
		got <- res{status, err}
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the handler

	drained := make(chan struct{})
	go func() {
		s.Drain()
		close(drained)
	}()
	select {
	case <-drained:
		t.Fatal("Drain returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case <-drained:
	case <-time.After(2 * time.Second):
		t.Fatal("Drain did not finish after handlers completed")
	}
	r := <-got
	if r.err != nil || r.status != 9 {
		t.Fatalf("in-flight call: status=%d err=%v; want 9, nil", r.status, r.err)
	}
	// New connections are refused after drain.
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		t.Fatal("dial succeeded after Drain")
	}
}

func TestCallTimeout(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	_, addr := echoServer(t, func(op byte, req, resp []byte) (byte, []byte) {
		<-block
		return 0, resp
	})
	p := NewPool(addr, 1)
	defer p.Close()
	p.CallTimeout = 50 * time.Millisecond
	start := time.Now()
	if _, _, err := p.Call(1, nil, nil); err == nil {
		t.Fatal("want timeout error")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("timeout took far too long")
	}
}

func TestDialCooldownFastFails(t *testing.T) {
	// Grab a port with nothing listening on it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	p := NewPool(addr, 1)
	defer p.Close()
	if _, _, err := p.Call(1, nil, nil); err == nil {
		t.Fatal("call to dead address succeeded")
	}
	start := time.Now()
	_, _, err = p.Call(1, nil, nil)
	if err == nil {
		t.Fatal("second call succeeded")
	}
	if !strings.Contains(err.Error(), "cooling down") {
		t.Fatalf("second call did not fast-fail via cooldown: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("fast-fail took %v", d)
	}
}
