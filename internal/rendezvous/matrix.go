package rendezvous

import (
	"fmt"
	"math"
	"strings"

	"matchmake/internal/graph"
)

// Matrix is a materialized rendezvous matrix R for a strategy: entry
// (i, j) holds the set of rendezvous nodes P(i) ∩ Q(j) where a client at
// node j can find the (port, address) of a server at node i.
type Matrix struct {
	n       int
	name    string
	entries [][][]graph.NodeID // entries[i][j], sorted
	pSize   []int              // #P(i)
	qSize   []int              // #Q(j)
}

// Build materializes the rendezvous matrix of a strategy. It costs
// O(n²·s) time and memory for entry sets of size s; intended for analysis
// and printing at simulation scale.
func Build(s Strategy) (*Matrix, error) {
	n := s.N()
	if n <= 0 {
		return nil, fmt.Errorf("rendezvous: universe size %d", n)
	}
	m := &Matrix{
		n:       n,
		name:    s.Name(),
		entries: make([][][]graph.NodeID, n),
		pSize:   make([]int, n),
		qSize:   make([]int, n),
	}
	posts := make([][]graph.NodeID, n)
	queries := make([][]graph.NodeID, n)
	for v := 0; v < n; v++ {
		posts[v] = s.Post(graph.NodeID(v))
		queries[v] = s.Query(graph.NodeID(v))
		m.pSize[v] = len(posts[v])
		m.qSize[v] = len(queries[v])
	}
	for i := 0; i < n; i++ {
		m.entries[i] = make([][]graph.NodeID, n)
		for j := 0; j < n; j++ {
			m.entries[i][j] = Intersect(posts[i], queries[j])
		}
	}
	return m, nil
}

// N returns the universe size.
func (m *Matrix) N() int { return m.n }

// Name returns the strategy name the matrix was built from.
func (m *Matrix) Name() string { return m.name }

// Entry returns the rendezvous set r_ij (shared slice; treat as
// read-only).
func (m *Matrix) Entry(i, j graph.NodeID) []graph.NodeID {
	return m.entries[i][j]
}

// PostSize returns #P(i).
func (m *Matrix) PostSize(i graph.NodeID) int { return m.pSize[i] }

// QuerySize returns #Q(j).
func (m *Matrix) QuerySize(j graph.NodeID) int { return m.qSize[j] }

// Verify checks that every pair (i, j) has a non-empty rendezvous set —
// the correctness requirement of any Shotgun Locate strategy. It returns
// ErrEmptyRendezvous (wrapped with the first offending pair) otherwise.
func (m *Matrix) Verify() error {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if len(m.entries[i][j]) == 0 {
				return fmt.Errorf("pair (%d,%d): %w", i, j, ErrEmptyRendezvous)
			}
		}
	}
	return nil
}

// MinRendezvousSize returns min over all pairs of #r_ij; a strategy
// tolerates f crashed rendezvous nodes per pair iff this is ≥ f+1 (§2.4).
func (m *Matrix) MinRendezvousSize() int {
	minSize := math.MaxInt
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if len(m.entries[i][j]) < minSize {
				minSize = len(m.entries[i][j])
			}
		}
	}
	return minSize
}

// IsOptimalShotgun reports whether every entry is a singleton, the
// paper's "optimal shotgun method has exactly one element in each r_ij".
func (m *Matrix) IsOptimalShotgun() bool {
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if len(m.entries[i][j]) != 1 {
				return false
			}
		}
	}
	return true
}

// Multiplicities returns k_v for every node v: the number of matrix
// entries whose rendezvous set contains v (constraint (M2):
// Σ k_v ≥ n² when every entry is non-empty).
func (m *Matrix) Multiplicities() []int {
	k := make([]int, m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			for _, v := range m.entries[i][j] {
				k[v]++
			}
		}
	}
	return k
}

// Cost statistics per (M3)/(M4): the number of message passes of a
// match-making instance between server node i and client node j in a
// complete network is m(i,j) = #P(i) + #Q(j).

// AvgCost returns m(n) = (1/n²)·ΣᵢΣⱼ (#P(i) + #Q(j)).
func (m *Matrix) AvgCost() float64 {
	var sp, sq int
	for v := 0; v < m.n; v++ {
		sp += m.pSize[v]
		sq += m.qSize[v]
	}
	return float64(sp)/float64(m.n) + float64(sq)/float64(m.n)
}

// MinCost returns the smallest m(i,j) over all pairs.
func (m *Matrix) MinCost() int {
	return minInts(m.pSize) + minInts(m.qSize)
}

// MaxCost returns the largest m(i,j) over all pairs.
func (m *Matrix) MaxCost() int {
	return maxInts(m.pSize) + maxInts(m.qSize)
}

// AvgCostWeighted returns the weighted average cost per (M3′):
// m(i,j) = #P(i) + α·#Q(j), for a uniform client/post frequency ratio α.
func (m *Matrix) AvgCostWeighted(alpha float64) float64 {
	var sp, sq int
	for v := 0; v < m.n; v++ {
		sp += m.pSize[v]
		sq += m.qSize[v]
	}
	return float64(sp)/float64(m.n) + alpha*float64(sq)/float64(m.n)
}

// AvgProduct returns (1/n²)·ΣᵢΣⱼ #P(i)·#Q(j), the quantity bounded below
// by Proposition 1.
func (m *Matrix) AvgProduct() float64 {
	var sp, sq int
	for v := 0; v < m.n; v++ {
		sp += m.pSize[v]
		sq += m.qSize[v]
	}
	return float64(sp) / float64(m.n) * float64(sq) / float64(m.n)
}

// ProductLowerBound returns the Proposition 1 bound for the given node
// multiplicities: (1/n²)·ΣᵢΣⱼ #P(i)·#Q(j) ≥ (Σᵥ √k_v)² / n².
//
// The published corollaries pin the form down: the truly distributed case
// (k_v = n for all v) yields ≥ n and the centralized case (one k = n²)
// yields ≥ 1.
func ProductLowerBound(k []int) float64 {
	n := float64(len(k))
	if n == 0 {
		return 0
	}
	var s float64
	for _, kv := range k {
		if kv > 0 {
			s += math.Sqrt(float64(kv))
		}
	}
	return s * s / (n * n)
}

// CostLowerBound returns the Proposition 2 bound on the average number of
// message passes: m(n) ≥ 2·(Σᵥ √k_v)/n. The truly distributed case gives
// 2√n and the centralized case gives 2, matching both corollaries.
func CostLowerBound(k []int) float64 {
	n := float64(len(k))
	if n == 0 {
		return 0
	}
	var s float64
	for _, kv := range k {
		if kv > 0 {
			s += math.Sqrt(float64(kv))
		}
	}
	return 2 * s / n
}

// String renders the matrix in the paper's style: rows are servers,
// columns are clients, nodes printed 1-based. Singleton entries print as
// the node number; larger entries print as {a,b,…}; empty entries as "-".
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", m.name, m.n)
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(formatEntry(m.entries[i][j]))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RowString renders row i (server i) only, for compact displays.
func (m *Matrix) RowString(i graph.NodeID) string {
	parts := make([]string, m.n)
	for j := 0; j < m.n; j++ {
		parts[j] = formatEntry(m.entries[i][j])
	}
	return strings.Join(parts, " ")
}

func formatEntry(e []graph.NodeID) string {
	switch len(e) {
	case 0:
		return "-"
	case 1:
		return fmt.Sprintf("%d", e[0]+1)
	default:
		parts := make([]string, len(e))
		for i, v := range e {
			parts[i] = fmt.Sprintf("%d", v+1)
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
}

func minInts(xs []int) int {
	m := math.MaxInt
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	if m == math.MaxInt {
		return 0
	}
	return m
}

func maxInts(xs []int) int {
	m := 0
	for i, x := range xs {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
