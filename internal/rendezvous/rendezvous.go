// Package rendezvous implements the theory of distributed match-making
// from Section 2 of the paper: Shotgun Locate strategies P, Q: U → 2^U,
// the rendezvous matrix R with entries r_ij = P(i) ∩ Q(j), the message-pass
// cost measures (M1)–(M4), the lower bounds of Propositions 1 and 2, and
// the matching constructions of Propositions 3 (checkerboard) and 4
// (lifting).
package rendezvous

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"matchmake/internal/graph"
)

// Strategy is a Shotgun Locate strategy on an n-node universe: any server
// residing at node i posts its (port, address) at each node of Post(i) and
// any client residing at node j queries each node of Query(j).
type Strategy interface {
	// Name identifies the strategy in reports.
	Name() string
	// N returns the universe size.
	N() int
	// Post returns P(i), the posting set of a server at node i.
	Post(i graph.NodeID) []graph.NodeID
	// Query returns Q(j), the query set of a client at node j.
	Query(j graph.NodeID) []graph.NodeID
}

// Funcs adapts a pair of functions to the Strategy interface.
type Funcs struct {
	StrategyName string
	Universe     int
	PostFunc     func(i graph.NodeID) []graph.NodeID
	QueryFunc    func(j graph.NodeID) []graph.NodeID
}

var _ Strategy = Funcs{}

// Name implements Strategy.
func (f Funcs) Name() string { return f.StrategyName }

// N implements Strategy.
func (f Funcs) N() int { return f.Universe }

// Post implements Strategy.
func (f Funcs) Post(i graph.NodeID) []graph.NodeID { return f.PostFunc(i) }

// Query implements Strategy.
func (f Funcs) Query(j graph.NodeID) []graph.NodeID { return f.QueryFunc(j) }

func all(n int) []graph.NodeID {
	out := make([]graph.NodeID, n)
	for i := range out {
		out[i] = graph.NodeID(i)
	}
	return out
}

// Broadcast returns the paper's Example 1: the server stays put
// (P(i) = {i}) and the client looks everywhere (Q(j) = U).
func Broadcast(n int) Strategy {
	return Funcs{
		StrategyName: "broadcast",
		Universe:     n,
		PostFunc:     func(i graph.NodeID) []graph.NodeID { return []graph.NodeID{i} },
		QueryFunc:    func(graph.NodeID) []graph.NodeID { return all(n) },
	}
}

// Sweep returns the paper's Example 2: the client stays put (Q(j) = {j})
// and the server looks for work (P(i) = U).
func Sweep(n int) Strategy {
	return Funcs{
		StrategyName: "sweep",
		Universe:     n,
		PostFunc:     func(graph.NodeID) []graph.NodeID { return all(n) },
		QueryFunc:    func(j graph.NodeID) []graph.NodeID { return []graph.NodeID{j} },
	}
}

// Central returns the paper's Example 3: a centralized name server at
// node c; all services post there and all clients query there.
func Central(n int, c graph.NodeID) Strategy {
	return Funcs{
		StrategyName: fmt.Sprintf("central@%d", c),
		Universe:     n,
		PostFunc:     func(graph.NodeID) []graph.NodeID { return []graph.NodeID{c} },
		QueryFunc:    func(graph.NodeID) []graph.NodeID { return []graph.NodeID{c} },
	}
}

// Random returns a randomized strategy choosing p posting nodes and q
// query nodes uniformly (without replacement) per node, deterministic in
// seed. This realizes the probabilistic analysis of §2.2, where
// E[#(P(i) ∩ Q(j))] = pq/n.
func Random(n, p, q int, seed uint64) Strategy {
	pick := func(node graph.NodeID, k int, salt uint64) []graph.NodeID {
		rng := rand.New(rand.NewPCG(seed^salt, uint64(node)*0x9e3779b97f4a7c15+1))
		perm := rng.Perm(n)
		if k > n {
			k = n
		}
		out := make([]graph.NodeID, k)
		for i := 0; i < k; i++ {
			out[i] = graph.NodeID(perm[i])
		}
		sortIDs(out)
		return out
	}
	return Funcs{
		StrategyName: fmt.Sprintf("random-p%d-q%d", p, q),
		Universe:     n,
		PostFunc:     func(i graph.NodeID) []graph.NodeID { return pick(i, p, 0x736f6d6570736575) },
		QueryFunc:    func(j graph.NodeID) []graph.NodeID { return pick(j, q, 0x646f72616e646f6d) },
	}
}

// HierarchyExample reproduces the paper's Example 5 on nine nodes with
// the hierarchical order 1,2,3 < 7; 4,5,6 < 8; 7,8 < 9 (node identifiers
// here are 0-based: 0,1,2 < 6; 3,4,5 < 7; 6,7 < 8). Posts and queries go
// to the strict ancestors of a node; the rendezvous entry printed in the
// paper is the lowest common ancestor.
func HierarchyExample() Strategy {
	parent := hierarchyExampleParents()
	ancestors := func(v graph.NodeID) []graph.NodeID {
		var out []graph.NodeID
		for at := parent[v]; at != -1; at = parent[at] {
			out = append(out, at)
		}
		if len(out) == 0 {
			// The root posts/queries at itself.
			out = []graph.NodeID{v}
		}
		return out
	}
	return Funcs{
		StrategyName: "hierarchy-example5",
		Universe:     9,
		PostFunc:     ancestors,
		QueryFunc:    ancestors,
	}
}

func hierarchyExampleParents() []graph.NodeID {
	return []graph.NodeID{6, 6, 6, 7, 7, 7, 8, 8, -1}
}

// HierarchyExampleLCA returns the designated rendezvous node for a pair
// (i, j) in Example 5: their lowest common strict ancestor (the root for
// pairs involving the upper nodes), matching the published matrix.
func HierarchyExampleLCA(i, j graph.NodeID) graph.NodeID {
	parent := hierarchyExampleParents()
	anc := func(v graph.NodeID) map[graph.NodeID]int {
		out := make(map[graph.NodeID]int)
		depth := 0
		for at := parent[v]; at != -1; at = parent[at] {
			out[at] = depth
			depth++
		}
		if len(out) == 0 {
			out[v] = 0
		}
		return out
	}
	ai, aj := anc(i), anc(j)
	best := graph.NodeID(-1)
	bestDepth := 1 << 30
	for v, d := range ai {
		if _, ok := aj[v]; ok && d < bestDepth {
			best, bestDepth = v, d
		}
	}
	return best
}

// CubeExample reproduces the paper's Example 6 on the binary 3-cube:
// P(abc) = {axy | x,y ∈ {0,1}} and Q(abc) = {xbc | x ∈ {0,1}}, whose
// rendezvous for server abc and client a'b'c' is the single node a b'c'.
func CubeExample() Strategy {
	return Funcs{
		StrategyName: "cube-example6",
		Universe:     8,
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			a := int(i) & 0b100
			return []graph.NodeID{
				graph.NodeID(a), graph.NodeID(a | 1),
				graph.NodeID(a | 2), graph.NodeID(a | 3),
			}
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			bc := int(j) & 0b011
			return []graph.NodeID{graph.NodeID(bc), graph.NodeID(bc | 0b100)}
		},
	}
}

// ErrEmptyRendezvous reports a strategy pair (i, j) with P(i) ∩ Q(j) = ∅,
// i.e. a client that can never locate a server.
var ErrEmptyRendezvous = errors.New("rendezvous: empty intersection")

// Intersect returns P ∩ Q as a sorted node list.
func Intersect(p, q []graph.NodeID) []graph.NodeID {
	inP := make(map[graph.NodeID]bool, len(p))
	for _, v := range p {
		inP[v] = true
	}
	var out []graph.NodeID
	for _, v := range q {
		if inP[v] {
			out = append(out, v)
			delete(inP, v) // tolerate duplicates in q
		}
	}
	sortIDs(out)
	return out
}

func sortIDs(s []graph.NodeID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}
