package rendezvous

import (
	"testing"
	"testing/quick"

	"matchmake/internal/graph"
)

func nodeRange(from, to int) []graph.NodeID {
	out := make([]graph.NodeID, 0, to-from)
	for v := from; v < to; v++ {
		out = append(out, graph.NodeID(v))
	}
	return out
}

func TestRectMatchesSquareWhenFull(t *testing.T) {
	s := Checkerboard(16)
	square := mustBuild(t, s)
	rect, err := BuildRect(s, nodeRange(0, 16), nodeRange(0, 16))
	if err != nil {
		t.Fatalf("BuildRect: %v", err)
	}
	if rect.AvgCost() != square.AvgCost() {
		t.Fatalf("rect cost %f != square cost %f", rect.AvgCost(), square.AvgCost())
	}
	if rect.AvgProduct() != square.AvgProduct() {
		t.Fatalf("rect product %f != square product %f", rect.AvgProduct(), square.AvgProduct())
	}
	kr := rect.Multiplicities()
	ks := square.Multiplicities()
	for v := range ks {
		if kr[v] != ks[v] {
			t.Fatalf("k[%d]: rect %d vs square %d", v, kr[v], ks[v])
		}
	}
	// The bounds reduce to the square forms.
	if got, want := RectProductLowerBound(kr, 16, 16), ProductLowerBound(ks); got != want {
		t.Fatalf("rect P1 bound %f != square %f", got, want)
	}
	if got, want := RectCostLowerBound(kr, 16, 16), CostLowerBound(ks); got != want {
		t.Fatalf("rect P2 bound %f != square %f", got, want)
	}
}

func TestRectServerOnlyClientOnlySplit(t *testing.T) {
	// Half the universe hosts servers, the other half clients.
	s := Checkerboard(16)
	rect, err := BuildRect(s, nodeRange(0, 8), nodeRange(8, 16))
	if err != nil {
		t.Fatalf("BuildRect: %v", err)
	}
	if rows, cols := rect.Shape(); rows != 8 || cols != 8 {
		t.Fatalf("shape = %dx%d, want 8x8", rows, cols)
	}
	if err := rect.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	k := rect.Multiplicities()
	if rect.AvgProduct()+1e-9 < RectProductLowerBound(k, 8, 8) {
		t.Fatal("rect Prop 1 analogue violated")
	}
	if rect.AvgCost()+1e-9 < RectCostLowerBound(k, 8, 8) {
		t.Fatal("rect Prop 2 analogue violated")
	}
}

func TestRectErrors(t *testing.T) {
	s := Checkerboard(9)
	if _, err := BuildRect(s, nil, nodeRange(0, 3)); err == nil {
		t.Fatal("empty servers should fail")
	}
	if _, err := BuildRect(s, nodeRange(0, 3), nil); err == nil {
		t.Fatal("empty clients should fail")
	}
	if _, err := BuildRect(s, []graph.NodeID{99}, nodeRange(0, 3)); err == nil {
		t.Fatal("out-of-range server should fail")
	}
	if _, err := BuildRect(s, nodeRange(0, 3), []graph.NodeID{-1}); err == nil {
		t.Fatal("out-of-range client should fail")
	}
}

func TestRectVerifyDetectsEmpty(t *testing.T) {
	s := Funcs{
		StrategyName: "halfbroken",
		Universe:     4,
		PostFunc:     func(i graph.NodeID) []graph.NodeID { return []graph.NodeID{0} },
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			if j == 3 {
				return []graph.NodeID{1}
			}
			return []graph.NodeID{0}
		},
	}
	rect, err := BuildRect(s, nodeRange(0, 2), nodeRange(2, 4))
	if err != nil {
		t.Fatalf("BuildRect: %v", err)
	}
	if err := rect.Verify(); err == nil {
		t.Fatal("Verify should detect the empty pair")
	}
}

// TestRectBoundsPropertyRandom validates the "mutatis mutandis" claim
// empirically: the rectangular analogues of Propositions 1–2 hold for
// random strategies over random server/client splits.
func TestRectBoundsPropertyRandom(t *testing.T) {
	f := func(seed uint64, pRaw, qRaw, cutRaw uint8) bool {
		const n = 24
		p := 1 + int(pRaw)%n
		q := 1 + int(qRaw)%n
		cut := 4 + int(cutRaw)%(n-8) // servers [0,cut), clients [cut,n)
		s := Random(n, p, q, seed)
		rect, err := BuildRect(s, nodeRange(0, cut), nodeRange(cut, n))
		if err != nil {
			return false
		}
		k := rect.Multiplicities()
		rows, cols := rect.Shape()
		const slack = 1e-9
		if rect.AvgProduct()+slack < RectProductLowerBound(k, rows, cols) {
			return false
		}
		return rect.AvgCost()+slack >= RectCostLowerBound(k, rows, cols)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
