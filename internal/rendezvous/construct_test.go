package rendezvous

import (
	"math"
	"testing"
	"testing/quick"

	"matchmake/internal/graph"
)

func TestCheckerboardVariousN(t *testing.T) {
	// Proposition 3: #P·#Q ≈ n, #P + #Q ≈ 2√n, k_v ≈ n, including
	// non-square universe sizes.
	for _, n := range []int{4, 9, 10, 16, 17, 25, 30, 64, 100} {
		m := mustBuild(t, Checkerboard(n))
		if err := m.Verify(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		sqrtN := math.Sqrt(float64(n))
		if got := m.AvgCost(); got > 2*sqrtN+2 {
			t.Fatalf("n=%d: AvgCost = %f, want ≤ 2√n+2 = %f", n, got, 2*sqrtN+2)
		}
		if got := m.AvgCost(); got < 2*math.Floor(sqrtN)-2 {
			t.Fatalf("n=%d: AvgCost = %f suspiciously small", n, got)
		}
		// Load is spread: no node's multiplicity exceeds a small multiple
		// of n.
		for v, kv := range m.Multiplicities() {
			if kv > 4*n {
				t.Fatalf("n=%d: k[%d] = %d, want ≤ 4n", n, v, kv)
			}
		}
	}
}

func TestCheckerboardSquareIsOptimal(t *testing.T) {
	// For square n the construction is exactly the paper's Example 4
	// layout: singleton entries and k_v = n.
	for _, n := range []int{4, 9, 16, 25} {
		m := mustBuild(t, Checkerboard(n))
		if !m.IsOptimalShotgun() {
			t.Fatalf("n=%d: expected singleton entries", n)
		}
		for v, kv := range m.Multiplicities() {
			if kv != n {
				t.Fatalf("n=%d: k[%d] = %d, want %d", n, v, kv, n)
			}
		}
		want := 2 * math.Sqrt(float64(n))
		if got := m.AvgCost(); math.Abs(got-want) > 1e-9 {
			t.Fatalf("n=%d: AvgCost = %f, want %f", n, got, want)
		}
	}
}

func TestCheckerboardNearLowerBound(t *testing.T) {
	// The construction should sit within a small factor of the
	// Proposition 2 bound for its own multiplicities.
	for _, n := range []int{9, 16, 30, 64, 100} {
		m := mustBuild(t, Checkerboard(n))
		bound := CostLowerBound(m.Multiplicities())
		if m.AvgCost() > 1.5*bound+2 {
			t.Fatalf("n=%d: AvgCost %f too far above bound %f", n, m.AvgCost(), bound)
		}
	}
}

func TestRedundantCheckerboard(t *testing.T) {
	// Square n: the rendezvous set of every pair has exactly r nodes.
	for _, r := range []int{1, 2, 3, 4} {
		m := mustBuild(t, RedundantCheckerboard(64, r))
		if err := m.Verify(); err != nil {
			t.Fatalf("r=%d: %v", r, err)
		}
		if got := m.MinRendezvousSize(); got != r {
			t.Fatalf("r=%d: MinRendezvousSize = %d, want %d", r, got, r)
		}
		// Posting costs r·√n, querying √n.
		if got := m.AvgCost(); got != float64(r*8+8) {
			t.Fatalf("r=%d: AvgCost = %f, want %d", r, got, r*8+8)
		}
	}
	// r clamps to [1, b].
	if m := mustBuild(t, RedundantCheckerboard(16, 0)); m.MinRendezvousSize() != 1 {
		t.Fatal("r=0 should clamp to 1")
	}
	if m := mustBuild(t, RedundantCheckerboard(16, 99)); m.MinRendezvousSize() != 4 {
		t.Fatal("r>b should clamp to b")
	}
	// Non-square n keeps correctness (non-empty everywhere).
	if err := mustBuild(t, RedundantCheckerboard(30, 3)).Verify(); err != nil {
		t.Fatalf("non-square: %v", err)
	}
}

func TestLiftDoublesCostQuadruplesMultiplicity(t *testing.T) {
	// Proposition 4 on the 9-node checkerboard: m′(36) = 2·m(9),
	// k′_{v+tn} = 4·k_v.
	base := Checkerboard(9)
	mBase := mustBuild(t, base)
	lifted := Lift(base)
	if lifted.N() != 36 {
		t.Fatalf("lifted N = %d, want 36", lifted.N())
	}
	mLift := mustBuild(t, lifted)
	if err := mLift.Verify(); err != nil {
		t.Fatalf("lifted Verify: %v", err)
	}
	if got, want := mLift.AvgCost(), 2*mBase.AvgCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("lifted AvgCost = %f, want %f", got, want)
	}
	kBase := mBase.Multiplicities()
	kLift := mLift.Multiplicities()
	for v := 0; v < 36; v++ {
		if kLift[v] != 4*kBase[v%9] {
			t.Fatalf("k'[%d] = %d, want 4·k[%d] = %d", v, kLift[v], v%9, 4*kBase[v%9])
		}
	}
}

func TestLiftIterated(t *testing.T) {
	// Lifting twice: 9 → 36 → 144 nodes, cost ×4.
	base := Checkerboard(9)
	mBase := mustBuild(t, base)
	twice := Lift(Lift(base))
	if twice.N() != 144 {
		t.Fatalf("twice-lifted N = %d, want 144", twice.N())
	}
	mTwice := mustBuild(t, twice)
	if err := mTwice.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got, want := mTwice.AvgCost(), 4*mBase.AvgCost(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("twice-lifted AvgCost = %f, want %f", got, want)
	}
}

func TestLiftPreservesVerification(t *testing.T) {
	for _, s := range []Strategy{Broadcast(5), Sweep(5), Central(5, 2)} {
		m := mustBuild(t, Lift(s))
		if err := m.Verify(); err != nil {
			t.Fatalf("%s lifted: %v", s.Name(), err)
		}
	}
}

func TestTranspose(t *testing.T) {
	base := Checkerboard(9)
	tr := Transpose(base)
	mBase := mustBuild(t, base)
	mTr := mustBuild(t, tr)
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			a := mBase.Entry(graph.NodeID(i), graph.NodeID(j))
			b := mTr.Entry(graph.NodeID(j), graph.NodeID(i))
			if len(a) != len(b) {
				t.Fatalf("entry (%d,%d): %v vs transposed %v", i, j, a, b)
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("entry (%d,%d): %v vs transposed %v", i, j, a, b)
				}
			}
		}
	}
	// Costs are mirrored, the average is unchanged.
	if mTr.AvgCost() != mBase.AvgCost() {
		t.Fatalf("transpose changed AvgCost: %f vs %f", mTr.AvgCost(), mBase.AvgCost())
	}
	// Double transpose is the identity on entries.
	mTrTr := mustBuild(t, Transpose(tr))
	if mTrTr.Entry(2, 7)[0] != mBase.Entry(2, 7)[0] {
		t.Fatal("double transpose should be the identity")
	}
}

func TestUnionGrowsRendezvous(t *testing.T) {
	// Central servers at two different nodes: the union guarantees two
	// rendezvous nodes per pair — f = 1 tolerance by combination.
	u, err := Union(Central(16, 3), Central(16, 12))
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	m := mustBuild(t, u)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := m.MinRendezvousSize(); got != 2 {
		t.Fatalf("MinRendezvousSize = %d, want 2", got)
	}
	// Cost is the sum of the components' costs.
	if got := m.AvgCost(); got != 4 {
		t.Fatalf("AvgCost = %f, want 4", got)
	}
}

func TestUnionMismatchedUniverses(t *testing.T) {
	if _, err := Union(Central(4, 0), Central(5, 0)); err == nil {
		t.Fatal("mismatched universes should fail")
	}
}

func TestUnionWithCheckerboard(t *testing.T) {
	// Checkerboard ∪ its transpose: rendezvous at both the (row_i, col_j)
	// and (row_j, col_i) crossings.
	cb := Checkerboard(16)
	u, err := Union(cb, Transpose(cb))
	if err != nil {
		t.Fatalf("Union: %v", err)
	}
	m := mustBuild(t, u)
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if m.MinRendezvousSize() < 1 {
		t.Fatal("union lost rendezvous")
	}
	// Dedup keeps P reasonable: ≤ sum of parts.
	if got := m.AvgCost(); got > 2*16.0 {
		t.Fatalf("AvgCost = %f, want ≤ 32", got)
	}
}

func TestCheckerboardIntersectionProperty(t *testing.T) {
	// For arbitrary n and pairs, the designated node rb(i)·b + cb(j)
	// (mod n) lies in P(i) ∩ Q(j).
	f := func(nRaw, iRaw, jRaw uint16) bool {
		n := 2 + int(nRaw)%200
		i := int(iRaw) % n
		j := int(jRaw) % n
		s := Checkerboard(n)
		meet := Intersect(s.Post(graph.NodeID(i)), s.Query(graph.NodeID(j)))
		return len(meet) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
