package rendezvous_test

import (
	"fmt"

	"matchmake/internal/rendezvous"
)

// The paper's Example 4: the truly distributed name server on nine
// nodes, where every node is rendezvous for exactly n pairs.
func ExampleCheckerboard() {
	m, err := rendezvous.Build(rendezvous.Checkerboard(9))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(m.RowString(0))
	fmt.Println(m.RowString(4))
	fmt.Printf("m(n) = %.0f = 2*sqrt(9)\n", m.AvgCost())
	// Output:
	// 1 1 1 2 2 2 3 3 3
	// 4 4 4 5 5 5 6 6 6
	// m(n) = 6 = 2*sqrt(9)
}

// Proposition 2's lower bound is tight for the truly distributed case
// and for the centralized name server.
func ExampleCostLowerBound() {
	distributed, _ := rendezvous.Build(rendezvous.Checkerboard(16))
	central, _ := rendezvous.Build(rendezvous.Central(16, 0))
	fmt.Printf("distributed: m(n)=%.0f bound=%.0f\n",
		distributed.AvgCost(), rendezvous.CostLowerBound(distributed.Multiplicities()))
	fmt.Printf("central:     m(n)=%.0f bound=%.0f\n",
		central.AvgCost(), rendezvous.CostLowerBound(central.Multiplicities()))
	// Output:
	// distributed: m(n)=8 bound=8
	// central:     m(n)=2 bound=2
}

// Proposition 4 lifts a strategy to four times the universe at twice the
// average cost.
func ExampleLift() {
	base := rendezvous.Checkerboard(9)
	lifted := rendezvous.Lift(base)
	mBase, _ := rendezvous.Build(base)
	mLift, _ := rendezvous.Build(lifted)
	fmt.Printf("n: %d -> %d\n", base.N(), lifted.N())
	fmt.Printf("m(n): %.0f -> %.0f\n", mBase.AvgCost(), mLift.AvgCost())
	// Output:
	// n: 9 -> 36
	// m(n): 6 -> 12
}

// Union composes two strategies into one with redundant rendezvous —
// two centralized name servers give every pair two meeting points.
func ExampleUnion() {
	u, err := rendezvous.Union(rendezvous.Central(9, 2), rendezvous.Central(9, 7))
	if err != nil {
		fmt.Println(err)
		return
	}
	m, _ := rendezvous.Build(u)
	fmt.Println("min rendezvous:", m.MinRendezvousSize())
	// Output:
	// min rendezvous: 2
}
