package rendezvous

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"matchmake/internal/graph"
)

func mustBuild(t *testing.T, s Strategy) *Matrix {
	t.Helper()
	m, err := Build(s)
	if err != nil {
		t.Fatalf("Build(%s): %v", s.Name(), err)
	}
	return m
}

func TestBroadcastMatrix(t *testing.T) {
	// Example 1: r_ij = {i} for every client j.
	m := mustBuild(t, Broadcast(9))
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !m.IsOptimalShotgun() {
		t.Fatal("broadcast entries should be singletons")
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			e := m.Entry(graph.NodeID(i), graph.NodeID(j))
			if len(e) != 1 || e[0] != graph.NodeID(i) {
				t.Fatalf("entry(%d,%d) = %v, want {%d}", i, j, e, i)
			}
		}
	}
	// m(n) = 1 + n.
	if got := m.AvgCost(); got != 10 {
		t.Fatalf("AvgCost = %f, want 10", got)
	}
}

func TestSweepMatrix(t *testing.T) {
	// Example 2: r_ij = {j} for every server i.
	m := mustBuild(t, Sweep(9))
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			e := m.Entry(graph.NodeID(i), graph.NodeID(j))
			if len(e) != 1 || e[0] != graph.NodeID(j) {
				t.Fatalf("entry(%d,%d) = %v, want {%d}", i, j, e, j)
			}
		}
	}
}

func TestCentralMatrix(t *testing.T) {
	// Example 3: every entry is node 3 (1-based), i.e. node 2 here.
	m := mustBuild(t, Central(9, 2))
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			e := m.Entry(graph.NodeID(i), graph.NodeID(j))
			if len(e) != 1 || e[0] != 2 {
				t.Fatalf("entry(%d,%d) = %v, want {2}", i, j, e)
			}
		}
	}
	// m(n) = 2, the centralized corollary's floor.
	if got := m.AvgCost(); got != 2 {
		t.Fatalf("AvgCost = %f, want 2", got)
	}
	k := m.Multiplicities()
	if k[2] != 81 {
		t.Fatalf("k[2] = %d, want 81", k[2])
	}
	if got := CostLowerBound(k); got != 2 {
		t.Fatalf("CostLowerBound = %f, want 2", got)
	}
	if got := ProductLowerBound(k); got != 1 {
		t.Fatalf("ProductLowerBound = %f, want 1", got)
	}
}

func TestCheckerboard9MatchesExample4(t *testing.T) {
	// Example 4 on nine nodes: entry (i,j) = 3·⌊i/3⌋ + ⌊j/3⌋ (0-based).
	m := mustBuild(t, Checkerboard(9))
	if !m.IsOptimalShotgun() {
		t.Fatal("9-node checkerboard should have singleton entries")
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			want := graph.NodeID(3*(i/3) + j/3)
			e := m.Entry(graph.NodeID(i), graph.NodeID(j))
			if len(e) != 1 || e[0] != want {
				t.Fatalf("entry(%d,%d) = %v, want {%d}", i, j, e, want)
			}
		}
	}
	// Truly distributed: every node used equally often (k_v = 9) and
	// m(n) = 2√n = 6.
	for v, kv := range m.Multiplicities() {
		if kv != 9 {
			t.Fatalf("k[%d] = %d, want 9", v, kv)
		}
	}
	if got := m.AvgCost(); got != 6 {
		t.Fatalf("AvgCost = %f, want 6", got)
	}
}

func TestHierarchyExampleMatrix(t *testing.T) {
	// Example 5's printed matrix, 0-based: LCA(i,j).
	want := [9][9]graph.NodeID{
		{6, 6, 6, 8, 8, 8, 8, 8, 8},
		{6, 6, 6, 8, 8, 8, 8, 8, 8},
		{6, 6, 6, 8, 8, 8, 8, 8, 8},
		{8, 8, 8, 7, 7, 7, 8, 8, 8},
		{8, 8, 8, 7, 7, 7, 8, 8, 8},
		{8, 8, 8, 7, 7, 7, 8, 8, 8},
		{8, 8, 8, 8, 8, 8, 8, 8, 8},
		{8, 8, 8, 8, 8, 8, 8, 8, 8},
		{8, 8, 8, 8, 8, 8, 8, 8, 8},
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			if got := HierarchyExampleLCA(graph.NodeID(i), graph.NodeID(j)); got != want[i][j] {
				t.Fatalf("LCA(%d,%d) = %d, want %d", i, j, got, want[i][j])
			}
		}
	}
	// The ancestor-set strategy must still produce valid (non-empty)
	// rendezvous everywhere, and the LCA must be inside each entry.
	m := mustBuild(t, HierarchyExample())
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			lca := HierarchyExampleLCA(graph.NodeID(i), graph.NodeID(j))
			found := false
			for _, v := range m.Entry(graph.NodeID(i), graph.NodeID(j)) {
				if v == lca {
					found = true
				}
			}
			if !found {
				t.Fatalf("entry(%d,%d) = %v misses LCA %d", i, j,
					m.Entry(graph.NodeID(i), graph.NodeID(j)), lca)
			}
		}
	}
	// Hierarchical match-making can be as cheap as O(log n): the minimum
	// instance costs 2 messages (root to root).
	if m.MinCost() != 2 {
		t.Fatalf("MinCost = %d, want 2", m.MinCost())
	}
}

func TestCubeExampleMatrix(t *testing.T) {
	// Example 6: rendezvous of server abc and client a'b'c' is a b'c'.
	m := mustBuild(t, CubeExample())
	if !m.IsOptimalShotgun() {
		t.Fatal("cube example should have singleton entries")
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := graph.NodeID((i & 0b100) | (j & 0b011))
			e := m.Entry(graph.NodeID(i), graph.NodeID(j))
			if len(e) != 1 || e[0] != want {
				t.Fatalf("entry(%03b,%03b) = %v, want {%03b}", i, j, e, int(want))
			}
		}
	}
	// #P = 4, #Q = 2: m(n) = 6 for every pair.
	if m.MinCost() != 6 || m.MaxCost() != 6 {
		t.Fatalf("cost range = [%d,%d], want [6,6]", m.MinCost(), m.MaxCost())
	}
}

func TestRandomStrategyShapes(t *testing.T) {
	s := Random(50, 10, 14, 99)
	p := s.Post(7)
	q := s.Query(7)
	if len(p) != 10 || len(q) != 14 {
		t.Fatalf("sizes = %d,%d, want 10,14", len(p), len(q))
	}
	// Deterministic per seed and node.
	p2 := Random(50, 10, 14, 99).Post(7)
	for i := range p {
		if p[i] != p2[i] {
			t.Fatal("Random strategy must be deterministic in seed")
		}
	}
	// No duplicates.
	seen := make(map[graph.NodeID]bool)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("duplicate node %d in P", v)
		}
		seen[v] = true
	}
	// Oversized request clamps to n.
	if got := len(Random(5, 99, 2, 1).Post(0)); got != 5 {
		t.Fatalf("clamped P size = %d, want 5", got)
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		name string
		p, q []graph.NodeID
		want []graph.NodeID
	}{
		{"disjoint", []graph.NodeID{1, 2}, []graph.NodeID{3, 4}, nil},
		{"overlap", []graph.NodeID{1, 2, 3}, []graph.NodeID{3, 1}, []graph.NodeID{1, 3}},
		{"dup in q", []graph.NodeID{5}, []graph.NodeID{5, 5}, []graph.NodeID{5}},
		{"empty p", nil, []graph.NodeID{1}, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Intersect(tt.p, tt.q)
			if len(got) != len(tt.want) {
				t.Fatalf("Intersect = %v, want %v", got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("Intersect = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

func TestBuildRejectsEmptyUniverse(t *testing.T) {
	_, err := Build(Funcs{StrategyName: "empty", Universe: 0})
	if err == nil {
		t.Fatal("Build on empty universe should fail")
	}
}

func TestVerifyDetectsEmptyEntry(t *testing.T) {
	// P(i) = {0}, Q(j) = {1}: never meet.
	s := Funcs{
		StrategyName: "broken",
		Universe:     3,
		PostFunc:     func(graph.NodeID) []graph.NodeID { return []graph.NodeID{0} },
		QueryFunc:    func(graph.NodeID) []graph.NodeID { return []graph.NodeID{1} },
	}
	m := mustBuild(t, s)
	if err := m.Verify(); !errors.Is(err, ErrEmptyRendezvous) {
		t.Fatalf("Verify = %v, want ErrEmptyRendezvous", err)
	}
}

func TestMatrixString(t *testing.T) {
	m := mustBuild(t, Central(3, 0))
	s := m.String()
	if !strings.Contains(s, "1 1 1") {
		t.Fatalf("String output unexpected:\n%s", s)
	}
	if got := m.RowString(0); got != "1 1 1" {
		t.Fatalf("RowString = %q", got)
	}
	// Multi-node and empty entries render distinctly.
	broken := mustBuild(t, Funcs{
		StrategyName: "mixed",
		Universe:     2,
		PostFunc:     func(i graph.NodeID) []graph.NodeID { return []graph.NodeID{0, 1} },
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			if j == 0 {
				return []graph.NodeID{0, 1}
			}
			return nil
		},
	})
	out := broken.RowString(0)
	if !strings.Contains(out, "{1,2}") || !strings.Contains(out, "-") {
		t.Fatalf("RowString = %q, want set and empty markers", out)
	}
}

func TestWeightedCost(t *testing.T) {
	m := mustBuild(t, Broadcast(4)) // #P = 1, #Q = 4
	if got := m.AvgCostWeighted(1); got != m.AvgCost() {
		t.Fatalf("alpha=1 weighted = %f, want %f", got, m.AvgCost())
	}
	// alpha = 10: 1 + 10·4 = 41.
	if got := m.AvgCostWeighted(10); got != 41 {
		t.Fatalf("weighted = %f, want 41", got)
	}
}

func TestMinRendezvousSize(t *testing.T) {
	m := mustBuild(t, Sweep(5))
	if got := m.MinRendezvousSize(); got != 1 {
		t.Fatalf("MinRendezvousSize = %d, want 1", got)
	}
}

// TestPropositionBoundsHoldForRandomStrategies is the property-based heart
// of E3: for arbitrary random strategies the measured quantities respect
// Propositions 1 and 2.
func TestPropositionBoundsHoldForRandomStrategies(t *testing.T) {
	f := func(seed uint64, pRaw, qRaw uint8) bool {
		n := 30
		p := 1 + int(pRaw)%n
		q := 1 + int(qRaw)%n
		m, err := Build(Random(n, p, q, seed))
		if err != nil {
			return false
		}
		k := m.Multiplicities()
		// Bounds apply to strategies that make every match; random
		// strategies may miss pairs, which only lowers k and weakens the
		// bound, so the inequality must still hold.
		const slack = 1e-9
		if m.AvgProduct()+slack < ProductLowerBound(k) {
			return false
		}
		return m.AvgCost()+slack >= CostLowerBound(k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestM2Constraint checks Σ k_v ≥ n² for strategies whose every entry is
// non-empty (constraint M2).
func TestM2Constraint(t *testing.T) {
	for _, s := range []Strategy{Broadcast(7), Sweep(7), Central(7, 3), Checkerboard(7), Checkerboard(16)} {
		m := mustBuild(t, s)
		if err := m.Verify(); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		sum := 0
		for _, kv := range m.Multiplicities() {
			sum += kv
		}
		if sum < m.N()*m.N() {
			t.Fatalf("%s: Σk = %d < n² = %d", s.Name(), sum, m.N()*m.N())
		}
	}
}
