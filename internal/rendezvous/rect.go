package rendezvous

import (
	"fmt"
	"math"

	"matchmake/internal/graph"
)

// RectMatrix is the nonsquare rendezvous matrix of the remark closing
// §2.3.2: "Propositions 1 and 2 hold mutatis mutandis for nonsquare
// matrices R, that is, for networks where some nodes can host only
// servers and other nodes perhaps only clients." Rows range over the
// server-capable nodes S and columns over the client-capable nodes C.
type RectMatrix struct {
	servers []graph.NodeID
	clients []graph.NodeID
	name    string
	n       int

	entries [][][]graph.NodeID // entries[si][cj]
	pSize   []int              // #P over servers
	qSize   []int              // #Q over clients
}

// BuildRect materializes the rectangular rendezvous matrix of a strategy
// restricted to the given server and client node sets.
func BuildRect(s Strategy, servers, clients []graph.NodeID) (*RectMatrix, error) {
	if len(servers) == 0 || len(clients) == 0 {
		return nil, fmt.Errorf("rendezvous: rect matrix needs servers and clients")
	}
	m := &RectMatrix{
		servers: append([]graph.NodeID(nil), servers...),
		clients: append([]graph.NodeID(nil), clients...),
		name:    s.Name(),
		n:       s.N(),
		entries: make([][][]graph.NodeID, len(servers)),
		pSize:   make([]int, len(servers)),
		qSize:   make([]int, len(clients)),
	}
	posts := make([][]graph.NodeID, len(servers))
	for si, i := range servers {
		if int(i) < 0 || int(i) >= s.N() {
			return nil, fmt.Errorf("rendezvous: server node %d: %w", i, graph.ErrNodeRange)
		}
		posts[si] = s.Post(i)
		m.pSize[si] = len(posts[si])
	}
	queries := make([][]graph.NodeID, len(clients))
	for cj, j := range clients {
		if int(j) < 0 || int(j) >= s.N() {
			return nil, fmt.Errorf("rendezvous: client node %d: %w", j, graph.ErrNodeRange)
		}
		queries[cj] = s.Query(j)
		m.qSize[cj] = len(queries[cj])
	}
	for si := range servers {
		m.entries[si] = make([][]graph.NodeID, len(clients))
		for cj := range clients {
			m.entries[si][cj] = Intersect(posts[si], queries[cj])
		}
	}
	return m, nil
}

// Shape returns (number of server rows, number of client columns).
func (m *RectMatrix) Shape() (rows, cols int) {
	return len(m.servers), len(m.clients)
}

// Entry returns the rendezvous set of the si-th server row and cj-th
// client column.
func (m *RectMatrix) Entry(si, cj int) []graph.NodeID { return m.entries[si][cj] }

// Verify checks that every server/client pair can rendezvous.
func (m *RectMatrix) Verify() error {
	for si := range m.entries {
		for cj := range m.entries[si] {
			if len(m.entries[si][cj]) == 0 {
				return fmt.Errorf("pair (%d,%d): %w", m.servers[si], m.clients[cj], ErrEmptyRendezvous)
			}
		}
	}
	return nil
}

// Multiplicities returns k_v over the |S|·|C| entries.
func (m *RectMatrix) Multiplicities() []int {
	k := make([]int, m.n)
	for si := range m.entries {
		for cj := range m.entries[si] {
			for _, v := range m.entries[si][cj] {
				k[v]++
			}
		}
	}
	return k
}

// AvgCost returns the rectangular m(S,C): the average of
// #P(i) + #Q(j) over server/client pairs.
func (m *RectMatrix) AvgCost() float64 {
	var sp, sq int
	for _, p := range m.pSize {
		sp += p
	}
	for _, q := range m.qSize {
		sq += q
	}
	return float64(sp)/float64(len(m.pSize)) + float64(sq)/float64(len(m.qSize))
}

// AvgProduct returns the average of #P(i)·#Q(j) over pairs.
func (m *RectMatrix) AvgProduct() float64 {
	var sp, sq int
	for _, p := range m.pSize {
		sp += p
	}
	for _, q := range m.qSize {
		sq += q
	}
	return float64(sp) / float64(len(m.pSize)) * float64(sq) / float64(len(m.qSize))
}

// RectProductLowerBound is the rectangular analogue of Proposition 1:
// avg(#P·#Q) ≥ (Σᵥ√k_v)² / (|S|·|C|). It reduces to the square bound at
// |S| = |C| = n.
func RectProductLowerBound(k []int, rows, cols int) float64 {
	if rows == 0 || cols == 0 {
		return 0
	}
	var s float64
	for _, kv := range k {
		if kv > 0 {
			s += math.Sqrt(float64(kv))
		}
	}
	return s * s / (float64(rows) * float64(cols))
}

// RectCostLowerBound is the rectangular analogue of Proposition 2:
// m(S,C) ≥ 2·Σᵥ√k_v / √(|S|·|C|). It reduces to 2(Σ√k_v)/n at
// |S| = |C| = n.
func RectCostLowerBound(k []int, rows, cols int) float64 {
	if rows == 0 || cols == 0 {
		return 0
	}
	var s float64
	for _, kv := range k {
		if kv > 0 {
			s += math.Sqrt(float64(kv))
		}
	}
	return 2 * s / math.Sqrt(float64(rows)*float64(cols))
}
