package rendezvous

import (
	"fmt"

	"matchmake/internal/graph"
)

// Shift returns the strategy s with every posting and query set
// translated by `by` positions modulo the universe: Pₛ(i) = P(i) + by and
// Qₛ(j) = Q(j) + by (element-wise, mod n). Translation preserves the
// rendezvous property — Pₛ(i) ∩ Qₛ(j) is exactly (P(i) ∩ Q(j)) + by, so
// it is non-empty whenever the base intersection is — while moving every
// rendezvous node somewhere else. That makes shifted copies of one base
// strategy natural replica families for fault tolerance: a crashed
// rendezvous node of one copy is, for any nonzero shift, not the
// rendezvous node the other copy meets at (see strategy.Replicated).
func Shift(s Strategy, by int) Strategy {
	n := s.N()
	if n <= 0 {
		return s
	}
	by = ((by % n) + n) % n
	if by == 0 {
		return s
	}
	shift := func(set []graph.NodeID) []graph.NodeID {
		out := make([]graph.NodeID, len(set))
		for i, v := range set {
			out[i] = graph.NodeID((int(v) + by) % n)
		}
		sortIDs(out)
		return out
	}
	return Funcs{
		StrategyName: fmt.Sprintf("%s+%d", s.Name(), by),
		Universe:     n,
		PostFunc:     func(i graph.NodeID) []graph.NodeID { return shift(s.Post(i)) },
		QueryFunc:    func(j graph.NodeID) []graph.NodeID { return shift(s.Query(j)) },
	}
}
