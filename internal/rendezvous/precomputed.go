package rendezvous

import "matchmake/internal/graph"

// precomputed materializes a strategy's posting and query sets once per
// node. Strategies built from Funcs recompute their sets on every call
// (Random even re-runs a PRNG permutation); on a hot serving path that
// work dominates the lookup itself. Precompute trades O(n·(p+q)) memory
// for O(1) set access and is what the cluster layer feeds its transports.
type precomputed struct {
	name  string
	post  [][]graph.NodeID
	query [][]graph.NodeID
}

var _ Strategy = (*precomputed)(nil)

// Precompute returns a Strategy with the same Name, N, Post and Query as
// s, but with every posting and query set materialized up front. The
// returned sets are shared across calls; callers must not mutate them.
// Precomputing an already-precomputed strategy returns it unchanged.
func Precompute(s Strategy) Strategy {
	if p, ok := s.(*precomputed); ok {
		return p
	}
	n := s.N()
	p := &precomputed{
		name:  s.Name(),
		post:  make([][]graph.NodeID, n),
		query: make([][]graph.NodeID, n),
	}
	for v := 0; v < n; v++ {
		p.post[v] = s.Post(graph.NodeID(v))
		p.query[v] = s.Query(graph.NodeID(v))
	}
	return p
}

// Name implements Strategy.
func (p *precomputed) Name() string { return p.name }

// N implements Strategy.
func (p *precomputed) N() int { return len(p.post) }

// Post implements Strategy.
func (p *precomputed) Post(i graph.NodeID) []graph.NodeID {
	if int(i) < 0 || int(i) >= len(p.post) {
		return nil
	}
	return p.post[i]
}

// Query implements Strategy.
func (p *precomputed) Query(j graph.NodeID) []graph.NodeID {
	if int(j) < 0 || int(j) >= len(p.query) {
		return nil
	}
	return p.query[j]
}
