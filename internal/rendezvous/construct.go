package rendezvous

import (
	"fmt"
	"math"

	"matchmake/internal/graph"
)

// Checkerboard returns the truly distributed construction of
// Proposition 3 for a complete n-node network: the rendezvous matrix is
// arranged as (as near as possible) √n × √n squares of about n entries
// each, every square filled with one unique node.
//
// Concretely, with b = ⌈√n⌉, a server at node i posts to the b nodes of
// "row block" rb(i) and a client at node j queries the b nodes of "column
// block" cb(j); the shared node rb(i)·b + cb(j) (mod n) is always in the
// intersection, #P(i)·#Q(j) ≈ n, #P(i) + #Q(j) ≈ 2√n, and every node
// occurs k_v ≈ n times — the paper's Example 4 generalized to arbitrary n.
func Checkerboard(n int) Strategy {
	b := int(math.Ceil(math.Sqrt(float64(n))))
	rowBlock := func(i graph.NodeID) int { return int(i) * b / n }
	colBlock := func(j graph.NodeID) int { return int(j) * b / n }
	return Funcs{
		StrategyName: fmt.Sprintf("checkerboard-%d", n),
		Universe:     n,
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			return blockNodes(rowBlock(i)*b, 1, b, n)
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			return blockNodes(colBlock(j), b, b, n)
		},
	}
}

// blockNodes returns {(start + t·step) mod n : t < count}, deduplicated
// and sorted.
func blockNodes(start, step, count, n int) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, count)
	out := make([]graph.NodeID, 0, count)
	for t := 0; t < count; t++ {
		v := graph.NodeID((start + t*step) % n)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sortIDs(out)
	return out
}

// RedundantCheckerboard returns the §2.4 fault-tolerant variant of the
// checkerboard: the server posts to r consecutive row blocks and the
// client queries one column block, so every pair's rendezvous set has at
// least r nodes — choosing P and Q "such that #(P(i) ∩ Q(j)) ≥ f+1,
// where f is the maximal number of faults", at r times the posting cost.
func RedundantCheckerboard(n, r int) Strategy {
	if r < 1 {
		r = 1
	}
	b := int(math.Ceil(math.Sqrt(float64(n))))
	if r > b {
		r = b
	}
	rowBlock := func(i graph.NodeID) int { return int(i) * b / n }
	colBlock := func(j graph.NodeID) int { return int(j) * b / n }
	return Funcs{
		StrategyName: fmt.Sprintf("checkerboard-%d-r%d", n, r),
		Universe:     n,
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			seen := make(map[graph.NodeID]bool, r*b)
			out := make([]graph.NodeID, 0, r*b)
			rb := rowBlock(i)
			for t := 0; t < r; t++ {
				for _, v := range blockNodes(((rb+t)%b)*b, 1, b, n) {
					if !seen[v] {
						seen[v] = true
						out = append(out, v)
					}
				}
			}
			sortIDs(out)
			return out
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			return blockNodes(colBlock(j), b, b, n)
		},
	}
}

// Lift returns the Proposition 4 construction: given a strategy on n
// nodes it produces a strategy on 4n nodes whose rendezvous matrix R′ is
// the 2×2 quadrant arrangement of element-disjoint copies of the doubled
// matrix M, with multiplicities k′_{v+tn} = 4·k_v and average cost
// m′(4n) = 2·m(n).
//
// Row i′ of R′ spans two quadrant copies (left and right), so
// P′(i′) relabels P(⌊(i′ mod 2n)/2⌋) into both; columns dually for Q′.
func Lift(s Strategy) Strategy {
	n := s.N()
	return Funcs{
		StrategyName: s.Name() + "-lifted",
		Universe:     4 * n,
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			// Rows 0..2n-1 see quadrants 0 (left) and 1 (right); rows
			// 2n..4n-1 see quadrants 2 and 3.
			qa, qb := 0, 1
			row := int(i)
			if row >= 2*n {
				qa, qb = 2, 3
				row -= 2 * n
			}
			base := s.Post(graph.NodeID(row / 2))
			return relabel(base, n, qa, qb)
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			// Columns 0..2n-1 see quadrants 0 (top) and 2 (bottom);
			// columns 2n..4n-1 see quadrants 1 and 3.
			qa, qb := 0, 2
			col := int(j)
			if col >= 2*n {
				qa, qb = 1, 3
				col -= 2 * n
			}
			base := s.Query(graph.NodeID(col / 2))
			return relabel(base, n, qa, qb)
		},
	}
}

// relabel maps each node v to its images v + qa·n and v + qb·n in the
// two quadrant copies.
func relabel(base []graph.NodeID, n, qa, qb int) []graph.NodeID {
	out := make([]graph.NodeID, 0, 2*len(base))
	for _, v := range base {
		out = append(out, v+graph.NodeID(qa*n), v+graph.NodeID(qb*n))
	}
	sortIDs(out)
	return out
}

// Transpose swaps the server and client roles of a strategy: the
// transposed P is the original Q and vice versa, so the rendezvous
// matrix is transposed. The paper's Example 6 is the transpose of the
// §3.2 half-split convention at d = 3, k = 1.
func Transpose(s Strategy) Strategy {
	return Funcs{
		StrategyName: s.Name() + "-transposed",
		Universe:     s.N(),
		PostFunc:     s.Query,
		QueryFunc:    s.Post,
	}
}

// Union posts and queries the node sets of both strategies, so every
// rendezvous set is the union of the two components' sets:
// r_ij ⊇ r_ij(a) ∪ r_ij(b). Combining two strategies with disjoint
// rendezvous nodes is another way to reach the #(P∩Q) ≥ f+1 redundancy
// of §2.4, at the sum of their costs.
func Union(a, b Strategy) (Strategy, error) {
	if a.N() != b.N() {
		return nil, fmt.Errorf("rendezvous: union universes differ: %d vs %d", a.N(), b.N())
	}
	merge := func(x, y []graph.NodeID) []graph.NodeID {
		seen := make(map[graph.NodeID]bool, len(x)+len(y))
		out := make([]graph.NodeID, 0, len(x)+len(y))
		for _, v := range x {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		for _, v := range y {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sortIDs(out)
		return out
	}
	return Funcs{
		StrategyName: a.Name() + "+" + b.Name(),
		Universe:     a.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			return merge(a.Post(i), b.Post(i))
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			return merge(a.Query(j), b.Query(j))
		},
	}, nil
}
