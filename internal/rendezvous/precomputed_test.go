package rendezvous

import (
	"testing"

	"matchmake/internal/graph"
)

func TestPrecomputeMatchesSource(t *testing.T) {
	for _, src := range []Strategy{
		Checkerboard(16),
		Random(25, 5, 5, 42),
		Broadcast(9),
	} {
		p := Precompute(src)
		if p.Name() != src.Name() || p.N() != src.N() {
			t.Fatalf("%s: identity mismatch", src.Name())
		}
		for v := 0; v < src.N(); v++ {
			id := graph.NodeID(v)
			if got, want := p.Post(id), src.Post(id); !equalIDs(got, want) {
				t.Fatalf("%s: Post(%d) = %v; want %v", src.Name(), v, got, want)
			}
			if got, want := p.Query(id), src.Query(id); !equalIDs(got, want) {
				t.Fatalf("%s: Query(%d) = %v; want %v", src.Name(), v, got, want)
			}
		}
		if Precompute(p) != p {
			t.Fatalf("%s: re-precompute did not return the same instance", src.Name())
		}
		if p.Post(graph.NodeID(-1)) != nil || p.Query(graph.NodeID(src.N())) != nil {
			t.Fatalf("%s: out-of-range lookup not nil", src.Name())
		}
	}
}

func equalIDs(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
