package hashlocate

import (
	"errors"
	"testing"
	"time"

	"matchmake/internal/graph"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

func newNeighborhood(t *testing.T, fanouts ...int) (*Neighborhood, *topology.Hierarchy) {
	t.Helper()
	h, err := topology.NewHierarchy(fanouts...)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	net, err := sim.New(h.G)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	nb, err := NewNeighborhood(net, h, 200*time.Millisecond)
	if err != nil {
		t.Fatalf("NewNeighborhood: %v", err)
	}
	return nb, h
}

func TestNeighborhoodLocalResolvesAtLevelOne(t *testing.T) {
	nb, _ := newNeighborhood(t, 4, 4, 4)
	// Server and client in the same level-1 cluster (nodes 0..3).
	if _, err := nb.Post("printer", 1, 3); err != nil {
		t.Fatalf("Post: %v", err)
	}
	res, err := nb.Locate(2, "printer")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != 1 {
		t.Fatalf("Addr = %d, want 1", res.Addr)
	}
	if res.Level != 1 {
		t.Fatalf("resolved at level %d, want 1 (local)", res.Level)
	}
	if res.Queried != 1 {
		t.Fatalf("queried %d rendezvous, want 1", res.Queried)
	}
}

func TestNeighborhoodClimbsToLCA(t *testing.T) {
	nb, h := newNeighborhood(t, 4, 4, 4)
	// Server at node 0, client at node 63: LCA level 3.
	if _, err := nb.Post("global-db", 0, Scope(h.Levels())); err != nil {
		t.Fatalf("Post: %v", err)
	}
	res, err := nb.Locate(63, "global-db")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != 0 {
		t.Fatalf("Addr = %d, want 0", res.Addr)
	}
	if res.Level != 3 {
		t.Fatalf("resolved at level %d, want 3", res.Level)
	}
	// A client in the server's own cluster still resolves locally.
	res, err = nb.Locate(2, "global-db")
	if err != nil {
		t.Fatalf("Locate local: %v", err)
	}
	if res.Level != 1 {
		t.Fatalf("local client resolved at level %d, want 1", res.Level)
	}
}

func TestNeighborhoodScopeRestriction(t *testing.T) {
	nb, _ := newNeighborhood(t, 4, 4, 4)
	// "Operating System Service" is local-only: scope 1.
	if _, err := nb.Post("os", 5, 1); err != nil {
		t.Fatalf("Post: %v", err)
	}
	// Same cluster (nodes 4..7): found.
	res, err := nb.Locate(6, "os")
	if err != nil {
		t.Fatalf("Locate in scope: %v", err)
	}
	if res.Addr != 5 {
		t.Fatalf("Addr = %d, want 5", res.Addr)
	}
	// Outside the cluster: the service is invisible, as Amoeba intends.
	if _, err := nb.Locate(40, "os"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound outside scope", err)
	}
}

func TestNeighborhoodScopeValidation(t *testing.T) {
	nb, h := newNeighborhood(t, 4, 4)
	if _, err := nb.Post("svc", 0, 0); !errors.Is(err, ErrBadScope) {
		t.Fatalf("err = %v, want ErrBadScope", err)
	}
	if _, err := nb.Post("svc", 0, Scope(h.Levels()+1)); !errors.Is(err, ErrBadScope) {
		t.Fatalf("err = %v, want ErrBadScope", err)
	}
	if _, err := nb.Post("svc", 99, 1); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
	if _, err := nb.Locate(99, "svc"); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
}

func TestNeighborhoodSizeMismatch(t *testing.T) {
	h, err := topology.NewHierarchy(2, 2)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	net, err := sim.New(topology.Complete(7))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	defer net.Close()
	if _, err := NewNeighborhood(net, h, 0); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestNeighborhoodRendezvousDeterministic(t *testing.T) {
	nb, _ := newNeighborhood(t, 4, 4)
	a, err := nb.RendezvousAt("svc", 5, 2)
	if err != nil {
		t.Fatalf("RendezvousAt: %v", err)
	}
	b, err := nb.RendezvousAt("svc", 9, 2)
	if err != nil {
		t.Fatalf("RendezvousAt: %v", err)
	}
	// Any two hosts in the same top cluster agree on the level-2
	// rendezvous — that shared node is what makes the match.
	if a != b {
		t.Fatalf("rendezvous differ: %d vs %d", a, b)
	}
}

func TestNeighborhoodLoadSpreadsByLevel(t *testing.T) {
	nb, h := newNeighborhood(t, 4, 4, 4)
	// Mostly-local service mix: 3 local services per cluster, a few
	// campus services, one global.
	for base := 0; base < h.N(); base += 4 {
		for k := 0; k < 3; k++ {
			port := corePort(base*10 + k)
			if _, err := nb.Post(port, graph.NodeID(base+k), 1); err != nil {
				t.Fatalf("Post local: %v", err)
			}
		}
	}
	for campus := 0; campus < 4; campus++ {
		if _, err := nb.Post(corePort(9000+campus), graph.NodeID(campus*16), 2); err != nil {
			t.Fatalf("Post campus: %v", err)
		}
	}
	if _, err := nb.Post("global", 0, 3); err != nil {
		t.Fatalf("Post global: %v", err)
	}
	load := nb.CacheLoadByLevel()
	total := 0
	for _, c := range load {
		total += c
	}
	// 48 local + 8 campus (two postings each... one per level) + 3 global.
	if total == 0 {
		t.Fatal("no cached entries")
	}
	// Local entries dominate and are NOT all sitting at the top level.
	if load[h.Levels()] >= total {
		t.Fatalf("all %d entries at the top level; load = %v", total, load)
	}
}
