package hashlocate

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

var fastOpts = Options{CallTimeout: 150 * time.Millisecond}

func newSystem(t *testing.T, n int, opts Options) *System {
	t.Helper()
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	if opts.CallTimeout == 0 {
		opts.CallTimeout = fastOpts.CallTimeout
	}
	s, err := New(net, opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestPostAndLocate(t *testing.T) {
	s := newSystem(t, 32, Options{})
	if _, err := s.Post("mail", 7); err != nil {
		t.Fatalf("Post: %v", err)
	}
	res, err := s.Locate(21, "mail")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != 7 {
		t.Fatalf("Addr = %d, want 7", res.Addr)
	}
	if res.Queried != 1 || res.Rehashes != 0 {
		t.Fatalf("Queried=%d Rehashes=%d, want 1,0", res.Queried, res.Rehashes)
	}
}

func TestMatchCostIsTwoMessages(t *testing.T) {
	// §5: "clients and servers need only use one network node each in
	// every match-making" — on a complete network one locate costs 2
	// hops (query + reply).
	s := newSystem(t, 64, Options{})
	if _, err := s.Post("db", 3); err != nil {
		t.Fatalf("Post: %v", err)
	}
	net := s.Network()
	net.ResetCounters()
	if _, err := s.Locate(40, "db"); err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if got := net.Hops(); got != 2 {
		t.Fatalf("locate hops = %d, want 2", got)
	}
}

func TestLocateNotFound(t *testing.T) {
	s := newSystem(t, 16, Options{})
	if _, err := s.Locate(3, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestUnpost(t *testing.T) {
	s := newSystem(t, 16, Options{})
	if _, err := s.Post("svc", 2); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if err := s.Unpost("svc", 2); err != nil {
		t.Fatalf("Unpost: %v", err)
	}
	if _, err := s.Locate(9, "svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound after unpost", err)
	}
}

func TestCrashKillsServiceWithoutReplication(t *testing.T) {
	// The §5 fragility: crash the single rendezvous node and the service
	// is gone from the whole network.
	s := newSystem(t, 32, Options{})
	rv := s.Rendezvous("svc", 0)
	if len(rv) != 1 {
		t.Fatalf("rendezvous = %v, want 1 node", rv)
	}
	server := (rv[0] + 1) % 32
	client := (rv[0] + 2) % 32
	if _, err := s.Post("svc", server); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if err := s.Network().Crash(rv[0]); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := s.Locate(client, "svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound after rendezvous crash", err)
	}
}

func TestReplicationSurvivesCrash(t *testing.T) {
	// First §5 mitigation: hash onto several addresses.
	s := newSystem(t, 32, Options{Replicas: 3})
	rv := s.Rendezvous("svc", 0)
	if len(rv) != 3 {
		t.Fatalf("rendezvous = %v, want 3 nodes", rv)
	}
	server := freeNode(rv, 32)
	client := (server + 1) % 32
	for contains(rv, client) {
		client = (client + 1) % 32
	}
	if _, err := s.Post("svc", server); err != nil {
		t.Fatalf("Post: %v", err)
	}
	if err := s.Network().Crash(rv[0]); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	res, err := s.Locate(client, "svc")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != server {
		t.Fatalf("Addr = %d, want %d", res.Addr, server)
	}
	if res.Queried != 2 {
		t.Fatalf("Queried = %d, want 2 (first replica dead)", res.Queried)
	}
}

func TestRehashRecovery(t *testing.T) {
	// Second §5 mitigation: when the primary rendezvous is down, server
	// and client rehash onto the same backup address.
	s := newSystem(t, 32, Options{MaxRehash: 2})
	primary := s.Rendezvous("svc", 0)
	if err := s.Network().Crash(primary[0]); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	server := (primary[0] + 1) % 32
	client := (primary[0] + 2) % 32
	if _, err := s.Post("svc", server); err != nil {
		t.Fatalf("Post with rehash: %v", err)
	}
	res, err := s.Locate(client, "svc")
	if err != nil {
		t.Fatalf("Locate with rehash: %v", err)
	}
	if res.Addr != server || res.Rehashes != 1 {
		t.Fatalf("Addr=%d Rehashes=%d, want %d,1", res.Addr, res.Rehashes, server)
	}
}

func TestPostAllRendezvousDown(t *testing.T) {
	s := newSystem(t, 8, Options{})
	rv := s.Rendezvous("svc", 0)
	if err := s.Network().Crash(rv[0]); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := s.Post("svc", (rv[0]+1)%8); err == nil {
		t.Fatal("post should fail with all rendezvous nodes down")
	}
}

func TestLoadDistribution(t *testing.T) {
	// A well-chosen hash spreads many ports over the nodes: no node
	// should hold a large fraction of all entries.
	s := newSystem(t, 64, Options{})
	for i := 0; i < 256; i++ {
		port := corePort(i)
		if _, err := s.Post(port, graph.NodeID(i%64)); err != nil {
			t.Fatalf("Post %q: %v", port, err)
		}
	}
	sizes := s.CacheSizes()
	total, maxSize := 0, 0
	for _, sz := range sizes {
		total += sz
		if sz > maxSize {
			maxSize = sz
		}
	}
	if total != 256 {
		t.Fatalf("total entries = %d, want 256", total)
	}
	if maxSize > 20 {
		t.Fatalf("max node load = %d, want ≤ 20 (mean 4)", maxSize)
	}
}

func TestClearCache(t *testing.T) {
	s := newSystem(t, 16, Options{})
	if _, err := s.Post("svc", 2); err != nil {
		t.Fatalf("Post: %v", err)
	}
	rv := s.Rendezvous("svc", 0)
	s.ClearCache(rv[0])
	if _, err := s.Locate(9, "svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound after cache clear", err)
	}
}

func TestInvalidNodes(t *testing.T) {
	s := newSystem(t, 8, Options{})
	if _, err := s.Post("svc", 99); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("Post err = %v, want ErrNodeRange", err)
	}
	if _, err := s.Locate(99, "svc"); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("Locate err = %v, want ErrNodeRange", err)
	}
}

func TestRendezvousDeterministic(t *testing.T) {
	s := newSystem(t, 32, Options{Replicas: 4})
	a := s.Rendezvous("some-port", 1)
	b := s.Rendezvous("some-port", 1)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("rendezvous sizes = %d,%d, want 4,4", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("rendezvous must be deterministic")
		}
	}
	// Distinct attempts should (almost always) differ.
	c := s.Rendezvous("some-port", 2)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("rehash attempt produced identical rendezvous set")
	}
}

func corePort(i int) core.Port {
	return core.Port(fmt.Sprintf("port-%d", i))
}

// freeNode returns a node identifier not in used.
func freeNode(used []graph.NodeID, n int) graph.NodeID {
	for v := 0; v < n; v++ {
		if !contains(used, graph.NodeID(v)) {
			return graph.NodeID(v)
		}
	}
	return 0
}

func contains(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
