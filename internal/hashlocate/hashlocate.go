// Package hashlocate implements Hash Locate from Section 5 of the paper:
// instead of node-indexed P, Q functions, a hash function maps service
// ports directly onto network addresses — P, Q : Π → 2^U with P = Q.
//
// Each server posts its (port, address) at the nodes P(π); each client in
// need of port π queries the nodes in P(π). Apart from redundancy for
// fault tolerance, clients and servers address only one network node each
// per match-making — far cheaper than Shotgun Locate's Θ(√n) — but if all
// rendezvous nodes for a port crash, that service vanishes from the
// entire network, which is why the paper calls Hash Locate fragile.
//
// Both §5 mitigations are implemented: hashing a port onto r > 1
// addresses, and rehashing to a backup rendezvous when the primary is
// observed down (which obliges services to poll their rendezvous nodes).
package hashlocate

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/sim"
)

// Errors returned by the engine.
var (
	// ErrNotFound reports a locate whose rendezvous nodes had no entry or
	// were unreachable.
	ErrNotFound = errors.New("hashlocate: service not found")
)

// Options configure a System.
type Options struct {
	// Replicas is the number of rendezvous addresses per port (the first
	// §5 robustness measure). Zero means 1.
	Replicas int
	// MaxRehash bounds how many successive backup addresses a locate or
	// post tries when rendezvous nodes are down (the second measure).
	// Zero disables rehashing.
	MaxRehash int
	// CallTimeout bounds each rendezvous query. Zero means 2s.
	CallTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	if o.MaxRehash < 0 {
		o.MaxRehash = 0
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 2 * time.Second
	}
	return o
}

// System is a running hash-based name server.
type System struct {
	net  *sim.Network
	opts Options

	mu     sync.Mutex
	caches []map[core.Port]core.Entry

	clock uint64
}

type (
	postMsg struct {
		entry core.Entry
	}
	queryMsg struct {
		port core.Port
	}
	queryReply struct {
		entry core.Entry
		found bool
	}
)

// New installs hash-locate handlers on every node of net.
func New(net *sim.Network, opts Options) (*System, error) {
	n := net.Graph().N()
	if n == 0 {
		return nil, fmt.Errorf("hashlocate: empty network")
	}
	s := &System{
		net:    net,
		opts:   opts.withDefaults(),
		caches: make([]map[core.Port]core.Entry, n),
	}
	for v := 0; v < n; v++ {
		s.caches[v] = make(map[core.Port]core.Entry)
		if err := net.SetHandler(graph.NodeID(v), s.handle); err != nil {
			return nil, fmt.Errorf("hashlocate: install handler: %w", err)
		}
	}
	return s, nil
}

func (s *System) handle(self graph.NodeID, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case postMsg:
		s.mu.Lock()
		cur, ok := s.caches[self][m.entry.Port]
		if !ok || m.entry.Time > cur.Time {
			s.caches[self][m.entry.Port] = m.entry
		}
		s.mu.Unlock()
	case queryMsg:
		if !msg.CanReply() {
			return
		}
		s.mu.Lock()
		e, ok := s.caches[self][m.port]
		s.mu.Unlock()
		// Reply errors surface as caller timeouts.
		_ = msg.Reply(queryReply{entry: e, found: ok && e.Active})
	}
}

// Rendezvous returns the rendezvous addresses of a port at rehash attempt
// k (k = 0 is the primary set): Replicas consecutive FNV-derived
// addresses, salted by the attempt number.
func (s *System) Rendezvous(port core.Port, attempt int) []graph.NodeID {
	n := s.net.Graph().N()
	out := make([]graph.NodeID, 0, s.opts.Replicas)
	seen := make(map[graph.NodeID]bool, s.opts.Replicas)
	for r := 0; len(out) < s.opts.Replicas && r < s.opts.Replicas+n; r++ {
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%d/%d", port, attempt, r)
		v := graph.NodeID(h.Sum64() % uint64(n))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// Post announces a server for port at node addr: the entry is sent to
// every rendezvous address of the port. If all rendezvous nodes of an
// attempt are unreachable, the post rehashes onto backup addresses (up to
// MaxRehash times). It returns the number of rendezvous nodes that
// accepted the posting.
func (s *System) Post(port core.Port, addr graph.NodeID) (int, error) {
	if !s.net.Graph().Valid(addr) {
		return 0, fmt.Errorf("hashlocate: post from %d: %w", addr, graph.ErrNodeRange)
	}
	s.mu.Lock()
	s.clock++
	entry := core.Entry{Port: port, Addr: addr, Time: s.clock, Active: true}
	s.mu.Unlock()
	total := 0
	for attempt := 0; attempt <= s.opts.MaxRehash; attempt++ {
		for _, v := range s.Rendezvous(port, attempt) {
			if err := s.net.Send(addr, v, postMsg{entry: entry}); err == nil {
				total++
			}
		}
		if total > 0 {
			s.net.Drain()
			return total, nil
		}
	}
	return 0, fmt.Errorf("hashlocate: post %q: all rendezvous nodes unreachable", port)
}

// Unpost tombstones the port at its rendezvous nodes.
func (s *System) Unpost(port core.Port, addr graph.NodeID) error {
	s.mu.Lock()
	s.clock++
	entry := core.Entry{Port: port, Addr: addr, Time: s.clock, Active: false}
	s.mu.Unlock()
	for attempt := 0; attempt <= s.opts.MaxRehash; attempt++ {
		for _, v := range s.Rendezvous(port, attempt) {
			_ = s.net.Send(addr, v, postMsg{entry: entry})
		}
	}
	s.net.Drain()
	return nil
}

// LocateResult reports a successful hash locate.
type LocateResult struct {
	// Addr is the located server address.
	Addr graph.NodeID
	// Queried is how many rendezvous nodes were asked before the answer.
	Queried int
	// Rehashes is how many backup attempts were needed (0 = primary).
	Rehashes int
}

// Locate asks the rendezvous nodes of port for the server address,
// rehashing onto backups when nodes are down. Match-making costs 2
// messages (query + reply) when the primary rendezvous is alive — the §5
// efficiency claim.
func (s *System) Locate(client graph.NodeID, port core.Port) (LocateResult, error) {
	if !s.net.Graph().Valid(client) {
		return LocateResult{}, fmt.Errorf("hashlocate: locate from %d: %w", client, graph.ErrNodeRange)
	}
	queried := 0
	for attempt := 0; attempt <= s.opts.MaxRehash; attempt++ {
		for _, v := range s.Rendezvous(port, attempt) {
			queried++
			raw, err := s.net.Call(client, v, queryMsg{port: port}, s.opts.CallTimeout)
			if err != nil {
				continue // node down or unreachable: try the next replica
			}
			rep, ok := raw.(queryReply)
			if !ok {
				continue
			}
			if rep.found {
				return LocateResult{Addr: rep.entry.Addr, Queried: queried, Rehashes: attempt}, nil
			}
		}
	}
	return LocateResult{Queried: queried}, fmt.Errorf("locate %q from %d: %w", port, client, ErrNotFound)
}

// CacheSizes returns the number of active entries cached per node, for
// load-distribution analysis ("provided the hash function is well-chosen,
// it distributes the burden of the locate work over the network").
func (s *System) CacheSizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]int, len(s.caches))
	for v, c := range s.caches {
		for _, e := range c {
			if e.Active {
				out[v]++
			}
		}
	}
	return out
}

// ClearCache models a rebooted rendezvous node losing its entries.
func (s *System) ClearCache(v graph.NodeID) {
	if !s.net.Graph().Valid(v) {
		return
	}
	s.mu.Lock()
	s.caches[v] = make(map[core.Port]core.Entry)
	s.mu.Unlock()
}

// Network returns the underlying simulator network.
func (s *System) Network() *sim.Network { return s.net }
