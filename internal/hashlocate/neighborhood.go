package hashlocate

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

// Neighborhood implements the generalized locate of §5's opening: the
// functions P, Q : U × Π → 2^U depend on the node as well as the port,
// and "we can hash a service onto nodes in neighborhoods … a local
// network, but also the network connecting the local networks, and so
// on". A service port hashes to one rendezvous node inside every cluster
// on the path from a host to the top of a hierarchy; servers post at
// each level up to the service's visibility scope, and clients search
// bottom-up, so local services resolve inside the local network and the
// locate burden spreads over the hosts at each level — the §3.5 Amoeba
// model where "nearly every service will be a local service in some
// sense, with only few services being truly global".
type Neighborhood struct {
	net  *sim.Network
	hier *topology.Hierarchy

	callTimeout time.Duration

	mu     sync.Mutex
	caches []map[core.Port]core.Entry
	clock  uint64
}

// Scope is a service visibility level: 1 = local cluster only, up to
// Levels() = the whole network (a "truly global" service).
type Scope int

// ErrBadScope reports a scope outside [1, Levels()].
var ErrBadScope = errors.New("hashlocate: scope out of range")

// NewNeighborhood installs the handlers over a hierarchy's network.
func NewNeighborhood(net *sim.Network, hier *topology.Hierarchy, callTimeout time.Duration) (*Neighborhood, error) {
	if net.Graph().N() != hier.N() {
		return nil, fmt.Errorf("hashlocate: network size %d != hierarchy size %d", net.Graph().N(), hier.N())
	}
	if callTimeout <= 0 {
		callTimeout = 2 * time.Second
	}
	nb := &Neighborhood{
		net:         net,
		hier:        hier,
		callTimeout: callTimeout,
		caches:      make([]map[core.Port]core.Entry, hier.N()),
	}
	for v := 0; v < hier.N(); v++ {
		nb.caches[v] = make(map[core.Port]core.Entry)
		if err := net.SetHandler(graph.NodeID(v), nb.handle); err != nil {
			return nil, fmt.Errorf("hashlocate: install handler: %w", err)
		}
	}
	return nb, nil
}

func (nb *Neighborhood) handle(self graph.NodeID, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case postMsg:
		nb.mu.Lock()
		cur, ok := nb.caches[self][m.entry.Port]
		if !ok || m.entry.Time > cur.Time {
			nb.caches[self][m.entry.Port] = m.entry
		}
		nb.mu.Unlock()
	case queryMsg:
		if !msg.CanReply() {
			return
		}
		nb.mu.Lock()
		e, ok := nb.caches[self][m.port]
		nb.mu.Unlock()
		_ = msg.Reply(queryReply{entry: e, found: ok && e.Active})
	}
}

// RendezvousAt returns the rendezvous node for port inside the level-ℓ
// cluster of host: the port hashes onto one of the cluster's gateways.
func (nb *Neighborhood) RendezvousAt(port core.Port, host graph.NodeID, level int) (graph.NodeID, error) {
	gws, err := nb.hier.Gateways(host, level)
	if err != nil {
		return -1, err
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s@%d", port, level)
	return gws[h.Sum64()%uint64(len(gws))], nil
}

// Post announces a server for port at node addr with the given
// visibility scope: the entry lands on the hashed gateway of every
// cluster on the path up, levels 1..scope.
func (nb *Neighborhood) Post(port core.Port, addr graph.NodeID, scope Scope) (int, error) {
	if int(scope) < 1 || int(scope) > nb.hier.Levels() {
		return 0, fmt.Errorf("hashlocate: post scope %d: %w", scope, ErrBadScope)
	}
	if !nb.net.Graph().Valid(addr) {
		return 0, fmt.Errorf("hashlocate: post from %d: %w", addr, graph.ErrNodeRange)
	}
	nb.mu.Lock()
	nb.clock++
	entry := core.Entry{Port: port, Addr: addr, Time: nb.clock, Active: true}
	nb.mu.Unlock()
	posted := 0
	for level := 1; level <= int(scope); level++ {
		rv, err := nb.RendezvousAt(port, addr, level)
		if err != nil {
			return posted, err
		}
		if err := nb.net.Send(addr, rv, postMsg{entry: entry}); err == nil {
			posted++
		}
	}
	nb.net.Drain()
	if posted == 0 {
		return 0, fmt.Errorf("hashlocate: post %q: no rendezvous reachable", port)
	}
	return posted, nil
}

// LocateLevels reports a neighborhood locate: the answer plus how many
// levels were climbed ("the system first does a local locate at the
// lowest level … and this goes on until the top level is reached").
type LocateLevels struct {
	// Addr is the located server address.
	Addr graph.NodeID
	// Level is the hierarchy level the locate resolved at.
	Level int
	// Queried is the number of rendezvous nodes asked.
	Queried int
}

// Locate searches bottom-up from the client's host: level 1 first, then
// outward until the top. Services posted with a local scope are only
// findable within their scope — the Amoeba visibility restriction.
func (nb *Neighborhood) Locate(client graph.NodeID, port core.Port) (LocateLevels, error) {
	if !nb.net.Graph().Valid(client) {
		return LocateLevels{}, fmt.Errorf("hashlocate: locate from %d: %w", client, graph.ErrNodeRange)
	}
	queried := 0
	for level := 1; level <= nb.hier.Levels(); level++ {
		rv, err := nb.RendezvousAt(port, client, level)
		if err != nil {
			return LocateLevels{}, err
		}
		queried++
		raw, err := nb.net.Call(client, rv, queryMsg{port: port}, nb.callTimeout)
		if err != nil {
			continue // rendezvous down; try the wider neighborhood
		}
		rep, ok := raw.(queryReply)
		if ok && rep.found {
			return LocateLevels{Addr: rep.entry.Addr, Level: level, Queried: queried}, nil
		}
	}
	return LocateLevels{Queried: queried}, fmt.Errorf("locate %q from %d: %w", port, client, ErrNotFound)
}

// CacheLoadByLevel returns, for each hierarchy level ℓ, the total number
// of entries held by nodes that are level-ℓ gateways but not gateways of
// any higher level — showing how the posting burden spreads "more or
// less evenly over the hosts at each level" instead of concentrating at
// the top.
func (nb *Neighborhood) CacheLoadByLevel() []int {
	out := make([]int, nb.hier.Levels()+1)
	nb.mu.Lock()
	defer nb.mu.Unlock()
	for v := 0; v < nb.hier.N(); v++ {
		level := nb.gatewayLevel(graph.NodeID(v))
		out[level] += len(nb.caches[v])
	}
	return out
}

// gatewayLevel returns the highest level at which v serves as a gateway
// (0 if none).
func (nb *Neighborhood) gatewayLevel(v graph.NodeID) int {
	highest := 0
	for level := 1; level <= nb.hier.Levels(); level++ {
		gws, err := nb.hier.Gateways(v, level)
		if err != nil {
			continue
		}
		for _, g := range gws {
			if g == v {
				highest = level
			}
		}
	}
	return highest
}
