package stats

import "sync/atomic"

// depthBuckets bounds the per-depth counters of a DepthCounter; depths
// beyond the last bucket are folded into it. Replication factors in
// practice are 2–3, so eight buckets never clip real data.
const depthBuckets = 8

// DepthCounter tallies events by a small integer depth — the serving
// layer's replica-fallthrough depth counter: a locate resolved by the
// first replica flood observes depth 0, one that fell through k
// families observes depth k, and a locate no replica could answer
// counts as a failure. Together with the total it yields the two
// availability numbers of a fault study: what fraction of locates
// succeeded at all, and how many extra floods the survivors paid.
//
// All methods are safe for concurrent use; reads race benignly with
// writers, like every other live counter in this package.
type DepthCounter struct {
	counts [depthBuckets]atomic.Int64
	fails  atomic.Int64
}

// Observe records one event resolved at the given depth (clamped to the
// last bucket; negative depths count as 0).
func (d *DepthCounter) Observe(depth int) {
	if depth < 0 {
		depth = 0
	}
	if depth >= depthBuckets {
		depth = depthBuckets - 1
	}
	d.counts[depth].Add(1)
}

// Fail records one event that no depth resolved.
func (d *DepthCounter) Fail() { d.fails.Add(1) }

// Counts returns the per-depth totals, index = depth.
func (d *DepthCounter) Counts() []int64 {
	out := make([]int64, depthBuckets)
	for i := range d.counts {
		out[i] = d.counts[i].Load()
	}
	return out
}

// Fails returns the number of events that no depth resolved.
func (d *DepthCounter) Fails() int64 { return d.fails.Load() }

// Total returns the number of observed events, failures included.
func (d *DepthCounter) Total() int64 {
	t := d.fails.Load()
	for i := range d.counts {
		t += d.counts[i].Load()
	}
	return t
}

// Fallthroughs returns the events resolved at depth > 0 — the locates
// that survived only thanks to a deeper replica.
func (d *DepthCounter) Fallthroughs() int64 {
	var t int64
	for i := 1; i < depthBuckets; i++ {
		t += d.counts[i].Load()
	}
	return t
}

// MeanDepth returns the average resolution depth of the successful
// events (0 when there were none).
func (d *DepthCounter) MeanDepth() float64 {
	var n, sum int64
	for i := range d.counts {
		c := d.counts[i].Load()
		n += c
		sum += int64(i) * c
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// Reset zeroes every counter.
func (d *DepthCounter) Reset() {
	for i := range d.counts {
		d.counts[i].Store(0)
	}
	d.fails.Store(0)
}
