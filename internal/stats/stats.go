// Package stats provides the small statistical helpers used by the
// experiment harness: summaries, histograms and log-log fits for scaling
// exponents.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum, sumSq float64
	for _, x := range sorted {
		sum += x
		sumSq += x * x
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		StdDev: math.Sqrt(variance),
		P50:    Percentile(sorted, 0.50),
		P95:    Percentile(sorted, 0.95),
		P99:    Percentile(sorted, 0.99),
	}
}

// Percentile returns the p-quantile (0 ≤ p ≤ 1) of an ascending-sorted
// sample using nearest-rank interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanInts returns the mean of an integer sample (0 for empty samples).
func MeanInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

// MaxInts returns the maximum of an integer sample (0 for empty samples).
func MaxInts(xs []int) int {
	maxVal := 0
	for i, x := range xs {
		if i == 0 || x > maxVal {
			maxVal = x
		}
	}
	return maxVal
}

// Floats converts an integer sample to float64.
func Floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// LinearFit fits y = a + b·x by least squares and returns (a, b). It
// requires at least two points; degenerate inputs return (0, 0).
func LinearFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	b = (n*sxy - sx*sy) / den
	a = (sy - b*sx) / n
	return a, b
}

// PowerLawExponent fits y = c·x^e on positive data by regressing
// log y on log x and returns the exponent e. Non-positive points are
// skipped; fewer than two usable points return 0. Experiments use this to
// check claims like m(n) = Θ(n^((d−1)/d)).
func PowerLawExponent(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	_, e := LinearFit(lx, ly)
	return e
}

// Histogram counts observations into unit-width integer buckets.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of value v.
func (h *Histogram) Add(v int) {
	h.counts[v]++
	h.total++
}

// Count returns the number of observations of value v.
func (h *Histogram) Count(v int) int { return h.counts[v] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Buckets returns the observed values in ascending order.
func (h *Histogram) Buckets() []int {
	out := make([]int, 0, len(h.counts))
	for v := range h.counts {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// String renders the histogram as "value:count" pairs.
func (h *Histogram) String() string {
	s := ""
	for i, v := range h.Buckets() {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d:%d", v, h.counts[v])
	}
	return s
}
