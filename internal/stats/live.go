package stats

import (
	"math/bits"
	"sync/atomic"
)

// LiveHist is a concurrent log-linear histogram for live latency
// tracking: values are bucketed by their power-of-two magnitude with
// subBits bits of linear sub-bucket resolution (relative error ≤ 1/8 per
// bucket). Observe is a single atomic add, so many goroutines can record
// into one histogram on a hot path; quantile reads scan the fixed bucket
// array and may run concurrently with writers (they see a slightly torn
// but monotone-consistent view, fine for progress reports).
//
// The zero value is ready to use.
type LiveHist struct {
	buckets [liveHistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

const (
	subBits         = 3
	subCount        = 1 << subBits
	liveHistBuckets = (64-subBits)*subCount + subCount
)

// liveBucket maps a value to its bucket index. Values below subCount are
// exact; larger values share a bucket with up to 1/subCount relative
// spread.
func liveBucket(v uint64) int {
	if v < subCount {
		return int(v)
	}
	major := bits.Len64(v) - 1 // ≥ subBits
	sub := (v >> (uint(major) - subBits)) & (subCount - 1)
	return (major-subBits+1)*subCount + int(sub)
}

// liveBucketLow returns the smallest value mapping to bucket idx.
func liveBucketLow(idx int) uint64 {
	if idx < subCount {
		return uint64(idx)
	}
	major := idx/subCount + subBits - 1
	sub := uint64(idx % subCount)
	return (subCount + sub) << (uint(major) - subBits)
}

// Observe records one observation of v.
func (h *LiveHist) Observe(v uint64) {
	h.buckets[liveBucket(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *LiveHist) Count() uint64 { return h.count.Load() }

// Mean returns the mean observation (0 for an empty histogram).
func (h *LiveHist) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest observation so far.
func (h *LiveHist) Max() uint64 { return h.max.Load() }

// Quantile returns an estimate of the p-quantile (0 ≤ p ≤ 1), linearly
// interpolated within the winning bucket. An empty histogram yields 0.
func (h *LiveHist) Quantile(p float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	var seen float64
	for i := range h.buckets {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := float64(liveBucketLow(i))
			var hi float64
			if i+1 < liveHistBuckets {
				hi = float64(liveBucketLow(i + 1))
			} else {
				hi = lo * 2
			}
			frac := 0.5
			if c > 0 {
				frac = (rank - seen) / c
			}
			return lo + (hi-lo)*frac
		}
		seen += c
	}
	return float64(h.max.Load())
}

// Merge folds src's observations into h. It is a read-side helper for
// striped histograms (merge the stripes into a scratch LiveHist, then
// query quantiles); merging while writers are active yields the usual
// slightly-torn but monotone-consistent view.
func (h *LiveHist) Merge(src *LiveHist) {
	for i := range src.buckets {
		if c := src.buckets[i].Load(); c != 0 {
			h.buckets[i].Add(c)
		}
	}
	h.count.Add(src.count.Load())
	h.sum.Add(src.sum.Load())
	for {
		m := src.max.Load()
		cur := h.max.Load()
		if m <= cur || h.max.CompareAndSwap(cur, m) {
			return
		}
	}
}

// Reset zeroes the histogram. It must not race with writers.
func (h *LiveHist) Reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
}
