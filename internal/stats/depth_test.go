package stats

import (
	"sync"
	"testing"
)

func TestDepthCounter(t *testing.T) {
	var d DepthCounter
	for i := 0; i < 10; i++ {
		d.Observe(0)
	}
	for i := 0; i < 4; i++ {
		d.Observe(1)
	}
	d.Observe(2)
	d.Fail()
	if got := d.Counts(); got[0] != 10 || got[1] != 4 || got[2] != 1 {
		t.Fatalf("counts = %v", got)
	}
	if d.Fails() != 1 {
		t.Fatalf("fails = %d", d.Fails())
	}
	if d.Total() != 16 {
		t.Fatalf("total = %d", d.Total())
	}
	if d.Fallthroughs() != 5 {
		t.Fatalf("fallthroughs = %d", d.Fallthroughs())
	}
	want := float64(0*10+1*4+2*1) / 15
	if got := d.MeanDepth(); got != want {
		t.Fatalf("mean depth = %v, want %v", got, want)
	}
	d.Reset()
	if d.Total() != 0 || d.Fallthroughs() != 0 || d.MeanDepth() != 0 {
		t.Fatalf("reset left state: total=%d", d.Total())
	}
}

func TestDepthCounterClamps(t *testing.T) {
	var d DepthCounter
	d.Observe(-3)
	d.Observe(1000)
	c := d.Counts()
	if c[0] != 1 || c[len(c)-1] != 1 {
		t.Fatalf("clamped counts = %v", c)
	}
}

func TestDepthCounterConcurrent(t *testing.T) {
	var d DepthCounter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				d.Observe(w % 3)
			}
		}(w)
	}
	wg.Wait()
	if d.Total() != 8000 {
		t.Fatalf("total = %d, want 8000", d.Total())
	}
}
