package stats

import (
	"math"
	"sync"
	"testing"
)

func TestLiveBucketRoundTrip(t *testing.T) {
	for _, v := range []uint64{0, 1, 7, 8, 9, 15, 16, 24, 100, 1023, 1024, 1 << 20, 1 << 40, math.MaxUint64} {
		idx := liveBucket(v)
		lo := liveBucketLow(idx)
		if lo > v {
			t.Fatalf("bucket low %d > value %d (idx %d)", lo, v, idx)
		}
		if idx+1 < liveHistBuckets {
			hi := liveBucketLow(idx + 1)
			if hi <= v {
				t.Fatalf("value %d not below next bucket low %d (idx %d)", v, hi, idx)
			}
		}
	}
	// Bucket indices must be monotone in the value.
	prev := -1
	for v := uint64(0); v < 4096; v++ {
		idx := liveBucket(v)
		if idx < prev {
			t.Fatalf("bucket index regressed at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
}

func TestLiveHistQuantiles(t *testing.T) {
	var h LiveHist
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("Mean = %v; want 500.5", got)
	}
	if h.Max() != 1000 {
		t.Fatalf("Max = %d", h.Max())
	}
	// Log-linear buckets with 3 sub-bits guarantee ≤ 12.5% relative
	// error; allow a bit of slack for interpolation.
	for _, tc := range []struct{ p, want float64 }{
		{0.50, 500}, {0.95, 950}, {0.99, 990},
	} {
		got := h.Quantile(tc.p)
		if rel := math.Abs(got-tc.want) / tc.want; rel > 0.15 {
			t.Fatalf("Quantile(%v) = %v; want within 15%% of %v", tc.p, got, tc.want)
		}
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Max() != 0 {
		t.Fatal("Reset did not clear the histogram")
	}
}

func TestLiveHistConcurrent(t *testing.T) {
	var h LiveHist
	const writers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(uint64(w*per + i))
				if i%1000 == 0 {
					h.Quantile(0.99) // readers race benignly with writers
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != writers*per {
		t.Fatalf("Count = %d; want %d", h.Count(), writers*per)
	}
}
