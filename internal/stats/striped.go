package stats

import "sync/atomic"

// CounterStripes is the stripe count of StripedCounter, a power of two.
const CounterStripes = 16

// paddedCounter occupies its own cache line so stripes never false-share.
type paddedCounter struct {
	v atomic.Int64
	_ [56]byte
}

// StripedCounter is a write-mostly int64 counter split across
// cacheline-padded stripes: concurrent writers that pass different
// stripe hints touch different cache lines, so a hot serving path does
// not serialize on one contended atomic. Reads sum the stripes and are
// accurate at any quiescent instant (torn-by-a-few mid-flight, like any
// statistics counter).
//
// The zero value is ready to use.
type StripedCounter struct {
	stripes [CounterStripes]paddedCounter
}

// Add adds delta to the stripe selected by hint (any int; it is masked
// down) and returns the stripe's new value — a cheap per-stripe tick
// callers can use for sampling decisions. Callers pass something cheap
// and well-spread as the hint — a client id, a shard index.
func (c *StripedCounter) Add(hint int, delta int64) int64 {
	return c.stripes[hint&(CounterStripes-1)].v.Add(delta)
}

// Load returns the sum over all stripes.
func (c *StripedCounter) Load() int64 {
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Reset zeroes every stripe. Like LiveHist.Reset it is meant for
// quiescent moments; adds racing a reset land in either window.
func (c *StripedCounter) Reset() {
	for i := range c.stripes {
		c.stripes[i].v.Store(0)
	}
}
