package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("summary = %+v", s)
	}
	if !almost(s.StdDev, math.Sqrt(2), 1e-9) {
		t.Fatalf("stddev = %f, want sqrt(2)", s.StdDev)
	}
	if s.P50 != 3 {
		t.Fatalf("p50 = %f, want 3", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.StdDev != 0 || s.P99 != 7 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {1, 40}, {-1, 10}, {2, 40}, {0.5, 25},
	}
	for _, tt := range tests {
		if got := Percentile(sorted, tt.p); !almost(got, tt.want, 1e-9) {
			t.Fatalf("Percentile(%v) = %f, want %f", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestMeanMaxInts(t *testing.T) {
	if m := MeanInts([]int{2, 4, 6}); m != 4 {
		t.Fatalf("MeanInts = %f, want 4", m)
	}
	if m := MeanInts(nil); m != 0 {
		t.Fatalf("MeanInts(nil) = %f, want 0", m)
	}
	if m := MaxInts([]int{-5, -2, -9}); m != -2 {
		t.Fatalf("MaxInts = %d, want -2", m)
	}
	if m := MaxInts(nil); m != 0 {
		t.Fatalf("MaxInts(nil) = %d, want 0", m)
	}
}

func TestFloats(t *testing.T) {
	fs := Floats([]int{1, 2})
	if len(fs) != 2 || fs[0] != 1 || fs[1] != 2 {
		t.Fatalf("Floats = %v", fs)
	}
}

func TestLinearFitExact(t *testing.T) {
	// y = 3 + 2x.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	a, b := LinearFit(xs, ys)
	if !almost(a, 3, 1e-9) || !almost(b, 2, 1e-9) {
		t.Fatalf("fit = %f + %f x, want 3 + 2x", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if a, b := LinearFit([]float64{1}, []float64{2}); a != 0 || b != 0 {
		t.Fatal("single point fit should be 0,0")
	}
	if a, b := LinearFit([]float64{1, 1}, []float64{2, 5}); a != 0 || b != 0 {
		t.Fatal("vertical fit should be 0,0")
	}
	if a, b := LinearFit([]float64{1, 2}, []float64{1}); a != 0 || b != 0 {
		t.Fatal("mismatched lengths should be 0,0")
	}
}

func TestPowerLawExponent(t *testing.T) {
	// y = 5·x^1.5 exactly.
	xs := []float64{1, 4, 9, 16, 25}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.5)
	}
	if e := PowerLawExponent(xs, ys); !almost(e, 1.5, 1e-9) {
		t.Fatalf("exponent = %f, want 1.5", e)
	}
	// Non-positive points are skipped.
	if e := PowerLawExponent([]float64{-1, 0}, []float64{1, 1}); e != 0 {
		t.Fatalf("exponent of unusable data = %f, want 0", e)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int{3, 1, 3, 3, 2} {
		h.Add(v)
	}
	if h.Total() != 5 || h.Count(3) != 3 || h.Count(9) != 0 {
		t.Fatalf("histogram = %s", h)
	}
	b := h.Buckets()
	if len(b) != 3 || b[0] != 1 || b[2] != 3 {
		t.Fatalf("buckets = %v", b)
	}
	if s := h.String(); s != "1:1 2:1 3:3" {
		t.Fatalf("String = %q", s)
	}
}

func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max &&
			s.Min <= s.P50 && s.P50 <= s.Max && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
