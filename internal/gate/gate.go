// Package gate is the multi-tenant service edge over a cluster: the
// public front door that turns "a match-maker you link against" into
// "a service arbitrary client processes can hit". One Gateway fronts
// one cluster.Cluster (any transport — mem for a single box, net for
// the multi-process cluster) and exposes Register / Deregister /
// Locate / LocateBatch / Watch on two stdlib-only listeners:
//
//   - an HTTP/JSON API (net/http; curl-able, keep-alive, with a
//     chunked-streaming Watch of registration/crash/epoch events), and
//   - a binary API over the internal/netwire uvarint framing (gate
//     opcodes, distinct from the node protocol) for high-throughput
//     clients; ClientTransport adapts it back into a
//     cluster.Transport so mmload's equivalence and load machinery
//     covers the wire edge too.
//
// Multi-tenancy is structural, not advisory: each tenant is a disjoint
// port namespace (the tenant id is folded into the port key before it
// reaches the cluster, so one tenant's registrations are unlocatable —
// not merely unlisted — for every other), authenticated by a bearer
// token table, and throttled by per-tenant quotas (a token-bucket
// request rate and an in-flight cap) that shed with 429 / a shed
// status instead of queueing — overload control moves from per-shard
// to per-tenant at the edge. Per-tenant counters and the cluster's
// MetricsSnapshot are exported in Prometheus text form on /metrics.
//
// The paper's §1.3 service model maps onto the edge directly: clients
// and servers are processes reaching the match-maker over a wire, the
// gateway is the host-level agent they hand their post/locate
// requests to, and the rendezvous machinery behind it stays exactly
// the measured cluster layer. See docs/PAPER_MAP.md.
package gate

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Errors returned by the gateway's tenant edge.
var (
	// ErrDenied reports a request with an unknown or missing bearer
	// token.
	ErrDenied = errors.New("gate: unknown token")
	// ErrShed reports a request rejected by the tenant's quota (rate or
	// in-flight cap) — the per-tenant overload shed.
	ErrShed = errors.New("gate: tenant quota exceeded")
	// ErrUnsupported reports a Transport operation the service edge
	// does not expose (probes, crash injection, resize control).
	ErrUnsupported = errors.New("gate: operation not supported at the service edge")
	// ErrUnknownReg reports a deregister for a registration id the
	// tenant does not own.
	ErrUnknownReg = errors.New("gate: unknown registration id")
)

// Gateway is the multi-tenant service edge over one cluster. Build it
// with New, mount HTTPHandler on an http.Server, and serve the binary
// API by passing WireHandler to a netwire.Server; Close releases the
// watch hub and the registration table (the backing cluster's
// lifecycle stays the caller's).
type Gateway struct {
	c   *cluster.Cluster
	hub *Hub

	tenants map[string]*tenant // by id
	byToken map[string]*tenant

	// regs is the gateway-held registration table: the edge owns the
	// cluster.ServerRef handles (a wire client cannot hold an
	// interface), keyed by a gateway-assigned id scoped per tenant.
	regMu   sync.Mutex
	regs    map[uint64]*gateReg
	nextReg atomic.Uint64

	// denied counts requests with an unknown token (no tenant to
	// charge them to).
	denied atomic.Int64

	start time.Time
}

// gateReg is one live registration made through the edge.
type gateReg struct {
	tn   *tenant
	ref  cluster.ServerRef
	port core.Port // tenant-local (unfolded)
	node graph.NodeID
}

// tenant is one configured tenant: identity, tokens, quota and
// counters.
type tenant struct {
	id string
	q  quota
	m  tenantMetrics
}

// tenantMetrics are the per-tenant rollups exported on /metrics.
type tenantMetrics struct {
	requests     atomic.Int64 // admitted API calls (locate batches count each locate)
	locates      atomic.Int64
	locateErrs   atomic.Int64
	registers    atomic.Int64
	deregisters  atomic.Int64
	shed         atomic.Int64 // quota rejections (rate or in-flight)
	watchEvents  atomic.Int64 // events delivered to this tenant's watchers
	watchDropped atomic.Int64 // events lost to slow watchers
	watchers     atomic.Int64 // live watch subscriptions
}

// New builds a gateway over c for the given tenants. hub carries the
// cluster's lifecycle events into Watch streams; pass the same Hub
// whose Publish you installed as the cluster's Options.OnEvent (or nil
// for a gateway without Watch). Tenant ids must be unique, as must
// every token across all tenants.
func New(c *cluster.Cluster, hub *Hub, tenants []TenantConfig) (*Gateway, error) {
	if hub == nil {
		hub = NewHub(0)
	}
	g := &Gateway{
		c:       c,
		hub:     hub,
		tenants: make(map[string]*tenant, len(tenants)),
		byToken: make(map[string]*tenant),
		regs:    make(map[uint64]*gateReg),
		start:   time.Now(),
	}
	for _, tc := range tenants {
		if err := tc.validate(); err != nil {
			return nil, err
		}
		if _, dup := g.tenants[tc.ID]; dup {
			return nil, fmt.Errorf("gate: duplicate tenant id %q", tc.ID)
		}
		tn := &tenant{id: tc.ID}
		tn.q.configure(tc.RatePerSec, tc.Burst, tc.MaxInflight)
		g.tenants[tc.ID] = tn
		for _, tok := range tc.Tokens {
			if _, dup := g.byToken[tok]; dup {
				return nil, fmt.Errorf("gate: token reused across tenants")
			}
			g.byToken[tok] = tn
		}
	}
	return g, nil
}

// Hub returns the gateway's watch hub (install its Publish as the
// backing cluster's Options.OnEvent).
func (g *Gateway) Hub() *Hub { return g.hub }

// Cluster returns the backing cluster.
func (g *Gateway) Cluster() *cluster.Cluster { return g.c }

// Close shuts the watch hub down (active Watch streams end); the
// backing cluster is not closed.
func (g *Gateway) Close() error {
	g.hub.close()
	return nil
}

// auth resolves a bearer token to its tenant.
func (g *Gateway) auth(token string) (*tenant, error) {
	if tn, ok := g.byToken[token]; ok {
		return tn, nil
	}
	g.denied.Add(1)
	return nil, ErrDenied
}

// foldPort prefixes a tenant-local port with the tenant namespace —
// the one line that makes tenancy structural: the cluster never sees
// an unfolded key, so cross-tenant collisions cannot exist below the
// edge.
func foldPort(tenantID string, port core.Port) core.Port {
	return core.Port(tenantID + "/" + string(port))
}

// unfoldPort strips a tenant's namespace prefix; ok reports whether
// the folded port belongs to that tenant.
func unfoldPort(tenantID string, folded core.Port) (core.Port, bool) {
	s, ok := strings.CutPrefix(string(folded), tenantID+"/")
	if !ok {
		return "", false
	}
	return core.Port(s), true
}

// admit charges n requests against the tenant's rate quota and enters
// the in-flight gate; the caller must call the returned release (only
// non-nil on success) when the request completes.
func (g *Gateway) admit(tn *tenant, n int) (release func(), err error) {
	if !tn.q.allow(n) {
		tn.m.shed.Add(1)
		return nil, ErrShed
	}
	if !tn.q.enter() {
		tn.m.shed.Add(1)
		return nil, ErrShed
	}
	tn.m.requests.Add(int64(n))
	return tn.q.leave, nil
}

// register announces a server for the tenant's port at node and
// returns the gateway-assigned registration id.
func (g *Gateway) register(tn *tenant, port core.Port, node graph.NodeID) (uint64, error) {
	if err := validPort(port); err != nil {
		return 0, err
	}
	release, err := g.admit(tn, 1)
	if err != nil {
		return 0, err
	}
	defer release()
	ref, err := g.c.Register(foldPort(tn.id, port), node)
	if err != nil {
		return 0, err
	}
	id := g.nextReg.Add(1)
	g.regMu.Lock()
	g.regs[id] = &gateReg{tn: tn, ref: ref, port: port, node: node}
	g.regMu.Unlock()
	tn.m.registers.Add(1)
	return id, nil
}

// deregister tombstones a registration made through the edge. The id
// must belong to the calling tenant.
func (g *Gateway) deregister(tn *tenant, id uint64) error {
	release, err := g.admit(tn, 1)
	if err != nil {
		return err
	}
	defer release()
	g.regMu.Lock()
	reg := g.regs[id]
	if reg != nil && reg.tn == tn {
		delete(g.regs, id)
	} else {
		reg = nil
	}
	g.regMu.Unlock()
	if reg == nil {
		return ErrUnknownReg
	}
	tn.m.deregisters.Add(1)
	return reg.ref.Deregister()
}

// locate resolves the tenant's port from client, returning the entry
// with its tenant-local port restored.
func (g *Gateway) locate(tn *tenant, client graph.NodeID, port core.Port) (core.Entry, error) {
	if err := validPort(port); err != nil {
		return core.Entry{}, err
	}
	release, err := g.admit(tn, 1)
	if err != nil {
		return core.Entry{}, err
	}
	defer release()
	tn.m.locates.Add(1)
	e, err := g.c.Locate(client, foldPort(tn.id, port))
	if err != nil {
		tn.m.locateErrs.Add(1)
		return core.Entry{}, err
	}
	e.Port = port
	return e, nil
}

// locateBatch resolves reqs (tenant-local ports) into res through the
// cluster's batched path; the whole batch is charged against the rate
// quota up front and shed atomically, never answered partially wrong.
func (g *Gateway) locateBatch(tn *tenant, reqs []cluster.LocateReq, res []cluster.LocateRes) error {
	for _, r := range reqs {
		if err := validPort(r.Port); err != nil {
			return err
		}
	}
	release, err := g.admit(tn, len(reqs))
	if err != nil {
		return err
	}
	defer release()
	tn.m.locates.Add(int64(len(reqs)))
	folded := make([]cluster.LocateReq, len(reqs))
	for i, r := range reqs {
		folded[i] = cluster.LocateReq{Client: r.Client, Port: foldPort(tn.id, r.Port)}
	}
	if err := g.c.LocateBatch(folded, res); err != nil {
		return err
	}
	for i := range reqs {
		if res[i].Err != nil {
			tn.m.locateErrs.Add(1)
			continue
		}
		res[i].Entry.Port = reqs[i].Port
	}
	return nil
}

// validPort rejects empty and namespace-breaking port names at the
// edge (a "/" in a tenant-local port could alias another tenant's
// namespace after folding only if tenant ids could contain "/", which
// TenantConfig.validate forbids — but an explicit check keeps unfolded
// names round-trippable).
func validPort(port core.Port) error {
	if port == "" {
		return fmt.Errorf("gate: empty port")
	}
	if len(port) > 256 {
		return fmt.Errorf("gate: port name longer than 256 bytes")
	}
	return nil
}
