package gate

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// HTTP request/response bodies for the JSON API. All are flat objects
// so they stay trivially curl-able; see the README quickstart.

// RegisterRequest is the body of POST /v1/register.
type RegisterRequest struct {
	// Port is the tenant-local port name to announce.
	Port string `json:"port"`
	// Node is the node the server resides at.
	Node int64 `json:"node"`
}

// RegisterResponse is the body answering POST /v1/register.
type RegisterResponse struct {
	// ID identifies the registration for a later deregister.
	ID uint64 `json:"id"`
	// Port and Node echo the request.
	Port string `json:"port"`
	Node int64  `json:"node"`
}

// DeregisterRequest is the body of POST /v1/deregister.
type DeregisterRequest struct {
	// ID is the registration id returned by register.
	ID uint64 `json:"id"`
}

// LocateRequest is the body of POST /v1/locate (GET uses ?port= and
// ?client= instead).
type LocateRequest struct {
	// Port is the tenant-local port to resolve.
	Port string `json:"port"`
	// Client is the node the lookup originates from (pass accounting
	// is distance-sensitive).
	Client int64 `json:"client"`
}

// EntryJSON is a located (port, address) posting as served by the
// JSON API.
type EntryJSON struct {
	// Port is the tenant-local port.
	Port string `json:"port"`
	// Addr is the node the server receives requests at.
	Addr int64 `json:"addr"`
	// ServerID distinguishes server instances on the same port.
	ServerID uint64 `json:"server_id"`
	// Time is the posting's logical timestamp.
	Time uint64 `json:"time"`
}

// LocateBatchRequest is the body of POST /v1/locate-batch: one client
// origin, many ports.
type LocateBatchRequest struct {
	// Client is the node the lookups originate from.
	Client int64 `json:"client"`
	// Ports are the tenant-local ports to resolve.
	Ports []string `json:"ports"`
}

// LocateBatchResult is one slot of a locate-batch response.
type LocateBatchResult struct {
	// Entry is the resolved posting when Error is empty.
	Entry *EntryJSON `json:"entry,omitempty"`
	// Error is "not-found" or an error string; empty on success.
	Error string `json:"error,omitempty"`
}

// LocateBatchResponse is the body answering POST /v1/locate-batch;
// Results[i] answers Ports[i].
type LocateBatchResponse struct {
	// Results holds one slot per requested port, in order.
	Results []LocateBatchResult `json:"results"`
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error string `json:"error"`
}

// HTTPHandler returns the gateway's HTTP/JSON API: /v1/register,
// /v1/deregister, /v1/locate, /v1/locate-batch and /v1/watch behind
// bearer-token auth, plus unauthenticated /metrics and /healthz.
func (g *Gateway) HTTPHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/register", g.withTenant(g.handleRegister))
	mux.HandleFunc("POST /v1/deregister", g.withTenant(g.handleDeregister))
	mux.HandleFunc("GET /v1/locate", g.withTenant(g.handleLocateGet))
	mux.HandleFunc("POST /v1/locate", g.withTenant(g.handleLocatePost))
	mux.HandleFunc("POST /v1/locate-batch", g.withTenant(g.handleLocateBatch))
	mux.HandleFunc("GET /v1/watch", g.withTenant(g.handleWatch))
	mux.HandleFunc("GET /metrics", g.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	return mux
}

// withTenant authenticates the request's bearer token and hands the
// tenant to h.
func (g *Gateway) withTenant(h func(http.ResponseWriter, *http.Request, *tenant)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok {
			writeErr(w, http.StatusUnauthorized, "missing bearer token")
			g.denied.Add(1)
			return
		}
		tn, err := g.auth(strings.TrimSpace(tok))
		if err != nil {
			writeErr(w, http.StatusUnauthorized, "unknown token")
			return
		}
		h(w, r, tn)
	}
}

// writeErr writes a JSON error body with the given status.
func writeErr(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(errorJSON{Error: msg})
}

// writeGateErr maps gateway/cluster errors onto HTTP semantics: shed
// quotas answer 429 with a Retry-After, a missing port answers 404,
// malformed input 400.
func writeGateErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrShed):
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "tenant quota exceeded")
	case errors.Is(err, core.ErrNotFound):
		writeErr(w, http.StatusNotFound, "not-found")
	case errors.Is(err, ErrUnknownReg):
		writeErr(w, http.StatusNotFound, "unknown registration id")
	default:
		writeErr(w, http.StatusBadRequest, err.Error())
	}
}

// writeJSON writes v as the 200 response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// decodeBody decodes the request body into v, rejecting unknown
// fields so typos fail loudly.
func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request, tn *tenant) {
	var req RegisterRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad register body: "+err.Error())
		return
	}
	id, err := g.register(tn, core.Port(req.Port), graph.NodeID(req.Node))
	if err != nil {
		writeGateErr(w, err)
		return
	}
	writeJSON(w, RegisterResponse{ID: id, Port: req.Port, Node: req.Node})
}

func (g *Gateway) handleDeregister(w http.ResponseWriter, r *http.Request, tn *tenant) {
	var req DeregisterRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad deregister body: "+err.Error())
		return
	}
	if err := g.deregister(tn, req.ID); err != nil {
		writeGateErr(w, err)
		return
	}
	writeJSON(w, map[string]bool{"ok": true})
}

func (g *Gateway) handleLocateGet(w http.ResponseWriter, r *http.Request, tn *tenant) {
	q := r.URL.Query()
	client, err := strconv.ParseInt(q.Get("client"), 10, 64)
	if q.Get("client") != "" && err != nil {
		writeErr(w, http.StatusBadRequest, "bad client node")
		return
	}
	g.serveLocate(w, tn, graph.NodeID(client), core.Port(q.Get("port")))
}

func (g *Gateway) handleLocatePost(w http.ResponseWriter, r *http.Request, tn *tenant) {
	var req LocateRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad locate body: "+err.Error())
		return
	}
	g.serveLocate(w, tn, graph.NodeID(req.Client), core.Port(req.Port))
}

func (g *Gateway) serveLocate(w http.ResponseWriter, tn *tenant, client graph.NodeID, port core.Port) {
	e, err := g.locate(tn, client, port)
	if err != nil {
		writeGateErr(w, err)
		return
	}
	writeJSON(w, entryJSON(e))
}

// entryJSON converts a core entry (tenant-local port already restored)
// to its JSON form.
func entryJSON(e core.Entry) EntryJSON {
	return EntryJSON{
		Port:     string(e.Port),
		Addr:     int64(e.Addr),
		ServerID: e.ServerID,
		Time:     e.Time,
	}
}

func (g *Gateway) handleLocateBatch(w http.ResponseWriter, r *http.Request, tn *tenant) {
	var req LocateBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad locate-batch body: "+err.Error())
		return
	}
	if len(req.Ports) == 0 {
		writeErr(w, http.StatusBadRequest, "empty ports")
		return
	}
	reqs := make([]cluster.LocateReq, len(req.Ports))
	for i, p := range req.Ports {
		reqs[i] = cluster.LocateReq{Client: graph.NodeID(req.Client), Port: core.Port(p)}
	}
	res := make([]cluster.LocateRes, len(reqs))
	if err := g.locateBatch(tn, reqs, res); err != nil {
		writeGateErr(w, err)
		return
	}
	out := LocateBatchResponse{Results: make([]LocateBatchResult, len(res))}
	for i, rr := range res {
		if rr.Err != nil {
			if errors.Is(rr.Err, core.ErrNotFound) {
				out.Results[i].Error = "not-found"
			} else {
				out.Results[i].Error = rr.Err.Error()
			}
			continue
		}
		e := entryJSON(rr.Entry)
		out.Results[i].Entry = &e
	}
	writeJSON(w, out)
}

// handleWatch streams tenant-scoped lifecycle events as
// newline-delimited JSON over a chunked response until the client
// disconnects or the hub closes. Watch streams do not consume rate
// quota (one long request, not a request stream) but do hold an
// in-flight slot so MaxInflight bounds a tenant's open watches too.
func (g *Gateway) handleWatch(w http.ResponseWriter, r *http.Request, tn *tenant) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	if !tn.q.enter() {
		tn.m.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusTooManyRequests, "tenant quota exceeded")
		return
	}
	defer tn.q.leave()
	sub := g.hub.Subscribe(tn.id, 256)
	defer sub.Close()
	tn.m.watchers.Add(1)
	defer tn.m.watchers.Add(-1)
	defer func() { tn.m.watchDropped.Add(sub.Dropped()) }()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case we, ok := <-sub.C:
			if !ok {
				return
			}
			if err := enc.Encode(we); err != nil {
				return
			}
			tn.m.watchEvents.Add(1)
			fl.Flush()
		}
	}
}

// handleMetrics serves the Prometheus text exposition: the cluster's
// MetricsSnapshot plus per-tenant rollups. Unauthenticated, like a
// conventional scrape endpoint.
func (g *Gateway) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.writeMetrics(w)
}
