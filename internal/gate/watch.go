package gate

import (
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/cluster"
)

// WatchEvent is one cluster lifecycle event as delivered to a tenant:
// the JSON object streamed (newline-delimited) by GET /v1/watch and
// the decoded form of a binary gopEvents row. Port-scoped events
// (register, deregister, migrate) carry the tenant-local port and are
// delivered only to the owning tenant; infrastructure events (crash,
// restore, proc-down, proc-up, epoch) are broadcast to every tenant —
// a kill -9'd node-shard process shows up on every watcher as a
// proc-down with the node range it served.
type WatchEvent struct {
	// Seq is the hub-wide sequence number; gaps on a single watch
	// stream mean events were dropped (slow consumer) or scoped to
	// other tenants.
	Seq uint64 `json:"seq"`
	// Type is the event kind: register, deregister, migrate, crash,
	// restore, proc-down, proc-up or epoch.
	Type string `json:"type"`
	// Port is the tenant-local port for port-scoped events.
	Port string `json:"port,omitempty"`
	// Node is the node involved (server's node, or the crashed/restored
	// node).
	Node int64 `json:"node"`
	// Lo and Hi delimit the node range [Lo, Hi) of a proc-down/proc-up
	// event.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Epoch is the new epoch number of an epoch event.
	Epoch uint64 `json:"epoch"`
	// UnixNanos is the hub's publish timestamp.
	UnixNanos int64 `json:"unix_nanos"`
}

// stamped is an event in the hub's ring: the raw cluster event (ports
// still folded) plus its sequence number and timestamp.
type stamped struct {
	ev  cluster.Event
	seq uint64
	at  int64
}

// Hub fans cluster lifecycle events out to watch subscribers and keeps
// a bounded replay ring for polling clients. Install Publish as the
// backing cluster's Options.OnEvent. Publishing never blocks: a
// subscriber that stops draining its channel loses events (counted on
// the subscription) rather than stalling the cluster's hot path.
type Hub struct {
	mu     sync.Mutex
	ring   []stamped
	seq    uint64
	subs   map[*Sub]struct{}
	closed bool
}

// DefaultRing is the replay-ring capacity NewHub uses when given a
// non-positive size.
const DefaultRing = 1024

// NewHub builds a hub with a replay ring of the given capacity
// (DefaultRing if size <= 0).
func NewHub(size int) *Hub {
	if size <= 0 {
		size = DefaultRing
	}
	return &Hub{
		ring: make([]stamped, 0, size),
		subs: make(map[*Sub]struct{}),
	}
}

// Publish stamps and distributes one cluster event. It is safe for
// concurrent use and never blocks on slow subscribers; install it as
// cluster Options.OnEvent.
func (h *Hub) Publish(ev cluster.Event) {
	now := time.Now().UnixNano()
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.seq++
	st := stamped{ev: ev, seq: h.seq, at: now}
	if len(h.ring) < cap(h.ring) {
		h.ring = append(h.ring, st)
	} else {
		h.ring[int(h.seq-1)%cap(h.ring)] = st
	}
	for s := range h.subs {
		we, ok := eventFor(s.tenant, st)
		if !ok {
			continue
		}
		select {
		case s.C <- we:
		default:
			s.dropped.Add(1)
		}
	}
}

// Seq returns the sequence number of the most recently published
// event (0 before the first).
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// Subscribe opens a watch subscription scoped to tenantID with a
// delivery buffer of buf events (minimum 1). The caller must drain
// Sub.C; events arriving while the buffer is full are dropped and
// counted. Close the subscription when done.
func (h *Hub) Subscribe(tenantID string, buf int) *Sub {
	if buf < 1 {
		buf = 1
	}
	s := &Sub{C: make(chan WatchEvent, buf), tenant: tenantID, hub: h}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		close(s.C)
		s.done = true
		return s
	}
	h.subs[s] = struct{}{}
	return s
}

// EventsSince returns the ring's events with sequence numbers greater
// than after that are visible to tenantID (at most max; 0 means all),
// plus the hub's current sequence number. A client that polls with
// the returned seq as its next after never sees an event twice; a
// client that falls more than a ring behind silently misses the
// overwritten span.
func (h *Hub) EventsSince(tenantID string, after uint64, max int) ([]WatchEvent, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []WatchEvent
	n := len(h.ring)
	// The ring is circular once full; oldest entry is at seq h.seq-n+1.
	for i := 0; i < n; i++ {
		var st stamped
		if n < cap(h.ring) {
			st = h.ring[i]
		} else {
			st = h.ring[int(h.seq-uint64(n)+uint64(i))%cap(h.ring)]
		}
		if st.seq <= after {
			continue
		}
		if we, ok := eventFor(tenantID, st); ok {
			out = append(out, we)
			if max > 0 && len(out) >= max {
				break
			}
		}
	}
	return out, h.seq
}

// close shuts the hub: subscriber channels are closed and further
// publishes are dropped.
func (h *Hub) close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		if !s.done {
			close(s.C)
			s.done = true
		}
		delete(h.subs, s)
	}
}

// eventFor scopes one stamped event to a tenant: port-scoped events
// are delivered only to the owning tenant with the namespace prefix
// stripped; infrastructure events are broadcast.
func eventFor(tenantID string, st stamped) (WatchEvent, bool) {
	we := WatchEvent{
		Seq:       st.seq,
		Type:      st.ev.Type.String(),
		Node:      int64(st.ev.Node),
		Lo:        st.ev.Lo,
		Hi:        st.ev.Hi,
		Epoch:     st.ev.Epoch,
		UnixNanos: st.at,
	}
	switch st.ev.Type {
	case cluster.EvRegister, cluster.EvDeregister, cluster.EvMigrate:
		port, ok := unfoldPort(tenantID, st.ev.Port)
		if !ok {
			return WatchEvent{}, false
		}
		we.Port = string(port)
	}
	return we, true
}

// Sub is one live watch subscription. Read events from C; the channel
// closes when the subscription or the hub closes.
type Sub struct {
	// C delivers the tenant-scoped event stream.
	C chan WatchEvent

	tenant  string
	dropped atomic.Int64
	hub     *Hub
	done    bool // guarded by hub.mu
}

// Dropped returns how many events were lost because the subscriber's
// buffer was full.
func (s *Sub) Dropped() int64 { return s.dropped.Load() }

// Close tears the subscription down and closes C.
func (s *Sub) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.done {
		return
	}
	delete(h.subs, s)
	close(s.C)
	s.done = true
}
