package gate

import (
	"sync"
	"sync/atomic"
	"time"
)

// quota enforces one tenant's admission policy: a token-bucket request
// rate plus an in-flight concurrency cap. Both are shed-on-exceed
// (never queue): when a tenant is over quota the edge answers 429 /
// gsShed immediately, so one tenant's burst costs itself latency and
// nobody else capacity.
type quota struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; 0 = unlimited
	burst  float64 // bucket depth
	tokens float64
	last   time.Time

	maxInflight int64 // 0 = unlimited
	inflight    atomic.Int64
}

// configure sets the quota from a TenantConfig's values; zero rate or
// zero maxInflight disable the respective limit.
func (q *quota) configure(rate, burst float64, maxInflight int) {
	q.rate = rate
	if burst <= 0 {
		burst = rate
	}
	if burst < 1 {
		burst = 1
	}
	q.burst = burst
	q.tokens = burst
	q.last = time.Now()
	q.maxInflight = int64(maxInflight)
}

// allow charges n requests against the rate bucket, refilling by
// elapsed wall time first. It never blocks.
func (q *quota) allow(n int) bool {
	if q.rate <= 0 {
		return true
	}
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	q.tokens += now.Sub(q.last).Seconds() * q.rate
	q.last = now
	if q.tokens > q.burst {
		q.tokens = q.burst
	}
	if q.tokens < float64(n) {
		return false
	}
	q.tokens -= float64(n)
	return true
}

// enter admits one request into the in-flight gate; a false return
// means the concurrency cap is hit and the request must be shed.
func (q *quota) enter() bool {
	if q.maxInflight <= 0 {
		q.inflight.Add(1)
		return true
	}
	if q.inflight.Add(1) > q.maxInflight {
		q.inflight.Add(-1)
		return false
	}
	return true
}

// leave exits the in-flight gate (paired with a successful enter).
func (q *quota) leave() { q.inflight.Add(-1) }
