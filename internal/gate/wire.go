package gate

import (
	"errors"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
)

// The gateway's binary protocol rides the same internal/netwire
// framing as the node protocol but in a disjoint opcode range, so a
// client pointed at the wrong port fails with a bad-request instead of
// silently half-working. Every request body begins with a
// length-prefixed bearer token — the netwire server is stateless per
// request, and per-request authentication is what the per-tenant
// quota needs anyway.
//
// Body layouts (all integers uvarint, all strings length-prefixed):
//
//	hello        req [token]                                  resp [n][transport name][hub seq]
//	register     req [token][port][node]                      resp [id]
//	deregister   req [token][id]                              resp (empty)
//	locate       req [token][client][port]                    resp entry
//	locate-batch req [token][client][k] k×[port]              resp [k] k×([st] entry?|msg?)
//	events       req [token][after][max]                      resp [seq][k] k×event
//	stats        req [token]                                  resp [passes][locates][errors][not-found][posts][shed]
//
//	entry = [port][addr][server id][time]
//	event = [seq][type][port][node][lo][hi][epoch][unix nanos]
//
// Non-OK statuses carry the error message as the raw body.

// Gate protocol opcodes (disjoint from the node protocol's 1..11).
const (
	// GopHello authenticates and returns cluster shape: node count,
	// backing transport name, and the watch hub's current sequence.
	GopHello byte = 0x21 + iota
	// GopRegister announces a server on a tenant-local port.
	GopRegister
	// GopDeregister tombstones a registration by gateway id.
	GopDeregister
	// GopLocate resolves one tenant-local port from a client node.
	GopLocate
	// GopLocateBatch resolves many ports from one client node in a
	// single round trip.
	GopLocateBatch
	// GopEvents polls the watch hub for tenant-scoped events after a
	// sequence number.
	GopEvents
	// GopStats returns the backing cluster's headline counters
	// (passes first — it serves the remote Transport.Passes).
	GopStats
)

// Gate protocol response statuses.
const (
	// GsOK is success.
	GsOK byte = iota
	// GsNotFound is a rendezvous miss (locate) or unknown registration
	// id (deregister).
	GsNotFound
	// GsDenied is an unknown bearer token.
	GsDenied
	// GsShed is a tenant-quota rejection — retry later, the answer
	// would not have been wrong, the tenant is over budget.
	GsShed
	// GsBadRequest is a malformed body or an unknown opcode.
	GsBadRequest
	// GsError is any other failure; the body holds the message.
	GsError
)

// WireHandler returns the netwire handler serving the gate binary
// protocol; pass it to netwire.NewServer on the gateway's wire
// listener.
func (g *Gateway) WireHandler() netwire.Handler {
	return func(op byte, req []byte, resp []byte) (byte, []byte) {
		d := netwire.NewDec(req)
		tok := d.String()
		if d.Err() != nil {
			return GsBadRequest, append(resp, "bad token field"...)
		}
		tn, err := g.auth(tok)
		if err != nil {
			return GsDenied, append(resp, "unknown token"...)
		}
		switch op {
		case GopHello:
			resp = netwire.AppendUvarint(resp, uint64(g.c.Transport().N()))
			resp = netwire.AppendString(resp, g.c.Transport().Name())
			resp = netwire.AppendUvarint(resp, g.hub.Seq())
			return GsOK, resp
		case GopRegister:
			port := d.String()
			node := d.Uvarint()
			if d.Err() != nil {
				return GsBadRequest, append(resp, "bad register body"...)
			}
			id, err := g.register(tn, core.Port(port), graph.NodeID(node))
			if err != nil {
				return wireErr(err, resp)
			}
			return GsOK, netwire.AppendUvarint(resp, id)
		case GopDeregister:
			id := d.Uvarint()
			if d.Err() != nil {
				return GsBadRequest, append(resp, "bad deregister body"...)
			}
			if err := g.deregister(tn, id); err != nil {
				return wireErr(err, resp)
			}
			return GsOK, resp
		case GopLocate:
			client := d.Uvarint()
			port := d.String()
			if d.Err() != nil {
				return GsBadRequest, append(resp, "bad locate body"...)
			}
			e, err := g.locate(tn, graph.NodeID(client), core.Port(port))
			if err != nil {
				return wireErr(err, resp)
			}
			return GsOK, appendWireEntry(resp, e)
		case GopLocateBatch:
			client := d.Uvarint()
			k := d.Uvarint()
			if d.Err() != nil || k == 0 || k > 1<<20 {
				return GsBadRequest, append(resp, "bad locate-batch body"...)
			}
			reqs := make([]cluster.LocateReq, 0, k)
			for i := uint64(0); i < k; i++ {
				reqs = append(reqs, cluster.LocateReq{Client: graph.NodeID(client), Port: core.Port(d.String())})
			}
			if d.Err() != nil {
				return GsBadRequest, append(resp, "bad locate-batch body"...)
			}
			res := make([]cluster.LocateRes, len(reqs))
			if err := g.locateBatch(tn, reqs, res); err != nil {
				return wireErr(err, resp)
			}
			resp = netwire.AppendUvarint(resp, k)
			for _, rr := range res {
				switch {
				case rr.Err == nil:
					resp = append(resp, GsOK)
					resp = appendWireEntry(resp, rr.Entry)
				case errors.Is(rr.Err, core.ErrNotFound):
					resp = append(resp, GsNotFound)
				default:
					resp = append(resp, GsError)
					resp = netwire.AppendString(resp, rr.Err.Error())
				}
			}
			return GsOK, resp
		case GopEvents:
			after := d.Uvarint()
			max := d.Uvarint()
			if d.Err() != nil {
				return GsBadRequest, append(resp, "bad events body"...)
			}
			evs, seq := g.hub.EventsSince(tn.id, after, int(max))
			tn.m.watchEvents.Add(int64(len(evs)))
			resp = netwire.AppendUvarint(resp, seq)
			resp = netwire.AppendUvarint(resp, uint64(len(evs)))
			for _, we := range evs {
				resp = netwire.AppendUvarint(resp, we.Seq)
				resp = netwire.AppendString(resp, we.Type)
				resp = netwire.AppendString(resp, we.Port)
				resp = netwire.AppendUvarint(resp, uint64(we.Node))
				resp = netwire.AppendUvarint(resp, uint64(we.Lo))
				resp = netwire.AppendUvarint(resp, uint64(we.Hi))
				resp = netwire.AppendUvarint(resp, we.Epoch)
				resp = netwire.AppendUvarint(resp, uint64(we.UnixNanos))
			}
			return GsOK, resp
		case GopStats:
			s := g.c.Metrics()
			resp = netwire.AppendUvarint(resp, uint64(s.Passes))
			resp = netwire.AppendUvarint(resp, uint64(s.Locates))
			resp = netwire.AppendUvarint(resp, uint64(s.Errors))
			resp = netwire.AppendUvarint(resp, uint64(s.NotFound))
			resp = netwire.AppendUvarint(resp, uint64(s.Posts))
			resp = netwire.AppendUvarint(resp, uint64(s.Shed))
			return GsOK, resp
		default:
			return GsBadRequest, append(resp, "unknown gate opcode"...)
		}
	}
}

// wireErr maps a gateway error onto (status, body).
func wireErr(err error, resp []byte) (byte, []byte) {
	switch {
	case errors.Is(err, core.ErrNotFound), errors.Is(err, ErrUnknownReg):
		return GsNotFound, resp
	case errors.Is(err, ErrShed):
		return GsShed, resp
	case errors.Is(err, ErrDenied):
		return GsDenied, resp
	default:
		return GsError, append(resp, err.Error()...)
	}
}

// appendWireEntry encodes a located entry (tenant-local port already
// restored).
func appendWireEntry(b []byte, e core.Entry) []byte {
	b = netwire.AppendString(b, string(e.Port))
	b = netwire.AppendUvarint(b, uint64(e.Addr))
	b = netwire.AppendUvarint(b, e.ServerID)
	b = netwire.AppendUvarint(b, e.Time)
	return b
}

// decodeWireEntry decodes appendWireEntry's form.
func decodeWireEntry(d *netwire.Dec) core.Entry {
	return core.Entry{
		Port:     core.Port(d.String()),
		Addr:     graph.NodeID(d.Uvarint()),
		ServerID: d.Uvarint(),
		Time:     d.Uvarint(),
		Active:   true,
	}
}
