package gate

import (
	"encoding/json"
	"fmt"
	"os"
)

// TenantConfig declares one tenant of the gateway: its namespace id,
// the bearer tokens that authenticate as it, and its quotas. The zero
// quota values mean unlimited, so a single-tenant dev gateway is just
// {ID, Tokens} with everything else defaulted.
type TenantConfig struct {
	// ID is the tenant's namespace: folded into every port key this
	// tenant registers or locates, so two tenants can both own a port
	// named "printer" without ever colliding below the edge. Lowercase
	// letters, digits, '-' and '_' only.
	ID string `json:"id"`
	// Tokens are the bearer tokens that authenticate as this tenant
	// (HTTP "Authorization: Bearer <token>" or the token field of every
	// binary-API request). Each token belongs to exactly one tenant.
	Tokens []string `json:"tokens"`
	// RatePerSec caps admitted requests per second via a token bucket
	// (a locate-batch of k charges k). Zero means unlimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth for RatePerSec; zero defaults to
	// max(1, RatePerSec) so a fresh tenant can spend one second of
	// quota at once.
	Burst float64 `json:"burst,omitempty"`
	// MaxInflight caps concurrently executing requests for the tenant;
	// zero means unlimited.
	MaxInflight int `json:"max_inflight,omitempty"`
}

// validate rejects configs that would break namespace folding or
// auth.
func (tc TenantConfig) validate() error {
	if tc.ID == "" {
		return fmt.Errorf("gate: tenant with empty id")
	}
	for _, r := range tc.ID {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("gate: tenant id %q: only [a-z0-9_-] allowed", tc.ID)
		}
	}
	if len(tc.Tokens) == 0 {
		return fmt.Errorf("gate: tenant %q has no tokens", tc.ID)
	}
	for _, tok := range tc.Tokens {
		if tok == "" {
			return fmt.Errorf("gate: tenant %q has an empty token", tc.ID)
		}
	}
	if tc.RatePerSec < 0 || tc.Burst < 0 || tc.MaxInflight < 0 {
		return fmt.Errorf("gate: tenant %q has a negative quota", tc.ID)
	}
	return nil
}

// LoadTenants reads a tenant table from a JSON file: either a bare
// array of TenantConfig or an object {"tenants": [...]}. See
// docs/OPERATIONS.md for the format and quota-tuning guidance.
func LoadTenants(path string) ([]TenantConfig, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTenants(raw)
}

// ParseTenants decodes a tenant table from JSON bytes (bare array or
// {"tenants": [...]} wrapper) and validates every entry.
func ParseTenants(raw []byte) ([]TenantConfig, error) {
	var list []TenantConfig
	if err := json.Unmarshal(raw, &list); err != nil {
		var wrapped struct {
			Tenants []TenantConfig `json:"tenants"`
		}
		if err2 := json.Unmarshal(raw, &wrapped); err2 != nil {
			return nil, fmt.Errorf("gate: tenants file: %w", err)
		}
		list = wrapped.Tenants
	}
	if len(list) == 0 {
		return nil, fmt.Errorf("gate: tenants file declares no tenants")
	}
	for _, tc := range list {
		if err := tc.validate(); err != nil {
			return nil, err
		}
	}
	return list, nil
}

// DevTenant returns a single-tenant table for development: tenant
// "dev" authenticated by token, no quotas.
func DevTenant(token string) []TenantConfig {
	return []TenantConfig{{ID: "dev", Tokens: []string{token}}}
}
