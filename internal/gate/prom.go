package gate

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"matchmake/internal/cluster"
)

// Prometheus text exposition (version 0.0.4), rendered with nothing
// but fmt: the format is three line shapes (# HELP, # TYPE, sample),
// which is not worth a client library. The same helpers serve the
// gateway's /metrics (cluster snapshot + per-tenant rollups) and
// mmnode's /metrics (per-opcode counters), so every process in a
// deployment scrapes uniformly.

// promMeta emits the HELP/TYPE header for one metric.
func promMeta(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promVal emits one unlabeled sample.
func promVal(w io.Writer, name string, v float64) {
	fmt.Fprintf(w, "%s %g\n", name, v)
}

// promLabeled emits one sample with a single label.
func promLabeled(w io.Writer, name, label, lv string, v float64) {
	fmt.Fprintf(w, "%s{%s=%q} %g\n", name, label, lv, v)
}

// promSimple emits header and unlabeled sample in one go.
func promSimple(w io.Writer, name, typ, help string, v float64) {
	promMeta(w, name, typ, help)
	promVal(w, name, v)
}

// boolGauge renders a bool as 0/1.
func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// WriteClusterMetrics renders a cluster metrics snapshot in Prometheus
// text form under the mm_cluster_* namespace. Counters are cumulative
// since the cluster's last ResetMetrics (the gateway never resets, so
// they behave as conventional counters).
func WriteClusterMetrics(w io.Writer, s cluster.MetricsSnapshot) {
	promSimple(w, "mm_cluster_locates_total", "counter", "Completed locate calls, including failures.", float64(s.Locates))
	promSimple(w, "mm_cluster_errors_total", "counter", "Failed locate calls.", float64(s.Errors))
	promSimple(w, "mm_cluster_not_found_total", "counter", "Locate failures that were rendezvous misses.", float64(s.NotFound))
	promSimple(w, "mm_cluster_coalesced_total", "counter", "Locates served by another caller's in-flight request.", float64(s.Coalesced))
	promSimple(w, "mm_cluster_posts_total", "counter", "Server registrations posted.", float64(s.Posts))
	promSimple(w, "mm_cluster_shed_total", "counter", "Submissions rejected by cluster overload control.", float64(s.Shed))
	promSimple(w, "mm_cluster_hint_hits_total", "counter", "Locates answered by a probe-confirmed address hint.", float64(s.HintHits))
	promSimple(w, "mm_cluster_hint_stale_total", "counter", "Hints skipped on a generation mismatch.", float64(s.HintStale))
	promSimple(w, "mm_cluster_hint_probe_fails_total", "counter", "Hint probes that found the cached address gone.", float64(s.HintProbeFails))
	promSimple(w, "mm_cluster_availability", "gauge", "Fraction of serviceable locates the rendezvous machinery answered.", s.Availability)
	promSimple(w, "mm_cluster_replica_fallthroughs_total", "counter", "Locates resolved only by a replica family deeper than the first.", float64(s.ReplicaFallthroughs))
	promSimple(w, "mm_cluster_passes_total", "counter", "Transport message passes (the paper's cost unit).", float64(s.Passes))
	promSimple(w, "mm_cluster_passes_per_locate", "gauge", "Message passes amortized over locates in the window.", s.PassesPerLocate)
	promSimple(w, "mm_cluster_qps", "gauge", "Locates per second over the measurement window.", s.QPS)
	promSimple(w, "mm_cluster_locate_p50_seconds", "gauge", "Median locate latency (sampled).", s.P50/1e9)
	promSimple(w, "mm_cluster_locate_p99_seconds", "gauge", "99th-percentile locate latency (sampled).", s.P99/1e9)
	promSimple(w, "mm_cluster_locate_max_seconds", "gauge", "Maximum sampled locate latency.", float64(s.Max)/1e9)
	promSimple(w, "mm_cluster_elastic", "gauge", "Whether the transport runs epoch-versioned elastic membership.", boolGauge(s.Elastic))
	if s.Elastic {
		promSimple(w, "mm_cluster_epoch", "gauge", "Serving epoch sequence number.", float64(s.Epoch))
		promSimple(w, "mm_cluster_resizing", "gauge", "Whether a dual-epoch migration is draining.", boolGauge(s.Resizing))
		promSimple(w, "mm_cluster_migrated_posts_total", "counter", "Postings moved by elastic resizes.", float64(s.MigratedPosts))
		promSimple(w, "mm_cluster_dual_epoch_locates_total", "counter", "Locates resolved by the retiring epoch during resizes.", float64(s.DualEpochLocates))
	}
}

// writeMetrics renders the gateway's full scrape: cluster snapshot,
// gateway-level counters, then per-tenant rollups (sorted by tenant id
// for deterministic output).
func (g *Gateway) writeMetrics(w io.Writer) {
	WriteClusterMetrics(w, g.c.Metrics())

	promSimple(w, "mm_gate_uptime_seconds", "gauge", "Seconds since the gateway started.", time.Since(g.start).Seconds())
	promSimple(w, "mm_gate_denied_total", "counter", "Requests rejected for an unknown or missing token.", float64(g.denied.Load()))
	g.regMu.Lock()
	live := len(g.regs)
	g.regMu.Unlock()
	promSimple(w, "mm_gate_registrations", "gauge", "Live registrations held by the gateway.", float64(live))
	promSimple(w, "mm_gate_tenants", "gauge", "Configured tenants.", float64(len(g.tenants)))

	ids := make([]string, 0, len(g.tenants))
	for id := range g.tenants {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	type col struct {
		name, typ, help string
		val             func(*tenant) float64
	}
	cols := []col{
		{"mm_gate_tenant_requests_total", "counter", "Admitted API requests (a locate-batch of k counts k).", func(t *tenant) float64 { return float64(t.m.requests.Load()) }},
		{"mm_gate_tenant_locates_total", "counter", "Locates requested by the tenant.", func(t *tenant) float64 { return float64(t.m.locates.Load()) }},
		{"mm_gate_tenant_locate_errors_total", "counter", "Tenant locates that failed (mostly not-found).", func(t *tenant) float64 { return float64(t.m.locateErrs.Load()) }},
		{"mm_gate_tenant_registers_total", "counter", "Registrations made by the tenant.", func(t *tenant) float64 { return float64(t.m.registers.Load()) }},
		{"mm_gate_tenant_deregisters_total", "counter", "Deregistrations made by the tenant.", func(t *tenant) float64 { return float64(t.m.deregisters.Load()) }},
		{"mm_gate_tenant_shed_total", "counter", "Requests shed by the tenant's quota.", func(t *tenant) float64 { return float64(t.m.shed.Load()) }},
		{"mm_gate_tenant_watch_events_total", "counter", "Watch events delivered to the tenant.", func(t *tenant) float64 { return float64(t.m.watchEvents.Load()) }},
		{"mm_gate_tenant_watch_dropped_total", "counter", "Watch events lost to slow tenant subscribers.", func(t *tenant) float64 { return float64(t.m.watchDropped.Load()) }},
		{"mm_gate_tenant_watchers", "gauge", "Live watch subscriptions held by the tenant.", func(t *tenant) float64 { return float64(t.m.watchers.Load()) }},
	}
	for _, c := range cols {
		promMeta(w, c.name, c.typ, c.help)
		for _, id := range ids {
			promLabeled(w, c.name, "tenant", id, c.val(g.tenants[id]))
		}
	}
}

// NodeMetricsHandler serves a node-shard worker's counters in
// Prometheus text form: per-opcode request counts and the node range
// the process owns. Mount it on mmnode's -metrics listener.
func NodeMetricsHandler(srv *cluster.NodeServer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		ops := srv.OpCounts()
		names := make([]string, 0, len(ops))
		for name := range ops {
			names = append(names, name)
		}
		sort.Strings(names)
		promMeta(w, "mm_node_ops_total", "counter", "Requests handled, by node-protocol opcode.")
		for _, name := range names {
			promLabeled(w, "mm_node_ops_total", "op", name, float64(ops[name]))
		}
		lo, hi, n := srv.Range()
		promSimple(w, "mm_node_range_lo", "gauge", "First node (inclusive) this process serves.", float64(lo))
		promSimple(w, "mm_node_range_hi", "gauge", "Last node (exclusive) this process serves.", float64(hi))
		promSimple(w, "mm_node_cluster_nodes", "gauge", "Total nodes in the cluster this process is part of.", float64(n))
	})
}
