package gate

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// TestMain re-execs the test binary as a node-server worker when
// MM_GATE_NODE is set — the same trick nettransport_test.go uses to
// get real OS processes, here so the watch test can kill -9 a node
// shard under a live gateway.
func TestMain(m *testing.M) {
	if os.Getenv("MM_GATE_NODE") != "" {
		runTestNodeWorker()
		return
	}
	os.Exit(m.Run())
}

func runTestNodeWorker() {
	atoi := func(k string) int {
		v, err := strconv.Atoi(os.Getenv(k))
		if err != nil {
			fmt.Fprintf(os.Stderr, "worker: bad %s: %v\n", k, err)
			os.Exit(2)
		}
		return v
	}
	n, lo, hi := atoi("MM_GATE_N"), atoi("MM_GATE_LO"), atoi("MM_GATE_HI")
	if err := cluster.RunNodeWorker(n, lo, hi, "127.0.0.1:0", os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "worker:", err)
		os.Exit(2)
	}
}

// spawnNetCluster boots a procs-process loopback node cluster.
func spawnNetCluster(t *testing.T, n, procs int) ([]string, []*exec.Cmd) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrs := make([]string, procs)
	cmds := make([]*exec.Cmd, procs)
	for i := 0; i < procs; i++ {
		lo, hi := cluster.PartitionRange(n, procs, i)
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MM_GATE_NODE=1",
			fmt.Sprintf("MM_GATE_N=%d", n),
			fmt.Sprintf("MM_GATE_LO=%d", lo),
			fmt.Sprintf("MM_GATE_HI=%d", hi),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		sc := bufio.NewScanner(out)
		if !sc.Scan() {
			t.Fatalf("worker %d: no ADDR line (err=%v)", i, sc.Err())
		}
		line := sc.Text()
		if !strings.HasPrefix(line, "ADDR ") {
			t.Fatalf("worker %d: unexpected line %q", i, line)
		}
		addrs[i] = strings.TrimPrefix(line, "ADDR ")
		cmds[i] = cmd
		go func() {
			for sc.Scan() {
			}
		}()
	}
	return addrs, cmds
}

// testGateway stands a gateway up over tr with both listeners live.
type testGateway struct {
	gw   *Gateway
	c    *cluster.Cluster
	http *httptest.Server
	wire string // wire listener address
}

func newTestGateway(t *testing.T, tr cluster.Transport, tenants []TenantConfig) *testGateway {
	t.Helper()
	hub := NewHub(0)
	c := cluster.New(tr, cluster.Options{OnEvent: hub.Publish})
	gw, err := New(c, hub, tenants)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(gw.HTTPHandler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ws := netwire.NewServer(ln, gw.WireHandler())
	go ws.Serve()
	t.Cleanup(func() {
		hs.Close()
		ws.Close()
		gw.Close()
		c.Close()
	})
	return &testGateway{gw: gw, c: c, http: hs, wire: ln.Addr().String()}
}

func memTransport(t *testing.T, n int) *cluster.MemTransport {
	t.Helper()
	tr, err := cluster.NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// doJSON issues one JSON request against the gateway's HTTP API.
func doJSON(t *testing.T, hs *httptest.Server, token, method, path string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = strings.NewReader(string(b))
	}
	req, err := http.NewRequest(method, hs.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// TestGateEquivalence pins the tentpole claim: the same workload
// through the service edge (binary wire transport AND HTTP locates)
// returns the same answers as a direct mem cluster over an identical
// topology/strategy.
func TestGateEquivalence(t *testing.T) {
	const n, ports = 36, 12

	// Direct reference cluster.
	ref := cluster.New(memTransport(t, n), cluster.Options{})
	defer ref.Close()

	// Gateway over an identical backing, driven through the wire edge.
	tg := newTestGateway(t, memTransport(t, n), DevTenant("tok"))
	gt, err := DialTransport(tg.wire, "tok", 2)
	if err != nil {
		t.Fatal(err)
	}
	via := cluster.New(gt, cluster.Options{})
	defer via.Close()

	if gt.N() != n {
		t.Fatalf("hello N = %d, want %d", gt.N(), n)
	}

	regs := make([]cluster.Registration, ports)
	for p := range regs {
		regs[p] = cluster.Registration{Port: core.Port(fmt.Sprintf("svc-%03d", p)), Node: graph.NodeID((p * 7) % n)}
	}
	if _, err := ref.PostBatch(regs); err != nil {
		t.Fatal(err)
	}
	if _, err := via.PostBatch(regs); err != nil {
		t.Fatal(err)
	}

	for client := 0; client < n; client++ {
		for p := range regs {
			want, werr := ref.Locate(graph.NodeID(client), regs[p].Port)
			got, gerr := via.Locate(graph.NodeID(client), regs[p].Port)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("client %d port %s: err %v vs %v", client, regs[p].Port, werr, gerr)
			}
			if werr == nil && (got.Addr != want.Addr || got.Port != want.Port) {
				t.Fatalf("client %d port %s: got (%s@%d), want (%s@%d)",
					client, regs[p].Port, got.Port, got.Addr, want.Port, want.Addr)
			}
		}
	}

	// Batched locates through the edge agree too.
	reqs := make([]cluster.LocateReq, ports)
	res := make([]cluster.LocateRes, ports)
	for p := range regs {
		reqs[p] = cluster.LocateReq{Client: 5, Port: regs[p].Port}
	}
	if err := via.LocateBatch(reqs, res); err != nil {
		t.Fatal(err)
	}
	for p := range res {
		if res[p].Err != nil {
			t.Fatalf("batch port %s: %v", regs[p].Port, res[p].Err)
		}
		want, _ := ref.Locate(5, regs[p].Port)
		if res[p].Entry.Addr != want.Addr {
			t.Fatalf("batch port %s: got @%d want @%d", regs[p].Port, res[p].Entry.Addr, want.Addr)
		}
	}

	// And the HTTP path returns the same answer as the wire path.
	for p := 0; p < 3; p++ {
		var e EntryJSON
		code := doJSON(t, tg.http, "tok", "GET", fmt.Sprintf("/v1/locate?port=%s&client=4", regs[p].Port), nil, &e)
		if code != http.StatusOK {
			t.Fatalf("http locate: status %d", code)
		}
		want, _ := ref.Locate(4, regs[p].Port)
		if graph.NodeID(e.Addr) != want.Addr || e.Port != string(regs[p].Port) {
			t.Fatalf("http locate %s: got %s@%d want %s@%d", regs[p].Port, e.Port, e.Addr, want.Port, want.Addr)
		}
	}

	// A locate for a port nobody registered is a 404 / not-found, not
	// an invented answer.
	if code := doJSON(t, tg.http, "tok", "GET", "/v1/locate?port=nope&client=0", nil, nil); code != http.StatusNotFound {
		t.Fatalf("missing port: status %d, want 404", code)
	}
	if _, err := via.Locate(0, "nope"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("missing port over wire: %v, want ErrNotFound", err)
	}
}

// TestTenantIsolation pins the namespace fold: one tenant's
// registrations are structurally invisible to another, and both can
// own the same port name without collision.
func TestTenantIsolation(t *testing.T) {
	tg := newTestGateway(t, memTransport(t, 16), []TenantConfig{
		{ID: "alpha", Tokens: []string{"tok-a"}},
		{ID: "beta", Tokens: []string{"tok-b"}},
	})

	var reg RegisterResponse
	if code := doJSON(t, tg.http, "tok-a", "POST", "/v1/register", RegisterRequest{Port: "printer", Node: 3}, &reg); code != http.StatusOK {
		t.Fatalf("alpha register: status %d", code)
	}

	// Beta cannot see alpha's port…
	if code := doJSON(t, tg.http, "tok-b", "GET", "/v1/locate?port=printer&client=1", nil, nil); code != http.StatusNotFound {
		t.Fatalf("beta sees alpha's port: status %d, want 404", code)
	}
	// …and registering the same name lands in beta's own namespace.
	var regB RegisterResponse
	if code := doJSON(t, tg.http, "tok-b", "POST", "/v1/register", RegisterRequest{Port: "printer", Node: 9}, &regB); code != http.StatusOK {
		t.Fatalf("beta register: status %d", code)
	}
	var ea, eb EntryJSON
	doJSON(t, tg.http, "tok-a", "GET", "/v1/locate?port=printer&client=1", nil, &ea)
	doJSON(t, tg.http, "tok-b", "GET", "/v1/locate?port=printer&client=1", nil, &eb)
	if ea.Addr != 3 || eb.Addr != 9 {
		t.Fatalf("namespace collision: alpha@%d (want 3), beta@%d (want 9)", ea.Addr, eb.Addr)
	}

	// A tenant cannot deregister another tenant's registration id.
	if code := doJSON(t, tg.http, "tok-b", "POST", "/v1/deregister", DeregisterRequest{ID: reg.ID}, nil); code != http.StatusNotFound {
		t.Fatalf("cross-tenant deregister: status %d, want 404", code)
	}
	// An unknown token is denied outright.
	if code := doJSON(t, tg.http, "tok-x", "GET", "/v1/locate?port=printer&client=1", nil, nil); code != http.StatusUnauthorized {
		t.Fatalf("unknown token: status %d, want 401", code)
	}
}

// TestQuotaShed pins the overload contract: a tenant over its rate
// quota gets 429 / GsShed — never a wrong answer — and other tenants
// are unaffected.
func TestQuotaShed(t *testing.T) {
	tg := newTestGateway(t, memTransport(t, 16), []TenantConfig{
		{ID: "small", Tokens: []string{"tok-s"}, RatePerSec: 1, Burst: 5},
		{ID: "big", Tokens: []string{"tok-b"}},
	})
	if code := doJSON(t, tg.http, "tok-s", "POST", "/v1/register", RegisterRequest{Port: "p", Node: 2}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}
	if code := doJSON(t, tg.http, "tok-b", "POST", "/v1/register", RegisterRequest{Port: "p", Node: 4}, nil); code != http.StatusOK {
		t.Fatalf("register: status %d", code)
	}

	var ok, shed, other int
	for i := 0; i < 40; i++ {
		var e EntryJSON
		switch code := doJSON(t, tg.http, "tok-s", "GET", "/v1/locate?port=p&client=1", nil, &e); code {
		case http.StatusOK:
			ok++
			if e.Addr != 2 {
				t.Fatalf("quota pressure produced a wrong answer: @%d, want @2", e.Addr)
			}
		case http.StatusTooManyRequests:
			shed++
		default:
			other++
		}
	}
	if shed == 0 {
		t.Fatalf("burst of 40 over rate 1/s never shed (ok=%d other=%d)", ok, other)
	}
	if other != 0 {
		t.Fatalf("unexpected statuses during quota pressure: %d", other)
	}
	// The unthrottled tenant still gets answers while the small one sheds.
	var e EntryJSON
	if code := doJSON(t, tg.http, "tok-b", "GET", "/v1/locate?port=p&client=1", nil, &e); code != http.StatusOK || e.Addr != 4 {
		t.Fatalf("big tenant impacted by small tenant's shed: status %d addr %d", code, e.Addr)
	}
	// Per-tenant rollup recorded the shed.
	if got := tg.gw.tenants["small"].m.shed.Load(); got == 0 {
		t.Fatal("tenant shed counter is zero")
	}

	// The same contract over the wire protocol.
	gt, err := DialTransport(tg.wire, "tok-s", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer gt.Close()
	var wireShed bool
	for i := 0; i < 20 && !wireShed; i++ {
		_, err := gt.Locate(1, "p")
		wireShed = errors.Is(err, ErrShed)
	}
	if !wireShed {
		t.Fatal("wire locates never saw GsShed under quota pressure")
	}
}

// TestInflightCap pins the concurrency side of the quota: with
// MaxInflight=1 a held watch stream makes a second one shed.
func TestInflightCap(t *testing.T) {
	tg := newTestGateway(t, memTransport(t, 16), []TenantConfig{
		{ID: "one", Tokens: []string{"tok"}, MaxInflight: 1},
	})
	req, _ := http.NewRequest("GET", tg.http.URL+"/v1/watch", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err := tg.http.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first watch: status %d", resp.StatusCode)
	}
	// The held stream occupies the tenant's only slot.
	if code := doJSON(t, tg.http, "tok", "GET", "/v1/locate?port=p&client=1", nil, nil); code != http.StatusTooManyRequests {
		t.Fatalf("second request with the slot held: status %d, want 429", code)
	}
}

// TestWatchEvents pins the watch hub end to end over the mem backing:
// register/deregister events stream over HTTP ndjson with tenant-local
// ports, crash/restore events broadcast, and the binary events poll
// sees the same sequence.
func TestWatchEvents(t *testing.T) {
	tg := newTestGateway(t, memTransport(t, 16), []TenantConfig{
		{ID: "alpha", Tokens: []string{"tok-a"}},
		{ID: "beta", Tokens: []string{"tok-b"}},
	})

	req, _ := http.NewRequest("GET", tg.http.URL+"/v1/watch", nil)
	req.Header.Set("Authorization", "Bearer tok-a")
	resp, err := tg.http.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	next := func() WatchEvent {
		t.Helper()
		lines := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lines <- sc.Text()
			}
			close(lines)
		}()
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatalf("watch stream ended: %v", sc.Err())
			}
			var we WatchEvent
			if err := json.Unmarshal([]byte(line), &we); err != nil {
				t.Fatalf("bad watch line %q: %v", line, err)
			}
			return we
		case <-time.After(5 * time.Second):
			t.Fatal("no watch event within 5s")
		}
		panic("unreachable")
	}

	var reg RegisterResponse
	doJSON(t, tg.http, "tok-a", "POST", "/v1/register", RegisterRequest{Port: "printer", Node: 3}, &reg)
	if we := next(); we.Type != "register" || we.Port != "printer" || we.Node != 3 {
		t.Fatalf("got %+v, want register printer@3", we)
	}

	// Beta's registration is invisible to alpha's stream; alpha's next
	// event is its own deregister.
	doJSON(t, tg.http, "tok-b", "POST", "/v1/register", RegisterRequest{Port: "scanner", Node: 5}, nil)
	doJSON(t, tg.http, "tok-a", "POST", "/v1/deregister", DeregisterRequest{ID: reg.ID}, nil)
	if we := next(); we.Type != "deregister" || we.Port != "printer" {
		t.Fatalf("got %+v, want deregister printer", we)
	}

	// Crash/restore broadcast to every tenant.
	if err := tg.c.Transport().Crash(7); err != nil {
		t.Fatal(err)
	}
	if we := next(); we.Type != "crash" || we.Node != 7 {
		t.Fatalf("got %+v, want crash node 7", we)
	}

	// The binary events poll replays the same history, still
	// tenant-scoped (no scanner event for alpha).
	gt, err := DialTransport(tg.wire, "tok-a", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer gt.Close()
	evs, seq, err := gt.Events(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 || len(evs) < 3 {
		t.Fatalf("events poll: seq=%d n=%d", seq, len(evs))
	}
	var kinds []string
	for _, we := range evs {
		if we.Port == "scanner" {
			t.Fatalf("beta's event leaked into alpha's poll: %+v", we)
		}
		kinds = append(kinds, we.Type)
	}
	want := []string{"register", "deregister", "crash"}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("event kinds %v, want %v", kinds, want)
	}
}

// TestWatchDeliversProcDownAfterKill9 is the acceptance bullet: a
// gateway fronting a real multi-process socket cluster, one node-shard
// process killed with SIGKILL, and the tenant's Watch stream carries
// the proc-down event for the dead range.
func TestWatchDeliversProcDownAfterKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	const n, procs = 12, 3
	addrs, cmds := spawnNetCluster(t, n, procs)
	g := topology.Complete(n)
	tr, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(n), addrs, cluster.NetOptions{CallTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	tg := newTestGateway(t, tr, DevTenant("tok"))

	gt, err := DialTransport(tg.wire, "tok", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer gt.Close()
	for p := 0; p < 4; p++ {
		if _, err := gt.Register(core.Port(fmt.Sprintf("svc-%d", p)), graph.NodeID(p)); err != nil {
			t.Fatal(err)
		}
	}

	req, _ := http.NewRequest("GET", tg.http.URL+"/v1/watch", nil)
	req.Header.Set("Authorization", "Bearer tok")
	resp, err := tg.http.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: status %d", resp.StatusCode)
	}

	// kill -9 the last node-shard process, then keep the gateway busy
	// with locates so the transport's down-detection trips.
	victim := procs - 1
	lo, hi := cluster.PartitionRange(n, procs, victim)
	if err := cmds[victim].Process.Kill(); err != nil {
		t.Fatal(err)
	}
	stopLoad := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopLoad:
				return
			default:
			}
			for p := 0; p < 4; p++ {
				_, _ = gt.Locate(graph.NodeID(p%n), core.Port(fmt.Sprintf("svc-%d", p)))
			}
		}
	}()
	defer close(stopLoad)

	type lineOrErr struct {
		we  WatchEvent
		err error
	}
	events := make(chan lineOrErr, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			var we WatchEvent
			if err := json.Unmarshal(sc.Bytes(), &we); err != nil {
				events <- lineOrErr{err: err}
				return
			}
			events <- lineOrErr{we: we}
		}
		events <- lineOrErr{err: fmt.Errorf("stream ended: %v", sc.Err())}
	}()

	deadline := time.After(15 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.err != nil {
				t.Fatal(ev.err)
			}
			if ev.we.Type == "proc-down" {
				if ev.we.Lo != lo || ev.we.Hi != hi {
					t.Fatalf("proc-down range [%d,%d), want [%d,%d)", ev.we.Lo, ev.we.Hi, lo, hi)
				}
				return
			}
		case <-deadline:
			t.Fatal("no proc-down watch event within 15s of kill -9")
		}
	}
}

// TestTenantConfigParsing covers the tenants-file format and its
// rejection cases.
func TestTenantConfigParsing(t *testing.T) {
	good := `{"tenants":[{"id":"a","tokens":["t1"],"rate_per_sec":100,"max_inflight":4},{"id":"b","tokens":["t2","t3"]}]}`
	ts, err := ParseTenants([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].ID != "a" || ts[0].RatePerSec != 100 {
		t.Fatalf("parsed %+v", ts)
	}
	bare := `[{"id":"a","tokens":["t"]}]`
	if _, err := ParseTenants([]byte(bare)); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		`[]`,
		`[{"id":"","tokens":["t"]}]`,
		`[{"id":"A","tokens":["t"]}]`,
		`[{"id":"a/b","tokens":["t"]}]`,
		`[{"id":"a","tokens":[]}]`,
		`[{"id":"a","tokens":["t"],"rate_per_sec":-1}]`,
	} {
		if _, err := ParseTenants([]byte(bad)); err == nil {
			t.Fatalf("ParseTenants(%s) accepted", bad)
		}
	}
	// Duplicate tokens across tenants are rejected at gateway build.
	c := cluster.New(memTransport(t, 4), cluster.Options{})
	defer c.Close()
	if _, err := New(c, nil, []TenantConfig{
		{ID: "a", Tokens: []string{"t"}},
		{ID: "b", Tokens: []string{"t"}},
	}); err == nil {
		t.Fatal("duplicate token accepted")
	}
}

// TestMetricsEndpoint checks the Prometheus exposition contains the
// cluster and per-tenant families.
func TestMetricsEndpoint(t *testing.T) {
	tg := newTestGateway(t, memTransport(t, 16), []TenantConfig{
		{ID: "alpha", Tokens: []string{"tok-a"}},
	})
	doJSON(t, tg.http, "tok-a", "POST", "/v1/register", RegisterRequest{Port: "p", Node: 2}, nil)
	doJSON(t, tg.http, "tok-a", "GET", "/v1/locate?port=p&client=1", nil, nil)

	resp, err := tg.http.Client().Get(tg.http.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE mm_cluster_locates_total counter",
		"mm_cluster_locates_total 1",
		`mm_gate_tenant_locates_total{tenant="alpha"} 1`,
		`mm_gate_tenant_registers_total{tenant="alpha"} 1`,
		"mm_gate_registrations 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q\n%s", want, text)
		}
	}
}

// TestPortFolding pins the namespace codec.
func TestPortFolding(t *testing.T) {
	f := foldPort("alpha", "printer")
	if f != "alpha/printer" {
		t.Fatalf("folded %q", f)
	}
	p, ok := unfoldPort("alpha", f)
	if !ok || p != "printer" {
		t.Fatalf("unfold: %q %v", p, ok)
	}
	if _, ok := unfoldPort("beta", f); ok {
		t.Fatal("beta unfolded alpha's port")
	}
}
