package gate

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// The gateway is the one surface that reads bytes a tenant controls —
// the JSON bodies of the HTTP API and the netwire frames of the binary
// protocol. Both fuzz targets below hold the same line FuzzWireDecode
// holds for the node protocol: malformed input must come back as an
// error status, never a panic, and never as a success that leaks
// another tenant's state.

// fuzzGateway builds a minimal single-tenant gateway over a mem
// cluster with one posted service, shared by every fuzz iteration.
func fuzzGateway(f *testing.F) *Gateway {
	f.Helper()
	tr, err := cluster.NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		f.Fatal(err)
	}
	c := cluster.New(tr, cluster.Options{})
	gw, err := New(c, NewHub(0), DevTenant("tok"))
	if err != nil {
		f.Fatal(err)
	}
	if _, err := gw.register(gw.byToken["tok"], core.Port("printer"), graph.NodeID(3)); err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		gw.Close()
		c.Close()
	})
	return gw
}

// FuzzGateWire drives arbitrary (opcode, body) pairs through the gate
// binary protocol handler. Whatever the bytes, the handler must return
// one of the defined statuses — a malformed body is GsBadRequest (or
// GsDenied when the token field fails auth), never a panic and never
// GsOK for input that failed to decode.
func FuzzGateWire(f *testing.F) {
	gw := fuzzGateway(f)
	handler := gw.WireHandler()

	tok := netwire.AppendString(nil, "tok")
	f.Add(GopHello, append([]byte(nil), tok...))
	reg := netwire.AppendString(tok, "scanner")
	reg = netwire.AppendUvarint(reg, 5)
	f.Add(GopRegister, reg)
	loc := netwire.AppendUvarint(append([]byte(nil), tok...), 7)
	loc = netwire.AppendString(loc, "printer")
	f.Add(GopLocate, loc)
	batch := netwire.AppendUvarint(append([]byte(nil), tok...), 7)
	batch = netwire.AppendUvarint(batch, 2)
	batch = netwire.AppendString(batch, "printer")
	batch = netwire.AppendString(batch, "missing")
	f.Add(GopLocateBatch, batch)
	// A token-length prefix pointing past the buffer.
	f.Add(GopHello, netwire.AppendUvarint(nil, 1<<40))
	// A huge locate-batch count with no ports behind it.
	f.Add(GopLocateBatch, netwire.AppendUvarint(append([]byte(nil), tok...), 1<<30))
	f.Add(byte(0), []byte{})
	f.Add(GopStats, []byte{0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		st, resp := handler(op, body, nil)
		switch st {
		case GsOK, GsNotFound, GsDenied, GsShed, GsBadRequest, GsError:
		default:
			t.Fatalf("op %#x: undefined status %d", op, st)
		}
		if st != GsOK {
			return
		}
		// A GsOK answer implies the request decoded — which requires at
		// least an intact token field naming the one real tenant.
		d := netwire.NewDec(body)
		if tok := d.String(); d.Err() != nil || tok != "tok" {
			t.Fatalf("op %#x: GsOK for body without a valid token (resp %d bytes)", op, len(resp))
		}
	})
}

// FuzzGateHTTP drives arbitrary bodies at the authenticated JSON
// endpoints. Every response must carry a defined status code; a body
// the decoder rejects must answer 400, not panic — the gateway's JSON
// surface is reachable by any tenant process, however broken.
func FuzzGateHTTP(f *testing.F) {
	gw := fuzzGateway(f)
	handler := gw.HTTPHandler()
	paths := []string{"/v1/register", "/v1/deregister", "/v1/locate", "/v1/locate-batch"}

	f.Add(uint8(0), `{"port":"scanner","node":4}`)
	f.Add(uint8(1), `{"id":1}`)
	f.Add(uint8(2), `{"port":"printer","client":7}`)
	f.Add(uint8(3), `{"client":7,"ports":["printer","missing"]}`)
	f.Add(uint8(2), `{"port":"printer","client":7,"typo":true}`)
	f.Add(uint8(3), `{"client":7,"ports":[]}`)
	f.Add(uint8(0), `{"port":`)
	f.Add(uint8(1), `[]`)
	f.Add(uint8(2), "\x00\xff not json")
	f.Add(uint8(3), `{"client":-9999999999,"ports":["x"]}`)

	f.Fuzz(func(t *testing.T, which uint8, body string) {
		path := paths[int(which)%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
		req.Header.Set("Authorization", "Bearer tok")
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnauthorized,
			http.StatusNotFound, http.StatusTooManyRequests:
		default:
			t.Fatalf("POST %s with %q: undefined status %d", path, body, rec.Code)
		}
		// Every response body — success or error — is well-formed JSON.
		var v any
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatalf("POST %s: status %d with non-JSON body %q", path, rec.Code, rec.Body.String())
		}
	})
}
