package gate

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
)

// ClientTransport is the gate binary protocol's client side, shaped as
// a cluster.Transport: point mmload (or any cluster.Cluster) at a
// running mmgate and the whole locate machinery — batching,
// coalescing, metrics — runs unchanged over the service edge. Message
// passes are the backing cluster's (fetched via GopStats), so the
// paper's cost accounting survives the extra hop; operations the edge
// does not expose (probes, crash injection) fail with ErrUnsupported.
type ClientTransport struct {
	pool  *netwire.Pool
	token string
	n     int

	// passes0 is the local ResetPasses baseline against the remote
	// cumulative counter; lastPasses is the last value successfully
	// fetched, served if a later fetch fails.
	passes0    atomic.Int64
	lastPasses atomic.Int64

	wire netwire.Counters
}

// DialTransport connects to a gateway's wire listener, authenticates
// with token via a hello, and returns the transport. conns is the
// number of connection stripes (<= 0 picks netwire.NewPool's striped
// default, max(2, GOMAXPROCS)).
func DialTransport(addr, token string, conns int) (*ClientTransport, error) {
	pool := netwire.NewPool(addr, conns)
	pool.CallTimeout = 10 * time.Second
	t := &ClientTransport{pool: pool, token: token}
	pool.UseCounters(&t.wire)
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	st, body, err := t.call(GopHello, netwire.AppendString((*buf)[:0], token), nil)
	if err != nil {
		pool.Close()
		return nil, fmt.Errorf("gate: hello %s: %w", addr, err)
	}
	if st != GsOK {
		pool.Close()
		return nil, fmt.Errorf("gate: hello %s: %s", addr, statusErr(st, body))
	}
	d := netwire.NewDec(body)
	t.n = int(d.Uvarint())
	_ = d.String() // backing transport name (informational)
	d.Uvarint()    // hub sequence
	if d.Err() != nil || t.n <= 0 {
		pool.Close()
		return nil, fmt.Errorf("gate: hello %s: bad response", addr)
	}
	return t, nil
}

// call issues one wire request, handling buffer pooling for the
// response.
func (t *ClientTransport) call(op byte, req []byte, resp []byte) (byte, []byte, error) {
	return t.pool.Call(op, req, resp)
}

// statusErr converts a non-OK wire status (and its message body) to an
// error.
func statusErr(st byte, body []byte) error {
	switch st {
	case GsNotFound:
		return fmt.Errorf("gate: %w", core.ErrNotFound)
	case GsDenied:
		return ErrDenied
	case GsShed:
		return ErrShed
	case GsBadRequest:
		return fmt.Errorf("gate: bad request: %s", body)
	default:
		return fmt.Errorf("gate: remote error: %s", body)
	}
}

// Name identifies the transport in reports.
func (t *ClientTransport) Name() string { return "gate" }

// N returns the backing cluster's node count (learned at hello).
func (t *ClientTransport) N() int { return t.n }

// Register announces a server through the gateway and returns a ref
// whose Deregister round-trips; Repost and Migrate are not exposed by
// the edge and fail with ErrUnsupported.
func (t *ClientTransport) Register(port core.Port, node graph.NodeID) (cluster.ServerRef, error) {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendString((*buf)[:0], t.token)
	req = netwire.AppendString(req, string(port))
	req = netwire.AppendUvarint(req, uint64(node))
	st, body, err := t.call(GopRegister, req, nil)
	if err != nil {
		return nil, err
	}
	if st != GsOK {
		return nil, statusErr(st, body)
	}
	d := netwire.NewDec(body)
	id := d.Uvarint()
	if d.Err() != nil {
		return nil, fmt.Errorf("gate: bad register response")
	}
	return &clientRef{t: t, id: id, port: port, node: node}, nil
}

// clientRef is a registration made over the wire; the gateway holds
// the real ServerRef, this holds its id.
type clientRef struct {
	t    *ClientTransport
	id   uint64
	port core.Port
	node graph.NodeID
	gone atomic.Bool
}

// Port returns the registered (tenant-local) port.
func (r *clientRef) Port() core.Port { return r.port }

// Node returns the node the server registered at.
func (r *clientRef) Node() graph.NodeID { return r.node }

// Repost is not exposed by the service edge.
func (r *clientRef) Repost() error { return ErrUnsupported }

// Migrate is not exposed by the service edge.
func (r *clientRef) Migrate(to graph.NodeID) error { return ErrUnsupported }

// Deregister tombstones the registration through the gateway.
func (r *clientRef) Deregister() error {
	if r.gone.Swap(true) {
		return core.ErrServerGone
	}
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendString((*buf)[:0], r.t.token)
	req = netwire.AppendUvarint(req, r.id)
	st, body, err := r.t.call(GopDeregister, req, nil)
	if err != nil {
		return err
	}
	if st != GsOK {
		return statusErr(st, body)
	}
	return nil
}

// Locate resolves port from client through the gateway.
func (t *ClientTransport) Locate(client graph.NodeID, port core.Port) (core.Entry, error) {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendString((*buf)[:0], t.token)
	req = netwire.AppendUvarint(req, uint64(client))
	req = netwire.AppendString(req, string(port))
	out := netwire.GetBuf()
	defer netwire.PutBuf(out)
	st, body, err := t.call(GopLocate, req, (*out)[:0])
	*out = body
	if err != nil {
		return core.Entry{}, err
	}
	if st != GsOK {
		return core.Entry{}, statusErr(st, body)
	}
	d := netwire.NewDec(body)
	e := decodeWireEntry(&d)
	if d.Err() != nil {
		return core.Entry{}, fmt.Errorf("gate: bad locate response")
	}
	return e, nil
}

// LocateBatch resolves the whole batch in one wire round trip. All
// requests must share one client node per wire call; mixed-client
// batches are split.
func (t *ClientTransport) LocateBatch(reqs []cluster.LocateReq, res []cluster.LocateRes) {
	for lo := 0; lo < len(reqs); {
		hi := lo + 1
		for hi < len(reqs) && reqs[hi].Client == reqs[lo].Client {
			hi++
		}
		t.locateBatchOne(reqs[lo:hi], res[lo:hi])
		lo = hi
	}
}

// locateBatchOne issues one same-client span as a single GopLocateBatch.
func (t *ClientTransport) locateBatchOne(reqs []cluster.LocateReq, res []cluster.LocateRes) {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendString((*buf)[:0], t.token)
	req = netwire.AppendUvarint(req, uint64(reqs[0].Client))
	req = netwire.AppendUvarint(req, uint64(len(reqs)))
	for _, r := range reqs {
		req = netwire.AppendString(req, string(r.Port))
	}
	out := netwire.GetBuf()
	defer netwire.PutBuf(out)
	st, body, err := t.call(GopLocateBatch, req, (*out)[:0])
	*out = body
	if err == nil && st != GsOK {
		err = statusErr(st, body)
	}
	if err != nil {
		for i := range res {
			res[i] = cluster.LocateRes{Err: err}
		}
		return
	}
	d := netwire.NewDec(body)
	k := d.Uvarint()
	if int(k) != len(reqs) {
		err := fmt.Errorf("gate: bad locate-batch response")
		for i := range res {
			res[i] = cluster.LocateRes{Err: err}
		}
		return
	}
	for i := range res {
		switch st := d.Byte(); st {
		case GsOK:
			res[i] = cluster.LocateRes{Entry: decodeWireEntry(&d)}
		case GsNotFound:
			res[i] = cluster.LocateRes{Err: fmt.Errorf("gate: %w", core.ErrNotFound)}
		default:
			res[i] = cluster.LocateRes{Err: fmt.Errorf("gate: remote error: %s", d.String())}
		}
		if d.Err() != nil {
			res[i] = cluster.LocateRes{Err: fmt.Errorf("gate: bad locate-batch response")}
		}
	}
}

// Probe is not exposed by the service edge (the gateway's own cluster
// runs hint probing when configured).
func (t *ClientTransport) Probe(client graph.NodeID, e core.Entry) (core.Entry, error) {
	return core.Entry{}, ErrUnsupported
}

// Gen always returns 0: the edge exposes no invalidation index, so a
// local hint cache over this transport would never validate (run the
// gateway-side cluster with hints instead).
func (t *ClientTransport) Gen(port core.Port) uint64 { return 0 }

// LocateAll is not exposed by the service edge.
func (t *ClientTransport) LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error) {
	return nil, ErrUnsupported
}

// PostBatch registers the batch serially through the gateway (the
// edge has no bulk-post opcode; the backing cluster still charges the
// paper's per-registration passes).
func (t *ClientTransport) PostBatch(regs []cluster.Registration) ([]cluster.ServerRef, error) {
	refs := make([]cluster.ServerRef, len(regs))
	for i, rg := range regs {
		ref, err := t.Register(rg.Port, rg.Node)
		if err != nil {
			return nil, err
		}
		refs[i] = ref
	}
	return refs, nil
}

// Crash is not exposed by the service edge.
func (t *ClientTransport) Crash(node graph.NodeID) error { return ErrUnsupported }

// Restore is not exposed by the service edge.
func (t *ClientTransport) Restore(node graph.NodeID) error { return ErrUnsupported }

// Passes returns the backing cluster's message passes since the last
// ResetPasses, fetched via GopStats (the last fetched value if the
// gateway is unreachable).
func (t *ClientTransport) Passes() int64 {
	if p, err := t.remotePasses(); err == nil {
		t.lastPasses.Store(p)
		return p - t.passes0.Load()
	}
	return t.lastPasses.Load() - t.passes0.Load()
}

// ResetPasses rebases the local window on the remote cumulative
// counter.
func (t *ClientTransport) ResetPasses() {
	if p, err := t.remotePasses(); err == nil {
		t.lastPasses.Store(p)
		t.passes0.Store(p)
		return
	}
	t.passes0.Store(t.lastPasses.Load())
}

// WireStats returns the transport's cumulative wire-level traffic
// totals against the gateway (frames and bytes, both directions) —
// the edge-hop cost load tools report as frames/locate and
// bytes/locate.
func (t *ClientTransport) WireStats() netwire.Stats { return t.wire.Snapshot() }

// remotePasses fetches the backing cluster's cumulative pass counter.
func (t *ClientTransport) remotePasses() (int64, error) {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	st, body, err := t.call(GopStats, netwire.AppendString((*buf)[:0], t.token), nil)
	if err != nil {
		return 0, err
	}
	if st != GsOK {
		return 0, statusErr(st, body)
	}
	d := netwire.NewDec(body)
	p := d.Uvarint()
	if d.Err() != nil {
		return 0, errors.New("gate: bad stats response")
	}
	return int64(p), nil
}

// Events polls the gateway's watch hub for tenant-scoped events after
// the given sequence number (at most max; 0 means all buffered),
// returning the events and the hub's current sequence.
func (t *ClientTransport) Events(after uint64, max int) ([]WatchEvent, uint64, error) {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendString((*buf)[:0], t.token)
	req = netwire.AppendUvarint(req, after)
	req = netwire.AppendUvarint(req, uint64(max))
	st, body, err := t.call(GopEvents, req, nil)
	if err != nil {
		return nil, 0, err
	}
	if st != GsOK {
		return nil, 0, statusErr(st, body)
	}
	d := netwire.NewDec(body)
	seq := d.Uvarint()
	k := d.Uvarint()
	evs := make([]WatchEvent, 0, k)
	for i := uint64(0); i < k && d.Err() == nil; i++ {
		evs = append(evs, WatchEvent{
			Seq:       d.Uvarint(),
			Type:      d.String(),
			Port:      d.String(),
			Node:      int64(d.Uvarint()),
			Lo:        int(d.Uvarint()),
			Hi:        int(d.Uvarint()),
			Epoch:     d.Uvarint(),
			UnixNanos: int64(d.Uvarint()),
		})
	}
	if d.Err() != nil {
		return nil, 0, errors.New("gate: bad events response")
	}
	return evs, seq, nil
}

// Close closes the connection pool.
func (t *ClientTransport) Close() error { return t.pool.Close() }
