package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"matchmake/internal/sweep/loadrun"
	"matchmake/internal/sweep/procctl"
)

// Env records the toolchain a sweep ran under, so regenerated tables
// carry their provenance.
type Env struct {
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	CPUs      int    `json:"cpus"`
	// Command is the invocation that produced the results, for the
	// doc's reproducibility note.
	Command string `json:"command,omitempty"`
}

// HostEnv captures the running toolchain.
func HostEnv(command string) Env {
	return Env{
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Command:   command,
	}
}

// RunRecord is the per-run results file: the concrete scenario, the
// engine's typed result, the gate verdict, and the error if the run
// never completed.
type RunRecord struct {
	Scenario Scenario        `json:"scenario"`
	Result   *loadrun.Result `json:"result,omitempty"`
	Gate     *GateReport     `json:"gate,omitempty"`
	Err      string          `json:"error,omitempty"`
}

// IndexEntry is one run's summary line in the results index.
type IndexEntry struct {
	Name string `json:"name"`
	File string `json:"file"`
	// OK means the run completed and (when gating) every gate passed.
	OK              bool    `json:"ok"`
	Locates         int64   `json:"locates"`
	QPS             float64 `json:"qps"`
	PassesPerLocate float64 `json:"passes_per_locate"`
	Availability    float64 `json:"availability"`
	Forged          int64   `json:"forged"`
}

// Index is the sweep's results index (results/index.json): one entry
// per run plus the skip notes and the recording environment.
type Index struct {
	Env       Env          `json:"env"`
	Scenarios int          `json:"scenarios"`
	Passed    int          `json:"passed"`
	Failed    int          `json:"failed"`
	Skipped   []string     `json:"skipped,omitempty"`
	Runs      []IndexEntry `json:"runs"`
}

// Options configure one sweep execution.
type Options struct {
	// ResultsDir receives one <name>.json per run plus index.json.
	ResultsDir string
	// Gate applies the per-scenario invariants and makes Run fail when
	// any run breaks one.
	Gate bool
	// Addrs targets an external net cluster (compose, remote hosts)
	// instead of spawning node processes per net scenario; the matrix's
	// node count must match the external partition.
	Addrs []string
	// Procs is the node-process count for spawned net clusters
	// (default 3).
	Procs int
	// Env stamps the index; zero means HostEnv("").
	Env Env
	// Out receives progress lines (nil = discard).
	Out io.Writer
}

// Run expands the matrix and drives every scenario through the load
// engine, spawning a real node-process cluster per net scenario (the
// calling binary must have procctl.MaybeWorker at the top of main) or
// targeting opts.Addrs. Every run's record is written before Run
// returns; the error reports gate or run failures after the sweep has
// finished, never mid-flight.
func Run(m *Matrix, opts Options) (*Index, error) {
	runs, notes, err := m.Expand()
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("matrix expands to no scenarios")
	}
	SortScenarios(runs)
	out := opts.Out
	if out == nil {
		out = io.Discard
	}
	if opts.ResultsDir != "" {
		if err := os.MkdirAll(opts.ResultsDir, 0o755); err != nil {
			return nil, err
		}
	}
	env := opts.Env
	if env == (Env{}) {
		env = HostEnv("")
	}
	idx := &Index{Env: env, Scenarios: len(runs), Skipped: notes}
	for _, note := range notes {
		fmt.Fprintf(out, "mmsweep: %s\n", note)
	}
	var failures []string
	for i, s := range runs {
		rec := runOne(s, opts)
		entry := IndexEntry{Name: s.Name, File: s.Name + ".json"}
		if rec.Result != nil {
			entry.Locates = rec.Result.Metrics.Locates
			entry.QPS = rec.Result.Metrics.QPS
			entry.PassesPerLocate = rec.Result.Metrics.PassesPerLocate
			entry.Availability = rec.Result.Metrics.Availability
			entry.Forged = rec.Result.Forged
		}
		entry.OK = rec.Err == "" && (rec.Gate == nil || rec.Gate.Pass)
		if entry.OK {
			idx.Passed++
		} else {
			idx.Failed++
			failures = append(failures, s.Name+": "+failureDetail(rec))
		}
		idx.Runs = append(idx.Runs, entry)
		if opts.ResultsDir != "" {
			if err := writeJSON(filepath.Join(opts.ResultsDir, entry.File), rec); err != nil {
				return nil, err
			}
		}
		fmt.Fprintf(out, "mmsweep: [%d/%d] %s: %s\n", i+1, len(runs), s.Name, summarize(rec))
	}
	if opts.ResultsDir != "" {
		if err := writeJSON(filepath.Join(opts.ResultsDir, "index.json"), idx); err != nil {
			return nil, err
		}
	}
	if len(failures) > 0 && (opts.Gate || idx.Passed == 0) {
		return idx, fmt.Errorf("%d/%d scenarios failed:\n  %s", idx.Failed, idx.Scenarios, strings.Join(failures, "\n  "))
	}
	return idx, nil
}

// runOne executes one scenario, spawning and tearing down its node
// processes when needed.
func runOne(s Scenario, opts Options) *RunRecord {
	rec := &RunRecord{Scenario: s}
	cfg := s.Config()
	if cfg.Transport == "net" {
		if len(opts.Addrs) > 0 {
			cfg.Addrs = strings.Join(opts.Addrs, ",")
		} else {
			procs := s.Procs
			if procs == 0 {
				procs = opts.Procs
			}
			if procs == 0 {
				procs = 3
			}
			ps, err := procctl.Spawn(cfg.Nodes, procs)
			if err != nil {
				rec.Err = fmt.Sprintf("spawn cluster: %v", err)
				return rec
			}
			defer procctl.Teardown(ps, 10*time.Second)
			cfg.Addrs = strings.Join(procctl.Addrs(ps), ",")
		}
	}
	res, err := loadrun.Run(cfg, io.Discard)
	if err != nil {
		rec.Err = err.Error()
		return rec
	}
	rec.Result = res
	rec.Gate = Gates(s, res)
	return rec
}

// summarize renders one progress line for a finished run.
func summarize(rec *RunRecord) string {
	if rec.Err != "" {
		return "ERROR " + rec.Err
	}
	m := rec.Result.Metrics
	s := fmt.Sprintf("%d locates, %.0f/sec, %.2f passes/locate, availability=%.4f",
		m.Locates, m.QPS, m.PassesPerLocate, m.Availability)
	if rec.Scenario.ByzRate > 0 || rec.Scenario.VoteQuorum > 0 {
		s += fmt.Sprintf(", forged=%d", rec.Result.Forged)
	}
	if rec.Gate != nil {
		if rec.Gate.Pass {
			s += ", gates ok"
		} else {
			for _, c := range rec.Gate.Checks {
				if !c.Pass {
					s += fmt.Sprintf(", GATE FAIL %s (%s)", c.Name, c.Detail)
				}
			}
		}
	}
	return s
}

// failureDetail condenses why a run counts as failed.
func failureDetail(rec *RunRecord) string {
	if rec.Err != "" {
		return rec.Err
	}
	var bad []string
	for _, c := range rec.Gate.Checks {
		if !c.Pass {
			bad = append(bad, c.Name+" ("+c.Detail+")")
		}
	}
	return "gate: " + strings.Join(bad, ", ")
}

// ReadRecords loads every per-run record in a results directory, in
// index order when index.json is present (lexical otherwise).
func ReadRecords(dir string) ([]*RunRecord, error) {
	var files []string
	if idx, err := readIndex(dir); err == nil {
		for _, e := range idx.Runs {
			files = append(files, e.File)
		}
	} else {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		for _, e := range ents {
			if strings.HasSuffix(e.Name(), ".json") && e.Name() != "index.json" {
				files = append(files, e.Name())
			}
		}
	}
	recs := make([]*RunRecord, 0, len(files))
	for _, f := range files {
		b, err := os.ReadFile(filepath.Join(dir, f))
		if err != nil {
			return nil, err
		}
		var rec RunRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("%s: %w", f, err)
		}
		recs = append(recs, &rec)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("no run records in %s", dir)
	}
	return recs, nil
}

// ReadIndex loads a sweep's results index.
func ReadIndex(dir string) (*Index, error) { return readIndex(dir) }

func readIndex(dir string) (*Index, error) {
	b, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, err
	}
	var idx Index
	if err := json.Unmarshal(b, &idx); err != nil {
		return nil, fmt.Errorf("index.json: %w", err)
	}
	return &idx, nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
