package sweep

import (
	"testing"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/sweep/loadrun"
)

// healthyResult is a run that should pass every applicable gate.
func healthyResult() *loadrun.Result {
	return &loadrun.Result{
		Metrics: cluster.MetricsSnapshot{
			Locates:      10_000,
			Availability: 1,
		},
	}
}

func gateByName(t *testing.T, rep *GateReport, name string) GateCheck {
	t.Helper()
	for _, c := range rep.Checks {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no gate %q in %+v", name, rep.Checks)
	return GateCheck{}
}

func TestGatesHealthy(t *testing.T) {
	rep := Gates(Scenario{Replicas: 2, KillRate: 8}, healthyResult())
	if !rep.Pass {
		t.Fatalf("healthy run failed gates: %+v", rep.Checks)
	}
}

// TestGatesHardErrors checks NotFound is carved out of the error gate:
// rendezvous misses are an availability question, transport failures
// are always fatal.
func TestGatesHardErrors(t *testing.T) {
	res := healthyResult()
	res.Metrics.Errors = 5
	res.Metrics.NotFound = 5
	rep := Gates(Scenario{}, res)
	if c := gateByName(t, rep, "hard-errors"); !c.Pass {
		t.Fatalf("not-found-only errors must pass: %+v", c)
	}
	res.Metrics.Errors = 6
	rep = Gates(Scenario{}, res)
	if c := gateByName(t, rep, "hard-errors"); c.Pass {
		t.Fatal("hard error slipped through")
	}
	if rep.Pass {
		t.Fatal("report passed with a failing check")
	}
	// Kill and churn chaos crash callers mid-locate; those errors are
	// expected, so the gate stands down (availability covers them).
	rep = Gates(Scenario{Replicas: 2, KillRate: 2}, res)
	for _, c := range rep.Checks {
		if c.Name == "hard-errors" {
			t.Fatal("hard-errors gate applied under caller-crash chaos")
		}
	}
}

// TestGatesAvailability checks the storm bound applies only to
// replicated chaos runs.
func TestGatesAvailability(t *testing.T) {
	res := healthyResult()
	res.Metrics.Availability = 0.95
	rep := Gates(Scenario{Replicas: 2, KillRate: 8}, res)
	if c := gateByName(t, rep, "availability"); c.Pass {
		t.Fatal("0.95 at r=2 under kills must fail the storm bound")
	}
	// r=1 is expected to lose locates under kills: no availability gate.
	rep = Gates(Scenario{Replicas: 1, KillRate: 8}, res)
	for _, c := range rep.Checks {
		if c.Name == "availability" {
			t.Fatal("availability gate applied at r=1")
		}
	}
	// Detect-only voting (q=2 at r=2 against a liar) fails conflicted
	// ballots closed — the availability dent is the design, not a bug.
	rep = Gates(Scenario{Replicas: 2, VoteQuorum: 2, ByzRate: 2}, res)
	for _, c := range rep.Checks {
		if c.Name == "availability" {
			t.Fatal("availability gate applied to a detect-only quorum")
		}
	}
	// An outvoting quorum (r=3) must hold the bound even against liars.
	rep = Gates(Scenario{Replicas: 3, VoteQuorum: 3, ByzRate: 2}, res)
	if c := gateByName(t, rep, "availability"); c.Pass {
		t.Fatal("0.95 at r=3 with an outvoting quorum must fail")
	}
}

// TestGatesNotFound checks the no-chaos r≥2 zero-miss gate.
func TestGatesNotFound(t *testing.T) {
	res := healthyResult()
	res.Metrics.Errors = 3
	res.Metrics.NotFound = 3
	rep := Gates(Scenario{Replicas: 2}, res)
	if c := gateByName(t, rep, "not-found"); c.Pass {
		t.Fatal("misses with r=2 and no chaos must fail")
	}
	// Under chaos the availability gate replaces it.
	rep = Gates(Scenario{Replicas: 2, KillRate: 2}, res)
	for _, c := range rep.Checks {
		if c.Name == "not-found" {
			t.Fatal("not-found gate applied under chaos")
		}
	}
}

// TestGatesForged checks the 2f+1 gate: zero forged answers with a
// quorum of 3 at r≥3.
func TestGatesForged(t *testing.T) {
	res := healthyResult()
	res.Forged = 2
	rep := Gates(Scenario{Replicas: 3, VoteQuorum: 3, ByzRate: 2}, res)
	if c := gateByName(t, rep, "forged"); c.Pass {
		t.Fatal("forged answers at quorum 3 must fail")
	}
	// Quorum 2 at r=2 detects but cannot outvote: no forged gate.
	rep = Gates(Scenario{Replicas: 2, VoteQuorum: 2, ByzRate: 2}, res)
	for _, c := range rep.Checks {
		if c.Name == "forged" {
			t.Fatal("forged gate applied below the 2f+1 bound")
		}
	}
}

// TestGatesQuiescence checks corruption runs must drain within the
// round budget.
func TestGatesQuiescence(t *testing.T) {
	res := healthyResult()
	res.QuiesceRounds = 3
	res.QuiesceIn = time.Millisecond
	rep := Gates(Scenario{Replicas: 2, CorruptRate: 20}, res)
	if c := gateByName(t, rep, "quiescence"); !c.Pass {
		t.Fatalf("3 rounds must pass: %+v", c)
	}
	res.QuiesceRounds = 0
	rep = Gates(Scenario{Replicas: 2, CorruptRate: 20}, res)
	if c := gateByName(t, rep, "quiescence"); c.Pass {
		t.Fatal("no drain at all must fail")
	}
}

// TestGatesResize checks elastic runs must complete resizes cleanly.
func TestGatesResize(t *testing.T) {
	res := healthyResult()
	res.Resizes = 4
	rep := Gates(Scenario{ResizeEvery: Duration(100 * time.Millisecond)}, res)
	if c := gateByName(t, rep, "resizes"); !c.Pass {
		t.Fatalf("clean resizes must pass: %+v", c)
	}
	res.ResizeErr = "boom"
	rep = Gates(Scenario{ResizeEvery: Duration(100 * time.Millisecond)}, res)
	if c := gateByName(t, rep, "resizes"); c.Pass {
		t.Fatal("resize error must fail")
	}
}
