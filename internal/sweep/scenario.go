// Package sweep expands declarative scenario matrices into concrete
// load runs over real clusters, gates each run against per-scenario
// invariants, and regenerates the EXPERIMENTS.md measured tables from
// the recorded results — the repeatable-measurement harness behind
// cmd/mmsweep.
//
// A matrix file declares defaults, sweep dimensions (the cartesian
// product of every non-empty dimension list) and optional explicit
// scenarios; Expand turns it into named Scenario values, Run drives
// each through the internal/sweep/loadrun engine (spawning a real
// node-process cluster per net scenario via internal/sweep/procctl, or
// targeting an external cluster by address), and the per-run JSON plus
// an index land in a results directory that Tables and the CI
// sweep-smoke gate both consume.
package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"matchmake/internal/sweep/loadrun"
)

// Duration is a time.Duration that marshals to and from the "250ms" /
// "2s" strings humans write in matrix files.
type Duration time.Duration

// MarshalJSON renders the duration as its String form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string ("250ms") or a raw
// nanosecond count.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		dd, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("duration %q: %w", s, err)
		}
		*d = Duration(dd)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("duration %s: want a string like \"250ms\" or nanoseconds", b)
	}
	*d = Duration(n)
	return nil
}

// Scenario is one concrete run of the load engine: the cluster shape,
// the workload, and the fault model. Zero fields inherit the matrix
// defaults and then loadrun's own defaults.
type Scenario struct {
	// Name identifies the run (and its results file); Expand derives
	// one from the swept dimensions when empty.
	Name string `json:"name,omitempty"`

	// Transport is mem, sim or net; net scenarios run over real node
	// processes (spawned per run, or an external cluster via -addrs).
	Transport string `json:"transport,omitempty"`
	Topology  string `json:"topology,omitempty"`
	Strategy  string `json:"strategy,omitempty"`
	Nodes     int    `json:"nodes,omitempty"`
	Ports     int    `json:"ports,omitempty"`
	Workload  string `json:"workload,omitempty"`
	// Procs is the node-process count for spawned net clusters.
	Procs int `json:"procs,omitempty"`

	// Replicas, VoteQuorum, Liars configure replicated rendezvous and
	// answer voting; Hints and Batch the client-side accelerations.
	Replicas   int  `json:"replicas,omitempty"`
	VoteQuorum int  `json:"vote_quorum,omitempty"`
	Liars      int  `json:"liars,omitempty"`
	Hints      bool `json:"hints,omitempty"`
	Batch      int  `json:"batch,omitempty"`

	// The chaos dials: node crashes, adversarial state corruption,
	// answer forging, crash/re-register churn and elastic resizes.
	KillRate    float64  `json:"kill_rate,omitempty"`
	CorruptRate float64  `json:"corrupt_rate,omitempty"`
	ByzRate     float64  `json:"byzantine_rate,omitempty"`
	Churn       Duration `json:"churn,omitempty"`
	ResizeEvery Duration `json:"resize_interval,omitempty"`
	ResizeTo    int      `json:"resize_to,omitempty"`

	// Duration, Concurrency, Rate and Seed shape the measurement
	// window.
	Duration    Duration `json:"duration,omitempty"`
	Concurrency int      `json:"concurrency,omitempty"`
	Rate        int      `json:"rate,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
}

// Dims are the sweep dimensions: the expansion is the cartesian
// product of every non-empty list, merged over the matrix defaults.
type Dims struct {
	Transport   []string   `json:"transport,omitempty"`
	Topology    []string   `json:"topology,omitempty"`
	Strategy    []string   `json:"strategy,omitempty"`
	Nodes       []int      `json:"nodes,omitempty"`
	Replicas    []int      `json:"replicas,omitempty"`
	VoteQuorum  []int      `json:"vote_quorum,omitempty"`
	Hints       []bool     `json:"hints,omitempty"`
	Batch       []int      `json:"batch,omitempty"`
	KillRate    []float64  `json:"kill_rate,omitempty"`
	CorruptRate []float64  `json:"corrupt_rate,omitempty"`
	ByzRate     []float64  `json:"byzantine_rate,omitempty"`
	ResizeEvery []Duration `json:"resize_interval,omitempty"`
}

// Matrix is a declarative sweep: defaults applied to every run, the
// swept dimensions, and optional explicit extra scenarios (also merged
// over the defaults).
type Matrix struct {
	Defaults  Scenario   `json:"defaults"`
	Dims      Dims       `json:"dims"`
	Scenarios []Scenario `json:"scenarios,omitempty"`
}

// ReadMatrix loads and expands a matrix file.
func ReadMatrix(path string) (*Matrix, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Matrix
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("matrix %s: %w", path, err)
	}
	return &m, nil
}

// merge overlays s on base: every zero field of s inherits base's
// value.
func merge(base, s Scenario) Scenario {
	out := base
	if s.Name != "" {
		out.Name = s.Name
	}
	if s.Transport != "" {
		out.Transport = s.Transport
	}
	if s.Topology != "" {
		out.Topology = s.Topology
	}
	if s.Strategy != "" {
		out.Strategy = s.Strategy
	}
	if s.Nodes != 0 {
		out.Nodes = s.Nodes
	}
	if s.Ports != 0 {
		out.Ports = s.Ports
	}
	if s.Workload != "" {
		out.Workload = s.Workload
	}
	if s.Procs != 0 {
		out.Procs = s.Procs
	}
	if s.Replicas != 0 {
		out.Replicas = s.Replicas
	}
	if s.VoteQuorum != 0 {
		out.VoteQuorum = s.VoteQuorum
	}
	if s.Liars != 0 {
		out.Liars = s.Liars
	}
	if s.Hints {
		out.Hints = true
	}
	if s.Batch != 0 {
		out.Batch = s.Batch
	}
	if s.KillRate != 0 {
		out.KillRate = s.KillRate
	}
	if s.CorruptRate != 0 {
		out.CorruptRate = s.CorruptRate
	}
	if s.ByzRate != 0 {
		out.ByzRate = s.ByzRate
	}
	if s.Churn != 0 {
		out.Churn = s.Churn
	}
	if s.ResizeEvery != 0 {
		out.ResizeEvery = s.ResizeEvery
	}
	if s.ResizeTo != 0 {
		out.ResizeTo = s.ResizeTo
	}
	if s.Duration != 0 {
		out.Duration = s.Duration
	}
	if s.Concurrency != 0 {
		out.Concurrency = s.Concurrency
	}
	if s.Rate != 0 {
		out.Rate = s.Rate
	}
	if s.Seed != 0 {
		out.Seed = s.Seed
	}
	return out
}

// skipReason rejects inconsistent dimension combinations — the same
// exclusions loadrun validates, applied up front so a matrix sweep
// skips (and reports) them instead of failing mid-run.
func skipReason(s Scenario) string {
	switch {
	case s.VoteQuorum >= 2 && s.Replicas < 2:
		return "vote-quorum needs replicas ≥ 2"
	case s.VoteQuorum > s.Replicas:
		return fmt.Sprintf("vote-quorum %d wider than replicas %d", s.VoteQuorum, s.Replicas)
	case (s.ByzRate > 0 || s.VoteQuorum > 0) && s.ResizeEvery > 0:
		return "byzantine/vote-quorum and resize churn are mutually exclusive"
	case s.Transport == "net" && s.Nodes > 0 && s.Procs > s.Nodes:
		return fmt.Sprintf("procs %d > nodes %d", s.Procs, s.Nodes)
	}
	return ""
}

// Expand materializes the matrix: the cartesian product of every
// non-empty dimension list merged over the defaults, plus the explicit
// scenarios, each with a deterministic derived name. Inconsistent
// combinations are not silently dropped — the returned notes list one
// line per skip.
func (m *Matrix) Expand() (runs []Scenario, notes []string, err error) {
	type dim struct {
		n     int                      // cardinality (0 = unset)
		apply func(s *Scenario, i int) // set the i-th value
		label func(i int) string       // name fragment ("" = none)
	}
	d := m.Dims
	dims := []dim{
		{len(d.Transport), func(s *Scenario, i int) { s.Transport = d.Transport[i] },
			func(i int) string { return d.Transport[i] }},
		{len(d.Topology), func(s *Scenario, i int) { s.Topology = d.Topology[i] },
			func(i int) string { return d.Topology[i] }},
		{len(d.Strategy), func(s *Scenario, i int) { s.Strategy = d.Strategy[i] },
			func(i int) string { return d.Strategy[i] }},
		{len(d.Nodes), func(s *Scenario, i int) { s.Nodes = d.Nodes[i] },
			func(i int) string { return fmt.Sprintf("n%d", d.Nodes[i]) }},
		{len(d.Replicas), func(s *Scenario, i int) { s.Replicas = d.Replicas[i] },
			func(i int) string { return fmt.Sprintf("r%d", d.Replicas[i]) }},
		{len(d.VoteQuorum), func(s *Scenario, i int) { s.VoteQuorum = d.VoteQuorum[i] },
			func(i int) string { return fmt.Sprintf("q%d", d.VoteQuorum[i]) }},
		{len(d.Hints), func(s *Scenario, i int) { s.Hints = d.Hints[i] }, func(i int) string {
			if d.Hints[i] {
				return "hints"
			}
			return "nohints"
		}},
		{len(d.Batch), func(s *Scenario, i int) { s.Batch = d.Batch[i] }, func(i int) string {
			if d.Batch[i] == 0 {
				return "nobatch"
			}
			return fmt.Sprintf("batch%d", d.Batch[i])
		}},
		{len(d.KillRate), func(s *Scenario, i int) { s.KillRate = d.KillRate[i] }, func(i int) string {
			if d.KillRate[i] == 0 {
				return "nokill"
			}
			return fmt.Sprintf("kill%g", d.KillRate[i])
		}},
		{len(d.CorruptRate), func(s *Scenario, i int) { s.CorruptRate = d.CorruptRate[i] }, func(i int) string {
			if d.CorruptRate[i] == 0 {
				return "nocorrupt"
			}
			return fmt.Sprintf("corrupt%g", d.CorruptRate[i])
		}},
		{len(d.ByzRate), func(s *Scenario, i int) { s.ByzRate = d.ByzRate[i] }, func(i int) string {
			if d.ByzRate[i] == 0 {
				return "honest"
			}
			return fmt.Sprintf("byz%g", d.ByzRate[i])
		}},
		{len(d.ResizeEvery), func(s *Scenario, i int) { s.ResizeEvery = d.ResizeEvery[i] }, func(i int) string {
			if d.ResizeEvery[i] == 0 {
				return "noresize"
			}
			return "resize" + time.Duration(d.ResizeEvery[i]).String()
		}},
	}

	// The cartesian product, defaults-first so every dimension value
	// overlays the merged base.
	combos := []Scenario{m.Defaults}
	names := []string{""}
	for _, dm := range dims {
		if dm.n == 0 {
			continue
		}
		next := make([]Scenario, 0, len(combos)*dm.n)
		nextNames := make([]string, 0, len(combos)*dm.n)
		for ci, c := range combos {
			for i := 0; i < dm.n; i++ {
				s := c
				dm.apply(&s, i)
				next = append(next, s)
				name := names[ci]
				if l := dm.label(i); l != "" {
					if name != "" {
						name += "-"
					}
					name += l
				}
				nextNames = append(nextNames, name)
			}
		}
		combos, names = next, nextNames
	}
	// A matrix with no dims contributes no product runs — only the
	// explicit scenario list.
	if len(combos) == 1 && names[0] == "" {
		combos, names = nil, nil
	}
	for i, s := range combos {
		s.Name = names[i]
		if r := skipReason(s); r != "" {
			notes = append(notes, fmt.Sprintf("skip %s: %s", s.Name, r))
			continue
		}
		runs = append(runs, s)
	}
	for i, ex := range m.Scenarios {
		s := merge(m.Defaults, ex)
		if s.Name == "" {
			s.Name = fmt.Sprintf("scenario-%02d", i)
		}
		if r := skipReason(s); r != "" {
			notes = append(notes, fmt.Sprintf("skip %s: %s", s.Name, r))
			continue
		}
		runs = append(runs, s)
	}
	seen := make(map[string]bool, len(runs))
	for _, s := range runs {
		if seen[s.Name] {
			return nil, nil, fmt.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return runs, notes, nil
}

// Config translates the scenario into the load engine's Config,
// overlaying every set field on loadrun's defaults.
func (s Scenario) Config() loadrun.Config {
	cfg := loadrun.Defaults()
	if s.Transport != "" {
		cfg.Transport = s.Transport
	}
	if s.Topology != "" {
		cfg.Topo = s.Topology
	}
	if s.Strategy != "" {
		cfg.Strategy = s.Strategy
	}
	if s.Nodes != 0 {
		cfg.Nodes = s.Nodes
	}
	if s.Ports != 0 {
		cfg.Ports = s.Ports
	}
	if s.Workload != "" {
		cfg.Workload = s.Workload
	}
	if s.Replicas != 0 {
		cfg.Replicas = s.Replicas
	}
	cfg.VoteQuorum = s.VoteQuorum
	if s.Liars != 0 {
		cfg.Liars = s.Liars
	}
	cfg.Hints = s.Hints
	cfg.Batch = s.Batch
	cfg.KillRate = s.KillRate
	cfg.CorruptRate = s.CorruptRate
	cfg.ByzRate = s.ByzRate
	cfg.Churn = time.Duration(s.Churn)
	cfg.ResizeEvery = time.Duration(s.ResizeEvery)
	cfg.ResizeTo = s.ResizeTo
	if s.Duration != 0 {
		cfg.Duration = time.Duration(s.Duration)
	}
	if s.Concurrency != 0 {
		cfg.Concurrency = s.Concurrency
	}
	cfg.Rate = s.Rate
	if s.Seed != 0 {
		cfg.Seed = s.Seed
	}
	return cfg
}

// SortScenarios orders runs by name for deterministic results and
// tables.
func SortScenarios(runs []Scenario) {
	sort.Slice(runs, func(i, j int) bool { return runs[i].Name < runs[j].Name })
}
