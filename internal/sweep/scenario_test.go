package sweep

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestDurationJSON(t *testing.T) {
	b, err := json.Marshal(Duration(250 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"250ms"` {
		t.Fatalf("marshal = %s", b)
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"1.5s"`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 1500*time.Millisecond {
		t.Fatalf("string form = %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`250000000`), &d); err != nil {
		t.Fatal(err)
	}
	if time.Duration(d) != 250*time.Millisecond {
		t.Fatalf("ns form = %v", time.Duration(d))
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Fatal("want error for bad duration")
	}
}

// TestExpandCartesian checks the product cardinality, the derived
// names, and that defaults flow into every run.
func TestExpandCartesian(t *testing.T) {
	m := &Matrix{
		Defaults: Scenario{Nodes: 32, Ports: 8, Duration: Duration(time.Second), Seed: 7},
		Dims: Dims{
			Transport: []string{"mem", "net"},
			Replicas:  []int{1, 2},
			KillRate:  []float64{0, 8},
		},
	}
	runs, notes, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 0 {
		t.Fatalf("unexpected skips: %v", notes)
	}
	if len(runs) != 8 {
		t.Fatalf("expanded %d runs, want 8", len(runs))
	}
	names := make(map[string]Scenario, len(runs))
	for _, s := range runs {
		names[s.Name] = s
		if s.Nodes != 32 || s.Ports != 8 || s.Seed != 7 {
			t.Fatalf("defaults did not flow into %q: %+v", s.Name, s)
		}
	}
	want := names["net-r2-kill8"]
	if want.Transport != "net" || want.Replicas != 2 || want.KillRate != 8 {
		t.Fatalf("net-r2-kill8 = %+v (names: %v)", want, names)
	}
	if s, ok := names["mem-r1-nokill"]; !ok || s.KillRate != 0 {
		t.Fatalf("missing mem-r1-nokill run: %v", names)
	}
}

// TestExpandSkips checks inconsistent combinations are reported, not
// silently dropped and not run.
func TestExpandSkips(t *testing.T) {
	m := &Matrix{
		Dims: Dims{
			Replicas:   []int{1, 3},
			VoteQuorum: []int{0, 3},
		},
	}
	runs, notes, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// r1-q0, r3-q0, r3-q3 run; r1-q3 is inconsistent.
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3: %+v", len(runs), runs)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "skip r1-q3") {
		t.Fatalf("notes = %v", notes)
	}
	// Byzantine × resize is excluded too.
	m = &Matrix{Dims: Dims{
		ByzRate:     []float64{2},
		ResizeEvery: []Duration{Duration(100 * time.Millisecond)},
	}}
	_, notes, err = m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(notes) != 1 || !strings.Contains(notes[0], "mutually exclusive") {
		t.Fatalf("notes = %v", notes)
	}
}

// TestExpandExplicitScenarios checks the explicit list merges over
// defaults and duplicate names are rejected.
func TestExpandExplicitScenarios(t *testing.T) {
	m := &Matrix{
		Defaults: Scenario{Nodes: 16, Duration: Duration(time.Second)},
		Scenarios: []Scenario{
			{Name: "hinted", Hints: true},
			{Replicas: 2},
		},
	}
	runs, _, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	if runs[0].Name != "hinted" || !runs[0].Hints || runs[0].Nodes != 16 {
		t.Fatalf("explicit merge: %+v", runs[0])
	}
	if runs[1].Name != "scenario-01" {
		t.Fatalf("derived name = %q", runs[1].Name)
	}
	m.Scenarios = append(m.Scenarios, Scenario{Name: "hinted"})
	if _, _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name err = %v", err)
	}
}

// TestReadMatrix checks the file loader, including unknown-field
// rejection (typos in a matrix must not silently become defaults).
func TestReadMatrix(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "m.json")
	if err := os.WriteFile(good, []byte(`{
		"defaults": {"nodes": 16, "duration": "500ms"},
		"dims": {"transport": ["mem"], "replicas": [1, 2]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMatrix(good)
	if err != nil {
		t.Fatal(err)
	}
	if m.Defaults.Nodes != 16 || time.Duration(m.Defaults.Duration) != 500*time.Millisecond {
		t.Fatalf("defaults = %+v", m.Defaults)
	}
	runs, _, err := m.Expand()
	if err != nil || len(runs) != 2 {
		t.Fatalf("runs = %v err = %v", runs, err)
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"defaults": {"nodez": 16}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadMatrix(bad); err == nil {
		t.Fatal("want unknown-field error")
	}
}

// TestScenarioConfig checks the scenario → engine config translation
// keeps loadrun defaults for unset fields and overlays set ones.
func TestScenarioConfig(t *testing.T) {
	s := Scenario{
		Transport:  "net",
		Nodes:      36,
		Replicas:   2,
		VoteQuorum: 2,
		KillRate:   4,
		Duration:   Duration(750 * time.Millisecond),
		Hints:      true,
	}
	cfg := s.Config()
	if cfg.Transport != "net" || cfg.Nodes != 36 || cfg.Replicas != 2 ||
		cfg.VoteQuorum != 2 || cfg.KillRate != 4 || !cfg.Hints {
		t.Fatalf("cfg = %+v", cfg)
	}
	if cfg.Duration != 750*time.Millisecond {
		t.Fatalf("duration = %v", cfg.Duration)
	}
	// Unset fields keep the engine defaults.
	if cfg.Ports != 16 || cfg.Topo != "complete" || cfg.Strategy != "checkerboard" {
		t.Fatalf("defaults lost: %+v", cfg)
	}
	// A zero-valued scenario must not zero fields loadrun defaults on.
	cfg = Scenario{}.Config()
	if cfg.Replicas != 1 || cfg.Nodes != 64 {
		t.Fatalf("zero scenario clobbered defaults: %+v", cfg)
	}
}
