package sweep

import (
	"fmt"

	"matchmake/internal/sweep/loadrun"
)

// GateCheck is one asserted invariant of a finished run.
type GateCheck struct {
	Name   string `json:"name"`
	Pass   bool   `json:"pass"`
	Detail string `json:"detail"`
}

// GateReport is the verdict of every gate applied to one run: a sweep
// with -gate fails when any run's report fails.
type GateReport struct {
	Pass   bool        `json:"pass"`
	Checks []GateCheck `json:"checks"`
}

// Gates applies the scenario's invariants to its result:
//
//   - every run must complete locates, and — when no chaos loop
//     crashes callers (kill or churn), which surfaces their in-flight
//     locates as errors no name server could serve — suffer zero hard
//     transport errors (NotFound rendezvous misses are judged
//     separately);
//   - with r ≥ 2 under chaos, availability must hold the storm bound
//     (≥ 0.999) — except detect-only voting (quorum below 2f+1 against
//     a liar), which fails conflicted ballots closed by design;
//   - with r ≥ 2 and no chaos, no serviceable locate may miss at all;
//   - with answer voting at r ≥ 3 and quorum ≥ 3, zero forged answers
//     may surface (the 2f+1 bound, measured);
//   - with corruption, the post-load anti-entropy drain must reach
//     quiescence within its round budget.
func Gates(s Scenario, res *loadrun.Result) *GateReport {
	rep := &GateReport{Pass: true}
	add := func(name string, pass bool, format string, args ...any) {
		rep.Checks = append(rep.Checks, GateCheck{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)})
		if !pass {
			rep.Pass = false
		}
	}
	m := res.Metrics
	add("locates", m.Locates > 0, "locates=%d", m.Locates)
	if s.KillRate == 0 && s.Churn == 0 {
		hard := m.Errors - m.NotFound
		add("hard-errors", hard == 0, "errors=%d not-found=%d hard=%d", m.Errors, m.NotFound, hard)
	}
	chaos := s.KillRate > 0 || s.CorruptRate > 0 || s.ByzRate > 0
	// A quorum below 2f+1 (q at r=2 against one liar) detects forgery
	// but cannot outvote it: conflicted ballots fail closed, denting
	// availability by design, so the storm bound stands down there.
	detectOnly := s.ByzRate > 0 && s.VoteQuorum > 0 && s.Replicas < 3
	if s.Replicas >= 2 && chaos && !detectOnly {
		add("availability", m.Availability >= 0.999, "availability=%.4f (storm bound ≥ 0.999 at r=%d)", m.Availability, s.Replicas)
	}
	if s.Replicas >= 2 && !chaos && s.ResizeEvery == 0 {
		add("not-found", m.NotFound == 0, "not-found=%d (r=%d, no chaos)", m.NotFound, s.Replicas)
	}
	if s.VoteQuorum >= 3 && s.Replicas >= 3 {
		add("forged", res.Forged == 0, "forged=%d (vote quorum %d at r=%d)", res.Forged, s.VoteQuorum, s.Replicas)
	}
	if s.CorruptRate > 0 {
		add("quiescence", res.QuiesceRounds >= 1 && res.QuiesceRounds <= 64,
			"time-to-quiescence=%v in %d rounds (budget 64)", res.QuiesceIn, res.QuiesceRounds)
	}
	if s.ResizeEvery > 0 {
		add("resizes", res.Resizes > 0 && res.ResizeErr == "", "resizes=%d err=%q", res.Resizes, res.ResizeErr)
	}
	return rep
}
