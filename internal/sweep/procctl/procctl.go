// Package procctl spawns, partitions, scales and tears down local
// node-shard process clusters — the importable core of cmd/mmctl's
// up/kill/scale state machine, shared with cmd/mmsweep so a scenario
// sweep orchestrates the same real processes the operator CLI does.
//
// Workers are re-execs of the calling binary (selected by the
// MMCTL_NODE environment variable), so any binary that calls
// MaybeWorker at the top of main — mmctl, mmsweep, or a test binary's
// TestMain — can host a whole cluster by itself. Production
// deployments run cmd/mmnode per host instead, speaking the same wire
// protocol over the same partition layout (cluster.PartitionRange).
package procctl

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"time"

	"matchmake/internal/cluster"
)

// Proc is one spawned node-server process of a local cluster.
type Proc struct {
	// Index is the worker's slot in the standard partition; Pid its
	// process id; Addr the TCP address it announced; Lo and Hi the
	// owned node range [Lo, Hi).
	Index int    `json:"index"`
	Pid   int    `json:"pid"`
	Addr  string `json:"addr"`
	Lo    int    `json:"lo"`
	Hi    int    `json:"hi"`

	cmd *exec.Cmd // nil when loaded from a state file
}

// State is what `mmctl up` persists so later invocations (kill, down,
// scale, or an mmload -watch-state consumer) can address the running
// processes. CoordPid is the coordinating `up` process itself: `down`
// signals it too, so it reaps its workers and exits instead of
// blocking on a signal forever.
type State struct {
	// Nodes is the cluster size n the processes partition; CoordPid
	// the pid of the coordinating process (0 if none); Procs the
	// worker list in partition order.
	Nodes    int    `json:"nodes"`
	CoordPid int    `json:"coord_pid"`
	Procs    []Proc `json:"procs"`
}

// MaybeWorker turns the calling process into a node-shard worker when
// the MMCTL_NODE environment variable is set (the re-exec path of
// Spawn), serving until a SIGTERM drain finishes and then exiting the
// process. It returns immediately — doing nothing — in a coordinator
// process. Call it first thing in main (or TestMain) of any binary
// that spawns clusters through this package.
func MaybeWorker() {
	if os.Getenv("MMCTL_NODE") == "" {
		return
	}
	if err := workerMain(); err != nil {
		fmt.Fprintln(os.Stderr, "node worker:", err)
		os.Exit(2)
	}
	os.Exit(0)
}

// workerMain is the re-exec'd node-server process: read the partition
// from the environment, then hand the whole serve-announce-drain
// lifecycle to the shared cluster.RunNodeWorker (which only returns
// after a SIGTERM drain has finished).
func workerMain() error {
	atoi := func(k string) (int, error) { return strconv.Atoi(os.Getenv(k)) }
	n, err := atoi("MMCTL_N")
	if err != nil {
		return fmt.Errorf("MMCTL_N: %w", err)
	}
	lo, err := atoi("MMCTL_LO")
	if err != nil {
		return fmt.Errorf("MMCTL_LO: %w", err)
	}
	hi, err := atoi("MMCTL_HI")
	if err != nil {
		return fmt.Errorf("MMCTL_HI: %w", err)
	}
	listen := os.Getenv("MMCTL_ADDR")
	if listen == "" {
		listen = "127.0.0.1:0"
	}
	return cluster.RunNodeWorker(n, lo, hi, listen, os.Stdout)
}

// Spawn launches procs node-server worker processes (re-execs of the
// calling binary, selected by the MMCTL_NODE environment variable)
// partitioning nodes contiguous ranges, and collects the ephemeral
// address each worker prints. On any failure the already-started
// workers are killed.
func Spawn(nodes, procs int) ([]*Proc, error) {
	if nodes < 2 || procs < 1 || procs > nodes {
		return nil, fmt.Errorf("need 1 <= procs (%d) <= nodes (%d)", procs, nodes)
	}
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	ps := make([]*Proc, 0, procs)
	fail := func(err error) ([]*Proc, error) {
		for _, p := range ps {
			p.Kill(syscall.SIGKILL)
			p.cmd.Wait()
		}
		return nil, err
	}
	for i := 0; i < procs; i++ {
		lo, hi := cluster.PartitionRange(nodes, procs, i)
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MMCTL_NODE=1",
			fmt.Sprintf("MMCTL_N=%d", nodes),
			fmt.Sprintf("MMCTL_LO=%d", lo),
			fmt.Sprintf("MMCTL_HI=%d", hi),
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return fail(err)
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("spawn worker %d: %w", i, err))
		}
		p := &Proc{Index: i, Pid: cmd.Process.Pid, Lo: lo, Hi: hi, cmd: cmd}
		ps = append(ps, p)
		addr, err := readAddrLine(out)
		if err != nil {
			return fail(fmt.Errorf("worker %d: %w", i, err))
		}
		p.Addr = addr
	}
	return ps, nil
}

// Respawn restarts a dead worker on its previous partition AND its
// previous address (via MMCTL_ADDR), so a transport holding the
// original address list redials it transparently. Binding can race the
// kernel releasing the old port, so the spawn retries briefly.
func Respawn(nodes int, p *Proc) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"MMCTL_NODE=1",
			fmt.Sprintf("MMCTL_N=%d", nodes),
			fmt.Sprintf("MMCTL_LO=%d", p.Lo),
			fmt.Sprintf("MMCTL_HI=%d", p.Hi),
			"MMCTL_ADDR="+p.Addr,
		)
		cmd.Stderr = os.Stderr
		out, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		if addr, err := readAddrLine(out); err == nil {
			p.Addr = addr
			p.Pid = cmd.Process.Pid
			p.cmd = cmd
			return nil
		}
		cmd.Process.Kill()
		cmd.Wait()
		if time.Now().After(deadline) {
			return fmt.Errorf("worker %d would not rebind %s", p.Index, p.Addr)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// readAddrLine consumes the worker's "ADDR host:port" banner and
// leaves a goroutine draining any further output.
func readAddrLine(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	if !sc.Scan() {
		return "", fmt.Errorf("no ADDR line (%v)", sc.Err())
	}
	line := sc.Text()
	if !strings.HasPrefix(line, "ADDR ") {
		return "", fmt.Errorf("unexpected banner %q", line)
	}
	go func() {
		for sc.Scan() {
		}
	}()
	return strings.TrimPrefix(line, "ADDR "), nil
}

// Addrs returns the processes' addresses in partition order.
func Addrs(ps []*Proc) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Addr
	}
	return out
}

// Banner writes the orchestrators' summary lines for a spawned worker
// set: the machine-readable "ADDRS a,b,c" line consumers grep for,
// then one "<prefix> worker I pid P serves [lo,hi) at addr" line per
// process — the exact format `mmctl up` and `mmctl scale` have always
// printed, pinned byte for byte by TestBanner.
func Banner(w io.Writer, prefix string, ps []*Proc) {
	fmt.Fprintf(w, "ADDRS %s\n", strings.Join(Addrs(ps), ","))
	for _, p := range ps {
		fmt.Fprintf(w, "%s worker %d pid %d serves [%d,%d) at %s\n", prefix, p.Index, p.Pid, p.Lo, p.Hi, p.Addr)
	}
}

// Kill delivers sig to the process. Loaded-from-state processes are
// signalled by pid.
func (p *Proc) Kill(sig syscall.Signal) error {
	if p.cmd != nil && p.cmd.Process != nil {
		return p.cmd.Process.Signal(sig)
	}
	return syscall.Kill(p.Pid, sig)
}

// Wait reaps the spawned child process, returning its exit error. It
// is a no-op for processes loaded from a state file (not our
// children).
func (p *Proc) Wait() error {
	if p.cmd == nil {
		return nil
	}
	return p.cmd.Wait()
}

// Drain asks the process to shut down gracefully (SIGTERM → finish
// in-flight requests → exit 0) and waits up to timeout before
// escalating to SIGKILL. It reports whether the exit was clean.
func (p *Proc) Drain(timeout time.Duration) error {
	if err := p.Kill(syscall.SIGTERM); err != nil {
		if p.cmd != nil && errors.Is(err, os.ErrProcessDone) {
			p.cmd.Wait() // already exited (e.g. SIGTERM'd by `down`); reap it
			return nil
		}
		return err
	}
	if p.cmd == nil {
		return nil // not our child; we can signal but not wait
	}
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		p.Kill(syscall.SIGKILL)
		<-done
		return fmt.Errorf("worker %d did not drain within %v; killed", p.Index, timeout)
	}
}

// Teardown drains every process, returning the first failure.
func Teardown(ps []*Proc, timeout time.Duration) error {
	var first error
	for _, p := range ps {
		if err := p.Drain(timeout); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteState persists the cluster layout for later invocations,
// recording the calling process as the coordinator.
func WriteState(path string, nodes int, ps []*Proc) error {
	st := State{Nodes: nodes, CoordPid: os.Getpid(), Procs: make([]Proc, len(ps))}
	for i, p := range ps {
		st.Procs[i] = *p
		st.Procs[i].cmd = nil
	}
	return st.Write(path)
}

// Write persists an already-assembled cluster state — the rewrite path
// of `mmctl scale`, which preserves the original coordinator pid while
// swapping the worker list.
func (st *State) Write(path string) error {
	b, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadState loads a cluster layout written by WriteState.
func ReadState(path string) (*State, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st State
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, fmt.Errorf("state file %s: %w", path, err)
	}
	return &st, nil
}

// Scale is the live process resize behind `mmctl scale`: spawn a fresh
// worker set partitioning the same node space across procs processes,
// copy every partition from the old workers (postings, liveness
// records, crash marks — the opSnapshot transfer), rewrite the state
// file (the cluster's membership registry — watchers like `mmload
// -watch-state` rescale off it), print the new layout banner, and
// after the grace period drain the old workers. The new workers
// outlive the caller; `mmctl down` addresses them by pid through the
// state file.
func Scale(statePath string, procs int, grace time.Duration, out io.Writer) error {
	st, err := ReadState(statePath)
	if err != nil {
		return err
	}
	if procs < 1 || procs > st.Nodes {
		return fmt.Errorf("need 1 <= -procs (%d) <= nodes (%d)", procs, st.Nodes)
	}
	ps, err := Spawn(st.Nodes, procs)
	if err != nil {
		return err
	}
	donors := make([]cluster.DonorProc, len(st.Procs))
	for i, p := range st.Procs {
		donors[i] = cluster.DonorProc{Addr: p.Addr, Lo: p.Lo, Hi: p.Hi}
	}
	lost, err := cluster.TransferPartitions(donors, Addrs(ps), st.Nodes, cluster.NetOptions{CallTimeout: 30 * time.Second})
	if err != nil {
		Teardown(ps, 5*time.Second)
		return fmt.Errorf("partition transfer: %w", err)
	}
	for _, r := range lost {
		fmt.Fprintf(out, "scale: donor for nodes [%d,%d) unreachable; consumers' repair loops will re-post\n", r[0], r[1])
	}
	oldProcs := st.Procs
	st.Procs = make([]Proc, len(ps))
	for i, p := range ps {
		st.Procs[i] = *p
		st.Procs[i].cmd = nil
	}
	if err := st.Write(statePath); err != nil {
		Teardown(ps, 5*time.Second)
		return err
	}
	Banner(out, "scale:", ps)
	time.Sleep(grace)
	for _, p := range oldProcs {
		if err := syscall.Kill(p.Pid, syscall.SIGTERM); err == nil {
			fmt.Fprintf(out, "scale: SIGTERM old worker %d (pid %d)\n", p.Index, p.Pid)
		}
	}
	// The new workers are deliberately left running (and unreaped):
	// they are the cluster now, addressed through the state file.
	return nil
}
