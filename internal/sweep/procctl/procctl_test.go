package procctl

import (
	"bytes"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// TestMain re-execs the test binary as a node-server worker when Spawn
// launches it with MMCTL_NODE set — the production re-exec path, so
// the orchestration under test is the real one.
func TestMain(m *testing.M) {
	MaybeWorker()
	os.Exit(m.Run())
}

// TestBanner pins the orchestrator summary lines byte for byte: the
// refactor that moved them out of cmd/mmctl must keep `mmctl up` and
// `mmctl scale` output identical.
func TestBanner(t *testing.T) {
	ps := []*Proc{
		{Index: 0, Pid: 1234, Addr: "127.0.0.1:7001", Lo: 0, Hi: 12},
		{Index: 1, Pid: 1235, Addr: "127.0.0.1:7002", Lo: 12, Hi: 24},
	}
	var out bytes.Buffer
	Banner(&out, "mmctl:", ps)
	want := "ADDRS 127.0.0.1:7001,127.0.0.1:7002\n" +
		"mmctl: worker 0 pid 1234 serves [0,12) at 127.0.0.1:7001\n" +
		"mmctl: worker 1 pid 1235 serves [12,24) at 127.0.0.1:7002\n"
	if got := out.String(); got != want {
		t.Fatalf("banner bytes diverged:\ngot:\n%q\nwant:\n%q", got, want)
	}
	out.Reset()
	Banner(&out, "scale:", ps[:1])
	want = "ADDRS 127.0.0.1:7001\n" +
		"scale: worker 0 pid 1234 serves [0,12) at 127.0.0.1:7001\n"
	if got := out.String(); got != want {
		t.Fatalf("scale banner bytes diverged:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func TestStateRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mm.json")
	ps := []*Proc{
		{Index: 0, Pid: 1234, Addr: "127.0.0.1:7001", Lo: 0, Hi: 12},
		{Index: 1, Pid: 1235, Addr: "127.0.0.1:7002", Lo: 12, Hi: 24},
	}
	if err := WriteState(path, 24, ps); err != nil {
		t.Fatal(err)
	}
	st, err := ReadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 24 || len(st.Procs) != 2 || st.CoordPid != os.Getpid() {
		t.Fatalf("state = %+v", st)
	}
	for i := range ps {
		if st.Procs[i].Pid != ps[i].Pid || st.Procs[i].Addr != ps[i].Addr {
			t.Fatalf("proc %d = %+v, want %+v", i, st.Procs[i], *ps[i])
		}
	}
	if _, err := ReadState(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("want error for missing state file")
	}
}

// TestSpawnServeRespawnDrain covers the orchestration lifecycle from
// the importable package: spawn a real 3-process loopback cluster,
// serve traffic over it, kill -9 a worker, respawn it on its old
// address, and tear everything down.
func TestSpawnServeRespawnDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	const n = 24
	ps, err := Spawn(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer Teardown(ps, 5*time.Second)
	for i, p := range ps {
		wantLo, wantHi := cluster.PartitionRange(n, 3, i)
		if p.Lo != wantLo || p.Hi != wantHi {
			t.Fatalf("worker %d owns [%d,%d), want [%d,%d)", i, p.Lo, p.Hi, wantLo, wantHi)
		}
		if p.Addr == "" || p.Pid == 0 {
			t.Fatalf("worker %d missing addr/pid: %+v", i, p)
		}
	}
	g := topology.Complete(n)
	tr, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(n), Addrs(ps),
		cluster.NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Register("svc", 2); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Locate(20, "svc"); err != nil {
		t.Fatal(err)
	}

	victim := ps[2]
	oldAddr := victim.Addr
	if err := victim.Kill(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	if err := victim.Wait(); err == nil {
		t.Fatal("SIGKILL'd worker reported a clean exit")
	}
	if _, err := tr.Locate(1, "svc"); err != nil {
		t.Fatalf("locate after kill -9: %v", err)
	}
	if err := Respawn(n, victim); err != nil {
		t.Fatalf("respawn: %v", err)
	}
	if victim.Addr != oldAddr {
		t.Fatalf("respawned on %s, want old address %s", victim.Addr, oldAddr)
	}
}

// TestScaleRepartitions covers the live process resize through the
// importable Scale: boot a 2-process cluster, post through it, scale
// to 4 processes (state file rewritten, old workers drained), and
// verify a transport over the new layout still resolves the posting.
func TestScaleRepartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	const n = 24
	ps, err := Spawn(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer Teardown(ps, 5*time.Second)
	state := filepath.Join(t.TempDir(), "mm.json")
	if err := WriteState(state, n, ps); err != nil {
		t.Fatal(err)
	}

	g := topology.Complete(n)
	tr, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(n), Addrs(ps),
		cluster.NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	want, err := tr.Register("svc", 5)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()

	var out bytes.Buffer
	if err := Scale(state, 4, 50*time.Millisecond, &out); err != nil {
		t.Fatalf("scale: %v\n%s", err, out.String())
	}
	if !bytes.Contains(out.Bytes(), []byte("ADDRS ")) {
		t.Fatalf("scale printed no ADDRS line:\n%s", out.String())
	}
	st, err := ReadState(state)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Procs) != 4 {
		t.Fatalf("state lists %d workers after scale, want 4", len(st.Procs))
	}
	defer func() {
		for _, p := range st.Procs {
			syscall.Kill(p.Pid, syscall.SIGKILL)
		}
	}()
	tr2, err := cluster.NewNetTransport(g, rendezvous.Checkerboard(n), stateAddrs(st),
		cluster.NetOptions{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	e, err := tr2.Locate(20, "svc")
	if err != nil {
		t.Fatalf("locate over the rescaled cluster: %v", err)
	}
	if e.Addr != want.Node() {
		t.Fatalf("located %d, want %d", e.Addr, want.Node())
	}
}

func stateAddrs(st *State) []string {
	out := make([]string, len(st.Procs))
	for i, p := range st.Procs {
		out[i] = p.Addr
	}
	return out
}

func TestSpawnRejectsBadShape(t *testing.T) {
	for _, c := range [][2]int{{1, 1}, {8, 0}, {8, 9}} {
		if _, err := Spawn(c[0], c[1]); err == nil {
			t.Fatalf("Spawn(%d, %d) accepted", c[0], c[1])
		}
	}
}
