package sweep

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// docFixture is a doc skeleton with every marker block, plus prose
// that must survive regeneration untouched.
const docFixture = `# Experiments

Availability under crashes:

<!-- mmsweep:begin availability -->
| stale | table |
<!-- mmsweep:end availability -->

Prose between blocks stays.

<!-- mmsweep:begin byzantine -->
<!-- mmsweep:end byzantine -->

<!-- mmsweep:begin corruption -->
<!-- mmsweep:end corruption -->

<!-- mmsweep:begin throughput -->
old contents
<!-- mmsweep:end throughput -->

Tail prose.
`

func fixtureRecords(t *testing.T) []*RunRecord {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "records.json"))
	if err != nil {
		t.Fatal(err)
	}
	var recs []*RunRecord
	if err := json.Unmarshal(b, &recs); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestTablesGolden pins the full regeneration pipeline: fixture
// records → GenerateTables → UpdateDoc must produce the golden
// markdown byte for byte. Regenerate with -update after a deliberate
// format change.
func TestTablesGolden(t *testing.T) {
	recs := fixtureRecords(t)
	env := Env{GoVersion: "go1.24.0", OS: "linux", Arch: "amd64", CPUs: 8}
	tables := GenerateTables(recs, env)
	for _, name := range []string{TableAvailability, TableByzantine, TableCorruption, TableThroughput} {
		if tables[name] == "" {
			t.Fatalf("no %s table generated", name)
		}
	}
	got, err := UpdateDoc([]byte(docFixture), tables)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "tables.golden.md")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("regenerated doc diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestUpdateDocIdempotent checks regenerating an already-regenerated
// doc is a fixed point.
func TestUpdateDocIdempotent(t *testing.T) {
	recs := fixtureRecords(t)
	env := Env{GoVersion: "go1.24.0", OS: "linux", Arch: "amd64"}
	tables := GenerateTables(recs, env)
	once, err := UpdateDoc([]byte(docFixture), tables)
	if err != nil {
		t.Fatal(err)
	}
	twice, err := UpdateDoc(once, tables)
	if err != nil {
		t.Fatal(err)
	}
	if string(once) != string(twice) {
		t.Fatal("UpdateDoc is not idempotent")
	}
}

// TestUpdateDocErrors checks malformed or unservable marker blocks
// fail loudly instead of leaving stale tables in place.
func TestUpdateDocErrors(t *testing.T) {
	tables := map[string]string{"availability": "| x |\n"}
	if _, err := UpdateDoc([]byte("<!-- mmsweep:begin availability -->\nx\n"), tables); err == nil {
		t.Fatal("want error for missing end marker")
	}
	doc := "<!-- mmsweep:begin nosuch -->\n<!-- mmsweep:end nosuch -->\n"
	if _, err := UpdateDoc([]byte(doc), tables); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("err = %v, want unknown-block error", err)
	}
	// A doc with no markers passes through unchanged.
	out, err := UpdateDoc([]byte("plain prose\n"), tables)
	if err != nil || string(out) != "plain prose\n" {
		t.Fatalf("passthrough = %q err = %v", out, err)
	}
}

func TestComma(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{{0, "0"}, {999, "999"}, {1000, "1,000"}, {12345, "12,345"}, {1234567, "1,234,567"}, {-12345, "-12,345"}} {
		if got := comma(tc.n); got != tc.want {
			t.Fatalf("comma(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}
