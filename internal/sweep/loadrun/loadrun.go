// Package loadrun is the importable engine of cmd/mmload: build a
// transport from a declarative Config, drive the configured workload
// (closed or open loop, with optional churn, kill, corruption,
// Byzantine and resize chaos loops), and return a typed Result whose
// Report method prints the exact summary lines the mmload binary has
// always printed. cmd/mmload is a thin flag wrapper over this package;
// cmd/mmsweep runs the same engine once per scenario of a matrix and
// keeps the Result as machine-readable JSON instead of text.
package loadrun

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strings"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/gate"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// Config declares one load run: the transport and cluster shape, the
// workload, and the chaos loops layered on top. Zero values mean "off"
// for every optional feature; Run applies the same defaults the mmload
// flags default to where a zero is not meaningful (Nodes, Ports,
// Duration, Concurrency, workload parameters).
type Config struct {
	// Transport selects the serving backend: "mem" (in-process fast
	// path), "sim" (paper-exact simulator), "net" (socket cluster;
	// needs Addrs) or "gate" (mmgate service edge; needs GateAddr).
	Transport string
	// GateAddr and GateToken configure the gate transport.
	GateAddr  string
	GateToken string
	// Addrs is the net transport's comma-separated node-process
	// address list in partition order; StateFile reads the list from
	// an mmctl state file instead, and WatchState polls that file to
	// rescale onto layout changes.
	Addrs      string
	StateFile  string
	WatchState time.Duration
	// NetConns and NetStripes set the connection stripes per
	// destination process (NetStripes wins); CoalesceWindow and
	// NetCoalesce tune the wire flood coalescer.
	NetConns    int
	NetStripes  int
	CoalesceWin time.Duration
	NetCoalesce bool

	// Topology, Nodes, Strategy, Ports describe the cluster; Workload,
	// ZipfS, ZipfV the port-popularity distribution.
	Topo     string
	Nodes    int
	Strategy string
	Ports    int
	Workload string
	ZipfS    float64
	ZipfV    float64

	// Churn tears one service down per interval; Replicas replicates
	// the rendezvous strategy r-fold; KillRate crashes random nodes;
	// CorruptRate injects adversarial posting corruption (with
	// ReconEvery the anti-entropy round period); ByzRate re-arms Liars
	// lying nodes per wave; VoteQuorum turns on answer voting;
	// ResizeEvery/ResizeTo drive elastic membership churn.
	Churn       time.Duration
	Replicas    int
	KillRate    float64
	CorruptRate float64
	ReconEvery  time.Duration
	ByzRate     float64
	Liars       int
	VoteQuorum  int
	ResizeEvery time.Duration
	ResizeTo    int

	// Duration is the measurement window; Concurrency the closed-loop
	// worker count; Rate a nonzero open-loop arrival rate; Batch the
	// closed-loop LocateBatch size; Hints enables the per-client hint
	// cache; Weighted the frequency-weighted strategy (with HotPorts,
	// HotRefresh, HotAlpha).
	Duration    time.Duration
	Concurrency int
	Rate        int
	Batch       int
	Hints       bool
	Weighted    bool
	HotPorts    int
	HotRefresh  time.Duration
	HotAlpha    float64

	// Shards, Workers, Queue, NoCoalesce tune the cluster serving
	// layer; Seed seeds every workload RNG; LocateTO and CollectWin
	// are the sim transport's timing knobs.
	Shards     int
	Workers    int
	Queue      int
	NoCoalesce bool
	Seed       int64
	LocateTO   time.Duration
	CollectWin time.Duration
}

// Defaults returns the Config matching mmload's flag defaults: the
// 64-node complete-network checkerboard under a Zipf(1.2) closed loop.
func Defaults() Config {
	return Config{
		Transport:   "mem",
		GateToken:   "dev",
		NetCoalesce: true,
		Topo:        "complete",
		Nodes:       64,
		Strategy:    "checkerboard",
		Ports:       16,
		Workload:    "zipf",
		ZipfS:       1.2,
		ZipfV:       1,
		Replicas:    1,
		Liars:       1,
		Duration:    2 * time.Second,
		Concurrency: 8,
		HotPorts:    2,
		HotRefresh:  250 * time.Millisecond,
		HotAlpha:    16,
		Seed:        1,
		LocateTO:    250 * time.Millisecond,
		CollectWin:  time.Millisecond,
	}
}

// stripes resolves the connection-stripe count for the net and gate
// transports: NetStripes wins, the older NetConns spelling still
// works, and zero defers to netwire.NewPool's max(2, GOMAXPROCS)
// default.
func (cfg Config) stripes() int {
	if cfg.NetStripes != 0 {
		return cfg.NetStripes
	}
	return cfg.NetConns
}

// netOptions assembles the NetOptions shared by the static and
// elastic net transport builders from the wire-tuning knobs.
func (cfg Config) netOptions() cluster.NetOptions {
	return cluster.NetOptions{
		ConnsPerProc:      cfg.stripes(),
		CallTimeout:       30 * time.Second,
		CoalesceWindow:    cfg.CoalesceWin,
		DisableCoalescing: !cfg.NetCoalesce,
	}
}

// validate rejects inconsistent Configs with the messages the mmload
// flags have always produced.
func (cfg *Config) validate() error {
	if cfg.Nodes < 2 {
		return fmt.Errorf("need at least 2 nodes")
	}
	if cfg.Ports < 1 {
		return fmt.Errorf("need at least 1 port")
	}
	if cfg.Rate > 0 && cfg.Batch > 0 {
		return fmt.Errorf("-batch applies to the closed loop only; drop -rate to measure LocateBatch")
	}
	if cfg.Replicas < 1 {
		return fmt.Errorf("-replicas must be ≥ 1, got %d", cfg.Replicas)
	}
	if cfg.Replicas > 1 && cfg.Weighted {
		return fmt.Errorf("-replicas and -weighted are mutually exclusive")
	}
	if cfg.KillRate < 0 {
		return fmt.Errorf("-kill-rate must be ≥ 0, got %v", cfg.KillRate)
	}
	if cfg.CorruptRate < 0 {
		return fmt.Errorf("-corrupt-rate must be ≥ 0, got %v", cfg.CorruptRate)
	}
	if cfg.CorruptRate > 0 && cfg.ReconEvery == 0 {
		cfg.ReconEvery = 50 * time.Millisecond
	}
	if cfg.ByzRate < 0 {
		return fmt.Errorf("-byzantine-rate must be ≥ 0, got %v", cfg.ByzRate)
	}
	if cfg.ByzRate > 0 && cfg.Liars < 1 {
		return fmt.Errorf("-liars must be ≥ 1, got %d", cfg.Liars)
	}
	if cfg.VoteQuorum < 0 {
		return fmt.Errorf("-vote-quorum must be ≥ 0, got %d", cfg.VoteQuorum)
	}
	if cfg.VoteQuorum >= 2 && cfg.Replicas < 2 {
		return fmt.Errorf("-vote-quorum %d needs -replicas ≥ 2 (voting is across replica families)", cfg.VoteQuorum)
	}
	if (cfg.ByzRate > 0 || cfg.VoteQuorum > 0) && cfg.ResizeEvery > 0 {
		return fmt.Errorf("-byzantine-rate/-vote-quorum and -resize-interval are mutually exclusive")
	}
	return nil
}

// validateGate rejects Config fields that configure machinery living
// on the gateway's side of the wire: with the gate transport the
// rendezvous strategy, hint cache, fault injection and membership
// churn all belong to the mmgate process, not the load driver.
func (cfg Config) validateGate() error {
	if cfg.GateAddr == "" {
		return fmt.Errorf("-transport gate needs -gate-addr (the WIRE line mmgate prints)")
	}
	switch {
	case cfg.Addrs != "" || cfg.StateFile != "":
		return fmt.Errorf("-addrs/-state belong to -transport net; the gateway owns its own cluster")
	case cfg.Hints:
		return fmt.Errorf("-hints is gateway-side: start mmgate with -hints instead")
	case cfg.Weighted:
		return fmt.Errorf("-weighted is gateway-side; not available over -transport gate")
	case cfg.Replicas > 1:
		return fmt.Errorf("-replicas is gateway-side: start mmgate with -replicas instead")
	case cfg.Churn > 0 || cfg.KillRate > 0:
		return fmt.Errorf("-churn/-kill-rate need direct transport access; not available over -transport gate")
	case cfg.ResizeEvery > 0 || cfg.WatchState > 0:
		return fmt.Errorf("membership churn (-resize-interval/-watch-state) is not available over -transport gate")
	case cfg.CorruptRate > 0 || cfg.ReconEvery > 0:
		return fmt.Errorf("-corrupt-rate/-reconcile-interval need direct transport access; not available over -transport gate")
	case cfg.ByzRate > 0 || cfg.VoteQuorum > 0:
		return fmt.Errorf("-byzantine-rate/-vote-quorum need direct transport access; not available over -transport gate")
	}
	return nil
}

// Run validates cfg, builds the transport, registers one server per
// port, drives the workload with every configured chaos loop, and
// returns the typed Result. Progress lines produced mid-run (rescale
// notices from a watched state file) go to progress; the summary is
// NOT printed — call Result.Report for the mmload text rendering.
func Run(cfg Config, progress io.Writer) (*Result, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	// The transport, node count and the topology/strategy names for the
	// report. With the gate transport the rendezvous machinery lives
	// behind the service edge: the gateway picked topology and strategy,
	// the engine learns the node count from the hello and reports the
	// rest as "remote".
	var (
		tr        cluster.Transport
		n         int
		topoName  string
		stratName string
	)
	if cfg.Transport == "gate" {
		if err := cfg.validateGate(); err != nil {
			return nil, err
		}
		gt, err := gate.DialTransport(cfg.GateAddr, cfg.GateToken, cfg.stripes())
		if err != nil {
			return nil, err
		}
		tr, n = gt, gt.N()
		topoName, stratName = "remote", "remote"
	} else {
		g, err := buildTopology(cfg.Topo, cfg.Nodes)
		if err != nil {
			return nil, err
		}
		if cfg.ResizeTo == 0 {
			cfg.ResizeTo = g.N() * 3 / 4
		}
		if cfg.ResizeEvery > 0 {
			if cfg.Weighted {
				return nil, fmt.Errorf("-resize-interval and -weighted are mutually exclusive")
			}
			if cfg.ResizeTo < 2 || cfg.ResizeTo > g.N() {
				return nil, fmt.Errorf("-resize-to %d out of [2,%d]", cfg.ResizeTo, g.N())
			}
			if cfg.Replicas > cfg.ResizeTo {
				return nil, fmt.Errorf("-replicas %d > -resize-to %d", cfg.Replicas, cfg.ResizeTo)
			}
		}
		if cfg.WatchState > 0 {
			if cfg.Transport != "net" {
				return nil, fmt.Errorf("-watch-state needs -transport net")
			}
			if cfg.StateFile == "" {
				return nil, fmt.Errorf("-watch-state needs -state")
			}
		}
		if cfg.Transport == "net" && cfg.Addrs == "" && cfg.StateFile != "" {
			stateAddrs, err := readStateAddrs(cfg.StateFile)
			if err != nil {
				return nil, fmt.Errorf("-state %s: %w", cfg.StateFile, err)
			}
			cfg.Addrs = strings.Join(stateAddrs, ",")
		}
		strat, err := buildStrategy(cfg.Strategy, g.N(), cfg.Seed)
		if err != nil {
			return nil, err
		}
		if tr, err = buildTransport(cfg, g, strat); err != nil {
			return nil, err
		}
		n, topoName, stratName = g.N(), cfg.Topo, strat.Name()
	}
	// When membership churns, servers and clients stay inside the
	// smaller epoch's range so every locate remains serviceable.
	activeFloor := n
	if cfg.ResizeEvery > 0 && cfg.ResizeTo < activeFloor {
		activeFloor = cfg.ResizeTo
	}
	copts := cluster.Options{
		Shards:            cfg.Shards,
		WorkersPerShard:   cfg.Workers,
		QueueDepth:        cfg.Queue,
		DisableCoalescing: cfg.NoCoalesce,
		Hints:             cfg.Hints,
		VoteQuorum:        cfg.VoteQuorum,
	}
	if cfg.Weighted {
		copts.HotPorts = cfg.HotPorts
		copts.HotRefresh = cfg.HotRefresh
	}
	c := cluster.New(tr, copts)
	defer c.Close()

	// The self-stabilization layer: a background anti-entropy loop (and,
	// with CorruptRate, the adversarial injector racing it).
	var antiT cluster.AntiEntropyTransport
	if cfg.CorruptRate > 0 || cfg.ReconEvery > 0 {
		var ok bool
		if antiT, ok = tr.(cluster.AntiEntropyTransport); !ok {
			return nil, fmt.Errorf("-corrupt-rate/-reconcile-interval need an anti-entropy transport (mem, sim or net), got %s", tr.Name())
		}
		antiT.StartReconcile(cfg.ReconEvery)
	}

	// The Byzantine adversary: ByzRate arms Liars rendezvous nodes to
	// forge locate answers, re-armed with a fresh seed per wave.
	var byzT cluster.ByzantineTransport
	if cfg.ByzRate > 0 || cfg.VoteQuorum >= 2 {
		var ok bool
		if byzT, ok = tr.(cluster.ByzantineTransport); !ok {
			return nil, fmt.Errorf("-byzantine-rate/-vote-quorum need a byzantine-capable transport (mem, sim or net), got %s", tr.Name())
		}
	}

	// One server per port, spread deterministically over the nodes and
	// announced through the batched posting path (one shard lock per
	// store shard, bulk pass accounting).
	names := makePortNames(cfg.Ports)
	regs := make([]cluster.Registration, cfg.Ports)
	for p := 0; p < cfg.Ports; p++ {
		regs[p] = cluster.Registration{Port: names[p], Node: graph.NodeID((p * 7919) % activeFloor)}
	}
	refs, err := c.PostBatch(regs)
	if err != nil {
		return nil, fmt.Errorf("register services: %w", err)
	}
	reg := &registry{servers: refs}

	stop := make(chan struct{})
	var churnWG waitGroup
	if cfg.Churn > 0 {
		churnWG.Go(func() { runChurn(c, reg, cfg, activeFloor, stop) })
	}
	var kills int64
	if cfg.KillRate > 0 {
		churnWG.Go(func() { kills = runKiller(c, reg, cfg, activeFloor, stop) })
	}
	if cfg.CorruptRate > 0 {
		churnWG.Go(func() { runCorruptor(antiT, cfg, stop) })
	}
	var det *forgeDetector
	if byzT != nil {
		det = newForgeDetector(cfg, reg, names)
	}
	var armed int64
	if cfg.ByzRate > 0 {
		// Arm the first wave before measurement starts so the adversary
		// is live for the whole window.
		n0, aerr := byzT.Arm(cluster.ArmOptions{Seed: cfg.Seed * 6053, Liars: cfg.Liars})
		if aerr != nil {
			return nil, fmt.Errorf("arm byzantine adversary: %w", aerr)
		}
		armed = int64(n0)
		churnWG.Go(func() { runArmer(byzT, cfg, stop) })
	}
	var resizes int64
	var resizeErr error
	if cfg.ResizeEvery > 0 {
		churnWG.Go(func() { resizes, resizeErr = runResizer(c, cfg, n, stop) })
	}
	if cfg.WatchState > 0 {
		// Validated up front: -transport net always builds a *NetTransport.
		netT := tr.(*cluster.NetTransport)
		churnWG.Go(func() { watchState(netT, cfg.StateFile, cfg.WatchState, stop, progress) })
	}

	c.ResetMetrics()
	// Snapshot wire-level counters (net and gate transports) so the
	// report can charge frames and bytes to the measurement window only.
	wireT, _ := tr.(interface{ WireStats() netwire.Stats })
	var wireBefore netwire.Stats
	if wireT != nil {
		wireBefore = wireT.WireStats()
	}
	var memBefore runtime.MemStats
	runtime.ReadMemStats(&memBefore)
	if cfg.Rate > 0 {
		err = openLoop(c, cfg, names, activeFloor, det)
	} else {
		err = closedLoop(c, cfg, names, activeFloor, det)
	}
	var memAfter runtime.MemStats
	runtime.ReadMemStats(&memAfter)
	close(stop)
	churnWG.Wait()
	if err != nil {
		return nil, err
	}

	// Time-to-quiescence: with the injector stopped, drive explicit
	// rounds until one finds nothing to repair. The drain happens before
	// the snapshot so its rounds and repairs land in the report window.
	var (
		quiesceRounds int
		quiesceIn     time.Duration
	)
	if antiT != nil && cfg.CorruptRate > 0 {
		t0 := time.Now()
		for quiesceRounds = 1; quiesceRounds <= 64; quiesceRounds++ {
			r, rerr := antiT.ReconcileRound()
			if rerr != nil {
				return nil, fmt.Errorf("quiescence drain: %w", rerr)
			}
			if r == 0 {
				break
			}
		}
		quiesceIn = time.Since(t0)
	}

	res := &Result{
		Transport:     tr.Name(),
		Topology:      topoName,
		Strategy:      stratName,
		Nodes:         n,
		Ports:         cfg.Ports,
		Workload:      cfg.Workload,
		Churn:         cfg.Churn,
		KillRate:      cfg.KillRate,
		Kills:         kills,
		CorruptRate:   cfg.CorruptRate,
		ReconEvery:    cfg.ReconEvery,
		QuiesceRounds: quiesceRounds,
		QuiesceIn:     quiesceIn,
		ResizeEvery:   cfg.ResizeEvery,
		ResizeFrom:    n,
		ResizeTo:      cfg.ResizeTo,
		Resizes:       resizes,
		ByzRate:       cfg.ByzRate,
		Liars:         cfg.Liars,
		ArmedLies:     armed,
		VoteQuorum:    cfg.VoteQuorum,
		Byzantine:     det != nil,
		Metrics:       c.Metrics(),
	}
	if resizeErr != nil {
		res.ResizeErr = resizeErr.Error()
	}
	if det != nil {
		res.Forged = det.forged.Load()
	}
	if res.Metrics.Locates > 0 {
		// Process-wide allocation count over the window divided by
		// locates: includes the harness's own allocations, so it is an
		// upper bound on the serving path's allocs/op.
		res.AllocsPerLocate = float64(memAfter.Mallocs-memBefore.Mallocs) / float64(res.Metrics.Locates)
	}
	if wireT != nil && res.Metrics.Locates > 0 {
		d := wireT.WireStats().Sub(wireBefore)
		res.Wire = &WireReport{
			FramesPerLocate: float64(d.FramesSent+d.FramesRecv) / float64(res.Metrics.Locates),
			BytesPerLocate:  float64(d.BytesSent+d.BytesRecv) / float64(res.Metrics.Locates),
		}
		if ct, ok := tr.(interface{ CoalesceStats() (int64, int64) }); ok {
			res.Wire.Coalesced, res.Wire.Floods = ct.CoalesceStats()
		}
	}
	return res, nil
}

// waitGroup is a tiny sync.WaitGroup wrapper keeping the chaos-loop
// spawns one-liners.
type waitGroup struct{ wg waitGroupImpl }

// portName formats the p-th service name.
func portName(p int) core.Port { return core.Port(fmt.Sprintf("svc-%04d", p)) }

// makePortNames materializes the port name table once; the measured
// loops index it rather than formatting a name per locate, which would
// bill the harness's own allocations to the serving path.
func makePortNames(ports int) []core.Port {
	names := make([]core.Port, ports)
	for p := range names {
		names[p] = portName(p)
	}
	return names
}

// buildTopology constructs the named graph over n nodes.
func buildTopology(name string, n int) (*graph.Graph, error) {
	switch name {
	case "complete":
		return topology.Complete(n), nil
	case "ring":
		return topology.Ring(n)
	case "grid":
		p := int(math.Sqrt(float64(n)))
		for p > 1 && n%p != 0 {
			p--
		}
		if p <= 1 {
			return nil, fmt.Errorf("grid needs a composite node count, got %d", n)
		}
		gr, err := topology.NewGrid(p, n/p)
		if err != nil {
			return nil, err
		}
		return gr.G, nil
	case "hypercube":
		d := 0
		for 1<<d < n {
			d++
		}
		if 1<<d != n {
			return nil, fmt.Errorf("hypercube needs a power-of-two node count, got %d", n)
		}
		h, err := topology.NewHypercube(d)
		if err != nil {
			return nil, err
		}
		return h.G, nil
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

// buildStrategy constructs the named rendezvous strategy over n nodes.
func buildStrategy(name string, n int, seed int64) (rendezvous.Strategy, error) {
	switch name {
	case "checkerboard":
		return rendezvous.Checkerboard(n), nil
	case "random":
		k := int(math.Ceil(math.Sqrt(float64(n)))) * 2
		return rendezvous.Random(n, k, k, uint64(seed)), nil
	case "broadcast":
		return rendezvous.Broadcast(n), nil
	case "sweep":
		return rendezvous.Sweep(n), nil
	default:
		return nil, fmt.Errorf("unknown strategy %q", name)
	}
}

// buildTransport assembles the configured transport over g and strat.
func buildTransport(cfg Config, g *graph.Graph, strat rendezvous.Strategy) (cluster.Transport, error) {
	if cfg.ResizeEvery > 0 {
		return buildElasticTransport(cfg, g, strat)
	}
	var rp *strategy.Replicated
	if cfg.Replicas > 1 {
		var err error
		if rp, err = strategy.NewReplicated(strat, cfg.Replicas); err != nil {
			return nil, err
		}
	}
	switch cfg.Transport {
	case "mem":
		if cfg.Weighted {
			w, err := buildWeighted(g.N(), strat, cfg.HotAlpha)
			if err != nil {
				return nil, err
			}
			return cluster.NewWeightedMemTransport(g, w, 0)
		}
		if rp != nil {
			return cluster.NewReplicatedMemTransport(g, rp, 0)
		}
		return cluster.NewMemTransport(g, strat, 0)
	case "sim":
		if cfg.Weighted {
			return nil, fmt.Errorf("-weighted needs -transport mem or net (the sim path runs the base strategy only)")
		}
		opts := core.Options{LocateTimeout: cfg.LocateTO, CollectWindow: cfg.CollectWin}
		if rp != nil {
			return cluster.NewReplicatedSimTransport(g, rp, opts)
		}
		return cluster.NewSimTransport(g, strat, opts)
	case "net":
		if cfg.Addrs == "" {
			return nil, fmt.Errorf("-transport net needs -addrs (boot a cluster with `mmctl up` or mmnode)")
		}
		addrs := strings.Split(cfg.Addrs, ",")
		opts := cfg.netOptions()
		if cfg.Weighted {
			w, err := buildWeighted(g.N(), strat, cfg.HotAlpha)
			if err != nil {
				return nil, err
			}
			return cluster.NewWeightedNetTransport(g, w, addrs, opts)
		}
		if rp != nil {
			return cluster.NewReplicatedNetTransport(g, rp, addrs, opts)
		}
		return cluster.NewNetTransport(g, strat, addrs, opts)
	default:
		return nil, fmt.Errorf("unknown transport %q", cfg.Transport)
	}
}

// buildElasticTransport assembles the epoch-versioned elastic
// transport for the resize-churn scenario: epoch 1 serves the full
// node set (replicated per Replicas); runResizer then alternates the
// membership live.
func buildElasticTransport(cfg Config, g *graph.Graph, strat rendezvous.Strategy) (cluster.Transport, error) {
	ep, err := strategy.NewEpoch(1, g.N(), strat, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	switch cfg.Transport {
	case "mem":
		return cluster.NewElasticMemTransport(g, ep, 0)
	case "sim":
		opts := core.Options{LocateTimeout: cfg.LocateTO, CollectWindow: cfg.CollectWin}
		return cluster.NewElasticSimTransport(g, ep, opts)
	case "net":
		if cfg.Addrs == "" {
			return nil, fmt.Errorf("-transport net needs -addrs or -state (boot a cluster with `mmctl up` or mmnode)")
		}
		return cluster.NewElasticNetTransport(g, ep, strings.Split(cfg.Addrs, ","), cfg.netOptions())
	default:
		return nil, fmt.Errorf("unknown transport %q", cfg.Transport)
	}
}

// buildWeighted assembles the frequency-weighted strategy pair: the
// base strategy plus the (M3′) post-heavy hot split sized for an
// assumed locate:post ratio of alpha.
func buildWeighted(n int, base rendezvous.Strategy, alpha float64) (*strategy.Weighted, error) {
	hot, err := strategy.PostHeavy(n, strategy.AlphaQuerySize(n, alpha))
	if err != nil {
		return nil, err
	}
	return strategy.NewWeighted(base, hot)
}

// readStateAddrs extracts the worker address list from an mmctl state
// file, in partition order.
func readStateAddrs(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var st struct {
		Procs []struct {
			Addr string `json:"addr"`
		} `json:"procs"`
	}
	if err := json.Unmarshal(b, &st); err != nil {
		return nil, err
	}
	if len(st.Procs) == 0 {
		return nil, fmt.Errorf("state file lists no workers")
	}
	addrs := make([]string, len(st.Procs))
	for i, p := range st.Procs {
		addrs[i] = p.Addr
	}
	return addrs, nil
}
