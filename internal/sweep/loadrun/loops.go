package loadrun

import (
	"fmt"
	"io"
	"math/rand"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/strategy"
)

// waitGroupImpl aliases sync.WaitGroup so the engine's chaos-loop
// spawner stays a one-liner at every call site.
type waitGroupImpl = sync.WaitGroup

// Go runs f on its own goroutine tracked by the group.
func (w *waitGroup) Go(f func()) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		f()
	}()
}

// Wait blocks until every spawned loop has returned.
func (w *waitGroup) Wait() { w.wg.Wait() }

// registry guards the per-port server handles against the churn loop.
type registry struct {
	mu      sync.Mutex
	servers []cluster.ServerRef
}

// portPicker returns a per-goroutine port-popularity sampler over the
// precomputed name table. Zipf makes a handful of ports hot — exactly
// the regime coalescing targets.
func portPicker(cfg Config, names []core.Port, workerSeed int64) (func() core.Port, error) {
	rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + workerSeed))
	switch cfg.Workload {
	case "uniform":
		return func() core.Port { return names[rng.Intn(len(names))] }, nil
	case "zipf":
		if cfg.ZipfS <= 1 {
			return nil, fmt.Errorf("zipf-s must be > 1, got %v", cfg.ZipfS)
		}
		if cfg.ZipfV < 1 {
			return nil, fmt.Errorf("zipf-v must be ≥ 1, got %v", cfg.ZipfV)
		}
		z := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(len(names)-1))
		return func() core.Port { return names[z.Uint64()] }, nil
	default:
		return nil, fmt.Errorf("unknown workload %q", cfg.Workload)
	}
}

// closedLoop hammers the cluster from cfg.Concurrency goroutines until
// the deadline; each failed locate is already counted by the metrics.
// With Batch N each worker issues its locates through LocateBatch in
// groups of N (reused request/result slices, shard-grouped store
// access).
func closedLoop(c *cluster.Cluster, cfg Config, names []core.Port, n int, det *forgeDetector) error {
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	errs := make([]error, cfg.Concurrency)
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pick, err := portPicker(cfg, names, int64(w))
			if err != nil {
				errs[w] = err
				return
			}
			rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(w)))
			if cfg.Batch > 0 {
				reqs := make([]cluster.LocateReq, cfg.Batch)
				res := make([]cluster.LocateRes, cfg.Batch)
				for time.Now().Before(deadline) {
					for i := range reqs {
						reqs[i] = cluster.LocateReq{Client: graph.NodeID(rng.Intn(n)), Port: pick()}
					}
					if err := c.LocateBatch(reqs, res); err != nil {
						errs[w] = err
						return
					}
					if det != nil {
						for i := range res {
							det.check(reqs[i].Port, res[i].Entry, res[i].Err)
						}
					}
				}
				return
			}
			for time.Now().Before(deadline) {
				// Batch the deadline check amortization: 64 locates per
				// clock read keeps the loop out of time.Now.
				for i := 0; i < 64; i++ {
					client := graph.NodeID(rng.Intn(n))
					port := pick()
					e, err := c.Locate(client, port)
					if det != nil {
						det.check(port, e, err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// openLoop submits arrivals at cfg.Rate locates/sec onto the cluster's
// shard worker pools, shedding (not queueing) when the pools fall
// behind — the throughput-under-offered-load view.
//
// Pacing is by absolute deadline: the k-th arrival is due at
// start + k/rate, and the loop sleeps until the next arrival's absolute
// due time rather than a fixed relative interval. Relative ticks
// accumulate scheduler drift and drop the final partial interval, which
// undershoots the offered rate (and flatters the shedding stats) once
// the rate climbs past ~100k/s; the absolute schedule self-corrects
// after every oversleep and always issues exactly rate×duration
// arrivals.
func openLoop(c *cluster.Cluster, cfg Config, names []core.Port, n int, det *forgeDetector) error {
	pick, err := portPicker(cfg, names, 0)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed * 17))
	var pending sync.WaitGroup
	start := time.Now()
	total := int(float64(cfg.Rate) * cfg.Duration.Seconds())
	perArrival := float64(time.Second) / float64(cfg.Rate)
	issued := 0
	for issued < total {
		due := int(float64(cfg.Rate) * time.Since(start).Seconds())
		if due > total {
			due = total
		}
		for ; issued < due; issued++ {
			client := graph.NodeID(rng.Intn(n))
			port := pick()
			pending.Add(1)
			if err := c.Submit(client, port, func(e core.Entry, err error) {
				if det != nil {
					det.check(port, e, err)
				}
				pending.Done()
			}); err != nil {
				pending.Done() // shed; already counted in metrics
			}
		}
		if issued >= total {
			break
		}
		next := start.Add(time.Duration(float64(issued+1) * perArrival))
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	pending.Wait()
	return nil
}

// runResizer is the membership-churn loop: every tick it either
// finishes the draining migration (retiring the old epoch) or starts
// the next transition, alternating the active node count between the
// full universe and ResizeTo under a fresh epoch of the configured
// strategy family. It returns the number of transitions begun and the
// last error seen.
func runResizer(c *cluster.Cluster, cfg Config, n int, stop <-chan struct{}) (int64, error) {
	var (
		resizes int64
		lastErr error
	)
	seq := uint64(1)
	toSmall := true
	tick := time.NewTicker(cfg.ResizeEvery)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return resizes, lastErr
		case <-tick.C:
		}
		et, ok := c.Transport().(cluster.ElasticTransport)
		if !ok || !et.Elastic() {
			return resizes, fmt.Errorf("transport %s is not elastic", c.Transport().Name())
		}
		if et.Resizing() {
			if err := c.FinishResize(); err != nil {
				lastErr = err
			}
			continue
		}
		active := n
		if toSmall {
			active = cfg.ResizeTo
		}
		strat, err := buildStrategy(cfg.Strategy, active, cfg.Seed)
		if err != nil {
			return resizes, err
		}
		seq++
		ep, err := strategy.NewEpoch(seq, n, strat, cfg.Replicas)
		if err != nil {
			return resizes, err
		}
		if _, err := c.Resize(ep); err != nil {
			lastErr = err
			continue
		}
		resizes++
		toSmall = !toSmall
	}
}

// watchState polls the mmctl state file and rescales the socket
// transport onto every new layout it publishes — the consumer side of
// `mmctl scale`.
func watchState(tr *cluster.NetTransport, path string, interval time.Duration, stop <-chan struct{}, out io.Writer) {
	last := strings.Join(tr.Addrs(), ",")
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		addrs, err := readStateAddrs(path)
		if err != nil {
			continue // mid-rewrite or gone; retry next tick
		}
		j := strings.Join(addrs, ",")
		if j == last {
			continue
		}
		if err := tr.Rescale(addrs); err != nil {
			fmt.Fprintf(out, "mmload: rescale onto %s failed: %v\n", j, err)
			continue
		}
		last = j
		fmt.Fprintf(out, "mmload: rescaled onto %d node processes\n", len(addrs))
	}
}

// runKiller crashes random rendezvous nodes at cfg.KillRate per
// second, restoring the previous victim before each new kill so one
// node is down at any moment. A restored node comes back with its
// volatile cache lost, so the killer performs the paper's §5 repair
// duty — every server reposts — before the next kill; what remains
// unrepairable is the live outage window, which is exactly what
// replication is measured against: with r=1 the pairs meeting at the
// dead node fail until it returns, with r≥2 they fall through to the
// next family and succeed. Nodes currently hosting a server are spared
// so every failure observed is a rendezvous failure, not a dead
// service. It returns the number of kills issued.
func runKiller(c *cluster.Cluster, reg *registry, cfg Config, n int, stop <-chan struct{}) int64 {
	rng := rand.New(rand.NewSource(cfg.Seed * 7919))
	tr := c.Transport()
	var (
		kills int64
		dead  []graph.NodeID
	)
	tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.KillRate))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			for _, v := range dead {
				_ = tr.Restore(v)
			}
			return kills
		case <-tick.C:
		}
		reg.mu.Lock()
		homes := make(map[graph.NodeID]bool, len(reg.servers))
		for _, ref := range reg.servers {
			homes[ref.Node()] = true
		}
		reg.mu.Unlock()
		victim := graph.NodeID(-1)
		for tries := 0; tries < 64; tries++ {
			v := graph.NodeID(rng.Intn(n))
			if homes[v] || slices.Contains(dead, v) {
				continue
			}
			victim = v
			break
		}
		if victim < 0 {
			continue
		}
		restored := false
		for len(dead) > 0 {
			_ = tr.Restore(dead[0])
			dead = dead[1:]
			restored = true
		}
		if restored {
			// Refill the restored node's wiped cache: the repair duty
			// the net transport's repair loop automates.
			reg.mu.Lock()
			for _, ref := range reg.servers {
				_ = ref.Repost()
			}
			reg.mu.Unlock()
		}
		if err := tr.Crash(victim); err == nil {
			dead = append(dead, victim)
			kills++
		}
	}
}

// runCorruptor is the adversarial half of the corrupt-rate chaos mode:
// at the configured rate it injects one corruption operation — a
// dropped posting, an orphaned duplicate, a stale-epoch address or a
// bit-flipped entry with a poisoned timestamp — through the transport's
// deterministic corruption planner, while the background anti-entropy
// loop races it back to the registration ground truth. Each tick draws
// a fresh plan seed so waves differ but any run is reproducible from
// Seed.
func runCorruptor(antiT cluster.AntiEntropyTransport, cfg Config, stop <-chan struct{}) {
	wave := int64(0)
	tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.CorruptRate))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		wave++
		_, _ = antiT.Corrupt(cluster.CorruptOptions{Seed: cfg.Seed*7907 + wave, Count: 1})
	}
}

// runArmer re-arms the answer-forging adversary at cfg.ByzRate waves
// per second, each wave drawing fresh liars and fresh lies from a
// fresh seed — like runCorruptor, reproducible from Seed. The plan
// replaces the previous wave's wholesale, so the number of
// concurrently lying nodes stays at cfg.Liars.
func runArmer(byzT cluster.ByzantineTransport, cfg Config, stop <-chan struct{}) {
	wave := int64(0)
	tick := time.NewTicker(time.Duration(float64(time.Second) / cfg.ByzRate))
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		wave++
		_, _ = byzT.Arm(cluster.ArmOptions{Seed: cfg.Seed*6053 + wave, Liars: cfg.Liars})
	}
}

// forgeDetector judges surfaced locate answers against registration
// ground truth, counting the lies that reached a client: a port other
// than the one queried, a fabricated instance id (≥ ForgedIDBase), or —
// when no churn moves the servers mid-run — an address that is not the
// port's registered home. With voting on, this count is the harness's
// exit criterion: zero forged answers may surface.
type forgeDetector struct {
	reg    *registry
	idx    map[core.Port]int
	addrOK bool // address ground truth stable (no churn/resize)
	forged atomic.Int64
}

func newForgeDetector(cfg Config, reg *registry, names []core.Port) *forgeDetector {
	idx := make(map[core.Port]int, len(names))
	for i, p := range names {
		idx[p] = i
	}
	return &forgeDetector{reg: reg, idx: idx, addrOK: cfg.Churn == 0 && cfg.ResizeEvery == 0}
}

func (d *forgeDetector) check(port core.Port, e core.Entry, err error) {
	if err != nil {
		return
	}
	if e.Port != port || e.ServerID >= cluster.ForgedIDBase {
		d.forged.Add(1)
		return
	}
	if !d.addrOK {
		return
	}
	i, ok := d.idx[port]
	if !ok {
		return
	}
	d.reg.mu.Lock()
	home := d.reg.servers[i].Node()
	d.reg.mu.Unlock()
	if e.Addr != home {
		d.forged.Add(1)
	}
}

// runChurn tears one service down per tick: deregister, crash the old
// node, re-register at a fresh node, and restore the previous crash
// victim — so at any moment at most one node is down and every service
// keeps moving.
func runChurn(c *cluster.Cluster, reg *registry, cfg Config, n int, stop <-chan struct{}) {
	rng := rand.New(rand.NewSource(cfg.Seed * 101))
	tr := c.Transport()
	lastCrashed := graph.NodeID(-1)
	tick := time.NewTicker(cfg.Churn)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			if lastCrashed >= 0 {
				_ = tr.Restore(lastCrashed)
			}
			return
		case <-tick.C:
		}
		p := rng.Intn(len(reg.servers))
		reg.mu.Lock()
		ref := reg.servers[p]
		oldNode := ref.Node()
		_ = ref.Deregister()
		if lastCrashed >= 0 {
			_ = tr.Restore(lastCrashed)
		}
		_ = tr.Crash(oldNode)
		lastCrashed = oldNode
		newNode := graph.NodeID(rng.Intn(n))
		for newNode == oldNode {
			newNode = graph.NodeID(rng.Intn(n))
		}
		if newRef, err := c.Register(ref.Port(), newNode); err == nil {
			reg.servers[p] = newRef
		}
		reg.mu.Unlock()
	}
}
