package loadrun

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
	"time"

	"matchmake/internal/cluster"
)

// TestReportBytes pins the Result rendering byte for byte against the
// summary cmd/mmload printed before the engine moved here: the
// refactor must not change a single output byte.
func TestReportBytes(t *testing.T) {
	r := &Result{
		Transport: "mem",
		Topology:  "complete",
		Strategy:  "checkerboard",
		Nodes:     64,
		Ports:     16,
		Workload:  "zipf",
		Churn:     50 * time.Millisecond,
		KillRate:  8,
		Kills:     15,

		CorruptRate:   20,
		ReconEvery:    50 * time.Millisecond,
		QuiesceRounds: 3,
		QuiesceIn:     1234567 * time.Nanosecond,

		ResizeEvery: 100 * time.Millisecond,
		ResizeFrom:  64,
		ResizeTo:    48,
		Resizes:     19,
		ResizeErr:   "boom",

		Byzantine:  true,
		ByzRate:    4,
		Liars:      2,
		ArmedLies:  6,
		VoteQuorum: 3,
		Forged:     0,

		AllocsPerLocate: 3.14159,
		Wire: &WireReport{
			FramesPerLocate: 2.5,
			BytesPerLocate:  120.4,
			Coalesced:       1000,
			Floods:          400,
		},
		Metrics: cluster.MetricsSnapshot{
			Locates:         5000,
			Passes:          20000,
			PassesPerLocate: 4,
			Availability:    1,
		},
	}
	var out bytes.Buffer
	r.Report(&out)
	want := "mmload: transport=mem topology=complete nodes=64 strategy=checkerboard ports=16 workload=zipf churn=50ms\n" +
		"mmload: kills=15 (rate 8.00/s, one node down at a time, caches lost)\n" +
		"mmload: chaos corrupt-rate=20.00/s reconcile-interval=50ms: time-to-quiescence=1.235ms (3 rounds after load stop)\n" +
		"mmload: resizes=19 (every 100ms, active 64↔48)\n" +
		"mmload: resize: last error: boom\n" +
		"mmload: byzantine rate=4.00/s liars=2 armed-lies=6 vote-quorum=3 forged=0\n" +
		r.Metrics.String() + "\n" +
		"allocs/locate≈3.14 (process-wide upper bound)\n" +
		"wire: frames/locate=2.50 bytes/locate=120 (tx+rx, all ops in window)\n" +
		"wire: coalesced=1000 locates into 400 shared floods (2.50 locates/flood)\n"
	if got := out.String(); got != want {
		t.Fatalf("report bytes diverged:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestReportMinimal pins the no-chaos rendering: header, metrics and
// allocs only — no kills/corrupt/resize/byzantine/wire lines.
func TestReportMinimal(t *testing.T) {
	r := &Result{
		Transport:       "mem",
		Topology:        "complete",
		Strategy:        "checkerboard",
		Nodes:           16,
		Ports:           4,
		Workload:        "uniform",
		AllocsPerLocate: 1.5,
		Metrics:         cluster.MetricsSnapshot{Locates: 100, Passes: 800, PassesPerLocate: 8},
	}
	var out bytes.Buffer
	r.Report(&out)
	want := "mmload: transport=mem topology=complete nodes=16 strategy=checkerboard ports=4 workload=uniform\n" +
		r.Metrics.String() + "\n" +
		"allocs/locate≈1.50 (process-wide upper bound)\n"
	if got := out.String(); got != want {
		t.Fatalf("report bytes diverged:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

// TestRunMem drives the engine end to end over the in-process
// transport and checks the Result carries a live metrics window.
func TestRunMem(t *testing.T) {
	cfg := Defaults()
	cfg.Nodes = 16
	cfg.Ports = 4
	cfg.Duration = 100 * time.Millisecond
	cfg.Concurrency = 2
	res, err := Run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Locates == 0 {
		t.Fatal("no locates recorded")
	}
	if res.Metrics.Errors != 0 {
		t.Fatalf("errors = %d", res.Metrics.Errors)
	}
	if res.Transport != "mem" || res.Nodes != 16 {
		t.Fatalf("result shape = %s/%d", res.Transport, res.Nodes)
	}
	// The Result must round-trip as machine-readable JSON — the
	// contract cmd/mmsweep records per run.
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Metrics.Locates != res.Metrics.Locates {
		t.Fatalf("JSON round trip lost locates: %d != %d", back.Metrics.Locates, res.Metrics.Locates)
	}
}

// TestRunValidates spot-checks the config validation moved out of the
// flag layer.
func TestRunValidates(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Nodes = 1 }, "at least 2 nodes"},
		{func(c *Config) { c.Replicas = 0 }, "-replicas must be"},
		{func(c *Config) { c.Rate = 100; c.Batch = 8 }, "-batch applies"},
		{func(c *Config) { c.VoteQuorum = 3 }, "needs -replicas"},
		{func(c *Config) { c.Transport = "bogus" }, "unknown transport"},
		{func(c *Config) { c.Workload = "bogus" }, "unknown workload"},
		{func(c *Config) { c.Topo = "bogus" }, "unknown topology"},
		{func(c *Config) { c.Strategy = "bogus" }, "unknown strategy"},
		{func(c *Config) { c.Transport = "gate" }, "-gate-addr"},
	}
	for i, tc := range cases {
		cfg := Defaults()
		cfg.Duration = 10 * time.Millisecond
		tc.mutate(&cfg)
		_, err := Run(cfg, io.Discard)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("case %d: err = %v, want substring %q", i, err, tc.want)
		}
	}
}

// TestRunChaosTallies runs the kill and corruption loops briefly and
// checks their tallies land in the Result.
func TestRunChaosTallies(t *testing.T) {
	cfg := Defaults()
	cfg.Nodes = 16
	cfg.Ports = 4
	cfg.Duration = 300 * time.Millisecond
	cfg.Concurrency = 2
	cfg.Replicas = 2
	cfg.KillRate = 50
	cfg.CorruptRate = 100
	res, err := Run(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kills == 0 {
		t.Fatal("kill loop recorded no kills")
	}
	if res.Metrics.CorruptionsInjected == 0 {
		t.Fatal("corruptor injected nothing")
	}
	if res.QuiesceRounds == 0 {
		t.Fatal("no quiescence drain ran")
	}
	if res.Metrics.Availability < 0.9 {
		t.Fatalf("availability = %v", res.Metrics.Availability)
	}
}
