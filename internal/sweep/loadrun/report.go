package loadrun

import (
	"fmt"
	"io"
	"time"

	"matchmake/internal/cluster"
)

// WireReport carries the wire-level counters for the net and gate
// transports, charged to the measurement window.
type WireReport struct {
	// FramesPerLocate and BytesPerLocate are tx+rx over all operations
	// in the window, divided by the locate count.
	FramesPerLocate float64 `json:"frames_per_locate"`
	BytesPerLocate  float64 `json:"bytes_per_locate"`
	// Coalesced is the number of locates folded into Floods shared wire
	// floods by the coalescer (both zero with coalescing off).
	Coalesced int64 `json:"coalesced"`
	Floods    int64 `json:"floods"`
}

// Result is the typed outcome of one load run: the resolved cluster
// shape, every chaos loop's tally, and the cluster's metrics snapshot.
// It marshals to the per-run JSON cmd/mmsweep records, and Report
// renders it as the exact summary text cmd/mmload prints.
type Result struct {
	Transport string `json:"transport"`
	Topology  string `json:"topology"`
	Strategy  string `json:"strategy"`
	Nodes     int    `json:"nodes"`
	Ports     int    `json:"ports"`
	Workload  string `json:"workload"`

	// Churn is the crash/re-register interval (0 = off).
	Churn time.Duration `json:"churn,omitempty"`
	// KillRate and Kills report the node-crash chaos loop.
	KillRate float64 `json:"kill_rate,omitempty"`
	Kills    int64   `json:"kills,omitempty"`

	// CorruptRate, ReconEvery, QuiesceRounds and QuiesceIn report the
	// state-corruption chaos loop and the post-load anti-entropy drain.
	CorruptRate   float64       `json:"corrupt_rate,omitempty"`
	ReconEvery    time.Duration `json:"reconcile_interval,omitempty"`
	QuiesceRounds int           `json:"quiesce_rounds,omitempty"`
	QuiesceIn     time.Duration `json:"quiesce_in,omitempty"`

	// ResizeEvery, ResizeFrom, ResizeTo, Resizes and ResizeErr report
	// the elastic-membership churn loop.
	ResizeEvery time.Duration `json:"resize_interval,omitempty"`
	ResizeFrom  int           `json:"resize_from,omitempty"`
	ResizeTo    int           `json:"resize_to,omitempty"`
	Resizes     int64         `json:"resizes,omitempty"`
	ResizeErr   string        `json:"resize_err,omitempty"`

	// Byzantine is set when the forge detector ran (ByzRate > 0 or
	// VoteQuorum ≥ 2); Forged is its count of lies that surfaced.
	Byzantine  bool    `json:"byzantine,omitempty"`
	ByzRate    float64 `json:"byzantine_rate,omitempty"`
	Liars      int     `json:"liars,omitempty"`
	ArmedLies  int64   `json:"armed_lies,omitempty"`
	VoteQuorum int     `json:"vote_quorum,omitempty"`
	Forged     int64   `json:"forged"`

	// AllocsPerLocate is the process-wide allocation count over the
	// window divided by locates — an upper bound on the serving path's
	// allocs/op since it includes the harness's own allocations.
	AllocsPerLocate float64 `json:"allocs_per_locate"`

	// Wire is present for transports with wire-level counters.
	Wire *WireReport `json:"wire,omitempty"`

	// Metrics is the cluster's full metrics snapshot for the window.
	Metrics cluster.MetricsSnapshot `json:"metrics"`
}

// Report renders the result as the summary text cmd/mmload has always
// printed, byte for byte.
func (r *Result) Report(out io.Writer) {
	fmt.Fprintf(out, "mmload: transport=%s topology=%s nodes=%d strategy=%s ports=%d workload=%s%s\n",
		r.Transport, r.Topology, r.Nodes, r.Strategy, r.Ports, r.Workload, r.churnSuffix())
	if r.KillRate > 0 {
		fmt.Fprintf(out, "mmload: kills=%d (rate %.2f/s, one node down at a time, caches lost)\n", r.Kills, r.KillRate)
	}
	if r.CorruptRate > 0 {
		fmt.Fprintf(out, "mmload: chaos corrupt-rate=%.2f/s reconcile-interval=%v: time-to-quiescence=%v (%d rounds after load stop)\n",
			r.CorruptRate, r.ReconEvery, r.QuiesceIn.Round(time.Microsecond), r.QuiesceRounds)
	}
	if r.ResizeEvery > 0 {
		fmt.Fprintf(out, "mmload: resizes=%d (every %v, active %d↔%d)\n", r.Resizes, r.ResizeEvery, r.ResizeFrom, r.ResizeTo)
		if r.ResizeErr != "" {
			fmt.Fprintf(out, "mmload: resize: last error: %s\n", r.ResizeErr)
		}
	}
	if r.Byzantine {
		fmt.Fprintf(out, "mmload: byzantine rate=%.2f/s liars=%d armed-lies=%d vote-quorum=%d forged=%d\n",
			r.ByzRate, r.Liars, r.ArmedLies, r.VoteQuorum, r.Forged)
	}
	fmt.Fprintln(out, r.Metrics.String())
	if r.Metrics.Locates > 0 {
		fmt.Fprintf(out, "allocs/locate≈%.2f (process-wide upper bound)\n", r.AllocsPerLocate)
	}
	if r.Wire != nil {
		fmt.Fprintf(out, "wire: frames/locate=%.2f bytes/locate=%.0f (tx+rx, all ops in window)\n",
			r.Wire.FramesPerLocate, r.Wire.BytesPerLocate)
		if r.Wire.Floods > 0 {
			fmt.Fprintf(out, "wire: coalesced=%d locates into %d shared floods (%.2f locates/flood)\n",
				r.Wire.Coalesced, r.Wire.Floods, float64(r.Wire.Coalesced)/float64(r.Wire.Floods))
		}
	}
}

// churnSuffix is the header line's " churn=..." suffix, empty with
// churn off.
func (r *Result) churnSuffix() string {
	if r.Churn <= 0 {
		return ""
	}
	return fmt.Sprintf(" churn=%v", r.Churn)
}
