package sweep

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Table block names recognized inside <!-- mmsweep:begin NAME --> /
// <!-- mmsweep:end NAME --> marker pairs in EXPERIMENTS.md.
const (
	TableAvailability = "availability"
	TableByzantine    = "byzantine"
	TableCorruption   = "corruption"
	TableThroughput   = "throughput"
)

// GenerateTables renders the measured markdown blocks from a sweep's
// run records, keyed by block name. Records route to at most one
// table by their scenario's fault model:
//
//   - availability: in-process kill chaos only (the kill-rate × r
//     table);
//   - byzantine: r ≥ 2 in-process with no kill/corrupt/resize chaos —
//     voted and first-answer configurations side by side, honest and
//     lying;
//   - corruption: in-process corruption chaos (time-to-quiescence
//     table);
//   - throughput: plain runs of any transport, one line per scenario.
//
// Process-cluster (net/gate) chaos runs are gated but not tabled:
// their numbers measure the wire, not the match-making economics the
// mem tables isolate, and mixing transports in one table would blur
// both. Every block ends with a provenance comment naming the
// recording toolchain, so a regenerated doc always says where its
// numbers came from.
func GenerateTables(recs []*RunRecord, env Env) map[string]string {
	var avail, byz, corr, thr []*RunRecord
	for _, r := range recs {
		if r.Result == nil {
			continue
		}
		s := r.Scenario
		plain := s.KillRate == 0 && s.CorruptRate == 0 && s.ByzRate == 0 &&
			s.VoteQuorum == 0 && s.ResizeEvery == 0
		overWire := s.Transport == "net" || s.Transport == "gate"
		switch {
		case overWire && plain:
			thr = append(thr, r)
		case overWire:
			// Gates only: chaos economics are measured in-process.
		case s.KillRate > 0 && s.CorruptRate == 0 && s.ByzRate == 0 && s.VoteQuorum == 0 && s.ResizeEvery == 0:
			avail = append(avail, r)
		case s.CorruptRate > 0 && s.ByzRate == 0 && s.VoteQuorum == 0:
			corr = append(corr, r)
		case s.KillRate == 0 && s.CorruptRate == 0 && s.ResizeEvery == 0 && s.Replicas >= 2 && !s.Hints && s.Batch == 0:
			byz = append(byz, r)
		case plain:
			thr = append(thr, r)
		}
	}
	stamp := fmt.Sprintf("<!-- measured by mmsweep · %s %s/%s -->\n", env.GoVersion, env.OS, env.Arch)
	out := make(map[string]string, 4)
	if len(avail) > 0 {
		out[TableAvailability] = availabilityTable(avail) + stamp
	}
	if len(byz) > 0 {
		out[TableByzantine] = byzantineTable(byz) + stamp
	}
	if len(corr) > 0 {
		out[TableCorruption] = corruptionTable(corr) + stamp
	}
	if len(thr) > 0 {
		out[TableThroughput] = throughputBlock(thr) + stamp
	}
	return out
}

// availabilityTable is the kill-rate × r table: the paper's
// replication economics measured.
func availabilityTable(recs []*RunRecord) string {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Scenario, recs[j].Scenario
		if a.KillRate != b.KillRate {
			return a.KillRate < b.KillRate
		}
		if a.Replicas != b.Replicas {
			return a.Replicas < b.Replicas
		}
		return recs[i].Scenario.Name < recs[j].Scenario.Name
	})
	var b strings.Builder
	b.WriteString("| kill rate | r | availability | not-found | fallthroughs | passes/locate |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range recs {
		s, m := r.Scenario, r.Result.Metrics
		fall := "—"
		if s.Replicas >= 2 {
			fall = comma(m.ReplicaFallthroughs)
		}
		fmt.Fprintf(&b, "| %g/s | %d | %.4f | %s | %s | %.2f |\n",
			s.KillRate, replicasOf(s), m.Availability, comma(m.NotFound), fall, m.PassesPerLocate)
	}
	return b.String()
}

// byzantineTable is the answer-voting cost/integrity table.
func byzantineTable(recs []*RunRecord) string {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Scenario, recs[j].Scenario
		if a.Replicas != b.Replicas {
			return a.Replicas < b.Replicas
		}
		if a.VoteQuorum != b.VoteQuorum {
			return a.VoteQuorum < b.VoteQuorum
		}
		if a.ByzRate != b.ByzRate {
			return a.ByzRate < b.ByzRate
		}
		return a.Name < b.Name
	})
	var b strings.Builder
	b.WriteString("| configuration | throughput | passes/locate | availability | forged surfaced |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range recs {
		s, m := r.Scenario, r.Result.Metrics
		cfg := fmt.Sprintf("r=%d, ", replicasOf(s))
		switch {
		case s.VoteQuorum > 0:
			cfg += fmt.Sprintf("vote quorum %d", s.VoteQuorum)
		case s.ByzRate > 0:
			cfg += "no voting"
		default:
			cfg += "first-answer fallthrough"
		}
		if s.ByzRate > 0 {
			cfg += fmt.Sprintf(", f=%d liar re-armed %g/s", liarsOf(s), s.ByzRate)
		} else {
			cfg += ", honest"
		}
		forged := "n/a"
		switch {
		case s.VoteQuorum > 0 && s.ByzRate > 0:
			forged = fmt.Sprintf("**%s** (conflicts=%s", comma(r.Result.Forged), comma(m.VoteConflicts))
			if m.SuspectedNodes > 0 {
				forged += fmt.Sprintf(", suspected=%d", m.SuspectedNodes)
			}
			forged += ")"
		case s.VoteQuorum > 0:
			forged = comma(r.Result.Forged)
		case s.ByzRate > 0:
			forged = fmt.Sprintf("**%s**", comma(r.Result.Forged))
		}
		fmt.Fprintf(&b, "| %s | ~%sk locates/sec | %.2f | %.4f | %s |\n",
			cfg, comma(int64(m.QPS/1000+0.5)), m.PassesPerLocate, m.Availability, forged)
	}
	return b.String()
}

// corruptionTable is the anti-entropy time-to-quiescence table.
func corruptionTable(recs []*RunRecord) string {
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i].Scenario, recs[j].Scenario
		if a.CorruptRate != b.CorruptRate {
			return a.CorruptRate < b.CorruptRate
		}
		if a.Replicas != b.Replicas {
			return a.Replicas < b.Replicas
		}
		return a.Name < b.Name
	})
	var b strings.Builder
	b.WriteString("| corrupt rate | r | injected | repaired | drain rounds | time-to-quiescence | availability |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range recs {
		s, m := r.Scenario, r.Result.Metrics
		fmt.Fprintf(&b, "| %g/s | %d | %s | %s | %d | %v | %.4f |\n",
			s.CorruptRate, replicasOf(s), comma(m.CorruptionsInjected), comma(m.RepairedPosts),
			r.Result.QuiesceRounds, r.Result.QuiesceIn.Round(time.Microsecond), m.Availability)
	}
	return b.String()
}

// throughputBlock is the plain-run throughput code block, one line per
// scenario.
func throughputBlock(recs []*RunRecord) string {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Scenario.Name < recs[j].Scenario.Name })
	width := 0
	for _, r := range recs {
		if len(r.Scenario.Name) > width {
			width = len(r.Scenario.Name)
		}
	}
	var b strings.Builder
	b.WriteString("```\n")
	for _, r := range recs {
		m := r.Result.Metrics
		fmt.Fprintf(&b, "%-*s  %9s locates/sec  %5.2f passes/locate  availability=%.4f\n",
			width, r.Scenario.Name, comma(int64(m.QPS+0.5)), m.PassesPerLocate, m.Availability)
	}
	b.WriteString("```\n")
	return b.String()
}

// replicasOf reports the scenario's effective replica count (loadrun
// defaults unset to 1).
func replicasOf(s Scenario) int {
	if s.Replicas == 0 {
		return 1
	}
	return s.Replicas
}

// liarsOf reports the scenario's effective liar count (loadrun
// defaults unset to 1).
func liarsOf(s Scenario) int {
	if s.Liars == 0 {
		return 1
	}
	return s.Liars
}

// comma renders n with thousands separators (12345 → "12,345").
func comma(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	for i := len(s) - 3; i > 0; i -= 3 {
		s = s[:i] + "," + s[i:]
	}
	if neg {
		s = "-" + s
	}
	return s
}

const (
	beginPrefix = "<!-- mmsweep:begin "
	endPrefix   = "<!-- mmsweep:end "
	markerClose = " -->"
)

// UpdateDoc replaces the body of every mmsweep marker block in doc
// with its generated table, leaving the markers and all surrounding
// prose untouched. Every block in the doc must have a generated
// table, and every marker pair must be well formed — a sweep too
// narrow to regenerate a block is an error, not a silent stale table.
func UpdateDoc(doc []byte, tables map[string]string) ([]byte, error) {
	s := string(doc)
	var out strings.Builder
	for {
		i := strings.Index(s, beginPrefix)
		if i < 0 {
			out.WriteString(s)
			break
		}
		rest := s[i+len(beginPrefix):]
		j := strings.Index(rest, markerClose)
		if j < 0 {
			return nil, fmt.Errorf("unterminated %q marker", strings.TrimSpace(beginPrefix))
		}
		name := rest[:j]
		end := endPrefix + name + markerClose
		k := strings.Index(rest, end)
		if k < 0 {
			return nil, fmt.Errorf("mmsweep block %q has no end marker", name)
		}
		tbl, ok := tables[name]
		if !ok {
			return nil, fmt.Errorf("doc has mmsweep block %q but the sweep generated no such table", name)
		}
		out.WriteString(s[:i])
		out.WriteString(beginPrefix + name + markerClose + "\n")
		out.WriteString(tbl)
		out.WriteString(end)
		s = rest[k+len(end):]
	}
	return []byte(out.String()), nil
}
