package sweep

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"matchmake/internal/sweep/procctl"
)

// TestMain lets procctl.Spawn re-exec this test binary as a node
// worker, so net scenarios in the runner tests use real processes.
func TestMain(m *testing.M) {
	procctl.MaybeWorker()
	os.Exit(m.Run())
}

// TestRunSweepMem drives a small mem-only matrix end to end and
// checks the results directory contract: one record per run, an
// index, and passing gates.
func TestRunSweepMem(t *testing.T) {
	m := &Matrix{
		Defaults: Scenario{
			Nodes:    16,
			Ports:    4,
			Duration: Duration(100 * time.Millisecond),
			Seed:     7,
		},
		Dims: Dims{
			Transport: []string{"mem"},
			Replicas:  []int{1, 2},
			KillRate:  []float64{0, 20},
		},
	}
	dir := t.TempDir()
	var out bytes.Buffer
	idx, err := Run(m, Options{ResultsDir: dir, Gate: true, Out: &out})
	if err != nil {
		t.Fatalf("sweep: %v\n%s", err, out.String())
	}
	if idx.Scenarios != 4 || idx.Passed != 4 || idx.Failed != 0 {
		t.Fatalf("index = %+v", idx)
	}
	recs, err := ReadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("records = %d", len(recs))
	}
	for _, rec := range recs {
		if rec.Result == nil || rec.Result.Metrics.Locates == 0 {
			t.Fatalf("empty result for %s", rec.Scenario.Name)
		}
		if rec.Gate == nil || !rec.Gate.Pass {
			t.Fatalf("gates for %s: %+v", rec.Scenario.Name, rec.Gate)
		}
	}
	back, err := ReadIndex(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.Passed != 4 || len(back.Runs) != 4 {
		t.Fatalf("index round trip = %+v", back)
	}
	if !strings.Contains(out.String(), "[4/4]") {
		t.Fatalf("progress output missing:\n%s", out.String())
	}
	// The records feed the table generator directly.
	tables := GenerateTables(recs, HostEnv("test"))
	if tables[TableAvailability] == "" || tables[TableThroughput] == "" {
		t.Fatalf("tables = %v", tables)
	}
}

// TestRunSweepNet runs one net scenario over a spawned node-process
// cluster — the sweep's real-cluster path end to end.
func TestRunSweepNet(t *testing.T) {
	if testing.Short() {
		t.Skip("process cluster: skipped in -short")
	}
	m := &Matrix{
		Scenarios: []Scenario{{
			Name:      "net-smoke",
			Transport: "net",
			Nodes:     12,
			Ports:     4,
			Procs:     3,
			Replicas:  2,
			Duration:  Duration(300 * time.Millisecond),
			Seed:      7,
		}},
	}
	dir := t.TempDir()
	var out bytes.Buffer
	idx, err := Run(m, Options{ResultsDir: dir, Gate: true, Out: &out})
	if err != nil {
		t.Fatalf("sweep: %v\n%s", err, out.String())
	}
	if idx.Passed != 1 {
		t.Fatalf("index = %+v\n%s", idx, out.String())
	}
	recs, err := ReadRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := recs[0].Result
	// The transport self-reports its replicated name ("net-r2").
	if res == nil || !strings.HasPrefix(res.Transport, "net") || res.Metrics.Locates == 0 {
		t.Fatalf("net record = %+v", recs[0])
	}
	if res.Wire == nil || res.Wire.FramesPerLocate <= 0 {
		t.Fatalf("net run recorded no wire counters: %+v", res.Wire)
	}
}

// TestRunSweepGateFailure checks a failing gate fails the sweep but
// still writes every record.
func TestRunSweepGateFailure(t *testing.T) {
	m := &Matrix{
		// r=2 with no chaos asserts not-found == 0; an impossible
		// quorum cannot be used (skipped), so force a miss instead:
		// more replicas than a 4-node ring can host distinct families
		// still resolves, so use a scenario that genuinely errors — a
		// bogus strategy, which fails the run itself.
		Scenarios: []Scenario{{
			Name:     "broken",
			Strategy: "bogus",
			Duration: Duration(50 * time.Millisecond),
		}},
	}
	dir := t.TempDir()
	idx, err := Run(m, Options{ResultsDir: dir, Gate: true})
	if err == nil {
		t.Fatal("want sweep failure")
	}
	if idx == nil || idx.Failed != 1 {
		t.Fatalf("index = %+v", idx)
	}
	recs, readErr := ReadRecords(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if recs[0].Err == "" {
		t.Fatalf("record error not recorded: %+v", recs[0])
	}
	if _, statErr := os.Stat(filepath.Join(dir, "index.json")); statErr != nil {
		t.Fatalf("index not written on failure: %v", statErr)
	}
}
