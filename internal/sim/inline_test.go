package sim

import (
	"sync/atomic"
	"testing"

	"matchmake/internal/graph"
	"matchmake/internal/topology"
)

// TestInlineHandlers checks that inline delivery preserves semantics:
// every message is handled, hop accounting is unchanged, and handlers
// may still issue one-way sends from inside a delivery.
func TestInlineHandlers(t *testing.T) {
	g := topology.Complete(8)
	net, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	net.SetInlineHandlers(true)

	var echoed atomic.Int64
	var received atomic.Int64
	// Node 1 echoes every payload back to node 0 with a one-way send.
	if err := net.SetHandler(1, func(self graph.NodeID, msg Message) {
		received.Add(1)
		if err := net.Send(self, 0, msg.Payload); err != nil {
			t.Errorf("echo send: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := net.SetHandler(0, func(self graph.NodeID, msg Message) {
		echoed.Add(1)
	}); err != nil {
		t.Fatal(err)
	}

	const msgs = 100
	for i := 0; i < msgs; i++ {
		if err := net.Send(0, 1, i); err != nil {
			t.Fatal(err)
		}
	}
	net.Drain()
	if received.Load() != msgs || echoed.Load() != msgs {
		t.Fatalf("received %d, echoed %d; want %d each", received.Load(), echoed.Load(), msgs)
	}
	// Complete graph: each send is 1 hop, each echo 1 hop.
	if hops := net.Hops(); hops != 2*msgs {
		t.Fatalf("hops = %d; want %d", hops, 2*msgs)
	}

	// Switching back re-enables goroutine-per-delivery semantics.
	net.SetInlineHandlers(false)
	if err := net.Send(0, 1, "again"); err != nil {
		t.Fatal(err)
	}
	net.Drain()
	if received.Load() != msgs+1 {
		t.Fatalf("received %d after mode switch; want %d", received.Load(), msgs+1)
	}
}
