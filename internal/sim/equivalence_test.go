package sim

import (
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"

	"matchmake/internal/graph"
	"matchmake/internal/topology"
)

func atomicAdd(p *int64, v int64) { atomic.AddInt64(p, v) }

func atomicLoad(p *int64) int64 { return atomic.LoadInt64(p) }

// TestMulticastHopsMatchGraphModel cross-validates the live simulator
// against the analytic cost model in internal/graph: flooding the same
// target set must cost exactly MulticastCost hops.
func TestMulticastHopsMatchGraphModel(t *testing.T) {
	f := func(seed uint64, srcRaw uint8) bool {
		g, err := topology.RandomConnected(32, 16, seed)
		if err != nil {
			return false
		}
		routing, err := graph.NewRouting(g)
		if err != nil {
			return false
		}
		net, err := New(g)
		if err != nil {
			return false
		}
		defer net.Close()
		src := graph.NodeID(int(srcRaw) % 32)
		targets := []graph.NodeID{1, 9, 17, 25, 31}
		want, err := routing.MulticastCost(src, targets)
		if err != nil {
			return false
		}
		if _, err := net.Multicast(src, targets, "x"); err != nil {
			return false
		}
		net.Drain()
		return net.Hops() == int64(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSendHopsMatchRoutingDistance cross-validates unicast accounting.
func TestSendHopsMatchRoutingDistance(t *testing.T) {
	g, err := topology.RandomConnected(48, 24, 5)
	if err != nil {
		t.Fatalf("RandomConnected: %v", err)
	}
	routing, err := graph.NewRouting(g)
	if err != nil {
		t.Fatalf("NewRouting: %v", err)
	}
	net, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer net.Close()
	for u := 0; u < 48; u += 5 {
		for v := 0; v < 48; v += 7 {
			net.ResetCounters()
			if err := net.Send(graph.NodeID(u), graph.NodeID(v), "x"); err != nil {
				t.Fatalf("Send %d->%d: %v", u, v, err)
			}
			want := int64(routing.Dist(graph.NodeID(u), graph.NodeID(v)))
			if net.Hops() != want {
				t.Fatalf("Send %d->%d: hops %d, want %d", u, v, net.Hops(), want)
			}
		}
	}
	net.Drain()
}

// TestMulticastIdempotentTargets checks that duplicate targets do not
// double-charge tree edges.
func TestMulticastIdempotentTargets(t *testing.T) {
	g, err := topology.Line(6)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	net, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer net.Close()
	reached, err := net.Multicast(0, []graph.NodeID{5, 5, 3, 3}, "x")
	if err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	net.Drain()
	if net.Hops() != 5 {
		t.Fatalf("hops = %d, want 5 (edges paid once)", net.Hops())
	}
	// Duplicate targets are each delivered (the caller asked twice).
	if reached != 4 {
		t.Fatalf("reached = %d, want 4", reached)
	}
}

// TestManyPortsManyServersStress floods the simulator with concurrent
// multicast posts and verifies global accounting stays consistent.
func TestManyPortsManyServersStress(t *testing.T) {
	gr, err := topology.NewTorus(8, 8)
	if err != nil {
		t.Fatalf("NewTorus: %v", err)
	}
	net, err := New(gr.G)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer net.Close()
	var delivered [64]int64
	for v := 0; v < 64; v++ {
		v := v
		if err := net.SetHandler(graph.NodeID(v), func(self graph.NodeID, msg Message) {
			// Handlers may run concurrently per node; use the atomic add.
			atomicAdd(&delivered[v], 1)
		}); err != nil {
			t.Fatalf("SetHandler: %v", err)
		}
	}
	for s := 0; s < 64; s++ {
		row := gr.Row(s / 8)
		if _, err := net.Multicast(graph.NodeID(s), row, fmt.Sprintf("post-%d", s)); err != nil {
			t.Fatalf("Multicast: %v", err)
		}
	}
	net.Drain()
	var total int64
	for v := range delivered {
		total += atomicLoad(&delivered[v])
	}
	// 64 posts × 8 row nodes = 512 deliveries.
	if total != 512 {
		t.Fatalf("delivered = %d, want 512", total)
	}
}
