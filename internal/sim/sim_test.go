package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"matchmake/internal/graph"
	"matchmake/internal/topology"
)

const callTimeout = 5 * time.Second

func lineNet(t *testing.T, n int) *Network {
	t.Helper()
	g, err := topology.Line(n)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	net, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(net.Close)
	return net
}

// recorder collects delivered payloads at a node.
type recorder struct {
	mu   sync.Mutex
	got  []any
	from []graph.NodeID
}

func (r *recorder) handler(_ graph.NodeID, msg Message) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.got = append(r.got, msg.Payload)
	r.from = append(r.from, msg.From)
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func TestSendCountsHops(t *testing.T) {
	net := lineNet(t, 5)
	var rec recorder
	if err := net.SetHandler(4, rec.handler); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	if err := net.Send(0, 4, "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Drain()
	if rec.count() != 1 {
		t.Fatalf("delivered %d messages, want 1", rec.count())
	}
	if net.Hops() != 4 {
		t.Fatalf("hops = %d, want 4", net.Hops())
	}
	if net.Messages() != 1 {
		t.Fatalf("messages = %d, want 1", net.Messages())
	}
}

func TestSendToSelf(t *testing.T) {
	net := lineNet(t, 3)
	var rec recorder
	if err := net.SetHandler(1, rec.handler); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	if err := net.Send(1, 1, "loop"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Drain()
	if rec.count() != 1 || net.Hops() != 0 {
		t.Fatalf("delivered=%d hops=%d, want 1,0", rec.count(), net.Hops())
	}
}

func TestSendInvalidNode(t *testing.T) {
	net := lineNet(t, 3)
	if err := net.Send(0, 9, "x"); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
}

func TestSendThroughCrashedNode(t *testing.T) {
	net := lineNet(t, 5)
	var rec recorder
	if err := net.SetHandler(4, rec.handler); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	if err := net.Crash(2); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	err := net.Send(0, 4, "blocked")
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	net.Drain()
	if rec.count() != 0 {
		t.Fatal("message should not be delivered through a crash")
	}
	// Hops up to the crash are still paid: 0->1->2 = 2 hops.
	if net.Hops() != 2 {
		t.Fatalf("hops = %d, want 2 (paid up to the crash)", net.Hops())
	}
	if net.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", net.Dropped())
	}
}

func TestCrashedSourceCannotSend(t *testing.T) {
	net := lineNet(t, 3)
	if err := net.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := net.Send(0, 2, "x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if err := net.Restore(0); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := net.Send(0, 2, "x"); err != nil {
		t.Fatalf("Send after restore: %v", err)
	}
}

func TestCrashedNodeDoesNotProcess(t *testing.T) {
	net := lineNet(t, 3)
	var rec recorder
	if err := net.SetHandler(2, rec.handler); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	// Crash after routing but before processing is impossible to schedule
	// deterministically; crash first and verify traverse rejects at the
	// destination.
	if err := net.Crash(2); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := net.Send(0, 2, "x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	net.Drain()
	if rec.count() != 0 {
		t.Fatal("crashed node processed a message")
	}
}

func TestMulticastSharesPathEdges(t *testing.T) {
	net := lineNet(t, 6)
	var rec recorder
	for _, v := range []graph.NodeID{3, 4, 5} {
		if err := net.SetHandler(v, rec.handler); err != nil {
			t.Fatalf("SetHandler: %v", err)
		}
	}
	reached, err := net.Multicast(0, []graph.NodeID{3, 4, 5}, "post")
	if err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	net.Drain()
	if reached != 3 || rec.count() != 3 {
		t.Fatalf("reached=%d delivered=%d, want 3,3", reached, rec.count())
	}
	// Tree edges 0-1,1-2,2-3,3-4,4-5 paid once each.
	if net.Hops() != 5 {
		t.Fatalf("hops = %d, want 5", net.Hops())
	}
}

func TestMulticastSkipsBlockedTargets(t *testing.T) {
	net := lineNet(t, 6)
	var rec recorder
	for _, v := range []graph.NodeID{1, 5} {
		if err := net.SetHandler(v, rec.handler); err != nil {
			t.Fatalf("SetHandler: %v", err)
		}
	}
	if err := net.Crash(3); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	reached, err := net.Multicast(0, []graph.NodeID{1, 5}, "post")
	if err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	net.Drain()
	if reached != 1 || rec.count() != 1 {
		t.Fatalf("reached=%d delivered=%d, want 1,1", reached, rec.count())
	}
	if net.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", net.Dropped())
	}
}

func TestMulticastFromCrashed(t *testing.T) {
	net := lineNet(t, 3)
	if err := net.Crash(0); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := net.Multicast(0, []graph.NodeID{1}, "x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
}

func TestMulticastSelfOnly(t *testing.T) {
	net := lineNet(t, 3)
	var rec recorder
	if err := net.SetHandler(1, rec.handler); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	reached, err := net.Multicast(1, []graph.NodeID{1}, "self")
	if err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	net.Drain()
	if reached != 1 || net.Hops() != 0 {
		t.Fatalf("reached=%d hops=%d, want 1,0", reached, net.Hops())
	}
}

func TestCallRoundTrip(t *testing.T) {
	net := lineNet(t, 4)
	err := net.SetHandler(3, func(self graph.NodeID, msg Message) {
		if !msg.CanReply() {
			return
		}
		if err := msg.Reply("pong"); err != nil {
			t.Errorf("Reply: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	got, err := net.Call(0, 3, "ping", callTimeout)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if got != "pong" {
		t.Fatalf("reply = %v, want pong", got)
	}
	// 3 hops out, 3 hops back.
	if net.Hops() != 6 {
		t.Fatalf("hops = %d, want 6", net.Hops())
	}
}

func TestCallTimeout(t *testing.T) {
	net := lineNet(t, 3)
	// Handler never replies.
	if err := net.SetHandler(2, func(graph.NodeID, Message) {}); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	_, err := net.Call(0, 2, "ping", 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestReplyToOneWayFails(t *testing.T) {
	net := lineNet(t, 3)
	var replyErr atomic.Value
	err := net.SetHandler(2, func(self graph.NodeID, msg Message) {
		replyErr.Store(msg.Reply("nope"))
	})
	if err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	if err := net.Send(0, 2, "oneway"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Drain()
	if v := replyErr.Load(); v == nil {
		t.Fatal("reply error not recorded")
	} else if v.(error) == nil {
		t.Fatal("Reply on one-way message should fail")
	}
}

func TestHandlerForwarding(t *testing.T) {
	// Node 1 forwards everything to node 2; chained in-flight accounting
	// must keep Drain correct.
	net := lineNet(t, 3)
	var rec recorder
	if err := net.SetHandler(2, rec.handler); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	err := net.SetHandler(1, func(self graph.NodeID, msg Message) {
		if err := net.Send(self, 2, msg.Payload); err != nil {
			t.Errorf("forward: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	if err := net.Send(0, 1, "relay"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Drain()
	if rec.count() != 1 {
		t.Fatalf("delivered %d, want 1", rec.count())
	}
	if net.Hops() != 2 {
		t.Fatalf("hops = %d, want 2", net.Hops())
	}
}

func TestResetCounters(t *testing.T) {
	net := lineNet(t, 3)
	if err := net.Send(0, 2, "x"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	net.Drain()
	net.ResetCounters()
	if net.Hops() != 0 || net.Messages() != 0 || net.Dropped() != 0 {
		t.Fatal("counters not reset")
	}
}

func TestClosedNetworkRejectsSends(t *testing.T) {
	g, err := topology.Line(3)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	net, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	net.Close()
	if err := net.Send(0, 2, "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := net.Call(0, 2, "x", callTimeout); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if _, err := net.Multicast(0, []graph.NodeID{2}, "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	net.Close() // double close is safe
}

func TestRebuildRoutingDetours(t *testing.T) {
	// A 2x3 grid: 0-1-2 / 3-4-5. Crash node 1; the static route 0→2 via 1
	// is blocked until the tables reconverge around the bottom row.
	gr, err := topology.NewGrid(2, 3)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	net, err := New(gr.G)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer net.Close()
	var rec recorder
	if err := net.SetHandler(2, rec.handler); err != nil {
		t.Fatalf("SetHandler: %v", err)
	}
	if err := net.Crash(1); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := net.Send(0, 2, "x"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale-route err = %v, want ErrCrashed", err)
	}
	if err := net.RebuildRouting(); err != nil {
		t.Fatalf("RebuildRouting: %v", err)
	}
	net.ResetCounters()
	if err := net.Send(0, 2, "x"); err != nil {
		t.Fatalf("Send after rebuild: %v", err)
	}
	net.Drain()
	if rec.count() != 1 {
		t.Fatal("message not delivered after rebuild")
	}
	// Detour 0→3→4→5→2 costs 4 hops.
	if net.Hops() != 4 {
		t.Fatalf("detour hops = %d, want 4", net.Hops())
	}
	// Restoring the node and rebuilding again shortens the route back.
	if err := net.Restore(1); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if err := net.RebuildRouting(); err != nil {
		t.Fatalf("RebuildRouting: %v", err)
	}
	net.ResetCounters()
	if err := net.Send(0, 2, "x"); err != nil {
		t.Fatalf("Send after restore: %v", err)
	}
	net.Drain()
	if net.Hops() != 2 {
		t.Fatalf("restored hops = %d, want 2", net.Hops())
	}
}

func TestRebuildRoutingPartition(t *testing.T) {
	// Crashing the middle of a path partitions the survivors; rebuild
	// succeeds but cross-partition routes stay impossible.
	net := lineNet(t, 5)
	if err := net.Crash(2); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := net.RebuildRouting(); err != nil {
		t.Fatalf("RebuildRouting: %v", err)
	}
	if err := net.Send(0, 4, "x"); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute across the partition", err)
	}
	// Within a surviving side, traffic flows.
	if err := net.Send(0, 1, "x"); err != nil {
		t.Fatalf("Send within partition: %v", err)
	}
}

func TestConcurrentTraffic(t *testing.T) {
	g := topology.Complete(16)
	net, err := New(g)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer net.Close()
	var delivered atomic.Int64
	for v := 0; v < 16; v++ {
		if err := net.SetHandler(graph.NodeID(v), func(graph.NodeID, Message) {
			delivered.Add(1)
		}); err != nil {
			t.Fatalf("SetHandler: %v", err)
		}
	}
	var wg sync.WaitGroup
	for s := 0; s < 16; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for d := 0; d < 16; d++ {
				if err := net.Send(graph.NodeID(s), graph.NodeID(d), s*16+d); err != nil {
					t.Errorf("Send: %v", err)
				}
			}
		}(s)
	}
	wg.Wait()
	net.Drain()
	if delivered.Load() != 256 {
		t.Fatalf("delivered = %d, want 256", delivered.Load())
	}
	// Hops on a complete graph: 240 off-diagonal sends × 1 hop.
	if net.Hops() != 240 {
		t.Fatalf("hops = %d, want 240", net.Hops())
	}
}

func TestGridMulticastRowCost(t *testing.T) {
	// Posting along a 1×q row of a grid costs q−1 passes from the row's
	// end; from the middle it still costs q−1 (tree = the row).
	gr, err := topology.NewGrid(4, 7)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	net, err := New(gr.G)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer net.Close()
	row := gr.Row(2)
	src := gr.At(2, 3) // middle of the row
	if _, err := net.Multicast(src, row, "post"); err != nil {
		t.Fatalf("Multicast: %v", err)
	}
	net.Drain()
	if net.Hops() != 6 {
		t.Fatalf("row multicast hops = %d, want q-1 = 6", net.Hops())
	}
}
