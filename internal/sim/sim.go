// Package sim provides the store-and-forward message-passing substrate the
// locate engines run on: one goroutine per network node, hop-by-hop
// forwarding along shortest-path routing tables, exact message-pass
// accounting, node crash injection and request/reply calls.
//
// The simulator counts cost exactly as the paper does: a message pass (or
// hop) is "the sending of a message from one node to one of its direct
// neighbors". Unicasts cost their path length; multicasts flood the union
// of shortest paths (the spanning-tree broadcast of §2.3.5) and cost one
// pass per tree edge.
package sim

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/graph"
)

// Errors returned by network operations.
var (
	// ErrCrashed reports a send from or to a crashed node.
	ErrCrashed = errors.New("sim: node crashed")
	// ErrNoRoute reports an unreachable or crash-blocked destination.
	ErrNoRoute = errors.New("sim: no route")
	// ErrClosed reports use of a closed network.
	ErrClosed = errors.New("sim: network closed")
	// ErrTimeout reports an expired Call.
	ErrTimeout = errors.New("sim: call timed out")
)

// Message is a delivered network message.
type Message struct {
	From    graph.NodeID
	To      graph.NodeID
	Payload any

	reply chan any // non-nil for Call requests
	net   *Network
}

// CanReply reports whether the message came from Call and expects a reply.
func (m *Message) CanReply() bool { return m.reply != nil }

// Reply routes a response back to the caller, paying the return-path hops.
// It is a no-op error if the message did not come from Call.
func (m *Message) Reply(payload any) error {
	if m.reply == nil {
		return fmt.Errorf("sim: reply to one-way message")
	}
	// The reply travels back through the network and pays for its hops.
	if _, err := m.net.traverse(m.To, m.From); err != nil {
		return err
	}
	select {
	case m.reply <- payload:
	default:
		// Caller already timed out; drop silently like a real network.
	}
	return nil
}

// Handler processes messages delivered to a node. By default each
// delivery runs in its own goroutine, so handlers of one node may run
// concurrently — a node is a processor with internal concurrency, not a
// single thread. This is what lets a server process block inside a
// handler on a nested request/locate (§1.3's hierarchy of services)
// while the same node keeps answering name-server traffic. Handlers
// must synchronize shared state. Note that a network switched to
// SetInlineHandlers(true) — as the cluster layer's SimTransport does to
// its own network — revokes the may-block allowance: there, handlers
// run on the node's delivery loop and must never wait for a message
// delivered to their own node.
type Handler func(self graph.NodeID, msg Message)

// Network is a running simulation over a fixed graph. Create with New,
// install handlers, then exchange messages; Close stops all node
// goroutines.
type Network struct {
	g       *graph.Graph
	routing atomic.Pointer[graph.Routing]

	nodes   []*node
	crashed []atomic.Bool

	hops     atomic.Int64 // total message passes, the paper's cost measure
	messages atomic.Int64 // total messages injected
	dropped  atomic.Int64 // messages lost to crashes / no route

	// inflight counts undelivered or in-handler messages. It is a
	// cond-guarded counter rather than a WaitGroup because senders keep
	// injecting messages while other goroutines Drain: a WaitGroup
	// forbids Add racing Wait across zero, a condition variable does
	// not. Drain therefore means "the network was quiescent at some
	// instant", which is all a concurrent serving layer can ask for.
	inflightMu   sync.Mutex
	inflightCond *sync.Cond
	inflightN    int

	closed atomic.Bool
	inline atomic.Bool
	wg     sync.WaitGroup
}

func (n *Network) inflightAdd(delta int) {
	n.inflightMu.Lock()
	n.inflightN += delta
	if n.inflightN == 0 {
		n.inflightCond.Broadcast()
	}
	n.inflightMu.Unlock()
}

type node struct {
	id      graph.NodeID
	handler atomic.Pointer[Handler]

	mu    sync.Mutex
	queue []Message
	wake  chan struct{}
}

// New builds a network over g with precomputed routing tables.
func New(g *graph.Graph) (*Network, error) {
	routing, err := graph.NewRouting(g)
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	n := &Network{
		g:       g,
		nodes:   make([]*node, g.N()),
		crashed: make([]atomic.Bool, g.N()),
	}
	n.inflightCond = sync.NewCond(&n.inflightMu)
	n.routing.Store(routing)
	for i := range n.nodes {
		nd := &node{id: graph.NodeID(i), wake: make(chan struct{}, 1)}
		n.nodes[i] = nd
		n.wg.Add(1)
		go n.runNode(nd)
	}
	return n, nil
}

func (n *Network) runNode(nd *node) {
	defer n.wg.Done()
	for {
		nd.mu.Lock()
		for len(nd.queue) == 0 {
			nd.mu.Unlock()
			if n.closed.Load() {
				return
			}
			<-nd.wake
			nd.mu.Lock()
		}
		msg := nd.queue[0]
		nd.queue = nd.queue[1:]
		nd.mu.Unlock()

		if h := nd.handler.Load(); h != nil && !n.crashed[nd.id].Load() {
			if n.inline.Load() {
				(*h)(nd.id, msg)
				n.inflightAdd(-1)
				continue
			}
			// Run the handler in its own goroutine so a handler that
			// blocks (e.g. on a nested Call) does not stall the node's
			// delivery loop and deadlock its own replies.
			go func() {
				(*h)(nd.id, msg)
				n.inflightAdd(-1)
			}()
			continue
		}
		n.inflightAdd(-1)
	}
}

// Close stops all node goroutines after in-flight messages drain. The
// wake channels are nudged, never closed, so a send racing Close gets
// ErrClosed (or is processed) rather than panicking; each node loop
// re-checks the closed flag before blocking again. Senders should still
// quiesce before Close for deterministic delivery of their last
// messages.
func (n *Network) Close() {
	if n.closed.Swap(true) {
		return
	}
	n.Drain()
	for _, nd := range n.nodes {
		select {
		case nd.wake <- struct{}{}:
		default:
			// A wake is already pending; the node will see the closed
			// flag on its next pass.
		}
	}
	n.wg.Wait()
}

// Graph returns the underlying graph.
func (n *Network) Graph() *graph.Graph { return n.g }

// Routing returns the current routing tables. They are built at creation
// and, like real store-and-forward routers, go stale when nodes crash —
// until RebuildRouting models the routing protocol reconverging.
func (n *Network) Routing() *graph.Routing { return n.routing.Load() }

// RebuildRouting recomputes the next-hop tables over the surviving
// subnetwork, with crashed nodes excluded. This answers §2.4's "problem
// of how, or whether it is still possible, to route the match-making
// messages to their destinations in the surviving subnetwork": after a
// rebuild, traffic detours around the crashes wherever a path survives.
func (n *Network) RebuildRouting() error {
	g := n.g.Clone()
	for v := 0; v < g.N(); v++ {
		if n.crashed[v].Load() {
			if err := g.RemoveNode(graph.NodeID(v)); err != nil {
				return fmt.Errorf("sim: rebuild: %w", err)
			}
		}
	}
	routing, err := graph.NewRouting(g)
	if err != nil {
		return fmt.Errorf("sim: rebuild: %w", err)
	}
	n.routing.Store(routing)
	return nil
}

// SetInlineHandlers switches handler execution between one goroutine per
// delivery (the default, required for handlers that block on nested
// Calls, e.g. the service layer's request dispatch) and inline execution
// on the node's delivery loop. Inline mode removes a goroutine
// spawn/schedule from every message — a large win for high-throughput
// serving layers whose handlers only touch caches and issue one-way
// sends — but a handler that blocks waiting for a message delivered to
// its own node will deadlock that node. Only enable it on networks whose
// installed handlers never block.
func (n *Network) SetInlineHandlers(inline bool) {
	n.inline.Store(inline)
}

// SetHandler installs the message handler for a node. Installing nil
// removes it (messages are then consumed silently).
func (n *Network) SetHandler(v graph.NodeID, h Handler) error {
	if !n.g.Valid(v) {
		return fmt.Errorf("sim: handler: %w", graph.ErrNodeRange)
	}
	if h == nil {
		n.nodes[v].handler.Store(nil)
		return nil
	}
	n.nodes[v].handler.Store(&h)
	return nil
}

// Crash marks a node crashed: it stops processing, cannot originate
// messages, and blocks any route through it.
func (n *Network) Crash(v graph.NodeID) error {
	if !n.g.Valid(v) {
		return fmt.Errorf("sim: crash: %w", graph.ErrNodeRange)
	}
	n.crashed[v].Store(true)
	return nil
}

// Restore clears the crash flag of a node.
func (n *Network) Restore(v graph.NodeID) error {
	if !n.g.Valid(v) {
		return fmt.Errorf("sim: restore: %w", graph.ErrNodeRange)
	}
	n.crashed[v].Store(false)
	return nil
}

// Crashed reports whether v is crashed.
func (n *Network) Crashed(v graph.NodeID) bool {
	return n.g.Valid(v) && n.crashed[v].Load()
}

// Hops returns the total number of message passes so far.
func (n *Network) Hops() int64 { return n.hops.Load() }

// Messages returns the total number of messages injected so far.
func (n *Network) Messages() int64 { return n.messages.Load() }

// Dropped returns the number of messages lost to crashes or missing routes.
func (n *Network) Dropped() int64 { return n.dropped.Load() }

// ResetCounters zeroes the hop/message/drop counters.
func (n *Network) ResetCounters() {
	n.hops.Store(0)
	n.messages.Store(0)
	n.dropped.Store(0)
}

// traverse walks the routed path from u to v, paying one hop per edge. It
// stops early (returning ErrNoRoute or ErrCrashed) if the path crosses a
// crashed node; hops already taken remain counted, as in a real network.
func (n *Network) traverse(u, v graph.NodeID) (int, error) {
	if n.crashed[u].Load() {
		return 0, fmt.Errorf("traverse from %d: %w", u, ErrCrashed)
	}
	if u == v {
		return 0, nil
	}
	routing := n.routing.Load()
	taken := 0
	at := u
	for at != v {
		next := routing.NextHop(at, v)
		if next == -1 {
			n.dropped.Add(1)
			return taken, fmt.Errorf("traverse %d->%d: %w", u, v, ErrNoRoute)
		}
		n.hops.Add(1)
		taken++
		at = next
		if n.crashed[at].Load() {
			n.dropped.Add(1)
			return taken, fmt.Errorf("traverse %d->%d via %d: %w", u, v, at, ErrCrashed)
		}
	}
	return taken, nil
}

// deliver enqueues msg at its destination node.
func (n *Network) deliver(msg Message) {
	nd := n.nodes[msg.To]
	n.inflightAdd(1)
	nd.mu.Lock()
	nd.queue = append(nd.queue, msg)
	nd.mu.Unlock()
	select {
	case nd.wake <- struct{}{}:
	default:
	}
}

// Send routes a one-way message from from to to, counting one pass per
// hop. Delivery is asynchronous; use Drain to wait for quiescence.
func (n *Network) Send(from, to graph.NodeID, payload any) error {
	if n.closed.Load() {
		return ErrClosed
	}
	if !n.g.Valid(from) || !n.g.Valid(to) {
		return fmt.Errorf("sim: send: %w", graph.ErrNodeRange)
	}
	n.messages.Add(1)
	if _, err := n.traverse(from, to); err != nil {
		return err
	}
	n.deliver(Message{From: from, To: to, Payload: payload, net: n})
	return nil
}

// Multicast floods one message from from to every node in targets along
// the union of shortest paths (a spanning-tree broadcast), paying one pass
// per tree edge — the paper's cheap way to address a whole row, subcube or
// line. Unreachable or crash-blocked targets are skipped and counted in
// Dropped; the number of targets actually reached is returned.
func (n *Network) Multicast(from graph.NodeID, targets []graph.NodeID, payload any) (int, error) {
	if n.closed.Load() {
		return 0, ErrClosed
	}
	if !n.g.Valid(from) {
		return 0, fmt.Errorf("sim: multicast: %w", graph.ErrNodeRange)
	}
	if n.crashed[from].Load() {
		return 0, fmt.Errorf("sim: multicast from %d: %w", from, ErrCrashed)
	}
	n.messages.Add(1)
	routing := n.routing.Load()
	// Edges already paid for in this multicast: child node -> true.
	paid := map[graph.NodeID]bool{from: true}
	reached := 0
	for _, t := range targets {
		if !n.g.Valid(t) {
			return reached, fmt.Errorf("sim: multicast target %d: %w", t, graph.ErrNodeRange)
		}
		ok := true
		at := from
		for at != t {
			next := routing.NextHop(at, t)
			if next == -1 {
				n.dropped.Add(1)
				ok = false
				break
			}
			if !paid[next] {
				n.hops.Add(1)
				paid[next] = true
			}
			at = next
			if n.crashed[at].Load() {
				n.dropped.Add(1)
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		n.deliver(Message{From: from, To: t, Payload: payload, net: n})
		reached++
	}
	return reached, nil
}

// Call routes a request to to and blocks for a reply (sent by the remote
// handler via Message.Reply) or the timeout. Request and reply hops are
// both counted.
func (n *Network) Call(from, to graph.NodeID, payload any, timeout time.Duration) (any, error) {
	if n.closed.Load() {
		return nil, ErrClosed
	}
	if !n.g.Valid(from) || !n.g.Valid(to) {
		return nil, fmt.Errorf("sim: call: %w", graph.ErrNodeRange)
	}
	n.messages.Add(1)
	if _, err := n.traverse(from, to); err != nil {
		return nil, err
	}
	reply := make(chan any, 1)
	n.deliver(Message{From: from, To: to, Payload: payload, reply: reply, net: n})
	select {
	case v := <-reply:
		return v, nil
	case <-time.After(timeout):
		return nil, fmt.Errorf("sim: call %d->%d: %w", from, to, ErrTimeout)
	}
}

// Drain blocks until every delivered message has been processed — i.e.
// until the network passes through a quiescent instant. Messages
// injected by other goroutines while Drain waits extend the wait; the
// guarantee is quiescence at some moment, not a happens-before fence
// against concurrent senders.
func (n *Network) Drain() {
	n.inflightMu.Lock()
	for n.inflightN > 0 {
		n.inflightCond.Wait()
	}
	n.inflightMu.Unlock()
}
