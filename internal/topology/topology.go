// Package topology generates the network topologies studied in Section 3
// of the paper: complete networks, rings, Manhattan grids and tori,
// d-dimensional meshes, binary d-cubes, cube-connected cycles, projective
// planes PG(2,k), balanced and degree-profile trees, hierarchical gateway
// networks, and a synthetic UUCPnet reconstructed from the paper's degree
// table.
//
// Each generator returns a concrete type carrying the underlying
// *graph.Graph plus the structural metadata (coordinates, corner bits,
// lines, levels) that the match-making strategies in internal/strategy
// need.
package topology

import (
	"fmt"
	"math/rand/v2"

	"matchmake/internal/graph"
)

// Complete returns the complete network on n nodes, the topology-free
// setting of the paper's lower bounds (§2.1: "assume that the network is a
// complete graph").
func Complete(n int) *graph.Graph {
	g := graph.New(n)
	g.SetName(fmt.Sprintf("complete-%d", n))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g
}

// Ring returns the cycle on n ≥ 3 nodes. On rings no match-making
// algorithm does significantly better than broadcasting (§2.3.5).
func Ring(n int) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs ≥ 3 nodes, got %d", n)
	}
	g := graph.New(n)
	g.SetName(fmt.Sprintf("ring-%d", n))
	for v := 0; v < n; v++ {
		g.MustAddEdge(graph.NodeID(v), graph.NodeID((v+1)%n))
	}
	return g, nil
}

// Line returns the path graph on n ≥ 1 nodes.
func Line(n int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: line needs ≥ 1 node, got %d", n)
	}
	g := graph.New(n)
	g.SetName(fmt.Sprintf("line-%d", n))
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(graph.NodeID(v), graph.NodeID(v+1))
	}
	return g, nil
}

// Star returns the star on n ≥ 2 nodes with hub 0. A star is the extreme
// centralised topology: every multi-node connected subgraph contains the
// hub.
func Star(n int) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs ≥ 2 nodes, got %d", n)
	}
	g := graph.New(n)
	g.SetName(fmt.Sprintf("star-%d", n))
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, graph.NodeID(v))
	}
	return g, nil
}

// RandomConnected returns a random connected graph on n nodes: a random
// recursive spanning tree plus extra random edges, generated
// deterministically from seed.
func RandomConnected(n, extraEdges int, seed uint64) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: random graph needs ≥ 1 node, got %d", n)
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
	g := graph.New(n)
	g.SetName(fmt.Sprintf("random-%d+%d", n, extraEdges))
	for v := 1; v < n; v++ {
		g.MustAddEdge(graph.NodeID(v), graph.NodeID(rng.IntN(v)))
	}
	for k := 0; k < extraEdges; k++ {
		u, v := rng.IntN(n), rng.IntN(n)
		if u != v {
			g.MustAddEdge(graph.NodeID(u), graph.NodeID(v))
		}
	}
	return g, nil
}
