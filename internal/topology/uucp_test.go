package topology

import (
	"testing"

	"matchmake/internal/graph"
)

func TestUUCPDegreeTableTotals(t *testing.T) {
	sites, edges := DegreeTableTotals(UUCPDegreeTable())
	// The paper states 1916 sites and 3848 edges for UUCPnet.
	if sites != 1916 {
		t.Fatalf("sites = %d, want 1916", sites)
	}
	if edges != 3848 {
		t.Fatalf("edges = %d, want 3848", edges)
	}
}

func TestUUCPDegreeTableAnecdotes(t *testing.T) {
	// The prose names specific sites: ihnp4 at 641, a second super-backbone
	// at 471, decvax at 40, mcvax at 45 ("3 sites of degree 45" per the
	// table), sdcsvax at 17, and terminal sites at degree 1.
	table := UUCPDegreeTable()
	byDegree := make(map[int]int, len(table))
	for _, dc := range table {
		byDegree[dc.Degree] = dc.Sites
	}
	tests := []struct {
		degree, sites int
	}{
		{641, 1}, {471, 1}, {45, 3}, {40, 1}, {1, 840}, {0, 25},
	}
	for _, tt := range tests {
		if byDegree[tt.degree] != tt.sites {
			t.Fatalf("degree %d: %d sites, want %d", tt.degree, byDegree[tt.degree], tt.sites)
		}
	}
}

func TestUUCPNetGeneration(t *testing.T) {
	g, err := UUCPNet(1)
	if err != nil {
		t.Fatalf("UUCPNet: %v", err)
	}
	if g.N() != 1916 {
		t.Fatalf("N = %d, want 1916", g.N())
	}
	// Edge count should land near the paper's 3848 (stub conflicts may
	// drop a few).
	if g.M() < 3700 || g.M() > 3848 {
		t.Fatalf("M = %d, want ≈3848", g.M())
	}
	// The positive-degree sites form one connected component; the 25
	// degree-0 sites are isolated.
	comps := g.Components()
	if len(comps) != 26 {
		t.Fatalf("components = %d, want 26 (core + 25 isolated)", len(comps))
	}
	if len(comps[0]) != 1916-25 {
		t.Fatalf("core size = %d, want %d", len(comps[0]), 1916-25)
	}
}

func TestUUCPNetDegreeHistogramClose(t *testing.T) {
	g, err := UUCPNet(7)
	if err != nil {
		t.Fatalf("UUCPNet: %v", err)
	}
	got := g.DegreeHistogram()
	want := make(map[int]int)
	for _, dc := range UUCPDegreeTable() {
		want[dc.Degree] = dc.Sites
	}
	// The generator can deviate slightly where stub matching hits
	// conflicts; require the bulk rows to be close.
	for _, degree := range []int{0, 1, 2, 3, 4, 5} {
		g, w := got[degree], want[degree]
		diff := g - w
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > 0.05*float64(w)+3 {
			t.Fatalf("degree %d: got %d sites, want ≈%d", degree, g, w)
		}
	}
	// The two super-backbones must exist with large degree.
	maxDeg, second := 0, 0
	for v := 0; v < g.N(); v++ {
		d := g.Degree(graph.NodeID(v))
		if d > maxDeg {
			maxDeg, second = d, maxDeg
		} else if d > second {
			second = d
		}
	}
	if maxDeg < 600 {
		t.Fatalf("max degree = %d, want ≥ 600 (ihnp4)", maxDeg)
	}
	if second < 400 {
		t.Fatalf("second degree = %d, want ≥ 400", second)
	}
}

func TestFromDegreeTableErrors(t *testing.T) {
	if _, err := FromDegreeTable(nil, 1); err == nil {
		t.Fatal("empty table should fail")
	}
	if _, err := FromDegreeTable([]DegreeCount{{Degree: -1, Sites: 2}}, 1); err == nil {
		t.Fatal("negative degree should fail")
	}
}

func TestFromDegreeTableSmall(t *testing.T) {
	// A tiny feasible sequence: one hub of degree 3, three leaves.
	g, err := FromDegreeTable([]DegreeCount{{3, 1}, {1, 3}}, 5)
	if err != nil {
		t.Fatalf("FromDegreeTable: %v", err)
	}
	if g.N() != 4 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 4,3", g.N(), g.M())
	}
	if g.Degree(0) != 3 {
		t.Fatalf("hub degree = %d, want 3", g.Degree(0))
	}
}
