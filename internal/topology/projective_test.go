package topology

import (
	"testing"

	"matchmake/internal/graph"
)

func TestPlaneCounts(t *testing.T) {
	tests := []struct {
		k, n int
	}{
		{2, 7}, {3, 13}, {5, 31}, {7, 57}, {11, 133},
	}
	for _, tt := range tests {
		p, err := NewPlane(tt.k)
		if err != nil {
			t.Fatalf("NewPlane(%d): %v", tt.k, err)
		}
		if p.N() != tt.n {
			t.Fatalf("PG(2,%d): %d points, want %d", tt.k, p.N(), tt.n)
		}
		if len(p.Lines) != tt.n {
			t.Fatalf("PG(2,%d): %d lines, want %d", tt.k, len(p.Lines), tt.n)
		}
		for li, line := range p.Lines {
			if len(line) != tt.k+1 {
				t.Fatalf("PG(2,%d) line %d has %d points, want %d", tt.k, li, len(line), tt.k+1)
			}
		}
		for pi, lines := range p.LinesThrough {
			if len(lines) != tt.k+1 {
				t.Fatalf("PG(2,%d) point %d on %d lines, want %d", tt.k, pi, len(lines), tt.k+1)
			}
		}
	}
}

func TestPlaneRejectsNonPrime(t *testing.T) {
	for _, k := range []int{1, 4, 6, 8, 9, 10} {
		if _, err := NewPlane(k); err == nil {
			t.Fatalf("NewPlane(%d) should fail (non-prime or too small)", k)
		}
	}
}

// TestPlaneLinesMeetOnce verifies the defining property the rendezvous
// depends on: each pair of distinct lines has exactly one point in common.
func TestPlaneLinesMeetOnce(t *testing.T) {
	p, err := NewPlane(5)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	for i := 0; i < len(p.Lines); i++ {
		inI := make(map[graph.NodeID]bool, len(p.Lines[i]))
		for _, pt := range p.Lines[i] {
			inI[pt] = true
		}
		for j := i + 1; j < len(p.Lines); j++ {
			common := 0
			for _, pt := range p.Lines[j] {
				if inI[pt] {
					common++
				}
			}
			if common != 1 {
				t.Fatalf("lines %d,%d share %d points, want 1", i, j, common)
			}
		}
	}
}

func TestPlaneTwoPointsOneLine(t *testing.T) {
	p, err := NewPlane(3)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	n := p.N()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			common := 0
			for _, la := range p.LinesThrough[a] {
				for _, lb := range p.LinesThrough[b] {
					if la == lb {
						common++
					}
				}
			}
			if common != 1 {
				t.Fatalf("points %d,%d lie on %d common lines, want 1", a, b, common)
			}
		}
	}
}

func TestLineThrough(t *testing.T) {
	p, err := NewPlane(3)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	pt := graph.NodeID(5)
	for i := 0; i <= p.K; i++ {
		line, err := p.LineThrough(pt, i)
		if err != nil {
			t.Fatalf("LineThrough(%d,%d): %v", pt, i, err)
		}
		found := false
		for _, q := range line {
			if q == pt {
				found = true
			}
		}
		if !found {
			t.Fatalf("line %d through %d does not contain it: %v", i, pt, line)
		}
	}
	if _, err := p.LineThrough(pt, p.K+1); err == nil {
		t.Fatal("line index out of range should fail")
	}
	if _, err := p.LineThrough(graph.NodeID(p.N()), 0); err == nil {
		t.Fatal("point out of range should fail")
	}
}

func TestPlaneGraphComplete(t *testing.T) {
	p, err := NewPlane(2)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	n := p.G.N()
	if p.G.M() != n*(n-1)/2 {
		t.Fatalf("PG(2,2) graph edges = %d, want complete %d", p.G.M(), n*(n-1)/2)
	}
}
