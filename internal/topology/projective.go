package topology

import (
	"fmt"

	"matchmake/internal/graph"
)

// Plane is the projective plane PG(2,k) of §3.4 for prime k: n = k²+k+1
// points and equally many lines, each line carrying k+1 points, k+1 lines
// through every point, and every pair of distinct lines meeting in exactly
// one point.
//
// A server posts its (port, address) to all nodes on a line through its
// host node, a client queries all nodes on a line through its own host
// node, and the unique common point of the two lines is the rendezvous
// node: m(n) = 2(k+1) ≈ 2√n.
//
// Since any two points of a projective plane are collinear, the induced
// communication graph is complete; the combinatorial power is in the Lines
// structure that the strategy uses.
type Plane struct {
	G *graph.Graph
	K int
	// Lines[i] lists the k+1 points on line i, ascending.
	Lines [][]graph.NodeID
	// LinesThrough[p] lists the k+1 line indices through point p, ascending.
	LinesThrough [][]int
}

// NewPlane constructs PG(2,k) for prime k.
func NewPlane(k int) (*Plane, error) {
	if k < 2 {
		return nil, fmt.Errorf("topology: projective plane order %d < 2", k)
	}
	if !isPrime(k) {
		return nil, fmt.Errorf("topology: projective plane order %d is not prime", k)
	}
	n := k*k + k + 1
	points := normalizedTriples(k)
	if len(points) != n {
		return nil, fmt.Errorf("topology: internal: %d points, want %d", len(points), n)
	}
	// Lines are the same normalized triples under point-line duality:
	// point (x,y,z) lies on line [l,m,c] iff lx+my+cz ≡ 0 (mod k).
	p := &Plane{
		K:            k,
		Lines:        make([][]graph.NodeID, n),
		LinesThrough: make([][]int, n),
	}
	for li, line := range points {
		for pi, pt := range points {
			if (line[0]*pt[0]+line[1]*pt[1]+line[2]*pt[2])%k == 0 {
				p.Lines[li] = append(p.Lines[li], graph.NodeID(pi))
				p.LinesThrough[pi] = append(p.LinesThrough[pi], li)
			}
		}
		if len(p.Lines[li]) != k+1 {
			return nil, fmt.Errorf("topology: internal: line %d has %d points, want %d",
				li, len(p.Lines[li]), k+1)
		}
	}
	p.G = Complete(n)
	p.G.SetName(fmt.Sprintf("pg2-%d", k))
	return p, nil
}

// N returns the number of points (= number of lines) of the plane.
func (p *Plane) N() int { return len(p.Lines) }

// LineThrough returns the points of the i-th line through point pt
// (0 ≤ i ≤ k); the "arbitrary line incident on its host node" of §3.4.
func (p *Plane) LineThrough(pt graph.NodeID, i int) ([]graph.NodeID, error) {
	if int(pt) < 0 || int(pt) >= len(p.LinesThrough) {
		return nil, fmt.Errorf("plane: point %d out of range", pt)
	}
	lines := p.LinesThrough[pt]
	if i < 0 || i >= len(lines) {
		return nil, fmt.Errorf("plane: line index %d out of [0,%d)", i, len(lines))
	}
	return p.Lines[lines[i]], nil
}

// normalizedTriples enumerates canonical representatives of the projective
// points over GF(k): (1,a,b), (0,1,a), (0,0,1).
func normalizedTriples(k int) [][3]int {
	var out [][3]int
	for a := 0; a < k; a++ {
		for b := 0; b < k; b++ {
			out = append(out, [3]int{1, a, b})
		}
	}
	for a := 0; a < k; a++ {
		out = append(out, [3]int{0, 1, a})
	}
	out = append(out, [3]int{0, 0, 1})
	return out
}

func isPrime(k int) bool {
	if k < 2 {
		return false
	}
	for d := 2; d*d <= k; d++ {
		if k%d == 0 {
			return false
		}
	}
	return true
}
