package topology

import (
	"fmt"

	"matchmake/internal/graph"
)

// Hierarchy is the hierarchical (gateway) network of §3.5: a level-i
// network connects n_i level-(i−1) networks through n_i gateways, down to
// basic nodes at level 0. The n_i gateway hosts of every level-i cluster
// form a complete network among themselves, which "allows thrifty truly
// distributed match-making with 2√n_i message passes per match".
//
// Node identifiers encode mixed-radix digits (a_k, …, a_1): digit a_i
// selects the sub-cluster at level i. The gateway representing sub-cluster
// j of a level-i cluster is the node of that sub-cluster whose lower
// digits are all zero, so the same physical hosts serve as gateways for
// every level above them — which is why caches grow toward the top of the
// hierarchy, as the paper observes.
type Hierarchy struct {
	G *graph.Graph
	// Fanouts holds n_1 … n_k from lowest to highest level.
	Fanouts []int
	// strides[i] = number of nodes inside one level-(i+1) sub-cluster
	// (stride of digit a_{i+1}).
	strides []int
	n       int
}

// NewHierarchy builds a hierarchy with the given fanouts n_1 … n_k
// (lowest level first); every fanout must be ≥ 2. Total nodes n = Π n_i.
func NewHierarchy(fanouts ...int) (*Hierarchy, error) {
	if len(fanouts) == 0 {
		return nil, fmt.Errorf("topology: hierarchy needs ≥ 1 level")
	}
	n := 1
	for i, f := range fanouts {
		if f < 2 {
			return nil, fmt.Errorf("topology: hierarchy fanout n_%d = %d, need ≥ 2", i+1, f)
		}
		n *= f
		if n > 1<<22 {
			return nil, fmt.Errorf("topology: hierarchy exceeds %d nodes", 1<<22)
		}
	}
	strides := make([]int, len(fanouts))
	s := 1
	for i := 0; i < len(fanouts); i++ {
		strides[i] = s
		s *= fanouts[i]
	}
	g := graph.New(n)
	g.SetName(fmt.Sprintf("hierarchy-%v", fanouts))
	h := &Hierarchy{G: g, Fanouts: append([]int(nil), fanouts...), strides: strides, n: n}

	// Level-i gateways of every cluster form a complete graph. At level 1
	// the "gateways" are the basic nodes of the cluster themselves.
	for level := 1; level <= len(fanouts); level++ {
		clusterSize := h.clusterSize(level)
		for base := 0; base < n; base += clusterSize {
			gws := h.gatewaysOf(level, graph.NodeID(base))
			for i := 0; i < len(gws); i++ {
				for j := i + 1; j < len(gws); j++ {
					g.MustAddEdge(gws[i], gws[j])
				}
			}
		}
	}
	return h, nil
}

// Levels returns the number of hierarchy levels k.
func (h *Hierarchy) Levels() int { return len(h.Fanouts) }

// N returns the total number of nodes.
func (h *Hierarchy) N() int { return h.n }

// clusterSize returns the number of nodes inside one level-`level` cluster.
func (h *Hierarchy) clusterSize(level int) int {
	if level <= 0 {
		return 1
	}
	return h.strides[level-1] * h.Fanouts[level-1]
}

// Digit returns a_level for node v: which level-(level−1) sub-cluster of
// its level-`level` cluster v belongs to.
func (h *Hierarchy) Digit(v graph.NodeID, level int) int {
	if level < 1 || level > len(h.Fanouts) {
		return 0
	}
	return (int(v) / h.strides[level-1]) % h.Fanouts[level-1]
}

// ClusterBase returns the first node of the level-`level` cluster
// containing v (all digits a_level…a_1 zeroed).
func (h *Hierarchy) ClusterBase(v graph.NodeID, level int) graph.NodeID {
	cs := h.clusterSize(level)
	return graph.NodeID(int(v) / cs * cs)
}

// Gateways returns the n_level gateway nodes of the level-`level` cluster
// containing v, in sub-cluster order.
func (h *Hierarchy) Gateways(v graph.NodeID, level int) ([]graph.NodeID, error) {
	if level < 1 || level > len(h.Fanouts) {
		return nil, fmt.Errorf("topology: hierarchy level %d out of [1,%d]", level, len(h.Fanouts))
	}
	return h.gatewaysOf(level, h.ClusterBase(v, level)), nil
}

func (h *Hierarchy) gatewaysOf(level int, base graph.NodeID) []graph.NodeID {
	f := h.Fanouts[level-1]
	stride := h.strides[level-1]
	out := make([]graph.NodeID, f)
	for j := 0; j < f; j++ {
		out[j] = base + graph.NodeID(j*stride)
	}
	return out
}

// LCALevel returns the lowest level whose cluster contains both u and v:
// 0 when u == v, up to k when they share only the whole network. This is
// the level at which a locality-aware locate resolves (§3.5).
func (h *Hierarchy) LCALevel(u, v graph.NodeID) int {
	for level := 0; level <= len(h.Fanouts); level++ {
		if h.ClusterBase(u, level) == h.ClusterBase(v, level) {
			return level
		}
	}
	return len(h.Fanouts)
}
