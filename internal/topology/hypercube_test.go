package topology

import (
	"testing"
	"testing/quick"

	"matchmake/internal/graph"
)

func TestHypercubeStructure(t *testing.T) {
	h, err := NewHypercube(4)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	// n = 2^d, #E = d·2^(d-1) as stated in §3.2.
	if h.G.N() != 16 {
		t.Fatalf("N = %d, want 16", h.G.N())
	}
	if h.G.M() != 4*8 {
		t.Fatalf("M = %d, want 32", h.G.M())
	}
	for v := 0; v < h.G.N(); v++ {
		if d := h.G.Degree(graph.NodeID(v)); d != 4 {
			t.Fatalf("degree of %d = %d, want 4", v, d)
		}
	}
	diam, err := h.G.Diameter()
	if err != nil || diam != 4 {
		t.Fatalf("diameter = %d (%v), want 4", diam, err)
	}
	if _, err := NewHypercube(0); err == nil {
		t.Fatal("NewHypercube(0) should fail")
	}
	if _, err := NewHypercube(21); err == nil {
		t.Fatal("NewHypercube(21) should fail")
	}
}

func TestHypercubeEdgesDifferInOneBit(t *testing.T) {
	h, err := NewHypercube(5)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	for v := 0; v < h.G.N(); v++ {
		for _, w := range h.G.Neighbors(graph.NodeID(v)) {
			if popcount(v^int(w)) != 1 {
				t.Fatalf("edge %05b-%05b differs in ≠1 bit", v, w)
			}
		}
	}
}

func TestHypercubeMasks(t *testing.T) {
	h, err := NewHypercube(6)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	if m := h.HighMask(3); m != 0b111000 {
		t.Fatalf("HighMask(3) = %06b, want 111000", m)
	}
	if m := h.LowMask(3); m != 0b000111 {
		t.Fatalf("LowMask(3) = %06b, want 000111", m)
	}
	if m := h.HighMask(0); m != 0 {
		t.Fatalf("HighMask(0) = %b, want 0", m)
	}
	if m := h.HighMask(99); m != 0b111111 {
		t.Fatalf("HighMask(99) = %06b, want 111111", m)
	}
	if m := h.LowMask(99); m != 0b111111 {
		t.Fatalf("LowMask(99) = %06b, want 111111", m)
	}
}

func TestHypercubeSubcube(t *testing.T) {
	h, err := NewHypercube(4)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	v := graph.NodeID(0b1010)
	// Fix the high 2 bits: 4 nodes 10xx.
	sc := h.Subcube(v, h.HighMask(2))
	if len(sc) != 4 {
		t.Fatalf("subcube size = %d, want 4", len(sc))
	}
	for _, u := range sc {
		if int(u)&0b1100 != 0b1000 {
			t.Fatalf("subcube node %04b does not match 10xx", int(u))
		}
	}
	// Fix everything: only v. Fix nothing: all 16.
	if sc := h.Subcube(v, h.HighMask(4)); len(sc) != 1 || sc[0] != v {
		t.Fatalf("fully fixed subcube = %v", sc)
	}
	if sc := h.Subcube(v, 0); len(sc) != 16 {
		t.Fatalf("free subcube = %d nodes, want 16", len(sc))
	}
}

// TestHypercubeSubcubeIntersection verifies the paper's §3.2 rendezvous:
// for any server s and client c, P(s) = subcube fixing s's low half and
// Q(c) = subcube fixing c's high half intersect in exactly one node
// c₁…c_{d/2} s_{d/2+1}…s_d.
func TestHypercubeSubcubeIntersection(t *testing.T) {
	h, err := NewHypercube(6)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	f := func(sRaw, cRaw uint8) bool {
		s := graph.NodeID(int(sRaw) & 0b111111)
		c := graph.NodeID(int(cRaw) & 0b111111)
		ps := h.Subcube(s, h.LowMask(3))
		qc := h.Subcube(c, h.HighMask(3))
		inP := make(map[graph.NodeID]bool, len(ps))
		for _, u := range ps {
			inP[u] = true
		}
		var meet []graph.NodeID
		for _, u := range qc {
			if inP[u] {
				meet = append(meet, u)
			}
		}
		want := graph.NodeID((int(c) & 0b111000) | (int(s) & 0b000111))
		return len(meet) == 1 && meet[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCCCStructure(t *testing.T) {
	c, err := NewCCC(3)
	if err != nil {
		t.Fatalf("NewCCC: %v", err)
	}
	// n = d·2^d = 24; every node has degree 3 (two cycle + one cube edge).
	if c.G.N() != 24 {
		t.Fatalf("N = %d, want 24", c.G.N())
	}
	for v := 0; v < c.G.N(); v++ {
		if d := c.G.Degree(graph.NodeID(v)); d != 3 {
			t.Fatalf("degree of %d = %d, want 3", v, d)
		}
	}
	if !c.G.Connected() {
		t.Fatal("CCC must be connected")
	}
	if _, err := NewCCC(2); err == nil {
		t.Fatal("NewCCC(2) should fail")
	}
}

func TestCCCCornerPosRoundTrip(t *testing.T) {
	c, err := NewCCC(4)
	if err != nil {
		t.Fatalf("NewCCC: %v", err)
	}
	for w := 0; w < 16; w++ {
		for p := 0; p < 4; p++ {
			gw, gp := c.CornerPos(c.At(w, p))
			if gw != w || gp != p {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", w, p, gw, gp)
			}
		}
	}
}

func TestCCCEdges(t *testing.T) {
	c, err := NewCCC(3)
	if err != nil {
		t.Fatalf("NewCCC: %v", err)
	}
	// Cycle edge: (w,0)-(w,1); cube edge on dimension p: (w,p)-(w^2^p,p).
	if !c.G.HasEdge(c.At(0, 0), c.At(0, 1)) {
		t.Fatal("missing cycle edge")
	}
	if !c.G.HasEdge(c.At(0, 1), c.At(0b010, 1)) {
		t.Fatal("missing cube edge")
	}
	if c.G.HasEdge(c.At(0, 0), c.At(0b010, 0)) {
		t.Fatal("cube edge on wrong dimension should not exist")
	}
}
