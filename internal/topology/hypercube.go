package topology

import (
	"fmt"

	"matchmake/internal/graph"
)

// Hypercube is the binary d-cube of §3.2: nodes are d-bit addresses,
// edges connect addresses differing in a single bit. n = 2^d and
// #E = d·2^(d−1). The paper's strategy posts into the d/2-dimensional
// subcube spanned by the server's low bits and queries the subcube spanned
// by the client's high bits, meeting in exactly one node.
type Hypercube struct {
	G *graph.Graph
	D int
}

// NewHypercube returns the binary d-cube, d ≥ 1.
func NewHypercube(d int) (*Hypercube, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("topology: hypercube dimension %d out of [1,20]", d)
	}
	n := 1 << d
	g := graph.New(n)
	g.SetName(fmt.Sprintf("hypercube-%d", d))
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			w := v ^ (1 << b)
			if v < w {
				g.MustAddEdge(graph.NodeID(v), graph.NodeID(w))
			}
		}
	}
	return &Hypercube{G: g, D: d}, nil
}

// Bits returns the d-bit address of v as an int.
func (h *Hypercube) Bits(v graph.NodeID) int { return int(v) }

// Subcube returns the nodes whose address agrees with v on the bit
// positions in mask (a bitmask over the d address bits) and ranges over
// all values on the remaining positions. |result| = 2^(d − popcount(mask)).
func (h *Hypercube) Subcube(v graph.NodeID, mask int) []graph.NodeID {
	free := ^mask & ((1 << h.D) - 1)
	base := int(v) & mask
	out := make([]graph.NodeID, 0, 1<<popcount(free))
	// Enumerate all subsets of the free bit positions.
	sub := 0
	for {
		out = append(out, graph.NodeID(base|sub))
		if sub == free {
			break
		}
		sub = (sub - free) & free
	}
	return out
}

// HighMask returns the mask of the top k bits of a d-bit address.
func (h *Hypercube) HighMask(k int) int {
	if k <= 0 {
		return 0
	}
	if k > h.D {
		k = h.D
	}
	return ((1 << k) - 1) << (h.D - k)
}

// LowMask returns the mask of the bottom k bits of a d-bit address.
func (h *Hypercube) LowMask(k int) int {
	if k <= 0 {
		return 0
	}
	if k > h.D {
		k = h.D
	}
	return (1 << k) - 1
}

func popcount(x int) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// CCC is the cube-connected cycles network of §3.3: every corner of a
// binary d-cube is replaced by a cycle of d nodes; node (w, p) is joined
// to its cycle neighbors (w, p±1 mod d) and across dimension p to
// (w ⊕ 2^p, p). n = d·2^d. CCCs are the fast permutation networks the
// paper tunes the hypercube algorithm for, with caches √(n/log n) and
// m(n) = O(√(n·log n)).
type CCC struct {
	G *graph.Graph
	D int
}

// NewCCC returns the cube-connected cycles of dimension d ≥ 3.
func NewCCC(d int) (*CCC, error) {
	if d < 3 || d > 16 {
		return nil, fmt.Errorf("topology: CCC dimension %d out of [3,16]", d)
	}
	n := d << d
	g := graph.New(n)
	g.SetName(fmt.Sprintf("ccc-%d", d))
	c := &CCC{G: g, D: d}
	for w := 0; w < 1<<d; w++ {
		for p := 0; p < d; p++ {
			v := c.At(w, p)
			g.MustAddEdge(v, c.At(w, (p+1)%d))  // cycle edge
			g.MustAddEdge(v, c.At(w^(1<<p), p)) // cube edge on dimension p
		}
	}
	return c, nil
}

// At returns the node for corner w (a d-bit address) and cycle position p.
func (c *CCC) At(w, p int) graph.NodeID { return graph.NodeID(w*c.D + p) }

// CornerPos returns the corner address and cycle position of node v.
func (c *CCC) CornerPos(v graph.NodeID) (w, p int) {
	return int(v) / c.D, int(v) % c.D
}
