package topology

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"matchmake/internal/graph"
)

// DegreeCount pairs a node degree with the number of sites having that
// degree, the row format of the UUCPnet table in §3.6.
type DegreeCount struct {
	Degree int
	Sites  int
}

// UUCPDegreeTable returns the degree distribution of UUCPnet as of
// August 15, 1984 from the paper's table: 1916 sites and 3848 edges in
// total (degree sum 7696).
//
// The scan of the preliminary version garbles the rows for degrees 16–24;
// those nine counts are reconstructed so that the totals match the
// paper's explicitly stated site count (1916), edge count (3848), and the
// anecdotes in the prose (sdcsvax at degree 17, decvax at 40, mcvax at 45,
// ihnp4 at 641). All other rows are as printed. The reconstruction is
// documented in DESIGN.md.
func UUCPDegreeTable() []DegreeCount {
	return []DegreeCount{
		{0, 25}, {1, 840}, {2, 384}, {3, 207}, {4, 115}, {5, 83},
		{6, 71}, {7, 32}, {8, 29}, {9, 11}, {10, 17}, {11, 5},
		{12, 7}, {13, 14}, {14, 10}, {15, 6},
		// Reconstructed rows (degrees 16-24): 26 sites, degree sum 529.
		{16, 2}, {17, 3}, {18, 3}, {19, 2}, {20, 3}, {21, 3},
		{22, 3}, {23, 3}, {24, 4},
		// High-degree tail as printed in the paper.
		{25, 3}, {27, 1}, {28, 2}, {30, 2}, {32, 2}, {33, 1},
		{34, 2}, {35, 1}, {36, 2}, {37, 1}, {38, 1}, {39, 1},
		{40, 1}, {42, 1}, {43, 1}, {44, 1}, {45, 3}, {46, 1},
		{47, 1}, {52, 1}, {63, 2}, {70, 1}, {471, 1}, {641, 1},
	}
}

// DegreeTableTotals returns the number of sites and edges implied by a
// degree table (edges = degree sum / 2).
func DegreeTableTotals(table []DegreeCount) (sites, edges int) {
	degSum := 0
	for _, dc := range table {
		sites += dc.Sites
		degSum += dc.Degree * dc.Sites
	}
	return sites, degSum / 2
}

// FromDegreeTable generates a graph approximating the given degree
// distribution with the tree-plus-extra-edges shape the paper describes
// for UUCPnet: "the network resembles an undirected tree with a core …
// with some additional edges thrown in", where the number of extra edges
// is about the number of spanning-tree edges.
//
// Construction: nodes are created with target degrees (descending, so low
// identifiers are backbone sites). All positive-degree nodes are joined
// into a tree by attaching each node, in descending target order, to an
// already-attached node chosen with probability proportional to its
// unused degree stubs — preferential attachment that concentrates links
// on backbone sites while still producing feeder chains of realistic
// depth. Remaining stubs are then matched randomly into extra edges.
// Stubs that cannot be matched without self-loops or duplicate edges are
// dropped, so the realized distribution can deviate slightly; callers
// compare histograms.
func FromDegreeTable(table []DegreeCount, seed uint64) (*graph.Graph, error) {
	var targets []int
	for _, dc := range table {
		if dc.Degree < 0 || dc.Sites < 0 {
			return nil, fmt.Errorf("topology: invalid degree table row %+v", dc)
		}
		for i := 0; i < dc.Sites; i++ {
			targets = append(targets, dc.Degree)
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("topology: empty degree table")
	}
	sort.Sort(sort.Reverse(sort.IntSlice(targets)))

	n := len(targets)
	g := graph.New(n)
	g.SetName(fmt.Sprintf("uucp-%d", n))
	stubs := append([]int(nil), targets...)

	// Phase 1: spanning tree over positive-degree nodes. Node v attaches
	// to an earlier node drawn with probability proportional to its
	// remaining stubs (preferential attachment).
	rng := rand.New(rand.NewPCG(seed, seed^0xbb67ae8584caa73b))
	positive := 0
	for _, d := range targets {
		if d > 0 {
			positive++
		}
	}
	stubSum := 0 // Σ stubs[u] over attached nodes u < v
	if positive > 0 {
		stubSum = stubs[0]
	}
	for v := 1; v < positive; v++ {
		if stubSum <= 0 {
			return nil, fmt.Errorf("topology: degree table cannot form a tree (ran out of stubs at node %d)", v)
		}
		pick := rng.IntN(stubSum)
		chosen := -1
		for u := 0; u < v; u++ {
			if stubs[u] <= 0 {
				continue
			}
			pick -= stubs[u]
			if pick < 0 {
				chosen = u
				break
			}
		}
		if chosen == -1 {
			return nil, fmt.Errorf("topology: internal: stub accounting at node %d", v)
		}
		g.MustAddEdge(graph.NodeID(chosen), graph.NodeID(v))
		stubs[chosen]--
		stubs[v]--
		stubSum += stubs[v] - 1 // v joins with its remaining stubs; chosen lost one
	}

	// Phase 2: match remaining stubs randomly into extra edges.
	var pool []graph.NodeID
	for v := 0; v < positive; v++ {
		for i := 0; i < stubs[v]; i++ {
			pool = append(pool, graph.NodeID(v))
		}
	}
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	for i := 0; i+1 < len(pool); {
		u, v := pool[i], pool[i+1]
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
			i += 2
			continue
		}
		// Try to swap v with a later stub to resolve the conflict.
		swapped := false
		for j := i + 2; j < len(pool); j++ {
			w := pool[j]
			if w != u && !g.HasEdge(u, w) {
				pool[i+1], pool[j] = pool[j], pool[i+1]
				swapped = true
				break
			}
		}
		if !swapped {
			i++ // drop stub u
			continue
		}
	}
	return g, nil
}

// UUCPNet generates the synthetic UUCPnet: the paper's degree table
// realized as a tree-with-extra-edges graph.
func UUCPNet(seed uint64) (*graph.Graph, error) {
	return FromDegreeTable(UUCPDegreeTable(), seed)
}
