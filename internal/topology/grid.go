package topology

import (
	"fmt"

	"matchmake/internal/graph"
)

// Grid is a p×q Manhattan network (§3.1): node (r,c) has identifier r·q+c
// and is joined to its horizontal and vertical neighbors. The paper's
// strategy posts availability of a service along its row and requests a
// service along the client's column, giving m(n) = 2√n for p = q with
// caches of size √n.
type Grid struct {
	G    *graph.Graph
	Rows int // p
	Cols int // q
	wrap bool
}

// NewGrid returns a p×q grid, p, q ≥ 1.
func NewGrid(p, q int) (*Grid, error) {
	return newGrid(p, q, false)
}

// NewTorus returns the wrap-around (cylindrical in both dimensions) version
// of the p×q grid, the topology of the Stony Brook Microcomputer Network
// that §3.1 cites. Requires p, q ≥ 3 so wrap edges are distinct.
func NewTorus(p, q int) (*Grid, error) {
	if p < 3 || q < 3 {
		return nil, fmt.Errorf("topology: torus needs p,q ≥ 3, got %d×%d", p, q)
	}
	return newGrid(p, q, true)
}

func newGrid(p, q int, wrap bool) (*Grid, error) {
	if p < 1 || q < 1 {
		return nil, fmt.Errorf("topology: grid needs p,q ≥ 1, got %d×%d", p, q)
	}
	g := graph.New(p * q)
	kind := "grid"
	if wrap {
		kind = "torus"
	}
	g.SetName(fmt.Sprintf("%s-%dx%d", kind, p, q))
	gr := &Grid{G: g, Rows: p, Cols: q, wrap: wrap}
	for r := 0; r < p; r++ {
		for c := 0; c < q; c++ {
			v := gr.At(r, c)
			if c+1 < q {
				g.MustAddEdge(v, gr.At(r, c+1))
			} else if wrap {
				g.MustAddEdge(v, gr.At(r, 0))
			}
			if r+1 < p {
				g.MustAddEdge(v, gr.At(r+1, c))
			} else if wrap {
				g.MustAddEdge(v, gr.At(0, c))
			}
		}
	}
	return gr, nil
}

// Wrap reports whether the grid has torus wrap-around edges.
func (g *Grid) Wrap() bool { return g.wrap }

// At returns the node at row r, column c.
func (g *Grid) At(r, c int) graph.NodeID { return graph.NodeID(r*g.Cols + c) }

// RowCol returns the row and column of node v.
func (g *Grid) RowCol(v graph.NodeID) (r, c int) {
	return int(v) / g.Cols, int(v) % g.Cols
}

// Row returns the nodes of row r in column order.
func (g *Grid) Row(r int) []graph.NodeID {
	out := make([]graph.NodeID, g.Cols)
	for c := 0; c < g.Cols; c++ {
		out[c] = g.At(r, c)
	}
	return out
}

// Column returns the nodes of column c in row order.
func (g *Grid) Column(c int) []graph.NodeID {
	out := make([]graph.NodeID, g.Rows)
	for r := 0; r < g.Rows; r++ {
		out[r] = g.At(r, c)
	}
	return out
}

// Mesh is the d-dimensional generalization of the Manhattan grid (§3.1):
// node coordinates (x₀,…,x_{d−1}) with x_i < Dims[i], edges between nodes
// differing by 1 in a single coordinate. The generalized row/column
// strategy yields m(n) = 2·n^((d−1)/d).
type Mesh struct {
	G       *graph.Graph
	Dims    []int
	strides []int
}

// NewMesh returns the mesh with the given extents (all ≥ 1, at least one
// dimension).
func NewMesh(dims ...int) (*Mesh, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("topology: mesh needs ≥ 1 dimension")
	}
	n := 1
	for i, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("topology: mesh dim %d = %d, need ≥ 1", i, d)
		}
		n *= d
	}
	strides := make([]int, len(dims))
	s := 1
	for i := len(dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= dims[i]
	}
	g := graph.New(n)
	g.SetName(fmt.Sprintf("mesh-%v", dims))
	m := &Mesh{G: g, Dims: append([]int(nil), dims...), strides: strides}
	coord := make([]int, len(dims))
	for v := 0; v < n; v++ {
		m.coordOf(graph.NodeID(v), coord)
		for i := range dims {
			if coord[i]+1 < dims[i] {
				g.MustAddEdge(graph.NodeID(v), graph.NodeID(v+strides[i]))
			}
		}
	}
	return m, nil
}

// At returns the node with the given coordinates.
func (m *Mesh) At(coord ...int) (graph.NodeID, error) {
	if len(coord) != len(m.Dims) {
		return -1, fmt.Errorf("topology: mesh coordinate arity %d, want %d", len(coord), len(m.Dims))
	}
	v := 0
	for i, x := range coord {
		if x < 0 || x >= m.Dims[i] {
			return -1, fmt.Errorf("topology: mesh coordinate %d out of range [0,%d)", x, m.Dims[i])
		}
		v += x * m.strides[i]
	}
	return graph.NodeID(v), nil
}

// Coord returns the coordinates of node v.
func (m *Mesh) Coord(v graph.NodeID) []int {
	coord := make([]int, len(m.Dims))
	m.coordOf(v, coord)
	return coord
}

func (m *Mesh) coordOf(v graph.NodeID, coord []int) {
	rem := int(v)
	for i := range m.Dims {
		coord[i] = rem / m.strides[i]
		rem %= m.strides[i]
	}
}

// Slice returns all nodes that agree with v on coordinate axes in fixed
// (a set of axis indices) and range over every value on the remaining
// axes. The d-dimensional strategy posts along the slice fixing the
// server's first coordinate and queries along the complementary slice.
func (m *Mesh) Slice(v graph.NodeID, fixed []int) []graph.NodeID {
	isFixed := make([]bool, len(m.Dims))
	for _, ax := range fixed {
		if ax >= 0 && ax < len(m.Dims) {
			isFixed[ax] = true
		}
	}
	base := m.Coord(v)
	out := []graph.NodeID{}
	coord := make([]int, len(m.Dims))
	copy(coord, base)
	var walk func(axis int)
	walk = func(axis int) {
		if axis == len(m.Dims) {
			id, _ := m.At(coord...)
			out = append(out, id)
			return
		}
		if isFixed[axis] {
			coord[axis] = base[axis]
			walk(axis + 1)
			return
		}
		for x := 0; x < m.Dims[axis]; x++ {
			coord[axis] = x
			walk(axis + 1)
		}
		coord[axis] = base[axis]
	}
	walk(0)
	return out
}
