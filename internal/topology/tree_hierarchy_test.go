package topology

import (
	"testing"

	"matchmake/internal/graph"
)

func TestBalancedTree(t *testing.T) {
	tr, err := NewBalancedTree(2, 3)
	if err != nil {
		t.Fatalf("NewBalancedTree: %v", err)
	}
	// 1 + 2 + 4 + 8 = 15 nodes.
	if tr.G.N() != 15 {
		t.Fatalf("N = %d, want 15", tr.G.N())
	}
	if tr.Height != 3 || tr.Level[0] != 3 {
		t.Fatalf("root level = %d, want 3", tr.Level[0])
	}
	leaves := tr.Leaves()
	if len(leaves) != 8 {
		t.Fatalf("leaves = %d, want 8", len(leaves))
	}
	st, err := tr.SpanningTree()
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	if st.Height() != 3 {
		t.Fatalf("spanning tree height = %d, want 3", st.Height())
	}
	// Level + depth = height for every node of a balanced tree.
	for v := 0; v < tr.G.N(); v++ {
		if tr.Level[v]+st.Depth(graph.NodeID(v)) != 3 {
			t.Fatalf("node %d: level %d + depth %d != 3", v, tr.Level[v], st.Depth(graph.NodeID(v)))
		}
	}
}

func TestBalancedTreeDegenerate(t *testing.T) {
	tr, err := NewBalancedTree(5, 0)
	if err != nil {
		t.Fatalf("NewBalancedTree: %v", err)
	}
	if tr.G.N() != 1 {
		t.Fatalf("zero-level tree N = %d, want 1", tr.G.N())
	}
	if _, err := NewBalancedTree(0, 2); err == nil {
		t.Fatal("fanout 0 should fail")
	}
	if _, err := NewProfileTree(func(int) int { return 2 }, -1); err == nil {
		t.Fatal("negative levels should fail")
	}
}

func TestProfileTree(t *testing.T) {
	// d(2) = 3 children at the root level, d(1) = 2 at the next:
	// 1 + 3 + 6 = 10 nodes.
	tr, err := NewProfileTree(func(level int) int {
		if level == 2 {
			return 3
		}
		return 2
	}, 2)
	if err != nil {
		t.Fatalf("NewProfileTree: %v", err)
	}
	if tr.G.N() != 10 {
		t.Fatalf("N = %d, want 10", tr.G.N())
	}
	if got := len(tr.Leaves()); got != 6 {
		t.Fatalf("leaves = %d, want 6", got)
	}
}

func TestProfileTreeTooBig(t *testing.T) {
	if _, err := NewProfileTree(func(int) int { return 64 }, 6); err == nil {
		t.Fatal("oversized tree should fail")
	}
}

func TestHierarchyStructure(t *testing.T) {
	h, err := NewHierarchy(3, 4)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	if h.N() != 12 || h.G.N() != 12 {
		t.Fatalf("N = %d, want 12", h.N())
	}
	if h.Levels() != 2 {
		t.Fatalf("levels = %d, want 2", h.Levels())
	}
	if !h.G.Connected() {
		t.Fatal("hierarchy must be connected")
	}
	// Level-1 clusters are complete triangles: nodes 0,1,2 pairwise joined.
	if !h.G.HasEdge(0, 1) || !h.G.HasEdge(1, 2) || !h.G.HasEdge(0, 2) {
		t.Fatal("level-1 cluster should be complete")
	}
	// Level-2 gateways are the cluster bases 0,3,6,9, pairwise joined.
	gws, err := h.Gateways(5, 2)
	if err != nil {
		t.Fatalf("Gateways: %v", err)
	}
	want := []graph.NodeID{0, 3, 6, 9}
	if len(gws) != len(want) {
		t.Fatalf("gateways = %v, want %v", gws, want)
	}
	for i := range want {
		if gws[i] != want[i] {
			t.Fatalf("gateways = %v, want %v", gws, want)
		}
	}
	for i := 0; i < len(want); i++ {
		for j := i + 1; j < len(want); j++ {
			if !h.G.HasEdge(want[i], want[j]) {
				t.Fatalf("gateway edge %d-%d missing", want[i], want[j])
			}
		}
	}
}

func TestHierarchyDigits(t *testing.T) {
	h, err := NewHierarchy(3, 4)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	// Node 7 = cluster 2 (digit at level 2), position 1 (digit at level 1).
	if d := h.Digit(7, 1); d != 1 {
		t.Fatalf("Digit(7,1) = %d, want 1", d)
	}
	if d := h.Digit(7, 2); d != 2 {
		t.Fatalf("Digit(7,2) = %d, want 2", d)
	}
	if b := h.ClusterBase(7, 1); b != 6 {
		t.Fatalf("ClusterBase(7,1) = %d, want 6", b)
	}
	if b := h.ClusterBase(7, 2); b != 0 {
		t.Fatalf("ClusterBase(7,2) = %d, want 0", b)
	}
}

func TestHierarchyLCALevel(t *testing.T) {
	h, err := NewHierarchy(3, 4)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	tests := []struct {
		u, v graph.NodeID
		want int
	}{
		{5, 5, 0}, // same node
		{3, 5, 1}, // same level-1 cluster
		{0, 11, 2},
	}
	for _, tt := range tests {
		if got := h.LCALevel(tt.u, tt.v); got != tt.want {
			t.Fatalf("LCALevel(%d,%d) = %d, want %d", tt.u, tt.v, got, tt.want)
		}
	}
}

func TestHierarchyErrors(t *testing.T) {
	if _, err := NewHierarchy(); err == nil {
		t.Fatal("empty fanouts should fail")
	}
	if _, err := NewHierarchy(1, 4); err == nil {
		t.Fatal("fanout 1 should fail")
	}
	h, err := NewHierarchy(2, 2)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	if _, err := h.Gateways(0, 3); err == nil {
		t.Fatal("level out of range should fail")
	}
	if _, err := h.Gateways(0, 0); err == nil {
		t.Fatal("level 0 should fail")
	}
}

func TestHierarchyThreeLevels(t *testing.T) {
	h, err := NewHierarchy(4, 4, 4)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	if h.N() != 64 {
		t.Fatalf("N = %d, want 64", h.N())
	}
	if !h.G.Connected() {
		t.Fatal("3-level hierarchy must be connected")
	}
	// Gateways at level 3 are 0,16,32,48.
	gws, err := h.Gateways(63, 3)
	if err != nil {
		t.Fatalf("Gateways: %v", err)
	}
	want := []graph.NodeID{0, 16, 32, 48}
	for i := range want {
		if gws[i] != want[i] {
			t.Fatalf("gateways = %v, want %v", gws, want)
		}
	}
	if got := h.LCALevel(0, 63); got != 3 {
		t.Fatalf("LCALevel(0,63) = %d, want 3", got)
	}
}
