package topology

import (
	"testing"

	"matchmake/internal/graph"
)

func TestComplete(t *testing.T) {
	g := Complete(6)
	if g.N() != 6 || g.M() != 15 {
		t.Fatalf("K6: N=%d M=%d, want 6,15", g.N(), g.M())
	}
	d, err := g.Diameter()
	if err != nil || d != 1 {
		t.Fatalf("K6 diameter = %d (%v), want 1", d, err)
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(8)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if g.N() != 8 || g.M() != 8 {
		t.Fatalf("ring8: N=%d M=%d, want 8,8", g.N(), g.M())
	}
	for v := 0; v < 8; v++ {
		if g.Degree(graph.NodeID(v)) != 2 {
			t.Fatalf("ring node %d degree = %d, want 2", v, g.Degree(graph.NodeID(v)))
		}
	}
	d, err := g.Diameter()
	if err != nil || d != 4 {
		t.Fatalf("ring8 diameter = %d (%v), want 4", d, err)
	}
	if _, err := Ring(2); err == nil {
		t.Fatal("Ring(2) should fail")
	}
}

func TestLine(t *testing.T) {
	g, err := Line(5)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	if g.M() != 4 {
		t.Fatalf("line5 M=%d, want 4", g.M())
	}
	if _, err := Line(0); err == nil {
		t.Fatal("Line(0) should fail")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(7)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if g.Degree(0) != 6 {
		t.Fatalf("hub degree = %d, want 6", g.Degree(0))
	}
	if _, err := Star(1); err == nil {
		t.Fatal("Star(1) should fail")
	}
}

func TestRandomConnected(t *testing.T) {
	g, err := RandomConnected(64, 30, 42)
	if err != nil {
		t.Fatalf("RandomConnected: %v", err)
	}
	if !g.Connected() {
		t.Fatal("random graph must be connected")
	}
	if g.N() != 64 {
		t.Fatalf("N = %d, want 64", g.N())
	}
	// Determinism: same seed, same graph.
	g2, err := RandomConnected(64, 30, 42)
	if err != nil {
		t.Fatalf("RandomConnected: %v", err)
	}
	if g.M() != g2.M() {
		t.Fatalf("same seed produced different graphs: %d vs %d edges", g.M(), g2.M())
	}
	if _, err := RandomConnected(0, 0, 1); err == nil {
		t.Fatal("RandomConnected(0) should fail")
	}
}

func TestGridStructure(t *testing.T) {
	gr, err := NewGrid(3, 4)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	if gr.G.N() != 12 {
		t.Fatalf("N = %d, want 12", gr.G.N())
	}
	// Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
	if gr.G.M() != 17 {
		t.Fatalf("M = %d, want 17", gr.G.M())
	}
	if v := gr.At(1, 2); v != 6 {
		t.Fatalf("At(1,2) = %d, want 6", v)
	}
	r, c := gr.RowCol(6)
	if r != 1 || c != 2 {
		t.Fatalf("RowCol(6) = %d,%d, want 1,2", r, c)
	}
	if !gr.G.HasEdge(gr.At(0, 0), gr.At(0, 1)) || !gr.G.HasEdge(gr.At(0, 0), gr.At(1, 0)) {
		t.Fatal("missing grid edges at origin")
	}
	if gr.G.HasEdge(gr.At(0, 3), gr.At(0, 0)) {
		t.Fatal("grid should not wrap")
	}
	if _, err := NewGrid(0, 3); err == nil {
		t.Fatal("NewGrid(0,3) should fail")
	}
}

func TestGridRowColumnSets(t *testing.T) {
	gr, err := NewGrid(3, 3)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	row := gr.Row(1)
	want := []graph.NodeID{3, 4, 5}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("Row(1) = %v, want %v", row, want)
		}
	}
	col := gr.Column(2)
	want = []graph.NodeID{2, 5, 8}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("Column(2) = %v, want %v", col, want)
		}
	}
}

func TestTorusWraps(t *testing.T) {
	to, err := NewTorus(3, 4)
	if err != nil {
		t.Fatalf("NewTorus: %v", err)
	}
	if !to.G.HasEdge(to.At(0, 3), to.At(0, 0)) {
		t.Fatal("torus must wrap horizontally")
	}
	if !to.G.HasEdge(to.At(2, 1), to.At(0, 1)) {
		t.Fatal("torus must wrap vertically")
	}
	// Every torus node has degree 4.
	for v := 0; v < to.G.N(); v++ {
		if d := to.G.Degree(graph.NodeID(v)); d != 4 {
			t.Fatalf("torus node %d degree = %d, want 4", v, d)
		}
	}
	if _, err := NewTorus(2, 4); err == nil {
		t.Fatal("NewTorus(2,4) should fail")
	}
}

func TestMesh(t *testing.T) {
	m, err := NewMesh(2, 3, 4)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	if m.G.N() != 24 {
		t.Fatalf("N = %d, want 24", m.G.N())
	}
	id, err := m.At(1, 2, 3)
	if err != nil {
		t.Fatalf("At: %v", err)
	}
	got := m.Coord(id)
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Coord(At(1,2,3)) = %v", got)
	}
	// Mesh edges connect single-coordinate ±1 neighbors only.
	a, _ := m.At(0, 0, 0)
	b, _ := m.At(0, 0, 1)
	c, _ := m.At(0, 1, 1)
	if !m.G.HasEdge(a, b) {
		t.Fatal("missing unit edge")
	}
	if m.G.HasEdge(a, c) {
		t.Fatal("diagonal edge should not exist")
	}
	if _, err := m.At(2, 0, 0); err == nil {
		t.Fatal("out-of-range coordinate should fail")
	}
	if _, err := m.At(0, 0); err == nil {
		t.Fatal("wrong arity should fail")
	}
	if _, err := NewMesh(); err == nil {
		t.Fatal("empty mesh should fail")
	}
	if _, err := NewMesh(3, 0); err == nil {
		t.Fatal("zero extent should fail")
	}
}

func TestMeshSlice(t *testing.T) {
	m, err := NewMesh(3, 3)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	v, _ := m.At(1, 2)
	// Fixing axis 0 keeps the row: 3 nodes with first coordinate 1.
	row := m.Slice(v, []int{0})
	if len(row) != 3 {
		t.Fatalf("row slice = %v, want 3 nodes", row)
	}
	for _, u := range row {
		if m.Coord(u)[0] != 1 {
			t.Fatalf("row slice node %d has coord %v", u, m.Coord(u))
		}
	}
	// Fixing axis 1 keeps the column.
	col := m.Slice(v, []int{1})
	if len(col) != 3 {
		t.Fatalf("column slice = %v, want 3 nodes", col)
	}
	for _, u := range col {
		if m.Coord(u)[1] != 2 {
			t.Fatalf("column slice node %d has coord %v", u, m.Coord(u))
		}
	}
	// Fixing everything returns just v; fixing nothing returns all nodes.
	if s := m.Slice(v, []int{0, 1}); len(s) != 1 || s[0] != v {
		t.Fatalf("fully fixed slice = %v", s)
	}
	if s := m.Slice(v, nil); len(s) != 9 {
		t.Fatalf("free slice = %d nodes, want 9", len(s))
	}
}

func TestGridMatchesMesh2D(t *testing.T) {
	gr, err := NewGrid(4, 5)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m, err := NewMesh(4, 5)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	if gr.G.N() != m.G.N() || gr.G.M() != m.G.M() {
		t.Fatalf("grid %d/%d vs mesh %d/%d", gr.G.N(), gr.G.M(), m.G.N(), m.G.M())
	}
	for v := 0; v < gr.G.N(); v++ {
		r, c := gr.RowCol(graph.NodeID(v))
		coord := m.Coord(graph.NodeID(v))
		if coord[0] != r || coord[1] != c {
			t.Fatalf("node %d: grid (%d,%d) vs mesh %v", v, r, c, coord)
		}
	}
}
