package topology

import (
	"fmt"

	"matchmake/internal/graph"
)

// TreeNet is a rooted tree network in the convention of §3.6: the root sits
// at level l (the number of levels) and the leaves at level 0. Services
// advertise on the path to the root and clients request along their own
// path to the root, so m(n) = O(l).
type TreeNet struct {
	G    *graph.Graph
	Root graph.NodeID
	// Level[v] is the level of v: root = height, leaves ≥ 0.
	Level []int
	// Height is the root's level (= depth of the deepest leaf).
	Height int
}

// NewBalancedTree returns the complete a-ary tree with the given number of
// levels below the root: fanout ≥ 1, levels ≥ 0. The root has level
// `levels`; n = (a^(levels+1) − 1)/(a − 1) for a ≥ 2.
func NewBalancedTree(fanout, levels int) (*TreeNet, error) {
	return NewProfileTree(func(int) int { return fanout }, levels)
}

// NewProfileTree builds a tree whose nodes at level i (root level = levels,
// counting down) each have childrenAt(i) children, until level 0 is
// reached. This realizes the degree profiles d(i) of §3.6, where the
// 'factorial' relation d(l)·d(l−1)···d(1) ≈ n governs the depth formulas.
func NewProfileTree(childrenAt func(level int) int, levels int) (*TreeNet, error) {
	if levels < 0 {
		return nil, fmt.Errorf("topology: tree levels %d < 0", levels)
	}
	// First pass: count nodes level by level.
	total := 1
	width := 1
	for lv := levels; lv >= 1; lv-- {
		c := childrenAt(lv)
		if c < 1 {
			return nil, fmt.Errorf("topology: childrenAt(%d) = %d, need ≥ 1", lv, c)
		}
		width *= c
		total += width
		if total > 1<<22 {
			return nil, fmt.Errorf("topology: tree exceeds %d nodes", 1<<22)
		}
	}
	g := graph.New(total)
	g.SetName(fmt.Sprintf("tree-h%d-n%d", levels, total))
	t := &TreeNet{G: g, Root: 0, Level: make([]int, total), Height: levels}
	// Second pass: lay out nodes breadth-first, root first.
	t.Level[0] = levels
	next := 1
	frontier := []graph.NodeID{0}
	for lv := levels; lv >= 1; lv-- {
		c := childrenAt(lv)
		var newFrontier []graph.NodeID
		for _, parent := range frontier {
			for j := 0; j < c; j++ {
				child := graph.NodeID(next)
				next++
				g.MustAddEdge(parent, child)
				t.Level[child] = lv - 1
				newFrontier = append(newFrontier, child)
			}
		}
		frontier = newFrontier
	}
	return t, nil
}

// Leaves returns the nodes at level 0.
func (t *TreeNet) Leaves() []graph.NodeID {
	var out []graph.NodeID
	for v, lv := range t.Level {
		if lv == 0 {
			out = append(out, graph.NodeID(v))
		}
	}
	return out
}

// SpanningTree returns the rooted spanning tree view used by the tree
// match-making strategy.
func (t *TreeNet) SpanningTree() (*graph.Tree, error) {
	return graph.SpanningTree(t.G, t.Root)
}
