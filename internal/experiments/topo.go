package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/stats"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// measuredLocate runs register+locate pairs over the simulator and
// returns the mean post hops, mean locate hops (query flood + reply) and
// the largest cache that built up.
func measuredLocate(g *graph.Graph, strat rendezvous.Strategy, pairs [][2]graph.NodeID) (post, locate float64, maxCache int, err error) {
	net, err := sim.New(g)
	if err != nil {
		return 0, 0, 0, err
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strat, fastOpts())
	if err != nil {
		return 0, 0, 0, err
	}
	var postHops, locateHops []float64
	for k, pair := range pairs {
		port := core.Port(fmt.Sprintf("svc-%d", k))
		net.ResetCounters()
		if _, err := sys.RegisterServer(port, pair[0]); err != nil {
			return 0, 0, 0, err
		}
		postHops = append(postHops, float64(net.Hops()))
		net.ResetCounters()
		if _, err := sys.Locate(pair[1], port); err != nil {
			return 0, 0, 0, fmt.Errorf("locate %s: %w", port, err)
		}
		locateHops = append(locateHops, float64(net.Hops()))
	}
	return stats.Summarize(postHops).Mean, stats.Summarize(locateHops).Mean,
		stats.MaxInts(sys.CacheSizes()), nil
}

// samplePairs draws k random (server, client) pairs on an n-node
// universe.
func samplePairs(n, k int, seed uint64) [][2]graph.NodeID {
	rng := rand.New(rand.NewPCG(seed, seed^0x1f83d9abfb41bd6b))
	out := make([][2]graph.NodeID, k)
	for i := range out {
		out[i] = [2]graph.NodeID{graph.NodeID(rng.IntN(n)), graph.NodeID(rng.IntN(n))}
	}
	return out
}

// E06Manhattan measures the §3.1 claims: on p×q grids a full
// match-making instance costs O(p+q) real hops with caches of size O(√n),
// and on d-dimensional meshes the analytic cost scales as n^((d−1)/d).
func E06Manhattan() ([]Table, error) {
	grid := Table{
		ID:    "E6.1",
		Title: "Manhattan grids: measured hops vs 2√n",
		Note:  "post = row flood (q−1); locate = column flood + reply ≤ p−1 + (p+q); caches ≤ √n.",
		Columns: []string{
			"grid", "n", "post hops", "locate hops", "total", "2√n", "total/2√n", "max cache",
		},
	}
	for _, side := range []int{4, 8, 12, 16} {
		gr, err := topology.NewGrid(side, side)
		if err != nil {
			return nil, err
		}
		pairs := samplePairs(gr.G.N(), 24, uint64(side))
		post, locate, maxCache, err := measuredLocate(gr.G, strategy.Manhattan(gr), pairs)
		if err != nil {
			return nil, err
		}
		total := post + locate
		bound := 2 * math.Sqrt(float64(gr.G.N()))
		grid.Rows = append(grid.Rows, []string{
			fmt.Sprintf("%dx%d", side, side), itoa(gr.G.N()),
			f2(post), f2(locate), f2(total), f2(bound), f3(total / bound), itoa(maxCache),
		})
	}

	torus := Table{
		ID:      "E6.2",
		Title:   "torus (Stony Brook) variant",
		Note:    "wrap-around halves flood distances; the 2√n shape persists.",
		Columns: grid.Columns,
	}
	for _, side := range []int{8, 16} {
		to, err := topology.NewTorus(side, side)
		if err != nil {
			return nil, err
		}
		pairs := samplePairs(to.G.N(), 24, uint64(side)*7)
		post, locate, maxCache, err := measuredLocate(to.G, strategy.Manhattan(to), pairs)
		if err != nil {
			return nil, err
		}
		total := post + locate
		bound := 2 * math.Sqrt(float64(to.G.N()))
		torus.Rows = append(torus.Rows, []string{
			fmt.Sprintf("%dx%d", side, side), itoa(to.G.N()),
			f2(post), f2(locate), f2(total), f2(bound), f3(total / bound), itoa(maxCache),
		})
	}

	mesh := Table{
		ID:    "E6.3",
		Title: "d-dimensional meshes: m(n) = Θ(n^((d−1)/d))",
		Note:  "analytic #P+#Q per node; fitted exponent vs (d−1)/d.",
		Columns: []string{
			"d", "sizes", "m(n) series", "fitted exp", "(d−1)/d",
		},
	}
	for _, d := range []int{2, 3, 4} {
		var sides []int
		switch d {
		case 2:
			sides = []int{8, 12, 16, 24, 32}
		case 3:
			sides = []int{4, 6, 8, 10}
		default:
			sides = []int{3, 4, 5}
		}
		var ns, ms []float64
		series := ""
		for _, side := range sides {
			dims := make([]int, d)
			for i := range dims {
				dims[i] = side
			}
			me, err := topology.NewMesh(dims...)
			if err != nil {
				return nil, err
			}
			postAxes := make([]int, d-1)
			for i := range postAxes {
				postAxes[i] = i
			}
			s, err := strategy.MeshSplit(me, postAxes)
			if err != nil {
				return nil, err
			}
			cost := float64(len(s.Post(0)) + len(s.Query(0)))
			ns = append(ns, float64(me.G.N()))
			ms = append(ms, cost)
			if series != "" {
				series += " "
			}
			series += f2(cost)
		}
		exp := stats.PowerLawExponent(ns, ms)
		mesh.Rows = append(mesh.Rows, []string{
			itoa(d), fmt.Sprintf("%v", sides), series, f3(exp), f3(float64(d-1) / float64(d)),
		})
	}
	return []Table{grid, torus, mesh}, nil
}

// E07Hypercube reproduces §3.2: m(n) = 2·2^(d/2) = 2√n on even-d cubes,
// singleton rendezvous, and the ε-split trade-off.
func E07Hypercube() ([]Table, error) {
	main := Table{
		ID:    "E7.1",
		Title: "binary d-cubes: m(n) = 2·2^(d/2)",
		Note:  "exact for even d; measured hops include subcube floods and the reply.",
		Columns: []string{
			"d", "n", "m(n)", "2√n", "measured hops", "max cache", "√n",
		},
	}
	for _, d := range []int{4, 6, 8} {
		h, err := topology.NewHypercube(d)
		if err != nil {
			return nil, err
		}
		s, err := strategy.HalfCube(h)
		if err != nil {
			return nil, err
		}
		analytic := float64(len(s.Post(0)) + len(s.Query(0)))
		pairs := samplePairs(h.G.N(), 16, uint64(d))
		post, locate, maxCache, err := measuredLocate(h.G, s, pairs)
		if err != nil {
			return nil, err
		}
		main.Rows = append(main.Rows, []string{
			itoa(d), itoa(h.G.N()),
			f2(analytic), f2(2 * math.Sqrt(float64(h.G.N()))),
			f2(post + locate), itoa(maxCache), f2(math.Sqrt(float64(h.G.N()))),
		})
	}

	split := Table{
		ID:    "E7.2",
		Title: "ε-split trade-off on the 8-cube",
		Note:  "#P = 2^k vs #Q = 2^(d−k); minimum at k = d/2 — tune k to relative server immobility.",
		Columns: []string{
			"k", "#P", "#Q", "m = #P+#Q",
		},
	}
	h8, err := topology.NewHypercube(8)
	if err != nil {
		return nil, err
	}
	for k := 0; k <= 8; k++ {
		s, err := strategy.HypercubeSplit(h8, k)
		if err != nil {
			return nil, err
		}
		p := len(s.Post(0))
		q := len(s.Query(0))
		split.Rows = append(split.Rows, []string{itoa(k), itoa(p), itoa(q), itoa(p + q)})
	}
	return []Table{main, split}, nil
}

// E08CCC reproduces §3.3: on cube-connected cycles the tuned split costs
// m(n) = O(√(n·log n)) with caches of size O(√(n/log n)).
func E08CCC() ([]Table, error) {
	t := Table{
		ID:    "E8",
		Title: "cube-connected cycles",
		Note:  "m(n)/√(n·log₂n) and cache/√(n/log₂n) stay Θ(1) as d grows.",
		Columns: []string{
			"d", "n", "#P", "#Q", "m(n)", "m/√(n·lg n)", "cache", "cache/√(n/lg n)",
		},
	}
	for _, d := range []int{3, 4, 5, 6, 7, 8} {
		c, err := topology.NewCCC(d)
		if err != nil {
			return nil, err
		}
		s := strategy.CCCSplit(c)
		p := len(s.Post(0))
		q := len(s.Query(0))
		n := float64(c.G.N())
		lg := math.Log2(n)
		t.Rows = append(t.Rows, []string{
			itoa(d), itoa(c.G.N()), itoa(p), itoa(q), itoa(p + q),
			f3(float64(p+q) / math.Sqrt(n*lg)),
			itoa(p),
			f3(float64(p) / math.Sqrt(n/lg)),
		})
	}
	return []Table{t}, nil
}

// E09Projective reproduces §3.4: on PG(2,k), m(n) = 2(k+1) ≈ 2√n, and
// the method resists failures of whole lines as long as some live line
// pair still crosses.
func E09Projective() ([]Table, error) {
	cost := Table{
		ID:    "E9.1",
		Title: "projective planes PG(2,k)",
		Note:  "every instance costs exactly 2(k+1); n = k²+k+1 so 2(k+1) ≈ 2√n.",
		Columns: []string{
			"k", "n", "m(n)=2(k+1)", "2√n", "ratio",
		},
	}
	for _, k := range []int{2, 3, 5, 7, 11, 13} {
		p, err := topology.NewPlane(k)
		if err != nil {
			return nil, err
		}
		m := float64(2 * (k + 1))
		bound := 2 * math.Sqrt(float64(p.N()))
		cost.Rows = append(cost.Rows, []string{
			itoa(k), itoa(p.N()), f2(m), f2(bound), f3(m / bound),
		})
	}

	fail := Table{
		ID:    "E9.2",
		Title: "resilience to a full line failure",
		Note:  "crash all k+1 nodes of one line; pairs retry over their (k+1)² line choices.",
		Columns: []string{
			"k", "first-choice success", "with retries", "pairs sampled",
		},
	}
	rng := rand.New(rand.NewPCG(9, 9))
	for _, k := range []int{3, 5, 7} {
		p, err := topology.NewPlane(k)
		if err != nil {
			return nil, err
		}
		dead := make(map[graph.NodeID]bool)
		for _, v := range p.Lines[rng.IntN(len(p.Lines))] {
			dead[v] = true
		}
		const samples = 300
		firstOK, retryOK := 0, 0
		for t := 0; t < samples; t++ {
			s := graph.NodeID(rng.IntN(p.N()))
			c := graph.NodeID(rng.IntN(p.N()))
			if pairSucceeds(p, s, c, 0, p.K, dead) {
				firstOK++
			}
			found := false
			for pi := 0; pi <= p.K && !found; pi++ {
				for qi := 0; qi <= p.K && !found; qi++ {
					found = pairSucceeds(p, s, c, pi, qi, dead)
				}
			}
			if found {
				retryOK++
			}
		}
		fail.Rows = append(fail.Rows, []string{
			itoa(k),
			f3(float64(firstOK) / samples),
			f3(float64(retryOK) / samples),
			itoa(samples),
		})
	}
	return []Table{cost, fail}, nil
}

// pairSucceeds reports whether the plane pair (s, c) with given line
// choices shares a live rendezvous node.
func pairSucceeds(p *topology.Plane, s, c graph.NodeID, postLine, queryLine int, dead map[graph.NodeID]bool) bool {
	ls, err := p.LineThrough(s, postLine)
	if err != nil {
		return false
	}
	lc, err := p.LineThrough(c, queryLine)
	if err != nil {
		return false
	}
	for _, v := range rendezvous.Intersect(ls, lc) {
		if !dead[v] {
			return true
		}
	}
	return false
}
