package experiments

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"matchmake/internal/cluster"
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/hashlocate"
	"matchmake/internal/lighthouse"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/stats"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// E12Lighthouse reproduces §4: locate effort versus server density,
// schedule comparison (fixed, doubling, ruler), trail-lifetime effect,
// and the beam mapping onto a point-to-point network.
func E12Lighthouse() ([]Table, error) {
	const (
		planeSide = 96
		beamLen   = 16
		period    = 6
		ttl       = 24
		maxTrials = 6000
		clients   = 40
	)
	density := Table{
		ID:    "E12.1",
		Title: "locate effort vs server density",
		Note:  "ruler schedule, l=4; denser planes are found in fewer trials.",
		Columns: []string{
			"servers", "density s (per cell)", "mean trials", "mean cells probed", "found",
		},
	}
	for _, servers := range []int{1, 4, 16, 64} {
		trials, probes, found, err := lighthouseRun(planeSide, servers, beamLen, period, ttl,
			lighthouse.RulerSchedule{L: 4, Gap: 1}, maxTrials, clients, 100+uint64(servers))
		if err != nil {
			return nil, err
		}
		density.Rows = append(density.Rows, []string{
			itoa(servers),
			fmt.Sprintf("%.5f", float64(servers)/float64(planeSide*planeSide)),
			f2(trials), f2(probes), f3(found),
		})
	}

	sched := Table{
		ID:    "E12.2",
		Title: "client schedules at fixed density (16 servers)",
		Note:  "doubling and the binary-counter ruler adapt effort; fixed short beams can miss.",
		Columns: []string{
			"schedule", "mean trials", "mean cells probed", "mean ticks", "found",
		},
	}
	schedules := []lighthouse.Schedule{
		lighthouse.FixedSchedule{L: 4, Gap: 1},
		lighthouse.FixedSchedule{L: 16, Gap: 1},
		lighthouse.DoublingSchedule{L: 2, Gap: 1, E: 3},
		lighthouse.RulerSchedule{L: 2, Gap: 1},
	}
	for _, sc := range schedules {
		trials, probes, found, ticks, err := lighthouseRunTicks(planeSide, 16, beamLen, period, ttl,
			sc, maxTrials, clients, 777)
		if err != nil {
			return nil, err
		}
		sched.Rows = append(sched.Rows, []string{
			sc.Name(), f2(trials), f2(probes), f2(ticks), f3(found),
		})
	}

	ttlT := Table{
		ID:    "E12.3",
		Title: "trail lifetime d effect (16 servers, ruler l=4)",
		Note:  "longer-lived trails light more of the plane: fewer trials needed.",
		Columns: []string{
			"trail ttl d", "mean trials", "mean cells probed", "found",
		},
	}
	for _, d := range []int{3, 12, 48} {
		trials, probes, found, err := lighthouseRun(planeSide, 16, beamLen, period, d,
			lighthouse.RulerSchedule{L: 4, Gap: 1}, maxTrials, clients, 300+uint64(d))
		if err != nil {
			return nil, err
		}
		ttlT.Rows = append(ttlT.Rows, []string{itoa(d), f2(trials), f2(probes), f3(found)})
	}

	drift := Table{
		ID:    "E12.5",
		Title: "server drifting near mid-search: ruler vs doubling",
		Note:  "a server appears near the client at tick 300; doubling is stuck in long intervals while the ruler's recurring short beams catch it quickly — the §4 'less time-loss' claim.",
		Columns: []string{
			"schedule", "mean extra ticks after appearance", "found",
		},
	}
	for _, sc := range []lighthouse.Schedule{
		lighthouse.DoublingSchedule{L: 2, Gap: 1, E: 3},
		lighthouse.RulerSchedule{L: 2, Gap: 1},
	} {
		const (
			runs   = 30
			wakeAt = 300
		)
		extraSum, hits := 0.0, 0
		for run := 0; run < runs; run++ {
			plane, err := lighthouse.NewPlane(64, 64, 900+uint64(run))
			if err != nil {
				return nil, err
			}
			// The server wakes close to the client and keeps drifting; its
			// beams are long-lived so any nearby probe sees them.
			srv, err := plane.AddDormantServer("svc", lighthouse.Point{X: 8, Y: 8}, 10, 2, 40, wakeAt)
			if err != nil {
				return nil, err
			}
			srv.DriftEvery = 4
			res := plane.Locate("svc", lighthouse.Point{X: 4, Y: 4}, sc, 4000)
			if res.Found {
				hits++
				extra := float64(res.Ticks - wakeAt)
				if extra < 0 {
					extra = 0
				}
				extraSum += extra
			}
		}
		found := float64(hits) / runs
		mean := 0.0
		if hits > 0 {
			mean = extraSum / float64(hits)
		}
		drift.Rows = append(drift.Rows, []string{sc.Name(), f2(mean), f3(found)})
	}

	netT := Table{
		ID:    "E12.4",
		Title: "beams over a point-to-point network (torus 16×16)",
		Note:  "routing tables used back-to-front simulate straight-line beams (§4).",
		Columns: []string{
			"servers", "mean trials", "mean nodes probed", "found",
		},
	}
	for _, servers := range []int{1, 4, 16} {
		to, err := topology.NewTorus(16, 16)
		if err != nil {
			return nil, err
		}
		nl, err := lighthouse.NewNetLighthouse(to.G, 55+uint64(servers))
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewPCG(60, uint64(servers)))
		for s := 0; s < servers; s++ {
			node := graph.NodeID(rng.IntN(to.G.N()))
			if _, err := nl.AddServer("svc", node, 8, period, ttl); err != nil {
				return nil, err
			}
		}
		for i := 0; i < 10; i++ {
			nl.Tick()
		}
		var trials, probes []float64
		found := 0
		for c := 0; c < clients; c++ {
			res, err := nl.Locate("svc", graph.NodeID(rng.IntN(to.G.N())),
				lighthouse.RulerSchedule{L: 3, Gap: 1}, maxTrials)
			if err != nil {
				return nil, err
			}
			trials = append(trials, float64(res.Trials))
			probes = append(probes, float64(res.NodesProbed))
			if res.Found {
				found++
			}
		}
		netT.Rows = append(netT.Rows, []string{
			itoa(servers),
			f2(stats.Summarize(trials).Mean),
			f2(stats.Summarize(probes).Mean),
			f3(float64(found) / clients),
		})
	}
	return []Table{density, sched, ttlT, netT, drift}, nil
}

func lighthouseRun(side, servers, beamLen, period, ttl int, sc lighthouse.Schedule, maxTrials, clients int, seed uint64) (trials, probes, found float64, err error) {
	t, p, f, _, err := lighthouseRunTicks(side, servers, beamLen, period, ttl, sc, maxTrials, clients, seed)
	return t, p, f, err
}

func lighthouseRunTicks(side, servers, beamLen, period, ttl int, sc lighthouse.Schedule, maxTrials, clients int, seed uint64) (trials, probes, found, ticks float64, err error) {
	plane, err := lighthouse.NewPlane(side, side, seed)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0xdeadbeefcafef00d))
	for s := 0; s < servers; s++ {
		pos := lighthouse.Point{X: rng.IntN(side), Y: rng.IntN(side)}
		if _, err := plane.AddServer("svc", pos, beamLen, period, ttl); err != nil {
			return 0, 0, 0, 0, err
		}
	}
	plane.TickN(2 * period)
	var ts, ps, ks []float64
	hits := 0
	for c := 0; c < clients; c++ {
		pos := lighthouse.Point{X: rng.IntN(side), Y: rng.IntN(side)}
		res := plane.Locate("svc", pos, sc, maxTrials)
		ts = append(ts, float64(res.Trials))
		ps = append(ps, float64(res.CellsProbed))
		ks = append(ks, float64(res.Ticks))
		if res.Found {
			hits++
		}
		plane.Compact()
	}
	return stats.Summarize(ts).Mean, stats.Summarize(ps).Mean,
		float64(hits) / float64(clients), stats.Summarize(ks).Mean, nil
}

// E13Hash reproduces §5: Hash Locate's two-message matches, its balanced
// load, its fragility to rendezvous crashes, and the replication/rehash
// mitigations.
func E13Hash() ([]Table, error) {
	const n = 256
	cost := Table{
		ID:    "E13.1",
		Title: "hash locate vs shotgun cost",
		Note:  "hash: 1 post + 2 hops per locate; shotgun checkerboard: Θ(√n) each.",
		Columns: []string{
			"method", "post msgs", "locate hops (mean)",
		},
	}
	// Hash side.
	netH, err := sim.New(topology.Complete(n))
	if err != nil {
		return nil, err
	}
	defer netH.Close()
	hs, err := hashlocate.New(netH, hashlocate.Options{})
	if err != nil {
		return nil, err
	}
	netH.ResetCounters()
	if _, err := hs.Post("svc", 3); err != nil {
		return nil, err
	}
	hashPostHops := float64(netH.Hops())
	var hops []float64
	rng := rand.New(rand.NewPCG(13, 31))
	for i := 0; i < 30; i++ {
		netH.ResetCounters()
		if _, err := hs.Locate(graph.NodeID(rng.IntN(n)), "svc"); err != nil {
			return nil, err
		}
		hops = append(hops, float64(netH.Hops()))
	}
	cost.Rows = append(cost.Rows, []string{"hash", f2(hashPostHops), f2(stats.Summarize(hops).Mean)})

	// Shotgun side.
	pairs := samplePairs(n, 30, 77)
	post, locate, _, err := measuredLocate(topology.Complete(n), rendezvous.Checkerboard(n), pairs)
	if err != nil {
		return nil, err
	}
	cost.Rows = append(cost.Rows, []string{"shotgun 2√n", f2(post), f2(locate)})

	load := Table{
		ID:    "E13.2",
		Title: "hash load distribution (1000 ports on 256 nodes)",
		Note:  "a well-chosen hash spreads the locate burden over the network.",
		Columns: []string{
			"total entries", "mean per node", "max per node",
		},
	}
	netL, err := sim.New(topology.Complete(n))
	if err != nil {
		return nil, err
	}
	defer netL.Close()
	hl, err := hashlocate.New(netL, hashlocate.Options{})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 1000; i++ {
		if _, err := hl.Post(core.Port(fmt.Sprintf("p%d", i)), graph.NodeID(i%n)); err != nil {
			return nil, err
		}
	}
	sizes := hl.CacheSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	load.Rows = append(load.Rows, []string{
		itoa(total), f2(stats.MeanInts(sizes)), itoa(stats.MaxInts(sizes)),
	})

	crash := Table{
		ID:    "E13.3",
		Title: "vulnerability to rendezvous crashes",
		Note:  "one crash kills a hash-located service network-wide; shotgun loses only the pairs whose singleton rendezvous died; replication/rehash recover.",
		Columns: []string{
			"method", "locate success after crash",
		},
	}
	row, err := hashCrashRow("hash r=1", hashlocate.Options{}, n)
	if err != nil {
		return nil, err
	}
	crash.Rows = append(crash.Rows, row)
	row, err = hashCrashRow("hash r=3", hashlocate.Options{Replicas: 3}, n)
	if err != nil {
		return nil, err
	}
	crash.Rows = append(crash.Rows, row)
	row, err = hashCrashRow("hash rehash", hashlocate.Options{MaxRehash: 2}, n)
	if err != nil {
		return nil, err
	}
	crash.Rows = append(crash.Rows, row)

	// Shotgun: crash the same count of nodes (1) and sample clients.
	netS, err := sim.New(topology.Complete(n))
	if err != nil {
		return nil, err
	}
	defer netS.Close()
	sys, err := core.NewSystem(netS, rendezvous.Checkerboard(n), fastOpts())
	if err != nil {
		return nil, err
	}
	if _, err := sys.RegisterServer("svc", 3); err != nil {
		return nil, err
	}
	// Crash one of the server's posting row nodes.
	postRow := sys.Strategy().Post(3)
	if err := netS.Crash(postRow[0]); err != nil {
		return nil, err
	}
	ok := 0
	const samples = 40
	for i := 0; i < samples; i++ {
		client := graph.NodeID(rng.IntN(n))
		if netS.Crashed(client) {
			continue
		}
		if _, err := sys.Locate(client, "svc"); err == nil {
			ok++
		}
	}
	crash.Rows = append(crash.Rows, []string{"shotgun 2√n", f3(float64(ok) / samples)})

	neigh, err := neighborhoodTable()
	if err != nil {
		return nil, err
	}
	return []Table{cost, load, crash, neigh}, nil
}

// neighborhoodTable exercises the §5 generalization P,Q : U×Π → 2^U —
// services hashed onto neighborhoods of a hierarchy, with Amoeba-style
// visibility scopes.
func neighborhoodTable() (Table, error) {
	t := Table{
		ID:    "E13.4",
		Title: "neighborhood hashing on a 4×4×4 hierarchy",
		Note:  "local services resolve at level 1 with one query; cross-campus ones climb to their LCA; out-of-scope services stay invisible.",
		Columns: []string{
			"scenario", "resolved level", "rendezvous queried", "found",
		},
	}
	h, err := topology.NewHierarchy(4, 4, 4)
	if err != nil {
		return t, err
	}
	net, err := sim.New(h.G)
	if err != nil {
		return t, err
	}
	defer net.Close()
	nb, err := hashlocate.NewNeighborhood(net, h, 300*time.Millisecond)
	if err != nil {
		return t, err
	}
	if _, err := nb.Post("local-fs", 1, 1); err != nil {
		return t, err
	}
	if _, err := nb.Post("campus-db", 1, 2); err != nil {
		return t, err
	}
	if _, err := nb.Post("global-auth", 1, 3); err != nil {
		return t, err
	}
	rows := []struct {
		name   string
		client graph.NodeID
		port   core.Port
	}{
		{"same cluster, local service", 2, "local-fs"},
		{"same campus, campus service", 12, "campus-db"},
		{"cross campus, global service", 60, "global-auth"},
		{"cross campus, local service", 60, "local-fs"},
	}
	for _, row := range rows {
		res, err := nb.Locate(row.client, row.port)
		if err != nil {
			t.Rows = append(t.Rows, []string{row.name, "-", itoa(res.Queried), "false"})
			continue
		}
		t.Rows = append(t.Rows, []string{row.name, itoa(res.Level), itoa(res.Queried), "true"})
	}
	return t, nil
}

func hashCrashRow(name string, opts hashlocate.Options, n int) ([]string, error) {
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		return nil, err
	}
	defer net.Close()
	hs, err := hashlocate.New(net, opts)
	if err != nil {
		return nil, err
	}
	primary := hs.Rendezvous("svc", 0)
	server := graph.NodeID(0)
	for isIn(primary, server) {
		server++
	}
	if _, err := hs.Post("svc", server); err != nil {
		return nil, err
	}
	if err := net.Crash(primary[0]); err != nil {
		return nil, err
	}
	// After the crash the server re-posts, exercising rehash if enabled.
	if opts.MaxRehash > 0 {
		if _, err := hs.Post("svc", server); err != nil {
			return nil, err
		}
	}
	ok, samples := 0, 40
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < samples; i++ {
		client := graph.NodeID(rng.IntN(n))
		if net.Crashed(client) || client == server {
			continue
		}
		if _, err := hs.Locate(client, "svc"); err == nil {
			ok++
		}
	}
	return []string{name, f3(float64(ok) / float64(samples))}, nil
}

func isIn(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// E14Robustness reproduces §2.4: with #(P∩Q) ≥ f+1 the match survives up
// to f crashed rendezvous nodes; redundancy costs r× the posting.
func E14Robustness() ([]Table, error) {
	const n = 64
	t := Table{
		ID:    "E14",
		Title: "f+1 redundant rendezvous under worst-case crashes",
		Note:  "crash f nodes of the pair's own rendezvous set: r > f survives, r = f fails.",
		Columns: []string{
			"redundancy r", "m(n)", "survives f=r−1", "fails at f=r", "random-crash success (f=2)",
		},
	}
	for _, r := range []int{1, 2, 3, 4} {
		strat := rendezvous.RedundantCheckerboard(n, r)
		m, err := rendezvous.Build(strat)
		if err != nil {
			return nil, err
		}
		// Worst-case: crash exactly f nodes of the rendezvous set of a
		// fixed pair.
		server, client := graph.NodeID(9), graph.NodeID(54)
		meet := rendezvous.Intersect(strat.Post(server), strat.Query(client))
		surviveF := simulateCrashLocate(n, strat, server, client, meet[:r-1])
		failAtR := simulateCrashLocate(n, strat, server, client, meet[:r])
		// Random crashes f=2 across many client samples.
		okRate, err := randomCrashRate(n, strat, 2, 40)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			itoa(r), f2(m.AvgCost()),
			fmt.Sprintf("%v", surviveF), fmt.Sprintf("%v", !failAtR),
			f3(okRate),
		})
	}
	return []Table{t}, nil
}

// simulateCrashLocate reports whether a locate succeeds after crashing
// the given rendezvous nodes.
func simulateCrashLocate(n int, strat rendezvous.Strategy, server, client graph.NodeID, crash []graph.NodeID) bool {
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		return false
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strat, fastOpts())
	if err != nil {
		return false
	}
	if _, err := sys.RegisterServer("svc", server); err != nil {
		return false
	}
	for _, v := range crash {
		if err := net.Crash(v); err != nil {
			return false
		}
	}
	_, err = sys.Locate(client, "svc")
	return err == nil
}

// randomCrashRate measures locate success with f random non-endpoint
// crashes.
func randomCrashRate(n int, strat rendezvous.Strategy, f, samples int) (float64, error) {
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		return 0, err
	}
	defer net.Close()
	sys, err := core.NewSystem(net, strat, fastOpts())
	if err != nil {
		return 0, err
	}
	server := graph.NodeID(9)
	if _, err := sys.RegisterServer("svc", server); err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewPCG(14, uint64(f)))
	crashed := 0
	for crashed < f {
		v := graph.NodeID(rng.IntN(n))
		if v != server && !net.Crashed(v) {
			if err := net.Crash(v); err != nil {
				return 0, err
			}
			crashed++
		}
	}
	ok, tried := 0, 0
	for i := 0; i < samples; i++ {
		client := graph.NodeID(rng.IntN(n))
		if net.Crashed(client) {
			continue
		}
		tried++
		if _, err := sys.Locate(client, "svc"); err == nil {
			ok++
		}
	}
	if tried == 0 {
		return 0, errors.New("no live clients sampled")
	}
	return float64(ok) / float64(tried), nil
}

// E15Ring reproduces §2.3.5: on rings no match-making beats Ω(n), while
// the same strategies on grids cost Θ(√n).
func E15Ring() ([]Table, error) {
	t := Table{
		ID:    "E15",
		Title: "rings force Ω(n); grids allow Θ(√n)",
		Note:  "measured mean hops per full match (post+locate); checkerboard on a ring still pays Θ(n) in routing.",
		Columns: []string{
			"topology", "n", "strategy", "mean hops", "hops/n", "hops/2√n",
		},
	}
	for _, n := range []int{16, 64, 144} {
		ring, err := topology.Ring(n)
		if err != nil {
			return nil, err
		}
		for _, strat := range []rendezvous.Strategy{
			rendezvous.Broadcast(n),
			rendezvous.Checkerboard(n),
		} {
			pairs := samplePairs(n, 16, uint64(n))
			post, locate, _, err := measuredLocate(ring, strat, pairs)
			if err != nil {
				return nil, err
			}
			total := post + locate
			t.Rows = append(t.Rows, []string{
				"ring", itoa(n), strat.Name(), f2(total),
				f3(total / float64(n)), f3(total / (2 * math.Sqrt(float64(n)))),
			})
		}
		side := int(math.Sqrt(float64(n)))
		gr, err := topology.NewGrid(side, side)
		if err != nil {
			return nil, err
		}
		pairs := samplePairs(n, 16, uint64(n)*3)
		post, locate, _, err := measuredLocate(gr.G, strategy.Manhattan(gr), pairs)
		if err != nil {
			return nil, err
		}
		total := post + locate
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("grid %dx%d", side, side), itoa(n), "manhattan", f2(total),
			f3(total / float64(n)), f3(total / (2 * math.Sqrt(float64(n)))),
		})
	}
	return []Table{t}, nil
}

// E16Weighted reproduces the (M3′) adjustment: when queries are α times
// more frequent than posts, the optimal grid split shifts to
// p = √(n/α) rows, with cost 2√(αn). A second table measures the live
// serving realization (strategy.Weighted over the cluster fast path):
// promoting the observed-hot ports of a Zipf workload to the post-heavy
// split lowers the measured message passes per locate.
func E16Weighted() ([]Table, error) {
	const n = 64
	t := Table{
		ID:    "E16",
		Title: "frequency-weighted Manhattan splits (n = 64)",
		Note:  "minimize #P + α·#Q = q + α·p over p·q = n; optimum 2√(αn).",
		Columns: []string{
			"α", "best p×q", "weighted cost", "2√(αn)", "balanced 8×8 cost",
		},
	}
	for _, alpha := range []float64{0.25, 1, 4, 16} {
		p, q, cost := strategy.OptimalGridSplit(n, alpha)
		balanced := 8 + alpha*8
		t.Rows = append(t.Rows, []string{
			f2(alpha),
			fmt.Sprintf("%dx%d", p, q),
			f2(cost),
			f2(2 * math.Sqrt(alpha*n)),
			f2(balanced),
		})
	}
	measured, err := e16Measured(n)
	if err != nil {
		return nil, err
	}
	return []Table{t, measured}, nil
}

// e16Measured runs the same Zipf locate sample against the balanced
// checkerboard and against the weighted strategy with the top-2 ports
// promoted, reporting measured passes/locate on the in-process fast
// path.
func e16Measured(n int) (Table, error) {
	const (
		ports   = 8
		locates = 4000
	)
	t := Table{
		ID:    "E16",
		Title: "measured weighted serving (mem transport, Zipf s=1.2)",
		Note:  "top-2 ports promoted to the post-heavy split (α=16 ⇒ #Q=2); same sample both rows.",
		Columns: []string{
			"strategy", "hot ports", "passes/locate",
		},
	}
	hot, err := strategy.PostHeavy(n, strategy.AlphaQuerySize(n, 16))
	if err != nil {
		return t, err
	}
	w, err := strategy.NewWeighted(rendezvous.Checkerboard(n), hot)
	if err != nil {
		return t, err
	}
	// One deterministic Zipf sample, replayed against both configs.
	rng := rand.New(rand.NewPCG(42, 7))
	zipf := rand.NewZipf(rng, 1.2, 1, ports-1)
	sample := make([]struct {
		client graph.NodeID
		port   core.Port
	}, locates)
	counts := make(map[core.Port]int, ports)
	for i := range sample {
		sample[i].client = graph.NodeID(rng.IntN(n))
		sample[i].port = core.Port(fmt.Sprintf("svc-%04d", zipf.Uint64()))
		counts[sample[i].port]++
	}
	top := make([]core.Port, 0, len(counts))
	for p := range counts {
		top = append(top, p)
	}
	sort.Slice(top, func(i, j int) bool {
		if counts[top[i]] != counts[top[j]] {
			return counts[top[i]] > counts[top[j]]
		}
		return top[i] < top[j]
	})
	if len(top) > 2 {
		top = top[:2]
	}

	run := func(promote bool) (float64, error) {
		tr, err := cluster.NewWeightedMemTransport(topology.Complete(n), w, 0)
		if err != nil {
			return 0, err
		}
		for p := 0; p < ports; p++ {
			if _, err := tr.Register(core.Port(fmt.Sprintf("svc-%04d", p)), graph.NodeID((p*7919)%n)); err != nil {
				return 0, err
			}
		}
		if promote {
			if err := tr.SetHotPorts(top); err != nil {
				return 0, err
			}
		}
		tr.ResetPasses()
		for _, s := range sample {
			if _, err := tr.Locate(s.client, s.port); err != nil {
				return 0, err
			}
		}
		return float64(tr.Passes()) / float64(locates), nil
	}
	base, err := run(false)
	if err != nil {
		return t, err
	}
	weighted, err := run(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		[]string{"checkerboard-64 (balanced)", "0", f2(base)},
		[]string{"weighted checkerboard + post-heavy", "2", f2(weighted)},
	)
	return t, nil
}

// E17Decomposition reproduces the generic §3 method: O(√n) connected
// parts on arbitrary connected graphs, server posts O(n), client
// broadcasts ≤ √n, caches O(√n).
func E17Decomposition() ([]Table, error) {
	t := Table{
		ID:    "E17",
		Title: "√n decomposition on arbitrary connected graphs",
		Note:  "server addresses one node per part; client floods its own part.",
		Columns: []string{
			"graph", "n", "parts", "max part", "#P", "max #Q", "mean locate hops",
		},
	}
	graphs := []struct {
		name string
		g    *graph.Graph
	}{}
	if g, err := topology.RandomConnected(100, 60, 21); err == nil {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{"random-100", g})
	}
	if gr, err := topology.NewGrid(15, 15); err == nil {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{"grid-15x15", gr.G})
	}
	if tr, err := topology.NewBalancedTree(3, 5); err == nil {
		graphs = append(graphs, struct {
			name string
			g    *graph.Graph
		}{"tree-3ary-5", tr.G})
	}
	// The UUCP core: the paper's own "existing network" case, where the
	// generic method should beat the order-n figure by a wide margin.
	if ug, err := topology.UUCPNet(4); err == nil {
		comps := ug.Components()
		core := comps[0]
		for _, comp := range comps {
			if len(comp) > len(core) {
				core = comp
			}
		}
		if sub, _, err := ug.InducedSubgraph(core); err == nil {
			sub.SetName("uucp-core")
			graphs = append(graphs, struct {
				name string
				g    *graph.Graph
			}{"uucp-core", sub})
		}
	}
	for _, item := range graphs {
		d, err := strategy.NewDecomposition(item.g)
		if err != nil {
			return nil, err
		}
		s := d.Strategy()
		maxQ := 0
		for v := 0; v < item.g.N(); v++ {
			if q := len(s.Query(graph.NodeID(v))); q > maxQ {
				maxQ = q
			}
		}
		pairs := samplePairs(item.g.N(), 16, 17)
		_, locate, _, err := measuredLocate(item.g, s, pairs)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			item.name, itoa(item.g.N()),
			itoa(d.Partition().NumParts()),
			itoa(d.Partition().MaxPartSize()),
			itoa(len(s.Post(0))),
			itoa(maxQ),
			f2(locate),
		})
	}
	return []Table{t}, nil
}

// E18Families compares the §1.5 locate families end to end on one
// workload: messages per match, cache footprint, and crash survival.
func E18Families() ([]Table, error) {
	const n = 64
	t := Table{
		ID:    "E18",
		Title: "locate families on a 64-node complete network",
		Note:  "broadcast/sweep pay Θ(n) on one side; checkerboard balances at 2√n; hash pays Θ(1) but dies with its rendezvous.",
		Columns: []string{
			"family", "post hops", "locate hops", "total cache entries", "success after 1 crash",
		},
	}
	families := []rendezvous.Strategy{
		rendezvous.Broadcast(n),
		rendezvous.Sweep(n),
		rendezvous.Central(n, 0),
		rendezvous.Checkerboard(n),
	}
	rng := rand.New(rand.NewPCG(18, 18))
	for _, strat := range families {
		net, err := sim.New(topology.Complete(n))
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(net, strat, fastOpts())
		if err != nil {
			net.Close()
			return nil, err
		}
		server := graph.NodeID(9)
		net.ResetCounters()
		if _, err := sys.RegisterServer("svc", server); err != nil {
			net.Close()
			return nil, err
		}
		postHops := float64(net.Hops())
		var locHops []float64
		for i := 0; i < 20; i++ {
			net.ResetCounters()
			client := graph.NodeID(rng.IntN(n))
			if _, err := sys.Locate(client, "svc"); err != nil {
				net.Close()
				return nil, fmt.Errorf("%s: %w", strat.Name(), err)
			}
			locHops = append(locHops, float64(net.Hops()))
		}
		cacheTotal := 0
		for _, sz := range sys.CacheSizes() {
			cacheTotal += sz
		}
		// Crash one random rendezvous-capable node (not the server); for
		// the centralized strategy the only meaningful victim is the name
		// server itself.
		victim := graph.NodeID(1 + rng.IntN(n-1))
		for victim == server {
			victim = graph.NodeID(1 + rng.IntN(n-1))
		}
		if strat.Name() == rendezvous.Central(n, 0).Name() {
			victim = 0
		}
		if err := net.Crash(victim); err != nil {
			net.Close()
			return nil, err
		}
		ok, tried := 0, 0
		for i := 0; i < 8; i++ {
			client := graph.NodeID(rng.IntN(n))
			if net.Crashed(client) {
				continue
			}
			tried++
			if _, err := sys.Locate(client, "svc"); err == nil {
				ok++
			}
		}
		t.Rows = append(t.Rows, []string{
			strat.Name(), f2(postHops), f2(stats.Summarize(locHops).Mean),
			itoa(cacheTotal), f3(float64(ok) / float64(tried)),
		})
		net.Close()
	}

	// Hash family.
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		return nil, err
	}
	defer net.Close()
	hs, err := hashlocate.New(net, hashlocate.Options{})
	if err != nil {
		return nil, err
	}
	primary := hs.Rendezvous("svc", 0)
	server := graph.NodeID(9)
	for isIn(primary, server) {
		server++
	}
	net.ResetCounters()
	if _, err := hs.Post("svc", server); err != nil {
		return nil, err
	}
	postHops := float64(net.Hops())
	var locHops []float64
	for i := 0; i < 20; i++ {
		net.ResetCounters()
		client := graph.NodeID(rng.IntN(n))
		if _, err := hs.Locate(client, "svc"); err != nil {
			return nil, err
		}
		locHops = append(locHops, float64(net.Hops()))
	}
	sizes := hs.CacheSizes()
	cacheTotal := 0
	for _, sz := range sizes {
		cacheTotal += sz
	}
	if err := net.Crash(primary[0]); err != nil {
		return nil, err
	}
	ok, tried := 0, 0
	for i := 0; i < 20; i++ {
		client := graph.NodeID(rng.IntN(n))
		if net.Crashed(client) {
			continue
		}
		tried++
		if _, err := hs.Locate(client, "svc"); err == nil {
			ok++
		}
	}
	t.Rows = append(t.Rows, []string{
		"hash", f2(postHops), f2(stats.Summarize(locHops).Mean),
		itoa(cacheTotal), f3(float64(ok) / float64(tried)),
	})
	return []Table{t}, nil
}
