package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/stats"
)

// E01Matrices regenerates the six example rendezvous matrices of §2.3.1:
// broadcasting, sweeping, centralized name server (node 3), truly
// distributed (9 nodes), hierarchical (9 nodes) and the binary 3-cube.
func E01Matrices() ([]Table, error) {
	var tables []Table
	matrix := func(id, title, note string, s rendezvous.Strategy) error {
		m, err := rendezvous.Build(s)
		if err != nil {
			return fmt.Errorf("%s: %w", title, err)
		}
		if err := m.Verify(); err != nil {
			return fmt.Errorf("%s: %w", title, err)
		}
		t := Table{ID: id, Title: title, Note: note, Columns: []string{"server", "row (clients 1..n)"}}
		for i := 0; i < m.N(); i++ {
			t.Rows = append(t.Rows, []string{itoa(i + 1), m.RowString(graph.NodeID(i))})
		}
		tables = append(tables, t)
		return nil
	}
	if err := matrix("E1.1", "Example 1: broadcasting",
		"Server stays put, client looks everywhere: row i is all i.",
		rendezvous.Broadcast(9)); err != nil {
		return nil, err
	}
	if err := matrix("E1.2", "Example 2: sweeping",
		"Client stays put, server looks for work: every row is 1..9.",
		rendezvous.Sweep(9)); err != nil {
		return nil, err
	}
	if err := matrix("E1.3", "Example 3: centralized name server",
		"All services post at node 3, all clients query node 3.",
		rendezvous.Central(9, 2)); err != nil {
		return nil, err
	}
	if err := matrix("E1.4", "Example 4: truly distributed name server",
		"Every node is rendezvous for exactly n pairs (3×3 blocks).",
		rendezvous.Checkerboard(9)); err != nil {
		return nil, err
	}
	// Example 5 prints the designated lowest-common-ancestor rendezvous.
	t5 := Table{
		ID:    "E1.5",
		Title: "Example 5: hierarchical name server",
		Note:  "Order 1,2,3 < 7; 4,5,6 < 8; 7,8 < 9; entries are LCAs.",
		Columns: []string{
			"server", "row (clients 1..9)",
		},
	}
	for i := 0; i < 9; i++ {
		cells := make([]string, 9)
		for j := 0; j < 9; j++ {
			cells[j] = itoa(int(rendezvous.HierarchyExampleLCA(graph.NodeID(i), graph.NodeID(j))) + 1)
		}
		t5.Rows = append(t5.Rows, []string{itoa(i + 1), joinCells(cells)})
	}
	tables = append(tables, t5)
	if err := matrix("E1.6", "Example 6: binary 3-cube",
		"P(abc)={axy}, Q(abc)={xbc}; rendezvous of (abc, a'b'c') is a b'c'.",
		rendezvous.CubeExample()); err != nil {
		return nil, err
	}
	return tables, nil
}

func joinCells(cells []string) string {
	out := ""
	for i, c := range cells {
		if i > 0 {
			out += " "
		}
		out += c
	}
	return out
}

// E02Probabilistic reproduces the §2.2 analysis: for random P, Q with
// |P| = p, |Q| = q on n nodes, E[#(P∩Q)] = pq/n, so expecting one full
// rendezvous node needs p + q ≥ 2√n.
func E02Probabilistic() ([]Table, error) {
	const n = 100
	t := Table{
		ID:    "E2",
		Title: "random strategies: E[#(P∩Q)] = pq/n",
		Note:  "n = 100; √n = 10; matches expected when p·q ≈ n, i.e. p+q ≥ 2√n = 20.",
		Columns: []string{
			"p", "q", "pq/n", "measured E[#(P∩Q)]", "P(match)",
		},
	}
	rng := rand.New(rand.NewPCG(2024, 6))
	for _, pq := range [][2]int{{2, 2}, {5, 5}, {10, 10}, {10, 20}, {20, 20}, {5, 40}, {30, 30}} {
		p, q := pq[0], pq[1]
		s := rendezvous.Random(n, p, q, rng.Uint64())
		var sum float64
		matched := 0
		const samples = 4000
		for k := 0; k < samples; k++ {
			i := graph.NodeID(rng.IntN(n))
			j := graph.NodeID(rng.IntN(n))
			meet := rendezvous.Intersect(s.Post(i), s.Query(j))
			sum += float64(len(meet))
			if len(meet) > 0 {
				matched++
			}
		}
		t.Rows = append(t.Rows, []string{
			itoa(p), itoa(q),
			f2(float64(p*q) / n),
			f2(sum / samples),
			f3(float64(matched) / samples),
		})
	}
	return []Table{t}, nil
}

// E03LowerBounds checks Propositions 1 and 2 across the strategy
// spectrum: measured average #P·#Q and m(n) against the bounds
// (Σ√k_v)²/n² and 2(Σ√k_v)/n computed from each strategy's own
// multiplicities.
func E03LowerBounds() ([]Table, error) {
	const n = 64
	t := Table{
		ID:    "E3",
		Title: "Propositions 1–2: measured vs bound",
		Note:  "ratio ≥ 1 everywhere; = 1 where the construction is tight.",
		Columns: []string{
			"strategy", "avg #P·#Q", "P1 bound", "ratio", "m(n)", "P2 bound", "ratio",
		},
	}
	strategies := []rendezvous.Strategy{
		rendezvous.Broadcast(n),
		rendezvous.Sweep(n),
		rendezvous.Central(n, 0),
		rendezvous.Checkerboard(n),
		rendezvous.RedundantCheckerboard(n, 2),
		rendezvous.Random(n, 8, 8, 11),
		rendezvous.Random(n, 4, 24, 12),
		rendezvous.Lift(rendezvous.Checkerboard(16)),
	}
	for _, s := range strategies {
		m, err := rendezvous.Build(s)
		if err != nil {
			return nil, err
		}
		k := m.Multiplicities()
		p1 := rendezvous.ProductLowerBound(k)
		p2 := rendezvous.CostLowerBound(k)
		t.Rows = append(t.Rows, []string{
			s.Name(),
			f2(m.AvgProduct()), f2(p1), f2(ratioOrInf(m.AvgProduct(), p1)),
			f2(m.AvgCost()), f2(p2), f2(ratioOrInf(m.AvgCost(), p2)),
		})
	}
	return []Table{t}, nil
}

func ratioOrInf(a, b float64) float64 {
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

// E04Checkerboard evaluates the Proposition 3 construction across
// universe sizes, including non-squares: cost vs 2√n and load spread.
func E04Checkerboard() ([]Table, error) {
	t := Table{
		ID:    "E4",
		Title: "checkerboard construction vs 2√n",
		Note:  "Proposition 3: #P+#Q ≈ 2√n, #P·#Q ≈ n, k_v ≈ n.",
		Columns: []string{
			"n", "m(n)", "2√n", "m/2√n", "avg #P·#Q", "max k_v", "singleton",
		},
	}
	for _, n := range []int{9, 16, 30, 64, 100, 144, 250, 400} {
		m, err := rendezvous.Build(rendezvous.Checkerboard(n))
		if err != nil {
			return nil, err
		}
		if err := m.Verify(); err != nil {
			return nil, err
		}
		bound := 2 * math.Sqrt(float64(n))
		t.Rows = append(t.Rows, []string{
			itoa(n),
			f2(m.AvgCost()),
			f2(bound),
			f3(m.AvgCost() / bound),
			f2(m.AvgProduct()),
			itoa(stats.MaxInts(m.Multiplicities())),
			fmt.Sprintf("%v", m.IsOptimalShotgun()),
		})
	}
	return []Table{t}, nil
}

// E05Lifting verifies Proposition 4 through repeated application:
// m′(4n) = 2·m(n) and k′ = 4·k at every step.
func E05Lifting() ([]Table, error) {
	t := Table{
		ID:    "E5",
		Title: "lifting a 9-node checkerboard",
		Note:  "each lift: n ×4, m(n) ×2, k_v ×4 — Proposition 4 exactly.",
		Columns: []string{
			"n", "m(n)", "expected m", "max k_v", "expected k", "verified",
		},
	}
	s := rendezvous.Checkerboard(9)
	base, err := rendezvous.Build(s)
	if err != nil {
		return nil, err
	}
	baseCost := base.AvgCost()
	baseK := stats.MaxInts(base.Multiplicities())
	for step := 0; step <= 3; step++ {
		m, err := rendezvous.Build(s)
		if err != nil {
			return nil, err
		}
		if err := m.Verify(); err != nil {
			return nil, err
		}
		factor := math.Pow(2, float64(step))
		t.Rows = append(t.Rows, []string{
			itoa(s.N()),
			f2(m.AvgCost()),
			f2(baseCost * factor),
			itoa(stats.MaxInts(m.Multiplicities())),
			itoa(baseK * int(factor*factor)),
			fmt.Sprintf("%v", math.Abs(m.AvgCost()-baseCost*factor) < 1e-9),
		})
		if step < 3 {
			s = rendezvous.Lift(s)
		}
	}
	return []Table{t}, nil
}
