package experiments

import (
	"strings"
	"testing"
)

func TestTableStringAlignment(t *testing.T) {
	tab := Table{
		ID:      "T1",
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"short", "a-much-longer-header"},
		Rows: [][]string{
			{"123456789", "x"},
			{"1", "y"},
		},
	}
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "== T1: demo ==") {
		t.Fatalf("header line = %q", lines[0])
	}
	if lines[1] != "a note" {
		t.Fatalf("note line = %q", lines[1])
	}
	// Both data rows must start their second column at the same offset.
	col2 := strings.Index(lines[3], "x")
	col2b := strings.Index(lines[4], "y")
	if col2 != col2b {
		t.Fatalf("misaligned columns: %d vs %d\n%s", col2, col2b, out)
	}
	// The first column is padded to the widest cell (9 chars).
	if col2 < 9 {
		t.Fatalf("column 2 starts at %d, want ≥ 9", col2)
	}
}

func TestTableStringWithoutNote(t *testing.T) {
	tab := Table{ID: "T2", Title: "bare", Columns: []string{"c"}, Rows: [][]string{{"v"}}}
	out := tab.String()
	if strings.Contains(out, "\n\n") {
		t.Fatalf("unexpected blank line:\n%q", out)
	}
}

func TestTableStringRaggedRow(t *testing.T) {
	// Rows wider than the header must not panic; extra cells render.
	tab := Table{
		ID:      "T3",
		Title:   "ragged",
		Columns: []string{"a"},
		Rows:    [][]string{{"1", "extra"}},
	}
	out := tab.String()
	if !strings.Contains(out, "extra") {
		t.Fatalf("extra cell dropped:\n%s", out)
	}
}

func TestSortedKeys(t *testing.T) {
	got := sortedKeys(map[int]int{5: 1, 1: 2, 3: 3})
	want := []int{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("sortedKeys = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sortedKeys = %v, want %v", got, want)
		}
	}
}

func TestFormatters(t *testing.T) {
	if itoa(42) != "42" {
		t.Fatal("itoa")
	}
	if f2(1.005) != "1.00" && f2(1.005) != "1.01" {
		t.Fatalf("f2 = %q", f2(1.005))
	}
	if f3(0.12345) != "0.123" {
		t.Fatalf("f3 = %q", f3(0.12345))
	}
}
