package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func runExperiment(t *testing.T, id string) []Table {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	for _, tab := range tables {
		if len(tab.Rows) == 0 {
			t.Fatalf("%s table %q has no rows", id, tab.Title)
		}
		if tab.String() == "" {
			t.Fatalf("%s table %q renders empty", id, tab.Title)
		}
	}
	return tables
}

func cell(t *testing.T, tab Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Rows[row]) {
		t.Fatalf("table %q has no cell (%d,%d)", tab.Title, row, col)
	}
	return tab.Rows[row][col]
}

func cellFloat(t *testing.T, tab Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, tab, row, col), 64)
	if err != nil {
		t.Fatalf("table %q cell (%d,%d) = %q not a float", tab.Title, row, col, cell(t, tab, row, col))
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("registered %d experiments, want 18", len(all))
	}
	seen := make(map[string]bool)
	for _, e := range all {
		if e.Run == nil {
			t.Fatalf("%s has no runner", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, ok := ByID("e4"); !ok {
		t.Fatal("ByID should be case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID should reject unknown ids")
	}
}

func TestE01MatricesMatchPaper(t *testing.T) {
	tables := runExperiment(t, "E1")
	if len(tables) != 6 {
		t.Fatalf("E1 produced %d tables, want 6", len(tables))
	}
	// Example 1 row 5 (server 5): all 5s.
	if got := cell(t, tables[0], 4, 1); got != "5 5 5 5 5 5 5 5 5" {
		t.Fatalf("broadcast row 5 = %q", got)
	}
	// Example 3: every row is all 3s.
	if got := cell(t, tables[2], 0, 1); got != "3 3 3 3 3 3 3 3 3" {
		t.Fatalf("central row 1 = %q", got)
	}
	// Example 4 first row: 1 1 1 2 2 2 3 3 3.
	if got := cell(t, tables[3], 0, 1); got != "1 1 1 2 2 2 3 3 3" {
		t.Fatalf("distributed row 1 = %q", got)
	}
	// Example 5 first row: 7 7 7 9 9 9 9 9 9.
	if got := cell(t, tables[4], 0, 1); got != "7 7 7 9 9 9 9 9 9" {
		t.Fatalf("hierarchical row 1 = %q", got)
	}
	// Example 5 row 4: 9 9 9 8 8 8 9 9 9.
	if got := cell(t, tables[4], 3, 1); got != "9 9 9 8 8 8 9 9 9" {
		t.Fatalf("hierarchical row 4 = %q", got)
	}
	// Example 6 row 1 (server 000): 1 2 3 4 1 2 3 4.
	if got := cell(t, tables[5], 0, 1); got != "1 2 3 4 1 2 3 4" {
		t.Fatalf("cube row 1 = %q", got)
	}
}

func TestE02WithinTolerance(t *testing.T) {
	tables := runExperiment(t, "E2")
	tab := tables[0]
	for r := range tab.Rows {
		expect := cellFloat(t, tab, r, 2)
		measured := cellFloat(t, tab, r, 3)
		if expect == 0 {
			continue
		}
		if diff := measured/expect - 1; diff > 0.25 || diff < -0.25 {
			t.Fatalf("row %d: measured %.2f vs expected %.2f (off by >25%%)", r, measured, expect)
		}
	}
}

func TestE03BoundsHold(t *testing.T) {
	tables := runExperiment(t, "E3")
	tab := tables[0]
	for r := range tab.Rows {
		if ratio := cellFloat(t, tab, r, 3); ratio < 0.999 {
			t.Fatalf("row %d (%s): Prop 1 violated, ratio %.3f", r, cell(t, tab, r, 0), ratio)
		}
		if ratio := cellFloat(t, tab, r, 6); ratio < 0.999 {
			t.Fatalf("row %d (%s): Prop 2 violated, ratio %.3f", r, cell(t, tab, r, 0), ratio)
		}
	}
}

func TestE04CheckerboardNearBound(t *testing.T) {
	tables := runExperiment(t, "E4")
	for r := range tables[0].Rows {
		ratio := cellFloat(t, tables[0], r, 3)
		if ratio < 0.8 || ratio > 1.3 {
			t.Fatalf("row %d: m/2√n = %.3f outside [0.8, 1.3]", r, ratio)
		}
	}
}

func TestE05LiftVerified(t *testing.T) {
	tables := runExperiment(t, "E5")
	for r := range tables[0].Rows {
		if got := cell(t, tables[0], r, 5); got != "true" {
			t.Fatalf("lift step %d not verified", r)
		}
	}
}

func TestE06GridNearTheory(t *testing.T) {
	tables := runExperiment(t, "E6")
	// Grid totals within 2.5× of 2√n (floods + reply overhead stay O(√n)).
	for r := range tables[0].Rows {
		ratio := cellFloat(t, tables[0], r, 6)
		if ratio < 0.3 || ratio > 2.5 {
			t.Fatalf("grid row %d: total/2√n = %.3f outside [0.3, 2.5]", r, ratio)
		}
	}
	// Mesh exponents within 0.1 of (d−1)/d.
	mesh := tables[2]
	for r := range mesh.Rows {
		got := cellFloat(t, mesh, r, 3)
		want := cellFloat(t, mesh, r, 4)
		if diff := got - want; diff > 0.1 || diff < -0.1 {
			t.Fatalf("mesh row %d: exponent %.3f vs %.3f", r, got, want)
		}
	}
}

func TestE07HypercubeExact(t *testing.T) {
	tables := runExperiment(t, "E7")
	for r := range tables[0].Rows {
		m := cellFloat(t, tables[0], r, 2)
		bound := cellFloat(t, tables[0], r, 3)
		if m != bound {
			t.Fatalf("row %d: m(n) = %.2f, want exactly 2√n = %.2f on even d", r, m, bound)
		}
	}
	// ε-split minimum at k = 4 on the 8-cube.
	split := tables[1]
	minVal, minK := 1e18, -1
	for r := range split.Rows {
		if v := cellFloat(t, split, r, 3); v < minVal {
			minVal, minK = v, r
		}
	}
	if minK != 4 {
		t.Fatalf("ε-split minimum at k=%d, want 4", minK)
	}
}

func TestE08CCCRatiosBounded(t *testing.T) {
	tables := runExperiment(t, "E8")
	for r := range tables[0].Rows {
		if ratio := cellFloat(t, tables[0], r, 5); ratio < 0.3 || ratio > 3 {
			t.Fatalf("row %d: m/√(n·lg n) = %.3f out of range", r, ratio)
		}
		if ratio := cellFloat(t, tables[0], r, 7); ratio < 0.3 || ratio > 3 {
			t.Fatalf("row %d: cache ratio = %.3f out of range", r, ratio)
		}
	}
}

func TestE09ProjectiveRatios(t *testing.T) {
	tables := runExperiment(t, "E9")
	for r := range tables[0].Rows {
		if ratio := cellFloat(t, tables[0], r, 4); ratio < 0.9 || ratio > 1.5 {
			t.Fatalf("row %d: 2(k+1)/2√n = %.3f out of range", r, ratio)
		}
	}
	// Retrying across line choices must not lower the success rate.
	for r := range tables[1].Rows {
		first := cellFloat(t, tables[1], r, 1)
		retry := cellFloat(t, tables[1], r, 2)
		if retry < first {
			t.Fatalf("row %d: retry success %.3f < first-choice %.3f", r, retry, first)
		}
		if retry < 0.95 {
			t.Fatalf("row %d: retry success %.3f, want ≈ 1", r, retry)
		}
	}
}

func TestE10HierarchyShape(t *testing.T) {
	tables := runExperiment(t, "E10")
	tab := tables[0]
	// Deeper hierarchies (more levels) are cheaper than the flat k=1 until
	// the k = ½log n optimum: k=4 must beat k=1 on 256 nodes.
	flat := cellFloat(t, tab, 0, 2)
	k4 := cellFloat(t, tab, 2, 2)
	if k4 >= flat {
		t.Fatalf("k=4 cost %.2f should beat flat %.2f", k4, flat)
	}
}

func TestE11UUCPTable(t *testing.T) {
	tables := runExperiment(t, "E11")
	// Degree-1 row: paper says 840 sites; generated within 5%.
	tab := tables[0]
	var found bool
	for r := range tab.Rows {
		if cell(t, tab, r, 0) == "1" {
			want := cellFloat(t, tab, r, 1)
			got := cellFloat(t, tab, r, 2)
			if want != 840 {
				t.Fatalf("paper degree-1 sites = %v, want 840", want)
			}
			if got < 0.9*want || got > 1.1*want {
				t.Fatalf("generated degree-1 sites = %v, want ≈ 840", got)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("degree-1 row missing")
	}
	// Tree locate is far cheaper than 2√n.
	locate := tables[1]
	m := cellFloat(t, locate, 0, 3)
	bound := cellFloat(t, locate, 0, 4)
	if m >= bound {
		t.Fatalf("tree m(n) = %.2f should beat 2√n = %.2f", m, bound)
	}
}

func TestE12LighthouseMonotone(t *testing.T) {
	tables := runExperiment(t, "E12")
	density := tables[0]
	// More servers → fewer trials (weakly, allowing noise at the dense
	// end).
	first := cellFloat(t, density, 0, 2)
	last := cellFloat(t, density, len(density.Rows)-1, 2)
	if last > first {
		t.Fatalf("densest plane needs more trials (%.2f) than sparsest (%.2f)", last, first)
	}
	// The sparsest plane (one server lighting ~0.5% of the cells) may
	// time some clients out; denser planes must always be found.
	if f := cellFloat(t, density, 0, 4); f < 0.5 {
		t.Fatalf("sparsest density: found rate %.2f, want ≥ 0.5", f)
	}
	for r := 1; r < len(density.Rows); r++ {
		if f := cellFloat(t, density, r, 4); f < 0.95 {
			t.Fatalf("density row %d: found rate %.2f", r, f)
		}
	}
	// E12.5: the ruler catches a server that appears nearby with less
	// time-loss than the doubling schedule (§4).
	drift := tables[4]
	doubling := cellFloat(t, drift, 0, 1)
	ruler := cellFloat(t, drift, 1, 1)
	if ruler > doubling {
		t.Fatalf("ruler extra ticks %.2f should not exceed doubling %.2f", ruler, doubling)
	}
}

func TestE13HashCheaperButFragile(t *testing.T) {
	tables := runExperiment(t, "E13")
	cost := tables[0]
	hashCost := cellFloat(t, cost, 0, 2)
	shotgunCost := cellFloat(t, cost, 1, 2)
	if hashCost != 2 {
		t.Fatalf("hash locate cost = %.2f hops, want 2", hashCost)
	}
	if shotgunCost <= hashCost {
		t.Fatalf("shotgun cost %.2f should exceed hash %.2f", shotgunCost, hashCost)
	}
	crash := tables[2]
	var h1, shotgun float64 = -1, -1
	for r := range crash.Rows {
		switch cell(t, crash, r, 0) {
		case "hash r=1":
			h1 = cellFloat(t, crash, r, 1)
		case "shotgun 2√n":
			shotgun = cellFloat(t, crash, r, 1)
		}
	}
	if h1 != 0 {
		t.Fatalf("unreplicated hash survived a rendezvous crash: %.2f", h1)
	}
	if shotgun < 0.5 {
		t.Fatalf("shotgun survival %.2f, want most pairs alive", shotgun)
	}
}

func TestE14RedundancyRows(t *testing.T) {
	tables := runExperiment(t, "E14")
	for r := range tables[0].Rows {
		if got := cell(t, tables[0], r, 2); got != "true" {
			t.Fatalf("r=%d: did not survive f=r−1 crashes", r+1)
		}
		if got := cell(t, tables[0], r, 3); got != "true" {
			t.Fatalf("r=%d: did not fail at f=r crashes", r+1)
		}
	}
}

func TestE15RingVsGrid(t *testing.T) {
	tables := runExperiment(t, "E15")
	tab := tables[0]
	// For every n, the grid manhattan row must be far cheaper per node
	// than the ring rows.
	var lastRingPerN, gridPerN float64 = -1, -1
	for r := range tab.Rows {
		if strings.HasPrefix(cell(t, tab, r, 0), "ring") {
			lastRingPerN = cellFloat(t, tab, r, 4)
		} else {
			gridPerN = cellFloat(t, tab, r, 4)
			if lastRingPerN > 0 && gridPerN >= lastRingPerN {
				t.Fatalf("grid hops/n %.3f not below ring %.3f", gridPerN, lastRingPerN)
			}
		}
	}
}

func TestE16WeightedOptimum(t *testing.T) {
	tables := runExperiment(t, "E16")
	tab := tables[0]
	for r := range tab.Rows {
		best := cellFloat(t, tab, r, 2)
		balanced := cellFloat(t, tab, r, 4)
		if best > balanced+1e-9 {
			t.Fatalf("row %d: optimal split %.2f worse than balanced %.2f", r, best, balanced)
		}
		bound := cellFloat(t, tab, r, 3)
		if best < bound-1e-9 {
			t.Fatalf("row %d: cost %.2f beat the continuous bound %.2f", r, best, bound)
		}
	}
	// The measured serving table must show the weighted promotion
	// strictly lowering passes/locate on the same Zipf sample.
	if len(tables) < 2 {
		t.Fatal("E16 missing the measured weighted-serving table")
	}
	measured := tables[1]
	base := cellFloat(t, measured, 0, 2)
	weighted := cellFloat(t, measured, 1, 2)
	if weighted >= base {
		t.Fatalf("measured weighted passes/locate %.2f not below balanced %.2f", weighted, base)
	}
}

func TestE17DecompositionRuns(t *testing.T) {
	tables := runExperiment(t, "E17")
	for r := range tables[0].Rows {
		if hops := cellFloat(t, tables[0], r, 6); hops <= 0 {
			t.Fatalf("row %d: locate hops %.2f", r, hops)
		}
	}
}

func TestE18FamiliesShape(t *testing.T) {
	tables := runExperiment(t, "E18")
	tab := tables[0]
	byName := make(map[string][]string)
	for _, row := range tab.Rows {
		byName[row[0]] = row
	}
	for _, name := range []string{"broadcast", "sweep", "central@0", "checkerboard-64", "hash"} {
		if byName[name] == nil {
			t.Fatalf("family %s missing", name)
		}
	}
	// Centralized name server: its crash takes out all locates (§1.4).
	central := byName["central@0"]
	if central[4] != "0.000" {
		t.Fatalf("central survival = %s, want 0.000", central[4])
	}
	// Broadcast survives any single non-server crash.
	if byName["broadcast"][4] != "1.000" {
		t.Fatalf("broadcast survival = %s, want 1.000", byName["broadcast"][4])
	}
}
