// Package experiments regenerates every table and figure of the paper's
// evaluation, as indexed in DESIGN.md (E1–E18). Each experiment returns
// one or more Tables whose rows mirror what the paper reports: the six
// rendezvous matrices, the probabilistic analysis, the Proposition 1–4
// bounds and constructions, the per-topology m(n) series, the UUCPnet
// degree table, the Lighthouse schedules, and the Hash Locate trade-offs.
//
// The harness is consumed by cmd/mmbench (pretty printing), the root
// bench_test.go (one testing.B benchmark per experiment) and
// EXPERIMENTS.md (recorded paper-vs-measured results).
package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"matchmake/internal/core"
)

// Table is one regenerated table or figure series.
type Table struct {
	// ID is the experiment identifier (e.g. "E6").
	ID string
	// Title names the paper artifact being reproduced.
	Title string
	// Note states the paper's claim and how to read the rows.
	Note string
	// Columns are the column headers.
	Columns []string
	// Rows hold the data, pre-formatted.
	Rows [][]string
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Experiment is one runnable reproduction.
type Experiment struct {
	// ID is the DESIGN.md identifier.
	ID string
	// Title names the paper artifact.
	Title string
	// Run regenerates the tables.
	Run func() ([]Table, error)
}

// All lists every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "§2.3.1 example rendezvous matrices", Run: E01Matrices},
		{ID: "E2", Title: "§2.2 probabilistic analysis", Run: E02Probabilistic},
		{ID: "E3", Title: "§2.3.2 Propositions 1–2 lower bounds", Run: E03LowerBounds},
		{ID: "E4", Title: "§2.3.4 Proposition 3 checkerboard", Run: E04Checkerboard},
		{ID: "E5", Title: "§2.3.4 Proposition 4 lifting", Run: E05Lifting},
		{ID: "E6", Title: "§3.1 Manhattan grids and d-dim meshes", Run: E06Manhattan},
		{ID: "E7", Title: "§3.2 hypercubes and ε-splits", Run: E07Hypercube},
		{ID: "E8", Title: "§3.3 cube-connected cycles", Run: E08CCC},
		{ID: "E9", Title: "§3.4 projective planes", Run: E09Projective},
		{ID: "E10", Title: "§3.5 hierarchical networks", Run: E10Hierarchy},
		{ID: "E11", Title: "§3.6 UUCPnet table and tree depth", Run: E11UUCP},
		{ID: "E12", Title: "§4 Lighthouse Locate", Run: E12Lighthouse},
		{ID: "E13", Title: "§5 Hash Locate", Run: E13Hash},
		{ID: "E14", Title: "§2.4 robustness via f+1 rendezvous", Run: E14Robustness},
		{ID: "E15", Title: "§2.3.5 ring lower bound", Run: E15Ring},
		{ID: "E16", Title: "(M3′) frequency-weighted match-making", Run: E16Weighted},
		{ID: "E17", Title: "§3 generic √n decomposition", Run: E17Decomposition},
		{ID: "E18", Title: "§1.5 locate family comparison", Run: E18Families},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// Formatting helpers shared by the experiment files.

func itoa(v int) string { return strconv.Itoa(v) }

func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// fastOpts keeps simulator-driven experiments snappy: a locate that finds
// nothing gives up quickly instead of waiting out a long timeout.
func fastOpts() core.Options {
	return core.Options{
		LocateTimeout: 300 * time.Millisecond,
		CollectWindow: 10 * time.Millisecond,
	}
}

// sortedKeys returns the keys of an int-keyed map in ascending order.
func sortedKeys(m map[int]int) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
