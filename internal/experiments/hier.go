package experiments

import (
	"fmt"
	"math"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/stats"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// E10Hierarchy reproduces §3.5: with k levels of fan-out a (n = a^k),
// m(n) ≈ 2·k·√a = 2·k·n^(1/2k), minimized near k = ½·log₂ n where the
// locate costs O(log n); caches grow toward the top of the hierarchy; and
// local pairs resolve at low levels.
func E10Hierarchy() ([]Table, error) {
	const n = 256
	depth := Table{
		ID:    "E10.1",
		Title: "trade-off across hierarchy depth (n = 256)",
		Note:  "m(n) ≈ 2k·n^(1/2k): k = ½log₂n = 4 minimizes; flat k = 1 degenerates to 2√n.",
		Columns: []string{
			"levels k", "fan-out a", "m(n)", "2k·a^½", "max k_v (top load)",
		},
	}
	configs := [][]int{
		{256},
		{16, 16},
		{4, 4, 4, 4},
		{2, 2, 2, 2, 2, 2, 2, 2},
	}
	for _, fanouts := range configs {
		h, err := topology.NewHierarchy(fanouts...)
		if err != nil {
			return nil, err
		}
		s := strategy.HierarchyGateways(h)
		m, err := rendezvous.Build(s)
		if err != nil {
			return nil, err
		}
		if err := m.Verify(); err != nil {
			return nil, fmt.Errorf("hierarchy %v: %w", fanouts, err)
		}
		theory := 0.0
		for _, a := range fanouts {
			theory += 2 * math.Ceil(math.Sqrt(float64(a)))
		}
		depth.Rows = append(depth.Rows, []string{
			itoa(len(fanouts)), itoa(fanouts[0]),
			f2(m.AvgCost()), f2(theory),
			itoa(stats.MaxInts(m.Multiplicities())),
		})
	}

	local := Table{
		ID:    "E10.2",
		Title: "locality: cost truncated at the resolving level",
		Note:  "per LCA level on fanouts 4,4,4,4 — local pairs stop low, as §3.5 argues most traffic does.",
		Columns: []string{
			"LCA level", "pairs", "cost if stopped there", "full cost",
		},
	}
	h, err := topology.NewHierarchy(4, 4, 4, 4)
	if err != nil {
		return nil, err
	}
	s := strategy.HierarchyGateways(h)
	full := float64(len(s.Post(0)) + len(s.Query(0)))
	countByLevel := make(map[int]int)
	for i := 0; i < h.N(); i += 5 {
		for j := 0; j < h.N(); j += 7 {
			countByLevel[h.LCALevel(graph.NodeID(i), graph.NodeID(j))]++
		}
	}
	for _, level := range sortedKeys(countByLevel) {
		// Stopping at the resolving level pays 2·√a per level up to it.
		truncated := 0.0
		for lv := 1; lv <= level; lv++ {
			truncated += 2 * math.Ceil(math.Sqrt(float64(h.Fanouts[lv-1])))
		}
		if level == 0 {
			truncated = 0 // same node: local cache hit
		}
		local.Rows = append(local.Rows, []string{
			itoa(level), itoa(countByLevel[level]), f2(truncated), f2(full),
		})
	}
	return []Table{depth, local}, nil
}

// E11UUCP reproduces §3.6: the UUCPnet degree table, the path-to-root
// match-making cost m(n) = O(l), and the two tree-depth formulas.
func E11UUCP() ([]Table, error) {
	// (a) The degree table itself.
	table := Table{
		ID:    "E11.1",
		Title: "UUCPnet degree table (paper vs generated)",
		Note:  "1916 sites, 3848 edges; generated graph realizes the target sequence up to stub conflicts.",
		Columns: []string{
			"degree", "#sites (paper)", "#sites (generated)",
		},
	}
	g, err := topology.UUCPNet(4)
	if err != nil {
		return nil, err
	}
	gen := g.DegreeHistogram()
	want := make(map[int]int)
	for _, dc := range topology.UUCPDegreeTable() {
		want[dc.Degree] = dc.Sites
	}
	shown := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 15, 20, 25, 40, 45, 63, 471, 641}
	for _, d := range shown {
		table.Rows = append(table.Rows, []string{itoa(d), itoa(want[d]), itoa(gen[d])})
	}

	// (b) Path-to-root match-making on the UUCP core.
	comps := g.Components()
	coreNodes := comps[0]
	for _, comp := range comps {
		if len(comp) > len(coreNodes) {
			coreNodes = comp
		}
	}
	sub, _, err := g.InducedSubgraph(coreNodes)
	if err != nil {
		return nil, err
	}
	// Root the tree at the highest-degree node (ihnp4's stand-in).
	root := graph.NodeID(0)
	for v := 0; v < sub.N(); v++ {
		if sub.Degree(graph.NodeID(v)) > sub.Degree(root) {
			root = graph.NodeID(v)
		}
	}
	st, err := graph.SpanningTree(sub, root)
	if err != nil {
		return nil, err
	}
	var depths []float64
	for v := 0; v < sub.N(); v++ {
		depths = append(depths, float64(st.Depth(graph.NodeID(v))))
	}
	ds := stats.Summarize(depths)
	locate := Table{
		ID:    "E11.2",
		Title: "path-to-root locate on the UUCP core",
		Note:  "m(n) = avg(#P)+avg(#Q) = 2·(avg depth + 1): O(l), far below 2√n ≈ 87.",
		Columns: []string{
			"core nodes", "tree height l", "avg depth", "m(n)", "2√n", "root cache (=n)",
		},
	}
	locate.Rows = append(locate.Rows, []string{
		itoa(sub.N()), itoa(st.Height()), f2(ds.Mean),
		f2(2 * (ds.Mean + 1)),
		f2(2 * math.Sqrt(float64(sub.N()))),
		itoa(st.Size()),
	})

	// (c) Depth formulas for the two §3.6 degree profiles.
	formulas := Table{
		ID:    "E11.3",
		Title: "tree depth vs §3.6 formulas",
		Note:  "d(i)=c·i^(1+ε) ⇒ l ≈ log n/((1+ε)·loglog n); d(i)=c·2^(εi) ⇒ l ≈ √((2/ε)·log n).",
		Columns: []string{
			"profile", "ε", "n built", "l actual", "l formula", "ratio",
		},
	}
	for _, eps := range []float64{0.5, 1.0} {
		lActual, n := growProfileTree(func(level int) int {
			c := 1.0
			return clampFan(int(math.Round(c * math.Pow(float64(level), 1+eps))))
		}, 1<<17)
		logn := math.Log2(float64(n))
		formula := logn / ((1 + eps) * math.Log2(logn))
		formulas.Rows = append(formulas.Rows, []string{
			"poly", f2(eps), itoa(n), itoa(lActual), f2(formula), f3(float64(lActual) / formula),
		})
	}
	for _, eps := range []float64{0.5, 1.0} {
		lActual, n := growProfileTree(func(level int) int {
			return clampFan(int(math.Round(math.Pow(2, eps*float64(level)))))
		}, 1<<17)
		logn := math.Log2(float64(n))
		formula := math.Sqrt(2 / eps * logn)
		formulas.Rows = append(formulas.Rows, []string{
			"exp", f2(eps), itoa(n), itoa(lActual), f2(formula), f3(float64(lActual) / formula),
		})
	}
	return []Table{table, locate, formulas}, nil
}

func clampFan(f int) int {
	if f < 1 {
		return 1
	}
	if f > 4096 {
		return 4096
	}
	return f
}

// growProfileTree finds the smallest number of levels l such that a tree
// with the given per-level fan-out reaches at least target nodes, and
// returns (l, nodes built). Node counts follow the §3.6 'factorial'
// relation n ≈ d(l)·d(l−1)···d(1).
func growProfileTree(childrenAt func(level int) int, target int) (levels, n int) {
	for l := 1; l <= 64; l++ {
		total := 1
		width := 1
		for lv := l; lv >= 1; lv-- {
			width *= childrenAt(lv)
			total += width
			if total >= target {
				break
			}
		}
		if total >= target {
			return l, total
		}
	}
	return 64, 0
}
