package core

import "sync"

// cache is one node's (port, address) store. A service may be offered by
// several equivalent server processes (§1.3), so entries are kept per
// (port, server instance); within one instance the newest entry wins by
// logical timestamp, and tombstones (Active=false) supersede like any
// other entry. An optional capacity bound discards the stalest instance
// when full — the too-small-cache regime that turns Shotgun Locate into
// Lighthouse Locate.
type cache struct {
	mu       sync.Mutex
	ports    map[Port]map[uint64]Entry
	total    int // instances stored, for the capacity bound
	capacity int // 0 = unbounded
}

func newCache(capacity int) *cache {
	return &cache{ports: make(map[Port]map[uint64]Entry), capacity: capacity}
}

// put merges a posting; stale postings (older timestamp for the same
// server instance) are ignored.
func (c *cache) put(e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byID := c.ports[e.Port]
	if byID == nil {
		byID = make(map[uint64]Entry, 1)
		c.ports[e.Port] = byID
	}
	if cur, ok := byID[e.ServerID]; ok {
		if e.Time > cur.Time {
			byID[e.ServerID] = e
		}
		return
	}
	if c.capacity > 0 && c.total >= c.capacity {
		c.evictStalest()
		// Eviction may have emptied and dropped this port's map (when
		// the victim was its last instance); writing into the orphaned
		// map would lose the entry while still counting it.
		if byID = c.ports[e.Port]; byID == nil {
			byID = make(map[uint64]Entry, 1)
			c.ports[e.Port] = byID
		}
	}
	byID[e.ServerID] = e
	c.total++
}

// evictStalest removes the instance entry with the smallest timestamp.
// Caller holds the lock.
func (c *cache) evictStalest() {
	var (
		victimPort Port
		victimID   uint64
		oldest     uint64
		found      bool
	)
	for p, byID := range c.ports {
		for id, e := range byID {
			if !found || e.Time < oldest {
				victimPort, victimID, oldest, found = p, id, e.Time, true
			}
		}
	}
	if !found {
		return
	}
	delete(c.ports[victimPort], victimID)
	if len(c.ports[victimPort]) == 0 {
		delete(c.ports, victimPort)
	}
	c.total--
}

// get returns the freshest active entry for a port.
func (c *cache) get(p Port) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var (
		best  Entry
		found bool
	)
	for _, e := range c.ports[p] {
		if e.Active && (!found || e.Time > best.Time) {
			best, found = e, true
		}
	}
	return best, found
}

// getAll returns every active entry for a port.
func (c *cache) getAll(p Port) []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Entry
	for _, e := range c.ports[p] {
		if e.Active {
			out = append(out, e)
		}
	}
	return out
}

// size counts ports with at least one active instance; tombstones do not
// count as cached services.
func (c *cache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, byID := range c.ports {
		for _, e := range byID {
			if e.Active {
				n++
				break
			}
		}
	}
	return n
}

// drop removes one server instance's entry for a port, if present —
// the local expiry used when a retiring epoch's orphaned postings are
// garbage-collected.
func (c *cache) drop(p Port, serverID uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byID := c.ports[p]
	if byID == nil {
		return
	}
	if _, ok := byID[serverID]; !ok {
		return
	}
	delete(byID, serverID)
	if len(byID) == 0 {
		delete(c.ports, p)
	}
	c.total--
}

// inject force-places e, replacing any same-instance entry regardless
// of timestamps — the fault-injection bypass of put's §2.1 merge rule.
func (c *cache) inject(e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	byID := c.ports[e.Port]
	if byID == nil {
		byID = make(map[uint64]Entry, 1)
		c.ports[e.Port] = byID
	}
	if _, ok := byID[e.ServerID]; !ok {
		c.total++
	}
	byID[e.ServerID] = e
}

// entries returns every cached entry, tombstones included — the raw
// state dump anti-entropy reconciliation diffs against ground truth.
func (c *cache) entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Entry
	for _, byID := range c.ports {
		for _, e := range byID {
			out = append(out, e)
		}
	}
	return out
}

func (c *cache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ports = make(map[Port]map[uint64]Entry)
	c.total = 0
}
