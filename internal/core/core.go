// Package core implements Shotgun Locate, the paper's primary
// contribution: a distributed name server in which a server process with
// port π at address A posts (π, A) at the nodes P(A), a client at address
// B queries the nodes Q(B), and the nodes in P(A) ∩ Q(B) — the rendezvous
// nodes — answer with the server's address.
//
// The engine runs over the message-passing simulator (internal/sim) with
// any rendezvous.Strategy, maintains the per-node caches of §2.1
// (timestamped entries, superseded by fresher posts, tombstoned on
// deregistration), and supports the dynamic behaviours of §1.3: server
// migration, crashes and re-registration.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
)

// Port uniquely names a service (§1.3: "a port uniquely names a service";
// it gives no clue about the physical location of a server process).
type Port string

// Entry is a cached (port, address) posting.
type Entry struct {
	Port Port
	// Addr is the node address the server receives requests at.
	Addr graph.NodeID
	// ServerID distinguishes server instances on the same port.
	ServerID uint64
	// Time is the logical timestamp of the posting; fresher postings
	// supersede staler ones ("we can timestamp the messages to determine
	// which addresses are out of date in case of a conflict").
	Time uint64
	// Active is false for tombstones left by deregistration.
	Active bool
}

// Errors returned by the engine.
var (
	// ErrNotFound reports a locate that received no reply in time.
	ErrNotFound = errors.New("core: service not found")
	// ErrServerGone reports an operation on a deregistered server.
	ErrServerGone = errors.New("core: server deregistered")
)

// Options configure a System.
type Options struct {
	// LocateTimeout bounds how long a locate waits for the first reply.
	// Zero means 2s.
	LocateTimeout time.Duration
	// CollectWindow is how long a locate keeps collecting additional
	// replies after the first one, to pick the freshest address when a
	// migrated server's stale postings still linger. Zero means 5ms.
	CollectWindow time.Duration
	// CacheCapacity bounds each node cache (0 = unbounded, the paper's
	// §2.1 assumption 3). When full, the stalest entry is discarded,
	// which degrades Shotgun Locate toward Lighthouse Locate.
	CacheCapacity int
}

func (o Options) withDefaults() Options {
	if o.LocateTimeout <= 0 {
		o.LocateTimeout = 2 * time.Second
	}
	if o.CollectWindow <= 0 {
		o.CollectWindow = 5 * time.Millisecond
	}
	return o
}

// System is a running distributed name server over a network and a
// strategy.
type System struct {
	net  *sim.Network
	opts Options

	// stratMu guards strat, which the elastic serving layer swaps at an
	// epoch transition (SetStrategy); everything deriving posting or
	// query sets reads it through strategy(). The universe size never
	// changes — only the sets do.
	stratMu sync.RWMutex
	strat   rendezvous.Strategy

	caches []*cache

	clock    atomic.Uint64 // logical time for postings
	serverID atomic.Uint64 // server instance identifiers
	reqID    atomic.Uint64 // locate request identifiers

	mu      sync.Mutex
	pending map[uint64]chan replyMsg

	// srvMu guards servers, the live registration table probes consult:
	// a probe delivered at node v answers from the registrations whose
	// current address is v, the way a real host knows its own processes.
	srvMu   sync.Mutex
	servers map[uint64]*Server

	// repFilter, when set, scopes query answers to replica families: a
	// node self only answers a family-k query with entry e when
	// repFilter(self, k, e) holds. Installed by the serving layer's
	// replicated mode (SetReplicaFilter); nil means every cached entry
	// answers, the unreplicated §1.5 behaviour.
	repFilter func(self graph.NodeID, family int, e Entry) bool

	// forger, when set, lets a node lie: before self answers a query for
	// port from its cache, forger(self, port) may substitute a forged
	// entry (armed, not silent), suppress the answer entirely (armed and
	// silent), or decline (not armed — the node answers honestly).
	// Installed by the serving layer's Byzantine harness (SetForger);
	// forged answers still face the replica filter, like honest ones.
	forger func(self graph.NodeID, port Port) (e Entry, silent, armed bool)

	postsSent   atomic.Int64 // posting messages addressed (Σ #P reached)
	queriesSent atomic.Int64 // query messages addressed (Σ #Q reached)
	repliesSent atomic.Int64 // rendezvous replies sent
}

// message payloads exchanged through the simulator.
type (
	postMsg struct {
		entry Entry
	}
	queryMsg struct {
		port   Port
		client graph.NodeID
		reqID  uint64
		// all asks for every live instance, not just the freshest.
		all bool
		// family is the replica family the query is scoped to; it only
		// matters when the system has a replica filter installed.
		family int
	}
	replyMsg struct {
		reqID uint64
		entry Entry
		// from is the rendezvous node that answered — the attribution the
		// serving layer's answer-voting mode quarantines by.
		from graph.NodeID
	}
	// probeMsg asks the receiving node whether the server instance
	// (port, serverID) currently resides there; it travels as a direct
	// request/reply call, so a probe costs 2×Dist(client, addr) passes.
	probeMsg struct {
		port     Port
		serverID uint64
		// time echoes the prober's cached posting timestamp back in the
		// confirmation, so a hint hit does not fabricate freshness.
		time uint64
	}
	probeReply struct {
		entry Entry
		ok    bool
	}
)

// NewSystem installs the name-server handlers on every node of net.
// The strategy's universe must match the network size.
func NewSystem(net *sim.Network, strat rendezvous.Strategy, opts Options) (*System, error) {
	n := net.Graph().N()
	if strat.N() != n {
		return nil, fmt.Errorf("core: strategy universe %d != network size %d", strat.N(), n)
	}
	s := &System{
		net:     net,
		strat:   strat,
		opts:    opts.withDefaults(),
		caches:  make([]*cache, n),
		pending: make(map[uint64]chan replyMsg),
		servers: make(map[uint64]*Server),
	}
	for v := 0; v < n; v++ {
		s.caches[v] = newCache(s.opts.CacheCapacity)
		if err := net.SetHandler(graph.NodeID(v), s.HandleMessage); err != nil {
			return nil, fmt.Errorf("core: install handler: %w", err)
		}
	}
	return s, nil
}

// HandleMessage processes one delivered name-server message at a node.
// It is exported so higher layers (e.g. the service model) can wrap the
// per-node handler and delegate name-server traffic back to the system.
func (s *System) HandleMessage(self graph.NodeID, msg sim.Message) {
	switch m := msg.Payload.(type) {
	case postMsg:
		s.caches[self].put(m.entry)
	case queryMsg:
		if f := s.forger; f != nil {
			if fe, silent, armed := f(self, m.port); armed {
				// A lying node never consults its cache: it suppresses the
				// answer or substitutes the forged entry, which faces the
				// same replica filter an honest answer would.
				if silent {
					return
				}
				if s.repFilter != nil && !s.repFilter(self, m.family, fe) {
					return
				}
				s.repliesSent.Add(1)
				_ = s.net.Send(self, m.client, replyMsg{reqID: m.reqID, entry: fe, from: self})
				return
			}
		}
		if m.all {
			for _, entry := range s.caches[self].getAll(m.port) {
				if s.repFilter != nil && !s.repFilter(self, m.family, entry) {
					continue // not this family's rendezvous for that posting
				}
				s.repliesSent.Add(1)
				_ = s.net.Send(self, m.client, replyMsg{reqID: m.reqID, entry: entry, from: self})
			}
			return
		}
		entry, ok := s.freshestFor(self, m)
		if !ok {
			return // misses are silent, as in §1.5
		}
		s.repliesSent.Add(1)
		// Reply failures (crashed client, broken route) surface as locate
		// timeouts at the client; nothing to handle here.
		_ = s.net.Send(self, m.client, replyMsg{reqID: m.reqID, entry: entry, from: self})
	case replyMsg:
		s.mu.Lock()
		ch := s.pending[m.reqID]
		s.mu.Unlock()
		if ch != nil {
			select {
			case ch <- m:
			default:
			}
		}
	case probeMsg:
		if !msg.CanReply() {
			return
		}
		entry, ok := s.probeLocal(self, m)
		_ = msg.Reply(probeReply{entry: entry, ok: ok})
	}
}

// freshestFor picks the freshest active entry this node may answer a
// query with: the plain cache winner, or — under a replica filter — the
// freshest among the entries belonging to the query's family.
func (s *System) freshestFor(self graph.NodeID, m queryMsg) (Entry, bool) {
	if s.repFilter == nil {
		e, ok := s.caches[self].get(m.port)
		return e, ok && e.Active
	}
	var (
		best  Entry
		found bool
	)
	for _, e := range s.caches[self].getAll(m.port) {
		if !s.repFilter(self, m.family, e) {
			continue
		}
		if !found || e.Time > best.Time {
			best, found = e, true
		}
	}
	return best, found
}

// strategy returns the current strategy under the read lock.
func (s *System) strategy() rendezvous.Strategy {
	s.stratMu.RLock()
	defer s.stratMu.RUnlock()
	return s.strat
}

// SetStrategy swaps the strategy the engine posts and queries with —
// the engine half of an epoch transition: the serving layer installs
// the new epoch's sets here, re-posts the migration delta via
// RepostVia, and drives old-epoch floods explicitly through LocateVia
// until the old epoch drains. The universe size must not change.
// In-flight operations may still use the previous strategy's sets;
// callers that need a clean cut quiesce traffic first.
func (s *System) SetStrategy(strat rendezvous.Strategy) error {
	if strat.N() != s.net.Graph().N() {
		return fmt.Errorf("core: strategy universe %d != network size %d", strat.N(), s.net.Graph().N())
	}
	s.stratMu.Lock()
	s.strat = strat
	s.stratMu.Unlock()
	return nil
}

// SetReplicaFilter installs the family-scoping predicate of the
// replicated rendezvous mode: a node self answers a family-k query
// with entry e only when f(self, k, e) holds. Pass nil to restore the
// unscoped behaviour. Install it before traffic flows; the engine does
// not synchronize filter swaps against in-flight queries.
func (s *System) SetReplicaFilter(f func(self graph.NodeID, family int, e Entry) bool) {
	s.repFilter = f
}

// SetForger installs the Byzantine lying hook: before node self answers
// a query for port, f(self, port) may substitute a forged entry or
// suppress the answer (see the forger field). Pass nil to restore
// honest behaviour. Like SetReplicaFilter, install it while traffic is
// quiesced; the engine does not synchronize hook swaps against
// in-flight queries. Probes are unaffected — they are answered by the
// server's own host from its registration table, not by rendezvous
// nodes, which is exactly why a forged hint never survives validation.
func (s *System) SetForger(f func(self graph.NodeID, port Port) (e Entry, silent, armed bool)) {
	s.forger = f
}

// probeLocal answers a probe from the registration table: hit iff the
// probed server instance is live and its current address is this node.
func (s *System) probeLocal(self graph.NodeID, m probeMsg) (Entry, bool) {
	s.srvMu.Lock()
	srv := s.servers[m.serverID]
	s.srvMu.Unlock()
	if srv == nil || srv.port != m.port {
		return Entry{}, false
	}
	srv.mu.Lock()
	node, gone := srv.node, srv.gone
	srv.mu.Unlock()
	if gone || node != self {
		return Entry{}, false
	}
	return Entry{Port: m.port, Addr: self, ServerID: m.serverID, Time: m.time, Active: true}, true
}

// Probe validates a previously located entry with one direct
// request/reply to its address — the hint-validation message of the
// serving layer's address cache. On a hit it returns a confirmed entry;
// a live node that no longer hosts the instance answers negatively
// (ErrNotFound), and a crashed or unreachable address fails with the
// network's error. Cost: 2×Dist(client, e.Addr) passes on a hit or
// negative answer, against a full P∩Q flood for a locate.
func (s *System) Probe(client graph.NodeID, e Entry) (Entry, error) {
	if !s.net.Graph().Valid(client) {
		return Entry{}, fmt.Errorf("core: probe from %d: %w", client, graph.ErrNodeRange)
	}
	if !s.net.Graph().Valid(e.Addr) {
		return Entry{}, fmt.Errorf("core: probe at %d: %w", e.Addr, graph.ErrNodeRange)
	}
	v, err := s.net.Call(client, e.Addr,
		probeMsg{port: e.Port, serverID: e.ServerID, time: e.Time}, s.opts.LocateTimeout)
	if err != nil {
		return Entry{}, fmt.Errorf("core: probe %q at %d: %w", e.Port, e.Addr, err)
	}
	r, ok := v.(probeReply)
	if !ok || !r.ok {
		return Entry{}, fmt.Errorf("core: probe %q at %d: %w", e.Port, e.Addr, ErrNotFound)
	}
	return r.entry, nil
}

// Server is a registered server process handle.
type Server struct {
	sys  *System
	port Port
	id   uint64

	mu   sync.Mutex
	node graph.NodeID
	gone bool
}

// RegisterServer announces a server process for port at node: it posts
// (port, address) to every node of P(node) along a spanning-tree
// multicast, as the Server's Algorithm of §1.5 prescribes.
func (s *System) RegisterServer(port Port, node graph.NodeID) (*Server, error) {
	if !s.net.Graph().Valid(node) {
		return nil, fmt.Errorf("core: register at %d: %w", node, graph.ErrNodeRange)
	}
	srv := &Server{sys: s, port: port, id: s.serverID.Add(1), node: node}
	if err := s.post(srv, node, true); err != nil {
		return nil, err
	}
	s.srvMu.Lock()
	s.servers[srv.id] = srv
	s.srvMu.Unlock()
	return srv, nil
}

// post sends a posting (or tombstone) for srv from-and-about node.
func (s *System) post(srv *Server, node graph.NodeID, active bool) error {
	return s.postVia(srv, node, active, s.strategy().Post(node))
}

// postVia is post with an explicit target set — the migration primitive
// of an epoch transition, where a server re-posts only the delta the
// remap computed instead of its full posting set. The multicast is
// real; the network counts its hops.
func (s *System) postVia(srv *Server, node graph.NodeID, active bool, targets []graph.NodeID) error {
	entry := Entry{
		Port:     srv.port,
		Addr:     node,
		ServerID: srv.id,
		Time:     s.clock.Add(1),
		Active:   active,
	}
	reached, err := s.net.Multicast(node, targets, postMsg{entry: entry})
	s.postsSent.Add(int64(reached))
	if err != nil {
		return fmt.Errorf("core: post %q from %d: %w", srv.port, node, err)
	}
	s.net.Drain()
	return nil
}

// Port returns the server's port.
func (srv *Server) Port() Port { return srv.port }

// ID returns the server's instance identifier — the ServerID its cached
// entries carry.
func (srv *Server) ID() uint64 { return srv.id }

// Node returns the server's current address.
func (srv *Server) Node() graph.NodeID {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	return srv.node
}

// Repost refreshes the server's posting (e.g. after rendezvous caches
// were lost to a crash); it is how servers "regularly poll their
// rendezvous nodes" in practice.
func (srv *Server) Repost() error {
	srv.mu.Lock()
	node, gone := srv.node, srv.gone
	srv.mu.Unlock()
	if gone {
		return ErrServerGone
	}
	return srv.sys.post(srv, node, true)
}

// RepostVia refreshes the server's posting at an explicit target set
// instead of the full P(node) — the minimal-movement re-post of an
// epoch transition: only the rendezvous nodes the remap says are new
// receive the (fresh-timestamped) posting, at that multicast's real
// cost. An empty target set is a no-op that costs nothing.
func (srv *Server) RepostVia(targets []graph.NodeID) error {
	srv.mu.Lock()
	node, gone := srv.node, srv.gone
	srv.mu.Unlock()
	if gone {
		return ErrServerGone
	}
	return srv.sys.postVia(srv, node, true, targets)
}

// Migrate moves the server process to a new node (§1.3: destroy at one
// host, recreate at another). The fresh posting carries a newer timestamp
// than any stale entry left at the old rendezvous nodes, and an explicit
// tombstone is posted from the old address so its rendezvous nodes stop
// answering for it.
func (srv *Server) Migrate(to graph.NodeID) error {
	if !srv.sys.net.Graph().Valid(to) {
		return fmt.Errorf("core: migrate to %d: %w", to, graph.ErrNodeRange)
	}
	srv.mu.Lock()
	if srv.gone {
		srv.mu.Unlock()
		return ErrServerGone
	}
	from := srv.node
	srv.node = to
	srv.mu.Unlock()

	// Tombstone first (stale address must lose), then announce the new
	// address with a fresher timestamp.
	if err := srv.sys.post(srv, from, false); err != nil {
		// The old host may already be crashed; the fresh posting's newer
		// timestamp still wins wherever both are seen.
		if err2 := srv.sys.post(srv, to, true); err2 != nil {
			return errors.Join(err, err2)
		}
		return nil
	}
	return srv.sys.post(srv, to, true)
}

// Deregister removes the server: tombstones are posted to its rendezvous
// nodes and further operations fail with ErrServerGone.
func (srv *Server) Deregister() error {
	srv.mu.Lock()
	if srv.gone {
		srv.mu.Unlock()
		return ErrServerGone
	}
	srv.gone = true
	node := srv.node
	srv.mu.Unlock()
	srv.sys.srvMu.Lock()
	delete(srv.sys.servers, srv.id)
	srv.sys.srvMu.Unlock()
	return srv.sys.post(srv, node, false)
}

// LocateResult reports a successful locate.
type LocateResult struct {
	// Addr is the located server address.
	Addr graph.NodeID
	// Entry is the full winning cache entry.
	Entry Entry
	// From is the rendezvous node whose reply won the freshest-entry
	// collection — the attribution answer voting quarantines by.
	From graph.NodeID
	// QueriesSent is the number of rendezvous nodes addressed (#Q
	// reached).
	QueriesSent int
	// Replies is the number of rendezvous answers received in the
	// collection window.
	Replies int
}

// Locate finds the address of a server for port from client node j: it
// multicasts a query along a spanning tree to every node of Q(j) and
// waits for rendezvous replies, keeping the freshest entry seen within
// the collection window (stale postings of migrated servers lose by
// timestamp). It returns ErrNotFound if no rendezvous answers in time.
func (s *System) Locate(client graph.NodeID, port Port) (LocateResult, error) {
	return s.LocateVia(client, port, nil, 0)
}

// LocateVia is Locate with an explicit query set and replica family:
// the flood targets the given nodes instead of the strategy's Q(client)
// (nil targets means Q(client)), and rendezvous nodes answer under the
// family's scope when a replica filter is installed. It is the
// per-replica flood primitive of the serving layer's replicated
// rendezvous mode — each family's query set is flooded on its own, with
// the network charging that flood's real multicast and reply hops, so a
// fallthrough locate pays exactly one flood per replica tried.
func (s *System) LocateVia(client graph.NodeID, port Port, targets []graph.NodeID, family int) (LocateResult, error) {
	if !s.net.Graph().Valid(client) {
		return LocateResult{}, fmt.Errorf("core: locate from %d: %w", client, graph.ErrNodeRange)
	}
	id := s.reqID.Add(1)
	ch := make(chan replyMsg, s.strategy().N())
	s.mu.Lock()
	s.pending[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
	}()

	if targets == nil {
		targets = s.strategy().Query(client)
	}
	reached, err := s.net.Multicast(client, targets, queryMsg{port: port, client: client, reqID: id, family: family})
	s.queriesSent.Add(int64(reached))
	if err != nil {
		return LocateResult{}, fmt.Errorf("core: locate %q from %d: %w", port, client, err)
	}

	var (
		best    Entry
		from    graph.NodeID
		replies int
	)
	select {
	case r := <-ch:
		best, from, replies = r.entry, r.from, 1
	case <-time.After(s.opts.LocateTimeout):
		return LocateResult{QueriesSent: reached}, fmt.Errorf("locate %q from %d: %w", port, client, ErrNotFound)
	}
	// Collect stragglers briefly and keep the freshest active entry.
	window := time.After(s.opts.CollectWindow)
collect:
	for {
		select {
		case r := <-ch:
			replies++
			if r.entry.Time > best.Time {
				best, from = r.entry, r.from
			}
		case <-window:
			break collect
		}
	}
	if !best.Active {
		return LocateResult{QueriesSent: reached, Replies: replies},
			fmt.Errorf("locate %q from %d: %w", port, client, ErrNotFound)
	}
	return LocateResult{
		Addr:        best.Addr,
		Entry:       best,
		From:        from,
		QueriesSent: reached,
		Replies:     replies,
	}, nil
}

// LocateAll finds every live server instance for port visible from
// client node j: it queries Q(j) once and collects all distinct server
// instances that answer within the locate timeout plus one collection
// window. A service "may be offered by more than one server process"
// (§1.3); LocateAll surfaces all of them so the client can choose.
func (s *System) LocateAll(client graph.NodeID, port Port) ([]Entry, error) {
	return s.LocateAllVia(client, port, nil, 0)
}

// LocateAllVia is LocateAll with an explicit query set (nil means the
// strategy's Q(client)) and replica family — the replica-fallthrough
// primitive for locate-all, mirroring LocateVia.
func (s *System) LocateAllVia(client graph.NodeID, port Port, targets []graph.NodeID, family int) ([]Entry, error) {
	if !s.net.Graph().Valid(client) {
		return nil, fmt.Errorf("core: locate-all from %d: %w", client, graph.ErrNodeRange)
	}
	id := s.reqID.Add(1)
	ch := make(chan replyMsg, s.strategy().N()*4)
	s.mu.Lock()
	s.pending[id] = ch
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.pending, id)
		s.mu.Unlock()
	}()

	if targets == nil {
		targets = s.strategy().Query(client)
	}
	reached, err := s.net.Multicast(client, targets, queryMsg{port: port, client: client, reqID: id, all: true, family: family})
	s.queriesSent.Add(int64(reached))
	if err != nil {
		return nil, fmt.Errorf("core: locate-all %q from %d: %w", port, client, err)
	}

	freshest := make(map[uint64]Entry) // by server instance
	select {
	case r := <-ch:
		freshest[r.entry.ServerID] = r.entry
	case <-time.After(s.opts.LocateTimeout):
		return nil, fmt.Errorf("locate-all %q from %d: %w", port, client, ErrNotFound)
	}
	window := time.After(s.opts.CollectWindow)
collect:
	for {
		select {
		case r := <-ch:
			if cur, ok := freshest[r.entry.ServerID]; !ok || r.entry.Time > cur.Time {
				freshest[r.entry.ServerID] = r.entry
			}
		case <-window:
			break collect
		}
	}
	var out []Entry
	for _, e := range freshest {
		if e.Active {
			out = append(out, e)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("locate-all %q from %d: %w", port, client, ErrNotFound)
	}
	return out, nil
}

// LocateNearest locates all live servers for port and returns the one
// with the smallest hop distance from the client — the locality
// preference that §3.5's "nearly every service will be a local service"
// model wants.
func (s *System) LocateNearest(client graph.NodeID, port Port) (LocateResult, error) {
	entries, err := s.LocateAll(client, port)
	if err != nil {
		return LocateResult{}, err
	}
	routing := s.net.Routing()
	best := entries[0]
	bestDist := routing.Dist(client, best.Addr)
	for _, e := range entries[1:] {
		if d := routing.Dist(client, e.Addr); d >= 0 && (bestDist < 0 || d < bestDist) {
			best, bestDist = e, d
		}
	}
	return LocateResult{Addr: best.Addr, Entry: best, Replies: len(entries)}, nil
}

// PollRendezvous checks how many of the server's rendezvous nodes are
// alive and still hold its live posting — the "services regularly poll
// their rendezvous nodes to see if they are still alive" maintenance of
// §5. It returns (live postings, total rendezvous nodes).
func (srv *Server) PollRendezvous() (live, total int) {
	srv.mu.Lock()
	node, gone, id := srv.node, srv.gone, srv.id
	srv.mu.Unlock()
	if gone {
		return 0, 0
	}
	s := srv.sys
	targets := s.strategy().Post(node)
	for _, v := range targets {
		total++
		if s.net.Crashed(v) {
			continue
		}
		if e, ok := s.caches[v].get(srv.port); ok && e.Active && e.ServerID == id {
			live++
		}
	}
	return live, total
}

// MaintainRendezvous polls the rendezvous nodes and reposts when fewer
// than minLive of them still hold the server's posting, returning
// whether a repost happened. Callers run it periodically to self-heal
// after rendezvous reboots.
func (srv *Server) MaintainRendezvous(minLive int) (bool, error) {
	live, total := srv.PollRendezvous()
	if total == 0 {
		return false, ErrServerGone
	}
	if live >= minLive {
		return false, nil
	}
	if err := srv.Repost(); err != nil {
		return false, err
	}
	return true, nil
}

// Strategy returns the strategy the system runs.
func (s *System) Strategy() rendezvous.Strategy { return s.strategy() }

// Network returns the underlying simulator network.
func (s *System) Network() *sim.Network { return s.net }

// CacheSize returns the number of live entries cached at node v.
func (s *System) CacheSize(v graph.NodeID) int {
	if !s.net.Graph().Valid(v) {
		return 0
	}
	return s.caches[v].size()
}

// CacheSizes returns the cache sizes of all nodes, the storage measure of
// the paper's analyses.
func (s *System) CacheSizes() []int {
	out := make([]int, len(s.caches))
	for v := range s.caches {
		out[v] = s.caches[v].size()
	}
	return out
}

// ClearCache drops all entries cached at node v, modelling the loss of
// volatile state when the node crashes and later reboots.
func (s *System) ClearCache(v graph.NodeID) {
	if s.net.Graph().Valid(v) {
		s.caches[v].clear()
	}
}

// ExpireEntry drops the cached posting of one server instance at node v
// — the local garbage collection of an epoch retirement: postings left
// at rendezvous nodes that belong only to the drained epoch expire in
// place, by local decision, costing no messages (the serving layer
// knows which (node, port, instance) triples the remap orphaned).
func (s *System) ExpireEntry(v graph.NodeID, port Port, serverID uint64) {
	if s.net.Graph().Valid(v) {
		s.caches[v].drop(port, serverID)
	}
}

// InjectEntry force-places e in node v's cache, replacing any entry of
// the same server instance regardless of timestamps — deliberately
// bypassing the §2.1 merge rule posting delivery enforces. It is the
// fault-injection backdoor of the anti-entropy chaos harness: it models
// a rendezvous node whose volatile state silently went wrong.
func (s *System) InjectEntry(v graph.NodeID, e Entry) {
	if s.net.Graph().Valid(v) {
		s.caches[v].inject(e)
	}
}

// CacheEntries returns every entry cached at node v, tombstones
// included — the raw state dump anti-entropy reconciliation diffs
// against the registration ground truth.
func (s *System) CacheEntries(v graph.NodeID) []Entry {
	if !s.net.Graph().Valid(v) {
		return nil
	}
	return s.caches[v].entries()
}

// LiveServers returns a snapshot of every currently registered server
// handle — the iteration surface an epoch transition re-posts over.
func (s *System) LiveServers() []*Server {
	s.srvMu.Lock()
	defer s.srvMu.Unlock()
	out := make([]*Server, 0, len(s.servers))
	for _, srv := range s.servers {
		out = append(out, srv)
	}
	return out
}

// Counters returns the logical message counts (posts, queries, replies)
// accumulated so far; transport-level hops live on the Network.
func (s *System) Counters() (posts, queries, replies int64) {
	return s.postsSent.Load(), s.queriesSent.Load(), s.repliesSent.Load()
}

// ResetCounters zeroes the logical counters.
func (s *System) ResetCounters() {
	s.postsSent.Store(0)
	s.queriesSent.Store(0)
	s.repliesSent.Store(0)
}
