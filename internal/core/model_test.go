package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"time"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// TestModelRandomOperationSequences is a model-based test: it drives the
// engine with random register / migrate / deregister / locate sequences
// and checks every locate against a trivial in-memory oracle of which
// server is live where. This is the paper's whole correctness contract:
// a surviving client must find the current address of a surviving
// server, and must not find departed ones.
func TestModelRandomOperationSequences(t *testing.T) {
	const (
		n     = 36
		steps = 120
		ports = 4
	)
	seeds := []uint64{1, 2, 3}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			gr, err := topology.NewGrid(6, 6)
			if err != nil {
				t.Fatalf("NewGrid: %v", err)
			}
			net, err := sim.New(gr.G)
			if err != nil {
				t.Fatalf("sim.New: %v", err)
			}
			defer net.Close()
			sys, err := NewSystem(net, strategy.Manhattan(gr), Options{
				LocateTimeout: 200 * time.Millisecond,
				CollectWindow: 40 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}

			rng := rand.New(rand.NewPCG(seed, seed*977))
			type state struct {
				srv  *Server
				node graph.NodeID
			}
			oracle := make(map[Port]*state)

			for step := 0; step < steps; step++ {
				port := Port(fmt.Sprintf("p%d", rng.IntN(ports)))
				cur := oracle[port]
				switch op := rng.IntN(10); {
				case op < 3: // register (if not live)
					if cur != nil {
						continue
					}
					node := graph.NodeID(rng.IntN(n))
					srv, err := sys.RegisterServer(port, node)
					if err != nil {
						t.Fatalf("step %d register: %v", step, err)
					}
					oracle[port] = &state{srv: srv, node: node}
				case op < 5: // migrate
					if cur == nil {
						continue
					}
					to := graph.NodeID(rng.IntN(n))
					if err := cur.srv.Migrate(to); err != nil {
						t.Fatalf("step %d migrate: %v", step, err)
					}
					cur.node = to
				case op < 6: // deregister
					if cur == nil {
						continue
					}
					if err := cur.srv.Deregister(); err != nil {
						t.Fatalf("step %d deregister: %v", step, err)
					}
					delete(oracle, port)
				default: // locate from a random client
					client := graph.NodeID(rng.IntN(n))
					res, err := sys.Locate(client, port)
					if cur == nil {
						if err == nil {
							t.Fatalf("step %d: located deregistered %q at %d", step, port, res.Addr)
						}
						if !errors.Is(err, ErrNotFound) {
							t.Fatalf("step %d: unexpected error %v", step, err)
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d: locate %q: %v (oracle says node %d)", step, port, err, cur.node)
					}
					if res.Addr != cur.node {
						t.Fatalf("step %d: locate %q = %d, oracle %d", step, port, res.Addr, cur.node)
					}
				}
			}
		})
	}
}

func TestLocateAllFindsEveryInstance(t *testing.T) {
	sys := newCompleteSystem(t, 25, rendezvous.Checkerboard(25))
	nodes := []graph.NodeID{2, 11, 19}
	for _, node := range nodes {
		if _, err := sys.RegisterServer("svc", node); err != nil {
			t.Fatalf("RegisterServer at %d: %v", node, err)
		}
	}
	entries, err := sys.LocateAll(7, "svc")
	if err != nil {
		t.Fatalf("LocateAll: %v", err)
	}
	// All three instances post to row blocks; the client column crosses
	// every row block, so all three must be visible.
	if len(entries) != 3 {
		t.Fatalf("found %d instances, want 3: %+v", len(entries), entries)
	}
	found := make(map[graph.NodeID]bool)
	for _, e := range entries {
		found[e.Addr] = true
	}
	for _, node := range nodes {
		if !found[node] {
			t.Fatalf("instance at %d missing from %v", node, entries)
		}
	}
}

func TestLocateAllNotFound(t *testing.T) {
	sys := newCompleteSystem(t, 16, rendezvous.Checkerboard(16))
	if _, err := sys.LocateAll(3, "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := sys.LocateAll(99, "x"); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
}

func TestLocateNearestPrefersClosest(t *testing.T) {
	// On a line, two instances at the ends; clients pick their own side.
	g, err := topology.Line(9)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	net, err := sim.New(g)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	// Sweep posts everywhere, so every node sees both instances.
	sys, err := NewSystem(net, rendezvous.Sweep(9), fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := sys.RegisterServer("svc", 0); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	if _, err := sys.RegisterServer("svc", 8); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	res, err := sys.LocateNearest(1, "svc")
	if err != nil {
		t.Fatalf("LocateNearest: %v", err)
	}
	if res.Addr != 0 {
		t.Fatalf("client 1 nearest = %d, want 0", res.Addr)
	}
	res, err = sys.LocateNearest(7, "svc")
	if err != nil {
		t.Fatalf("LocateNearest: %v", err)
	}
	if res.Addr != 8 {
		t.Fatalf("client 7 nearest = %d, want 8", res.Addr)
	}
}

func TestPollRendezvous(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	srv, err := sys.RegisterServer("svc", gr.At(1, 1))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	live, total := srv.PollRendezvous()
	if live != 3 || total != 3 {
		t.Fatalf("poll = %d/%d, want 3/3", live, total)
	}
	// A rendezvous reboot loses the entry.
	sys.ClearCache(gr.At(1, 0))
	live, total = srv.PollRendezvous()
	if live != 2 || total != 3 {
		t.Fatalf("poll after reboot = %d/%d, want 2/3", live, total)
	}
	// A crashed rendezvous counts as not live.
	if err := sys.Network().Crash(gr.At(1, 2)); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	live, _ = srv.PollRendezvous()
	if live != 1 {
		t.Fatalf("poll after crash = %d, want 1", live)
	}
}

func TestMaintainRendezvousReposts(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	srv, err := sys.RegisterServer("svc", gr.At(0, 0))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	// Healthy: no repost needed.
	reposted, err := srv.MaintainRendezvous(3)
	if err != nil || reposted {
		t.Fatalf("healthy maintain = %v,%v, want false,nil", reposted, err)
	}
	// Two rendezvous reboots drop below threshold; maintain self-heals.
	sys.ClearCache(gr.At(0, 1))
	sys.ClearCache(gr.At(0, 2))
	reposted, err = srv.MaintainRendezvous(3)
	if err != nil || !reposted {
		t.Fatalf("maintain = %v,%v, want true,nil", reposted, err)
	}
	live, _ := srv.PollRendezvous()
	if live != 3 {
		t.Fatalf("live after maintain = %d, want 3", live)
	}
	// Deregistered servers cannot be maintained.
	if err := srv.Deregister(); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, err := srv.MaintainRendezvous(1); !errors.Is(err, ErrServerGone) {
		t.Fatalf("err = %v, want ErrServerGone", err)
	}
}

func TestMigrateFromCrashedHost(t *testing.T) {
	// The old host dies; the tombstone cannot be posted from it, but the
	// fresh posting's newer timestamp must still win wherever both are
	// seen, so migration succeeds.
	sys, gr := newGridSystem(t, 4, 4)
	srv, err := sys.RegisterServer("svc", gr.At(0, 0))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	if err := sys.Network().Crash(gr.At(0, 0)); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := srv.Migrate(gr.At(3, 3)); err != nil {
		t.Fatalf("Migrate from crashed host: %v", err)
	}
	res, err := sys.Locate(gr.At(1, 1), "svc")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != gr.At(3, 3) {
		t.Fatalf("Addr = %d, want %d", res.Addr, gr.At(3, 3))
	}
}

func TestLocateSurvivesCrashAfterRoutingRebuild(t *testing.T) {
	// §2.4 end to end: the rendezvous node is alive but the static route
	// to it crosses a crashed node; after the routing tables reconverge
	// on the surviving subnetwork, the locate succeeds via a detour.
	sys, gr := newGridSystem(t, 3, 3)
	net := sys.Network()
	if _, err := sys.RegisterServer("svc", gr.At(0, 2)); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	// Client at (2,0) floods column 0: {(0,0),(1,0),(2,0)}; rendezvous is
	// the crossing (0,0). Crash (1,0), the hop between client and
	// rendezvous.
	if err := net.Crash(gr.At(1, 0)); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := sys.Locate(gr.At(2, 0), "svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale-route locate err = %v, want ErrNotFound", err)
	}
	if err := net.RebuildRouting(); err != nil {
		t.Fatalf("RebuildRouting: %v", err)
	}
	res, err := sys.Locate(gr.At(2, 0), "svc")
	if err != nil {
		t.Fatalf("Locate after rebuild: %v", err)
	}
	if res.Addr != gr.At(0, 2) {
		t.Fatalf("Addr = %d, want %d", res.Addr, gr.At(0, 2))
	}
}

func TestPollAfterDeregister(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	srv, err := sys.RegisterServer("svc", gr.At(0, 0))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	if err := srv.Deregister(); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if live, total := srv.PollRendezvous(); live != 0 || total != 0 {
		t.Fatalf("poll after deregister = %d/%d, want 0/0", live, total)
	}
}
