package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

// White-box tests for the per-node cache's §2.1 semantics — timestamp
// supersession and tombstones — under concurrent posting.

func TestCacheSupersedeOutOfOrder(t *testing.T) {
	c := newCache(0)
	// Deliveries can arrive in any order; only timestamps decide.
	c.put(Entry{Port: "p", Addr: 2, ServerID: 1, Time: 9, Active: true})
	c.put(Entry{Port: "p", Addr: 1, ServerID: 1, Time: 5, Active: true})
	e, ok := c.get("p")
	if !ok || e.Addr != 2 || e.Time != 9 {
		t.Fatalf("get = %+v, %v; want addr 2 at time 9", e, ok)
	}
	// A stale tombstone must not kill a fresher live posting…
	c.put(Entry{Port: "p", Addr: 1, ServerID: 1, Time: 7, Active: false})
	if e, ok := c.get("p"); !ok || e.Addr != 2 {
		t.Fatalf("stale tombstone won: %+v, %v", e, ok)
	}
	// …but a fresher tombstone must.
	c.put(Entry{Port: "p", Addr: 2, ServerID: 1, Time: 10, Active: false})
	if e, ok := c.get("p"); ok {
		t.Fatalf("fresher tombstone ignored: %+v", e)
	}
	// Tombstoned instances do not count as cached services.
	if n := c.size(); n != 0 {
		t.Fatalf("size = %d; want 0", n)
	}
}

func TestCacheTombstonePerInstance(t *testing.T) {
	c := newCache(0)
	c.put(Entry{Port: "p", Addr: 1, ServerID: 1, Time: 1, Active: true})
	c.put(Entry{Port: "p", Addr: 5, ServerID: 2, Time: 2, Active: true})
	// Killing instance 1 must leave instance 2 visible.
	c.put(Entry{Port: "p", Addr: 1, ServerID: 1, Time: 3, Active: false})
	e, ok := c.get("p")
	if !ok || e.ServerID != 2 {
		t.Fatalf("get = %+v, %v; want instance 2", e, ok)
	}
	if all := c.getAll("p"); len(all) != 1 || all[0].ServerID != 2 {
		t.Fatalf("getAll = %v; want only instance 2", all)
	}
}

// TestCacheConcurrentPutTombstone hammers one cache with racing posts
// and tombstones for the same instances and checks the timestamp rule
// decided every port: the entry with the highest timestamp (live or
// tombstone) must be what get reflects.
func TestCacheConcurrentPutTombstone(t *testing.T) {
	c := newCache(0)
	const (
		ports   = 8
		writers = 8
		rounds  = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				p := Port(fmt.Sprintf("p%d", r%ports))
				// Even writers post, odd writers tombstone; timestamps
				// interleave across writers.
				ts := uint64(r*writers + w)
				c.put(Entry{
					Port: p, Addr: graph.NodeID(w), ServerID: 7,
					Time: ts, Active: w%2 == 0,
				})
				c.get(p)
				c.getAll(p)
				c.size()
			}
		}(w)
	}
	wg.Wait()
	// Per port, the winning timestamp is rounds*writers + w for the
	// largest w that wrote it; w = writers-1 is odd → tombstone wins,
	// so every port must have converged to invisible.
	for i := 0; i < ports; i++ {
		p := Port(fmt.Sprintf("p%d", i))
		if e, ok := c.get(p); ok {
			t.Fatalf("port %s: freshest write was a tombstone, got %+v", p, e)
		}
	}
}

// TestCacheConcurrentEviction checks the capacity bound holds (and
// nothing corrupts) when many goroutines insert distinct instances into
// a bounded cache.
func TestCacheConcurrentEviction(t *testing.T) {
	const capacity = 16
	c := newCache(capacity)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.put(Entry{
					Port: Port(fmt.Sprintf("p%d", w)), Addr: 0,
					ServerID: uint64(w*1000 + i), Time: uint64(w*1000 + i + 1),
					Active: true,
				})
			}
		}(w)
	}
	wg.Wait()
	c.mu.Lock()
	total := c.total
	c.mu.Unlock()
	if total > capacity {
		t.Fatalf("cache holds %d instances; capacity %d", total, capacity)
	}
}

// TestSystemConcurrentPostDeregisterLocate drives the full engine —
// concurrent registrations, deregistrations and locates over a real
// simulated network — to exercise the cache merge paths end to end
// under the race detector.
func TestSystemConcurrentPostDeregisterLocate(t *testing.T) {
	const n = 36
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		t.Fatal(err)
	}
	defer net.Close()
	sys, err := NewSystem(net, rendezvous.Checkerboard(n), Options{
		LocateTimeout: 500 * time.Millisecond,
		CollectWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A stable service that must remain locatable throughout.
	if _, err := sys.RegisterServer("stable", 7); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Churners: register and immediately deregister throwaway services.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			port := Port(fmt.Sprintf("churn-%d", w))
			for i := 0; i < 30; i++ {
				srv, err := sys.RegisterServer(port, graph.NodeID((w*9+i)%n))
				if err != nil {
					t.Errorf("register: %v", err)
					return
				}
				if err := srv.Deregister(); err != nil {
					t.Errorf("deregister: %v", err)
					return
				}
			}
		}(w)
	}
	// Locators: the stable service must never be lost.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := sys.Locate(graph.NodeID((w*5+i)%n), "stable")
				if err != nil {
					t.Errorf("locate stable: %v", err)
					return
				}
				if res.Addr != 7 {
					t.Errorf("locate stable = %d; want 7", res.Addr)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	// All churned ports must have converged to tombstones everywhere.
	for w := 0; w < 4; w++ {
		port := Port(fmt.Sprintf("churn-%d", w))
		if _, err := sys.Locate(0, port); err == nil {
			t.Fatalf("churned port %s still resolves", port)
		}
	}
}
