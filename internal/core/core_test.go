package core

import (
	"errors"
	"testing"
	"time"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// fastOpts keeps not-found locates quick in tests.
var fastOpts = Options{LocateTimeout: 150 * time.Millisecond, CollectWindow: 30 * time.Millisecond}

func newGridSystem(t *testing.T, rows, cols int) (*System, *topology.Grid) {
	t.Helper()
	gr, err := topology.NewGrid(rows, cols)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	net, err := sim.New(gr.G)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := NewSystem(net, strategy.Manhattan(gr), fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys, gr
}

func newCompleteSystem(t *testing.T, n int, strat rendezvous.Strategy) *System {
	t.Helper()
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := NewSystem(net, strat, fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

func TestRegisterAndLocateOnGrid(t *testing.T) {
	sys, gr := newGridSystem(t, 4, 4)
	serverNode := gr.At(1, 2)
	srv, err := sys.RegisterServer("printer", serverNode)
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	clientNode := gr.At(3, 0)
	res, err := sys.Locate(clientNode, "printer")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != serverNode {
		t.Fatalf("Addr = %d, want %d", res.Addr, serverNode)
	}
	if srv.Node() != serverNode {
		t.Fatalf("Node = %d, want %d", srv.Node(), serverNode)
	}
	// The query addressed the client's column (4 nodes).
	if res.QueriesSent != 4 {
		t.Fatalf("QueriesSent = %d, want 4", res.QueriesSent)
	}
	// Exactly one rendezvous (row∩column crossing) replies.
	if res.Replies != 1 {
		t.Fatalf("Replies = %d, want 1", res.Replies)
	}
}

func TestLocateNotFound(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	_, err := sys.Locate(gr.At(0, 0), "missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestLocateInvalidClient(t *testing.T) {
	sys, _ := newGridSystem(t, 3, 3)
	if _, err := sys.Locate(99, "x"); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
}

func TestRegisterInvalidNode(t *testing.T) {
	sys, _ := newGridSystem(t, 3, 3)
	if _, err := sys.RegisterServer("x", 99); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
}

func TestNewSystemSizeMismatch(t *testing.T) {
	net, err := sim.New(topology.Complete(4))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	defer net.Close()
	if _, err := NewSystem(net, rendezvous.Checkerboard(9), fastOpts); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestCacheSizesAfterPosting(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	if _, err := sys.RegisterServer("db", gr.At(1, 1)); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	// Manhattan posts along row 1: nodes (1,0),(1,1),(1,2) hold the entry.
	for c := 0; c < 3; c++ {
		if got := sys.CacheSize(gr.At(1, c)); got != 1 {
			t.Fatalf("cache at (1,%d) = %d, want 1", c, got)
		}
	}
	for _, v := range []graph.NodeID{gr.At(0, 0), gr.At(2, 2)} {
		if got := sys.CacheSize(v); got != 0 {
			t.Fatalf("cache at %d = %d, want 0", v, got)
		}
	}
	sizes := sys.CacheSizes()
	total := 0
	for _, s := range sizes {
		total += s
	}
	if total != 3 {
		t.Fatalf("total cached entries = %d, want 3", total)
	}
}

func TestDeregisterTombstones(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	srv, err := sys.RegisterServer("cat", gr.At(0, 0))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	if err := srv.Deregister(); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, err := sys.Locate(gr.At(2, 2), "cat"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound after deregister", err)
	}
	// Tombstoned entries no longer count as cached services.
	if got := sys.CacheSize(gr.At(0, 0)); got != 0 {
		t.Fatalf("cache = %d, want 0 after tombstone", got)
	}
	// Double deregister fails.
	if err := srv.Deregister(); !errors.Is(err, ErrServerGone) {
		t.Fatalf("err = %v, want ErrServerGone", err)
	}
	if err := srv.Repost(); !errors.Is(err, ErrServerGone) {
		t.Fatalf("Repost err = %v, want ErrServerGone", err)
	}
}

func TestMigrateSupersedesStaleAddress(t *testing.T) {
	sys, gr := newGridSystem(t, 4, 4)
	srv, err := sys.RegisterServer("fileserver", gr.At(0, 0))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	newHome := gr.At(3, 3)
	if err := srv.Migrate(newHome); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if srv.Node() != newHome {
		t.Fatalf("Node = %d, want %d", srv.Node(), newHome)
	}
	// A client whose column crosses both the old and the new row would
	// see both entries; the fresh one must win.
	for c := 0; c < 4; c++ {
		res, err := sys.Locate(gr.At(1, c), "fileserver")
		if err != nil {
			t.Fatalf("Locate from column %d: %v", c, err)
		}
		if res.Addr != newHome {
			t.Fatalf("Addr = %d, want %d (fresh address)", res.Addr, newHome)
		}
	}
}

func TestMigrateToInvalidNode(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	srv, err := sys.RegisterServer("x", gr.At(0, 0))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	if err := srv.Migrate(99); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("err = %v, want ErrNodeRange", err)
	}
}

func TestMultipleServersSamePort(t *testing.T) {
	// Two equivalent server processes for one service: a client finds one
	// of them; deregistering one leaves the other locatable.
	sys := newCompleteSystem(t, 16, rendezvous.Checkerboard(16))
	srvA, err := sys.RegisterServer("svc", 1)
	if err != nil {
		t.Fatalf("RegisterServer A: %v", err)
	}
	srvB, err := sys.RegisterServer("svc", 9)
	if err != nil {
		t.Fatalf("RegisterServer B: %v", err)
	}
	res, err := sys.Locate(5, "svc")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != 1 && res.Addr != 9 {
		t.Fatalf("Addr = %d, want 1 or 9", res.Addr)
	}
	if err := srvB.Deregister(); err != nil {
		t.Fatalf("Deregister B: %v", err)
	}
	res, err = sys.Locate(5, "svc")
	if err != nil {
		t.Fatalf("Locate after B gone: %v", err)
	}
	if res.Addr != srvA.Node() {
		t.Fatalf("Addr = %d, want %d", res.Addr, srvA.Node())
	}
}

func TestCrashedRendezvousNodeBlocksUnlessRedundant(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	if _, err := sys.RegisterServer("svc", gr.At(0, 0)); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	// Client at (2,1): rendezvous is the crossing (0,1). Crash it.
	if err := sys.Network().Crash(gr.At(0, 1)); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if _, err := sys.Locate(gr.At(2, 1), "svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound (single rendezvous crashed)", err)
	}
	// A different client whose crossing survives still succeeds: client at
	// (2,2) meets the server's row at (0,2)... but the multicast up
	// column 2 does not pass the crashed (0,1).
	res, err := sys.Locate(gr.At(2, 2), "svc")
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if res.Addr != gr.At(0, 0) {
		t.Fatalf("Addr = %d, want %d", res.Addr, gr.At(0, 0))
	}
}

func TestRecoveryByRepost(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	srv, err := sys.RegisterServer("svc", gr.At(1, 1))
	if err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	// The rendezvous node reboots and loses its cache.
	sys.ClearCache(gr.At(1, 0))
	sys.ClearCache(gr.At(1, 1))
	sys.ClearCache(gr.At(1, 2))
	if _, err := sys.Locate(gr.At(0, 0), "svc"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound after cache loss", err)
	}
	if err := srv.Repost(); err != nil {
		t.Fatalf("Repost: %v", err)
	}
	if _, err := sys.Locate(gr.At(0, 0), "svc"); err != nil {
		t.Fatalf("Locate after repost: %v", err)
	}
}

func TestLogicalCounters(t *testing.T) {
	sys, gr := newGridSystem(t, 3, 3)
	if _, err := sys.RegisterServer("svc", gr.At(0, 0)); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	if _, err := sys.Locate(gr.At(2, 2), "svc"); err != nil {
		t.Fatalf("Locate: %v", err)
	}
	posts, queries, replies := sys.Counters()
	if posts != 3 || queries != 3 || replies != 1 {
		t.Fatalf("counters = %d,%d,%d, want 3,3,1", posts, queries, replies)
	}
	sys.ResetCounters()
	posts, queries, replies = sys.Counters()
	if posts != 0 || queries != 0 || replies != 0 {
		t.Fatal("counters not reset")
	}
}

func TestGridLocateHopCost(t *testing.T) {
	// On a p×q grid one full register+locate costs about (q−1) post hops
	// + (p−1) query hops + reply distance: O(p+q), the §3.1 claim.
	sys, gr := newGridSystem(t, 5, 5)
	net := sys.Network()
	net.ResetCounters()
	if _, err := sys.RegisterServer("svc", gr.At(2, 2)); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	postHops := net.Hops()
	if postHops != 4 {
		t.Fatalf("post hops = %d, want q-1 = 4", postHops)
	}
	net.ResetCounters()
	if _, err := sys.Locate(gr.At(4, 0), "svc"); err != nil {
		t.Fatalf("Locate: %v", err)
	}
	// Query floods column 0 (p−1 = 4 hops); the reply returns from the
	// crossing (2,0) to the client (2 hops).
	if got := net.Hops(); got != 6 {
		t.Fatalf("locate hops = %d, want 6", got)
	}
}

func TestCacheCapacityEviction(t *testing.T) {
	// Capacity 2 caches discard the stalest posting, so the earliest
	// server vanishes from the central rendezvous.
	strat := rendezvous.Central(8, 0)
	net, err := sim.New(topology.Complete(8))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	opts := fastOpts
	opts.CacheCapacity = 2
	sys, err := NewSystem(net, strat, opts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	for i, port := range []Port{"a", "b", "c"} {
		if _, err := sys.RegisterServer(port, graph.NodeID(i+1)); err != nil {
			t.Fatalf("RegisterServer %q: %v", port, err)
		}
	}
	if _, err := sys.Locate(5, "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound (evicted)", err)
	}
	for _, port := range []Port{"b", "c"} {
		if _, err := sys.Locate(5, port); err != nil {
			t.Fatalf("Locate %q: %v", port, err)
		}
	}
}

func TestLocateOnDecompositionStrategy(t *testing.T) {
	// End-to-end over the generic §3 method on a random connected graph.
	g, err := topology.RandomConnected(36, 20, 5)
	if err != nil {
		t.Fatalf("RandomConnected: %v", err)
	}
	d, err := strategy.NewDecomposition(g)
	if err != nil {
		t.Fatalf("NewDecomposition: %v", err)
	}
	net, err := sim.New(g)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := NewSystem(net, d.Strategy(), fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := sys.RegisterServer("svc", 7); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	for _, client := range []graph.NodeID{0, 13, 35} {
		res, err := sys.Locate(client, "svc")
		if err != nil {
			t.Fatalf("Locate from %d: %v", client, err)
		}
		if res.Addr != 7 {
			t.Fatalf("Addr = %d, want 7", res.Addr)
		}
	}
}

func TestLocateOnHypercube(t *testing.T) {
	h, err := topology.NewHypercube(4)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	s, err := strategy.HalfCube(h)
	if err != nil {
		t.Fatalf("HalfCube: %v", err)
	}
	net, err := sim.New(h.G)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := NewSystem(net, s, fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if _, err := sys.RegisterServer("svc", 0b1010); err != nil {
		t.Fatalf("RegisterServer: %v", err)
	}
	for client := 0; client < 16; client++ {
		res, err := sys.Locate(graph.NodeID(client), "svc")
		if err != nil {
			t.Fatalf("Locate from %04b: %v", client, err)
		}
		if res.Addr != 0b1010 {
			t.Fatalf("Addr = %d, want 10", res.Addr)
		}
	}
}
