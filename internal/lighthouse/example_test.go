package lighthouse_test

import (
	"fmt"

	"matchmake/internal/lighthouse"
)

// The binary-counter schedule of §4: the length of the locate beam is
// i·l once in each interval of 2^i trials (sequence 51 in Sloane's
// catalogue).
func ExampleRulerValue() {
	for trial := 1; trial <= 16; trial++ {
		fmt.Print(lighthouse.RulerValue(trial))
	}
	fmt.Println()
	// Output:
	// 1213121412131215
}

// A dense plane is located almost immediately.
func ExamplePlane_Locate() {
	plane, err := lighthouse.NewPlane(32, 32, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := plane.AddServer("time", lighthouse.Point{X: 16, Y: 16}, 31, 2, 100); err != nil {
		fmt.Println(err)
		return
	}
	plane.TickN(10)
	res := plane.Locate("time", lighthouse.Point{X: 2, Y: 2}, lighthouse.RulerSchedule{L: 8, Gap: 1}, 100)
	fmt.Println("found:", res.Found)
	fmt.Println("addr:", res.Addr)
	// Output:
	// found: true
	// addr: {16 16}
}
