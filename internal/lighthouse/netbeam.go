package lighthouse

import (
	"fmt"
	"math/rand/v2"

	"matchmake/internal/graph"
)

// BeamWalk simulates sending a beam of the given hop length through a
// point-to-point network, using routing tables "back-to-front" as §4
// describes: the sender chooses a random outgoing arc; each node that
// receives the beam decreases the hop count and forwards it on an arc
// that leads strictly away from the beam's origin (an arc some node uses
// to route toward the origin, reversed). The walk ends early at a node
// with no outward arcs. The returned sequence excludes the origin.
func BeamWalk(g *graph.Graph, r *graph.Routing, origin graph.NodeID, length int, rng *rand.Rand) ([]graph.NodeID, error) {
	if !g.Valid(origin) {
		return nil, fmt.Errorf("lighthouse: beam origin %d: %w", origin, graph.ErrNodeRange)
	}
	if length < 1 {
		return nil, fmt.Errorf("lighthouse: beam length %d < 1", length)
	}
	neighbors := g.Neighbors(origin)
	if len(neighbors) == 0 {
		return nil, nil
	}
	at := neighbors[rng.IntN(len(neighbors))]
	path := []graph.NodeID{at}
	for hop := 1; hop < length; hop++ {
		outward := r.PredecessorNeighbors(g, at, origin)
		if len(outward) == 0 {
			break
		}
		at = outward[rng.IntN(len(outward))]
		path = append(path, at)
	}
	return path, nil
}

// NetLighthouse runs Lighthouse Locate over a point-to-point network
// instead of the Euclidean plane: server beams deposit (port, address)
// postings with a TTL in per-node caches along BeamWalk trails, and
// client beams probe the caches along their own walks. Time is discrete
// and driven by Tick, mirroring the plane simulation.
type NetLighthouse struct {
	g   *graph.Graph
	r   *graph.Routing
	rng *rand.Rand
	now int64

	caches  []map[Port]trailNet
	servers []*NetServer

	// Hops counts beam message passes (one per node visited by a beam).
	Hops int64
}

type trailNet struct {
	addr    graph.NodeID
	expires int64
}

// NetServer is a beaming server in the network variant.
type NetServer struct {
	// Port is the service name.
	Port Port
	// Node is the server's address.
	Node graph.NodeID
	// BeamLen, Period, TrailTTL mirror the plane parameters l, δ, d.
	BeamLen  int
	Period   int
	TrailTTL int

	phase int64
}

// NewNetLighthouse builds the network variant over g.
func NewNetLighthouse(g *graph.Graph, seed uint64) (*NetLighthouse, error) {
	r, err := graph.NewRouting(g)
	if err != nil {
		return nil, fmt.Errorf("lighthouse: %w", err)
	}
	caches := make([]map[Port]trailNet, g.N())
	for i := range caches {
		caches[i] = make(map[Port]trailNet)
	}
	return &NetLighthouse{
		g:      g,
		r:      r,
		rng:    rand.New(rand.NewPCG(seed, seed^0x9b05688c2b3e6c1f)),
		caches: caches,
	}, nil
}

// Now returns the current tick.
func (nl *NetLighthouse) Now() int64 { return nl.now }

// AddServer places a server; it beams once immediately and then every
// Period ticks.
func (nl *NetLighthouse) AddServer(port Port, node graph.NodeID, beamLen, period, ttl int) (*NetServer, error) {
	if !nl.g.Valid(node) {
		return nil, fmt.Errorf("lighthouse: server at %d: %w", node, graph.ErrNodeRange)
	}
	if beamLen < 1 || period < 1 || ttl < 1 {
		return nil, fmt.Errorf("lighthouse: server parameters l=%d δ=%d d=%d must be ≥ 1", beamLen, period, ttl)
	}
	s := &NetServer{Port: port, Node: node, BeamLen: beamLen, Period: period, TrailTTL: ttl, phase: nl.now % int64(period)}
	nl.servers = append(nl.servers, s)
	nl.beam(s)
	return s, nil
}

func (nl *NetLighthouse) beam(s *NetServer) {
	walk, err := BeamWalk(nl.g, nl.r, s.Node, s.BeamLen, nl.rng)
	if err != nil {
		return
	}
	expires := nl.now + int64(s.TrailTTL)
	for _, v := range walk {
		nl.Hops++
		if cur, ok := nl.caches[v][s.Port]; !ok || expires > cur.expires {
			nl.caches[v][s.Port] = trailNet{addr: s.Node, expires: expires}
		}
	}
}

// Tick advances the clock; servers on a period boundary beam again.
func (nl *NetLighthouse) Tick() {
	nl.now++
	for _, s := range nl.servers {
		if nl.now%int64(s.Period) == s.phase {
			nl.beam(s)
		}
	}
}

// Locate runs a client at node beaming for port under a schedule, up to
// maxTrials beams. Probing a node costs one hop (the beam message pass).
func (nl *NetLighthouse) Locate(port Port, node graph.NodeID, sched Schedule, maxTrials int) (LocateNetResult, error) {
	if !nl.g.Valid(node) {
		return LocateNetResult{}, fmt.Errorf("lighthouse: client at %d: %w", node, graph.ErrNodeRange)
	}
	start := nl.now
	res := LocateNetResult{}
	for trial := 1; trial <= maxTrials; trial++ {
		res.Trials = trial
		walk, err := BeamWalk(nl.g, nl.r, node, sched.BeamLength(trial), nl.rng)
		if err != nil {
			return res, err
		}
		for _, v := range walk {
			res.NodesProbed++
			nl.Hops++
			if t, ok := nl.caches[v][port]; ok && t.expires > nl.now {
				res.Found = true
				res.Addr = t.addr
				res.Ticks = nl.now - start
				return res, nil
			}
		}
		for i := 0; i < sched.Interval(trial); i++ {
			nl.Tick()
		}
	}
	res.Ticks = nl.now - start
	return res, nil
}

// LocateNetResult reports one network-variant locate run.
type LocateNetResult struct {
	// Found reports whether a live trail was hit.
	Found bool
	// Addr is the located server address (when Found).
	Addr graph.NodeID
	// Trials is the number of beams emitted.
	Trials int
	// Ticks is the simulated time consumed.
	Ticks int64
	// NodesProbed counts beam message passes spent by the client.
	NodesProbed int
}
