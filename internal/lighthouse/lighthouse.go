// Package lighthouse implements Lighthouse Locate from Section 4 of the
// paper: a probabilistic locate for processors laid out as discrete
// coordinate points of a 2-dimensional plane grid.
//
// Each server sends out a random-direction beam of length l every δ time
// units; the trail left by a beam disappears after d time units (nodes
// discard the (port, address) posting). To locate a server, a client
// beams requests in random directions at regular intervals, increasing
// its effort when unsuccessful — either by doubling beam length and
// interval after e failures, or by following the binary-counter "ruler"
// schedule 1 2 1 3 1 2 1 4 … in which a beam of length i·l occurs once
// every 2^i trials.
//
// The package also implements the paper's mapping of beams onto
// point-to-point networks: routing tables used back-to-front extend a
// walk ever further from its origin, simulating "a straight line" of a
// given hop length (see BeamWalk).
package lighthouse

import (
	"fmt"
	"math/bits"
	"math/rand/v2"
)

// Point is a cell of the plane grid.
type Point struct {
	X, Y int
}

// Port names a service on the plane.
type Port string

// trail is a live posting on a cell.
type trail struct {
	addr    Point
	expires int64
}

// Plane is a discrete W×H toroidal grid with trail storage and a global
// clock. The wraparound avoids boundary artefacts; the paper's analysis
// assumes an unbounded plane with uniform server density, which a torus
// models on a finite grid.
type Plane struct {
	w, h  int
	now   int64
	cells map[Point]map[Port]trail
	rng   *rand.Rand

	servers []*Server
}

// NewPlane creates an empty plane of the given extent, with deterministic
// randomness derived from seed.
func NewPlane(w, h int, seed uint64) (*Plane, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("lighthouse: plane %dx%d invalid", w, h)
	}
	return &Plane{
		w:     w,
		h:     h,
		cells: make(map[Point]map[Port]trail),
		rng:   rand.New(rand.NewPCG(seed, seed^0x510e527fade682d1)),
	}, nil
}

// Now returns the current tick.
func (p *Plane) Now() int64 { return p.now }

// Size returns the plane extent.
func (p *Plane) Size() (w, h int) { return p.w, p.h }

// wrapPoint normalizes a point onto the torus.
func (p *Plane) wrapPoint(pt Point) Point {
	pt.X = ((pt.X % p.w) + p.w) % p.w
	pt.Y = ((pt.Y % p.h) + p.h) % p.h
	return pt
}

// directions are the eight beam headings of the discrete plane.
var directions = [8]Point{
	{1, 0}, {-1, 0}, {0, 1}, {0, -1},
	{1, 1}, {1, -1}, {-1, 1}, {-1, -1},
}

// beamCells returns the cells covered by a beam of the given length from
// origin in direction dir (excluding the origin itself).
func (p *Plane) beamCells(origin Point, dir Point, length int) []Point {
	out := make([]Point, 0, length)
	at := origin
	for i := 0; i < length; i++ {
		at = p.wrapPoint(Point{at.X + dir.X, at.Y + dir.Y})
		out = append(out, at)
	}
	return out
}

// deposit writes a trail on every beam cell.
func (p *Plane) deposit(port Port, addr Point, cells []Point, ttl int) {
	expires := p.now + int64(ttl)
	for _, c := range cells {
		m := p.cells[c]
		if m == nil {
			m = make(map[Port]trail, 1)
			p.cells[c] = m
		}
		if cur, ok := m[port]; !ok || expires > cur.expires {
			m[port] = trail{addr: addr, expires: expires}
		}
	}
}

// lookup reports a live trail for port at cell.
func (p *Plane) lookup(port Port, cell Point) (Point, bool) {
	t, ok := p.cells[cell][port]
	if !ok || t.expires <= p.now {
		return Point{}, false
	}
	return t.addr, true
}

// Probe reports whether cell carries a live trail for port and, if so,
// the advertised server position. It is a free inspection used by
// visualizations and tests; client searches go through Locate, which
// accounts for the probes.
func (p *Plane) Probe(port Port, cell Point) (Point, bool) {
	return p.lookup(port, p.wrapPoint(cell))
}

// Compact drops expired trails to bound memory during long runs.
func (p *Plane) Compact() {
	for c, m := range p.cells {
		for port, t := range m {
			if t.expires <= p.now {
				delete(m, port)
			}
		}
		if len(m) == 0 {
			delete(p.cells, c)
		}
	}
}

// Server is a beaming server on the plane.
type Server struct {
	plane *Plane
	// Port is the service the server answers.
	Port Port
	// Pos is the server's grid position.
	Pos Point
	// BeamLen is the trail length l.
	BeamLen int
	// Period is the beaming interval δ.
	Period int
	// TrailTTL is the trail lifetime d.
	TrailTTL int
	// DriftEvery, when positive, makes the server take one random-walk
	// step every DriftEvery ticks: the mobile-server regime in which the
	// ruler schedule's recurring short beams pay off ("servers which
	// drift nearer to the client are located with less time-loss").
	DriftEvery int
	// WakeAt, when positive, suppresses beaming until the given tick:
	// the server is elsewhere (or not yet started) and only then appears
	// at its position. Experiments use it to model a server drifting
	// into a client's neighbourhood mid-search.
	WakeAt int64

	phase int64
}

// AddServer places a server on the plane; it beams once immediately and
// then every Period ticks.
func (p *Plane) AddServer(port Port, pos Point, beamLen, period, ttl int) (*Server, error) {
	return p.AddDormantServer(port, pos, beamLen, period, ttl, 0)
}

// AddDormantServer places a server that stays silent until tick wakeAt
// (0 = beam immediately). A dormant server models one that is far away
// or not yet started and later appears at its position.
func (p *Plane) AddDormantServer(port Port, pos Point, beamLen, period, ttl int, wakeAt int64) (*Server, error) {
	if beamLen < 1 || period < 1 || ttl < 1 {
		return nil, fmt.Errorf("lighthouse: server parameters l=%d δ=%d d=%d must be ≥ 1", beamLen, period, ttl)
	}
	s := &Server{
		plane:    p,
		Port:     port,
		Pos:      p.wrapPoint(pos),
		BeamLen:  beamLen,
		Period:   period,
		TrailTTL: ttl,
		WakeAt:   wakeAt,
		phase:    p.now % int64(period),
	}
	p.servers = append(p.servers, s)
	if wakeAt <= p.now {
		s.beam()
	}
	return s, nil
}

// beam emits one random-direction trail.
func (s *Server) beam() {
	dir := directions[s.plane.rng.IntN(len(directions))]
	cells := s.plane.beamCells(s.Pos, dir, s.BeamLen)
	s.plane.deposit(s.Port, s.Pos, cells, s.TrailTTL)
}

// Tick advances the plane clock by one unit; servers whose period
// boundary passes emit a fresh beam, and drifting servers take their
// random-walk step. (The paper assumes beam propagation is instantaneous
// relative to the trail lifetime d.)
func (p *Plane) Tick() {
	p.now++
	for _, s := range p.servers {
		if s.WakeAt > 0 && p.now < s.WakeAt {
			continue
		}
		if s.DriftEvery > 0 && p.now%int64(s.DriftEvery) == 0 {
			dir := directions[p.rng.IntN(len(directions))]
			s.Pos = p.wrapPoint(Point{s.Pos.X + dir.X, s.Pos.Y + dir.Y})
		}
		if p.now%int64(s.Period) == s.phase {
			s.beam()
		}
	}
}

// TickN advances the clock n ticks.
func (p *Plane) TickN(n int) {
	for i := 0; i < n; i++ {
		p.Tick()
	}
}

// Schedule generates the client's beam length for each trial (1-based).
type Schedule interface {
	// BeamLength returns the beam length for the given trial.
	BeamLength(trial int) int
	// Interval returns the number of ticks to wait after the given trial.
	Interval(trial int) int
	// Name identifies the schedule in reports.
	Name() string
}

// FixedSchedule beams a constant length at a constant interval.
type FixedSchedule struct {
	// L is the beam length of every trial.
	L int
	// Gap is the tick interval between trials.
	Gap int
}

// Name implements Schedule.
func (s FixedSchedule) Name() string { return fmt.Sprintf("fixed-l%d", s.L) }

// BeamLength implements Schedule.
func (s FixedSchedule) BeamLength(int) int { return s.L }

// Interval implements Schedule.
func (s FixedSchedule) Interval(int) int { return s.Gap }

// DoublingSchedule implements the paper's first client algorithm:
// originally the beam length is L and the interval Gap; after every E
// unsuccessful trials the client doubles both (l ← 2l, δ ← 2δ).
type DoublingSchedule struct {
	// L is the initial beam length.
	L int
	// Gap is the initial interval.
	Gap int
	// E is the number of failures between doublings.
	E int
}

// Name implements Schedule.
func (s DoublingSchedule) Name() string { return fmt.Sprintf("doubling-l%d-e%d", s.L, s.E) }

func (s DoublingSchedule) factor(trial int) int {
	e := s.E
	if e < 1 {
		e = 1
	}
	return 1 << uint((trial-1)/e)
}

// BeamLength implements Schedule.
func (s DoublingSchedule) BeamLength(trial int) int { return s.L * s.factor(trial) }

// Interval implements Schedule.
func (s DoublingSchedule) Interval(trial int) int { return s.Gap * s.factor(trial) }

// RulerSchedule implements the paper's second client algorithm: the beam
// length of trial t is i·L where i−1 is the number of trailing zeros of
// t — the position of the most significant bit changed by incrementing a
// binary counter. The resulting sequence of multipliers is
// 1 2 1 3 1 2 1 4 1 2 1 3 1 2 1 5 … (sequence 51 in Sloane's catalogue):
// in any 2^k consecutive trials there are 2^(k−i) beams of length i·L,
// and servers that drift nearer are found with less time-loss.
type RulerSchedule struct {
	// L is the base beam length.
	L int
	// Gap is the tick interval between trials.
	Gap int
}

// Name implements Schedule.
func (s RulerSchedule) Name() string { return fmt.Sprintf("ruler-l%d", s.L) }

// RulerValue returns the multiplier i for trial t ≥ 1.
func RulerValue(t int) int {
	if t < 1 {
		return 1
	}
	return bits.TrailingZeros(uint(t)) + 1
}

// BeamLength implements Schedule.
func (s RulerSchedule) BeamLength(trial int) int { return s.L * RulerValue(trial) }

// Interval implements Schedule.
func (s RulerSchedule) Interval(int) int { return s.Gap }

// LocateResult reports one client locate run.
type LocateResult struct {
	// Found reports whether a live trail was hit.
	Found bool
	// Addr is the located server position (when Found).
	Addr Point
	// Trials is the number of beams emitted.
	Trials int
	// Ticks is the simulated time consumed.
	Ticks int64
	// CellsProbed is the total number of cells examined, the message-pass
	// analogue for the plane.
	CellsProbed int
}

// Locate runs a client at pos beaming for port under the given schedule,
// for at most maxTrials trials. Each trial probes the cells of one beam;
// between trials the plane advances by the schedule's interval (servers
// keep beaming, trails keep expiring).
func (p *Plane) Locate(port Port, pos Point, sched Schedule, maxTrials int) LocateResult {
	pos = p.wrapPoint(pos)
	start := p.now
	res := LocateResult{}
	for trial := 1; trial <= maxTrials; trial++ {
		res.Trials = trial
		dir := directions[p.rng.IntN(len(directions))]
		length := sched.BeamLength(trial)
		for _, cell := range p.beamCells(pos, dir, length) {
			res.CellsProbed++
			if addr, ok := p.lookup(port, cell); ok {
				res.Found = true
				res.Addr = addr
				res.Ticks = p.now - start
				return res
			}
		}
		p.TickN(sched.Interval(trial))
	}
	res.Ticks = p.now - start
	return res
}
