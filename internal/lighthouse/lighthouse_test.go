package lighthouse

import (
	"testing"

	"matchmake/internal/topology"
)

func TestRulerSequenceMatchesPaper(t *testing.T) {
	// "1213121412131215..." — sequence 51 in Sloane's catalogue.
	want := []int{1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1, 5, 1, 2}
	for i, w := range want {
		if got := RulerValue(i + 1); got != w {
			t.Fatalf("RulerValue(%d) = %d, want %d", i+1, got, w)
		}
	}
	if RulerValue(0) != 1 {
		t.Fatal("RulerValue(0) should clamp to 1")
	}
}

func TestRulerCounts(t *testing.T) {
	// In a sequence of 2^k trials there are 2^(k−i) trials of length i·l.
	const k = 8
	counts := make(map[int]int)
	for tr := 1; tr <= 1<<k; tr++ {
		counts[RulerValue(tr)]++
	}
	for i := 1; i <= k; i++ {
		want := 1 << (k - i)
		if counts[i] != want {
			t.Fatalf("multiplier %d occurs %d times, want %d", i, counts[i], want)
		}
	}
}

func TestDoublingSchedule(t *testing.T) {
	s := DoublingSchedule{L: 3, Gap: 2, E: 2}
	wantLen := []int{3, 3, 6, 6, 12, 12, 24}
	for i, w := range wantLen {
		if got := s.BeamLength(i + 1); got != w {
			t.Fatalf("BeamLength(%d) = %d, want %d", i+1, got, w)
		}
	}
	if got := s.Interval(3); got != 4 {
		t.Fatalf("Interval(3) = %d, want 4", got)
	}
	// E = 0 clamps to 1.
	z := DoublingSchedule{L: 1, Gap: 1}
	if got := z.BeamLength(3); got != 4 {
		t.Fatalf("BeamLength with E=0 at trial 3 = %d, want 4", got)
	}
}

func TestPlaneWrap(t *testing.T) {
	p, err := NewPlane(10, 8, 1)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	got := p.wrapPoint(Point{-1, 9})
	if got != (Point{9, 1}) {
		t.Fatalf("wrap = %v, want {9,1}", got)
	}
	if _, err := NewPlane(0, 5, 1); err == nil {
		t.Fatal("zero-width plane should fail")
	}
}

func TestBeamCells(t *testing.T) {
	p, err := NewPlane(10, 10, 1)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	cells := p.beamCells(Point{5, 5}, Point{1, 0}, 3)
	want := []Point{{6, 5}, {7, 5}, {8, 5}}
	if len(cells) != len(want) {
		t.Fatalf("cells = %v, want %v", cells, want)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("cells = %v, want %v", cells, want)
		}
	}
}

func TestTrailExpiry(t *testing.T) {
	p, err := NewPlane(20, 20, 2)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	p.deposit("svc", Point{0, 0}, []Point{{1, 1}}, 3)
	if _, ok := p.lookup("svc", Point{1, 1}); !ok {
		t.Fatal("fresh trail should be visible")
	}
	p.TickN(2)
	if _, ok := p.lookup("svc", Point{1, 1}); !ok {
		t.Fatal("trail should still be live at t=2")
	}
	p.TickN(1)
	if _, ok := p.lookup("svc", Point{1, 1}); ok {
		t.Fatal("trail should have expired at t=3")
	}
	p.Compact()
	if len(p.cells) != 0 {
		t.Fatalf("compact left %d cells", len(p.cells))
	}
}

func TestServerBeamsPeriodically(t *testing.T) {
	p, err := NewPlane(30, 30, 3)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	if _, err := p.AddServer("svc", Point{15, 15}, 5, 4, 4); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	// After the initial beam there are exactly 5 trail cells.
	live := 0
	for range p.cells {
		live++
	}
	if live != 5 {
		t.Fatalf("trail cells = %d, want 5", live)
	}
	// Advance a full period: a new beam fires; old trail expires by ttl.
	p.TickN(8)
	p.Compact()
	if len(p.cells) == 0 {
		t.Fatal("server should keep the plane lit")
	}
	if _, err := p.AddServer("bad", Point{0, 0}, 0, 1, 1); err == nil {
		t.Fatal("invalid beam length should fail")
	}
}

func TestLocateFindsDenseServer(t *testing.T) {
	// A long-beam server with a long-lived trail is found quickly.
	p, err := NewPlane(32, 32, 7)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	if _, err := p.AddServer("svc", Point{16, 16}, 31, 2, 50); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	// Let several beams accumulate.
	p.TickN(12)
	res := p.Locate("svc", Point{2, 2}, RulerSchedule{L: 8, Gap: 1}, 200)
	if !res.Found {
		t.Fatalf("locate failed after %d trials", res.Trials)
	}
	if res.Addr != (Point{16, 16}) {
		t.Fatalf("Addr = %v, want {16,16}", res.Addr)
	}
	if res.CellsProbed <= 0 {
		t.Fatal("CellsProbed should be positive")
	}
}

func TestLocateEmptyPlaneFails(t *testing.T) {
	p, err := NewPlane(16, 16, 9)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	res := p.Locate("ghost", Point{0, 0}, FixedSchedule{L: 4, Gap: 1}, 10)
	if res.Found {
		t.Fatal("locate on empty plane should fail")
	}
	if res.Trials != 10 {
		t.Fatalf("Trials = %d, want 10", res.Trials)
	}
	if res.Ticks != 10 {
		t.Fatalf("Ticks = %d, want 10", res.Ticks)
	}
}

func TestDoublingEventuallyCoversPlane(t *testing.T) {
	// With doubling, the beam eventually spans the torus and must cross a
	// persistent trail.
	p, err := NewPlane(64, 64, 11)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	if _, err := p.AddServer("svc", Point{40, 40}, 40, 1, 1000); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	p.TickN(30)
	res := p.Locate("svc", Point{0, 0}, DoublingSchedule{L: 2, Gap: 1, E: 2}, 64)
	if !res.Found {
		t.Fatalf("doubling locate failed after %d trials", res.Trials)
	}
}

func TestBeamWalkLength(t *testing.T) {
	g, err := topology.RandomConnected(60, 40, 13)
	if err != nil {
		t.Fatalf("RandomConnected: %v", err)
	}
	nl, err := NewNetLighthouse(g, 17)
	if err != nil {
		t.Fatalf("NewNetLighthouse: %v", err)
	}
	for i := 0; i < 50; i++ {
		walk, err := BeamWalk(g, nl.r, 0, 6, nl.rng)
		if err != nil {
			t.Fatalf("BeamWalk: %v", err)
		}
		if len(walk) == 0 || len(walk) > 6 {
			t.Fatalf("walk length = %d, want 1..6", len(walk))
		}
		// Each step moves strictly away from the origin (except the
		// first, which may start anywhere adjacent).
		for k := 1; k < len(walk); k++ {
			if nl.r.Dist(walk[k], 0) <= nl.r.Dist(walk[k-1], 0) {
				t.Fatalf("walk step %d does not move away from origin", k)
			}
		}
	}
}

func TestBeamWalkErrors(t *testing.T) {
	g, err := topology.Line(4)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	nl, err := NewNetLighthouse(g, 1)
	if err != nil {
		t.Fatalf("NewNetLighthouse: %v", err)
	}
	if _, err := BeamWalk(g, nl.r, 99, 3, nl.rng); err == nil {
		t.Fatal("invalid origin should fail")
	}
	if _, err := BeamWalk(g, nl.r, 0, 0, nl.rng); err == nil {
		t.Fatal("zero length should fail")
	}
}

func TestNetLighthouseLocate(t *testing.T) {
	gr, err := topology.NewTorus(12, 12)
	if err != nil {
		t.Fatalf("NewTorus: %v", err)
	}
	nl, err := NewNetLighthouse(gr.G, 23)
	if err != nil {
		t.Fatalf("NewNetLighthouse: %v", err)
	}
	server := gr.At(6, 6)
	if _, err := nl.AddServer("svc", server, 10, 2, 100); err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	for i := 0; i < 20; i++ {
		nl.Tick()
	}
	res, err := nl.Locate("svc", gr.At(0, 0), RulerSchedule{L: 4, Gap: 1}, 400)
	if err != nil {
		t.Fatalf("Locate: %v", err)
	}
	if !res.Found {
		t.Fatalf("net locate failed after %d trials", res.Trials)
	}
	if res.Addr != server {
		t.Fatalf("Addr = %d, want %d", res.Addr, server)
	}
	if nl.Hops == 0 {
		t.Fatal("hops should be counted")
	}
}

func TestNetLighthouseErrors(t *testing.T) {
	g, err := topology.Line(5)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	nl, err := NewNetLighthouse(g, 1)
	if err != nil {
		t.Fatalf("NewNetLighthouse: %v", err)
	}
	if _, err := nl.AddServer("svc", 99, 1, 1, 1); err == nil {
		t.Fatal("invalid server node should fail")
	}
	if _, err := nl.AddServer("svc", 0, 0, 1, 1); err == nil {
		t.Fatal("invalid beam length should fail")
	}
	if _, err := nl.Locate("svc", 99, FixedSchedule{L: 1, Gap: 1}, 1); err == nil {
		t.Fatal("invalid client node should fail")
	}
}

func TestServerDrift(t *testing.T) {
	p, err := NewPlane(40, 40, 5)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	srv, err := p.AddServer("svc", Point{20, 20}, 4, 1000, 1000)
	if err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	srv.DriftEvery = 1
	start := srv.Pos
	p.TickN(50)
	if srv.Pos == start {
		t.Fatal("drifting server did not move in 50 ticks")
	}
	// Drift is a unit-step walk: after k ticks the displacement is ≤ k in
	// each coordinate (mod wraparound).
	if srv.Pos.X < 0 || srv.Pos.X >= 40 || srv.Pos.Y < 0 || srv.Pos.Y >= 40 {
		t.Fatalf("drifted off the torus: %v", srv.Pos)
	}
}

func TestDriftingServerStillLocatable(t *testing.T) {
	p, err := NewPlane(48, 48, 8)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	srv, err := p.AddServer("svc", Point{30, 30}, 10, 3, 30)
	if err != nil {
		t.Fatalf("AddServer: %v", err)
	}
	srv.DriftEvery = 2
	p.TickN(10)
	res := p.Locate("svc", Point{5, 5}, RulerSchedule{L: 3, Gap: 1}, 2000)
	if !res.Found {
		t.Fatalf("drifting server not found after %d trials", res.Trials)
	}
}

func TestLighthouseDeterministicWithSeed(t *testing.T) {
	run := func() LocateResult {
		p, err := NewPlane(24, 24, 42)
		if err != nil {
			t.Fatalf("NewPlane: %v", err)
		}
		if _, err := p.AddServer("svc", Point{12, 12}, 8, 3, 20); err != nil {
			t.Fatalf("AddServer: %v", err)
		}
		p.TickN(5)
		return p.Locate("svc", Point{0, 0}, RulerSchedule{L: 3, Gap: 1}, 500)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}
