package service

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

var fastOpts = core.Options{LocateTimeout: 150 * time.Millisecond, CollectWindow: 20 * time.Millisecond}

func newRegistry(t *testing.T, n int) *Registry {
	t.Helper()
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := core.NewSystem(net, rendezvous.Checkerboard(n), fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	r, err := NewRegistry(sys)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	r.CallTimeout = 300 * time.Millisecond
	return r
}

func echoHandler(method string, body any) (any, error) {
	return fmt.Sprintf("%s:%v", method, body), nil
}

func TestServeAndInvoke(t *testing.T) {
	r := newRegistry(t, 16)
	if _, err := r.Serve("echo", 3, echoHandler); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	got, err := r.Invoke(12, "echo", "say", "hello")
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got != "say:hello" {
		t.Fatalf("reply = %v, want say:hello", got)
	}
}

func TestInvokeMissingService(t *testing.T) {
	r := newRegistry(t, 9)
	if _, err := r.Invoke(0, "ghost", "m", nil); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v, want ErrNoService", err)
	}
}

func TestHandlerErrorPropagates(t *testing.T) {
	r := newRegistry(t, 9)
	if _, err := r.Serve("db", 2, func(string, any) (any, error) {
		return nil, errors.New("disk full")
	}); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	_, err := r.Invoke(5, "db", "write", "row")
	if err == nil || !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v, want wrapped failure", err)
	}
}

func TestStopMakesServiceUnreachable(t *testing.T) {
	r := newRegistry(t, 16)
	p, err := r.Serve("svc", 4, echoHandler)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := r.Invoke(10, "svc", "m", nil); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v, want ErrNoService after stop", err)
	}
	if err := p.Stop(); !errors.Is(err, core.ErrServerGone) {
		t.Fatalf("double stop err = %v, want ErrServerGone", err)
	}
}

func TestMigrateKeepsServiceReachable(t *testing.T) {
	r := newRegistry(t, 16)
	p, err := r.Serve("files", 2, echoHandler)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	if err := p.Migrate(11); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	if p.Node() != 11 {
		t.Fatalf("Node = %d, want 11", p.Node())
	}
	got, err := r.Invoke(7, "files", "read", "a.txt")
	if err != nil {
		t.Fatalf("Invoke after migrate: %v", err)
	}
	if got != "read:a.txt" {
		t.Fatalf("reply = %v", got)
	}
	if err := p.Migrate(99); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("bad migrate err = %v, want ErrNodeRange", err)
	}
}

func TestStaleAddressRetries(t *testing.T) {
	// A client that cached a located address implicitly (via rendezvous
	// caches) must survive the server moving between locate and call:
	// here we stop the old process but leave a stale posting by
	// registering a second process at a new node under the same port.
	r := newRegistry(t, 16)
	p1, err := r.Serve("svc", 3, func(string, any) (any, error) { return "old", nil })
	if err != nil {
		t.Fatalf("Serve old: %v", err)
	}
	// Kill the process locally but do not tombstone the name server —
	// simulating a crash that leaves stale rendezvous entries.
	r.mu.Lock()
	delete(r.processes[p1.Node()], "svc")
	r.mu.Unlock()
	if _, err := r.Serve("svc", 9, func(string, any) (any, error) { return "new", nil }); err != nil {
		t.Fatalf("Serve new: %v", err)
	}
	got, err := r.Invoke(5, "svc", "m", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got != "new" {
		t.Fatalf("reply = %v, want new (fresh process wins by timestamp)", got)
	}
}

func TestServiceHierarchy(t *testing.T) {
	// §1.3's example: client → query server → database server. The query
	// server is itself a client of the database service.
	r := newRegistry(t, 25)
	if _, err := r.Serve("database", 20, func(method string, body any) (any, error) {
		if method != "get" {
			return nil, ErrBadRequest
		}
		return fmt.Sprintf("row(%v)", body), nil
	}); err != nil {
		t.Fatalf("Serve database: %v", err)
	}
	queryNode := graph.NodeID(10)
	if _, err := r.Serve("query", queryNode, func(method string, body any) (any, error) {
		row, err := r.Invoke(queryNode, "database", "get", body)
		if err != nil {
			return nil, fmt.Errorf("database unavailable: %w", err)
		}
		return fmt.Sprintf("result[%v]", row), nil
	}); err != nil {
		t.Fatalf("Serve query: %v", err)
	}
	got, err := r.Invoke(2, "query", "select", "k1")
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got != "result[row(k1)]" {
		t.Fatalf("reply = %v", got)
	}
}

func TestHierarchyRecoversFromDatabaseCrash(t *testing.T) {
	// The query server detects the database crash and retries; a standby
	// database process under the same port answers, so the human client
	// never sees the failure.
	r := newRegistry(t, 25)
	db1, err := r.Serve("database", 20, func(string, any) (any, error) { return "primary", nil })
	if err != nil {
		t.Fatalf("Serve db1: %v", err)
	}
	if _, err := r.Serve("database", 21, func(string, any) (any, error) { return "standby", nil }); err != nil {
		t.Fatalf("Serve db2: %v", err)
	}
	queryNode := graph.NodeID(10)
	if _, err := r.Serve("query", queryNode, func(string, any) (any, error) {
		return r.Invoke(queryNode, "database", "get", nil)
	}); err != nil {
		t.Fatalf("Serve query: %v", err)
	}
	// Crash the primary database host.
	if err := r.System().Network().Crash(db1.Node()); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	r.InvokeRetries = 3
	got, err := r.Invoke(2, "query", "select", nil)
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got != "standby" && got != "primary" {
		t.Fatalf("reply = %v", got)
	}
}

func TestServeErrors(t *testing.T) {
	r := newRegistry(t, 9)
	if _, err := r.Serve("svc", 0, nil); err == nil {
		t.Fatal("nil handler should fail")
	}
	if _, err := r.Serve("svc", 99, echoHandler); err == nil {
		t.Fatal("invalid node should fail")
	}
}

func TestServiceOnGridStrategy(t *testing.T) {
	// The service layer runs over any strategy; exercise Manhattan.
	gr, err := topology.NewGrid(4, 4)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	net, err := sim.New(gr.G)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := core.NewSystem(net, strategy.Manhattan(gr), fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	r, err := NewRegistry(sys)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	r.CallTimeout = 300 * time.Millisecond
	if _, err := r.Serve("printer", gr.At(1, 1), echoHandler); err != nil {
		t.Fatalf("Serve: %v", err)
	}
	got, err := r.Invoke(gr.At(3, 2), "printer", "print", "doc")
	if err != nil {
		t.Fatalf("Invoke: %v", err)
	}
	if got != "print:doc" {
		t.Fatalf("reply = %v", got)
	}
}
