package service

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/sim"
	"matchmake/internal/topology"
)

// TestCateringServiceStory replays §1.1's motivating scenario end to
// end: you want a caterer but don't know where one lives today; the
// caterer, to execute your job, is itself a client of a car rental
// service; outfits "come and go so fast" — the caterer moves and a new
// one appears — and match-making keeps finding the current addresses.
func TestCateringServiceStory(t *testing.T) {
	const n = 49 // Silicon Valley, 49 houses, fully connected phone lines
	net, err := sim.New(topology.Complete(n))
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := core.NewSystem(net, rendezvous.Checkerboard(n), core.Options{
		LocateTimeout: 200 * time.Millisecond,
		CollectWindow: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	r, err := NewRegistry(sys)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	r.CallTimeout = 400 * time.Millisecond
	r.InvokeRetries = 2

	// The car rental outfit.
	if _, err := r.Serve("car-rental", 30, func(method string, body any) (any, error) {
		return fmt.Sprintf("van for %v", body), nil
	}); err != nil {
		t.Fatalf("Serve car-rental: %v", err)
	}

	// The catering service: a server to you, a client to the car rental.
	catererHost := graph.NodeID(12)
	caterer, err := r.Serve("catering", catererHost, func(method string, body any) (any, error) {
		van, err := r.Invoke(catererHost, "car-rental", "book", body)
		if err != nil {
			return nil, fmt.Errorf("cannot deliver: %w", err)
		}
		return fmt.Sprintf("party at %v, delivered by %v", body, van), nil
	})
	if err != nil {
		t.Fatalf("Serve catering: %v", err)
	}

	// You, at home, just ask for "catering" — no address needed.
	yourHome := graph.NodeID(3)
	got, err := r.Invoke(yourHome, "catering", "order", "your place")
	if err != nil {
		t.Fatalf("ordering catering: %v", err)
	}
	want := "party at your place, delivered by van for your place"
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}

	// Outfits come and go: the caterer relocates across town. The stale
	// address would be useless — "the number gets you somebody who has
	// never heard of your old catering service" — but match-making
	// re-finds it.
	newHost := graph.NodeID(44)
	if err := caterer.Migrate(newHost); err != nil {
		t.Fatalf("Migrate: %v", err)
	}
	// The handler closure still books from the old host variable; replace
	// the process to model the new premises properly.
	if err := caterer.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if _, err := r.Serve("catering", newHost, func(method string, body any) (any, error) {
		van, err := r.Invoke(newHost, "car-rental", "book", body)
		if err != nil {
			return nil, fmt.Errorf("cannot deliver: %w", err)
		}
		return fmt.Sprintf("party at %v, delivered by %v", body, van), nil
	}); err != nil {
		t.Fatalf("Serve relocated catering: %v", err)
	}
	got, err = r.Invoke(yourHome, "catering", "order", "your place")
	if err != nil {
		t.Fatalf("ordering from relocated caterer: %v", err)
	}
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}

	// If every caterer in town folds, you finally get an error — the
	// irrecoverable case the human has to cope with.
	res, err := sys.LocateAll(yourHome, "catering")
	if err != nil {
		t.Fatalf("LocateAll: %v", err)
	}
	if len(res) != 1 {
		t.Fatalf("live caterers = %d, want 1", len(res))
	}
}

func TestInvokeNearestPicksLocalInstance(t *testing.T) {
	// Two replicas of a service on a line network; clients are served by
	// their own side.
	g, err := topology.Line(11)
	if err != nil {
		t.Fatalf("Line: %v", err)
	}
	net, err := sim.New(g)
	if err != nil {
		t.Fatalf("sim.New: %v", err)
	}
	t.Cleanup(net.Close)
	sys, err := core.NewSystem(net, rendezvous.Sweep(11), fastOpts)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	r, err := NewRegistry(sys)
	if err != nil {
		t.Fatalf("NewRegistry: %v", err)
	}
	r.CallTimeout = 400 * time.Millisecond
	if _, err := r.Serve("mirror", 0, func(string, any) (any, error) { return "west", nil }); err != nil {
		t.Fatalf("Serve west: %v", err)
	}
	if _, err := r.Serve("mirror", 10, func(string, any) (any, error) { return "east", nil }); err != nil {
		t.Fatalf("Serve east: %v", err)
	}
	got, err := r.InvokeNearest(2, "mirror", "get", nil)
	if err != nil {
		t.Fatalf("InvokeNearest west: %v", err)
	}
	if got != "west" {
		t.Fatalf("client 2 served by %v, want west", got)
	}
	got, err = r.InvokeNearest(9, "mirror", "get", nil)
	if err != nil {
		t.Fatalf("InvokeNearest east: %v", err)
	}
	if got != "east" {
		t.Fatalf("client 9 served by %v, want east", got)
	}
}

func TestInvokeNearestMissing(t *testing.T) {
	r := newRegistry(t, 9)
	if _, err := r.InvokeNearest(0, "ghost", "m", nil); !errors.Is(err, ErrNoService) {
		t.Fatalf("err = %v, want ErrNoService", err)
	}
}
