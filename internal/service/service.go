// Package service implements the paper's service model (§1.3) on top of
// the distributed name server: services are identified by ports and
// handled by one or more server processes that accept request messages,
// carry out work and send back replies; clients locate a service through
// match-making and then send it requests. Server processes can migrate,
// crash and be replaced, and a server can itself be client to another
// service — "essentially, every job in the system is executed by a
// dynamic network of servers executing each other's requests".
package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/sim"
)

// Errors returned by the service layer.
var (
	// ErrNoService reports that no server process could be located or
	// reached after the configured retries — the irrecoverable case that
	// reaches "the human client at the top of the hierarchy".
	ErrNoService = errors.New("service: no reachable server")
	// ErrBadRequest reports a malformed request payload at a server.
	ErrBadRequest = errors.New("service: bad request")
)

// Handler executes one request at a server process and returns the reply
// body or an error (errors travel back to the client as failed responses).
type Handler func(method string, body any) (any, error)

// Request is the wire format of a service request.
type Request struct {
	// Port addresses the service.
	Port core.Port
	// Method selects the command (services are "defined by a set of
	// commands and responses").
	Method string
	// Body is the command argument.
	Body any
}

// response is the wire format of a service reply.
type response struct {
	body any
	err  string
}

// Registry runs the service layer over a name-server System: it wraps
// every node's message handler so that service requests dispatch to the
// local server processes and everything else flows to the name server.
type Registry struct {
	sys *core.System
	net *sim.Network

	mu        sync.Mutex
	processes map[graph.NodeID]map[core.Port]*Process

	// CallTimeout bounds each request round trip; InvokeRetries is how
	// many times Invoke re-locates and retries after a failed attempt
	// ("the query server can retry the request").
	CallTimeout   time.Duration
	InvokeRetries int
}

// NewRegistry wraps the system's per-node handlers with service dispatch.
func NewRegistry(sys *core.System) (*Registry, error) {
	r := &Registry{
		sys:           sys,
		net:           sys.Network(),
		processes:     make(map[graph.NodeID]map[core.Port]*Process),
		CallTimeout:   2 * time.Second,
		InvokeRetries: 1,
	}
	n := r.net.Graph().N()
	for v := 0; v < n; v++ {
		node := graph.NodeID(v)
		if err := r.net.SetHandler(node, r.handle); err != nil {
			return nil, fmt.Errorf("service: install handler: %w", err)
		}
	}
	return r, nil
}

func (r *Registry) handle(self graph.NodeID, msg sim.Message) {
	req, ok := msg.Payload.(Request)
	if !ok {
		r.sys.HandleMessage(self, msg)
		return
	}
	if !msg.CanReply() {
		return
	}
	r.mu.Lock()
	proc := r.processes[self][req.Port]
	r.mu.Unlock()
	if proc == nil {
		// The client's cached address is stale (server moved or died).
		_ = msg.Reply(response{err: "no such server process here"})
		return
	}
	body, err := proc.handler(req.Method, req.Body)
	if err != nil {
		_ = msg.Reply(response{err: err.Error()})
		return
	}
	_ = msg.Reply(response{body: body})
}

// Process is a running server process.
type Process struct {
	reg     *Registry
	srv     *core.Server
	port    core.Port
	handler Handler

	mu   sync.Mutex
	node graph.NodeID
	done bool
}

// Serve starts a server process for port at node: the handler is
// installed locally and the (port, address) is posted through the name
// server.
func (r *Registry) Serve(port core.Port, node graph.NodeID, h Handler) (*Process, error) {
	if h == nil {
		return nil, fmt.Errorf("service: nil handler for %q", port)
	}
	srv, err := r.sys.RegisterServer(port, node)
	if err != nil {
		return nil, fmt.Errorf("service: serve %q: %w", port, err)
	}
	p := &Process{reg: r, srv: srv, port: port, handler: h, node: node}
	r.mu.Lock()
	if r.processes[node] == nil {
		r.processes[node] = make(map[core.Port]*Process)
	}
	r.processes[node][port] = p
	r.mu.Unlock()
	return p, nil
}

// Node returns the process's current host.
func (p *Process) Node() graph.NodeID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node
}

// Stop destroys the server process: it stops receiving requests and its
// postings are tombstoned.
func (p *Process) Stop() error {
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return core.ErrServerGone
	}
	p.done = true
	node := p.node
	p.mu.Unlock()

	p.reg.mu.Lock()
	delete(p.reg.processes[node], p.port)
	p.reg.mu.Unlock()
	return p.srv.Deregister()
}

// Migrate moves the process to another host: destroyed at the old host
// and recreated at the new one, with the name server updated (§1.3).
func (p *Process) Migrate(to graph.NodeID) error {
	if !p.reg.net.Graph().Valid(to) {
		return fmt.Errorf("service: migrate to %d: %w", to, graph.ErrNodeRange)
	}
	p.mu.Lock()
	if p.done {
		p.mu.Unlock()
		return core.ErrServerGone
	}
	from := p.node
	p.node = to
	p.mu.Unlock()

	p.reg.mu.Lock()
	delete(p.reg.processes[from], p.port)
	if p.reg.processes[to] == nil {
		p.reg.processes[to] = make(map[core.Port]*Process)
	}
	p.reg.processes[to][p.port] = p
	p.reg.mu.Unlock()
	return p.srv.Migrate(to)
}

// Invoke performs one client request: locate the port through
// match-making, send the request to the located address, and return the
// reply body. Failed attempts (stale address, crashed server, lost
// route) are retried with a fresh locate up to InvokeRetries times; after
// that the failure is irrecoverable and ErrNoService is returned.
//
// A server process may call Invoke itself to use another service, as long
// as the callee runs on a different node (a node's handler is
// single-threaded, so a synchronous self-call would deadlock).
func (r *Registry) Invoke(client graph.NodeID, port core.Port, method string, body any) (any, error) {
	var lastErr error
	for attempt := 0; attempt <= r.InvokeRetries; attempt++ {
		loc, err := r.sys.Locate(client, port)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := r.net.Call(client, loc.Addr, Request{Port: port, Method: method, Body: body}, r.CallTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		rep, ok := raw.(response)
		if !ok {
			lastErr = fmt.Errorf("service: unexpected reply %T", raw)
			continue
		}
		if rep.err != "" {
			lastErr = fmt.Errorf("service: %q %s: %s", port, method, rep.err)
			continue
		}
		return rep.body, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no attempt made")
	}
	return nil, fmt.Errorf("invoke %q from %d: %w: %w", port, client, ErrNoService, lastErr)
}

// InvokeNearest behaves like Invoke but, when several equivalent server
// processes offer the port (§1.3), sends the request to the instance
// closest to the client in hop distance — the locality preference of
// §3.5's "nearly every service will be a local service".
func (r *Registry) InvokeNearest(client graph.NodeID, port core.Port, method string, body any) (any, error) {
	var lastErr error
	for attempt := 0; attempt <= r.InvokeRetries; attempt++ {
		loc, err := r.sys.LocateNearest(client, port)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := r.net.Call(client, loc.Addr, Request{Port: port, Method: method, Body: body}, r.CallTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		rep, ok := raw.(response)
		if !ok {
			lastErr = fmt.Errorf("service: unexpected reply %T", raw)
			continue
		}
		if rep.err != "" {
			lastErr = fmt.Errorf("service: %q %s: %s", port, method, rep.err)
			continue
		}
		return rep.body, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no attempt made")
	}
	return nil, fmt.Errorf("invoke-nearest %q from %d: %w: %w", port, client, ErrNoService, lastErr)
}

// System returns the underlying name-server system.
func (r *Registry) System() *core.System { return r.sys }
