// Package strategy provides the topology-aware Shotgun Locate strategies
// of Section 3 of the paper: Manhattan row/column posting, d-dimensional
// mesh slices, hypercube (ε-)splits, cube-connected-cycles tuning,
// projective-plane lines, hierarchical gateway posting, tree path-to-root
// and the generic √n-decomposition method for arbitrary connected
// networks.
//
// Every constructor returns a rendezvous.Strategy, so the theory package
// can analyze it and the core engine can run it over the simulator.
package strategy

import (
	"fmt"
	"math"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// Manhattan returns the §3.1 strategy on a grid or torus: post
// availability of a service along its row and request a service along the
// column the client is on. The rendezvous node of server (r,c) and client
// (r′,c′) is the crossing (r,c′); m(n) = 2√n on square grids with caches
// of size √n.
func Manhattan(g *topology.Grid) rendezvous.Strategy {
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("manhattan-%dx%d", g.Rows, g.Cols),
		Universe:     g.G.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			r, _ := g.RowCol(i)
			return g.Row(r)
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			_, c := g.RowCol(j)
			return g.Column(c)
		},
	}
}

// MeshSplit returns the d-dimensional generalization of Manhattan on a
// mesh: the server posts along the slice that varies postAxes (fixing the
// rest to its own coordinates) and the client queries the complementary
// slice. The two slices always meet in exactly one node — the one taking
// the client's coordinates on postAxes and the server's elsewhere.
//
// With one query axis on a side-D cube this gives the paper's
// m(n) = Θ(n^((d−1)/d)).
func MeshSplit(m *topology.Mesh, postAxes []int) (rendezvous.Strategy, error) {
	d := len(m.Dims)
	isPost := make([]bool, d)
	for _, ax := range postAxes {
		if ax < 0 || ax >= d {
			return nil, fmt.Errorf("strategy: mesh axis %d out of [0,%d)", ax, d)
		}
		if isPost[ax] {
			return nil, fmt.Errorf("strategy: duplicate mesh axis %d", ax)
		}
		isPost[ax] = true
	}
	if len(postAxes) == 0 || len(postAxes) == d {
		return nil, fmt.Errorf("strategy: mesh split needs 1..%d post axes, got %d", d-1, len(postAxes))
	}
	var queryAxes, postFixed []int
	for ax := 0; ax < d; ax++ {
		if isPost[ax] {
			postFixed = append(postFixed, ax) // axes fixed by the QUERY slice
		} else {
			queryAxes = append(queryAxes, ax) // axes fixed by the POST slice
		}
	}
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("mesh-split-%v|%v", postAxes, queryAxes),
		Universe:     m.G.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			// Post varies postAxes: fix the others (queryAxes).
			return m.Slice(i, queryAxes)
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			// Query varies the remaining axes: fix postAxes.
			return m.Slice(j, postFixed)
		},
	}, nil
}

// OptimalGridSplit returns the grid shape p×q (p·q = n, q = row length)
// minimizing the weighted match-making cost q + α·p of (M3′), where a
// client query is α times more frequent than a server post: the server
// posts along its row (q messages) and the client queries its column
// (p messages). The continuous optimum is p* = √(n/α), q* = √(α·n) with
// cost 2√(α·n); the function returns the best integer divisor pair.
func OptimalGridSplit(n int, alpha float64) (p, q int, cost float64) {
	best := math.Inf(1)
	for cand := 1; cand <= n; cand++ {
		if n%cand != 0 {
			continue
		}
		rows, cols := cand, n/cand
		c := float64(cols) + alpha*float64(rows)
		if c < best {
			best = c
			p, q = rows, cols
		}
	}
	return p, q, best
}
