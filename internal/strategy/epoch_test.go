package strategy

import (
	"testing"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

func TestNewEpochValidates(t *testing.T) {
	if _, err := NewEpoch(1, 16, rendezvous.Checkerboard(36), 1); err == nil {
		t.Fatal("active > universe accepted")
	}
	if _, err := NewEpoch(1, 36, rendezvous.Checkerboard(36), 0); err == nil {
		t.Fatal("replicas 0 accepted")
	}
	ep, err := NewEpoch(3, 64, rendezvous.Checkerboard(36), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ep.Seq() != 3 || ep.Universe() != 64 || ep.Active() != 36 || ep.Replicas() != 2 {
		t.Fatalf("epoch shape wrong: %s", ep.Name())
	}
}

func TestEpochSetsEmptyOutsideMembership(t *testing.T) {
	ep, err := NewEpoch(1, 64, rendezvous.Checkerboard(36), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []graph.NodeID{36, 63, -1} {
		if ep.PostSet(v) != nil || ep.QuerySet(v, 0) != nil {
			t.Fatalf("inactive node %d has non-empty sets", v)
		}
		if ep.Contains(v) {
			t.Fatalf("inactive node %d reported as member", v)
		}
	}
	for i := 0; i < ep.Active(); i++ {
		id := graph.NodeID(i)
		if len(ep.PostSet(id)) == 0 || len(ep.QuerySet(id, 0)) == 0 {
			t.Fatalf("active node %d has empty sets", i)
		}
		for _, v := range ep.PostSet(id) {
			if !ep.Contains(v) {
				t.Fatalf("posting target %d of %d outside membership", v, i)
			}
		}
	}
}

// TestEpochInPostMatchesSets pins the family-scoping predicate to the
// literal set membership for both the unreplicated bitset and the
// replicated delegation.
func TestEpochInPostMatchesSets(t *testing.T) {
	for _, r := range []int{1, 2} {
		ep, err := NewEpoch(1, 40, rendezvous.Checkerboard(36), r)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < r; k++ {
			inSet := func(i graph.NodeID, v graph.NodeID) bool {
				var set []graph.NodeID
				if rp := ep.Replicated(); rp != nil {
					set = rp.Replica(k).Post(i)
				} else {
					set = ep.Base().Post(i)
				}
				for _, x := range set {
					if x == v {
						return true
					}
				}
				return false
			}
			for i := 0; i < ep.Active(); i += 5 {
				for v := 0; v < ep.Universe(); v += 3 {
					want := v < ep.Active() && inSet(graph.NodeID(i), graph.NodeID(v))
					if got := ep.InPost(k, graph.NodeID(i), graph.NodeID(v)); got != want {
						t.Fatalf("r=%d family %d InPost(%d,%d) = %v, want %v", r, k, i, v, got, want)
					}
				}
			}
		}
	}
}

// TestRemapMinimalMovement pins the remap's delta algebra: Added and
// Removed are disjoint from the intersection, the identity remap moves
// nothing, and MovedPosts sums exactly the per-origin additions.
func TestRemapMinimalMovement(t *testing.T) {
	from, err := NewEpoch(1, 64, rendezvous.Checkerboard(36), 1)
	if err != nil {
		t.Fatal(err)
	}
	to, err := NewEpoch(2, 64, rendezvous.Checkerboard(64), 1)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRemap(from, to)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 64; i++ {
		id := graph.NodeID(i)
		oldSet := make(map[graph.NodeID]bool)
		for _, v := range from.PostSet(id) {
			oldSet[v] = true
		}
		newSet := make(map[graph.NodeID]bool)
		for _, v := range to.PostSet(id) {
			newSet[v] = true
		}
		for _, v := range rm.Added(id) {
			if oldSet[v] || !newSet[v] {
				t.Fatalf("Added(%d) contains %d which is not new", i, v)
			}
		}
		for _, v := range rm.Removed(id) {
			if newSet[v] || !oldSet[v] {
				t.Fatalf("Removed(%d) contains %d which is not old-only", i, v)
			}
		}
		if got := len(rm.Added(id)) + len(rm.Removed(id)); got == 0 && len(oldSet) != len(newSet) {
			t.Fatalf("node %d: zero delta between different sets", i)
		}
		moved += len(rm.Added(id))
	}
	origins := make([]graph.NodeID, 64)
	for i := range origins {
		origins[i] = graph.NodeID(i)
	}
	if got := rm.MovedPosts(origins); got != moved {
		t.Fatalf("MovedPosts = %d, want %d", got, moved)
	}

	// Identity remap: same epoch geometry on both sides moves nothing.
	same, err := NewEpoch(3, 64, rendezvous.Checkerboard(36), 1)
	if err != nil {
		t.Fatal(err)
	}
	idRM, err := NewRemap(from, same)
	if err != nil {
		t.Fatal(err)
	}
	if got := idRM.MovedPosts(origins); got != 0 {
		t.Fatalf("identity remap moves %d postings", got)
	}

	if _, err := NewRemap(from, nil); err == nil {
		t.Fatal("nil epoch accepted")
	}
}

// TestRemapUnionPostsForReplicatedEpochs checks that the remap diffs
// the union posting sets when epochs are replicated — the set servers
// actually post to.
func TestRemapUnionPostsForReplicatedEpochs(t *testing.T) {
	from, err := NewEpoch(1, 36, rendezvous.Checkerboard(36), 1)
	if err != nil {
		t.Fatal(err)
	}
	to, err := NewEpoch(2, 36, rendezvous.Checkerboard(36), 2)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := NewRemap(from, to)
	if err != nil {
		t.Fatal(err)
	}
	// Same base strategy, but r=2 posts the union: the delta must be
	// exactly the second family's extra targets.
	for i := 0; i < 36; i += 7 {
		id := graph.NodeID(i)
		want := len(to.PostSet(id)) - len(from.PostSet(id))
		if got := len(rm.Added(id)); got != want {
			t.Fatalf("node %d: added %d targets, want %d", i, got, want)
		}
		if got := len(rm.Removed(id)); got != 0 {
			t.Fatalf("node %d: removed %d targets, want 0 (union ⊇ base)", i, got)
		}
	}
}
