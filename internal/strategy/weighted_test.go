package strategy

import (
	"testing"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// TestPostHeavyRendezvous verifies the rendezvous property of the
// post-heavy split across sizes, including non-divisible block counts.
func TestPostHeavyRendezvous(t *testing.T) {
	for _, tc := range []struct{ n, q int }{
		{16, 2}, {16, 4}, {17, 3}, {64, 2}, {64, 8}, {100, 7}, {5, 1}, {5, 5},
	} {
		s, err := PostHeavy(tc.n, tc.q)
		if err != nil {
			t.Fatalf("PostHeavy(%d,%d): %v", tc.n, tc.q, err)
		}
		m, err := rendezvous.Build(s)
		if err != nil {
			t.Fatalf("PostHeavy(%d,%d): build: %v", tc.n, tc.q, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("PostHeavy(%d,%d): %v", tc.n, tc.q, err)
		}
		for j := 0; j < tc.n; j++ {
			if got := len(s.Query(graph.NodeID(j))); got > tc.q {
				t.Fatalf("PostHeavy(%d,%d): #Q(%d) = %d > %d", tc.n, tc.q, j, got, tc.q)
			}
		}
	}
	if _, err := PostHeavy(8, 0); err == nil {
		t.Fatal("PostHeavy(8,0) should fail")
	}
	if _, err := PostHeavy(8, 9); err == nil {
		t.Fatal("PostHeavy(8,9) should fail")
	}
}

// TestAlphaQuerySize pins the (M3′) optimum: q* = √(n/α), clamped.
func TestAlphaQuerySize(t *testing.T) {
	for _, tc := range []struct {
		n     int
		alpha float64
		want  int
	}{
		{64, 16, 2}, {64, 4, 4}, {64, 1, 8}, {64, 0.25, 16},
		{64, 1 << 20, 1}, {64, 1e-9, 64}, {64, 0, 8},
	} {
		if got := AlphaQuerySize(tc.n, tc.alpha); got != tc.want {
			t.Fatalf("AlphaQuerySize(%d, %v) = %d, want %d", tc.n, tc.alpha, got, tc.want)
		}
	}
}

// TestWeightedUnion checks the union posting sets contain both halves,
// so every hot/cold query mix can rendezvous with a hot server.
func TestWeightedUnion(t *testing.T) {
	const n = 36
	base := rendezvous.Checkerboard(n)
	hot, err := PostHeavy(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWeighted(base, hot)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != n {
		t.Fatalf("N = %d, want %d", w.N(), n)
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		u := w.UnionPost(id)
		in := make(map[graph.NodeID]bool, len(u))
		prev := graph.NodeID(-1)
		for _, x := range u {
			if x <= prev {
				t.Fatalf("UnionPost(%d) not sorted/deduped: %v", v, u)
			}
			prev = x
			in[x] = true
		}
		for _, x := range w.Base().Post(id) {
			if !in[x] {
				t.Fatalf("UnionPost(%d) missing base node %d", v, x)
			}
		}
		for _, x := range w.Hot().Post(id) {
			if !in[x] {
				t.Fatalf("UnionPost(%d) missing hot node %d", v, x)
			}
		}
	}
	// Mismatched universes must be rejected.
	small, err := PostHeavy(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWeighted(base, small); err == nil {
		t.Fatal("NewWeighted with mismatched universes should fail")
	}
}
