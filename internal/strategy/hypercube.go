package strategy

import (
	"fmt"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// HypercubeSplit returns the §3.2 strategy on a binary d-cube with the
// corner address split after k bits: a server at s broadcasts its
// (port, address) into the k-dimensional subcube that varies the high k
// bits of its address (keeping its own low d−k bits); a client at c
// queries the (d−k)-dimensional subcube that varies the low d−k bits
// (keeping its own high k bits). For every pair the two subcubes meet in
// exactly one node, c₁…c_k s_{k+1}…s_d.
//
// k = d/2 is the paper's main variant (m(n) = 2·2^(d/2) = 2√n for even
// d); other k realize the ε-split trade-off #P = 2^k vs #Q = 2^(d−k),
// used "to adapt the method to take advantage of relative immobility of
// servers".
func HypercubeSplit(h *topology.Hypercube, k int) (rendezvous.Strategy, error) {
	if k < 0 || k > h.D {
		return nil, fmt.Errorf("strategy: hypercube split %d out of [0,%d]", k, h.D)
	}
	low := h.LowMask(h.D - k)
	high := h.HighMask(k)
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("hypercube-d%d-k%d", h.D, k),
		Universe:     h.G.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			return h.Subcube(i, low) // vary high k bits
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			return h.Subcube(j, high) // vary low d−k bits
		},
	}, nil
}

// HalfCube returns HypercubeSplit at the paper's k = d/2 midpoint.
func HalfCube(h *topology.Hypercube) (rendezvous.Strategy, error) {
	return HypercubeSplit(h, h.D/2)
}

// CCCSplit returns the §3.3 strategy for cube-connected cycles,
// "an algorithm similar to that of the d-dimensional cube … appropriately
// tuned": with lo = ⌊d/2⌋ low corner bits,
//
//   - P((w,p)) = the 2^(d−lo) nodes (a‖w_lo, p): same low corner bits,
//     same cycle position, every high corner half;
//   - Q((u,q)) = the d·2^lo nodes (u_hi‖b, j): same high corner half,
//     every low half, every cycle position.
//
// The intersection is exactly one node, (u_hi‖w_lo, p). With n = d·2^d
// this costs m(n) = 2^(d−lo) + d·2^lo = O(√(n·log n)) and needs caches of
// size 2^(d−lo) = O(√(n/log n)), matching the paper's claim.
func CCCSplit(c *topology.CCC) rendezvous.Strategy {
	lo := c.D / 2
	hi := c.D - lo
	lowMask := (1 << lo) - 1
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("ccc-d%d", c.D),
		Universe:     c.G.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			w, p := c.CornerPos(i)
			out := make([]graph.NodeID, 0, 1<<hi)
			for a := 0; a < 1<<hi; a++ {
				out = append(out, c.At(a<<lo|w&lowMask, p))
			}
			return out
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			u, _ := c.CornerPos(j)
			uhi := u &^ lowMask
			out := make([]graph.NodeID, 0, c.D<<lo)
			for b := 0; b <= lowMask; b++ {
				for pos := 0; pos < c.D; pos++ {
					out = append(out, c.At(uhi|b, pos))
				}
			}
			return out
		},
	}
}
