package strategy

import (
	"fmt"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// Replicated derives r replica families from one base strategy — the
// paper's answer to rendezvous fragility (§2.4, §5): instead of trusting
// a single P(i) ∩ Q(j) meeting point, a server posts under every family
// and a client falls through the families in order, so the match
// survives as long as any replica's rendezvous nodes are alive.
//
// Replica k is the base strategy translated by ⌊k·n/r⌋ node positions
// (rendezvous.Shift), which keeps each family a valid strategy (the
// intersection just translates with it) while making the families
// maximally disjoint: replica k's rendezvous node for a pair is the base
// rendezvous node shifted by ⌊k·n/r⌋, so no single node — and, when the
// node space is partitioned into contiguous ranges no wider than n/r, no
// single range — can be the meeting point of two different replicas for
// the same pair.
//
// Replicated itself is pure geometry. The serving layer
// (internal/cluster) decides how to use it: servers post to the union of
// all replicas' posting sets, and locates flood replica 0's query set
// first, falling through to replica 1, 2, … only when no rendezvous node
// of the previous family answered — each attempt charged its own flood,
// the paper-honest price of redundancy.
type Replicated struct {
	name string
	reps []rendezvous.Strategy // reps[0] is the (precomputed) base

	union [][]graph.NodeID // ∪ₖ Pₖ(i), per node, sorted

	// member[k] is a bitset over (server node i, target v) pairs:
	// bit i·n+v set iff v ∈ Pₖ(i). It answers the family-scoping
	// question of the serving layer — "is v a family-k rendezvous for a
	// posting that originated at i?" — in one load, so every read on a
	// locate flood can be scoped to its family.
	member [][]uint64
}

// NewReplicated builds the r-fold replication of base. r must be at
// least 1 and at most the universe size (shifting by less than one node
// would collapse two replicas onto the same family).
func NewReplicated(base rendezvous.Strategy, r int) (*Replicated, error) {
	n := base.N()
	if n <= 0 {
		return nil, fmt.Errorf("strategy: replicated needs a non-empty universe, got %d", n)
	}
	if r < 1 || r > n {
		return nil, fmt.Errorf("strategy: replication factor %d out of [1,%d]", r, n)
	}
	base = rendezvous.Precompute(base)
	rp := &Replicated{
		name:   fmt.Sprintf("replicated-%d(%s)", r, base.Name()),
		reps:   make([]rendezvous.Strategy, r),
		union:  make([][]graph.NodeID, n),
		member: make([][]uint64, r),
	}
	rp.reps[0] = base
	for k := 1; k < r; k++ {
		rp.reps[k] = rendezvous.Precompute(rendezvous.Shift(base, k*n/r))
	}
	words := (n*n + 63) / 64
	for k := 0; k < r; k++ {
		rp.member[k] = make([]uint64, words)
		for i := 0; i < n; i++ {
			for _, v := range rp.reps[k].Post(graph.NodeID(i)) {
				bit := i*n + int(v)
				rp.member[k][bit>>6] |= 1 << (bit & 63)
			}
		}
	}
	for v := 0; v < n; v++ {
		id := graph.NodeID(v)
		u := base.Post(id)
		for k := 1; k < r; k++ {
			u = unionSets(u, rp.reps[k].Post(id))
		}
		rp.union[v] = u
	}
	return rp, nil
}

// InPost reports whether v belongs to family k's posting set of a
// server at node i — the family-scoping predicate of replicated reads:
// a family-k query flood only accepts an entry cached at v when the
// entry's origin posted it there *as part of family k*, which is what
// keeps the r families independent rendezvous channels even where their
// node sets overlap.
func (rp *Replicated) InPost(k int, i, v graph.NodeID) bool {
	n := rp.N()
	if k < 0 || k >= len(rp.member) || int(i) < 0 || int(i) >= n || int(v) < 0 || int(v) >= n {
		return false
	}
	bit := int(i)*n + int(v)
	return rp.member[k][bit>>6]&(1<<(bit&63)) != 0
}

// Name identifies the replicated family in reports.
func (rp *Replicated) Name() string { return rp.name }

// N returns the universe size.
func (rp *Replicated) N() int { return rp.reps[0].N() }

// Replicas returns the replication factor r.
func (rp *Replicated) Replicas() int { return len(rp.reps) }

// Replica returns family k (0 ≤ k < r); replica 0 is the base strategy.
// The returned strategies are precomputed and safe for concurrent use.
func (rp *Replicated) Replica(k int) rendezvous.Strategy {
	if k < 0 || k >= len(rp.reps) {
		return nil
	}
	return rp.reps[k]
}

// Base returns replica 0, the untranslated base strategy.
func (rp *Replicated) Base() rendezvous.Strategy { return rp.reps[0] }

// UnionPost returns ∪ₖ Pₖ(i), the set a server at node i posts to so
// every replica's query set can rendezvous with it. The returned slice
// is shared; callers must not mutate it.
func (rp *Replicated) UnionPost(i graph.NodeID) []graph.NodeID {
	if int(i) < 0 || int(i) >= len(rp.union) {
		return nil
	}
	return rp.union[i]
}
