package strategy

import (
	"fmt"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// TreePath returns the §3.6 strategy for tree-shaped networks such as
// UUCPnet: "all services advertise at the path leading to the root of the
// tree, and similarly the clients request services on the path to the
// root". Every pair meets at least at the root (and earlier at their
// lowest common ancestor), so m(n) = O(l) for an l-level tree, while the
// cache of a node must scale with the size of the subtree it roots.
func TreePath(t *graph.Tree) rendezvous.Strategy {
	path := func(v graph.NodeID) []graph.NodeID { return t.PathToRoot(v) }
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("tree-path-root%d", t.Root()),
		Universe:     t.N(),
		PostFunc:     path,
		QueryFunc:    path,
	}
}
