package strategy

import (
	"testing"
	"testing/quick"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// Property tests for the §3 strategies: the invariants the paper's
// correctness rests on, checked over randomized inputs.

func TestPropertyManhattanSingletonCrossing(t *testing.T) {
	gr, err := topology.NewGrid(7, 9)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	s := Manhattan(gr)
	f := func(iRaw, jRaw uint16) bool {
		i := graph.NodeID(int(iRaw) % gr.G.N())
		j := graph.NodeID(int(jRaw) % gr.G.N())
		meet := rendezvous.Intersect(s.Post(i), s.Query(j))
		if len(meet) != 1 {
			return false
		}
		ri, _ := gr.RowCol(i)
		_, cj := gr.RowCol(j)
		return meet[0] == gr.At(ri, cj)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMeshSplitSingleton(t *testing.T) {
	me, err := topology.NewMesh(3, 4, 5)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	for _, axes := range [][]int{{0}, {1}, {2}, {0, 1}, {0, 2}, {1, 2}} {
		s, err := MeshSplit(me, axes)
		if err != nil {
			t.Fatalf("MeshSplit(%v): %v", axes, err)
		}
		f := func(iRaw, jRaw uint16) bool {
			i := graph.NodeID(int(iRaw) % me.G.N())
			j := graph.NodeID(int(jRaw) % me.G.N())
			meet := rendezvous.Intersect(s.Post(i), s.Query(j))
			return len(meet) == 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
			t.Fatalf("axes %v: %v", axes, err)
		}
	}
}

func TestPropertyCCCSingleton(t *testing.T) {
	c, err := topology.NewCCC(5)
	if err != nil {
		t.Fatalf("NewCCC: %v", err)
	}
	s := CCCSplit(c)
	f := func(iRaw, jRaw uint16) bool {
		i := graph.NodeID(int(iRaw) % c.G.N())
		j := graph.NodeID(int(jRaw) % c.G.N())
		return len(rendezvous.Intersect(s.Post(i), s.Query(j))) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyPlaneLinesAlwaysMeet(t *testing.T) {
	p, err := topology.NewPlane(7)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	s := PlaneLines(p)
	f := func(iRaw, jRaw uint16) bool {
		i := graph.NodeID(int(iRaw) % p.N())
		j := graph.NodeID(int(jRaw) % p.N())
		meet := rendezvous.Intersect(s.Post(i), s.Query(j))
		// Distinct lines meet exactly once; identical line choices give
		// the whole line (k+1 nodes). Either way, never empty and never
		// an in-between size.
		return len(meet) == 1 || len(meet) == p.K+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyHierarchyIntersects(t *testing.T) {
	for _, fanouts := range [][]int{{3, 3}, {4, 4, 4}, {2, 3, 4}, {5, 2}} {
		h, err := topology.NewHierarchy(fanouts...)
		if err != nil {
			t.Fatalf("NewHierarchy(%v): %v", fanouts, err)
		}
		s := HierarchyGateways(h)
		f := func(iRaw, jRaw uint16) bool {
			i := graph.NodeID(int(iRaw) % h.N())
			j := graph.NodeID(int(jRaw) % h.N())
			return len(rendezvous.Intersect(s.Post(i), s.Query(j))) >= 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
			t.Fatalf("fanouts %v: %v", fanouts, err)
		}
	}
}

func TestPropertyDecompositionIntersects(t *testing.T) {
	f := func(seed uint64) bool {
		g, err := topology.RandomConnected(40, 20, seed)
		if err != nil {
			return false
		}
		d, err := NewDecomposition(g)
		if err != nil {
			return false
		}
		s := d.Strategy()
		// Check a deterministic sample of pairs per graph.
		for i := 0; i < 40; i += 7 {
			for j := 3; j < 40; j += 9 {
				if len(rendezvous.Intersect(s.Post(graph.NodeID(i)), s.Query(graph.NodeID(j)))) == 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTreePathMeetsAtLCA(t *testing.T) {
	tn, err := topology.NewProfileTree(func(level int) int { return 1 + level%3 }, 5)
	if err != nil {
		t.Fatalf("NewProfileTree: %v", err)
	}
	st, err := tn.SpanningTree()
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	s := TreePath(st)
	f := func(iRaw, jRaw uint16) bool {
		i := graph.NodeID(int(iRaw) % tn.G.N())
		j := graph.NodeID(int(jRaw) % tn.G.N())
		meet := rendezvous.Intersect(s.Post(i), s.Query(j))
		if len(meet) == 0 {
			return false
		}
		// The intersection of two root paths is the LCA-to-root segment:
		// its size equals depth(root path overlap) = depth(LCA)+1.
		deepest := meet[0]
		for _, v := range meet {
			if st.Depth(v) > st.Depth(deepest) {
				deepest = v
			}
		}
		// The deepest common node is an ancestor of both.
		return isAncestor(st, deepest, i) && isAncestor(st, deepest, j) &&
			len(meet) == st.Depth(deepest)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyReplicatedFamilies pins the geometry Replicated's fault
// tolerance — and the Byzantine voting layer's r ≥ 2f+1 argument —
// rests on, over an (n, r) sweep: every family stays a valid
// singleton-rendezvous strategy; a pair's r meeting points are the base
// meet translated by exactly ⌊k·n/r⌋, hence r distinct nodes no
// contiguous range narrower than ⌊n/r⌋ can hold two of; the membership
// bitset answers exactly v ∈ Pₖ(i); the posting union is the sorted
// duplicate-free union; and within every family, every node of the
// universe serves as some pair's meeting point (no idle node, no hot
// corner).
func TestPropertyReplicatedFamilies(t *testing.T) {
	for _, n := range []int{16, 36, 64} {
		base := rendezvous.Checkerboard(n)
		for r := 1; r <= 8 && r <= n; r++ {
			rp, err := NewReplicated(base, r)
			if err != nil {
				t.Fatalf("NewReplicated(n=%d, r=%d): %v", n, r, err)
			}
			covered := make([][]bool, r)
			for k := range covered {
				covered[k] = make([]bool, n)
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					var meet0 graph.NodeID
					for k := 0; k < r; k++ {
						meet := rendezvous.Intersect(
							rp.Replica(k).Post(graph.NodeID(i)), rp.Replica(k).Query(graph.NodeID(j)))
						if len(meet) != 1 {
							t.Fatalf("n=%d r=%d family %d pair (%d,%d): %d meeting points, want 1", n, r, k, i, j, len(meet))
						}
						if k == 0 {
							meet0 = meet[0]
						} else if want := graph.NodeID((int(meet0) + k*n/r) % n); meet[0] != want {
							t.Fatalf("n=%d r=%d family %d pair (%d,%d): meet %d, want base meet %d shifted to %d",
								n, r, k, i, j, meet[0], meet0, want)
						}
						covered[k][meet[0]] = true
					}
				}
			}
			for k := 0; k < r; k++ {
				for v := 0; v < n; v++ {
					if !covered[k][v] {
						t.Fatalf("n=%d r=%d family %d: node %d is never a meeting point", n, r, k, v)
					}
				}
			}
			// The membership bitset and the posting union agree with the
			// per-family posting sets they summarize.
			for i := 0; i < n; i++ {
				inAny := make(map[graph.NodeID]bool)
				for k := 0; k < r; k++ {
					inFam := make(map[graph.NodeID]bool)
					for _, v := range rp.Replica(k).Post(graph.NodeID(i)) {
						inFam[v], inAny[v] = true, true
					}
					for v := 0; v < n; v++ {
						if got := rp.InPost(k, graph.NodeID(i), graph.NodeID(v)); got != inFam[graph.NodeID(v)] {
							t.Fatalf("n=%d r=%d: InPost(%d, %d, %d) = %v, want %v", n, r, k, i, v, got, !got)
						}
					}
				}
				u := rp.UnionPost(graph.NodeID(i))
				if len(u) != len(inAny) {
					t.Fatalf("n=%d r=%d: UnionPost(%d) has %d nodes, want %d distinct", n, r, i, len(u), len(inAny))
				}
				for x := range u {
					if !inAny[u[x]] || (x > 0 && u[x] <= u[x-1]) {
						t.Fatalf("n=%d r=%d: UnionPost(%d) not a sorted union: %v", n, r, i, u)
					}
				}
			}
			// Out-of-range probes answer false, never panic.
			if rp.InPost(-1, 0, 0) || rp.InPost(r, 0, 0) ||
				rp.InPost(0, -1, 0) || rp.InPost(0, 0, graph.NodeID(n)) {
				t.Fatalf("n=%d r=%d: out-of-range InPost returned true", n, r)
			}
		}
	}
}

func isAncestor(t *graph.Tree, anc, v graph.NodeID) bool {
	for at := v; at != -1; at = t.Parent(at) {
		if at == anc {
			return true
		}
	}
	return false
}

// TestPropertyHypercubeSplitAllK checks singleton rendezvous for every
// split point k, not just the d/2 midpoint.
func TestPropertyHypercubeSplitAllK(t *testing.T) {
	h, err := topology.NewHypercube(7)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	for k := 0; k <= 7; k++ {
		s, err := HypercubeSplit(h, k)
		if err != nil {
			t.Fatalf("HypercubeSplit(%d): %v", k, err)
		}
		f := func(iRaw, jRaw uint8) bool {
			i := graph.NodeID(int(iRaw) % h.G.N())
			j := graph.NodeID(int(jRaw) % h.G.N())
			return len(rendezvous.Intersect(s.Post(i), s.Query(j))) == 1
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
}
