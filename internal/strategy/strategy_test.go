package strategy

import (
	"math"
	"testing"
	"testing/quick"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

func buildAndVerify(t *testing.T, s rendezvous.Strategy) *rendezvous.Matrix {
	t.Helper()
	m, err := rendezvous.Build(s)
	if err != nil {
		t.Fatalf("Build(%s): %v", s.Name(), err)
	}
	if err := m.Verify(); err != nil {
		t.Fatalf("Verify(%s): %v", s.Name(), err)
	}
	return m
}

func TestManhattanSquare(t *testing.T) {
	gr, err := topology.NewGrid(3, 3)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := buildAndVerify(t, Manhattan(gr))
	if !m.IsOptimalShotgun() {
		t.Fatal("Manhattan on a grid should give singleton rendezvous")
	}
	// The paper's 9-node matrix: entry (i,j) = row(i)·3 + col(j).
	for i := 0; i < 9; i++ {
		for j := 0; j < 9; j++ {
			ri, _ := gr.RowCol(graph.NodeID(i))
			_, cj := gr.RowCol(graph.NodeID(j))
			want := gr.At(ri, cj)
			e := m.Entry(graph.NodeID(i), graph.NodeID(j))
			if len(e) != 1 || e[0] != want {
				t.Fatalf("entry(%d,%d) = %v, want {%d}", i, j, e, want)
			}
		}
	}
	// m(n) = p + q = 6 = 2√n.
	if got := m.AvgCost(); got != 6 {
		t.Fatalf("AvgCost = %f, want 6", got)
	}
	// Truly distributed: k_v = n for all v.
	for v, kv := range m.Multiplicities() {
		if kv != 9 {
			t.Fatalf("k[%d] = %d, want 9", v, kv)
		}
	}
}

func TestManhattanRectangular(t *testing.T) {
	gr, err := topology.NewGrid(2, 6)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	m := buildAndVerify(t, Manhattan(gr))
	// m(n) = p + q = 8.
	if got := m.AvgCost(); got != 8 {
		t.Fatalf("AvgCost = %f, want 8", got)
	}
}

func TestManhattanOnTorus(t *testing.T) {
	to, err := topology.NewTorus(4, 4)
	if err != nil {
		t.Fatalf("NewTorus: %v", err)
	}
	m := buildAndVerify(t, Manhattan(to))
	if got := m.AvgCost(); got != 8 {
		t.Fatalf("AvgCost = %f, want 8", got)
	}
}

func TestMeshSplit3D(t *testing.T) {
	me, err := topology.NewMesh(3, 3, 3)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	s, err := MeshSplit(me, []int{0, 1})
	if err != nil {
		t.Fatalf("MeshSplit: %v", err)
	}
	m := buildAndVerify(t, s)
	if !m.IsOptimalShotgun() {
		t.Fatal("mesh split should give singleton rendezvous")
	}
	// #P = 9 (varies axes 0,1), #Q = 3 (varies axis 2): m = 12 =
	// n^(2/3) + n^(1/3).
	if got := m.AvgCost(); got != 12 {
		t.Fatalf("AvgCost = %f, want 12", got)
	}
	// The rendezvous of server s and client c takes c's coordinates on
	// the post axes and s's on the rest.
	sv, _ := me.At(0, 1, 2)
	cl, _ := me.At(2, 0, 1)
	want, _ := me.At(2, 0, 2)
	e := m.Entry(sv, cl)
	if len(e) != 1 || e[0] != want {
		t.Fatalf("entry = %v, want {%d}", e, want)
	}
}

func TestMeshSplitErrors(t *testing.T) {
	me, err := topology.NewMesh(2, 2)
	if err != nil {
		t.Fatalf("NewMesh: %v", err)
	}
	if _, err := MeshSplit(me, nil); err == nil {
		t.Fatal("empty post axes should fail")
	}
	if _, err := MeshSplit(me, []int{0, 1}); err == nil {
		t.Fatal("all axes as post should fail")
	}
	if _, err := MeshSplit(me, []int{2}); err == nil {
		t.Fatal("out-of-range axis should fail")
	}
	if _, err := MeshSplit(me, []int{0, 0}); err == nil {
		t.Fatal("duplicate axis should fail")
	}
}

func TestHalfCubeMatchesPaper(t *testing.T) {
	h, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	s, err := HalfCube(h)
	if err != nil {
		t.Fatalf("HalfCube: %v", err)
	}
	m := buildAndVerify(t, s)
	if !m.IsOptimalShotgun() {
		t.Fatal("half-cube split should give singleton rendezvous")
	}
	// m(n) = 2·2^(d/2) = 2√n = 16 for d = 6.
	if got := m.AvgCost(); got != 16 {
		t.Fatalf("AvgCost = %f, want 16", got)
	}
	// Example 6 is the d = 3, k = 1 instance with the server/client roles
	// of the split swapped (the server keeps its high bit, the client its
	// low bits), i.e. the transpose of our §3.2 convention.
	h3, err := topology.NewHypercube(3)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	s3, err := HypercubeSplit(h3, 1)
	if err != nil {
		t.Fatalf("HypercubeSplit: %v", err)
	}
	m3 := buildAndVerify(t, s3)
	ex, err := rendezvous.Build(rendezvous.CubeExample())
	if err != nil {
		t.Fatalf("Build example: %v", err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			a := m3.Entry(graph.NodeID(j), graph.NodeID(i))
			b := ex.Entry(graph.NodeID(i), graph.NodeID(j))
			if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
				t.Fatalf("entry(%d,%d): split transpose %v vs example %v", i, j, a, b)
			}
		}
	}
}

func TestHypercubeSplitTradeoff(t *testing.T) {
	h, err := topology.NewHypercube(6)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	for k := 0; k <= 6; k++ {
		s, err := HypercubeSplit(h, k)
		if err != nil {
			t.Fatalf("HypercubeSplit(%d): %v", k, err)
		}
		m := buildAndVerify(t, s)
		want := float64(int(1)<<k + int(1)<<(6-k))
		if got := m.AvgCost(); got != want {
			t.Fatalf("k=%d: AvgCost = %f, want %f", k, got, want)
		}
	}
	if _, err := HypercubeSplit(h, 7); err == nil {
		t.Fatal("split beyond d should fail")
	}
}

func TestHypercubeSingletonProperty(t *testing.T) {
	h, err := topology.NewHypercube(8)
	if err != nil {
		t.Fatalf("NewHypercube: %v", err)
	}
	s, err := HalfCube(h)
	if err != nil {
		t.Fatalf("HalfCube: %v", err)
	}
	f := func(iRaw, jRaw uint8) bool {
		i := graph.NodeID(iRaw)
		j := graph.NodeID(jRaw)
		meet := rendezvous.Intersect(s.Post(i), s.Query(j))
		if len(meet) != 1 {
			return false
		}
		want := graph.NodeID(int(j)&0xF0 | int(i)&0x0F)
		return meet[0] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCCCSplit(t *testing.T) {
	c, err := topology.NewCCC(4)
	if err != nil {
		t.Fatalf("NewCCC: %v", err)
	}
	s := CCCSplit(c)
	m := buildAndVerify(t, s)
	if !m.IsOptimalShotgun() {
		t.Fatal("CCC split should give singleton rendezvous")
	}
	// d=4: lo=2, hi=2: #P = 2^2 = 4, #Q = 4·2^2 = 16, m = 20.
	if got := m.AvgCost(); got != 20 {
		t.Fatalf("AvgCost = %f, want 20", got)
	}
}

func TestCCCSplitScaling(t *testing.T) {
	// m(n) should scale like √(n·log n): check the exact closed form
	// 2^(d−⌊d/2⌋) + d·2^(⌊d/2⌋) for several d.
	for _, d := range []int{3, 4, 5, 6} {
		c, err := topology.NewCCC(d)
		if err != nil {
			t.Fatalf("NewCCC(%d): %v", d, err)
		}
		s := CCCSplit(c)
		m, err := rendezvous.Build(s)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		lo := d / 2
		want := float64(int(1)<<(d-lo) + d<<lo)
		if got := m.AvgCost(); got != want {
			t.Fatalf("d=%d: AvgCost = %f, want %f", d, got, want)
		}
		ratio := m.AvgCost() / math.Sqrt(float64(c.G.N())*math.Log2(float64(c.G.N())))
		if ratio < 0.4 || ratio > 3 {
			t.Fatalf("d=%d: cost/√(n·log n) = %f outside [0.4,3]", d, ratio)
		}
	}
}

func TestPlaneLines(t *testing.T) {
	p, err := topology.NewPlane(3)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	m := buildAndVerify(t, PlaneLines(p))
	// Every instance costs exactly 2(k+1) = 8 messages.
	if m.MinCost() != 8 || m.MaxCost() != 8 {
		t.Fatalf("cost range [%d,%d], want [8,8]", m.MinCost(), m.MaxCost())
	}
	// m(n) = 2(k+1) ≈ 2√n.
	if got, bound := m.AvgCost(), 2*math.Sqrt(float64(p.N())); got > bound+2 {
		t.Fatalf("AvgCost = %f, want ≈ %f", got, bound)
	}
}

func TestPlaneLinesAt(t *testing.T) {
	p, err := topology.NewPlane(2)
	if err != nil {
		t.Fatalf("NewPlane: %v", err)
	}
	for post := 0; post <= p.K; post++ {
		for query := 0; query <= p.K; query++ {
			s, err := PlaneLinesAt(p, post, query)
			if err != nil {
				t.Fatalf("PlaneLinesAt(%d,%d): %v", post, query, err)
			}
			buildAndVerify(t, s)
		}
	}
	if _, err := PlaneLinesAt(p, p.K+1, 0); err == nil {
		t.Fatal("out-of-range line choice should fail")
	}
}

func TestHierarchyGateways(t *testing.T) {
	h, err := topology.NewHierarchy(4, 4)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	m := buildAndVerify(t, HierarchyGateways(h))
	// Cost per side ≈ Σ √n_i = 2 + 2 = 4; m(n) ≈ 8 (minus overlaps).
	if got := m.AvgCost(); got < 4 || got > 8.5 {
		t.Fatalf("AvgCost = %f, want ≈ 2·Σ√n_i = 8", got)
	}
}

func TestHierarchyGatewaysThreeLevels(t *testing.T) {
	h, err := topology.NewHierarchy(4, 4, 4)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	m := buildAndVerify(t, HierarchyGateways(h))
	// Upper bound 2·3·√4 = 12.
	if got := m.AvgCost(); got > 12.5 {
		t.Fatalf("AvgCost = %f, want ≤ 12", got)
	}
}

func TestHierarchyLocalLevel(t *testing.T) {
	h, err := topology.NewHierarchy(3, 3)
	if err != nil {
		t.Fatalf("NewHierarchy: %v", err)
	}
	if lv := HierarchyLocalLevel(h, 0, 1); lv != 1 {
		t.Fatalf("local level = %d, want 1", lv)
	}
	if lv := HierarchyLocalLevel(h, 0, 8); lv != 2 {
		t.Fatalf("local level = %d, want 2", lv)
	}
}

func TestTreePath(t *testing.T) {
	tn, err := topology.NewBalancedTree(3, 3)
	if err != nil {
		t.Fatalf("NewBalancedTree: %v", err)
	}
	st, err := tn.SpanningTree()
	if err != nil {
		t.Fatalf("SpanningTree: %v", err)
	}
	m := buildAndVerify(t, TreePath(st))
	// Worst pair: two deepest leaves, cost 2(l+1) = 8; best: root-root 2.
	if m.MaxCost() != 8 {
		t.Fatalf("MaxCost = %d, want 8", m.MaxCost())
	}
	if m.MinCost() != 2 {
		t.Fatalf("MinCost = %d, want 2", m.MinCost())
	}
	// Root multiplicity dominates: it is in every pair's rendezvous set.
	k := m.Multiplicities()
	if k[st.Root()] != tn.G.N()*tn.G.N() {
		t.Fatalf("root multiplicity = %d, want n²", k[st.Root()])
	}
}

func TestDecompositionStrategy(t *testing.T) {
	g, err := topology.RandomConnected(49, 30, 11)
	if err != nil {
		t.Fatalf("RandomConnected: %v", err)
	}
	d, err := NewDecomposition(g)
	if err != nil {
		t.Fatalf("NewDecomposition: %v", err)
	}
	m := buildAndVerify(t, d.Strategy())
	// Client side ≤ 2√n−1 (a part); server side = #parts.
	maxQ := 0
	for j := 0; j < g.N(); j++ {
		if q := m.QuerySize(graph.NodeID(j)); q > maxQ {
			maxQ = q
		}
	}
	if maxQ > 2*7-1 {
		t.Fatalf("max #Q = %d, want ≤ 13", maxQ)
	}
	for i := 0; i < g.N(); i++ {
		if p := m.PostSize(graph.NodeID(i)); p != d.Partition().NumParts() {
			t.Fatalf("#P(%d) = %d, want %d parts", i, p, d.Partition().NumParts())
		}
	}
}

func TestDecompositionOnGridAndStar(t *testing.T) {
	gr, err := topology.NewGrid(6, 6)
	if err != nil {
		t.Fatalf("NewGrid: %v", err)
	}
	d, err := NewDecomposition(gr.G)
	if err != nil {
		t.Fatalf("NewDecomposition: %v", err)
	}
	buildAndVerify(t, d.Strategy())

	st, err := topology.Star(20)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	ds, err := NewDecomposition(st)
	if err != nil {
		t.Fatalf("NewDecomposition: %v", err)
	}
	buildAndVerify(t, ds.Strategy())
}

func TestDecompositionDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	if _, err := NewDecomposition(g); err == nil {
		t.Fatal("disconnected graph should fail")
	}
}

func TestOptimalGridSplit(t *testing.T) {
	// α = 1 on 36 nodes: best is 6×6, cost 12.
	p, q, cost := OptimalGridSplit(36, 1)
	if p != 6 || q != 6 || cost != 12 {
		t.Fatalf("split = %dx%d cost %f, want 6x6 cost 12", p, q, cost)
	}
	// α = 4: queries dominate; optimum shifts to fewer rows:
	// p* = √(n/α) = 3, q* = 12, cost = 12 + 4·3 = 24 = 2√(αn).
	p, q, cost = OptimalGridSplit(36, 4)
	if p != 3 || q != 12 {
		t.Fatalf("split = %dx%d, want 3x12", p, q)
	}
	if want := 2 * math.Sqrt(4*36.0); cost != want {
		t.Fatalf("cost = %f, want %f", cost, want)
	}
	// α < 1: posts dominate; optimum shifts the other way.
	p, _, _ = OptimalGridSplit(36, 0.25)
	if p != 12 {
		t.Fatalf("rows = %d, want 12", p)
	}
}
