package strategy

import (
	"fmt"
	"sort"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// Epoch is one membership snapshot of an elastic cluster: a
// monotonically increasing sequence number, the count of active member
// nodes, and the rendezvous strategy serving them — optionally r-fold
// replicated (see Replicated). The paper's hash-locate discussion notes
// that the rendezvous function must be recomputed when the network
// changes; Epoch is that recomputation made explicit, so the serving
// layer can hold two epochs at once and migrate between them without a
// global restart (the dual-epoch locate of internal/cluster).
//
// An epoch lives inside a fixed physical universe of Universe() nodes
// (the graph the cluster was built over); only the first Active() of
// them are members. Posting and query sets of inactive nodes are empty:
// a node outside the membership hosts nothing and asks nothing.
type Epoch struct {
	seq      uint64
	universe int
	base     rendezvous.Strategy // precomputed, universe = Active()
	rp       *Replicated         // non-nil when replicas > 1
	member   []uint64            // r = 1: bit i·active+v set iff v ∈ P(i)
}

// NewEpoch builds epoch seq over a physical universe of universe nodes
// with the first base.N() of them active, serving base replicated
// replicas-fold (1 = unreplicated). Every posting and query set of base
// must stay inside the active range — an epoch must not place
// rendezvous state on nodes outside its own membership.
func NewEpoch(seq uint64, universe int, base rendezvous.Strategy, replicas int) (*Epoch, error) {
	active := base.N()
	if active <= 0 {
		return nil, fmt.Errorf("strategy: epoch %d needs a non-empty active set, got %d", seq, active)
	}
	if universe < active {
		return nil, fmt.Errorf("strategy: epoch %d active %d exceeds universe %d", seq, active, universe)
	}
	if replicas < 1 || replicas > active {
		return nil, fmt.Errorf("strategy: epoch %d replication factor %d out of [1,%d]", seq, replicas, active)
	}
	base = rendezvous.Precompute(base)
	for i := 0; i < active; i++ {
		id := graph.NodeID(i)
		for _, set := range [][]graph.NodeID{base.Post(id), base.Query(id)} {
			for _, v := range set {
				if int(v) < 0 || int(v) >= active {
					return nil, fmt.Errorf("strategy: epoch %d: node %d of %s's sets for %d outside active range [0,%d)",
						seq, v, base.Name(), i, active)
				}
			}
		}
	}
	ep := &Epoch{seq: seq, universe: universe, base: base}
	if replicas > 1 {
		rp, err := NewReplicated(base, replicas)
		if err != nil {
			return nil, err
		}
		ep.rp = rp
	} else {
		words := (active*active + 63) / 64
		ep.member = make([]uint64, words)
		for i := 0; i < active; i++ {
			for _, v := range base.Post(graph.NodeID(i)) {
				bit := i*active + int(v)
				ep.member[bit>>6] |= 1 << (bit & 63)
			}
		}
	}
	return ep, nil
}

// Name identifies the epoch in reports.
func (ep *Epoch) Name() string {
	return fmt.Sprintf("epoch%d(%s,n=%d/%d,r=%d)", ep.seq, ep.base.Name(), ep.Active(), ep.universe, ep.Replicas())
}

// Seq returns the epoch sequence number.
func (ep *Epoch) Seq() uint64 { return ep.seq }

// Universe returns the fixed physical node-space size the epoch lives
// in.
func (ep *Epoch) Universe() int { return ep.universe }

// Active returns the member node count: nodes [0, Active()) belong to
// the epoch.
func (ep *Epoch) Active() int { return ep.base.N() }

// Replicas returns the replication factor r (1 = unreplicated).
func (ep *Epoch) Replicas() int {
	if ep.rp == nil {
		return 1
	}
	return ep.rp.Replicas()
}

// Base returns the precomputed base strategy (universe = Active()).
func (ep *Epoch) Base() rendezvous.Strategy { return ep.base }

// Replicated returns the replica-family geometry, nil when r = 1.
func (ep *Epoch) Replicated() *Replicated { return ep.rp }

// Contains reports whether node i is a member of the epoch.
func (ep *Epoch) Contains(i graph.NodeID) bool {
	return int(i) >= 0 && int(i) < ep.Active()
}

// PostSet returns the effective posting set of a server at node i under
// this epoch: the base strategy's P(i), or — when replicated — the
// union ∪ₖ Pₖ(i) every replica family rendezvouses through. Inactive
// nodes post nowhere (nil).
func (ep *Epoch) PostSet(i graph.NodeID) []graph.NodeID {
	if !ep.Contains(i) {
		return nil
	}
	if ep.rp != nil {
		return ep.rp.UnionPost(i)
	}
	return ep.base.Post(i)
}

// QuerySet returns replica family k's query set of a client at node j
// under this epoch. Inactive nodes (and out-of-range families) query
// nowhere (nil).
func (ep *Epoch) QuerySet(j graph.NodeID, family int) []graph.NodeID {
	if !ep.Contains(j) || family < 0 || family >= ep.Replicas() {
		return nil
	}
	if ep.rp != nil {
		return ep.rp.Replica(family).Query(j)
	}
	return ep.base.Query(j)
}

// InPost reports whether v belongs to family k's posting set of a
// server at node i — the family-scoping predicate of epoch-versioned
// reads: a family-k query flood of this epoch only accepts an entry
// cached at v when the entry's origin posts there as part of family k
// of this epoch, which is what keeps two live epochs (and their replica
// families) independent rendezvous channels during a migration.
func (ep *Epoch) InPost(k int, i, v graph.NodeID) bool {
	if ep.rp != nil {
		return ep.rp.InPost(k, i, v)
	}
	active := ep.Active()
	if k != 0 || !ep.Contains(i) || int(v) < 0 || int(v) >= active {
		return false
	}
	bit := int(i)*active + int(v)
	return ep.member[bit>>6]&(1<<(bit&63)) != 0
}

// Remap is the minimal-movement posting delta between two epochs of the
// same universe: for every node i it precomputes which rendezvous
// targets a server homed at i must newly post to (Added — present in
// the destination epoch's effective posting set but not the source's)
// and which of its old postings become garbage (Removed — present only
// in the source's). A server re-posting under the destination epoch
// sends postings to Added(i) only; the targets in both epochs already
// hold its posting, so nothing moves that does not have to.
type Remap struct {
	from, to *Epoch
	added    [][]graph.NodeID
	removed  [][]graph.NodeID
}

// NewRemap computes the posting delta for moving from epoch from to
// epoch to. Both epochs must share the same physical universe.
func NewRemap(from, to *Epoch) (*Remap, error) {
	if from == nil || to == nil {
		return nil, fmt.Errorf("strategy: remap needs two epochs")
	}
	if from.Universe() != to.Universe() {
		return nil, fmt.Errorf("strategy: remap across universes %d and %d", from.Universe(), to.Universe())
	}
	n := from.Universe()
	rm := &Remap{
		from:    from,
		to:      to,
		added:   make([][]graph.NodeID, n),
		removed: make([][]graph.NodeID, n),
	}
	for i := 0; i < n; i++ {
		id := graph.NodeID(i)
		rm.added[i], rm.removed[i] = setDiff(to.PostSet(id), from.PostSet(id))
	}
	return rm, nil
}

// setDiff returns (a \ b, b \ a) as fresh sorted slices.
func setDiff(a, b []graph.NodeID) (onlyA, onlyB []graph.NodeID) {
	inB := make(map[graph.NodeID]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	for _, v := range a {
		if inB[v] {
			delete(inB, v) // tolerate duplicates in a
		} else {
			onlyA = append(onlyA, v)
		}
	}
	for _, v := range b {
		if inB[v] {
			onlyB = append(onlyB, v)
			delete(inB, v)
		}
	}
	sort.Slice(onlyA, func(i, j int) bool { return onlyA[i] < onlyA[j] })
	sort.Slice(onlyB, func(i, j int) bool { return onlyB[i] < onlyB[j] })
	return onlyA, onlyB
}

// From returns the source epoch of the remap.
func (rm *Remap) From() *Epoch { return rm.from }

// To returns the destination epoch of the remap.
func (rm *Remap) To() *Epoch { return rm.to }

// Added returns the targets a server at node i must newly post to under
// the destination epoch. The returned slice is shared; callers must not
// mutate it.
func (rm *Remap) Added(i graph.NodeID) []graph.NodeID {
	if int(i) < 0 || int(i) >= len(rm.added) {
		return nil
	}
	return rm.added[i]
}

// Removed returns the targets whose postings from node i belong only to
// the source epoch — garbage once the source epoch retires. The
// returned slice is shared; callers must not mutate it.
func (rm *Remap) Removed(i graph.NodeID) []graph.NodeID {
	if int(i) < 0 || int(i) >= len(rm.removed) {
		return nil
	}
	return rm.removed[i]
}

// MovedPosts predicts the number of (port, rendezvous-node) postings a
// migration moves for servers homed at origins: Σ |Added(origin)|. The
// serving layer's measured migration counter must match this number
// exactly — the minimal-movement contract of the epoch transition.
func (rm *Remap) MovedPosts(origins []graph.NodeID) int {
	total := 0
	for _, o := range origins {
		total += len(rm.Added(o))
	}
	return total
}
