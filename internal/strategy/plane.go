package strategy

import (
	"fmt"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// PlaneLines returns the §3.4 strategy on a projective plane PG(2,k): a
// server posts its (port, address) to all nodes on a line incident on its
// host node, a client queries all nodes on a line incident on its own
// host node, and the common node of the two lines is the rendezvous node:
// m(n) = 2(k+1) ≈ 2√n with √n-size caches.
//
// The paper allows an arbitrary incident line; this implementation picks
// the first line through the server's node and the last line through the
// client's node, so distinct hosts almost always choose distinct lines
// (which meet in exactly one point). When both choices name the same
// line, the whole line is the rendezvous set — still correct, merely
// redundant.
func PlaneLines(p *topology.Plane) rendezvous.Strategy {
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("pg2-%d-lines", p.K),
		Universe:     p.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			line, err := p.LineThrough(i, 0)
			if err != nil {
				return nil
			}
			return line
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			line, err := p.LineThrough(j, p.K)
			if err != nil {
				return nil
			}
			return line
		},
	}
}

// PlaneLinesAt returns the plane strategy with explicit line choices,
// used by fault-tolerance experiments to steer around failed lines: the
// server uses its postLine-th incident line and the client its
// queryLine-th (both in [0, k]).
func PlaneLinesAt(p *topology.Plane, postLine, queryLine int) (rendezvous.Strategy, error) {
	if postLine < 0 || postLine > p.K || queryLine < 0 || queryLine > p.K {
		return nil, fmt.Errorf("strategy: line choices (%d,%d) out of [0,%d]", postLine, queryLine, p.K)
	}
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("pg2-%d-lines-%d-%d", p.K, postLine, queryLine),
		Universe:     p.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			line, err := p.LineThrough(i, postLine)
			if err != nil {
				return nil
			}
			return line
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			line, err := p.LineThrough(j, queryLine)
			if err != nil {
				return nil
			}
			return line
		},
	}, nil
}
