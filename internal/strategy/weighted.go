package strategy

import (
	"fmt"
	"math"
	"sort"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// PostHeavy returns the (M3′) post-heavy split on an n-node universe for
// services whose locates far outnumber their posts: the universe is cut
// into ⌈n/querySize⌉ consecutive blocks of at most querySize nodes, a
// client queries only its own block, and a server posts at every block's
// leading node. P(i) ∩ Q(j) always contains the leader of j's block, so
// the rendezvous property holds with #Q ≤ querySize and #P = ⌈n/q⌉ —
// the frequency-weighted corner of the p·q ≥ n trade-off, where query
// traffic is α times more frequent than posting and the optimum shifts
// to #Q ≈ √(n/α).
func PostHeavy(n, querySize int) (rendezvous.Strategy, error) {
	if n < 1 {
		return nil, fmt.Errorf("strategy: post-heavy needs n ≥ 1, got %d", n)
	}
	if querySize < 1 || querySize > n {
		return nil, fmt.Errorf("strategy: post-heavy query size %d out of [1,%d]", querySize, n)
	}
	leaders := make([]graph.NodeID, 0, (n+querySize-1)/querySize)
	for start := 0; start < n; start += querySize {
		leaders = append(leaders, graph.NodeID(start))
	}
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("post-heavy-%d-q%d", n, querySize),
		Universe:     n,
		PostFunc: func(graph.NodeID) []graph.NodeID {
			return leaders
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			start := (int(j) / querySize) * querySize
			end := start + querySize
			if end > n {
				end = n
			}
			out := make([]graph.NodeID, 0, end-start)
			for v := start; v < end; v++ {
				out = append(out, graph.NodeID(v))
			}
			return out
		},
	}, nil
}

// AlphaQuerySize returns the query-set size the (M3′) optimum prescribes
// when locates are alpha times more frequent than posts: q* ≈ √(n/α),
// clamped to [1, n].
func AlphaQuerySize(n int, alpha float64) int {
	if alpha <= 0 {
		alpha = 1
	}
	q := int(math.Round(math.Sqrt(float64(n) / alpha)))
	if q < 1 {
		q = 1
	}
	if q > n {
		q = n
	}
	return q
}

// Weighted pairs a balanced base strategy with a post-heavy hot split,
// realizing the paper's (M3′) frequency-weighted measure as a live
// serving policy: cold ports run the base strategy, observed-hot ports
// switch their queries to the (smaller) hot query sets while their
// servers post to the union of both posting sets, so rendezvous is
// guaranteed for every mix of hot and cold traffic during and after a
// reclassification.
//
// Weighted itself is pure geometry — which ports are currently hot is
// decided by the serving layer (internal/cluster) from its live
// port-popularity counters.
type Weighted struct {
	base rendezvous.Strategy
	hot  rendezvous.Strategy

	union [][]graph.NodeID // base post ∪ hot post, per node, sorted
}

// NewWeighted builds the weighted pairing of base and hot. Both
// strategies must share the same universe. The strategies are
// precomputed; the per-node union posting sets are materialized up
// front.
func NewWeighted(base, hot rendezvous.Strategy) (*Weighted, error) {
	if base.N() != hot.N() {
		return nil, fmt.Errorf("strategy: weighted universes differ: base %d, hot %d", base.N(), hot.N())
	}
	base = rendezvous.Precompute(base)
	hot = rendezvous.Precompute(hot)
	n := base.N()
	w := &Weighted{base: base, hot: hot, union: make([][]graph.NodeID, n)}
	for v := 0; v < n; v++ {
		w.union[v] = unionSets(base.Post(graph.NodeID(v)), hot.Post(graph.NodeID(v)))
	}
	return w, nil
}

// Name identifies the pairing in reports.
func (w *Weighted) Name() string {
	return fmt.Sprintf("weighted(%s|%s)", w.base.Name(), w.hot.Name())
}

// N returns the universe size.
func (w *Weighted) N() int { return w.base.N() }

// Base returns the balanced strategy cold ports run.
func (w *Weighted) Base() rendezvous.Strategy { return w.base }

// Hot returns the post-heavy split hot ports run.
func (w *Weighted) Hot() rendezvous.Strategy { return w.hot }

// UnionPost returns base-post(i) ∪ hot-post(i), the set a hot port's
// server posts to so both hot and cold query sets can rendezvous with
// it. The returned slice is shared; callers must not mutate it.
func (w *Weighted) UnionPost(i graph.NodeID) []graph.NodeID {
	if int(i) < 0 || int(i) >= len(w.union) {
		return nil
	}
	return w.union[i]
}

func unionSets(a, b []graph.NodeID) []graph.NodeID {
	seen := make(map[graph.NodeID]bool, len(a)+len(b))
	out := make([]graph.NodeID, 0, len(a)+len(b))
	for _, s := range [][]graph.NodeID{a, b} {
		for _, v := range s {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
