package strategy_test

import (
	"fmt"

	"matchmake/internal/strategy"
)

// When client queries are four times more frequent than server posts,
// the optimal Manhattan split shifts to fewer rows: p = sqrt(n/alpha).
func ExampleOptimalGridSplit() {
	p, q, cost := strategy.OptimalGridSplit(64, 4)
	fmt.Printf("split %dx%d, weighted cost %.0f\n", p, q, cost)
	// Output:
	// split 4x16, weighted cost 32
}
