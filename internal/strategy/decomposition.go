package strategy

import (
	"fmt"
	"math"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// Decomposition bundles the generic §3 method for arbitrary connected
// networks: divide the graph into O(√n) disjoint connected subgraphs of
// ≈√n nodes each (Erdős–Gerencsér–Máté), number the nodes in each
// subgraph 1..√n, and then
//
//   - Server's Algorithm: a server at the node labelled ℓ posts its
//     (port, address) to the node labelled ℓ in every subgraph —
//     O(n) message passes in the worst case, caches of size O(√n);
//   - Client's Algorithm: a client broadcasts its query inside the
//     subgraph where it resides — at most √n message passes.
//
// The intersection is never empty: the client's own subgraph contains a
// node labelled ℓ for every ℓ (undersized parts wrap the excess labels).
type Decomposition struct {
	g    *graph.Graph
	part *graph.Partition
}

// NewDecomposition partitions a connected graph with target part size
// ⌈√n⌉ and returns the bundle.
func NewDecomposition(g *graph.Graph) (*Decomposition, error) {
	target := int(math.Ceil(math.Sqrt(float64(g.N()))))
	if target < 1 {
		target = 1
	}
	part, err := graph.PartitionConnected(g, target)
	if err != nil {
		return nil, fmt.Errorf("strategy: decomposition: %w", err)
	}
	return &Decomposition{g: g, part: part}, nil
}

// Partition exposes the underlying partition (read-only).
func (d *Decomposition) Partition() *graph.Partition { return d.part }

// Strategy returns the P/Q pair over the decomposition.
func (d *Decomposition) Strategy() rendezvous.Strategy {
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("decomposition-%d", d.g.N()),
		Universe:     d.g.N(),
		PostFunc: func(i graph.NodeID) []graph.NodeID {
			label := d.part.Label(i)
			seen := make(map[graph.NodeID]bool, d.part.NumParts())
			out := make([]graph.NodeID, 0, d.part.NumParts())
			for p := 0; p < d.part.NumParts(); p++ {
				v, err := d.part.Labelled(p, label)
				if err != nil {
					continue
				}
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
			return out
		},
		QueryFunc: func(j graph.NodeID) []graph.NodeID {
			p := d.part.PartOf(j)
			if p < 0 {
				return nil
			}
			return append([]graph.NodeID(nil), d.part.Parts()[p]...)
		},
	}
}
