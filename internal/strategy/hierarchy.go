package strategy

import (
	"fmt"
	"math"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/topology"
)

// HierarchyGateways returns the §3.5 strategy on a hierarchical network:
// a server posts its (port, address) by selecting ≈√n_i gateways at each
// level i on the path from its host to the highest-level network; a
// client queries ≈√n_i gateways per level likewise. The per-level gateway
// subsets follow the truly distributed checkerboard over the cluster's
// n_i gateways — the server takes the "row block" of its sub-cluster
// digit, the client the "column block" — so at every level whose cluster
// contains both parties the two subsets intersect, and in particular the
// top level always matches: m(n) ≈ 2·Σᵢ √n_i.
func HierarchyGateways(h *topology.Hierarchy) rendezvous.Strategy {
	return rendezvous.Funcs{
		StrategyName: fmt.Sprintf("hierarchy-%v", h.Fanouts),
		Universe:     h.N(),
		PostFunc:     func(i graph.NodeID) []graph.NodeID { return hierarchySide(h, i, true) },
		QueryFunc:    func(j graph.NodeID) []graph.NodeID { return hierarchySide(h, j, false) },
	}
}

// hierarchySide collects the per-level gateway subset for one party.
func hierarchySide(h *topology.Hierarchy, v graph.NodeID, asServer bool) []graph.NodeID {
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	for level := 1; level <= h.Levels(); level++ {
		gws, err := h.Gateways(v, level)
		if err != nil {
			continue
		}
		ni := len(gws)
		b := int(math.Ceil(math.Sqrt(float64(ni))))
		digit := h.Digit(v, level)
		block := digit * b / ni
		for t := 0; t < b; t++ {
			var idx int
			if asServer {
				idx = (block*b + t) % ni // row block: consecutive
			} else {
				idx = (t*b + block) % ni // column block: strided
			}
			g := gws[idx]
			if !seen[g] {
				seen[g] = true
				out = append(out, g)
			}
		}
	}
	return out
}

// HierarchyLocalLevel returns the hierarchy level at which the posts of a
// server at s and the queries of a client at c first share a gateway —
// the level a locality-aware locate resolves at. It mirrors the §3.5
// observation that "most message passing … will be confined to a
// local-area network, and so on, up the network hierarchy".
func HierarchyLocalLevel(h *topology.Hierarchy, s, c graph.NodeID) int {
	return h.LCALevel(s, c)
}
