package strategy

import (
	"testing"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// TestReplicatedRendezvousProperty checks every replica family of a
// replicated checkerboard keeps the rendezvous property: for every
// (server, client) pair and every k, Pₖ(i) ∩ Qₖ(j) ≠ ∅.
func TestReplicatedRendezvousProperty(t *testing.T) {
	for _, n := range []int{9, 16, 36, 37} {
		rp, err := NewReplicated(rendezvous.Checkerboard(n), 3)
		if err != nil {
			t.Fatal(err)
		}
		if rp.Replicas() != 3 {
			t.Fatalf("Replicas() = %d, want 3", rp.Replicas())
		}
		for k := 0; k < rp.Replicas(); k++ {
			rep := rp.Replica(k)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					inter := rendezvous.Intersect(rep.Post(graph.NodeID(i)), rep.Query(graph.NodeID(j)))
					if len(inter) == 0 {
						t.Fatalf("n=%d replica %d: empty rendezvous for (%d,%d)", n, k, i, j)
					}
				}
			}
		}
	}
}

// TestReplicatedDisjointRendezvous checks the fault-tolerance point of
// replication on the checkerboard: the rendezvous sets of different
// replicas for the same pair never share a node, so a single crashed
// rendezvous node cannot take out two replicas of one pair at once.
func TestReplicatedDisjointRendezvous(t *testing.T) {
	n := 36
	rp, err := NewReplicated(rendezvous.Checkerboard(n), 2)
	if err != nil {
		t.Fatal(err)
	}
	r0, r1 := rp.Replica(0), rp.Replica(1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			a := rendezvous.Intersect(r0.Post(graph.NodeID(i)), r0.Query(graph.NodeID(j)))
			b := rendezvous.Intersect(r1.Post(graph.NodeID(i)), r1.Query(graph.NodeID(j)))
			if len(rendezvous.Intersect(a, b)) != 0 {
				t.Fatalf("pair (%d,%d): replica rendezvous sets overlap: %v and %v", i, j, a, b)
			}
		}
	}
}

// TestReplicatedUnionPost checks the union posting set covers every
// replica's posting set, so one posting multicast serves all families.
func TestReplicatedUnionPost(t *testing.T) {
	n := 25
	rp, err := NewReplicated(rendezvous.Checkerboard(n), 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		union := rp.UnionPost(graph.NodeID(i))
		in := make(map[graph.NodeID]bool, len(union))
		for _, v := range union {
			in[v] = true
		}
		for k := 0; k < rp.Replicas(); k++ {
			for _, v := range rp.Replica(k).Post(graph.NodeID(i)) {
				if !in[v] {
					t.Fatalf("node %d: replica %d posting target %d missing from union %v", i, k, v, union)
				}
			}
		}
	}
}

// TestReplicatedSingle checks r=1 degenerates to the base strategy.
func TestReplicatedSingle(t *testing.T) {
	base := rendezvous.Checkerboard(16)
	rp, err := NewReplicated(base, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		id := graph.NodeID(i)
		if got, want := rp.UnionPost(id), rp.Replica(0).Post(id); len(rendezvous.Intersect(got, want)) != len(want) || len(got) != len(want) {
			t.Fatalf("node %d: union %v != base post %v", i, got, want)
		}
	}
}

// TestReplicatedBounds rejects invalid replication factors.
func TestReplicatedBounds(t *testing.T) {
	if _, err := NewReplicated(rendezvous.Checkerboard(9), 0); err == nil {
		t.Fatal("r=0 accepted")
	}
	if _, err := NewReplicated(rendezvous.Checkerboard(9), 10); err == nil {
		t.Fatal("r>n accepted")
	}
}
