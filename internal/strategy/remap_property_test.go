package strategy

import (
	"testing"

	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
)

// TestRemapMinimalMovementProperty sweeps (n, r, grow/shrink)
// transitions and checks the minimal-movement contract against an
// independent recomputation of the posting-set difference:
//
//   - Added(i) is exactly to.PostSet(i) \ from.PostSet(i) and
//     Removed(i) exactly from.PostSet(i) \ to.PostSet(i), computed
//     here with plain set arithmetic rather than the Remap internals;
//   - MovedPosts(origins) is Σ |Added(origin)| — no hidden extra moves;
//   - no unmoved posting is ever re-posted: Added(i) never intersects
//     from.PostSet(i), so a target that holds a posting under both
//     epochs is not sent it again;
//   - a node whose effective posting set is unchanged moves nothing.
func TestRemapMinimalMovementProperty(t *testing.T) {
	type step struct{ fromN, toN int }
	transitions := []step{
		{16, 25}, // grow
		{25, 16}, // shrink
		{36, 64}, // grow, both perfect squares
		{64, 36}, // shrink
		{49, 49}, // no-op resize
		{20, 33}, // non-square sizes
	}
	for _, rFrom := range []int{1, 2, 3} {
		for _, rTo := range []int{1, 2, 3} {
			for _, tr := range transitions {
				universe := tr.fromN
				if tr.toN > universe {
					universe = tr.toN
				}
				from, err := NewEpoch(1, universe, rendezvous.Checkerboard(tr.fromN), rFrom)
				if err != nil {
					t.Fatalf("from epoch n=%d r=%d: %v", tr.fromN, rFrom, err)
				}
				to, err := NewEpoch(2, universe, rendezvous.Checkerboard(tr.toN), rTo)
				if err != nil {
					t.Fatalf("to epoch n=%d r=%d: %v", tr.toN, rTo, err)
				}
				rm, err := NewRemap(from, to)
				if err != nil {
					t.Fatalf("remap %d→%d: %v", tr.fromN, tr.toN, err)
				}
				var origins []graph.NodeID
				total := 0
				for i := 0; i < universe; i++ {
					id := graph.NodeID(i)
					origins = append(origins, id)
					fromSet := asSet(from.PostSet(id))
					toSet := asSet(to.PostSet(id))

					added := rm.Added(id)
					removed := rm.Removed(id)
					// Added = to \ from, Removed = from \ to, by
					// independent set arithmetic.
					for _, v := range added {
						if !toSet[v] || fromSet[v] {
							t.Fatalf("n=%d→%d r=%d→%d node %d: Added contains %d (in to=%v, in from=%v)",
								tr.fromN, tr.toN, rFrom, rTo, i, v, toSet[v], fromSet[v])
						}
					}
					for _, v := range removed {
						if !fromSet[v] || toSet[v] {
							t.Fatalf("n=%d→%d r=%d→%d node %d: Removed contains %d (in from=%v, in to=%v)",
								tr.fromN, tr.toN, rFrom, rTo, i, v, fromSet[v], toSet[v])
						}
					}
					wantAdded, wantRemoved := 0, 0
					for v := range toSet {
						if !fromSet[v] {
							wantAdded++
						}
					}
					for v := range fromSet {
						if !toSet[v] {
							wantRemoved++
						}
					}
					if len(added) != wantAdded || len(removed) != wantRemoved {
						t.Fatalf("n=%d→%d r=%d→%d node %d: |Added|=%d want %d, |Removed|=%d want %d",
							tr.fromN, tr.toN, rFrom, rTo, i, len(added), wantAdded, len(removed), wantRemoved)
					}
					// An unchanged posting family moves nothing.
					if wantAdded == 0 && wantRemoved == 0 && (len(added) != 0 || len(removed) != 0) {
						t.Fatalf("n=%d→%d r=%d→%d node %d: unchanged set moved %d/%d",
							tr.fromN, tr.toN, rFrom, rTo, i, len(added), len(removed))
					}
					total += wantAdded
				}
				if got := rm.MovedPosts(origins); got != total {
					t.Fatalf("n=%d→%d r=%d→%d: MovedPosts=%d, independent Σ|to\\from|=%d",
						tr.fromN, tr.toN, rFrom, rTo, got, total)
				}
			}
		}
	}
}

// asSet turns a posting set into a membership map.
func asSet(ids []graph.NodeID) map[graph.NodeID]bool {
	m := make(map[graph.NodeID]bool, len(ids))
	for _, v := range ids {
		m[v] = true
	}
	return m
}
