package cluster

import (
	"hash/maphash"
	"sync/atomic"

	"matchmake/internal/core"
)

// genShards is the size of every transport's generation index. Sharding
// by port hash keeps bumps and reads contention-free; a hash collision
// merely invalidates an unrelated port's hints early, which is safe.
const genShards = 256

// genIndex is the sharded hint-invalidation index both transports
// maintain: one generation counter per port-hash shard. Registrations,
// migrations and deregistrations bump the owning shard; crashes bump
// every shard (a crashed node may have hosted servers of any port).
// Cached address hints record the generation they were resolved under
// and are only probed while it still matches, so stale hints fail fast
// without spending a single message pass.
type genIndex struct {
	seed   maphash.Seed
	shards [genShards]atomic.Uint64
}

func newGenIndex() *genIndex {
	return &genIndex{seed: maphash.MakeSeed()}
}

func (g *genIndex) idx(port core.Port) int {
	var h maphash.Hash
	h.SetSeed(g.seed)
	h.WriteString(string(port))
	return int(h.Sum64() % genShards)
}

// gen returns port's current generation.
func (g *genIndex) gen(port core.Port) uint64 {
	return g.shards[g.idx(port)].Load()
}

// slot returns the address of port's generation counter, so a cached
// hint can re-check its generation with one atomic load instead of
// re-hashing the port on every locate.
func (g *genIndex) slot(port core.Port) *atomic.Uint64 {
	return &g.shards[g.idx(port)]
}

// bump invalidates hints for port (and its hash-collision siblings).
func (g *genIndex) bump(port core.Port) {
	g.shards[g.idx(port)].Add(1)
}

// bumpAll invalidates every hint, for events that can affect any port.
func (g *genIndex) bumpAll() {
	for i := range g.shards {
		g.shards[i].Add(1)
	}
}

// genSlotter is implemented by transports whose generation index can
// hand out counter addresses; the hint cache stores the address at put
// time so the hit path's generation check is one atomic load.
type genSlotter interface {
	genSlot(port core.Port) *atomic.Uint64
}
