// Package cluster is the concurrent match-making service layer: it
// fronts the paper's rendezvous machinery (post at P(A), query at Q(B),
// meet in the middle) behind a Transport interface and adds what a
// serving system needs on top of a correct engine — sharded request
// dispatch with per-shard worker pools, coalescing of concurrent locates
// for the same (client, port), a read-mostly concurrent rendezvous cache,
// and live metrics (throughput, latency quantiles, message passes per
// locate).
//
// Two transports are provided. SimTransport runs the existing
// internal/core engine over the internal/sim store-and-forward network,
// preserving the paper's exact message-pass accounting hop by hop.
// MemTransport is the in-process fast path: postings and queries apply
// directly to a sharded in-memory store, while the same message-pass
// cost the simulator would have charged is computed from the routing
// tables (multicast-tree edges for floods, hop distance for replies), so
// throughput work keeps honest paper-cost numbers. The two transports
// agree on both results and costs on a healthy network; see
// equivalence_test.go.
package cluster

import (
	"errors"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Errors returned by the cluster layer.
var (
	// ErrOverload reports an async submission rejected because the
	// owning shard's queue was full (the request was shed).
	ErrOverload = errors.New("cluster: shard queue full")
	// ErrClosed reports use of a closed cluster.
	ErrClosed = errors.New("cluster: closed")
)

// Transport executes match-making operations against some substrate. It
// is the seam between the service layer (sharding, coalescing, worker
// pools, metrics) and the machinery that actually moves postings and
// queries: the paper-faithful simulator today, real sockets in a later
// iteration.
//
// Implementations must be safe for concurrent use; the cluster layer
// issues operations from many goroutines at once.
type Transport interface {
	// Name identifies the transport in reports.
	Name() string
	// N returns the number of nodes served.
	N() int
	// Register announces a server process for port at node and returns
	// a handle for its lifecycle (repost, migrate, deregister).
	Register(port core.Port, node graph.NodeID) (ServerRef, error)
	// Locate resolves port from client node, returning the freshest
	// live posting visible at the client's query set. It fails with an
	// error wrapping core.ErrNotFound when no rendezvous node answers.
	Locate(client graph.NodeID, port core.Port) (core.Entry, error)
	// LocateAll returns every live server instance for port visible
	// from client.
	LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error)
	// Crash marks a node failed (it drops postings, queries and
	// replies); Restore brings it back with its volatile cache lost.
	Crash(node graph.NodeID) error
	Restore(node graph.NodeID) error
	// Passes returns the total message passes charged so far — the
	// paper's cost measure, one unit per edge traversed.
	Passes() int64
	// ResetPasses zeroes the pass counter.
	ResetPasses()
	// Close releases transport resources.
	Close() error
}

// ServerRef is a live server registration on some transport.
type ServerRef interface {
	// Port returns the registered port.
	Port() core.Port
	// Node returns the server's current address.
	Node() graph.NodeID
	// Repost refreshes the server's postings at its rendezvous nodes.
	Repost() error
	// Migrate moves the server to a new node: tombstones at the old
	// rendezvous set, fresh postings at the new one.
	Migrate(to graph.NodeID) error
	// Deregister tombstones the server; further operations fail with
	// core.ErrServerGone.
	Deregister() error
}
