// Package cluster is the concurrent match-making service layer: it
// fronts the paper's rendezvous machinery (post at P(A), query at Q(B),
// meet in the middle) behind a Transport interface and adds what a
// serving system needs on top of a correct engine — sharded request
// dispatch with per-shard worker pools, coalescing of concurrent locates
// for the same (client, port), a read-mostly concurrent rendezvous cache,
// and live metrics (throughput, latency quantiles, message passes per
// locate).
//
// Three transports are provided. SimTransport runs the existing
// internal/core engine over the internal/sim store-and-forward network,
// preserving the paper's exact message-pass accounting hop by hop.
// MemTransport is the in-process fast path: postings and queries apply
// directly to a sharded in-memory store, while the same message-pass
// cost the simulator would have charged is computed from the routing
// tables (multicast-tree edges for floods, hop distance for replies), so
// throughput work keeps honest paper-cost numbers. NetTransport crosses
// the process boundary: the node space is partitioned across OS
// processes (NodeServer, usually cmd/mmnode) speaking a compact
// length-prefixed binary protocol over TCP (internal/netwire), with the
// same routing-derived pass accounting kept by the coordinating client —
// kill -9 a process and its node range fails silently, like crashed
// nodes in the paper's model. All three also implement the r-fold
// replicated rendezvous mode (strategy.Replicated): servers post to
// every replica family and a locate falls through the families when
// rendezvous nodes are dead, so one crashed node — or one killed node
// process — costs an extra flood instead of an outage. And all three
// implement epoch-versioned elastic membership (strategy.Epoch,
// ElasticTransport): the active node set and its strategy can change
// at runtime through a dual-epoch migration — minimal-movement delta
// re-posts, locates falling through to the retiring epoch until it
// drains, local expiry of the orphaned postings afterwards — with the
// socket backend additionally re-partitioning the node space across a
// different process set live (NetTransport.Rescale). All transports
// agree on both results and costs on a healthy network, on the crash
// fallthrough path and across epoch transitions; see
// equivalence_test.go, replicated_test.go, elastic_test.go and
// nettransport_test.go, and docs/PAPER_MAP.md for the paper-to-code
// concordance.
package cluster

import (
	"errors"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Errors returned by the cluster layer.
var (
	// ErrOverload reports an async submission rejected because the
	// owning shard's queue was full (the request was shed).
	ErrOverload = errors.New("cluster: shard queue full")
	// ErrClosed reports use of a closed cluster.
	ErrClosed = errors.New("cluster: closed")
)

// Transport executes match-making operations against some substrate. It
// is the seam between the service layer (sharding, coalescing, worker
// pools, metrics) and the machinery that actually moves postings and
// queries: the paper-faithful simulator, the in-process fast path, or
// real sockets to a multi-process cluster. Whatever the substrate, an
// implementation must charge the paper's message passes for every
// operation — the accounting is the contract, the substrate is the
// vehicle.
//
// Implementations must be safe for concurrent use; the cluster layer
// issues operations from many goroutines at once.
type Transport interface {
	// Name identifies the transport in reports.
	Name() string
	// N returns the number of nodes served.
	N() int
	// Register announces a server process for port at node and returns
	// a handle for its lifecycle (repost, migrate, deregister).
	Register(port core.Port, node graph.NodeID) (ServerRef, error)
	// Locate resolves port from client node, returning the freshest
	// live posting visible at the client's query set. It fails with an
	// error wrapping core.ErrNotFound when no rendezvous node answers.
	Locate(client graph.NodeID, port core.Port) (core.Entry, error)
	// LocateBatch resolves reqs[i] into res[i], one full locate per
	// request with the same answers and the same total pass charge as
	// the equivalent sequence of Locate calls. Implementations may take
	// per-shard locks once per batch and account passes in bulk; res
	// must have the same length as reqs.
	LocateBatch(reqs []LocateReq, res []LocateRes)
	// Probe validates a previously located entry with one direct
	// request/reply to its cached address, charged 2×Dist(client,
	// e.Addr) passes — the hint-validation message of the address
	// cache. A live node that no longer hosts the instance answers
	// negatively (an error wrapping core.ErrNotFound); a crashed
	// address fails without an answer.
	Probe(client graph.NodeID, e core.Entry) (core.Entry, error)
	// Gen returns the current invalidation generation of port's shard
	// in the transport's generation index. Registrations, migrations
	// and deregistrations bump the port's shard; a crash bumps every
	// shard. A cached hint is only worth probing while its recorded
	// generation still matches.
	Gen(port core.Port) uint64
	// LocateAll returns every live server instance for port visible
	// from client.
	LocateAll(client graph.NodeID, port core.Port) ([]core.Entry, error)
	// PostBatch registers several servers in one transport operation,
	// with the same effects and total pass charge as the equivalent
	// sequence of Register calls. Inputs are validated up front; on a
	// validation error no server is registered.
	PostBatch(regs []Registration) ([]ServerRef, error)
	// Crash marks a node failed (it drops postings, queries and
	// replies); Restore brings it back with its volatile cache lost.
	Crash(node graph.NodeID) error
	Restore(node graph.NodeID) error
	// Passes returns the total message passes charged so far — the
	// paper's cost measure, one unit per edge traversed.
	Passes() int64
	// ResetPasses zeroes the pass counter.
	ResetPasses()
	// Close releases transport resources.
	Close() error
}

// LocateReq is one locate in a batched transport operation.
type LocateReq struct {
	Client graph.NodeID
	Port   core.Port
}

// LocateRes is the result slot LocateBatch fills for one request.
type LocateRes struct {
	Entry core.Entry
	Err   error
}

// Registration is one server announcement in a PostBatch.
type Registration struct {
	Port core.Port
	Node graph.NodeID
}

// ReplicatedTransport is implemented by transports running an r-fold
// replicated strategy (strategy.Replicated): servers post to the union
// of every replica family's posting sets, and a locate floods replica
// 0's query set first, falling through to replica 1, 2, … only when no
// rendezvous node of the previous family answered. Each attempt is
// charged its own flood — the paper-honest price of redundancy — so a
// healthy network pays exactly the base strategy's locate cost while a
// crashed rendezvous node (or a killed node-shard process) costs one
// extra flood instead of an outage.
type ReplicatedTransport interface {
	// Replicas returns the replication factor r; 1 means unreplicated.
	Replicas() int
	// LocateReplica floods only replica k's query set, charging that
	// replica's multicast cost plus each rendezvous hit's reply
	// distance — one fallthrough attempt of a crash-tolerant locate. It
	// fails with an error wrapping core.ErrNotFound when no rendezvous
	// node of that family answers.
	LocateReplica(client graph.NodeID, port core.Port, replica int) (core.Entry, error)
}

// locateFallthrough is the deterministic replica-fallthrough loop shared
// by every replicated transport's Locate: families are tried in order
// from start (wrapping), stopping at the first answer. Only a rendezvous
// miss (core.ErrNotFound) falls through; any other failure — crashed
// client, invalid node — aborts immediately. It returns the replica that
// answered alongside the result.
func locateFallthrough(rt ReplicatedTransport, client graph.NodeID, port core.Port, start int) (core.Entry, int, error) {
	r := rt.Replicas()
	if start < 0 || start >= r {
		start = 0
	}
	var (
		e   core.Entry
		err error
	)
	for a := 0; a < r; a++ {
		k := (start + a) % r
		e, err = rt.LocateReplica(client, port, k)
		if err == nil || !errors.Is(err, core.ErrNotFound) {
			return e, k, err
		}
	}
	return e, start, err
}

// locateAllFallthrough is locateFallthrough's locate-all twin, shared
// by every replicated transport's LocateAll: attempt(k) floods replica
// k's query set, and only a rendezvous miss (core.ErrNotFound) falls
// through to the next family.
func locateAllFallthrough(replicas int, attempt func(k int) ([]core.Entry, error)) ([]core.Entry, error) {
	var (
		out []core.Entry
		err error
	)
	for k := 0; k < replicas; k++ {
		out, err = attempt(k)
		if err == nil || !errors.Is(err, core.ErrNotFound) {
			return out, err
		}
	}
	return out, err
}

// HotReclassifier is implemented by transports that support the
// frequency-weighted strategy (strategy.Weighted): SetHotPorts switches
// the given ports to the post-heavy hot split (reposting their servers
// to the union posting sets first, so rendezvous never breaks) and
// demotes every port not listed back to the base strategy.
type HotReclassifier interface {
	SetHotPorts(ports []core.Port) error
}

// hotCapable refines HotReclassifier for implementations whose support
// is conditional (a MemTransport built without a weighted strategy
// still has the method, but every call would fail).
type hotCapable interface {
	canReclassify() bool
}

// reclassifiable reports whether tr can actually serve SetHotPorts.
func reclassifiable(tr Transport) bool {
	hr, ok := tr.(HotReclassifier)
	if !ok {
		return false
	}
	if hc, ok := hr.(hotCapable); ok {
		return hc.canReclassify()
	}
	return true
}

// ServerRef is a live server registration on some transport.
type ServerRef interface {
	// Port returns the registered port.
	Port() core.Port
	// Node returns the server's current address.
	Node() graph.NodeID
	// Repost refreshes the server's postings at its rendezvous nodes.
	Repost() error
	// Migrate moves the server to a new node: tombstones at the old
	// rendezvous set, fresh postings at the new one.
	Migrate(to graph.NodeID) error
	// Deregister tombstones the server; further operations fail with
	// core.ErrServerGone.
	Deregister() error
}
