package cluster

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Store is the concurrent rendezvous cache behind MemTransport: the
// (port, address) postings of every node, sharded by (node, port) hash
// across independently locked maps so posts and queries for different
// services never contend. Each (node, port) slot holds an immutable
// entry slice behind an atomic pointer — readers on the locate hot path
// take one shared-mode lock to find the slot, then a single atomic load,
// so the read side scales with cores instead of serializing on the
// single mutex the per-node engine cache uses.
//
// Entry semantics match internal/core's cache (§2.1): entries are kept
// per (port, server instance); within an instance the newest timestamp
// wins and tombstones supersede like any other entry. Tombstones of dead
// instances are capped per slot so a churning service cannot grow a slot
// without bound.
type Store struct {
	shards []storeShard
	mask   uint64
	seed   maphash.Seed

	// clock is the logical posting clock shared by all writers.
	clock atomic.Uint64
}

// maxSlotTombstones bounds dead-instance tombstones kept per (node,
// port) slot; the stalest are dropped first. Live entries are never
// evicted.
const maxSlotTombstones = 8

type storeShard struct {
	mu sync.RWMutex
	m  map[storeKey]*storeSlot
}

type storeKey struct {
	node graph.NodeID
	port core.Port
}

type storeSlot struct {
	entries atomic.Pointer[[]core.Entry]
}

// NewStore builds a store for n nodes with the given shard count
// (rounded up to a power of two; 0 picks a default suited to the node
// count).
func NewStore(n, shards int) *Store {
	if shards <= 0 {
		// One shard per node spreads (node, port) slots with little
		// collision, clamped so tiny networks still get concurrency and
		// huge ones don't pay for thousands of idle maps.
		shards = min(max(n, 16), 256)
	}
	size := 1
	for size < shards {
		size <<= 1
	}
	s := &Store{
		shards: make([]storeShard, size),
		mask:   uint64(size - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range s.shards {
		s.shards[i].m = make(map[storeKey]*storeSlot, 16)
	}
	return s
}

// NextTime returns a fresh logical posting timestamp.
func (s *Store) NextTime() uint64 { return s.clock.Add(1) }

// shardIndex returns the shard owning k; batched operations group their
// accesses by this index so each shard lock is taken once per batch.
func (s *Store) shardIndex(k storeKey) uint32 {
	var h maphash.Hash
	h.SetSeed(s.seed)
	h.WriteString(string(k.port))
	return uint32((h.Sum64() ^ uint64(k.node)*0x9e3779b97f4a7c15) & s.mask)
}

func (s *Store) shard(k storeKey) *storeShard {
	return &s.shards[s.shardIndex(k)]
}

// slotLocked returns the slot for k in sh, which the caller holds at
// least read-locked; nil when absent.
func (sh *storeShard) slotLocked(k storeKey) *storeSlot {
	return sh.m[k]
}

// slotCreateLocked returns the slot for k in sh, creating it; the
// caller holds the shard write-locked.
func (sh *storeShard) slotCreateLocked(k storeKey) *storeSlot {
	sl := sh.m[k]
	if sl == nil {
		sl = &storeSlot{}
		sh.m[k] = sl
	}
	return sl
}

// readFreshest scans a loaded slot for the freshest active entry.
func (sl *storeSlot) readFreshest() (core.Entry, bool) {
	return sl.readFreshestWhere(nil)
}

// readFreshestWhere scans a loaded slot for the freshest active entry
// accepted by keep (nil keeps everything). It is how the replicated
// mode family-scopes its reads: the same physical slot serves every
// replica family, and a family-k flood only sees the entries whose
// origin posted here as part of family k.
func (sl *storeSlot) readFreshestWhere(keep func(core.Entry) bool) (core.Entry, bool) {
	curp := sl.entries.Load()
	if curp == nil {
		return core.Entry{}, false
	}
	var (
		best  core.Entry
		found bool
	)
	for _, e := range *curp {
		if !e.Active || (keep != nil && !keep(e)) {
			continue
		}
		if !found || e.Time > best.Time {
			best, found = e, true
		}
	}
	return best, found
}

// merge folds e into the slot with the copy-on-write CAS loop of Put.
func (sl *storeSlot) merge(e core.Entry) {
	for {
		curp := sl.entries.Load()
		var cur []core.Entry
		if curp != nil {
			cur = *curp
		}
		next := mergeEntry(cur, e)
		if next == nil {
			return
		}
		if sl.entries.CompareAndSwap(curp, &next) {
			return
		}
	}
}

// slot returns the slot for k, creating it if create is set.
func (s *Store) slot(k storeKey, create bool) *storeSlot {
	sh := s.shard(k)
	sh.mu.RLock()
	sl := sh.m[k]
	sh.mu.RUnlock()
	if sl != nil || !create {
		return sl
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sl = sh.m[k]; sl == nil {
		sl = &storeSlot{}
		sh.m[k] = sl
	}
	return sl
}

// Put merges a posting (or tombstone) into node's cache. Stale postings
// — an older timestamp for the same server instance — are ignored, as
// in §2.1's timestamp conflict rule. The merge is a copy-on-write CAS
// loop on the slot's immutable slice, so concurrent posts for the same
// port serialize without a lock.
func (s *Store) Put(node graph.NodeID, e core.Entry) {
	s.slot(storeKey{node: node, port: e.Port}, true).merge(e)
}

// mergeEntry returns a fresh slice with e merged in, or nil when e is
// stale and the slice would be unchanged.
func mergeEntry(cur []core.Entry, e core.Entry) []core.Entry {
	for i, c := range cur {
		if c.ServerID == e.ServerID {
			if e.Time <= c.Time {
				return nil
			}
			next := append([]core.Entry(nil), cur...)
			next[i] = e
			return next
		}
	}
	next := make([]core.Entry, 0, len(cur)+1)
	next = append(next, cur...)
	next = append(next, e)
	return pruneTombstones(next)
}

// pruneTombstones drops the stalest dead-instance tombstones when a slot
// holds more than maxSlotTombstones of them.
func pruneTombstones(entries []core.Entry) []core.Entry {
	dead := 0
	for _, e := range entries {
		if !e.Active {
			dead++
		}
	}
	for dead > maxSlotTombstones {
		victim := -1
		for i, e := range entries {
			if !e.Active && (victim < 0 || e.Time < entries[victim].Time) {
				victim = i
			}
		}
		entries = append(entries[:victim], entries[victim+1:]...)
		dead--
	}
	return entries
}

// Get returns the freshest active entry for port cached at node.
func (s *Store) Get(node graph.NodeID, port core.Port) (core.Entry, bool) {
	return s.GetWhere(node, port, nil)
}

// GetWhere returns the freshest active entry for port cached at node
// among those accepted by keep (nil keeps everything) — the
// family-scoped read of the replicated rendezvous mode.
func (s *Store) GetWhere(node graph.NodeID, port core.Port, keep func(core.Entry) bool) (core.Entry, bool) {
	sl := s.slot(storeKey{node: node, port: port}, false)
	if sl == nil {
		return core.Entry{}, false
	}
	return sl.readFreshestWhere(keep)
}

// GetAll returns every active entry for port cached at node.
func (s *Store) GetAll(node graph.NodeID, port core.Port) []core.Entry {
	return s.GetAllInto(node, port, nil)
}

// GetAllInto appends every active entry for port cached at node to buf
// and returns it, letting hot callers reuse a pooled reply buffer
// instead of allocating one per rendezvous node.
func (s *Store) GetAllInto(node graph.NodeID, port core.Port, buf []core.Entry) []core.Entry {
	sl := s.slot(storeKey{node: node, port: port}, false)
	if sl == nil {
		return buf
	}
	curp := sl.entries.Load()
	if curp == nil {
		return buf
	}
	for _, e := range *curp {
		if e.Active {
			buf = append(buf, e)
		}
	}
	return buf
}

// Drop removes one server instance's cached entry for port at node, if
// present — the local expiry of epoch garbage collection: a posting
// that belongs only to a retired epoch disappears by the node's own
// decision, costing no message passes.
func (s *Store) Drop(node graph.NodeID, port core.Port, serverID uint64) {
	sl := s.slot(storeKey{node: node, port: port}, false)
	if sl == nil {
		return
	}
	for {
		curp := sl.entries.Load()
		if curp == nil {
			return
		}
		cur := *curp
		idx := -1
		for i, e := range cur {
			if e.ServerID == serverID {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		next := make([]core.Entry, 0, len(cur)-1)
		next = append(next, cur[:idx]...)
		next = append(next, cur[idx+1:]...)
		if sl.entries.CompareAndSwap(curp, &next) {
			return
		}
	}
}

// Inject force-places e in node's cache for e.Port, replacing any
// existing entry of the same server instance regardless of timestamps —
// deliberately bypassing the §2.1 merge rule Put enforces. It is the
// corruption-injection backdoor behind CorruptOptions and opCorrupt:
// it models a rendezvous node whose state silently went wrong, which is
// exactly what the merge rule would otherwise prevent.
func (s *Store) Inject(node graph.NodeID, e core.Entry) {
	sl := s.slot(storeKey{node: node, port: e.Port}, true)
	for {
		curp := sl.entries.Load()
		var cur []core.Entry
		if curp != nil {
			cur = *curp
		}
		next := make([]core.Entry, 0, len(cur)+1)
		replaced := false
		for _, c := range cur {
			if c.ServerID == e.ServerID {
				next = append(next, e)
				replaced = true
				continue
			}
			next = append(next, c)
		}
		if !replaced {
			next = append(next, e)
		}
		if sl.entries.CompareAndSwap(curp, &next) {
			return
		}
	}
}

// NodeEntry pairs a rendezvous node with one cached entry; it is the
// unit of a partition transfer (Store.DumpRange).
type NodeEntry struct {
	Node graph.NodeID
	E    core.Entry
}

// DumpRange returns every cached entry (live postings and tombstones
// alike) held for nodes in [lo, hi) — the donor side of a node-shard
// partition transfer. The result order is unspecified.
func (s *Store) DumpRange(lo, hi int) []NodeEntry {
	var out []NodeEntry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, sl := range sh.m {
			if int(k.node) < lo || int(k.node) >= hi {
				continue
			}
			if curp := sl.entries.Load(); curp != nil {
				for _, e := range *curp {
					out = append(out, NodeEntry{Node: k.node, E: e})
				}
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// ClearNode drops everything cached at node, modelling the loss of
// volatile state when the node crashes.
func (s *Store) ClearNode(node graph.NodeID) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			if k.node == node {
				delete(sh.m, k)
			}
		}
		sh.mu.Unlock()
	}
}

// NodeSize returns the number of ports with at least one active entry
// cached at node — the paper's per-node storage measure.
func (s *Store) NodeSize(node graph.NodeID) int {
	total := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, sl := range sh.m {
			if k.node != node {
				continue
			}
			if curp := sl.entries.Load(); curp != nil {
				for _, e := range *curp {
					if e.Active {
						total++
						break
					}
				}
			}
		}
		sh.mu.RUnlock()
	}
	return total
}
