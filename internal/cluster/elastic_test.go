package cluster

import (
	"errors"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// elasticOpts keeps the simulator's locate timeout short: during a
// dual-epoch phase a miss of the new epoch's families costs one
// timeout before the old epoch is tried, exactly like a replica
// fallthrough.
var elasticOpts = core.Options{LocateTimeout: 500 * time.Millisecond, CollectWindow: 2 * time.Millisecond}

// mkEpoch builds epoch seq over a universe of n nodes with the first
// active of them serving a checkerboard, replicated r-fold.
func mkEpoch(t *testing.T, seq uint64, universe, active, r int) *strategy.Epoch {
	t.Helper()
	ep, err := strategy.NewEpoch(seq, universe, rendezvous.Checkerboard(active), r)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// elasticPair builds an elastic sim/mem transport pair over a complete
// universe-node graph serving initial.
func elasticPair(t *testing.T, universe int, initial *strategy.Epoch) (*SimTransport, *MemTransport) {
	t.Helper()
	g := topology.Complete(universe)
	simT, err := NewElasticSimTransport(g, initial, elasticOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { simT.Close() })
	memT, err := NewElasticMemTransport(g, initial, 0)
	if err != nil {
		t.Fatal(err)
	}
	return simT, memT
}

// checkElasticLocates compares answers and per-operation pass charges
// between the elastic transports for every port from clients stepping
// over [0, clients).
func checkElasticLocates(t *testing.T, stage string, simT *SimTransport, memT *MemTransport, servers map[core.Port]graph.NodeID, clients int) {
	t.Helper()
	for c := 0; c < clients; c += 3 {
		client := graph.NodeID(c)
		for port := range servers {
			simBefore, memBefore := simT.Passes(), memT.Passes()
			e1, err1 := simT.Locate(client, port)
			simT.Network().Drain()
			e2, err2 := memT.Locate(client, port)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: locate %q from %d: sim err=%v mem err=%v", stage, port, client, err1, err2)
			}
			if err1 == nil && (e1.Addr != e2.Addr || e1.ServerID != e2.ServerID) {
				t.Fatalf("%s: locate %q from %d: sim %+v != mem %+v", stage, port, client, e1, e2)
			}
			if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
				t.Fatalf("%s: locate %q from %d: sim charged %d passes, mem %d", stage, port, client, sc, mc)
			}
		}
	}
}

// TestElasticSimMemEquivalence drives a full grow-then-shrink epoch
// cycle through the paper-exact simulator and the fast path and
// demands identical answers and identical pass charges at every step:
// steady state, the migration itself (delta re-posts), the dual-epoch
// phase (locates from old and new members), the retirement (local GC,
// zero charge), and the way back down.
func TestElasticSimMemEquivalence(t *testing.T) {
	const universe = 48
	ep1 := mkEpoch(t, 1, universe, 36, 1)
	simT, memT := elasticPair(t, universe, ep1)

	servers := map[core.Port]graph.NodeID{"alpha": 12, "beta": 35, "gamma": 0}
	for port, node := range servers {
		simBefore, memBefore := simT.Passes(), memT.Passes()
		if _, err := simT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		simT.Network().Drain()
		if _, err := memT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
			t.Fatalf("register %q: sim charged %d passes, mem %d", port, sc, mc)
		}
	}
	checkElasticLocates(t, "epoch1-steady", simT, memT, servers, 36)

	// Grow: 36 → 48 active nodes under a fresh checkerboard.
	ep2 := mkEpoch(t, 2, universe, 48, 1)
	rm, err := strategy.NewRemap(ep1, ep2)
	if err != nil {
		t.Fatal(err)
	}
	var homes []graph.NodeID
	for _, node := range servers {
		homes = append(homes, node)
	}
	want := rm.MovedPosts(homes)
	simBefore, memBefore := simT.Passes(), memT.Passes()
	simMoved, err := simT.Resize(ep2)
	if err != nil {
		t.Fatal(err)
	}
	simT.Network().Drain()
	memMoved, err := memT.Resize(ep2)
	if err != nil {
		t.Fatal(err)
	}
	if simMoved != want || memMoved != want {
		t.Fatalf("moved postings: sim %d, mem %d, remap predicts %d", simMoved, memMoved, want)
	}
	if want == 0 {
		t.Fatal("grow transition moved nothing; test is vacuous")
	}
	if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
		t.Fatalf("resize migration: sim charged %d passes, mem %d", sc, mc)
	}
	if !simT.Resizing() || !memT.Resizing() {
		t.Fatal("transports not in the dual-epoch phase after Resize")
	}

	// Dual-epoch phase: old members and brand-new members both locate.
	checkElasticLocates(t, "dual-grow", simT, memT, servers, 48)

	// Lifecycle during the dual phase: a fresh registration on a
	// new-epoch-only node, and a migration — both post under the
	// widened union sets on both transports.
	simBefore, memBefore = simT.Passes(), memT.Passes()
	simRef, err := simT.Register("delta", 40)
	if err != nil {
		t.Fatal(err)
	}
	simT.Network().Drain()
	memRef, err := memT.Register("delta", 40)
	if err != nil {
		t.Fatal(err)
	}
	if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
		t.Fatalf("dual-phase register: sim charged %d passes, mem %d", sc, mc)
	}
	servers["delta"] = 40
	checkElasticLocates(t, "dual-grow+delta", simT, memT, servers, 48)

	if err := simT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if err := memT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if simT.Resizing() || memT.Resizing() {
		t.Fatal("transports still resizing after FinishResize")
	}
	checkElasticLocates(t, "epoch2-steady", simT, memT, servers, 48)

	// Shrink back: every server must first live inside the surviving
	// range; epoch admission enforces it.
	ep3 := mkEpoch(t, 3, universe, 36, 1)
	if _, err := memT.Resize(ep3); err == nil {
		t.Fatal("mem resize accepted a server homed outside the shrunken membership")
	}
	if _, err := simT.Resize(ep3); err == nil {
		t.Fatal("sim resize accepted a server homed outside the shrunken membership")
	}
	simBefore, memBefore = simT.Passes(), memT.Passes()
	if err := simRef.Migrate(20); err != nil {
		t.Fatal(err)
	}
	simT.Network().Drain()
	if err := memRef.Migrate(20); err != nil {
		t.Fatal(err)
	}
	if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
		t.Fatalf("pre-shrink migrate: sim charged %d passes, mem %d", sc, mc)
	}
	servers["delta"] = 20

	simBefore, memBefore = simT.Passes(), memT.Passes()
	simMoved, err = simT.Resize(ep3)
	if err != nil {
		t.Fatal(err)
	}
	simT.Network().Drain()
	memMoved, err = memT.Resize(ep3)
	if err != nil {
		t.Fatal(err)
	}
	if simMoved != memMoved {
		t.Fatalf("shrink moved postings: sim %d, mem %d", simMoved, memMoved)
	}
	if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
		t.Fatalf("shrink migration: sim charged %d passes, mem %d", sc, mc)
	}
	// During the shrink's dual phase, clients on the nodes being
	// retired still locate — through the old epoch's fallthrough.
	checkElasticLocates(t, "dual-shrink", simT, memT, servers, 48)
	if simT.DualEpochLocates() == 0 || memT.DualEpochLocates() == 0 {
		t.Fatalf("retiring-epoch floods resolved nothing: sim %d, mem %d — the dual-epoch path never engaged",
			simT.DualEpochLocates(), memT.DualEpochLocates())
	}

	if err := simT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if err := memT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	checkElasticLocates(t, "epoch3-steady", simT, memT, servers, 36)

	// Epoch GC correctness: a post-shrink deregistration must stop the
	// port resolving — no stale old-epoch posting may resurrect it.
	if err := simRef.Deregister(); err != nil {
		t.Fatal(err)
	}
	simT.Network().Drain()
	if err := memRef.Deregister(); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 36; c += 5 {
		if _, err := memT.Locate(graph.NodeID(c), "delta"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("mem locate of deregistered port from %d: %v; want ErrNotFound", c, err)
		}
		if _, err := simT.Locate(graph.NodeID(c), "delta"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("sim locate of deregistered port from %d: %v; want ErrNotFound", c, err)
		}
	}
}

// TestElasticReplicatedResizeEquivalence runs an epoch transition at
// r = 2 with a crashed rendezvous node in the new epoch's first family:
// locates fall through — to the second family, and where necessary to
// the retiring epoch — identically, at identical charges, on both
// transports.
func TestElasticReplicatedResizeEquivalence(t *testing.T) {
	const universe = 48
	ep1 := mkEpoch(t, 1, universe, 36, 2)
	simT, memT := elasticPair(t, universe, ep1)

	servers := map[core.Port]graph.NodeID{"alpha": 7, "beta": 29}
	for port, node := range servers {
		if _, err := simT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		simT.Network().Drain()
		if _, err := memT.Register(port, node); err != nil {
			t.Fatal(err)
		}
	}
	checkElasticLocates(t, "r2-epoch1", simT, memT, servers, 36)

	ep2 := mkEpoch(t, 2, universe, 48, 2)
	if _, err := simT.Resize(ep2); err != nil {
		t.Fatal(err)
	}
	simT.Network().Drain()
	if _, err := memT.Resize(ep2); err != nil {
		t.Fatal(err)
	}

	// Crash one family-0 rendezvous node of the new epoch for alpha as
	// seen from some client — the fallthrough must bridge it on both.
	// The victim must not be a server home (crashing the server is a
	// different failure) nor the client itself.
	client, victim := graph.NodeID(-1), graph.NodeID(-1)
	rep0 := ep2.Replicated().Replica(0)
	for c := 0; c < 48 && victim < 0; c++ {
		for _, v := range rendezvous.Intersect(rep0.Post(servers["alpha"]), rep0.Query(graph.NodeID(c))) {
			if v != servers["alpha"] && v != servers["beta"] && int(v) != c {
				client, victim = graph.NodeID(c), v
				break
			}
		}
	}
	if victim < 0 {
		t.Fatal("no crashable family-0 rendezvous for any client")
	}
	if err := simT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if err := memT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	simBefore, memBefore := simT.Passes(), memT.Passes()
	e1, err1 := simT.Locate(client, "alpha")
	simT.Network().Drain()
	e2, err2 := memT.Locate(client, "alpha")
	if err1 != nil || err2 != nil {
		t.Fatalf("crashed-rendezvous locate: sim err=%v mem err=%v", err1, err2)
	}
	if e1.Addr != e2.Addr || e1.ServerID != e2.ServerID {
		t.Fatalf("crashed-rendezvous locate: sim %+v != mem %+v", e1, e2)
	}
	if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
		t.Fatalf("crashed-rendezvous locate: sim charged %d passes, mem %d", sc, mc)
	}
	if err := simT.Restore(victim); err != nil {
		t.Fatal(err)
	}
	if err := memT.Restore(victim); err != nil {
		t.Fatal(err)
	}
	if err := simT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if err := memT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	checkElasticLocates(t, "r2-epoch2", simT, memT, servers, 48)
}

// TestElasticIdentityResizeMovesNothing pins the minimal-movement
// contract's floor: a transition between identically-shaped epochs
// migrates zero postings and bumps no hint generation.
func TestElasticIdentityResizeMovesNothing(t *testing.T) {
	const universe = 36
	ep1 := mkEpoch(t, 1, universe, 36, 1)
	memT, err := NewElasticMemTransport(topology.Complete(universe), ep1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memT.Register("svc", 5); err != nil {
		t.Fatal(err)
	}
	gen := memT.Gen("svc")
	moved, err := memT.Resize(mkEpoch(t, 2, universe, 36, 1))
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("identity resize moved %d postings, want 0", moved)
	}
	if got := memT.Gen("svc"); got != gen {
		t.Fatalf("identity resize bumped the port generation %d → %d", gen, got)
	}
	if err := memT.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if _, err := memT.Locate(3, "svc"); err != nil {
		t.Fatalf("locate after identity resize: %v", err)
	}
}

// TestElasticHintedUnhintedAcrossResize drives the same workload
// through a hinted and an unhinted cluster over elastic mem transports
// across a full resize cycle: answers must be identical at every stage,
// and the moved-port generation bump must force hinted locates to
// re-resolve rather than serve a stale epoch's view.
func TestElasticHintedUnhintedAcrossResize(t *testing.T) {
	const universe = 48
	build := func(hints bool) (*Cluster, []ServerRef) {
		ep := mkEpoch(t, 1, universe, 36, 1)
		tr, err := NewElasticMemTransport(topology.Complete(universe), ep, 0)
		if err != nil {
			t.Fatal(err)
		}
		c := New(tr, Options{Hints: hints, DisableCoalescing: true})
		t.Cleanup(func() { c.Close() })
		refs := make([]ServerRef, 0, 3)
		for i, port := range []core.Port{"a", "b", "c"} {
			ref, err := c.Register(port, graph.NodeID(i*11+2))
			if err != nil {
				t.Fatal(err)
			}
			refs = append(refs, ref)
		}
		return c, refs
	}
	hinted, _ := build(true)
	plain, _ := build(false)

	compare := func(stage string, clients int) {
		t.Helper()
		for c := 0; c < clients; c += 2 {
			for _, port := range []core.Port{"a", "b", "c"} {
				// Locate twice so the second hinted call runs on a warm hint.
				for pass := 0; pass < 2; pass++ {
					e1, err1 := hinted.Locate(graph.NodeID(c), port)
					e2, err2 := plain.Locate(graph.NodeID(c), port)
					if (err1 == nil) != (err2 == nil) {
						t.Fatalf("%s: locate %q from %d pass %d: hinted err=%v plain err=%v", stage, port, c, pass, err1, err2)
					}
					if err1 == nil && (e1.Addr != e2.Addr || e1.ServerID != e2.ServerID) {
						t.Fatalf("%s: locate %q from %d pass %d: hinted %+v != plain %+v", stage, port, c, pass, e1, e2)
					}
				}
			}
		}
	}
	compare("epoch1", 36)
	ep2 := mkEpoch(t, 2, universe, 48, 1)
	if _, err := hinted.Resize(ep2); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Resize(ep2); err != nil {
		t.Fatal(err)
	}
	compare("dual", 48)
	if err := hinted.FinishResize(); err != nil {
		t.Fatal(err)
	}
	if err := plain.FinishResize(); err != nil {
		t.Fatal(err)
	}
	compare("epoch2", 48)

	m := hinted.Metrics()
	if !m.Elastic || m.Epoch != 2 {
		t.Fatalf("hinted metrics: elastic=%v epoch=%d, want elastic at epoch 2", m.Elastic, m.Epoch)
	}
	if m.MigratedPosts == 0 {
		t.Fatalf("hinted metrics report zero migrated postings across a real resize")
	}
}
