package cluster

import (
	"errors"
	"testing"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// repOpts keeps the simulator's locate timeout short: a replica
// fallthrough on the sim costs one full timeout per silent family, and
// with inline handlers a live rendezvous answers before Multicast
// returns, so a short timeout only ever delays true misses.
var repOpts = core.Options{LocateTimeout: 500 * time.Millisecond, CollectWindow: 2 * time.Millisecond}

// mkReplicated builds the r-fold replicated checkerboard over n nodes.
func mkReplicated(t *testing.T, n, r int) *strategy.Replicated {
	t.Helper()
	rp, err := strategy.NewReplicated(rendezvous.Checkerboard(n), r)
	if err != nil {
		t.Fatal(err)
	}
	return rp
}

// replica0Rendezvous returns the base-family rendezvous set of a
// (server node, client node) pair.
func replica0Rendezvous(rp *strategy.Replicated, server, client graph.NodeID) []graph.NodeID {
	base := rp.Base()
	return rendezvous.Intersect(base.Post(server), base.Query(client))
}

// TestReplicatedStoreUnionPostings checks a registration on the
// replicated fast path lands at every replica family's rendezvous
// nodes, so any family's query flood can answer for it.
func TestReplicatedStoreUnionPostings(t *testing.T) {
	n := 36
	rp := mkReplicated(t, n, 2)
	memT, err := NewReplicatedMemTransport(topology.Complete(n), rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	server := graph.NodeID(7)
	if _, err := memT.Register("svc", server); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < rp.Replicas(); k++ {
		for _, v := range rp.Replica(k).Post(server) {
			if _, ok := memT.Store().Get(v, "svc"); !ok {
				t.Fatalf("replica %d posting target %d holds no entry", k, v)
			}
		}
	}
	if got := memT.Store().NodeSize(rp.Replica(1).Post(server)[0]); got != 1 {
		t.Fatalf("replica-1 rendezvous node size = %d, want 1", got)
	}
}

// TestReplicatedSimMemEquivalence drives the replicated mode through
// the paper-exact simulator and the fast path on a complete topology
// and demands identical answers and identical pass charges — healthy
// floods first, then the failure path: with a replica-0 rendezvous
// node crashed on both, locates fall through to replica 1 on both, at
// the same total charge (base flood paid in vain + replica-1 flood +
// replies).
func TestReplicatedSimMemEquivalence(t *testing.T) {
	n := 36
	g := topology.Complete(n)
	rp := mkReplicated(t, n, 2)
	simT, err := NewReplicatedSimTransport(g, rp, repOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer simT.Close()
	memT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}

	servers := map[core.Port]graph.NodeID{"alpha": 7, "beta": 29}
	for port, node := range servers {
		simBefore, memBefore := simT.Passes(), memT.Passes()
		if _, err := simT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		simT.Network().Drain()
		if _, err := memT.Register(port, node); err != nil {
			t.Fatal(err)
		}
		if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
			t.Fatalf("register %q: sim charged %d passes (union post), mem %d", port, sc, mc)
		}
	}

	checkLocates := func(stage string, skip graph.NodeID) {
		t.Helper()
		for c := 0; c < n; c += 3 {
			client := graph.NodeID(c)
			if client == skip {
				continue // a crashed client legitimately cannot query
			}
			for port := range servers {
				simBefore, memBefore := simT.Passes(), memT.Passes()
				e1, err1 := simT.Locate(client, port)
				simT.Network().Drain()
				e2, err2 := memT.Locate(client, port)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: locate %q from %d: sim err=%v mem err=%v", stage, port, client, err1, err2)
				}
				if e1.Addr != e2.Addr || e1.ServerID != e2.ServerID {
					t.Fatalf("%s: locate %q from %d: sim %+v != mem %+v", stage, port, client, e1, e2)
				}
				if sc, mc := simT.Passes()-simBefore, memT.Passes()-memBefore; sc != mc {
					t.Fatalf("%s: locate %q from %d: sim charged %d passes, mem %d", stage, port, client, sc, mc)
				}
			}
		}
	}
	checkLocates("healthy", -1)

	// Kill the replica-0 rendezvous of ("alpha", client 1) on both
	// transports; every locate must still succeed on both, with
	// identical fallthrough charges, and replication must have made the
	// two families' meeting points disjoint so the victim cannot also
	// be the replica-1 rendezvous.
	victim := replica0Rendezvous(rp, servers["alpha"], 1)[0]
	if err := simT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if err := memT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	checkLocates("one rendezvous crashed", victim)
}

// TestReplicatedMemSurvivesAnySingleCrash pins the r=2 availability
// claim on the fast path: whichever single node dies, every (client,
// port) locate still succeeds, resolved by replica 0 or by one
// fallthrough to replica 1.
func TestReplicatedMemSurvivesAnySingleCrash(t *testing.T) {
	n := 36
	rp := mkReplicated(t, n, 2)
	memT, err := NewReplicatedMemTransport(topology.Complete(n), rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]ServerRef, 0, 2)
	for port, node := range map[core.Port]graph.NodeID{"alpha": 7, "beta": 29} {
		ref, err := memT.Register(port, node)
		if err != nil {
			t.Fatal(err)
		}
		refs = append(refs, ref)
	}
	for victim := 0; victim < n; victim++ {
		if err := memT.Crash(graph.NodeID(victim)); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < n; c++ {
			client := graph.NodeID(c)
			if client == graph.NodeID(victim) {
				continue // a crashed client legitimately cannot query
			}
			for _, ref := range refs {
				if _, err := memT.Locate(client, ref.Port()); err != nil {
					t.Fatalf("victim %d: locate %q from %d failed: %v", victim, ref.Port(), client, err)
				}
			}
		}
		if err := memT.Restore(graph.NodeID(victim)); err != nil {
			t.Fatal(err)
		}
		// The restored node lost its volatile cache; repost so the next
		// iteration starts from full replication again — the repair
		// duty the net transport's repair loop automates.
		for _, ref := range refs {
			if err := ref.Repost(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestReplicatedLocateBatchFallthrough checks the batched locate path
// falls through per request: a batch mixing healthy pairs, pairs whose
// replica-0 rendezvous is crashed, and a nonexistent port must return
// the same answers and charge the same total as the equivalent
// sequence of single locates.
func TestReplicatedLocateBatchFallthrough(t *testing.T) {
	n := 36
	g := topology.Complete(n)
	rp := mkReplicated(t, n, 2)
	mkT := func() *MemTransport {
		memT, err := NewReplicatedMemTransport(g, rp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := memT.Register("alpha", 7); err != nil {
			t.Fatal(err)
		}
		return memT
	}
	batchT, seqT := mkT(), mkT()
	victim := replica0Rendezvous(rp, 7, 1)[0]
	for _, tr := range []*MemTransport{batchT, seqT} {
		if err := tr.Crash(victim); err != nil {
			t.Fatal(err)
		}
		tr.ResetPasses()
	}

	var reqs []LocateReq
	for c := 0; c < n; c += 4 {
		reqs = append(reqs,
			LocateReq{Client: graph.NodeID(c), Port: "alpha"},
			LocateReq{Client: graph.NodeID(c), Port: "nope"})
	}
	batchRes := make([]LocateRes, len(reqs))
	batchT.LocateBatch(reqs, batchRes)
	for i, r := range reqs {
		e, err := seqT.Locate(r.Client, r.Port)
		if (err == nil) != (batchRes[i].Err == nil) {
			t.Fatalf("req %d (%+v): batch err=%v single err=%v", i, r, batchRes[i].Err, err)
		}
		if err == nil && (e.Addr != batchRes[i].Entry.Addr || e.ServerID != batchRes[i].Entry.ServerID) {
			t.Fatalf("req %d (%+v): batch %+v != single %+v", i, r, batchRes[i].Entry, e)
		}
		if r.Port == "alpha" && batchRes[i].Err != nil {
			t.Fatalf("req %d: locate alpha from %d failed on the failure path: %v", i, r.Client, batchRes[i].Err)
		}
	}
	if bp, sp := batchT.Passes(), seqT.Passes(); bp != sp {
		t.Fatalf("batch charged %d passes, sequence %d", bp, sp)
	}
}

// TestClusterReplicatedFallthroughMetrics runs the full serving layer
// (hints on) over a replicated fast path with a crashed rendezvous
// node: every locate still succeeds, the metrics report full
// availability with a nonzero fallthrough count, and hinted answers
// stay equal to unhinted ones.
func TestClusterReplicatedFallthroughMetrics(t *testing.T) {
	n := 36
	g := topology.Complete(n)
	rp := mkReplicated(t, n, 2)
	memT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	plainT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(memT, Options{Hints: true})
	defer c.Close()
	if _, err := c.Register("alpha", 7); err != nil {
		t.Fatal(err)
	}
	if _, err := plainT.Register("alpha", 7); err != nil {
		t.Fatal(err)
	}
	victim := replica0Rendezvous(rp, 7, 1)[0]
	if err := memT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	if err := plainT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for cl := 0; cl < n; cl += 2 {
			if cl == int(victim) {
				continue
			}
			hinted, err := c.Locate(graph.NodeID(cl), "alpha")
			if err != nil {
				t.Fatalf("round %d client %d: %v", round, cl, err)
			}
			plain, err := plainT.Locate(graph.NodeID(cl), "alpha")
			if err != nil {
				t.Fatal(err)
			}
			if hinted.Addr != plain.Addr || hinted.ServerID != plain.ServerID {
				t.Fatalf("round %d client %d: hinted %+v != plain %+v", round, cl, hinted, plain)
			}
		}
	}
	m := c.Metrics()
	if m.Errors != 0 || m.Availability != 1 {
		t.Fatalf("degraded cluster lost availability: %+v", m)
	}
	if m.ReplicaFallthroughs == 0 {
		t.Fatalf("no replica fallthroughs recorded despite a dead rendezvous: %+v", m)
	}
	if m.HintHits == 0 {
		t.Fatalf("no hint hits on the replicated path: %+v", m)
	}
}

// TestClusterHintRetriesNextReplica pins the hint-invalidation order:
// a hint resolved by replica 0 whose generation was bumped by a crash
// re-floods starting at replica 1 (wrapping), so the family the crash
// most likely broke is retried last.
func TestClusterHintRetriesNextReplica(t *testing.T) {
	n := 36
	g := topology.Complete(n)
	rp := mkReplicated(t, n, 2)
	memT, err := NewReplicatedMemTransport(g, rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := New(memT, Options{Hints: true, DisableCoalescing: true})
	defer c.Close()
	if _, err := c.Register("alpha", 7); err != nil {
		t.Fatal(err)
	}
	client := graph.NodeID(1)
	if _, err := c.Locate(client, "alpha"); err != nil {
		t.Fatal(err)
	}
	// The cached hint was resolved by replica 0. Crash its rendezvous
	// (bumping every generation): the next locate must skip the probe,
	// start the flood at replica 1 and succeed without ever reading the
	// dead family.
	victim := replica0Rendezvous(rp, 7, client)[0]
	if err := memT.Crash(victim); err != nil {
		t.Fatal(err)
	}
	before := memT.Passes()
	e, err := c.Locate(client, "alpha")
	if err != nil {
		t.Fatal(err)
	}
	if e.Addr != 7 {
		t.Fatalf("post-crash locate resolved %+v, want addr 7", e)
	}
	charged := memT.Passes() - before
	// Replica 1's flood cost from the client plus one reply from the
	// replica-1 rendezvous: the stale-hint retry went to the next
	// family first, not back through replica 0.
	routing := memT.routing
	targets := rp.Replica(1).Query(client)
	want, rerr := routing.MulticastCost(client, targets)
	if rerr != nil {
		t.Fatal(rerr)
	}
	rv := rendezvous.Intersect(rp.Replica(1).Post(7), targets)
	wantTotal := int64(want)
	for range rv {
		wantTotal += int64(routing.Dist(rv[0], client))
	}
	if charged != wantTotal {
		t.Fatalf("stale-hint retry charged %d passes, want %d (replica-1 flood only)", charged, wantTotal)
	}
	if m := c.Metrics(); m.ReplicaFallthroughs != 0 {
		t.Fatalf("retry-next-replica counted as fallthrough depth >0: %+v", m)
	}
}

// TestReplicatedTransportErrors pins constructor and replica-bounds
// validation across the replicated API.
func TestReplicatedTransportErrors(t *testing.T) {
	if _, err := NewReplicatedMemTransport(topology.Complete(9), nil, 0); err == nil {
		t.Fatal("nil Replicated accepted by mem")
	}
	if _, err := NewReplicatedSimTransport(topology.Complete(9), nil, repOpts); err == nil {
		t.Fatal("nil Replicated accepted by sim")
	}
	rp := mkReplicated(t, 9, 2)
	memT, err := NewReplicatedMemTransport(topology.Complete(9), rp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := memT.LocateReplica(0, "x", 2); err == nil || errors.Is(err, core.ErrNotFound) {
		t.Fatalf("out-of-range replica: %v; want a range error", err)
	}
}
