package cluster

import (
	"errors"
	"fmt"
	"slices"

	"matchmake/internal/core"
	"matchmake/internal/graph"
)

// Answer voting: the cluster's Byzantine-tolerant locate path. The
// crash model's replica fallthrough trusts the first family that
// answers — correct when nodes can only fail silently, and exactly
// wrong when a node can lie: a forged reply in family 0 ends the
// fallthrough before any honest family is heard. With a vote quorum
// configured (Options.VoteQuorum, on a transport exposing answerer
// identity via ByzantineTransport) a locate instead floods q replica
// families, tallies their claims by (address, instance), and believes
// only a strict majority. Every flood is charged honestly — voting
// buys integrity with q× the locate traffic, measured in EXPERIMENTS.
//
// Nodes whose answer loses the vote are quarantined: their identity
// joins the cluster's suspect set (surfaced as SuspectedNodes in the
// metrics) and every hint generation is bumped, so no cached address
// they vouched for survives. A reconciliation round re-verifies all
// posting state against registration ground truth, so a successful
// ReconcileRound clears the suspect set — a node that was merely
// corrupted (not actively lying) is rehabilitated, while a persistent
// liar is re-quarantined by the next vote it loses.
//
// With r replica families and at most f of them infiltrated by liars,
// r >= 2f+1 and a full-width quorum guarantee an honest majority: the
// family scoping filter pins each liar's forgery to the families it
// actually serves, so f liars corrupt at most f of the q answers.

// voteAnswer is one replica family's reply in a voted locate.
type voteAnswer struct {
	e      core.Entry
	from   graph.NodeID
	family int
}

// voteKey is the claim a vote agrees on: which instance serves the
// port, and where. Timestamps deliberately stay out of the key — two
// honest families can hold different-aged copies of the same posting,
// and a forged timestamp alone must not split an honest majority.
type voteKey struct {
	addr graph.NodeID
	id   uint64
}

func (a voteAnswer) key() voteKey { return voteKey{addr: a.e.Addr, id: a.e.ServerID} }

// voteQuorum is the effective electorate width: the configured quorum
// clamped to the replication factor.
func (c *Cluster) voteQuorum() int {
	q := c.opts.VoteQuorum
	if r := c.repl.Replicas(); q > r {
		q = r
	}
	return q
}

// voteTally returns the most-supported claim and its vote count.
func voteTally(answers []voteAnswer) (voteKey, int) {
	var (
		bestKey voteKey
		bestN   int
	)
	for _, a := range answers {
		k := a.key()
		n := 0
		for _, b := range answers {
			if b.key() == k {
				n++
			}
		}
		if n > bestN {
			bestKey, bestN = k, n
		}
	}
	return bestKey, bestN
}

// voteLocate is floodLocate's Byzantine-tolerant twin: query q replica
// families from start (wrapping), majority-vote on the claims, believe
// only a strict majority of the configured quorum, quarantine the
// answerers the majority contradicts. Abstentions (rendezvous misses)
// count against the majority — a liar choosing silence can force the
// electorate wider but never steer it — and when the quorum cannot
// agree the electorate extends one family at a time before the locate
// fails closed with core.ErrNotFound. Any non-miss failure (crashed or
// invalid caller) aborts immediately, as in the fallthrough path.
func (c *Cluster) voteLocate(client graph.NodeID, port core.Port, start int) (core.Entry, int, error) {
	r := c.repl.Replicas()
	q := c.voteQuorum()
	need := q/2 + 1
	if start < 0 || start >= r {
		start = 0
	}
	c.metrics.votedLocates.Add(1)

	answers := make([]voteAnswer, 0, q)
	conflict := false
	asked := 0
	ask := func() error {
		k := (start + asked) % r
		asked++
		e, from, err := c.byz.LocateReplicaAt(client, port, k)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				return nil // abstention
			}
			return err
		}
		if e.Port != port {
			// An answer for a port nobody asked about is a forgery in
			// itself: suspect the answerer, treat the family as silent.
			conflict = true
			c.suspect(from)
			return nil
		}
		answers = append(answers, voteAnswer{e: e, from: from, family: k})
		return nil
	}
	for asked < q {
		if err := ask(); err != nil {
			return core.Entry{}, 0, err
		}
	}
	for {
		if key, n := voteTally(answers); n >= need {
			return c.voteSettle(answers, key, conflict, start)
		}
		if asked >= r {
			break
		}
		if err := ask(); err != nil {
			return core.Entry{}, 0, err
		}
	}
	// No majority even with every family heard: fail closed. A split
	// electorate is a conflict (somebody lied, though the vote cannot
	// prove who, so nobody is suspected); an empty one is an honest
	// rendezvous miss.
	if keys := distinctKeys(answers); keys > 1 {
		conflict = true
	}
	if conflict {
		c.metrics.voteConflicts.Add(1)
	}
	c.metrics.replicaDepth.Fail()
	return core.Entry{}, start, fmt.Errorf("cluster: vote on %q from %d: no majority of quorum %d: %w", port, client, q, core.ErrNotFound)
}

func distinctKeys(answers []voteAnswer) int {
	seen := make(map[voteKey]struct{}, len(answers))
	for _, a := range answers {
		seen[a.key()] = struct{}{}
	}
	return len(seen)
}

// voteSettle reduces a decided vote: the freshest agreeing entry wins,
// the hint is recorded under the lowest agreeing family (the cheapest
// one a later invalidation's wrap order should retry after), and every
// answerer the majority contradicts is quarantined.
func (c *Cluster) voteSettle(answers []voteAnswer, key voteKey, conflict bool, start int) (core.Entry, int, error) {
	var (
		best   core.Entry
		family int
		first  = true
	)
	for _, a := range answers {
		if a.key() != key {
			conflict = true
			c.suspect(a.from)
			continue
		}
		if first || a.e.Time > best.Time {
			best = a.e
		}
		if first || a.family < family {
			family = a.family
		}
		first = false
	}
	if conflict {
		c.metrics.voteConflicts.Add(1)
	}
	r := c.repl.Replicas()
	c.metrics.replicaDepth.Observe((family - start + r) % r)
	return best, family, nil
}

// voteBatch resolves a batch through the voting path, one voted locate
// per request — batched floods cannot vote, because the transport's
// batch path reduces answers before the coordinator sees who answered.
func (c *Cluster) voteBatch(reqs []LocateReq, res []LocateRes) {
	for i := range reqs {
		e, _, err := c.voteLocate(reqs[i].Client, reqs[i].Port, 0)
		res[i] = LocateRes{Entry: e, Err: err}
	}
}

// suspect quarantines a node whose answer a vote contradicted: it joins
// the suspect set and — on first entry — every hint generation is
// bumped, so no cached address it vouched for survives.
func (c *Cluster) suspect(node graph.NodeID) {
	c.suspectMu.Lock()
	_, dup := c.suspects[node]
	if !dup {
		c.suspects[node] = struct{}{}
	}
	c.suspectMu.Unlock()
	if !dup {
		c.byz.Quarantine(node)
	}
}

// SuspectedNodes returns the rendezvous nodes currently quarantined by
// answer voting, sorted. Empty unless voting is enabled.
func (c *Cluster) SuspectedNodes() []graph.NodeID {
	if c.byz == nil {
		return nil
	}
	c.suspectMu.Lock()
	out := make([]graph.NodeID, 0, len(c.suspects))
	for v := range c.suspects {
		out = append(out, v)
	}
	c.suspectMu.Unlock()
	slices.Sort(out)
	return out
}

func (c *Cluster) suspectCount() int {
	c.suspectMu.Lock()
	defer c.suspectMu.Unlock()
	return len(c.suspects)
}

// ReconcileRound drives one anti-entropy reconciliation round through
// the transport and — because a completed round has re-verified every
// posting row against registration ground truth — clears the voting
// suspect set: quarantine is not a death sentence, it lasts until the
// self-stabilizing layer vouches for the state again. A node still
// lying after rehabilitation is re-quarantined by the next vote it
// loses. Fails with ErrNoAntiEntropy on transports without the
// reconciliation layer.
func (c *Cluster) ReconcileRound() (int, error) {
	c.closeMu.RLock()
	defer c.closeMu.RUnlock()
	if c.closed.Load() {
		return 0, ErrClosed
	}
	at, ok := c.tr.(AntiEntropyTransport)
	if !ok {
		return 0, ErrNoAntiEntropy
	}
	n, err := at.ReconcileRound()
	if err == nil && c.byz != nil {
		c.suspectMu.Lock()
		clear(c.suspects)
		c.suspectMu.Unlock()
	}
	return n, err
}

// ErrNoAntiEntropy reports a reconciliation request against a transport
// without the self-stabilizing posting layer.
var ErrNoAntiEntropy = errors.New("cluster: transport has no anti-entropy reconciliation")
