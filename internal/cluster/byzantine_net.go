package cluster

import (
	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
)

// Byzantine seam of the socket backend: the deterministic lie plan is
// shipped to the owning node processes as opArm frames, and an armed
// process answers query floods for the planned (node, port) pairs with
// the forged entry — or silence — instead of consulting its store. The
// coordinator keeps a mirror of the plan only for ArmedNodes; the lies
// themselves travel on the real wire and are charged (or not) exactly
// as the in-memory and simulated transports charge them.

var _ ByzantineTransport = (*NetTransport)(nil)

// forgeLoad returns the coordinator's mirror of the armed lie table,
// nil-safe for lookups.
func (t *NetTransport) forgeLoad() forgeTable {
	p := t.forge.Load()
	if p == nil {
		return nil
	}
	return *p
}

// armProcs ships one opArm frame to EVERY process — the frame replaces
// a process's whole plan, so processes with no lying nodes get an empty
// body that clears any stale plan from a previous Arm.
func (t *NetTransport) armProcs(plan []forgeOp) error {
	ps := t.procs.Load()
	reqs := make([][]byte, len(ps.pools))
	for _, op := range plan {
		p := ps.ownerOf[op.node]
		b := reqs[p]
		b = netwire.AppendUvarint(b, uint64(op.node))
		b = netwire.AppendString(b, string(op.port))
		if op.rec.silent {
			b = append(b, 1)
		} else {
			b = append(b, 0)
			b = appendEntry(b, op.rec.e)
		}
		reqs[p] = b
	}
	var firstErr error
	for p, req := range reqs {
		if _, _, err := t.callProc(ps, p, opArm, req, nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Arm implements ByzantineTransport: same deterministic plan builder
// as the other transports (equal seeds arm identical liars telling
// identical lies), installed on the node processes via opArm.
func (t *NetTransport) Arm(opts ArmOptions) (int, error) {
	plan := buildForgePlan(opts, t.corruptRegs(), t.g.N(), t.rp)
	err := t.armProcs(plan)
	ft := buildForgeTable(plan)
	t.forge.Store(&ft)
	t.gens.bumpAll()
	return len(plan), err
}

// Disarm implements ByzantineTransport: empty opArm frames clear every
// process's plan.
func (t *NetTransport) Disarm() error {
	err := t.armProcs(nil)
	t.forge.Store(nil)
	t.gens.bumpAll()
	return err
}

// ArmedNodes implements ByzantineTransport.
func (t *NetTransport) ArmedNodes() []graph.NodeID {
	return t.forgeLoad().nodes()
}

// LocateReplicaAt implements ByzantineTransport: one uncoalesced
// replica flood with the winning reply attributed to its sender. The
// voting path must bypass the coalescer — merged floods do not carry
// answerer identity.
func (t *NetTransport) LocateReplicaAt(client graph.NodeID, port core.Port, replica int) (core.Entry, graph.NodeID, error) {
	return t.locateReplicaFrom(client, port, replica)
}

// Quarantine implements ByzantineTransport (hint invalidation only —
// exclusion bookkeeping is the Cluster's job).
func (t *NetTransport) Quarantine(graph.NodeID) {
	t.gens.bumpAll()
}
