package cluster

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
)

// NodeServer hosts one node-shard of a NetTransport cluster as a
// network service: the rendezvous caches (a Store partition) and the
// live-server table for a contiguous range [lo, hi) of graph nodes,
// served over the internal/netwire protocol. It holds state and
// answers requests but charges no message passes — the paper's cost
// accounting lives in the client-side NetTransport, which knows the
// routing tables. cmd/mmnode wraps one NodeServer per OS process;
// cmd/mmctl spawns, partitions and kills whole local clusters of them.
type NodeServer struct {
	n      int
	lo, hi int

	store *Store

	// live is the registration table probes answer from — the node
	// server's equivalent of a host knowing its own processes. Guarded
	// by mu; probe traffic is light relative to store reads.
	mu   sync.Mutex
	live map[uint64]liveRec

	crashed []atomic.Bool

	// armed is the Byzantine lie table opArm installed (nil when
	// disarmed): queries for an armed (node, port) answer with the
	// forged entry — or not at all — instead of reading the store.
	armed atomic.Pointer[forgeTable]

	// ops counts served requests per opcode (index = opcode), the raw
	// material of the worker's /metrics endpoint; badOps counts frames
	// with an unknown opcode.
	ops    [opArm + 1]atomic.Int64
	badOps atomic.Int64

	srv *netwire.Server
}

// opNames maps node-protocol opcodes to stable metric label values.
var opNames = [opArm + 1]string{
	opHello:      "hello",
	opPost:       "post",
	opQuery:      "query",
	opQueryAll:   "query_all",
	opProbe:      "probe",
	opRegister:   "register",
	opDeregister: "deregister",
	opCrash:      "crash",
	opRestore:    "restore",
	opExpire:     "expire",
	opSnapshot:   "snapshot",
	opDigest:     "digest",
	opCorrupt:    "corrupt",
	opArm:        "arm",
}

// OpCounts returns the cumulative served-request count per operation
// name (plus "unknown" for undecodable opcodes, when any occurred) —
// the counters behind cmd/mmnode's /metrics endpoint.
func (s *NodeServer) OpCounts() map[string]int64 {
	out := make(map[string]int64, len(opNames))
	for op, name := range opNames {
		if name == "" {
			continue
		}
		if v := s.ops[op].Load(); v > 0 {
			out[name] = v
		}
	}
	if v := s.badOps.Load(); v > 0 {
		out["unknown"] = v
	}
	return out
}

// Range returns the owned node range [lo, hi) and the cluster size n.
func (s *NodeServer) Range() (lo, hi, n int) { return s.lo, s.hi, s.n }

// liveRec is one registered server instance: the port it serves and
// the owned node it currently lives at.
type liveRec struct {
	port core.Port
	node graph.NodeID
}

// NewNodeServer builds a node server owning [lo, hi) of an n-node
// cluster, serving on ln. Call Serve to start accepting.
func NewNodeServer(n, lo, hi int, ln net.Listener) (*NodeServer, error) {
	if n <= 0 || lo < 0 || hi <= lo || hi > n {
		return nil, fmt.Errorf("cluster: node server range [%d,%d) invalid for n=%d", lo, hi, n)
	}
	s := &NodeServer{
		n:       n,
		lo:      lo,
		hi:      hi,
		store:   NewStore(n, 0),
		live:    make(map[uint64]liveRec, 64),
		crashed: make([]atomic.Bool, n),
	}
	s.srv = netwire.NewServer(ln, s.handle)
	// Node ops are pure in-memory store work — never blocking on I/O of
	// their own — so they run inline on each connection's read loop:
	// no per-request goroutine, and pipelined bursts share one response
	// flush.
	s.srv.InlineHandlers()
	return s, nil
}

// Addr returns the listening address.
func (s *NodeServer) Addr() net.Addr { return s.srv.Addr() }

// Serve accepts and serves requests until Drain or Close; it returns
// nil on a clean shutdown.
func (s *NodeServer) Serve() error { return s.srv.Serve() }

// Drain gracefully shuts the server down: stop accepting, finish
// in-flight requests, then close connections — the SIGTERM path of
// cmd/mmnode.
func (s *NodeServer) Drain() { s.srv.Drain() }

// Close shuts down immediately, abandoning in-flight requests.
func (s *NodeServer) Close() error { return s.srv.Close() }

// ServeUntilTerm serves until SIGTERM or SIGINT, then drains
// gracefully — stop accepting, finish in-flight requests, close — and
// only then returns. It is the one shutdown sequence every worker
// entry point (cmd/mmnode, cmd/mmctl's re-exec workers, the test
// workers) shares, so none of them can exit before the drain finishes.
func (s *NodeServer) ServeUntilTerm() error {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	defer signal.Stop(sig)
	drained := make(chan struct{})
	go func() {
		<-sig
		s.Drain()
		close(drained)
	}()
	if err := s.Serve(); err != nil {
		return err
	}
	// Serve returned because Drain closed the listener; wait for the
	// in-flight requests to finish before letting the process exit.
	<-drained
	return nil
}

// RunNodeWorker is the whole body of a spawned node-server worker
// process: listen on listenAddr, announce the bound address as an
// "ADDR host:port" line on out (orchestrators scan for it to collect
// ephemeral ports), serve the node range [lo, hi) of an n-node
// cluster, and drain gracefully on SIGTERM before returning.
func RunNodeWorker(n, lo, hi int, listenAddr string, out io.Writer) error {
	return RunNodeWorkerWithReady(n, lo, hi, listenAddr, out, nil)
}

// RunNodeWorkerWithReady is RunNodeWorker with a hook that receives
// the built NodeServer after its listener is bound but before serving
// begins — cmd/mmnode uses it to mount the /metrics endpoint on the
// live server.
func RunNodeWorkerWithReady(n, lo, hi int, listenAddr string, out io.Writer, ready func(*NodeServer)) error {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return err
	}
	srv, err := NewNodeServer(n, lo, hi, ln)
	if err != nil {
		ln.Close()
		return err
	}
	if ready != nil {
		ready(srv)
	}
	fmt.Fprintf(out, "ADDR %s\n", ln.Addr())
	fmt.Fprintf(out, "serving nodes [%d,%d) of %d\n", lo, hi, n)
	return srv.ServeUntilTerm()
}

// owned reports whether node falls in the server's range.
func (s *NodeServer) owned(node graph.NodeID) bool {
	return int(node) >= s.lo && int(node) < s.hi
}

// handle serves one decoded request frame; it runs concurrently.
func (s *NodeServer) handle(op byte, req, resp []byte) (byte, []byte) {
	if int(op) < len(s.ops) && opNames[op] != "" {
		s.ops[op].Add(1)
	} else {
		s.badOps.Add(1)
	}
	d := netwire.NewDec(req)
	switch op {
	case opHello:
		resp = netwire.AppendUvarint(resp, uint64(s.n))
		resp = netwire.AppendUvarint(resp, uint64(s.lo))
		resp = netwire.AppendUvarint(resp, uint64(s.hi))
		return stOK, resp
	case opPost:
		return s.handlePost(&d, resp)
	case opQuery:
		return s.handleQuery(&d, resp)
	case opQueryAll:
		return s.handleQueryAll(&d, resp)
	case opProbe:
		return s.handleProbe(&d, resp)
	case opRegister:
		return s.handleRegister(&d, resp)
	case opDeregister:
		id := d.Uvarint()
		if d.Err() != nil {
			return stBadRequest, resp
		}
		s.mu.Lock()
		delete(s.live, id)
		s.mu.Unlock()
		return stOK, resp
	case opCrash:
		return s.handleCrash(&d, resp, true)
	case opRestore:
		return s.handleCrash(&d, resp, false)
	case opExpire:
		return s.handleExpire(&d, resp)
	case opSnapshot:
		return s.handleSnapshot(&d, resp)
	case opDigest:
		return s.handleDigest(&d, resp)
	case opCorrupt:
		return s.handleCorrupt(&d, resp)
	case opArm:
		return s.handleArm(&d, resp)
	default:
		return stBadRequest, resp
	}
}

// handleDigest answers opDigest: per-node xor digests over the active
// cached entries of an owned node range — the cheap row summary the
// coordinator's anti-entropy round compares against ground truth before
// deciding whether a full opSnapshot dump is worth pulling.
func (s *NodeServer) handleDigest(d *netwire.Dec, resp []byte) (byte, []byte) {
	lo, hi := int(d.Uvarint()), int(d.Uvarint())
	if d.Err() != nil || lo < s.lo || hi > s.hi || hi <= lo {
		return stBadRequest, resp
	}
	digests := make([]uint64, hi-lo)
	for _, ne := range s.store.DumpRange(lo, hi) {
		if ne.E.Active {
			digests[int(ne.Node)-lo] ^= postingDigest(ne.E.Port, ne.E.ServerID, ne.E.Addr)
		}
	}
	for _, dg := range digests {
		resp = netwire.AppendUvarint(resp, dg)
	}
	return stOK, resp
}

// handleCorrupt applies opCorrupt's adversarial state mutations: kind 0
// drops a cached posting by identity, kind 1 force-injects a raw entry
// through Store.Inject, bypassing the timestamp merge rule. Crash marks
// are ignored on purpose — corruption is a backdoor, not a protocol
// message — and nothing is charged.
func (s *NodeServer) handleCorrupt(d *netwire.Dec, resp []byte) (byte, []byte) {
	for d.Len() > 0 {
		switch d.Byte() {
		case 0:
			node := graph.NodeID(d.Uvarint())
			port := core.Port(d.String())
			id := d.Uvarint()
			if d.Err() != nil || !s.owned(node) {
				return stBadRequest, resp
			}
			s.store.Drop(node, port, id)
		case 1:
			node := graph.NodeID(d.Uvarint())
			e := decodeEntry(d)
			if d.Err() != nil || !s.owned(node) {
				return stBadRequest, resp
			}
			s.store.Inject(node, e)
		default:
			return stBadRequest, resp
		}
	}
	return stOK, resp
}

// armedTable returns the installed lie table, or a nil table when
// disarmed (nil-safe for lookups).
func (s *NodeServer) armedTable() forgeTable {
	p := s.armed.Load()
	if p == nil {
		return nil
	}
	return *p
}

// handleArm installs opArm's answer-forging plan, replacing the
// previous one; an empty body disarms. Like opCorrupt it is a chaos
// backdoor and charges nothing.
func (s *NodeServer) handleArm(d *netwire.Dec, resp []byte) (byte, []byte) {
	if d.Len() == 0 {
		s.armed.Store(nil)
		return stOK, resp
	}
	ft := make(forgeTable)
	for d.Len() > 0 {
		node := graph.NodeID(d.Uvarint())
		port := core.Port(d.String())
		silent := d.Byte() == 1
		var e core.Entry
		if !silent {
			e = decodeEntry(d)
		}
		if d.Err() != nil || !s.owned(node) {
			return stBadRequest, resp
		}
		byPort := ft[node]
		if byPort == nil {
			byPort = make(map[core.Port]forgeRec, 4)
			ft[node] = byPort
		}
		byPort[port] = forgeRec{silent: silent, e: e}
	}
	s.armed.Store(&ft)
	return stOK, resp
}

// handleExpire drops cached postings by (node, port, serverID) — the
// local garbage collection of a retired epoch (see opExpire).
func (s *NodeServer) handleExpire(d *netwire.Dec, resp []byte) (byte, []byte) {
	for d.Len() > 0 {
		node := graph.NodeID(d.Uvarint())
		port := core.Port(d.String())
		id := d.Uvarint()
		if d.Err() != nil || !s.owned(node) {
			return stBadRequest, resp
		}
		s.store.Drop(node, port, id)
	}
	return stOK, resp
}

// handleSnapshot dumps the owned state for a node range — the donor
// side of a partition transfer (see opSnapshot).
func (s *NodeServer) handleSnapshot(d *netwire.Dec, resp []byte) (byte, []byte) {
	lo, hi := int(d.Uvarint()), int(d.Uvarint())
	if d.Err() != nil || lo < s.lo || hi > s.hi || hi <= lo {
		return stBadRequest, resp
	}
	dump := s.store.DumpRange(lo, hi)
	resp = netwire.AppendUvarint(resp, uint64(len(dump)))
	for _, ne := range dump {
		resp = netwire.AppendUvarint(resp, uint64(ne.Node))
		resp = appendEntry(resp, ne.E)
	}
	s.mu.Lock()
	type liveDump struct {
		id  uint64
		rec liveRec
	}
	var lives []liveDump
	for id, rec := range s.live {
		if int(rec.node) >= lo && int(rec.node) < hi {
			lives = append(lives, liveDump{id: id, rec: rec})
		}
	}
	s.mu.Unlock()
	resp = netwire.AppendUvarint(resp, uint64(len(lives)))
	for _, l := range lives {
		resp = netwire.AppendUvarint(resp, l.id)
		resp = netwire.AppendString(resp, string(l.rec.port))
		resp = netwire.AppendUvarint(resp, uint64(l.rec.node))
	}
	var crashed []graph.NodeID
	for v := lo; v < hi; v++ {
		if s.crashed[v].Load() {
			crashed = append(crashed, graph.NodeID(v))
		}
	}
	resp = netwire.AppendUvarint(resp, uint64(len(crashed)))
	for _, v := range crashed {
		resp = netwire.AppendUvarint(resp, uint64(v))
	}
	return stOK, resp
}

func (s *NodeServer) handlePost(d *netwire.Dec, resp []byte) (byte, []byte) {
	for d.Len() > 0 {
		node := graph.NodeID(d.Uvarint())
		e := decodeEntry(d)
		if d.Err() != nil {
			return stBadRequest, resp
		}
		if !s.owned(node) {
			return stBadRequest, resp
		}
		if s.crashed[node].Load() {
			continue // a crashed rendezvous node drops postings
		}
		s.store.Put(node, e)
	}
	return stOK, resp
}

func (s *NodeServer) handleQuery(d *netwire.Dec, resp []byte) (byte, []byte) {
	for d.Len() > 0 {
		port := core.Port(d.String())
		cnt := int(d.Uvarint())
		for i := 0; i < cnt; i++ {
			node := graph.NodeID(d.Uvarint())
			if d.Err() != nil {
				return stBadRequest, resp
			}
			if !s.owned(node) {
				return stBadRequest, resp
			}
			if s.crashed[node].Load() {
				resp = append(resp, 0) // crashed nodes do not answer
				continue
			}
			if rec, armed := s.armedTable().lieFor(node, port); armed {
				// A lying node never consults its store: it suppresses
				// the answer (indistinguishable from a §1.5 miss on the
				// wire) or substitutes the forged entry.
				if rec.silent {
					resp = append(resp, 0)
					continue
				}
				resp = append(resp, 1)
				resp = appendEntry(resp, rec.e)
				continue
			}
			e, ok := s.store.Get(node, port)
			if !ok {
				resp = append(resp, 0) // misses are silent (§1.5)
				continue
			}
			resp = append(resp, 1)
			resp = appendEntry(resp, e)
		}
		if d.Err() != nil {
			return stBadRequest, resp
		}
	}
	return stOK, resp
}

// handleQueryAll answers opQueryAll: like handleQuery it consumes a
// sequence of (port, nodeCount, nodes...) sub-requests until end of
// body — replicated batch floods pack many sub-requests per frame —
// answering each node with (count, entries...).
func (s *NodeServer) handleQueryAll(d *netwire.Dec, resp []byte) (byte, []byte) {
	var buf [8]core.Entry
	for d.Len() > 0 {
		port := core.Port(d.String())
		cnt := int(d.Uvarint())
		for i := 0; i < cnt; i++ {
			node := graph.NodeID(d.Uvarint())
			if d.Err() != nil {
				return stBadRequest, resp
			}
			if !s.owned(node) {
				return stBadRequest, resp
			}
			var entries []core.Entry
			if !s.crashed[node].Load() {
				if rec, armed := s.armedTable().lieFor(node, port); armed {
					// Lying node: its whole answer is the one forged
					// entry, or nothing under selective silence.
					if !rec.silent {
						entries = append(buf[:0], rec.e)
					}
				} else {
					entries = s.store.GetAllInto(node, port, buf[:0])
				}
			}
			resp = netwire.AppendUvarint(resp, uint64(len(entries)))
			for _, e := range entries {
				resp = appendEntry(resp, e)
			}
		}
		if d.Err() != nil {
			return stBadRequest, resp
		}
	}
	return stOK, resp
}

func (s *NodeServer) handleProbe(d *netwire.Dec, resp []byte) (byte, []byte) {
	port := core.Port(d.String())
	addr := graph.NodeID(d.Uvarint())
	id := d.Uvarint()
	if d.Err() != nil || !s.owned(addr) {
		return stBadRequest, resp
	}
	if s.crashed[addr].Load() {
		return stCrashed, resp
	}
	s.mu.Lock()
	rec, ok := s.live[id]
	s.mu.Unlock()
	if ok && rec.port == port && rec.node == addr {
		return stOK, resp
	}
	return stNotFound, resp
}

func (s *NodeServer) handleRegister(d *netwire.Dec, resp []byte) (byte, []byte) {
	id := d.Uvarint()
	port := core.Port(d.String())
	node := graph.NodeID(d.Uvarint())
	if d.Err() != nil || !s.owned(node) {
		return stBadRequest, resp
	}
	if s.crashed[node].Load() {
		return stCrashed, resp
	}
	s.mu.Lock()
	s.live[id] = liveRec{port: port, node: node}
	s.mu.Unlock()
	return stOK, resp
}

func (s *NodeServer) handleCrash(d *netwire.Dec, resp []byte, down bool) (byte, []byte) {
	node := graph.NodeID(d.Uvarint())
	if d.Err() != nil || !s.owned(node) {
		return stBadRequest, resp
	}
	s.crashed[node].Store(down)
	if down {
		s.store.ClearNode(node)
	}
	return stOK, resp
}
