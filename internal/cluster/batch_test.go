package cluster

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/rendezvous"
	"matchmake/internal/strategy"
	"matchmake/internal/topology"
)

// TestLocateBatchMatchesSequential checks the fast path's shard-grouped
// batch against the one-at-a-time path on the same transport: identical
// answers and an identical total pass charge. Locates do not mutate the
// store, so running both back to back compares like with like.
func TestLocateBatchMatchesSequential(t *testing.T) {
	gr, err := topology.NewGrid(6, 6)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewMemTransport(gr.G, strategy.Manhattan(gr), 0)
	if err != nil {
		t.Fatal(err)
	}
	ports := []core.Port{"alpha", "beta", "missing"}
	if _, err := tr.Register("alpha", 10); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Register("beta", 29); err != nil {
		t.Fatal(err)
	}

	var reqs []LocateReq
	for c := 0; c < gr.G.N(); c += 4 {
		for _, p := range ports {
			reqs = append(reqs, LocateReq{Client: graph.NodeID(c), Port: p})
		}
	}
	seq := make([]LocateRes, len(reqs))
	before := tr.Passes()
	for i, r := range reqs {
		seq[i].Entry, seq[i].Err = tr.Locate(r.Client, r.Port)
	}
	seqCost := tr.Passes() - before

	res := make([]LocateRes, len(reqs))
	before = tr.Passes()
	tr.LocateBatch(reqs, res)
	batchCost := tr.Passes() - before

	if batchCost != seqCost {
		t.Fatalf("batch charged %d passes, sequential %d", batchCost, seqCost)
	}
	for i := range reqs {
		if (seq[i].Err == nil) != (res[i].Err == nil) {
			t.Fatalf("req %d (%+v): sequential err=%v batch err=%v", i, reqs[i], seq[i].Err, res[i].Err)
		}
		if seq[i].Err == nil && seq[i].Entry != res[i].Entry {
			t.Fatalf("req %d (%+v): sequential %+v != batch %+v", i, reqs[i], seq[i].Entry, res[i].Entry)
		}
	}
}

// TestPostBatchMatchesSequential prepares two identical transports, one
// via sequential Registers and one via a single PostBatch, and demands
// the same pass charge and the same visible postings everywhere.
func TestPostBatchMatchesSequential(t *testing.T) {
	const n = 36
	regs := []Registration{
		{Port: "alpha", Node: 3},
		{Port: "beta", Node: 35},
		{Port: "gamma", Node: 0},
		{Port: "alpha", Node: 17},
	}
	seqT, err := NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regs {
		if _, err := seqT.Register(r.Port, r.Node); err != nil {
			t.Fatal(err)
		}
	}
	batchT, err := NewMemTransport(topology.Complete(n), rendezvous.Checkerboard(n), 0)
	if err != nil {
		t.Fatal(err)
	}
	refs, err := batchT.PostBatch(regs)
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != len(regs) {
		t.Fatalf("PostBatch returned %d refs, want %d", len(refs), len(regs))
	}
	for i, ref := range refs {
		if ref.Port() != regs[i].Port || ref.Node() != regs[i].Node {
			t.Fatalf("ref %d: (%s, %d), want (%s, %d)", i, ref.Port(), ref.Node(), regs[i].Port, regs[i].Node)
		}
	}
	if seqT.Passes() != batchT.Passes() {
		t.Fatalf("sequential registers charged %d passes, batch %d", seqT.Passes(), batchT.Passes())
	}
	for c := 0; c < n; c += 3 {
		for _, port := range []core.Port{"alpha", "beta", "gamma"} {
			e1, err1 := seqT.Locate(graph.NodeID(c), port)
			e2, err2 := batchT.Locate(graph.NodeID(c), port)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("locate %q from %d: seq err=%v batch err=%v", port, c, err1, err2)
			}
			if err1 == nil && (e1.Addr != e2.Addr || e1.Active != e2.Active) {
				t.Fatalf("locate %q from %d: seq %+v != batch %+v", port, c, e1, e2)
			}
		}
	}
	// ServerRefs from a batch drive the normal lifecycle.
	if err := refs[1].Deregister(); err != nil {
		t.Fatal(err)
	}
	if _, err := batchT.Locate(1, "beta"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("locate after batch-ref deregister: %v; want ErrNotFound", err)
	}
}

// TestPostBatchValidation checks the all-or-nothing contract: one bad
// registration fails the batch before any effect.
func TestPostBatchValidation(t *testing.T) {
	tr, err := NewMemTransport(topology.Complete(16), rendezvous.Checkerboard(16), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.PostBatch([]Registration{
		{Port: "ok", Node: 1},
		{Port: "bad", Node: 99},
	}); !errors.Is(err, graph.ErrNodeRange) {
		t.Fatalf("PostBatch with out-of-range node: %v; want ErrNodeRange", err)
	}
	if tr.Passes() != 0 {
		t.Fatalf("failed batch charged %d passes, want 0", tr.Passes())
	}
	if _, err := tr.Locate(2, "ok"); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("failed batch left postings behind: %v", err)
	}
}

// TestClusterLocateBatch exercises the serving-layer wrapper with hints
// enabled: the second identical batch is answered entirely by probes.
func TestClusterLocateBatch(t *testing.T) {
	c, _ := newHintedMemCluster(t, 64, Options{Hints: true})
	names := make([]core.Port, 8)
	regs := make([]Registration, 8)
	for p := range names {
		names[p] = core.Port(fmt.Sprintf("svc-%04d", p))
		regs[p] = Registration{Port: names[p], Node: graph.NodeID(p * 5)}
	}
	if _, err := c.PostBatch(regs); err != nil {
		t.Fatal(err)
	}
	var reqs []LocateReq
	for cl := 0; cl < 16; cl++ {
		reqs = append(reqs, LocateReq{Client: graph.NodeID(cl), Port: names[cl%len(names)]})
	}
	res := make([]LocateRes, len(reqs))
	if err := c.LocateBatch(reqs, res); err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Err != nil {
			t.Fatalf("first batch req %d: %v", i, res[i].Err)
		}
	}
	res2 := make([]LocateRes, len(reqs))
	if err := c.LocateBatch(reqs, res2); err != nil {
		t.Fatal(err)
	}
	for i := range res2 {
		if res2[i].Err != nil {
			t.Fatalf("second batch req %d: %v", i, res2[i].Err)
		}
		if res2[i].Entry.Addr != res[i].Entry.Addr {
			t.Fatalf("req %d: hinted batch %+v != flooded batch %+v", i, res2[i].Entry, res[i].Entry)
		}
	}
	if m := c.Metrics(); m.HintHits != int64(len(reqs)) {
		t.Fatalf("HintHits = %d, want %d (whole second batch)", m.HintHits, len(reqs))
	}
}

// TestLocateBatchConcurrent hammers the batch path from several
// goroutines (with churn in the background) so the race detector sees
// the pooled scratch and shard-grouped locking under contention.
func TestLocateBatchConcurrent(t *testing.T) {
	c, tr := newHintedMemCluster(t, 64, Options{Hints: true})
	names := make([]core.Port, 8)
	refs := make([]ServerRef, 8)
	for p := range names {
		names[p] = core.Port(fmt.Sprintf("svc-%04d", p))
		ref, err := c.Register(names[p], graph.NodeID(p*7))
		if err != nil {
			t.Fatal(err)
		}
		refs[p] = ref
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reqs := make([]LocateReq, 16)
			res := make([]LocateRes, 16)
			for iter := 0; iter < 50; iter++ {
				for i := range reqs {
					reqs[i] = LocateReq{
						Client: graph.NodeID((w*16 + i + iter) % 64),
						Port:   names[(i+iter)%len(names)],
					}
				}
				if err := c.LocateBatch(reqs, res); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for iter := 0; iter < 25; iter++ {
			p := iter % len(refs)
			_ = refs[p].Migrate(graph.NodeID((iter * 13) % 64))
			_ = tr.Crash(graph.NodeID((iter * 29) % 64))
			_ = tr.Restore(graph.NodeID((iter * 29) % 64))
		}
	}()
	wg.Wait()
}
