package cluster

import (
	"fmt"
	"slices"
	"time"

	"matchmake/internal/core"
	"matchmake/internal/graph"
	"matchmake/internal/netwire"
)

var _ AntiEntropyTransport = (*NetTransport)(nil)

// netLiveSrv is one live registration snapshot of a reconcile round.
type netLiveSrv struct {
	srv  *netServer
	node graph.NodeID
}

// liveServers snapshots the client-side registration mirror: every
// non-gone server with its current home node.
func (t *NetTransport) liveServers() []netLiveSrv {
	t.regMu.Lock()
	var servers []*netServer
	for _, m := range t.byPort {
		for _, srv := range m {
			servers = append(servers, srv)
		}
	}
	t.regMu.Unlock()
	out := make([]netLiveSrv, 0, len(servers))
	for _, srv := range servers {
		srv.mu.Lock()
		node, gone := srv.node, srv.gone
		srv.mu.Unlock()
		if gone {
			continue
		}
		out = append(out, netLiveSrv{srv: srv, node: node})
	}
	return out
}

// ReconcileRound implements AntiEntropyTransport on the socket backend,
// coordinator-driven: one opDigest per live node process summarizes
// every owned row in a single round trip (free — §5 maintenance
// metadata), and only nodes whose digest disagrees with the
// registration ground truth are dumped (opSnapshot), diffed, and
// repaired — orphans and wrong entries dropped in place via opExpire
// (free, local GC), missing honest postings re-posted per server at the
// diff targets' multicast-tree cost, exactly the charge MemTransport
// takes for the same repair. Locks follow Resize's order — the lifeMu
// read fence (keeping writes out of a mid-Rescale snapshot) before
// resizeMu (serializing against an epoch transition) — so a pending
// Rescale writer can never wedge the two against each other.
func (t *NetTransport) ReconcileRound() (int, error) {
	t.lifeMu.RLock()
	defer t.lifeMu.RUnlock()
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	ps := t.procs.Load()

	srvs := make(map[expectedPair]netLiveSrv)
	expected := make(map[graph.NodeID]expectedRow)
	for _, ls := range t.liveServers() {
		targets, _ := t.postSets(ls.srv, ls.node)
		srvs[expectedPair{port: ls.srv.port, id: ls.srv.id}] = ls
		for _, v := range targets {
			if t.crashed[v].Load() {
				continue
			}
			row := expected[v]
			if row == nil {
				row = make(expectedRow)
				expected[v] = row
			}
			row.add(ls.srv.port, ls.srv.id, ls.node)
		}
	}

	// Digest sweep: collect the owned rows that disagree, per process.
	var mismatched []graph.NodeID
	buf := netwire.GetBuf()
	for p := range ps.pools {
		if ps.downP[p].Load() {
			continue // a dead process is a crashed range; repair handles it
		}
		lo, hi := ps.ranges[p][0], ps.ranges[p][1]
		req := netwire.AppendUvarint((*buf)[:0], uint64(lo))
		req = netwire.AppendUvarint(req, uint64(hi))
		*buf = req
		st, body, err := t.callProc(ps, p, opDigest, req, nil)
		if err != nil || st != stOK {
			continue
		}
		d := netwire.NewDec(body)
		for v := lo; v < hi; v++ {
			dg := d.Uvarint()
			if d.Err() != nil {
				break
			}
			node := graph.NodeID(v)
			if t.crashed[node].Load() {
				continue
			}
			if dg != expected[node].digest() {
				mismatched = append(mismatched, node)
			}
		}
	}
	netwire.PutBuf(buf)

	// Diff and repair each mismatched row.
	repaired := 0
	reposts := make(map[expectedPair][]graph.NodeID)
	expires := make(map[int][]byte) // per-process opExpire batch
	for _, v := range mismatched {
		actual, err := t.dumpNodeRow(ps, v)
		if err != nil {
			continue
		}
		drops, reps := rowDiff(expected[v], actual)
		for _, pr := range drops {
			p := ps.ownerOf[v]
			b := netwire.AppendUvarint(expires[p], uint64(v))
			b = netwire.AppendString(b, string(pr.port))
			b = netwire.AppendUvarint(b, pr.id)
			expires[p] = b
			t.gens.bump(pr.port)
			repaired++
		}
		for _, pr := range reps {
			reposts[pr] = append(reposts[pr], v)
		}
	}
	for p, req := range expires {
		_, _, _ = t.callProc(ps, p, opExpire, req, nil)
	}
	for pr, vs := range reposts {
		ls, ok := srvs[pr]
		if !ok || t.crashed[ls.node].Load() {
			continue
		}
		// Hold the server's mutex across the liveness re-check and the
		// re-post, like repairRange: a repair posting carries a fresh
		// timestamp, so racing a Deregister or Migrate tombstone could
		// resurrect a gone server.
		ls.srv.mu.Lock()
		if ls.srv.gone || ls.srv.node != ls.node {
			ls.srv.mu.Unlock()
			continue
		}
		cost, err := t.routing.MulticastCost(ls.node, vs)
		if err != nil {
			ls.srv.mu.Unlock()
			continue
		}
		if err := t.postEntryTargets(ls.srv, ls.node, true, vs, int64(cost)); err != nil {
			ls.srv.mu.Unlock()
			continue
		}
		ls.srv.mu.Unlock()
		t.gens.bump(pr.port)
		repaired += len(vs)
	}
	t.recon.rounds.Add(1)
	t.recon.repaired.Add(int64(repaired))
	return repaired, nil
}

// dumpNodeRow pulls one node's full cached row (tombstones included)
// from its owning process via opSnapshot.
func (t *NetTransport) dumpNodeRow(ps *procSet, v graph.NodeID) ([]core.Entry, error) {
	buf := netwire.GetBuf()
	defer netwire.PutBuf(buf)
	req := netwire.AppendUvarint(*buf, uint64(v))
	req = netwire.AppendUvarint(req, uint64(v)+1)
	*buf = req
	st, body, err := t.callProc(ps, ps.ownerOf[v], opSnapshot, req, nil)
	if err != nil {
		return nil, err
	}
	if st != stOK {
		return nil, fmt.Errorf("cluster: reconcile dump of %d from %s: status %d", v, ps.addrs[ps.ownerOf[v]], st)
	}
	d := netwire.NewDec(body)
	n := int(d.Uvarint())
	entries := make([]core.Entry, 0, n)
	for i := 0; i < n; i++ {
		_ = d.Uvarint() // node, always v
		e := decodeEntry(&d)
		if d.Err() != nil {
			return nil, d.Err()
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// corruptRegs snapshots the registration ground truth for the plan
// builder, ordered by instance id so equal seeds build identical plans
// on every transport.
func (t *NetTransport) corruptRegs() []corruptReg {
	live := t.liveServers()
	regs := make([]corruptReg, 0, len(live))
	for _, ls := range live {
		if t.crashed[ls.node].Load() {
			continue
		}
		targets, _ := t.postSets(ls.srv, ls.node)
		regs = append(regs, corruptReg{port: ls.srv.port, id: ls.srv.id, node: ls.node, targets: targets})
	}
	slices.SortFunc(regs, func(a, b corruptReg) int { return int(a.id) - int(b.id) })
	return regs
}

// Corrupt implements AntiEntropyTransport: the deterministic plan is
// shipped to the owning node processes as opCorrupt frames — drops by
// identity, raw injections bypassing the merge rule — and every hint
// generation is bumped.
func (t *NetTransport) Corrupt(opts CorruptOptions) (int, error) {
	plan := buildCorruptPlan(opts, t.corruptRegs(), t.g.N())
	if len(plan) == 0 {
		return 0, nil
	}
	ps := t.procs.Load()
	reqs := make(map[int][]byte)
	for _, op := range plan {
		p := ps.ownerOf[op.node]
		b := reqs[p]
		if op.drop {
			b = append(b, 0)
			b = netwire.AppendUvarint(b, uint64(op.node))
			b = netwire.AppendString(b, string(op.port))
			b = netwire.AppendUvarint(b, op.id)
		} else {
			b = append(b, 1)
			b = netwire.AppendUvarint(b, uint64(op.node))
			b = appendEntry(b, op.e)
		}
		reqs[p] = b
	}
	var firstErr error
	for p, req := range reqs {
		if _, _, err := t.callProc(ps, p, opCorrupt, req, nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	t.recon.injected.Add(int64(len(plan)))
	t.gens.bumpAll()
	return len(plan), firstErr
}

// StartReconcile implements AntiEntropyTransport.
func (t *NetTransport) StartReconcile(interval time.Duration) {
	t.recon.startLoop(interval, t.ReconcileRound)
}

// ReconcileStats implements AntiEntropyTransport.
func (t *NetTransport) ReconcileStats() ReconcileStats { return t.recon.stats() }
